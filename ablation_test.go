// Ablation benchmarks for the design choices DESIGN.md calls out: how
// much of SDC+LP's benefit depends on the prefetchers, on the
// directory-check cost of the SDC miss path, and on the predictor
// existing at all (expert-routing upper/lower bound). These go beyond
// the paper's own sweeps (Figs. 10-12, τ_glob) and probe the
// reproduction's sensitivity to its substrate.
package graphmem_test

import (
	"testing"

	"graphmem"
)

// ablationWorkload is the single workload used by the ablations (the
// full sweeps run across the suite; ablations need one clean signal).
var ablationWorkload = graphmem.WorkloadID{Kernel: "pr", Graph: "kron"}

// speedupOver runs cfg and the profile baseline on the ablation
// workload and returns the percentage speed-up.
func speedupOver(b *testing.B, cfg graphmem.Config) float64 {
	b.Helper()
	wb := bench()
	base := wb.RunSingle(wb.Profile.BaseConfig(1), ablationWorkload)
	v := wb.RunSingle(cfg, ablationWorkload)
	return (v.IPC()/base.IPC() - 1) * 100
}

func BenchmarkAblationNoPrefetchers(b *testing.B) {
	var withPF, noPFBase, noPFSDC float64
	for i := 0; i < b.N; i++ {
		wb := bench()
		base := wb.Profile.BaseConfig(1)
		withPF = speedupOver(b, base.WithSDCLP())
		noBase := wb.RunSingle(base.WithoutPrefetchers(), ablationWorkload)
		noSDC := wb.RunSingle(base.WithSDCLP().WithoutPrefetchers(), ablationWorkload)
		noPFSDC = (noSDC.IPC()/noBase.IPC() - 1) * 100
		ref := wb.RunSingle(base, ablationWorkload)
		noPFBase = (noBase.IPC()/ref.IPC() - 1) * 100
	}
	b.ReportMetric(withPF, "sdclp+pf%")
	b.ReportMetric(noPFSDC, "sdclp-nopf%")
	b.ReportMetric(noPFBase, "base-nopf%")
	b.Logf("SDC+LP speed-up with prefetchers %+.1f%%, without %+.1f%% (prefetcher cost on baseline: %+.1f%%)",
		withPF, noPFSDC, noPFBase)
}

func BenchmarkAblationDirLatency(b *testing.B) {
	// The SDC miss path charges a directory round (Section III-C); how
	// sensitive is the win to that cost?
	lats := []int64{8, 28, 56, 112}
	got := make([]float64, len(lats))
	for i := 0; i < b.N; i++ {
		wb := bench()
		base := wb.Profile.BaseConfig(1)
		for j, d := range lats {
			got[j] = speedupOver(b, base.WithSDCLP().WithDirLatency(d))
		}
	}
	for j, d := range lats {
		b.ReportMetric(got[j], "dir"+itoa(d)+"%")
	}
	b.Logf("SDC+LP speed-up vs directory latency: %v cycles -> %.1f / %.1f / %.1f / %.1f %%",
		lats, got[0], got[1], got[2], got[3])
}

func BenchmarkAblationRoutingQuality(b *testing.B) {
	// Bounds on the predictor: perfect structure knowledge (Expert) vs
	// the 554-byte LP vs no routing at all.
	var lp, expert float64
	for i := 0; i < b.N; i++ {
		wb := bench()
		base := wb.Profile.BaseConfig(1)
		lp = speedupOver(b, base.WithSDCLP())
		expert = speedupOver(b, base.WithExpert())
	}
	b.ReportMetric(lp, "lp%")
	b.ReportMetric(expert, "expert%")
	b.Logf("routing quality on %s: LP %+.1f%%, Expert %+.1f%%", ablationWorkload, lp, expert)
}

func BenchmarkAblationTOPTQuantization(b *testing.B) {
	// T-OPT's next-use ranks are 8-bit quantized; compare against the
	// paper's LRU LLC to size the replacement-policy contribution.
	var topt, twoX float64
	for i := 0; i < b.N; i++ {
		wb := bench()
		base := wb.Profile.BaseConfig(1)
		topt = speedupOver(b, base.WithTOPT())
		twoX = speedupOver(b, base.With2xLLC())
	}
	b.ReportMetric(topt, "topt%")
	b.ReportMetric(twoX, "2xllc%")
	b.Logf("replacement vs capacity on %s: T-OPT %+.1f%%, 2xLLC %+.1f%%", ablationWorkload, topt, twoX)
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func BenchmarkExtensionAdaptiveTau(b *testing.B) {
	// The repository's future-work extension: online τ_glob adaptation
	// vs the paper's fixed τ=8 and a deliberately bad fixed τ=64.
	var fixed8, fixed64, adaptive float64
	for i := 0; i < b.N; i++ {
		wb := bench()
		base := wb.Profile.BaseConfig(1)
		fixed8 = speedupOver(b, base.WithSDCLP())
		lp := base.LP
		fixed64 = speedupOver(b, base.WithSDCLP().WithLP(lp.Entries, lp.Ways, 64))
		bad := base.WithAdaptiveLP()
		bad.LP.Tau = 64
		adaptive = speedupOver(b, bad)
	}
	b.ReportMetric(fixed8, "tau8%")
	b.ReportMetric(fixed64, "tau64%")
	b.ReportMetric(adaptive, "adaptive%")
	b.Logf("fixed tau=8 %+.1f%%, fixed tau=64 %+.1f%%, adaptive from 64 %+.1f%%", fixed8, fixed64, adaptive)
}

func BenchmarkAblationVictimCache(b *testing.B) {
	// Jouppi's victim cache targets conflict misses; the paper argues
	// graph gathers are capacity misses it cannot help.
	var vc8, vc32 float64
	for i := 0; i < b.N; i++ {
		wb := bench()
		base := wb.Profile.BaseConfig(1)
		vc8 = speedupOver(b, base.WithVictimCache(8))
		vc32 = speedupOver(b, base.WithVictimCache(32))
	}
	b.ReportMetric(vc8, "vc8%")
	b.ReportMetric(vc32, "vc32%")
	b.Logf("victim cache on %s: 8 entries %+.1f%%, 32 entries %+.1f%% (SDC+LP for contrast: see BenchmarkAblationRoutingQuality)", ablationWorkload, vc8, vc32)
}

func BenchmarkAblationBypassVsSDC(b *testing.B) {
	// Selective-Cache-style pure bypass vs the SDC: how much of the win
	// is skipping L2/LLC look-ups vs capturing short-term reuse.
	var bypass, sdclp, srrip float64
	for i := 0; i < b.N; i++ {
		wb := bench()
		base := wb.Profile.BaseConfig(1)
		bypass = speedupOver(b, base.WithBypassOnly())
		sdclp = speedupOver(b, base.WithSDCLP())
		srrip = speedupOver(b, base.WithRRIP())
	}
	b.ReportMetric(bypass, "bypass%")
	b.ReportMetric(sdclp, "sdclp%")
	b.ReportMetric(srrip, "srrip%")
	b.Logf("on %s: bypass-only %+.1f%%, SDC+LP %+.1f%%, SRRIP LLC %+.1f%%", ablationWorkload, bypass, sdclp, srrip)
}
