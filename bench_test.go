// Benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation, each regenerating the same rows/series the
// paper reports (at the fast "bench" profile over a reduced workload
// subset; use cmd/gmreport -profile small|full for the complete 36).
//
// The numbers of interest are emitted both as rendered tables (-v) and
// as custom benchmark metrics (e.g. geomean speed-up in %), so
// `go test -bench=. -benchmem` doubles as the reproduction run.
package graphmem_test

import (
	"strings"
	"sync"
	"testing"

	"graphmem"
	"graphmem/internal/harness"
)

var (
	wbOnce sync.Once
	wb     *harness.Workbench
)

// bench returns the shared workbench; graphs and simulation results are
// memoized across all benchmarks, so each experiment pays only for the
// runs it introduces.
func bench() *harness.Workbench {
	wbOnce.Do(func() {
		wb = harness.NewWorkbench(harness.Bench())
	})
	return wb
}

// metric sanitizes a scheme name into a benchmark metric unit (no
// whitespace allowed).
func metric(name string) string {
	return strings.ReplaceAll(name, " ", "_") + "%"
}

// sweepSubset is the smaller set used by the parameter sweeps (three
// diverse workloads), keeping the full benchmark run tractable on one
// CPU.
func sweepSubset() []graphmem.WorkloadID {
	return []graphmem.WorkloadID{
		{Kernel: "pr", Graph: "kron"},
		{Kernel: "cc", Graph: "urand"},
		{Kernel: "tc", Graph: "twitter"},
	}
}

// benchSubset is the reduced workload set used by the benchmarks:
// three kernels of distinct styles (pull, push-mostly hook/compress,
// push-only intersection) on the three most distinct graph families.
// BFS is deliberately not in this subset: at bench scale its hot
// irregular working set (frontier bitmap + hub parents) fits the L2,
// so bypassing regresses it — a documented scale artefact (see
// EXPERIMENTS.md); the full 36-workload gmreport runs include it.
func benchSubset() []graphmem.WorkloadID {
	var out []graphmem.WorkloadID
	for _, k := range []string{"pr", "cc", "tc"} {
		for _, g := range []string{"kron", "urand", "twitter"} {
			out = append(out, graphmem.WorkloadID{Kernel: k, Graph: g})
		}
	}
	return out
}

func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench().Tab1()
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkTable2Kernels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench().Tab2()
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkTable3Graphs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench().Tab3()
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
}

func BenchmarkTable4Budget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := bench().Tab4(1)
		if i == 0 {
			b.Log("\n" + t.String())
		}
	}
	rows := graphmem.Budget(8<<10, 32, 128, 1)
	b.ReportMetric(graphmem.BudgetTotalKB(rows), "paperKB")
}

func BenchmarkFig2BaselineMPKI(b *testing.B) {
	var res *harness.Fig2Result
	for i := 0; i < b.N; i++ {
		res = bench().Fig2(benchSubset())
	}
	b.Log("\n" + res.Table().String())
	b.ReportMetric(res.AvgL1D, "L1D-MPKI")
	b.ReportMetric(res.AvgL2, "L2-MPKI")
	b.ReportMetric(res.AvgLLC, "LLC-MPKI")
	b.ReportMetric(res.DRAMFraction*100, "DRAM%")
}

func BenchmarkFig3StrideDRAM(b *testing.B) {
	var res *harness.Fig3Result
	for i := 0; i < b.N; i++ {
		res = bench().Fig3(graphmem.WorkloadID{Kernel: "cc", Graph: "kron"})
	}
	b.Log("\n" + res.Table().String())
}

func BenchmarkFig7SingleCoreSpeedup(b *testing.B) {
	var res *harness.SpeedupResult
	for i := 0; i < b.N; i++ {
		res = bench().Fig7(benchSubset())
	}
	b.Log("\n" + res.Table().String())
	for i, s := range res.Schemes {
		b.ReportMetric(res.GeomeanPct[i], metric(s))
	}
}

func BenchmarkFig8L2LLCMPKI(b *testing.B) {
	var res *harness.Fig89Result
	for i := 0; i < b.N; i++ {
		res = bench().Fig89(benchSubset())
	}
	b.Log("\n" + res.Fig8Table().String())
	b.ReportMetric(res.AvgBaseL2, "baseL2")
	b.ReportMetric(res.AvgSdcL2, "sdcL2")
	b.ReportMetric(res.AvgBaseLLC, "baseLLC")
	b.ReportMetric(res.AvgSdcLLC, "sdcLLC")
}

func BenchmarkFig9L1SDCMPKI(b *testing.B) {
	var res *harness.Fig89Result
	for i := 0; i < b.N; i++ {
		res = bench().Fig89(benchSubset())
	}
	b.Log("\n" + res.Fig9Table().String())
	b.ReportMetric(res.AvgBaseL1D, "baseL1D")
	b.ReportMetric(res.AvgSdcL1D, "sdcL1D")
	b.ReportMetric(res.AvgSdcSDC, "sdcSDC")
}

func BenchmarkFig10SDCSize(b *testing.B) {
	var res *harness.Fig10Result
	for i := 0; i < b.N; i++ {
		res = bench().Fig10(sweepSubset())
	}
	b.Log("\n" + res.Table().String())
	b.ReportMetric(res.GeomeanPct[0], "8KB%")
	b.ReportMetric(res.AvgSDCMPKI[0], "8KB-MPKI")
}

func BenchmarkFig11LPEntries(b *testing.B) {
	var res *harness.SweepResult
	for i := 0; i < b.N; i++ {
		res = bench().Fig11(sweepSubset())
	}
	b.Log("\n" + res.Table().String())
}

func BenchmarkFig12LPAssoc(b *testing.B) {
	var res *harness.SweepResult
	for i := 0; i < b.N; i++ {
		res = bench().Fig12(sweepSubset())
	}
	b.Log("\n" + res.Table().String())
}

func BenchmarkTauGlobSweep(b *testing.B) {
	var res *harness.TauResult
	for i := 0; i < b.N; i++ {
		res = bench().Tau(sweepSubset(), []uint64{0, 4, 8, 32, 256})
	}
	b.Log("\n" + res.Table().String())
}

func BenchmarkFig13Expert(b *testing.B) {
	var res *harness.SpeedupResult
	for i := 0; i < b.N; i++ {
		res = bench().Fig13(benchSubset())
	}
	b.Log("\n" + res.Table().String())
	for i, s := range res.Schemes {
		b.ReportMetric(res.GeomeanPct[i], metric(s))
	}
}

func BenchmarkFig14MultiCore(b *testing.B) {
	mixes := graphmem.GenerateMixes(benchSubset(), 2, 14)
	var res *harness.Fig14Result
	for i := 0; i < b.N; i++ {
		res = bench().Fig14(mixes)
	}
	b.Log("\n" + res.Table().String())
	for i, s := range res.Schemes {
		b.ReportMetric(res.GeomeanPct[i], metric(s))
	}
}

func BenchmarkSectionVEEnergy(b *testing.B) {
	var res *harness.EnergyResult
	for i := 0; i < b.N; i++ {
		res = bench().Energy(benchSubset())
	}
	b.Log("\n" + res.Table().String())
	b.ReportMetric(res.AvgShare, "proposal%")
	b.ReportMetric(res.AvgBase, "base-nJ/KI")
	b.ReportMetric(res.AvgSDC, "sdclp-nJ/KI")
}
