// Command gmbench is the continuous-benchmark gate: it parses `go test
// -bench` output, reduces each benchmark's -count repetitions to a
// robust summary (median ns/op, max allocs/op), and compares the
// summary against a committed baseline file, benchstat-style.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem -count=6 \
//	    ./internal/cache ./internal/dram ./internal/sim | tee bench.out
//	gmbench -in bench.out -baseline ci/bench_baseline.txt -json BENCH_5.json
//	gmbench -in bench.out -baseline ci/bench_baseline.txt -update
//
// The gate fails (exit 1) when any baseline benchmark regresses by more
// than -threshold in median time/op (subject to -slack, an absolute
// floor that keeps sub-nanosecond benchmarks from tripping on jitter),
// when allocs/op grows at all (allocations are deterministic, so any
// increase is a real regression), or when a baseline benchmark is
// missing from the input (the gate must not silently shrink). New
// benchmarks absent from the baseline are reported but do not fail;
// commit them with -update.
//
// -json writes a BENCH_5.json artifact with the same top-level schema
// as the bench-parallel job's BENCH_2.json — here j1_ms is the summed
// baseline medians, jn_ms the summed current medians, and speedup their
// ratio — plus a per-benchmark breakdown.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark's reduced summary.
type result struct {
	name   string
	pkg    string
	ns     []float64 // ns/op samples across -count repetitions
	allocs []int64   // allocs/op samples
}

func (r *result) medianNs() float64 {
	s := append([]float64(nil), r.ns...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func (r *result) maxAllocs() int64 {
	var m int64
	for _, a := range r.allocs {
		if a > m {
			m = a
		}
	}
	return m
}

// parseBench reads `go test -bench` output: "pkg:" header lines set the
// current package, and every "Benchmark..." line contributes one sample
// to its benchmark (the -cpu / GOMAXPROCS suffix is stripped so the
// name is stable across runner shapes).
func parseBench(rd io.Reader) (map[string]*result, []string, error) {
	results := make(map[string]*result)
	var order []string
	pkg := ""
	sc := bufio.NewScanner(rd)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") || !strings.Contains(line, "ns/op") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			continue
		}
		name := f[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		name = strings.TrimPrefix(name, "Benchmark")
		r := results[name]
		if r == nil {
			r = &result{name: name, pkg: pkg}
			results[name] = r
			order = append(order, name)
		}
		// Value/unit pairs follow the iteration count.
		for i := 2; i+1 < len(f); i += 2 {
			switch f[i+1] {
			case "ns/op":
				v, err := strconv.ParseFloat(f[i], 64)
				if err != nil {
					return nil, nil, fmt.Errorf("bad ns/op in %q: %v", line, err)
				}
				r.ns = append(r.ns, v)
			case "allocs/op":
				v, err := strconv.ParseInt(f[i], 10, 64)
				if err != nil {
					return nil, nil, fmt.Errorf("bad allocs/op in %q: %v", line, err)
				}
				r.allocs = append(r.allocs, v)
			}
		}
	}
	return results, order, sc.Err()
}

// baselineEntry is one committed reference point.
type baselineEntry struct {
	ns     float64
	allocs int64
}

func readBaseline(path string) (map[string]baselineEntry, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	base := make(map[string]baselineEntry)
	var order []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) != 3 {
			return nil, nil, fmt.Errorf("%s: malformed line %q (want: name median_ns_per_op max_allocs_per_op)", path, line)
		}
		ns, err := strconv.ParseFloat(f[1], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: bad ns/op in %q: %v", path, line, err)
		}
		allocs, err := strconv.ParseInt(f[2], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: bad allocs/op in %q: %v", path, line, err)
		}
		base[f[0]] = baselineEntry{ns: ns, allocs: allocs}
		order = append(order, f[0])
	}
	return base, order, sc.Err()
}

func writeBaseline(path string, results map[string]*result, order []string) error {
	var b strings.Builder
	b.WriteString("# Continuous-benchmark baseline: median ns/op and max allocs/op of the\n")
	b.WriteString("# pinned microbenchmark subset (internal/cache, internal/dram,\n")
	b.WriteString("# internal/sim) at -count=6. Regenerate after intentional perf or\n")
	b.WriteString("# hardware changes with:\n")
	b.WriteString("#   go test -run '^$' -bench . -benchmem -count=6 \\\n")
	b.WriteString("#       ./internal/cache ./internal/dram ./internal/sim > bench.out\n")
	b.WriteString("#   go run ./cmd/gmbench -in bench.out -baseline ci/bench_baseline.txt -update\n")
	for _, name := range order {
		r := results[name]
		fmt.Fprintf(&b, "%s %.4g %d\n", name, r.medianNs(), r.maxAllocs())
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// benchJSON mirrors the bench-parallel job's BENCH_2.json top-level
// schema so the perf-trajectory artifacts stay uniformly consumable.
type benchJSON struct {
	Bench      string      `json:"bench"`
	Profile    string      `json:"profile"`
	Subset     string      `json:"subset"`
	Cores      int         `json:"cores"`
	J1Ms       float64     `json:"j1_ms"`
	JnMs       float64     `json:"jn_ms"`
	Speedup    float64     `json:"speedup"`
	Host       hostInfo    `json:"host"`
	Benchmarks []benchLine `json:"benchmarks"`
}

// hostInfo records where the numbers were produced: benchmark artifacts
// are only comparable across runs on like hardware, so the machine
// shape travels with the data.
type hostInfo struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	CPUModel   string `json:"cpu_model,omitempty"`
}

// captureHost snapshots the host shape. The CPU model comes from
// /proc/cpuinfo and is best-effort: absent (non-Linux, restricted
// container) it is simply omitted from the artifact.
func captureHost() hostInfo {
	h := hostInfo{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, ok := strings.CutPrefix(line, "model name"); ok {
				if _, v, ok := strings.Cut(name, ":"); ok {
					h.CPUModel = strings.TrimSpace(v)
					break
				}
			}
		}
	}
	return h
}

type benchLine struct {
	Name             string  `json:"name"`
	Pkg              string  `json:"pkg,omitempty"`
	NsPerOp          float64 `json:"ns_per_op"`
	AllocsPerOp      int64   `json:"allocs_per_op"`
	BaselineNsPerOp  float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineAllocs   int64   `json:"baseline_allocs_per_op,omitempty"`
	DeltaNs          float64 `json:"delta,omitempty"` // (new-old)/old
	Status           string  `json:"status"`          // ok|regression|new|missing
	RegressionReason string  `json:"reason,omitempty"`
}

func main() {
	in := flag.String("in", "", "benchmark output file to parse (default: stdin)")
	baselinePath := flag.String("baseline", "ci/bench_baseline.txt", "committed baseline file")
	threshold := flag.Float64("threshold", 0.10, "relative time/op regression that fails the gate")
	slack := flag.Float64("slack", 0.5, "absolute ns/op a benchmark must regress by before the threshold applies (jitter floor for sub-ns benchmarks)")
	update := flag.Bool("update", false, "rewrite the baseline from this run instead of comparing")
	jsonPath := flag.String("json", "", "also write a BENCH_5-style JSON artifact")
	flag.Parse()

	rd := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gmbench:", err)
			os.Exit(2)
		}
		defer f.Close()
		rd = f
	}
	results, order, err := parseBench(rd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gmbench:", err)
		os.Exit(2)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "gmbench: no benchmark lines found in input")
		os.Exit(2)
	}

	if *update {
		if err := writeBaseline(*baselinePath, results, order); err != nil {
			fmt.Fprintln(os.Stderr, "gmbench:", err)
			os.Exit(2)
		}
		fmt.Printf("gmbench: wrote %d benchmarks to %s\n", len(order), *baselinePath)
		return
	}

	base, baseOrder, err := readBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gmbench:", err)
		os.Exit(2)
	}

	var lines []benchLine
	var sumBase, sumCur float64
	failed := false

	// Baseline benchmarks first, in baseline order: these are the gate.
	for _, name := range baseOrder {
		old := base[name]
		r, ok := results[name]
		if !ok {
			failed = true
			lines = append(lines, benchLine{
				Name: name, BaselineNsPerOp: old.ns, BaselineAllocs: old.allocs,
				Status: "missing", RegressionReason: "benchmark in baseline but not in input",
			})
			fmt.Printf("%-28s MISSING (baseline %.4g ns/op)\n", name, old.ns)
			continue
		}
		cur, allocs := r.medianNs(), r.maxAllocs()
		sumBase += old.ns
		sumCur += cur
		delta := 0.0
		if old.ns > 0 {
			delta = (cur - old.ns) / old.ns
		}
		l := benchLine{
			Name: name, Pkg: r.pkg, NsPerOp: cur, AllocsPerOp: allocs,
			BaselineNsPerOp: old.ns, BaselineAllocs: old.allocs, DeltaNs: delta, Status: "ok",
		}
		switch {
		case allocs > old.allocs:
			l.Status = "regression"
			l.RegressionReason = fmt.Sprintf("allocs/op %d > baseline %d", allocs, old.allocs)
		case delta > *threshold && cur-old.ns > *slack:
			l.Status = "regression"
			l.RegressionReason = fmt.Sprintf("time/op +%.1f%% > %.0f%% threshold", delta*100, *threshold*100)
		}
		if l.Status == "regression" {
			failed = true
		}
		fmt.Printf("%-28s %10.4g ns/op  (baseline %.4g, %+.1f%%)  %d allocs/op  %s\n",
			name, cur, old.ns, delta*100, allocs, strings.ToUpper(l.Status))
		lines = append(lines, l)
	}

	// Benchmarks not yet in the baseline: informational only.
	for _, name := range order {
		if _, ok := base[name]; ok {
			continue
		}
		r := results[name]
		lines = append(lines, benchLine{
			Name: name, Pkg: r.pkg, NsPerOp: r.medianNs(), AllocsPerOp: r.maxAllocs(), Status: "new",
		})
		fmt.Printf("%-28s %10.4g ns/op  NEW (not in baseline; add with -update)\n", name, r.medianNs())
	}

	if *jsonPath != "" {
		speedup := 0.0
		if sumCur > 0 {
			speedup = sumBase / sumCur
		}
		out := benchJSON{
			Bench:   "micro-gate",
			Profile: "bench",
			Subset:  "cache,dram,sim",
			Cores:   runtime.NumCPU(),
			J1Ms:    sumBase / 1e6,
			JnMs:    sumCur / 1e6,
			Speedup: speedup,
			Host:    captureHost(),
		}
		out.Benchmarks = lines
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "gmbench:", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "gmbench:", err)
			os.Exit(2)
		}
	}

	if failed {
		fmt.Fprintln(os.Stderr, "gmbench: benchmark gate FAILED")
		os.Exit(1)
	}
	fmt.Println("gmbench: benchmark gate passed")
}
