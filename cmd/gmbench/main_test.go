package main

import (
	"encoding/json"
	"runtime"
	"strings"
	"testing"
)

func TestCaptureHost(t *testing.T) {
	h := captureHost()
	if h.GoVersion != runtime.Version() {
		t.Errorf("go version = %q", h.GoVersion)
	}
	if h.GOOS != runtime.GOOS || h.GOARCH != runtime.GOARCH {
		t.Errorf("platform = %s/%s", h.GOOS, h.GOARCH)
	}
	if h.NumCPU < 1 || h.GOMAXPROCS < 1 {
		t.Errorf("cpu counts = %d/%d", h.NumCPU, h.GOMAXPROCS)
	}
	if runtime.GOOS == "linux" && h.CPUModel != "" && strings.TrimSpace(h.CPUModel) != h.CPUModel {
		t.Errorf("cpu model not trimmed: %q", h.CPUModel)
	}

	data, err := json.Marshal(benchJSON{Host: h})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"go_version"`) {
		t.Errorf("host block missing from artifact JSON: %s", data)
	}
}
