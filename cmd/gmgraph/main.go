// Command gmgraph generates, converts and inspects input graphs:
//
//	gmgraph -gen kron -scale 19 -out kron.gmg          # synthetic inputs
//	gmgraph -convert soc-LiveJournal.txt -undirected -out lj.gmg
//	gmgraph -stats kron.gmg
//
// Binary .gmg files load an order of magnitude faster than re-running
// the generators or parsing edge lists, and work with every profile via
// the public API (graphmem.ReadBinaryGraph).
package main

import (
	"flag"
	"fmt"
	"os"

	"graphmem"
	"graphmem/internal/graph"
)

func main() {
	gen := flag.String("gen", "", "generate: web|road|twitter|kron|urand|friendster")
	scale := flag.Int("scale", 18, "generate: log2 of the vertex count (kron/urand) or vertex-count scale")
	ef := flag.Int64("ef", 8, "generate: edge factor / average degree")
	seed := flag.Uint64("seed", 42, "generate: RNG seed")
	convert := flag.String("convert", "", "convert: edge-list text file to read")
	undirected := flag.Bool("undirected", false, "convert: symmetrize edges")
	out := flag.String("out", "", "output .gmg file for -gen/-convert")
	stats := flag.String("stats", "", "inspect: .gmg file to summarize")
	prof := graphmem.RegisterProfilingFlags(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	fail(err)
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "gmgraph:", err)
		}
	}()

	switch {
	case *gen != "":
		g, err := generate(*gen, *scale, *ef, *seed)
		if err == nil {
			err = save(g, *out)
		}
		fail(err)
	case *convert != "":
		f, err := os.Open(*convert)
		fail(err)
		defer f.Close()
		g, err := graphmem.ReadEdgeList(f, *undirected)
		fail(err)
		fail(save(g, *out))
	case *stats != "":
		f, err := os.Open(*stats)
		fail(err)
		defer f.Close()
		g, err := graphmem.ReadBinaryGraph(f)
		fail(err)
		printStats(g)
	default:
		fmt.Fprintln(os.Stderr, "gmgraph: use -gen, -convert or -stats")
		os.Exit(1)
	}
}

func generate(kind string, scale int, ef int64, seed uint64) (*graphmem.Graph, error) {
	n := int32(1) << uint(scale)
	switch kind {
	case "kron":
		return graphmem.Kron(scale, ef, seed), nil
	case "urand":
		return graphmem.Urand(n, ef*int64(n)/2, seed), nil
	case "twitter":
		return graphmem.PowerLaw(n, int(ef), 0.15, false, seed), nil
	case "friendster":
		return graphmem.PowerLaw(n, int(ef), 0.05, true, seed), nil
	case "web":
		return graphmem.WebLike(n, int(ef), seed), nil
	case "road":
		side := int32(1) << uint(scale/2)
		return graphmem.RoadGrid(side, side, 255, seed), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", kind)
	}
}

func save(g *graphmem.Graph, path string) error {
	if path == "" {
		return fmt.Errorf("missing -out")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := g.WriteBinary(f); err != nil {
		return err
	}
	s := g.ComputeStats()
	fmt.Printf("wrote %s: %d vertices, %d edges (max degree %d, avg %.1f)\n",
		path, s.Vertices, s.Edges, s.MaxDegree, s.AvgDegree)
	return nil
}

func printStats(g *graph.Graph) {
	s := g.ComputeStats()
	fmt.Printf("vertices    %d\n", s.Vertices)
	fmt.Printf("edges       %d\n", s.Edges)
	fmt.Printf("max degree  %d\n", s.MaxDegree)
	fmt.Printf("avg degree  %.2f\n", s.AvgDegree)
	fmt.Printf("zero out    %d\n", s.Zeros)
	fmt.Printf("weighted    %v\n", g.Weighted())
	fmt.Println("degree histogram (2^i buckets):")
	for i, c := range graph.DegreeHistogram(g) {
		if c > 0 {
			fmt.Printf("  2^%-2d %d\n", i, c)
		}
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gmgraph:", err)
		os.Exit(1)
	}
}
