// Command gmreport regenerates the paper's tables and figures.
//
// Usage:
//
//	gmreport -exp fig7 -profile bench
//	gmreport -exp all -profile small > report.txt
//	gmreport -exp fig2,fig3,tab4 -kernels pr,cc -graphs kron,urand
//	gmreport -exp fig7,fig8 -profile bench -out report/
//
// Every experiment prints the same rows/series the paper's
// corresponding artefact reports; EXPERIMENTS.md records a reference
// run. With -out, each experiment is additionally written as
// <dir>/<id>.txt and <dir>/<id>.csv plus a sweep manifest.json
// (schema, profile, machine config, experiment list, wall clock).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"graphmem"
	"graphmem/internal/harness"
)

func main() {
	// "latency" (the flight-recorder breakdown) and "prefetch" (the
	// prefetcher head-to-head) are opt-in: they re-run workloads under
	// non-default machine settings, so 'all' excludes them to keep the
	// default sweep identical to earlier releases.
	exp := flag.String("exp", "all", "comma-separated experiment ids ("+strings.Join(graphmem.ExperimentIDs, ",")+",latency,prefetch) or 'all'")
	profileName := flag.String("profile", "small", "scale profile: bench|small|full")
	kernelsFlag := flag.String("kernels", "", "restrict to these kernels (comma separated)")
	graphsFlag := flag.String("graphs", "", "restrict to these graphs (comma separated)")
	mixes := flag.Int("mixes", 0, "override the number of fig14 mixes")
	jobs := flag.Int("j", 0, "max concurrent simulations (0 = all host cores); output is identical at any -j")
	weaveJobs := flag.Int("wj", 0, "run multi-core simulations (fig14 mixes, isolated IPCs) on the bound–weave engine with up to this many host workers per run; workers count against -j, output is identical at any -wj")
	outDir := flag.String("out", "", "also write each table as <dir>/<id>.txt and .csv plus a sweep manifest.json")
	quiet := flag.Bool("q", false, "suppress progress logging")
	checkFlag := flag.String("check", "off", "differential checking: off|oracle|full (exit 1 on any violation)")
	samplePlan := flag.String("sample", "", "run eligible single-core simulations under the statistical sampler \"period,len,offset[,warm]\"; tables show estimates")
	ckptDir := flag.String("ckpt", "", "warm-up checkpoint store directory (reuses functional warm-ups across the sweep; needs -sample)")
	storeDir := flag.String("store", "", "disk-backed result store directory (read-through/write-through cache of simulation results; tables are byte-identical with or without it)")
	metricsAddr := flag.String("metrics", "", "serve live sweep metrics (Prometheus text + expvar) on this address, e.g. :6060")
	prof := graphmem.RegisterProfilingFlags(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gmreport:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "gmreport:", err)
		}
	}()

	profile, err := graphmem.ProfileByName(*profileName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gmreport:", err)
		os.Exit(1)
	}
	if *mixes > 0 {
		profile.Mixes = *mixes
	}
	wb := graphmem.NewWorkbench(profile)
	wb.Parallelism = *jobs
	wb.WeaveJobs = *weaveJobs
	checkLevel, err := graphmem.ParseCheckLevel(*checkFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gmreport:", err)
		os.Exit(1)
	}
	wb.CheckLevel = checkLevel
	plan, err := graphmem.ParseSamplePlan(*samplePlan)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gmreport:", err)
		os.Exit(1)
	}
	if plan.Enabled() {
		if checkLevel != graphmem.CheckOff {
			fmt.Fprintln(os.Stderr, "gmreport: -sample cannot run under -check (the checker needs detailed execution everywhere)")
			os.Exit(1)
		}
		wb.Sampling = plan
		if *ckptDir != "" {
			st, err := graphmem.NewCheckpointStore(*ckptDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gmreport:", err)
				os.Exit(1)
			}
			wb.Checkpoints = st
		}
	} else if *ckptDir != "" {
		fmt.Fprintln(os.Stderr, "gmreport: -ckpt needs -sample (checkpoints store sampled warm-ups)")
		os.Exit(1)
	}
	if *storeDir != "" {
		st, err := graphmem.NewResultStore(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gmreport:", err)
			os.Exit(1)
		}
		wb.Store = st
	}
	if *metricsAddr != "" {
		wb.Metrics = graphmem.NewMetrics()
		if wb.Store != nil {
			wb.Metrics.AttachStore(wb.Store)
		}
		addr, err := wb.Metrics.Serve(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gmreport:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "gmreport: serving metrics at http://%s/metrics\n", addr)
	}
	if !*quiet {
		// All progress (run/cached lines with done/total and ETA,
		// narration) flows through the workbench's obs.Progress reporter;
		// -q leaves the sink unset so the reporter counts silently.
		wb.Progress = func(msg string) { fmt.Fprintln(os.Stderr, msg) }
	}

	subset, err := graphmem.SubsetWorkloads(*kernelsFlag, *graphsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gmreport:", err)
		os.Exit(1)
	}

	var ids []string
	if *exp == "all" {
		ids = graphmem.ExperimentIDs
	} else {
		ids = strings.Split(*exp, ",")
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "gmreport:", err)
			os.Exit(1)
		}
	}

	start := time.Now()
	var done []string
	for _, id := range ids {
		id = strings.TrimSpace(id)
		t, err := wb.Experiment(id, subset)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gmreport:", err)
			os.Exit(1)
		}
		t.Render(os.Stdout)
		if *outDir != "" {
			if err := writeTableFiles(*outDir, t); err != nil {
				fmt.Fprintln(os.Stderr, "gmreport:", err)
				os.Exit(1)
			}
		}
		done = append(done, id)
	}
	if *outDir != "" {
		if err := writeSweepManifest(*outDir, wb, done, start); err != nil {
			fmt.Fprintln(os.Stderr, "gmreport:", err)
			os.Exit(1)
		}
	}
	if wb.Checkpoints != nil {
		fmt.Fprintf(os.Stderr, "gmreport: checkpoint store %s: %d hits, %d misses\n",
			wb.Checkpoints.Dir(), wb.Checkpoints.Hits(), wb.Checkpoints.Misses())
	}
	if wb.Store != nil {
		fmt.Fprintf(os.Stderr, "gmreport: %s\n", graphmem.StoreSummary(wb.Store))
	}
	if checkLevel != graphmem.CheckOff {
		runs, violations, details := wb.CheckOutcome()
		if violations > 0 {
			fmt.Fprintf(os.Stderr, "gmreport: differential checker found %d violation(s) across %d checked runs:\n",
				violations, runs)
			for _, v := range details {
				fmt.Fprintf(os.Stderr, "  %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "gmreport: differential checker clean across %d checked runs (level %s)\n",
			runs, checkLevel)
	}
}

// writeTableFiles persists one table as <dir>/<id>.txt and .csv.
func writeTableFiles(dir string, t *graphmem.Table) error {
	txt, err := os.Create(filepath.Join(dir, t.ID+".txt"))
	if err != nil {
		return err
	}
	t.Render(txt)
	if err := txt.Close(); err != nil {
		return err
	}
	csvf, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	if err := t.RenderCSV(csvf); err != nil {
		csvf.Close()
		return err
	}
	return csvf.Close()
}

// writeSweepManifest records the sweep's provenance next to the tables.
func writeSweepManifest(dir string, wb *harness.Workbench, experiments []string, start time.Time) error {
	m := graphmem.NewManifest("gmreport")
	m.Profile = wb.Profile.Name
	m.Config = wb.BaseConfig().ManifestInfo()
	m.Experiments = experiments
	f, err := os.Create(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return err
	}
	if err := m.Finalize(start).WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
