// Command gmreport regenerates the paper's tables and figures.
//
// Usage:
//
//	gmreport -exp fig7 -profile bench
//	gmreport -exp all -profile small > report.txt
//	gmreport -exp fig2,fig3,tab4 -kernels pr,cc -graphs kron,urand
//
// Every experiment prints the same rows/series the paper's
// corresponding artefact reports; EXPERIMENTS.md records a reference
// run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"graphmem"
	"graphmem/internal/harness"
)

var allExperiments = []string{
	"tab1", "tab2", "tab3", "tab4",
	"fig2", "fig3", "fig7", "fig8", "fig9",
	"fig10", "fig11", "fig12", "tau", "fig13", "fig14", "energy",
}

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids ("+strings.Join(allExperiments, ",")+") or 'all'")
	profileName := flag.String("profile", "small", "scale profile: bench|small|full")
	kernelsFlag := flag.String("kernels", "", "restrict to these kernels (comma separated)")
	graphsFlag := flag.String("graphs", "", "restrict to these graphs (comma separated)")
	mixes := flag.Int("mixes", 0, "override the number of fig14 mixes")
	quiet := flag.Bool("q", false, "suppress progress logging")
	flag.Parse()

	profile, err := graphmem.ProfileByName(*profileName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gmreport:", err)
		os.Exit(1)
	}
	if *mixes > 0 {
		profile.Mixes = *mixes
	}
	wb := graphmem.NewWorkbench(profile)
	if !*quiet {
		wb.Progress = func(msg string) { fmt.Fprintln(os.Stderr, msg) }
	}

	subset := subsetFromFlags(*kernelsFlag, *graphsFlag)

	var ids []string
	if *exp == "all" {
		ids = allExperiments
	} else {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		if err := run(wb, strings.TrimSpace(id), subset); err != nil {
			fmt.Fprintln(os.Stderr, "gmreport:", err)
			os.Exit(1)
		}
	}
}

// subsetFromFlags builds the workload filter; nil means all 36.
func subsetFromFlags(kernelsFlag, graphsFlag string) []graphmem.WorkloadID {
	if kernelsFlag == "" && graphsFlag == "" {
		return nil
	}
	want := func(list string, v string) bool {
		if list == "" {
			return true
		}
		for _, x := range strings.Split(list, ",") {
			if strings.TrimSpace(x) == v {
				return true
			}
		}
		return false
	}
	var out []graphmem.WorkloadID
	for _, id := range graphmem.AllWorkloads() {
		if want(kernelsFlag, id.Kernel) && want(graphsFlag, id.Graph) {
			out = append(out, id)
		}
	}
	if len(out) == 0 {
		fmt.Fprintln(os.Stderr, "gmreport: subset filter matched no workloads")
		os.Exit(1)
	}
	return out
}

func run(wb *harness.Workbench, id string, subset []graphmem.WorkloadID) error {
	out := os.Stdout
	switch id {
	case "tab1":
		wb.Tab1().Render(out)
	case "tab2":
		wb.Tab2().Render(out)
	case "tab3":
		wb.Tab3().Render(out)
	case "tab4":
		wb.Tab4(1).Render(out)
	case "fig2":
		wb.Fig2(subset).Table().Render(out)
	case "fig3":
		id := graphmem.WorkloadID{Kernel: "cc", Graph: "friendster"}
		if subset != nil {
			id = subset[0]
		}
		wb.Fig3(id).Table().Render(out)
	case "fig7":
		wb.Fig7(subset).Table().Render(out)
	case "fig8":
		wb.Fig89(subset).Fig8Table().Render(out)
	case "fig9":
		wb.Fig89(subset).Fig9Table().Render(out)
	case "fig10":
		wb.Fig10(subset).Table().Render(out)
	case "fig11":
		wb.Fig11(subset).Table().Render(out)
	case "fig12":
		wb.Fig12(subset).Table().Render(out)
	case "tau":
		wb.Tau(subset, nil).Table().Render(out)
	case "fig13":
		wb.Fig13(subset).Table().Render(out)
	case "energy":
		wb.Energy(subset).Table().Render(out)
	case "fig14":
		var mixes [][]graphmem.WorkloadID
		if subset != nil {
			mixes = graphmem.GenerateMixes(subset, wb.Profile.Mixes, 14)
		}
		wb.Fig14(mixes).Table().Render(out)
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}
