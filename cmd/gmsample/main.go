// Command gmsample is the statistical-sampling CI gate: it validates
// the sampler's estimates against full-fidelity detailed runs on a
// fixed config x workload matrix and fails when accuracy or speed
// regress.
//
// Usage:
//
//	gmsample -write-reference            # regenerate ci/sample_reference.json
//	gmsample                             # run the gate against the committed reference
//	gmsample -ckpt /path/to/store        # ... reusing warm-up checkpoints across runs
//	gmsample -out SAMPLE_8.json          # ... recording the trajectory artifact
//
// The gate runs every cell twice — once detailed (full-fidelity
// windows) and once sampled — and enforces, per cell:
//
//   - the detailed run must reproduce the committed reference exactly
//     (the simulator is deterministic, so any difference means the
//     reference is stale: regenerate it with -write-reference);
//   - the sampled IPC and L1 demand MPKI estimates must land within
//     -tol (default 3%) of the detailed values;
//   - the 99% confidence interval must contain the detailed value.
//
// Across the matrix it further enforces that sampling reduced the
// detailed-instruction volume by at least -minvol (default 5x). The
// wall-clock speedup is recorded in the artifact; its floor (-minspeed,
// default 1.25x) is deliberately loose because record generation is an
// irreducible serial cost shared by both modes (see EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"graphmem"
)

// cell is one gate matrix point: a config variant, a workload, and the
// per-workload sampling plan validated for it. bfs keeps a 50k period
// where pr and cc use 65k — pr's loop structure aliases against 50k
// (a ~4% MPKI bias), while bfs's phase lengths alias against 65k.
type cell struct {
	Config   string              `json:"config"`
	Workload string              `json:"workload"`
	Plan     graphmem.SamplePlan `json:"plan"`
}

// refCell is one committed reference measurement: the detailed run's
// exact metrics for a cell.
type refCell struct {
	cell
	IPC          float64 `json:"ipc"`
	L1DemandMPKI float64 `json:"l1_demand_mpki"`
	Instructions int64   `json:"instructions"`
}

// reference is the committed gate reference (ci/sample_reference.json).
type reference struct {
	SchemaVersion int       `json:"schema_version"`
	Profile       string    `json:"profile"`
	Warmup        int64     `json:"warmup"`
	Measure       int64     `json:"measure"`
	Tolerance     float64   `json:"tolerance"`
	Cells         []refCell `json:"cells"`
}

// gateCell is one cell's outcome in the SAMPLE_8.json artifact.
type gateCell struct {
	Config        string  `json:"config"`
	Workload      string  `json:"workload"`
	IPCRef        float64 `json:"ipc_ref"`
	IPCEst        float64 `json:"ipc_est"`
	IPCHalfWidth  float64 `json:"ipc_half_width"`
	IPCErr        float64 `json:"ipc_err"`
	MPKIRef       float64 `json:"mpki_ref"`
	MPKIEst       float64 `json:"mpki_est"`
	MPKIHalfWidth float64 `json:"mpki_half_width"`
	MPKIErr       float64 `json:"mpki_err"`
	Samples       int     `json:"samples"`
	DetailedInstr int64   `json:"detailed_instructions"`
	FullInstr     int64   `json:"full_instructions"`
	FullMs        int64   `json:"full_ms"`
	SampledMs     int64   `json:"sampled_ms"`
	CheckpointHit bool    `json:"checkpoint_hit"`
}

const (
	gateWarmup  = 200_000
	gateMeasure = 5_000_000
)

// matrix returns the gate's cells: {pr, bfs, cc} x {Baseline, SDC+LP}
// on the bench-scale machine over kron, with the per-workload plans the
// sampled-vs-full validation settled on (see EXPERIMENTS.md).
func matrix() []cell {
	planFor := map[string]graphmem.SamplePlan{
		"pr":  {Period: 65_000, SampleLen: 5_000, Offset: 13_000, DetailWarm: 5_000},
		"cc":  {Period: 65_000, SampleLen: 5_000, Offset: 13_000, DetailWarm: 5_000},
		"bfs": {Period: 50_000, SampleLen: 5_000, Offset: 10_000, DetailWarm: 5_000},
	}
	var out []cell
	for _, kernel := range []string{"pr", "bfs", "cc"} {
		for _, config := range []string{"baseline", "sdclp"} {
			out = append(out, cell{Config: config, Workload: kernel + ".kron", Plan: planFor[kernel]})
		}
	}
	return out
}

func cellConfig(base graphmem.Config, name string) graphmem.Config {
	if name == "sdclp" {
		return base.WithSDCLP()
	}
	return base
}

func main() {
	writeRef := flag.Bool("write-reference", false, "regenerate the committed reference from full detailed runs")
	refPath := flag.String("ref", "ci/sample_reference.json", "reference file path")
	outPath := flag.String("out", "", "write the gate outcome as a SAMPLE_8.json-style artifact")
	ckptDir := flag.String("ckpt", "", "warm-up checkpoint store directory for the sampled runs")
	tol := flag.Float64("tol", 0.03, "max relative error of sampled estimates vs the detailed reference")
	minVol := flag.Float64("minvol", 5.0, "min detailed-instruction volume reduction across the matrix")
	minSpeed := flag.Float64("minspeed", 1.25, "min wall-clock speedup across the matrix (loose: see command doc)")
	flag.Parse()

	profile, err := graphmem.ProfileByName("bench")
	if err != nil {
		fatal(err)
	}
	profile.Warmup, profile.Measure = gateWarmup, gateMeasure
	wb := graphmem.NewWorkbench(profile)
	wb.Progress = func(msg string) { fmt.Fprintln(os.Stderr, msg) }

	if *writeRef {
		if err := writeReference(wb, *refPath, *tol); err != nil {
			fatal(err)
		}
		fmt.Printf("gmsample: wrote %s\n", *refPath)
		return
	}

	blob, err := os.ReadFile(*refPath)
	if err != nil {
		fatal(fmt.Errorf("%v (generate it with gmsample -write-reference)", err))
	}
	var ref reference
	if err := json.Unmarshal(blob, &ref); err != nil {
		fatal(err)
	}
	if ref.Warmup != gateWarmup || ref.Measure != gateMeasure {
		fatal(fmt.Errorf("reference windows %d/%d do not match the gate's %d/%d; regenerate it",
			ref.Warmup, ref.Measure, gateWarmup, gateMeasure))
	}

	var store *graphmem.CheckpointStore
	if *ckptDir != "" {
		if store, err = graphmem.NewCheckpointStore(*ckptDir); err != nil {
			fatal(err)
		}
	}

	refByKey := make(map[string]refCell, len(ref.Cells))
	for _, rc := range ref.Cells {
		refByKey[rc.Config+"|"+rc.Workload] = rc
	}

	failures := 0
	fail := func(format string, args ...any) {
		failures++
		fmt.Fprintf(os.Stderr, "gmsample: FAIL: "+format+"\n", args...)
	}

	var cells []gateCell
	var fullMs, sampledMs, fullInstr, detailedInstr int64
	for _, c := range matrix() {
		rc, ok := refByKey[c.Config+"|"+c.Workload]
		if !ok {
			fail("%s/%s: no reference cell; regenerate the reference", c.Config, c.Workload)
			continue
		}
		base := cellConfig(profile.BaseConfig(1), c.Config).WithWindows(gateWarmup, gateMeasure)
		id := workloadID(c.Workload)

		t0 := time.Now()
		full := graphmem.RunSingleCore(base, wb.Workload(id, 0))
		tFull := time.Since(t0).Milliseconds()

		sampledCfg := base.WithSampling(c.Plan.Period, c.Plan.SampleLen, c.Plan.Offset).
			WithSampleWarm(c.Plan.DetailWarm)
		if store != nil {
			sampledCfg = sampledCfg.WithCheckpointStore(store)
		}
		t0 = time.Now()
		sampled := graphmem.RunSingleCore(sampledCfg, wb.Workload(id, 0))
		tSampled := time.Since(t0).Milliseconds()

		e := sampled.Sampling
		if e == nil {
			fail("%s/%s: sampled run produced no estimate", c.Config, c.Workload)
			continue
		}
		g := gateCell{
			Config: c.Config, Workload: c.Workload,
			IPCRef: full.Stats.IPC(), IPCEst: e.IPC.Mean, IPCHalfWidth: e.IPC.HalfWidth,
			IPCErr:  graphmem.RelErr(e.IPC.Mean, full.Stats.IPC()),
			MPKIRef: full.Stats.L1DemandMPKI(), MPKIEst: e.L1DemandMPKI.Mean,
			MPKIHalfWidth: e.L1DemandMPKI.HalfWidth,
			MPKIErr:       graphmem.RelErr(e.L1DemandMPKI.Mean, full.Stats.L1DemandMPKI()),
			Samples:       e.Samples,
			DetailedInstr: e.DetailedInstructions, FullInstr: full.Stats.Instructions,
			FullMs: tFull, SampledMs: tSampled, CheckpointHit: e.CheckpointHit,
		}
		cells = append(cells, g)
		fullMs += tFull
		sampledMs += tSampled
		fullInstr += full.Stats.Instructions
		detailedInstr += e.DetailedInstructions

		// Staleness: the detailed run must reproduce the committed
		// reference bit for bit (the simulator is deterministic).
		if g.IPCRef != rc.IPC || g.MPKIRef != rc.L1DemandMPKI || full.Stats.Instructions != rc.Instructions {
			fail("%s/%s: detailed run (IPC %.6f, MPKI %.6f) != committed reference (IPC %.6f, MPKI %.6f); reference is stale, regenerate with -write-reference",
				c.Config, c.Workload, g.IPCRef, g.MPKIRef, rc.IPC, rc.L1DemandMPKI)
		}
		// Accuracy: relative error and CI containment on both metrics.
		if g.IPCErr > *tol {
			fail("%s/%s: IPC estimate %.4f vs %.4f — rel error %.2f%% > %.1f%%",
				c.Config, c.Workload, g.IPCEst, g.IPCRef, 100*g.IPCErr, 100**tol)
		}
		if g.MPKIErr > *tol {
			fail("%s/%s: L1 MPKI estimate %.3f vs %.3f — rel error %.2f%% > %.1f%%",
				c.Config, c.Workload, g.MPKIEst, g.MPKIRef, 100*g.MPKIErr, 100**tol)
		}
		if !e.IPC.Contains(g.IPCRef) {
			fail("%s/%s: 99%% CI %.4f±%.4f excludes the detailed IPC %.4f",
				c.Config, c.Workload, g.IPCEst, g.IPCHalfWidth, g.IPCRef)
		}
		if !e.L1DemandMPKI.Contains(g.MPKIRef) {
			fail("%s/%s: 99%% CI %.3f±%.3f excludes the detailed L1 MPKI %.3f",
				c.Config, c.Workload, g.MPKIEst, g.MPKIHalfWidth, g.MPKIRef)
		}
		fmt.Printf("%-8s %-8s IPC %.4f est %.4f (%.2f%%)  MPKI %.2f est %.2f (%.2f%%)  %d samples  full %dms sampled %dms\n",
			c.Config, c.Workload, g.IPCRef, g.IPCEst, 100*g.IPCErr,
			g.MPKIRef, g.MPKIEst, 100*g.MPKIErr, g.Samples, tFull, tSampled)
	}

	volRed := float64(fullInstr) / float64(max64(detailedInstr, 1))
	speedup := float64(fullMs) / float64(max64(sampledMs, 1))
	fmt.Printf("matrix: detailed-volume reduction %.1fx  wall-clock %dms -> %dms (%.2fx)\n",
		volRed, fullMs, sampledMs, speedup)
	if store != nil {
		fmt.Printf("checkpoint store: %d hits, %d misses\n", store.Hits(), store.Misses())
	}
	if volRed < *minVol {
		fail("detailed-instruction volume reduction %.2fx below the %.1fx floor", volRed, *minVol)
	}
	if speedup < *minSpeed {
		fail("wall-clock speedup %.2fx below the %.2fx floor", speedup, *minSpeed)
	}

	if *outPath != "" {
		artifact := map[string]any{
			"bench":   "sampled-sim",
			"profile": "bench",
			"warmup":  gateWarmup,
			"measure": gateMeasure,
			"tol":     *tol,
			"cells":   cells,
			"full_ms": fullMs, "sampled_ms": sampledMs,
			"speedup":          speedup,
			"volume_reduction": volRed,
			"state_version":    graphmem.SampleStateVersion,
			"failures":         failures,
			"host": map[string]any{
				"go_version": runtime.Version(),
				"goos":       runtime.GOOS,
				"goarch":     runtime.GOARCH,
				"num_cpu":    runtime.NumCPU(),
			},
		}
		if store != nil {
			artifact["ckpt"] = map[string]int64{"hits": store.Hits(), "misses": store.Misses()}
		}
		blob, err := json.Marshal(artifact)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*outPath, append(blob, '\n'), 0o644); err != nil {
			fatal(err)
		}
	}

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "gmsample: %d gate failure(s)\n", failures)
		os.Exit(1)
	}
	fmt.Println("gmsample: gate clean")
}

// writeReference runs the matrix's detailed cells and commits their
// exact metrics plus the per-cell plans as the gate reference.
func writeReference(wb *graphmem.Workbench, path string, tol float64) error {
	profile := wb.Profile
	ref := reference{
		SchemaVersion: 1,
		Profile:       profile.Name,
		Warmup:        gateWarmup,
		Measure:       gateMeasure,
		Tolerance:     tol,
	}
	for _, c := range matrix() {
		base := cellConfig(profile.BaseConfig(1), c.Config).WithWindows(gateWarmup, gateMeasure)
		full := graphmem.RunSingleCore(base, wb.Workload(workloadID(c.Workload), 0))
		ref.Cells = append(ref.Cells, refCell{
			cell:         c,
			IPC:          full.Stats.IPC(),
			L1DemandMPKI: full.Stats.L1DemandMPKI(),
			Instructions: full.Stats.Instructions,
		})
	}
	blob, err := json.MarshalIndent(ref, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

func workloadID(s string) graphmem.WorkloadID {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return graphmem.WorkloadID{Kernel: s[:i], Graph: s[i+1:]}
		}
	}
	fatal(fmt.Errorf("bad workload %q", s))
	return graphmem.WorkloadID{}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gmsample:", err)
	os.Exit(1)
}
