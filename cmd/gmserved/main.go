// Command gmserved is the long-running sweep service: a disk-backed,
// content-addressed result store fronted by the experiment harness, so
// many clients (CI jobs, notebooks, colleagues on one box) share one
// warm cache and one in-flight run set.
//
// Usage:
//
//	gmserved -store /var/cache/graphmem -addr :8090
//	gmserved -store /var/cache/graphmem -store-max 2G     # LRU cap
//	gmserved -store /var/cache/graphmem -gc 512M          # offline GC, then exit
//
//	curl -s localhost:8090/api/run -d '{"profile":"bench","kernel":"pr","graph":"kron","config":"sdclp"}'
//	curl -s localhost:8090/api/sweep -d '{"profile":"bench","experiments":["tab1","fig10"],"kernels":"pr,cc"}'
//	curl -sN localhost:8090/api/jobs/j0001/events       # follow progress
//	curl -s  localhost:8090/api/jobs/j0001/result       # fetch the result
//	curl -s  localhost:8090/metrics                     # Prometheus (incl. store hit rate)
//
// A point requested twice — by one client or many — simulates once: the
// scheduler's single-flight latches dedupe in-flight runs, the
// workbench memo serves repeats within the process, and the store
// serves them across restarts. Results are byte-identical to a local
// gmreport/gmsim run of the same request.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"graphmem"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	storeDir := flag.String("store", "", "disk-backed result store directory (strongly recommended: without it only the per-process memo dedupes)")
	storeMax := flag.String("store-max", "", "LRU size cap for the store, e.g. 512M or 2G (enforced on every write)")
	gcSize := flag.String("gc", "", "shrink the store to this size (LRU eviction) and exit instead of serving")
	jobs := flag.Int("j", 0, "max concurrent simulations (0 = all host cores)")
	weaveJobs := flag.Int("wj", 0, "bound–weave host workers per multi-core simulation")
	quiet := flag.Bool("q", false, "suppress request/job logging")
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "gmserved: "+format+"\n", args...)
	}
	if *quiet {
		logf = func(string, ...any) {}
	}

	var store *graphmem.ResultStore
	if *storeDir != "" {
		st, err := graphmem.NewResultStore(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gmserved:", err)
			os.Exit(1)
		}
		store = st
	}

	if *gcSize != "" {
		if store == nil {
			fmt.Fprintln(os.Stderr, "gmserved: -gc needs -store DIR")
			os.Exit(1)
		}
		maxBytes, err := graphmem.ParseStoreSize(*gcSize)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gmserved:", err)
			os.Exit(1)
		}
		removed, freed, err := store.GC(maxBytes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gmserved:", err)
			os.Exit(1)
		}
		entries, bytes, _ := store.Size()
		fmt.Fprintf(os.Stderr, "gmserved: gc removed %d entries (%d bytes); store now %d entries, %d bytes\n",
			removed, freed, entries, bytes)
		return
	}

	if *storeMax != "" {
		if store == nil {
			fmt.Fprintln(os.Stderr, "gmserved: -store-max needs -store DIR")
			os.Exit(1)
		}
		maxBytes, err := graphmem.ParseStoreSize(*storeMax)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gmserved:", err)
			os.Exit(1)
		}
		store.SetMaxBytes(maxBytes)
	}

	metrics := graphmem.NewMetrics()
	if store != nil {
		metrics.AttachStore(store)
	}
	srv := newServer(store, metrics, *jobs, *weaveJobs, logf)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gmserved:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "gmserved: serving on http://%s/ (store: %s)\n", ln.Addr(), storeDesc(store))
	if err := (&http.Server{Handler: srv.handler()}).Serve(ln); err != nil {
		fmt.Fprintln(os.Stderr, "gmserved:", err)
		os.Exit(1)
	}
}

func storeDesc(s *graphmem.ResultStore) string {
	if s == nil {
		return "none, in-memory memo only"
	}
	return s.Dir()
}
