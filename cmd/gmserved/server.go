package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"graphmem"
)

// server is the sweep service: a result store fronted by per-profile
// workbenches, so every client shares one memo (in-flight dedup via the
// scheduler's single-flight latches) and one disk cache (cross-restart
// and cross-process dedup via the store). Jobs run asynchronously;
// clients poll or stream per-job progress events.
type server struct {
	store   *graphmem.ResultStore
	metrics *graphmem.MetricsServer

	parallel int
	weave    int
	logf     func(format string, args ...any)

	mu      sync.Mutex
	nextJob int
	jobs    map[string]*job
	benches map[string]*bench
}

// bench is one shared workbench: every job targeting the same
// (profile, window override) triple runs on it, so their overlapping
// points dedupe against both the memo and each other's in-flight runs.
type bench struct {
	wb *graphmem.Workbench

	mu     sync.Mutex
	active map[*job]bool
}

// job is one submitted unit of work with an append-only event log that
// progress streams replay and follow.
type job struct {
	ID   string `json:"id"`
	Kind string `json:"kind"` // "run" or "sweep"

	mu       sync.Mutex
	state    string // "queued", "running", "done", "error"
	errMsg   string
	events   []string
	notify   chan struct{} // closed and replaced on every append
	result   any
	created  time.Time
	finished time.Time
}

func newServer(store *graphmem.ResultStore, metrics *graphmem.MetricsServer, parallel, weave int, logf func(string, ...any)) *server {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &server{
		store:    store,
		metrics:  metrics,
		parallel: parallel,
		weave:    weave,
		logf:     logf,
		jobs:     make(map[string]*job),
		benches:  make(map[string]*bench),
	}
}

// bench returns (creating on first use) the shared workbench for a
// profile with optional window overrides. Overridden windows key a
// distinct bench: they change every run key, so sharing a workbench
// would only pollute its memo.
func (s *server) bench(profileName string, warmup, measure int64) (*bench, error) {
	key := fmt.Sprintf("%s|w%d|m%d", profileName, warmup, measure)
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.benches[key]; ok {
		return b, nil
	}
	profile, err := graphmem.ProfileByName(profileName)
	if err != nil {
		return nil, err
	}
	if warmup > 0 {
		profile.Warmup = warmup
	}
	if measure > 0 {
		profile.Measure = measure
	}
	b := &bench{wb: graphmem.NewWorkbench(profile), active: make(map[*job]bool)}
	b.wb.Parallelism = s.parallel
	b.wb.WeaveJobs = s.weave
	b.wb.Metrics = s.metrics
	b.wb.Store = s.store
	// Progress lines fan out to every job currently running on this
	// bench: concurrent sweeps sharing a bench see each other's run
	// lines, which is exactly the shared-cache story the service tells.
	b.wb.Progress = func(msg string) {
		b.mu.Lock()
		jobs := make([]*job, 0, len(b.active))
		for j := range b.active {
			jobs = append(jobs, j)
		}
		b.mu.Unlock()
		for _, j := range jobs {
			j.append(msg)
		}
	}
	s.benches[key] = b
	return b, nil
}

// newJob registers a queued job.
func (s *server) newJob(kind string) *job {
	s.mu.Lock()
	s.nextJob++
	j := &job{
		ID:      fmt.Sprintf("j%04d", s.nextJob),
		Kind:    kind,
		state:   "queued",
		notify:  make(chan struct{}),
		created: time.Now(),
	}
	s.jobs[j.ID] = j
	s.mu.Unlock()
	return j
}

// start runs fn asynchronously on b, bracketing it with job lifecycle
// events and converting panics (unknown kernels, simulator faults) into
// a terminal error state instead of killing the service.
func (s *server) start(j *job, b *bench, fn func() (any, error)) {
	go func() {
		j.setState("running")
		j.append("job " + j.ID + " running")
		b.mu.Lock()
		b.active[j] = true
		b.mu.Unlock()
		defer func() {
			b.mu.Lock()
			delete(b.active, j)
			b.mu.Unlock()
			if p := recover(); p != nil {
				s.logf("job %s panicked: %v", j.ID, p)
				j.fail(fmt.Sprintf("panic: %v", p))
			}
		}()
		res, err := fn()
		if err != nil {
			s.logf("job %s failed: %v", j.ID, err)
			j.fail(err.Error())
			return
		}
		j.complete(res)
		s.logf("job %s done", j.ID)
	}()
}

func (j *job) append(msg string) {
	j.mu.Lock()
	j.events = append(j.events, msg)
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

func (j *job) setState(state string) {
	j.mu.Lock()
	j.state = state
	j.mu.Unlock()
}

func (j *job) fail(msg string) {
	j.mu.Lock()
	j.state = "error"
	j.errMsg = msg
	j.finished = time.Now()
	j.events = append(j.events, "job "+j.ID+" error: "+msg)
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

func (j *job) complete(res any) {
	j.mu.Lock()
	j.state = "done"
	j.result = res
	j.finished = time.Now()
	j.events = append(j.events, "job "+j.ID+" done")
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

// status is the wire shape of GET /api/jobs[/{id}].
type status struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	State    string `json:"state"`
	Error    string `json:"error,omitempty"`
	Events   int    `json:"events"`
	Created  string `json:"created"`
	Finished string `json:"finished,omitempty"`
}

func (j *job) status() status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := status{
		ID: j.ID, Kind: j.Kind, State: j.state, Error: j.errMsg,
		Events:  len(j.events),
		Created: j.created.UTC().Format(time.RFC3339),
	}
	if !j.finished.IsZero() {
		st.Finished = j.finished.UTC().Format(time.RFC3339)
	}
	return st
}

// runRequest is one simulation point (POST /api/run).
type runRequest struct {
	Profile string `json:"profile"`
	Kernel  string `json:"kernel"`
	Graph   string `json:"graph"`
	Config  string `json:"config"`
	// Warmup/Measure, when positive, override the profile's windows
	// (they enter the run key, so overridden runs cache separately).
	Warmup  int64 `json:"warmup,omitempty"`
	Measure int64 `json:"measure,omitempty"`
}

// sweepRequest is a whole figure sweep (POST /api/sweep).
type sweepRequest struct {
	Profile     string   `json:"profile"`
	Experiments []string `json:"experiments"`
	Kernels     string   `json:"kernels,omitempty"`
	Graphs      string   `json:"graphs,omitempty"`
	Warmup      int64    `json:"warmup,omitempty"`
	Measure     int64    `json:"measure,omitempty"`
}

// runResult is the wire shape of a completed single point.
type runResult struct {
	Key    string           `json:"key"`
	IPC    float64          `json:"ipc"`
	Result *graphmem.Result `json:"result"`
}

// sweepResult is the wire shape of a completed sweep: each experiment's
// rendered table, byte-identical to gmreport's output for the same
// request.
type sweepResult struct {
	Tables []sweepTable `json:"tables"`
}

type sweepTable struct {
	ID   string `json:"id"`
	Text string `json:"text"`
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Kernel == "" || req.Graph == "" {
		httpError(w, http.StatusBadRequest, "kernel and graph are required")
		return
	}
	subset, err := graphmem.SubsetWorkloads(req.Kernel, req.Graph)
	if err != nil || len(subset) != 1 {
		httpError(w, http.StatusBadRequest, "unknown workload %s.%s", req.Kernel, req.Graph)
		return
	}
	id := subset[0]
	b, err := s.bench(req.Profile, req.Warmup, req.Measure)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	cfg, err := graphmem.ConfigByName(b.wb.Profile.BaseConfig(1), req.Config)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j := s.newJob("run")
	j.append(fmt.Sprintf("job %s queued: run %s on %s (%s profile)", j.ID, id, cfg.Name, b.wb.Profile.Name))
	s.start(j, b, func() (any, error) {
		res := b.wb.RunSingle(cfg, id)
		key := graphmem.NewRunKey(cfg.WithWindows(b.wb.Profile.Warmup, b.wb.Profile.Measure), id, b.wb.Profile.Name)
		return &runResult{Key: key.String(), IPC: res.IPC(), Result: res}, nil
	})
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Experiments) == 0 {
		httpError(w, http.StatusBadRequest, "experiments is required (e.g. [\"tab1\",\"fig10\"] or [\"all\"])")
		return
	}
	ids := req.Experiments
	if len(ids) == 1 && ids[0] == "all" {
		ids = graphmem.ExperimentIDs
	}
	known := make(map[string]bool, len(graphmem.ExperimentIDs)+1)
	for _, id := range graphmem.ExperimentIDs {
		known[id] = true
	}
	known["latency"] = true
	for _, id := range ids {
		if !known[id] {
			httpError(w, http.StatusBadRequest, "unknown experiment %q", id)
			return
		}
	}
	subset, err := graphmem.SubsetWorkloads(req.Kernels, req.Graphs)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	b, err := s.bench(req.Profile, req.Warmup, req.Measure)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j := s.newJob("sweep")
	j.append(fmt.Sprintf("job %s queued: sweep %s (%s profile)", j.ID, strings.Join(ids, ","), b.wb.Profile.Name))
	s.start(j, b, func() (any, error) {
		out := &sweepResult{}
		for _, id := range ids {
			t, err := b.wb.Experiment(id, subset)
			if err != nil {
				return nil, err
			}
			var buf bytes.Buffer
			t.Render(&buf)
			out.Tables = append(out.Tables, sweepTable{ID: t.ID, Text: buf.String()})
			j.append(fmt.Sprintf("job %s: experiment %s done", j.ID, id))
		}
		return out, nil
	})
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *server) job(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]status, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.status())
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	j.mu.Lock()
	state, errMsg, result := j.state, j.errMsg, j.result
	j.mu.Unlock()
	switch state {
	case "done":
		writeJSON(w, http.StatusOK, result)
	case "error":
		httpError(w, http.StatusInternalServerError, "%s", errMsg)
	default:
		httpError(w, http.StatusConflict, "job %s is %s; stream /api/jobs/%s/events or retry", j.ID, state, j.ID)
	}
}

// handleJobEvents streams the job's progress log from the beginning and
// follows it until the job reaches a terminal state: Server-Sent Events
// when the client asks for text/event-stream, newline-delimited JSON
// otherwise. Cached results finish instantly, so the stream may be a
// replay that closes immediately.
func (s *server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "unknown job %q", r.PathValue("id"))
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	flusher, _ := w.(http.Flusher)
	emit := func(msg string) {
		if sse {
			fmt.Fprintf(w, "data: %s\n\n", msg)
		} else {
			data, _ := json.Marshal(map[string]string{"event": msg})
			fmt.Fprintf(w, "%s\n", data)
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	next := 0
	for {
		j.mu.Lock()
		events := j.events[next:]
		next = len(j.events)
		state := j.state
		notify := j.notify
		j.mu.Unlock()
		for _, e := range events {
			emit(e)
		}
		if state == "done" || state == "error" {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

// storeStats is the wire shape of GET /api/store.
type storeStats struct {
	Dir       string `json:"dir"`
	Hits      int64  `json:"hits"`
	Misses    int64  `json:"misses"`
	Evictions int64  `json:"evictions"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
}

func (s *server) handleStore(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		httpError(w, http.StatusNotFound, "no result store attached (start gmserved with -store DIR)")
		return
	}
	entries, bytes, err := s.store.Size()
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, storeStats{
		Dir: s.store.Dir(), Hits: s.store.Hits(), Misses: s.store.Misses(),
		Evictions: s.store.Evictions(), Entries: entries, Bytes: bytes,
	})
}

func (s *server) handleGC(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		httpError(w, http.StatusNotFound, "no result store attached (start gmserved with -store DIR)")
		return
	}
	maxBytes, err := graphmem.ParseStoreSize(r.URL.Query().Get("max"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	removed, freed, err := s.store.GC(maxBytes)
	if err != nil {
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int64{"removed": int64(removed), "freed_bytes": freed})
}

// handler builds the service mux.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/run", s.handleRun)
	mux.HandleFunc("POST /api/sweep", s.handleSweep)
	mux.HandleFunc("GET /api/jobs", s.handleJobs)
	mux.HandleFunc("GET /api/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /api/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /api/jobs/{id}/result", s.handleJobResult)
	mux.HandleFunc("GET /api/store", s.handleStore)
	mux.HandleFunc("POST /api/gc", s.handleGC)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// The shared metrics endpoint: Prometheus text + expvar, extended
	// with the store hit/miss/eviction counters via AttachStore.
	mh := s.metrics.Handler()
	mux.Handle("GET /metrics", mh)
	mux.Handle("GET /debug/vars", mh)
	mux.HandleFunc("GET /", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `gmserved: graphmem sweep service

POST /api/run                submit one simulation point (JSON)
POST /api/sweep              submit a figure sweep (JSON)
GET  /api/jobs               list jobs
GET  /api/jobs/{id}          job status
GET  /api/jobs/{id}/events   progress stream (SSE or ndjson)
GET  /api/jobs/{id}/result   completed result (JSON)
GET  /api/store              result-store statistics
POST /api/gc?max=SIZE        shrink the store to SIZE (LRU)
GET  /metrics                Prometheus text exposition
GET  /healthz                liveness probe
`)
	})
	return mux
}
