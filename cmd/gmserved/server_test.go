package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"graphmem"
)

// fastWindows keeps service tests quick: the triad.reg point needs no
// graph build and finishes in well under a second at these windows.
const fastWarmup, fastMeasure = 300_000, 150_000

type testService struct {
	*server
	ts *httptest.Server
}

func newTestService(t *testing.T, storeDir string) *testService {
	t.Helper()
	var st *graphmem.ResultStore
	if storeDir != "" {
		s, err := graphmem.NewResultStore(storeDir)
		if err != nil {
			t.Fatal(err)
		}
		st = s
	}
	metrics := graphmem.NewMetrics()
	if st != nil {
		metrics.AttachStore(st)
	}
	srv := newServer(st, metrics, 0, 0, nil)
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(ts.Close)
	return &testService{server: srv, ts: ts}
}

func (s *testService) post(t *testing.T, path string, body any) status {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(s.ts.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST %s: status %d (%s)", path, resp.StatusCode, e["error"])
	}
	var st status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// follow consumes the job's event stream to its terminal close and
// returns the events, blocking until the job finishes — the stream IS
// the completion signal.
func (s *testService) follow(t *testing.T, jobID string, sse bool) []string {
	t.Helper()
	req, err := http.NewRequest("GET", s.ts.URL+"/api/jobs/"+jobID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if sse {
		req.Header.Set("Accept", "text/event-stream")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	want := "application/x-ndjson"
	if sse {
		want = "text/event-stream"
	}
	if ct := resp.Header.Get("Content-Type"); ct != want {
		t.Errorf("event stream Content-Type = %q, want %q", ct, want)
	}
	var events []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if sse {
			events = append(events, strings.TrimPrefix(line, "data: "))
			continue
		}
		var ev map[string]string
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("ndjson stream emitted %q: %v", line, err)
		}
		events = append(events, ev["event"])
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

func (s *testService) getJSON(t *testing.T, path string, out any) int {
	t.Helper()
	resp, err := http.Get(s.ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func triadRun() runRequest {
	return runRequest{
		Profile: "bench", Kernel: "triad", Graph: "reg", Config: "baseline",
		Warmup: fastWarmup, Measure: fastMeasure,
	}
}

// TestServiceRunRoundTrip submits one point, follows its progress
// stream to completion, and fetches the result: the canonical key, a
// positive IPC, and the full simulation result come back.
func TestServiceRunRoundTrip(t *testing.T) {
	s := newTestService(t, t.TempDir())
	st := s.post(t, "/api/run", triadRun())
	if st.State == "done" || st.Kind != "run" {
		t.Fatalf("submit returned %+v", st)
	}

	events := s.follow(t, st.ID, false)
	if len(events) == 0 || !strings.Contains(events[len(events)-1], "done") {
		t.Fatalf("event stream ended without a done event: %v", events)
	}

	var res runResult
	if code := s.getJSON(t, "/api/jobs/"+st.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("result fetch: status %d", code)
	}
	wantKey := fmt.Sprintf("gmresult|v%d|bench|w%d|m%d|Baseline (bench-scale)|triad.reg",
		graphmem.ResultStateVersion, fastWarmup, fastMeasure)
	if res.Key != wantKey {
		t.Errorf("result key = %q, want %q", res.Key, wantKey)
	}
	if res.IPC <= 0 || res.Result == nil || res.Result.Workload != "triad.reg" {
		t.Errorf("implausible result: IPC=%v Result=%+v", res.IPC, res.Result)
	}

	// Job bookkeeping: listed, status done, and still streamable as a
	// pure replay (SSE this time).
	var jobs []status
	if code := s.getJSON(t, "/api/jobs", &jobs); code != http.StatusOK || len(jobs) != 1 {
		t.Fatalf("job list: status %d, %d jobs", code, len(jobs))
	}
	if jobs[0].State != "done" {
		t.Errorf("job state = %q, want done", jobs[0].State)
	}
	if replay := s.follow(t, st.ID, true); len(replay) != len(events) {
		t.Errorf("SSE replay has %d events, live stream had %d", len(replay), len(events))
	}
}

// TestServiceSecondRequestCached is the dedup guarantee: an identical
// second submission completes without a new simulation — the memo (and
// under it, the store) serves it.
func TestServiceSecondRequestCached(t *testing.T) {
	s := newTestService(t, t.TempDir())

	first := s.post(t, "/api/run", triadRun())
	s.follow(t, first.ID, false)
	_, finished, cached, stored := s.metrics.Counts()
	if finished != 1 {
		t.Fatalf("first request ran %d simulations, want 1", finished)
	}

	second := s.post(t, "/api/run", triadRun())
	s.follow(t, second.ID, false)
	_, finished2, cached2, stored2 := s.metrics.Counts()
	if finished2 != finished {
		t.Errorf("second identical request ran a new simulation (finished %d → %d)", finished, finished2)
	}
	if cached2+stored2 <= cached+stored {
		t.Error("second request recorded no cache or store hit")
	}

	var a, b runResult
	s.getJSON(t, "/api/jobs/"+first.ID+"/result", &a)
	s.getJSON(t, "/api/jobs/"+second.ID+"/result", &b)
	if a.Key != b.Key || a.IPC != b.IPC {
		t.Errorf("cached result diverged: %v/%v vs %v/%v", a.Key, a.IPC, b.Key, b.IPC)
	}

	// Cross-restart dedup: a fresh server over the same store directory
	// serves the point from disk, still without simulating.
	s2 := newTestService(t, s.store.Dir())
	third := s2.post(t, "/api/run", triadRun())
	s2.follow(t, third.ID, false)
	_, finished3, _, stored3 := s2.metrics.Counts()
	if finished3 != 0 || stored3 != 1 {
		t.Errorf("restarted server: finished=%d stored=%d, want 0 live runs and 1 store hit", finished3, stored3)
	}
	var c runResult
	s2.getJSON(t, "/api/jobs/"+third.ID+"/result", &c)
	if c.Key != a.Key || c.IPC != a.IPC {
		t.Errorf("store-served result diverged: %v/%v vs %v/%v", c.Key, c.IPC, a.Key, a.IPC)
	}
}

// TestServiceSweepMatchesLocalHarness submits a one-workload fig10
// sweep and checks the rendered table is byte-identical to driving the
// harness directly — the determinism contract over HTTP.
func TestServiceSweepMatchesLocalHarness(t *testing.T) {
	s := newTestService(t, t.TempDir())
	st := s.post(t, "/api/sweep", sweepRequest{
		Profile: "bench", Experiments: []string{"fig10"},
		Kernels: "triad", Graphs: "reg",
		Warmup: fastWarmup, Measure: fastMeasure,
	})
	events := s.follow(t, st.ID, false)
	if len(events) == 0 || !strings.Contains(events[len(events)-1], "done") {
		t.Fatalf("sweep stream ended without done: %v", events)
	}
	var res sweepResult
	if code := s.getJSON(t, "/api/jobs/"+st.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("sweep result: status %d", code)
	}
	if len(res.Tables) != 1 || res.Tables[0].ID != "fig10" {
		t.Fatalf("sweep returned %+v", res.Tables)
	}

	profile, err := graphmem.ProfileByName("bench")
	if err != nil {
		t.Fatal(err)
	}
	profile.Warmup, profile.Measure = fastWarmup, fastMeasure
	wb := graphmem.NewWorkbench(profile)
	subset, err := graphmem.SubsetWorkloads("triad", "reg")
	if err != nil {
		t.Fatal(err)
	}
	table, err := wb.Experiment("fig10", subset)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	table.Render(&buf)
	if res.Tables[0].Text != buf.String() {
		t.Errorf("service table differs from local harness:\n--- service ---\n%s\n--- local ---\n%s",
			res.Tables[0].Text, buf.String())
	}
}

// TestServiceStoreAndGCEndpoints exercises the operational surface:
// store stats reflect published entries, /api/gc evicts them, and the
// metrics endpoint exposes the store counters.
func TestServiceStoreAndGCEndpoints(t *testing.T) {
	s := newTestService(t, t.TempDir())
	st := s.post(t, "/api/run", triadRun())
	s.follow(t, st.ID, false)

	var stats storeStats
	if code := s.getJSON(t, "/api/store", &stats); code != http.StatusOK {
		t.Fatalf("store stats: status %d", code)
	}
	if stats.Entries != 1 || stats.Misses != 1 || stats.Bytes == 0 {
		t.Errorf("after one run: %+v, want 1 entry from 1 miss", stats)
	}

	resp, err := http.Post(s.ts.URL+"/api/gc?max=0", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var gc map[string]int64
	json.NewDecoder(resp.Body).Decode(&gc)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || gc["removed"] != 1 {
		t.Errorf("gc: status %d, %+v", resp.StatusCode, gc)
	}
	if code := s.getJSON(t, "/api/store", &stats); code != http.StatusOK || stats.Entries != 0 {
		t.Errorf("after gc: status %d, %+v", code, stats)
	}

	mresp, err := http.Get(s.ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var prom bytes.Buffer
	prom.ReadFrom(mresp.Body)
	mresp.Body.Close()
	for _, metric := range []string{"graphmem_store_misses_total", "graphmem_store_evictions_total", "graphmem_runs_store_total"} {
		if !strings.Contains(prom.String(), metric) {
			t.Errorf("/metrics is missing %s", metric)
		}
	}
}

// TestServiceRejectsBadRequests pins the 4xx surface.
func TestServiceRejectsBadRequests(t *testing.T) {
	s := newTestService(t, "")
	cases := []struct {
		path string
		body string
	}{
		{"/api/run", `{"profile":"bench","kernel":"nope","graph":"reg"}`},
		{"/api/run", `{"profile":"bench"}`},
		{"/api/run", `{"profile":"marvel","kernel":"triad","graph":"reg"}`},
		{"/api/run", `{"profile":"bench","kernel":"triad","graph":"reg","config":"warp-drive"}`},
		{"/api/sweep", `{"profile":"bench","experiments":[]}`},
		{"/api/sweep", `{"profile":"bench","experiments":["fig99"]}`},
		{"/api/sweep", `not json`},
	}
	for _, tc := range cases {
		resp, err := http.Post(s.ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %s %s: status %d, want 400", tc.path, tc.body, resp.StatusCode)
		}
	}
	if code := s.getJSON(t, "/api/jobs/j9999", nil); code != http.StatusNotFound {
		t.Errorf("unknown job status: %d, want 404", code)
	}
	if code := s.getJSON(t, "/api/store", nil); code != http.StatusNotFound {
		t.Errorf("store stats without a store: %d, want 404", code)
	}

	// A job that is still queued or running answers its result poll with
	// 409 (retry), not an error.
	st := s.post(t, "/api/run", triadRun())
	deadline := time.Now().Add(10 * time.Second)
	sawConflict := false
	for time.Now().Before(deadline) {
		code := s.getJSON(t, "/api/jobs/"+st.ID+"/result", nil)
		if code == http.StatusConflict {
			sawConflict = true
		}
		if code == http.StatusOK {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !sawConflict {
		t.Log("job finished before the first poll; 409 path not observed (benign on fast machines)")
	}
}
