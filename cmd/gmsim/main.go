// Command gmsim runs one workload on one machine configuration and
// prints the detailed statistics — the single-run entry point into the
// simulator.
//
// Usage:
//
//	gmsim -kernel pr -graph kron -config sdclp -profile bench
//	gmsim -kernel cc -graph friendster -config baseline -measure 5000000
//	gmsim -kernel pr -graph kron -config sdclp -json -epoch 100000 > run.json
//	gmsim -kernel pr -graph kron -cores 16 -wj 8
//	gmsim -kernel pr -graph kron -sample 65000,5000,13000 -ckpt /tmp/gmckpt
//
// With -cores N > 1 the workload is replicated on every core of an
// N-core machine (a homogeneous multi-programmed mix) and a per-core
// report is printed. -wj switches that run to the bound–weave parallel
// engine; the report is byte-identical at any -wj value and carries no
// wall-clock, so outputs can be diffed across worker counts (timing
// goes to stderr).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"graphmem"
)

func main() {
	kernel := flag.String("kernel", "pr", "kernel: bc|bfs|cc|pr|tc|sssp (or triad|matvec|stencil with -graph reg)")
	graphName := flag.String("graph", "kron", "input graph: web|road|twitter|kron|urand|friendster|reg")
	configName := flag.String("config", "baseline", "machine configuration")
	pfPreset := flag.String("pf", "", "prefetcher preset: none|nextline|spp|stride|imp|pickle|spp+imp (empty = config default)")
	branchPenalty := flag.Int64("bp", 0, "branch-miss penalty in cycles on ~1/32 of records (0 = off, the default machine)")
	profileName := flag.String("profile", "bench", "scale profile: bench|small|full")
	warmup := flag.Int64("warmup", 0, "override warm-up instructions")
	measure := flag.Int64("measure", 0, "override measured instructions")
	epoch := flag.Int64("epoch", 0, "sample telemetry every N retired instructions (0 = off)")
	checkFlag := flag.String("check", "off", "differential checking: off|oracle|full (exit 1 on any violation)")
	samplePlan := flag.String("sample", "", "statistical sampling plan \"period,len,offset[,warm]\" in instructions (single-core only; reports CI estimates)")
	ckptDir := flag.String("ckpt", "", "warm-up checkpoint store directory (reuses functional warm-ups across runs; needs -sample)")
	storeDir := flag.String("store", "", "disk-backed result store directory (serves repeated single-core runs from disk; output is byte-identical either way)")
	frPath := flag.String("fr", "", "enable the memory-hierarchy flight recorder and write a Perfetto/Chrome trace to this path")
	frInterval := flag.Int64("frint", 0, "flight-recorder occupancy sampling interval in retired instructions (0 = measure/256)")
	metricsAddr := flag.String("metrics", "", "serve live metrics (Prometheus text + expvar) on this address, e.g. :6060")
	jobs := flag.Int("j", 0, "max concurrent simulations (0 = all host cores); a single run uses one slot")
	cores := flag.Int("cores", 1, "simulated core count; >1 replicates the workload on every core of one shared machine")
	weaveJobs := flag.Int("wj", 0, "bound–weave host workers for -cores>1 (0 = legacy serial engine); results are identical at any value")
	quantum := flag.Int64("quantum", 0, "bound–weave cycle quantum (0 = engine default); only meaningful with -wj")
	jsonOut := flag.Bool("json", false, "emit a structured run manifest on stdout instead of text")
	verbose := flag.Bool("v", false, "log run progress")
	prof := graphmem.RegisterProfilingFlags(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gmsim:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "gmsim:", err)
		}
	}()

	profile, err := graphmem.ProfileByName(*profileName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gmsim:", err)
		os.Exit(1)
	}
	if *warmup > 0 {
		profile.Warmup = *warmup
	}
	if *measure > 0 {
		profile.Measure = *measure
	}
	wb := graphmem.NewWorkbench(profile)
	wb.Parallelism = *jobs
	if *verbose {
		wb.Progress = func(msg string) { fmt.Fprintln(os.Stderr, msg) }
	}
	checkLevel, err := graphmem.ParseCheckLevel(*checkFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gmsim:", err)
		os.Exit(1)
	}
	wb.CheckLevel = checkLevel
	plan, err := graphmem.ParseSamplePlan(*samplePlan)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gmsim:", err)
		os.Exit(1)
	}
	if plan.Enabled() {
		switch {
		case *cores > 1:
			fmt.Fprintln(os.Stderr, "gmsim: -sample runs single-core only")
			os.Exit(1)
		case checkLevel != graphmem.CheckOff:
			fmt.Fprintln(os.Stderr, "gmsim: -sample cannot run under -check (the checker needs detailed execution everywhere)")
			os.Exit(1)
		case *epoch > 0:
			fmt.Fprintln(os.Stderr, "gmsim: -sample cannot run with -epoch (epochs tile the detailed window)")
			os.Exit(1)
		case *frPath != "":
			fmt.Fprintln(os.Stderr, "gmsim: -sample cannot run with -fr (the recorder taps detailed execution)")
			os.Exit(1)
		}
		wb.Sampling = plan
		if *ckptDir != "" {
			st, err := graphmem.NewCheckpointStore(*ckptDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gmsim:", err)
				os.Exit(1)
			}
			wb.Checkpoints = st
		}
	} else if *ckptDir != "" {
		fmt.Fprintln(os.Stderr, "gmsim: -ckpt needs -sample (checkpoints store sampled warm-ups)")
		os.Exit(1)
	}
	if *storeDir != "" {
		if *cores > 1 {
			fmt.Fprintln(os.Stderr, "gmsim: -store caches single-core runs only (multi-core mixes bypass the workbench memo)")
			os.Exit(1)
		}
		st, err := graphmem.NewResultStore(*storeDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gmsim:", err)
			os.Exit(1)
		}
		wb.Store = st
	}
	if *metricsAddr != "" {
		wb.Metrics = graphmem.NewMetrics()
		if wb.Store != nil {
			wb.Metrics.AttachStore(wb.Store)
		}
		addr, err := wb.Metrics.Serve(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gmsim:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "gmsim: serving metrics at http://%s/metrics\n", addr)
	}

	if !graphmem.ValidPrefetchers(*pfPreset) {
		fmt.Fprintf(os.Stderr, "gmsim: unknown -pf preset %q (want none|nextline|spp|stride|imp|pickle|spp+imp)\n", *pfPreset)
		os.Exit(1)
	}
	if *branchPenalty < 0 {
		fmt.Fprintln(os.Stderr, "gmsim: -bp must be >= 0")
		os.Exit(1)
	}
	if *cores < 1 {
		fmt.Fprintln(os.Stderr, "gmsim: -cores must be >= 1")
		os.Exit(1)
	}
	if *cores == 1 && (*weaveJobs > 0 || *quantum > 0) {
		fmt.Fprintln(os.Stderr, "gmsim: -wj/-quantum apply to multi-core runs only (use -cores N)")
		os.Exit(1)
	}
	if *cores > 1 {
		if *jsonOut {
			fmt.Fprintln(os.Stderr, "gmsim: -json is not supported with -cores > 1")
			os.Exit(1)
		}
		if *frPath != "" {
			fmt.Fprintln(os.Stderr, "gmsim: -fr is not supported with -cores > 1")
			os.Exit(1)
		}
		cfg, err := graphmem.ConfigByName(profile.BaseConfig(*cores), *configName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gmsim:", err)
			os.Exit(1)
		}
		cfg = cfg.WithWindows(profile.Warmup, profile.Measure)
		if *pfPreset != "" {
			cfg = cfg.WithPrefetchers(*pfPreset)
		}
		if *branchPenalty > 0 {
			cfg = cfg.WithBranchMissPenalty(*branchPenalty)
		}
		cfg.CheckLevel = checkLevel
		if *epoch > 0 {
			cfg = cfg.WithEpochInterval(*epoch)
		}
		if *weaveJobs > 0 {
			cfg = cfg.WithBoundWeave(*quantum, *weaveJobs)
		}
		id := graphmem.WorkloadID{Kernel: *kernel, Graph: *graphName}
		ws := make([]graphmem.Workload, *cores)
		for i := range ws {
			ws[i] = wb.Workload(id, i)
		}
		start := time.Now()
		res := graphmem.RunMultiCore(cfg, ws)
		fmt.Fprintf(os.Stderr, "gmsim: %d-core run finished in %s\n", *cores, time.Since(start).Round(time.Millisecond))
		printMulti(cfg, profile.Name, id, res)
		if checkLevel != graphmem.CheckOff && res.Check.Violations > 0 {
			fmt.Fprintf(os.Stderr, "gmsim: differential checker found %d violation(s):\n", res.Check.Violations)
			for _, v := range res.Check.Details {
				fmt.Fprintf(os.Stderr, "  %s\n", v)
			}
			os.Exit(1)
		}
		return
	}

	cfg, err := graphmem.ConfigByName(profile.BaseConfig(1), *configName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gmsim:", err)
		os.Exit(1)
	}
	if *pfPreset != "" {
		cfg = cfg.WithPrefetchers(*pfPreset)
	}
	if *branchPenalty > 0 {
		cfg = cfg.WithBranchMissPenalty(*branchPenalty)
	}
	if *epoch > 0 {
		cfg = cfg.WithEpochInterval(*epoch)
	}
	if *frPath != "" {
		cfg = cfg.WithFlightRecorder(*frInterval)
	}
	id := graphmem.WorkloadID{Kernel: *kernel, Graph: *graphName}
	start := time.Now()
	res := wb.RunSingle(cfg, id)
	s := &res.Stats
	if *frPath != "" {
		err := graphmem.WritePerfettoTrace(*frPath, []graphmem.TraceRun{
			{Name: cfg.Name + "/" + id.String(), Rec: res.Recorder},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "gmsim:", err)
			os.Exit(1)
		}
	}
	if wb.Store != nil {
		fmt.Fprintf(os.Stderr, "gmsim: %s\n", graphmem.StoreSummary(wb.Store))
	}
	checkFailed := checkLevel != graphmem.CheckOff && res.Check.Violations > 0
	if checkFailed {
		fmt.Fprintf(os.Stderr, "gmsim: differential checker found %d violation(s):\n", res.Check.Violations)
		for _, v := range res.Check.Details {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
	}

	if *jsonOut {
		m := graphmem.NewManifest("gmsim")
		m.Profile = profile.Name
		m.Workload = id.String()
		m.Config = cfg.WithWindows(profile.Warmup, profile.Measure).ManifestInfo()
		m.Reruns = res.Reruns
		m.Final = res.Stats
		m.Derived = graphmem.DeriveMetrics(&res.Stats)
		m.Epochs = res.Epochs
		m.FlightRecorder = res.Recorder
		m.Sampling = res.Sampling
		if checkLevel != graphmem.CheckOff {
			m.Check = &res.Check
		}
		if err := m.Finalize(start).WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "gmsim:", err)
			os.Exit(1)
		}
		if checkFailed {
			os.Exit(1)
		}
		return
	}

	fmt.Printf("workload    %s\n", id)
	fmt.Printf("config      %s (%s profile)\n", cfg.Name, profile.Name)
	fmt.Printf("instructions %d  cycles %d  IPC %.3f\n", s.Instructions, s.Cycles, s.IPC())
	fmt.Printf("loads %d  stores %d  avg load latency %.1f cycles\n", s.Loads, s.Stores, s.AvgLoadLatency())
	fmt.Printf("MPKI        L1D %.1f  SDC %.1f  L2C %.1f  LLC %.1f\n",
		s.L1D.MPKI(s.Instructions), s.SDC.MPKI(s.Instructions),
		s.L2.MPKI(s.Instructions), s.LLC.MPKI(s.Instructions))
	fmt.Printf("served by   L1D %d  SDC %d  L2 %d  LLC %d  DRAM %d\n",
		s.ServedL1D, s.ServedSDC, s.ServedL2, s.ServedLLC, s.ServedDRAM)
	fmt.Printf("TLB         DTLB miss %.2f%%  STLB miss %.2f%%\n",
		s.DTLB.MissRate()*100, s.STLB.MissRate()*100)
	if s.LPPredAverse+s.LPPredFriendly > 0 {
		fmt.Printf("LP          averse %d  friendly %d  table misses %d (%.1f%% averse)\n",
			s.LPPredAverse, s.LPPredFriendly, s.LPTableMisses,
			100*float64(s.LPPredAverse)/float64(s.LPPredAverse+s.LPPredFriendly))
	}
	fmt.Printf("DRAM        reads %d  writes %d  row-hit %.1f%%\n",
		s.DRAMReads, s.DRAMWrites,
		100*float64(s.DRAMRowHits)/float64(1+s.DRAMRowHits+s.DRAMRowMisses))
	if e := res.Sampling; e != nil {
		src := "warmed in place"
		if e.CheckpointHit {
			src = "restored from checkpoint"
		}
		fmt.Printf("sampling    %d samples, %d instructions detailed (%.1f%% of the %d-instruction window), warm-up %s\n",
			e.Samples, e.DetailedInstructions,
			100*float64(e.DetailedInstructions)/float64(profile.Measure), profile.Measure, src)
		fmt.Printf("estimates   IPC %.3f ±%.3f  MPKI L1D %.1f ±%.1f  L2C %.1f ±%.1f  LLC %.1f ±%.1f (99%% CI)\n",
			e.IPC.Mean, e.IPC.HalfWidth,
			e.L1DemandMPKI.Mean, e.L1DemandMPKI.HalfWidth,
			e.L2MPKI.Mean, e.L2MPKI.HalfWidth,
			e.LLCMPKI.Mean, e.LLCMPKI.HalfWidth)
	}
	if len(res.Epochs) > 0 {
		fmt.Printf("epochs      %d samples every %d instructions (use -json to export the series)\n",
			len(res.Epochs), *epoch)
	}
	if rec := res.Recorder; rec != nil {
		h := rec.LoadToUse
		fmt.Printf("load-to-use p50 %d  p90 %d  p99 %d cycles  (mean %.1f, max %d)\n",
			h.P50, h.P90, h.P99, h.Mean, h.Max)
		fmt.Printf("flight rec  %d timeline samples -> %s (open in ui.perfetto.dev)\n",
			len(rec.Samples), *frPath)
	}
	if checkLevel != graphmem.CheckOff {
		fmt.Printf("check       level %s  loads %d  stores %d  sweeps %d  unknown %d  violations %d\n",
			res.Check.Level, res.Check.LoadsChecked, res.Check.StoresTracked,
			res.Check.Sweeps, res.Check.UnknownVersions, res.Check.Violations)
	}
	if checkFailed {
		os.Exit(1)
	}
}

// printMulti renders the multi-core report. It is fully deterministic —
// no wall clock, no host-side worker count — so runs at different -wj
// values (or on different machines) can be byte-compared, which is how
// CI verifies the bound–weave determinism contract.
func printMulti(cfg graphmem.Config, profileName string, id graphmem.WorkloadID, res *graphmem.MultiResult) {
	n := len(res.PerCore)
	fmt.Printf("workload    %s x %d\n", id, n)
	engine := "serial"
	if cfg.Quantum > 0 {
		engine = fmt.Sprintf("bound-weave quantum=%d", cfg.Quantum)
	}
	fmt.Printf("config      %s (%s profile)  cores %d  engine %s\n", cfg.Name, profileName, n, engine)
	var instr, cycles, loads, stores, dramR, dramW int64
	ipcSum := 0.0
	for i := range res.PerCore {
		s := &res.PerCore[i]
		fmt.Printf("core %3d    instructions %d  cycles %d  IPC %.3f  avg load %.1f  MPKI L1D %.1f SDC %.1f L2C %.1f LLC %.1f  DRAM %d\n",
			i, s.Instructions, s.Cycles, s.IPC(), s.AvgLoadLatency(),
			s.L1D.MPKI(s.Instructions), s.SDC.MPKI(s.Instructions),
			s.L2.MPKI(s.Instructions), s.LLC.MPKI(s.Instructions),
			s.ServedDRAM)
		instr += s.Instructions
		if s.Cycles > cycles {
			cycles = s.Cycles
		}
		loads += s.Loads
		stores += s.Stores
		dramR += s.DRAMReads
		dramW += s.DRAMWrites
		ipcSum += s.IPC()
	}
	fmt.Printf("aggregate   instructions %d  cycles(max) %d  IPC(sum) %.3f\n", instr, cycles, ipcSum)
	fmt.Printf("memory      loads %d  stores %d  DRAM reads %d  writes %d\n", loads, stores, dramR, dramW)
	if cfg.CheckLevel != graphmem.CheckOff {
		fmt.Printf("check       level %s  loads %d  stores %d  sweeps %d  unknown %d  violations %d\n",
			res.Check.Level, res.Check.LoadsChecked, res.Check.StoresTracked,
			res.Check.Sweeps, res.Check.UnknownVersions, res.Check.Violations)
	}
}
