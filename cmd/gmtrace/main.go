// Command gmtrace captures, inspects and summarizes memory traces of
// the instrumented kernels — useful for studying the access streams
// independently of the timing simulator.
//
// Usage:
//
//	gmtrace -kernel pr -graph kron -profile bench -limit 1000000 -out pr.kron.gmt
//	gmtrace -in pr.kron.gmt -dump 20
//	gmtrace -in pr.kron.gmt -summary
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"graphmem"
	"graphmem/internal/mem"
	"graphmem/internal/trace"
)

func main() {
	kernel := flag.String("kernel", "pr", "kernel to trace")
	graphName := flag.String("graph", "kron", "input graph")
	profileName := flag.String("profile", "bench", "scale profile")
	limit := flag.Int64("limit", 1_000_000, "max records to capture")
	out := flag.String("out", "", "capture: output trace file")
	in := flag.String("in", "", "inspect: input trace file")
	dump := flag.Int("dump", 0, "inspect: print the first N records")
	summary := flag.Bool("summary", false, "inspect: print stream summary")
	prof := graphmem.RegisterProfilingFlags(flag.CommandLine)
	flag.Parse()

	stopProf, err := prof.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gmtrace:", err)
		os.Exit(1)
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "gmtrace:", err)
		}
	}()

	switch {
	case *out != "":
		if err := capture(*kernel, *graphName, *profileName, *limit, *out); err != nil {
			fmt.Fprintln(os.Stderr, "gmtrace:", err)
			os.Exit(1)
		}
	case *in != "":
		if err := inspect(*in, *dump, *summary); err != nil {
			fmt.Fprintln(os.Stderr, "gmtrace:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "gmtrace: use -out to capture or -in to inspect")
		os.Exit(1)
	}
}

func capture(kernel, graphName, profileName string, limit int64, outPath string) error {
	profile, err := graphmem.ProfileByName(profileName)
	if err != nil {
		return err
	}
	wb := graphmem.NewWorkbench(profile)
	wb.Progress = func(msg string) { fmt.Fprintln(os.Stderr, msg) }
	w := wb.Workload(graphmem.WorkloadID{Kernel: kernel, Graph: graphName}, 0)

	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	defer f.Close()
	sink, err := trace.NewWriter(f, limit)
	if err != nil {
		return err
	}
	tr := trace.New(sink)
	for !tr.Done() {
		before := tr.Seq()
		w.Inst.Run(tr)
		if tr.Seq() == before {
			break
		}
	}
	if err := sink.Flush(); err != nil {
		return err
	}
	fmt.Printf("captured %d records of %s.%s to %s\n", sink.Count(), kernel, graphName, outPath)
	return nil
}

func inspect(inPath string, dump int, summary bool) error {
	f, err := os.Open(inPath)
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := trace.NewReader(f)
	if err != nil {
		return err
	}

	var (
		n, loads, stores, instr, deps int64
		perPC                         = map[uint64]int64{}
		last                          = map[uint64]mem.BlockAddr{}
		buckets                       [trace.StrideBuckets]int64
	)
	for i := 0; ; i++ {
		rec, err := r.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return err
		}
		if i < dump {
			kind := "LD"
			if rec.Write {
				kind = "ST"
			}
			fmt.Printf("%8d  %s pc=%#x addr=%#x size=%d nonmem=%d dep=%d\n",
				i, kind, rec.PC, uint64(rec.Addr), rec.Size, rec.NonMem, rec.DepDist)
		}
		n++
		instr += int64(rec.NonMem) + 1
		if rec.Write {
			stores++
		} else {
			loads++
		}
		if rec.DepDist > 0 {
			deps++
		}
		perPC[rec.PC]++
		blk := rec.Addr.Block()
		if prev, ok := last[rec.PC]; ok {
			d := int64(blk) - int64(prev)
			if d < 0 {
				d = -d
			}
			buckets[trace.BucketOf(uint64(d))]++
		}
		last[rec.PC] = blk
	}
	if !summary {
		return nil
	}
	fmt.Printf("records %d (loads %d, stores %d), instructions %d, dependent %d (%.1f%%)\n",
		n, loads, stores, instr, deps, 100*float64(deps)/float64(max64(n, 1)))
	fmt.Printf("distinct PCs: %d\n", len(perPC))
	type pcCount struct {
		pc uint64
		c  int64
	}
	var pcs []pcCount
	for pc, c := range perPC {
		pcs = append(pcs, pcCount{pc, c})
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i].c > pcs[j].c })
	for i, p := range pcs {
		if i >= 10 {
			break
		}
		fmt.Printf("  pc %#x: %d accesses\n", p.pc, p.c)
	}
	fmt.Println("per-PC block-stride histogram:")
	for b := 0; b < trace.StrideBuckets; b++ {
		fmt.Printf("  %-10s %d\n", trace.BucketLabel(b), buckets[b])
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
