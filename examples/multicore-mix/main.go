// multicore-mix runs one 4-thread multi-programmed mix (the Fig. 14
// setting) on the baseline and SDC+LP machines and reports the
// weighted speed-up of Section IV-D.
//
// Run with: go run ./examples/multicore-mix
package main

import (
	"fmt"

	"graphmem"
)

func main() {
	profile := graphmem.BenchProfile()
	wb := graphmem.NewWorkbench(profile)
	wb.Progress = func(msg string) { fmt.Println("  ", msg) }

	mix := []graphmem.WorkloadID{
		{Kernel: "pr", Graph: "kron"},
		{Kernel: "cc", Graph: "urand"},
		{Kernel: "bfs", Graph: "kron"},
		{Kernel: "sssp", Graph: "urand"},
	}
	fmt.Println("mix:", mix)

	runMix := func(cfg graphmem.Config) []float64 {
		cfg = cfg.WithWindows(profile.MixWarmup, profile.MixMeasure)
		ws := make([]graphmem.Workload, len(mix))
		for i, id := range mix {
			ws[i] = wb.Workload(id, i)
		}
		return graphmem.RunMultiCore(cfg, ws).IPCs()
	}

	base4 := profile.BaseConfig(4)
	fmt.Println("running the mix on the 4-core baseline...")
	baseIPCs := runMix(base4)
	fmt.Println("running the mix with per-core SDC+LP...")
	sdclpIPCs := runMix(base4.WithSDCLP())

	// Isolated IPCs weight the metric (Section IV-D).
	fmt.Println("running each thread in isolation on the same machine...")
	singles := make([]float64, len(mix))
	for i, id := range mix {
		cfg := base4.WithWindows(profile.MixWarmup, profile.MixMeasure)
		ws := make([]graphmem.Workload, 4)
		ws[0] = wb.Workload(id, 0)
		singles[i] = graphmem.RunMultiCore(cfg, ws).PerCore[0].IPC()
	}

	var wsBase, wsSDC float64
	fmt.Println()
	fmt.Printf("%-18s %-10s %-10s %-10s\n", "thread", "isolated", "baseline", "SDC+LP")
	for i, id := range mix {
		fmt.Printf("%-18s %-10.3f %-10.3f %-10.3f\n", id.String(), singles[i], baseIPCs[i], sdclpIPCs[i])
		wsBase += baseIPCs[i] / singles[i]
		wsSDC += sdclpIPCs[i] / singles[i]
	}
	fmt.Printf("\nweighted speed-up of SDC+LP over baseline: %+.1f%%\n", (wsSDC/wsBase-1)*100)
	fmt.Println("(paper: +20.2% geomean over 50 mixes, max +69.3%)")
}
