// pagerank-analysis reproduces the paper's per-workload analysis for
// PageRank: the MPKI ladder of the baseline (Fig. 2's observation),
// where L1D misses end up being served (the 78.6% finding), and how
// the Large Predictor splits the access stream when SDC+LP is enabled
// (Figs. 8/9's mechanism).
//
// Run with: go run ./examples/pagerank-analysis [-graph kron]
package main

import (
	"flag"
	"fmt"

	"graphmem"
)

func main() {
	graphName := flag.String("graph", "kron", "input graph (web|road|twitter|kron|urand|friendster)")
	flag.Parse()

	wb := graphmem.NewWorkbench(graphmem.BenchProfile())
	id := graphmem.WorkloadID{Kernel: "pr", Graph: *graphName}
	base := wb.Profile.BaseConfig(1)

	fmt.Printf("=== %s on the baseline hierarchy ===\n", id)
	b := wb.RunSingle(base, id)
	bs := &b.Stats
	fmt.Printf("IPC %.3f, avg load latency %.0f cycles\n", b.IPC(), bs.AvgLoadLatency())
	fmt.Printf("MPKI: L1D %.1f, L2C %.1f, LLC %.1f   (paper averages: 53.2 / 44.5 / 41.8)\n",
		bs.L1D.MPKI(bs.Instructions), bs.L2.MPKI(bs.Instructions), bs.LLC.MPKI(bs.Instructions))

	missServed := bs.ServedL2 + bs.ServedLLC + bs.ServedDRAM + bs.ServedRemote
	if missServed > 0 {
		fmt.Printf("of the loads that miss the L1D, %.1f%% are served by DRAM (paper: 78.6%%)\n",
			100*float64(bs.ServedDRAM)/float64(missServed))
	}

	fmt.Printf("\n=== %s with SDC+LP ===\n", id)
	s := wb.RunSingle(base.WithSDCLP(), id)
	ss := &s.Stats
	fmt.Printf("IPC %.3f (%+.1f%%), avg load latency %.0f cycles\n",
		s.IPC(), (s.IPC()/b.IPC()-1)*100, ss.AvgLoadLatency())
	total := ss.LPPredAverse + ss.LPPredFriendly
	fmt.Printf("LP classified %.1f%% of accesses cache-averse (%d of %d; %d table misses)\n",
		100*float64(ss.LPPredAverse)/float64(total), ss.LPPredAverse, total, ss.LPTableMisses)
	fmt.Printf("MPKI: L1D %.1f, SDC %.1f, L2C %.1f, LLC %.1f\n",
		ss.L1D.MPKI(ss.Instructions), ss.SDC.MPKI(ss.Instructions),
		ss.L2.MPKI(ss.Instructions), ss.LLC.MPKI(ss.Instructions))
	fmt.Printf("loads served by: L1D %d, SDC %d, L2 %d, LLC %d, DRAM %d\n",
		ss.ServedL1D, ss.ServedSDC, ss.ServedL2, ss.ServedLLC, ss.ServedDRAM)

	fmt.Println("\nThe SDC absorbs the irregular outgoing_contrib gathers while the")
	fmt.Println("conventional hierarchy keeps the offsets, neighbor stream and score")
	fmt.Println("updates — exactly the division Section III-D describes.")
}
