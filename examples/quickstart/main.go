// Quickstart: simulate PageRank on a Kronecker graph with and without
// the paper's SDC+LP mechanism and print the speed-up.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"graphmem"
)

func main() {
	// A workbench owns the graphs and machine profiles. The bench
	// profile uses a proportionally shrunk hierarchy so this finishes
	// in seconds; use "small" or "full" for Table-I scale machines.
	wb := graphmem.NewWorkbench(graphmem.BenchProfile())
	wb.Progress = func(msg string) { fmt.Println("  ", msg) }

	id := graphmem.WorkloadID{Kernel: "pr", Graph: "kron"}
	base := wb.Profile.BaseConfig(1)

	fmt.Println("simulating", id, "on the baseline machine...")
	baseline := wb.RunSingle(base, id)

	fmt.Println("simulating", id, "with SDC+LP...")
	sdclp := wb.RunSingle(base.WithSDCLP(), id)

	fmt.Println()
	fmt.Printf("baseline IPC: %.3f\n", baseline.IPC())
	fmt.Printf("SDC+LP   IPC: %.3f\n", sdclp.IPC())
	fmt.Printf("speed-up:     %+.1f%%  (paper reports +20.3%% geomean across 36 workloads)\n",
		(sdclp.IPC()/baseline.IPC()-1)*100)

	bs, ss := &baseline.Stats, &sdclp.Stats
	fmt.Println()
	fmt.Println("why: the LP routes the cache-averse gathers to the SDC, so the")
	fmt.Println("L2/LLC stop thrashing and the friendly data stays resident:")
	fmt.Printf("  L2C MPKI %.1f -> %.1f,  LLC MPKI %.1f -> %.1f\n",
		bs.L2.MPKI(bs.Instructions), ss.L2.MPKI(ss.Instructions),
		bs.LLC.MPKI(bs.Instructions), ss.LLC.MPKI(ss.Instructions))
	fmt.Printf("  avg load latency %.0f -> %.0f cycles\n",
		bs.AvgLoadLatency(), ss.AvgLoadLatency())
}
