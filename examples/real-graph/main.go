// real-graph runs the simulator on a user-supplied graph instead of
// the synthetic Table III stand-ins: point it at a SNAP-style edge
// list (or a .gmg binary produced by cmd/gmgraph) and it compares the
// baseline hierarchy against SDC+LP on the kernel of your choice.
//
// Run with:
//
//	go run ./examples/real-graph -edges soc-Slashdot0902.txt -undirected -kernel pr
//	go run ./examples/real-graph -gmg kron20.gmg -kernel cc
//
// Without flags it demonstrates the flow on a small generated graph.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"graphmem"
)

func main() {
	edges := flag.String("edges", "", "edge-list text file (SNAP format)")
	gmg := flag.String("gmg", "", ".gmg binary graph (see cmd/gmgraph)")
	undirected := flag.Bool("undirected", true, "symmetrize the edge list")
	kernel := flag.String("kernel", "pr", "kernel to run (bc|bfs|cc|pr|tc|sssp|spmv)")
	warmup := flag.Int64("warmup", 4_000_000, "warm-up instructions")
	measure := flag.Int64("measure", 4_000_000, "measured instructions")
	flag.Parse()

	g, name, err := loadGraph(*edges, *gmg, *undirected)
	if err != nil {
		fmt.Fprintln(os.Stderr, "real-graph:", err)
		os.Exit(1)
	}
	s := g.ComputeStats()
	fmt.Printf("graph %s: %d vertices, %d edges (avg degree %.1f)\n",
		name, s.Vertices, s.Edges, s.AvgDegree)

	// Pick the machine scale by footprint: the paper's regime needs the
	// per-vertex property arrays to dwarf the LLC.
	cfg := graphmem.TableI(1)
	propertyBytes := int64(s.Vertices) * 4
	if propertyBytes < 4*int64(cfg.LLCPerCoreBytes) {
		fmt.Println("graph is small relative to the Table I LLC; using the bench-scale machine")
		cfg = cfg.BenchScale()
	}
	cfg = cfg.WithWindows(*warmup, *measure)

	run := func(c graphmem.Config) *graphmem.Result {
		space := graphmem.NewSpace(0)
		inst := graphmem.NewKernel(*kernel, g, space)
		w := graphmem.MakeWorkload(*kernel+"."+name, inst, space)
		return graphmem.RunSingleCore(c, w)
	}
	fmt.Println("running baseline...")
	base := run(cfg)
	fmt.Println("running SDC+LP...")
	sdclp := run(cfg.WithSDCLP())

	bs, ss := &base.Stats, &sdclp.Stats
	fmt.Printf("\nbaseline IPC %.3f   (L1D/L2C/LLC MPKI %.1f / %.1f / %.1f)\n",
		base.IPC(), bs.L1D.MPKI(bs.Instructions), bs.L2.MPKI(bs.Instructions), bs.LLC.MPKI(bs.Instructions))
	fmt.Printf("SDC+LP   IPC %.3f   (L1D/SDC/L2C/LLC MPKI %.1f / %.1f / %.1f / %.1f)\n",
		sdclp.IPC(), ss.L1D.MPKI(ss.Instructions), ss.SDC.MPKI(ss.Instructions),
		ss.L2.MPKI(ss.Instructions), ss.LLC.MPKI(ss.Instructions))
	fmt.Printf("speed-up %+.1f%%\n", (sdclp.IPC()/base.IPC()-1)*100)
}

func loadGraph(edges, gmg string, undirected bool) (*graphmem.Graph, string, error) {
	switch {
	case edges != "":
		f, err := os.Open(edges)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		g, err := graphmem.ReadEdgeList(f, undirected)
		return g, trimName(edges), err
	case gmg != "":
		f, err := os.Open(gmg)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		g, err := graphmem.ReadBinaryGraph(f)
		return g, trimName(gmg), err
	default:
		fmt.Println("no input given; generating a demo Kronecker graph (use -edges or -gmg for real data)")
		return graphmem.Kron(17, 8, 1), "demo-kron17", nil
	}
}

func trimName(path string) string {
	parts := strings.Split(path, "/")
	return parts[len(parts)-1]
}
