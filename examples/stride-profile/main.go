// stride-profile reproduces the Fig. 3 characterization for any
// workload: for each per-PC stride interval, the probability that the
// access was ultimately served by DRAM. This is the observation the
// Large Predictor is built on.
//
// Run with: go run ./examples/stride-profile [-kernel cc] [-graph kron]
package main

import (
	"flag"
	"fmt"
	"os"

	"graphmem"
	"graphmem/internal/harness"
)

func main() {
	kernel := flag.String("kernel", "cc", "kernel to characterize")
	graphName := flag.String("graph", "kron", "input graph (the paper uses cc.friendster)")
	flag.Parse()

	wb := harness.NewWorkbench(graphmem.BenchProfile())
	wb.Progress = func(msg string) { fmt.Fprintln(os.Stderr, msg) }

	id := graphmem.WorkloadID{Kernel: *kernel, Graph: *graphName}
	res := wb.Fig3(id)
	res.Table().Render(os.Stdout)

	fmt.Println("Reading: small-stride accesses (sequential scans of the offset and")
	fmt.Println("neighbor arrays) are served by the caches, while large strides —")
	fmt.Println("the data-dependent gathers into per-vertex property arrays — almost")
	fmt.Println("always fall through to DRAM. τ_glob = 8 blocks separates the two.")
}
