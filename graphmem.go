// Package graphmem is a Go reproduction of "Practically Tackling Memory
// Bottlenecks of Graph-Processing Workloads" (Jamet et al., IPDPS
// 2024): the Side Data Cache (SDC) + Large Predictor (LP)
// microarchitecture proposal, the ChampSim-style simulation substrate
// it is evaluated on, the GAP graph kernels and synthetic inputs that
// drive it, and a harness regenerating every table and figure of the
// paper's evaluation.
//
// The package is a façade over the internal packages; the typical entry
// points are:
//
//	profile, _ := graphmem.ProfileByName("small")
//	wb := graphmem.NewWorkbench(profile)
//	fig7 := wb.Fig7(nil)           // all 36 workloads, 6 configurations
//	fig7.Table().Render(os.Stdout)
//
// or, for a single simulation:
//
//	cfg := graphmem.TableI(1).WithSDCLP()
//	res := wb.RunSingle(cfg, graphmem.WorkloadID{Kernel: "pr", Graph: "kron"})
//	fmt.Println(res.IPC())
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package graphmem

import (
	"flag"

	"graphmem/internal/check"
	corepkg "graphmem/internal/core"
	"graphmem/internal/graph"
	"graphmem/internal/harness"
	"graphmem/internal/kernels"
	"graphmem/internal/mem"
	"graphmem/internal/obs"
	"graphmem/internal/sample"
	"graphmem/internal/sim"
	"graphmem/internal/stats"
	"graphmem/internal/store"
	"graphmem/internal/trace"
)

// Re-exported core types. The aliases keep the full method sets.
type (
	// Config is a complete machine configuration (Table I plus the
	// paper's variants).
	Config = sim.Config
	// Workload binds a prepared kernel instance to a core slot.
	Workload = sim.Workload
	// Result is a single-core simulation outcome.
	Result = sim.Result
	// MultiResult is a multi-core simulation outcome.
	MultiResult = sim.MultiResult
	// Workbench caches graphs and runs for one reproduction profile.
	Workbench = harness.Workbench
	// Profile is a reproduction scale (bench / small / full).
	Profile = harness.Profile
	// WorkloadID names a kernel x graph combination.
	WorkloadID = harness.WorkloadID
	// Table is a renderable experiment result.
	Table = harness.Table
	// Graph is the CSR/CSC sparse graph type.
	Graph = graph.Graph
	// Space is a per-core synthetic address-space allocator.
	Space = mem.Space
	// Tracer is the instrumentation handle kernels emit accesses to.
	Tracer = trace.Tracer
	// KernelInstance is a kernel prepared on a concrete graph.
	KernelInstance = kernels.Instance
	// BudgetEntry is one row of the Table IV hardware budget.
	BudgetEntry = corepkg.BudgetEntry
	// CoreStats is the full measurement-window counter set.
	CoreStats = stats.CoreStats
	// Manifest is the machine-readable record of one run or sweep.
	Manifest = obs.Manifest
	// EpochSample is one entry of the per-epoch telemetry series.
	EpochSample = obs.EpochSample
	// RecorderSummary is the flight-recorder outcome attached to
	// recorded results and manifests.
	RecorderSummary = obs.RecSummary
	// OccupancySample is one point of the recorder's occupancy timeline.
	OccupancySample = obs.OccSample
	// TraceRun names one run's recorder summary for Perfetto export.
	TraceRun = obs.TraceRun
	// MetricsServer is the live Prometheus/expvar metrics registry
	// behind gmsim/gmreport -metrics.
	MetricsServer = obs.Metrics
	// SweepProgress tracks runs done/planned with ETA reporting.
	SweepProgress = obs.Progress
	// ProfilingFlags holds the shared -cpuprofile/-memprofile/-trace
	// command-line profiling options.
	ProfilingFlags = obs.ProfileFlags
	// CheckLevel selects how much differential checking a run performs
	// (CheckOff, CheckOracle, CheckFull).
	CheckLevel = check.Level
	// CheckSummary is the checker outcome attached to checked results.
	CheckSummary = check.Summary
	// CheckViolation is one detailed checker finding with provenance.
	CheckViolation = check.Violation
	// SamplePlan is the statistical sampler's deterministic schedule
	// (Workbench.Sampling / Config.WithSampling).
	SamplePlan = sample.Plan
	// SampleEstimate is a sampled run's per-metric confidence-interval
	// result (Result.Sampling / Manifest.Sampling).
	SampleEstimate = sample.Estimate
	// CheckpointStore is the disk-backed warm-up checkpoint store
	// (Workbench.Checkpoints / Config.WithCheckpointStore).
	CheckpointStore = sample.Store
	// ResultStore is the disk-backed content-addressed simulation result
	// store (Workbench.Store / gmserved).
	ResultStore = store.Store
	// RunKey is the canonical identity of one simulation point (memo key
	// + graph identity + sim state version) shared by the memo, the disk
	// store and gmserved.
	RunKey = harness.RunKey
	// StatInterval is a point estimate with a CLT confidence interval.
	StatInterval = stats.Interval
)

// Differential-checking levels (Config.CheckLevel / Workbench.CheckLevel).
const (
	// CheckOff disables checking; runs pay no overhead.
	CheckOff = check.Off
	// CheckOracle verifies every load against the architectural shadow.
	CheckOracle = check.OracleOnly
	// CheckFull adds periodic structural invariant sweeps to the oracle.
	CheckFull = check.Full
)

// ParseCheckLevel parses a -check flag value ("off", "oracle", "full").
func ParseCheckLevel(s string) (CheckLevel, error) { return check.ParseLevel(s) }

// ParseSamplePlan parses a -sample flag value "period,len,offset[,warm]"
// ("" = disabled).
func ParseSamplePlan(s string) (SamplePlan, error) { return sample.ParsePlan(s) }

// NewCheckpointStore opens (creating if needed) a warm-up checkpoint
// store rooted at dir.
func NewCheckpointStore(dir string) (*CheckpointStore, error) { return sample.NewStore(dir) }

// SampleStateVersion is the µarch checkpoint payload version; it keys
// both the file header and the store lookup, so bumping it invalidates
// every stored warm-up (use it in CI cache keys).
const SampleStateVersion = sample.StateVersion

// ResultStateVersion is the simulator behaviour version keying the
// result store: bumping it (on any change that alters simulated
// counters) orphans every stored result (use it in CI cache keys).
const ResultStateVersion = sim.StateVersion

// NewResultStore opens (creating if needed) a disk-backed result store
// rooted at dir; assign it to Workbench.Store (the -store flag).
func NewResultStore(dir string) (*ResultStore, error) { return harness.OpenResultStore(dir) }

// NewRunKey derives the canonical run key of a configured run.
func NewRunKey(cfg Config, id WorkloadID, profile string) RunKey {
	return harness.NewRunKey(cfg, id, profile)
}

// StoreSummary renders the one-line result-store outcome the CLI tools
// print after a sweep.
func StoreSummary(s *ResultStore) string { return harness.StoreSummary(s) }

// ParseStoreSize parses a byte-size flag value ("64M", "2G", plain
// bytes) for result-store caps.
func ParseStoreSize(s string) (int64, error) { return store.ParseSize(s) }

// ExperimentIDs lists every experiment id 'all' expands to, in report
// order.
var ExperimentIDs = harness.ExperimentIDs

// SubsetWorkloads builds a workload filter from comma-separated kernel
// and graph lists; nil means all workloads.
func SubsetWorkloads(kernelsList, graphsList string) ([]WorkloadID, error) {
	return harness.SubsetWorkloads(kernelsList, graphsList)
}

// ConfigByName derives a named machine configuration variant from base
// ("baseline", "sdclp", "topt", ...).
func ConfigByName(base Config, name string) (Config, error) {
	return harness.ConfigByName(base, name)
}

// ValidPrefetchers reports whether preset names a known prefetcher
// preset for Config.WithPrefetchers ("" — the default wiring — counts).
func ValidPrefetchers(preset string) bool { return sim.ValidPrefetchers(preset) }

// RelErr returns |est-ref|/|ref| (0 for 0/0, +Inf for est/0).
func RelErr(est, ref float64) float64 { return stats.RelErr(est, ref) }

// DefaultQuantum is the bound–weave engine's default cycle quantum
// (Config.WithBoundWeave with quantum <= 0 selects it).
const DefaultQuantum = sim.DefaultQuantum

// TableI returns the paper's baseline machine configuration for the
// given core count.
func TableI(cores int) Config { return sim.TableI(cores) }

// NewWorkbench creates a workbench for a profile.
func NewWorkbench(p Profile) *Workbench { return harness.NewWorkbench(p) }

// ProfileByName resolves "bench", "small" (default) or "full".
func ProfileByName(name string) (Profile, error) { return harness.ProfileByName(name) }

// BenchProfile returns the fast, shrunk-hierarchy profile.
func BenchProfile() Profile { return harness.Bench() }

// SmallProfile returns the default Table-I-machine profile.
func SmallProfile() Profile { return harness.Small() }

// FullProfile returns the largest supported profile.
func FullProfile() Profile { return harness.Full() }

// AllWorkloads lists the 36 kernel x graph combinations.
func AllWorkloads() []WorkloadID { return harness.AllWorkloads() }

// KernelNames lists the six GAP kernels in Table II order.
func KernelNames() []string { return kernels.Names() }

// GraphNames lists the six inputs in Table III order.
func GraphNames() []string { return harness.GraphNames }

// RunSingleCore simulates one workload alone on the given machine.
func RunSingleCore(cfg Config, w Workload) *Result { return sim.RunSingleCore(cfg, w) }

// RunMultiCore simulates a multi-programmed mix sharing one machine.
func RunMultiCore(cfg Config, ws []Workload) *MultiResult { return sim.RunMultiCore(cfg, ws) }

// NewSpace creates the synthetic address space for a core slot.
func NewSpace(core int) *Space { return mem.NewSpace(core) }

// NewKernel prepares the named GAP kernel on g in space (e.g. "pr").
func NewKernel(name string, g *Graph, space *Space) KernelInstance {
	build, ok := kernels.Registry()[name]
	if !ok {
		panic("graphmem: unknown kernel " + name)
	}
	return build(g, space)
}

// MakeWorkload bundles a prepared kernel into a schedulable workload.
func MakeWorkload(name string, inst KernelInstance, space *Space) Workload {
	return Workload{Name: name, Inst: inst, Space: space}
}

// GenerateMixes draws deterministic 4-thread workload mixes, as the
// multi-core evaluation does.
func GenerateMixes(pool []WorkloadID, n int, seed uint64) [][]WorkloadID {
	return harness.GenerateMixes(pool, n, seed)
}

// NewManifest starts a run manifest for the named tool.
func NewManifest(tool string) *Manifest { return obs.NewManifest(tool) }

// DeriveMetrics computes the manifest's headline metrics from final
// window counters.
func DeriveMetrics(s *CoreStats) obs.Derived { return obs.DeriveMetrics(s) }

// NewProgress creates a sweep progress reporter emitting lines to out
// (nil = silent counting).
func NewProgress(out func(string)) *SweepProgress { return obs.NewProgress(out) }

// RegisterProfilingFlags installs -cpuprofile, -memprofile and -trace
// on a flag set; call Start() on the result after flag parsing.
func RegisterProfilingFlags(fs *flag.FlagSet) *ProfilingFlags {
	return obs.RegisterProfileFlags(fs)
}

// Epoch telemetry exporters (CSV and JSONL time-series writers).
var (
	// WriteEpochsCSV writes per-core epoch curves as CSV.
	WriteEpochsCSV = obs.WriteEpochsCSV
	// WriteEpochsJSONL writes one JSON object per (core, epoch).
	WriteEpochsJSONL = obs.WriteEpochsJSONL
	// WritePerfettoTrace writes flight-recorder timelines as a
	// Perfetto-loadable Chrome trace-event JSON file.
	WritePerfettoTrace = obs.WritePerfettoFile
)

// NewMetrics creates the live metrics registry served by -metrics.
func NewMetrics() *MetricsServer { return obs.NewMetrics() }

// Budget computes the Table IV per-core hardware budget.
func Budget(sdcBytes, lpEntries, sdcDirEntries, cores int) []BudgetEntry {
	return corepkg.Budget(sdcBytes, lpEntries, sdcDirEntries, cores)
}

// BudgetTotalKB sums a hardware budget in KB.
func BudgetTotalKB(rows []BudgetEntry) float64 { return corepkg.TotalKB(rows) }

// Graph I/O: load real inputs (SNAP-style edge lists) and cache built
// CSR graphs in a compact binary format.
var (
	// ReadEdgeList parses "src dst [w]" text (SNAP/GAP format).
	ReadEdgeList = graph.ReadEdgeList
	// ReadBinaryGraph loads a graph written by (*Graph).WriteBinary.
	ReadBinaryGraph = graph.ReadBinary
)

// Graph generators (synthetic stand-ins for Table III; see DESIGN.md).
var (
	// Kron generates a Graph500-style Kronecker graph.
	Kron = graph.Kron
	// Urand generates a uniform random graph.
	Urand = graph.Urand
	// PowerLaw generates a preferential-attachment graph.
	PowerLaw = graph.PowerLaw
	// WebLike generates a locality-rich power-law web graph.
	WebLike = graph.WebLike
	// RoadGrid generates a weighted road-network lattice.
	RoadGrid = graph.RoadGrid
)
