// Tests for the public API façade: everything a downstream user would
// touch must work through the graphmem package alone.
package graphmem_test

import (
	"math"
	"strings"
	"testing"

	"graphmem"
	"graphmem/internal/trace"
)

func TestPublicAPIBuildGraphAndKernel(t *testing.T) {
	g := graphmem.Urand(2000, 8000, 1)
	if g.NumVertices() != 2000 || g.NumEdges() == 0 {
		t.Fatal("generator via public API broken")
	}
	space := graphmem.NewSpace(0)
	inst := graphmem.NewKernel("bfs", g, space)
	if inst.Info().Name != "bfs" {
		t.Fatal("kernel info wrong")
	}
	w := graphmem.MakeWorkload("bfs.tiny", inst, space)
	cfg := graphmem.TableI(1).BenchScale().WithWindows(10_000, 50_000)
	res := graphmem.RunSingleCore(cfg, w)
	if res.Stats.Instructions < 50_000 || res.IPC() <= 0 {
		t.Fatalf("run broken: %v", res)
	}
}

func TestPublicAPIUnknownKernelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	graphmem.NewKernel("nope", graphmem.Urand(10, 20, 1), graphmem.NewSpace(0))
}

func TestPublicAPIProfilesAndWorkloads(t *testing.T) {
	if len(graphmem.AllWorkloads()) != 36 {
		t.Error("workload count")
	}
	if len(graphmem.KernelNames()) != 6 || len(graphmem.GraphNames()) != 6 {
		t.Error("name lists")
	}
	for _, n := range []string{"bench", "small", "full"} {
		if _, err := graphmem.ProfileByName(n); err != nil {
			t.Errorf("profile %s: %v", n, err)
		}
	}
	if graphmem.BenchProfile().Name != "bench" ||
		graphmem.SmallProfile().Name != "small" ||
		graphmem.FullProfile().Name != "full" {
		t.Error("profile constructors")
	}
}

func TestPublicAPIBudget(t *testing.T) {
	rows := graphmem.Budget(8<<10, 32, 128, 1)
	if got := graphmem.BudgetTotalKB(rows); math.Abs(got-10) > 0.1 {
		t.Errorf("Table IV total = %.2f KB, want ~10", got)
	}
}

func TestPublicAPIConfigVariants(t *testing.T) {
	base := graphmem.TableI(1)
	for _, cfg := range []graphmem.Config{
		base.WithSDCLP(), base.WithTOPT(), base.WithDistill(),
		base.WithBigL1D(), base.With2xLLC(), base.WithExpert(),
		base.WithSDCLP().WithSDCSize(16),
		base.WithSDCLP().WithLP(64, 64, 8),
		base.WithoutPrefetchers(),
		base.WithDirLatency(8),
	} {
		if cfg.Name == "" || cfg.Name == "Baseline" {
			t.Errorf("variant lost its name: %+v", cfg.Name)
		}
	}
}

func TestPublicAPIMultiCore(t *testing.T) {
	g := graphmem.Urand(20000, 100000, 2)
	cfg := graphmem.TableI(2).BenchScale().WithWindows(20_000, 100_000)
	ws := make([]graphmem.Workload, 2)
	for i := 0; i < 2; i++ {
		space := graphmem.NewSpace(i)
		ws[i] = graphmem.MakeWorkload("cc", graphmem.NewKernel("cc", g, space), space)
	}
	res := graphmem.RunMultiCore(cfg, ws)
	ipcs := res.IPCs()
	if len(ipcs) != 2 || ipcs[0] <= 0 || ipcs[1] <= 0 {
		t.Fatalf("multi-core IPCs = %v", ipcs)
	}
}

func TestPublicAPITracerDirectUse(t *testing.T) {
	// A downstream user can drive a kernel into their own sink.
	g := graphmem.Kron(8, 8, 3)
	inst := graphmem.NewKernel("pr", g, graphmem.NewSpace(0))
	sink := &trace.CountingSink{Limit: 10_000}
	inst.Run(trace.New(sink))
	if sink.Records != 10_000 {
		t.Errorf("records = %d", sink.Records)
	}
}

func TestPublicAPIWorkbenchExperiment(t *testing.T) {
	wb := bench() // shared with the benchmarks
	tbl := wb.Tab4(1)
	if !strings.Contains(tbl.String(), "SDCDir") {
		t.Error("tab4 via façade broken")
	}
}
