package cache

import (
	"testing"

	"graphmem/internal/mem"
)

// benchCache is a 32 KiB 8-way cache with a 16-entry MSHR — L1D-class
// geometry, the per-record hottest structure in the simulator.
func benchCache() *Cache {
	return New(Config{Name: "B", SizeBytes: 32 << 10, Ways: 8, Latency: 4, MSHRs: 16})
}

// BenchmarkLookupHit measures the set scan plus recency update on a
// resident working set (the dominant cache operation).
func BenchmarkLookupHit(b *testing.B) {
	c := benchCache()
	const blocks = 256 // half capacity: all hits, multiple ways per set
	for i := 0; i < blocks; i++ {
		blk := mem.BlockAddr(i)
		c.Fill(blk, blk.Addr(), 8, false, false, 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := mem.BlockAddr(i % blocks)
		c.Lookup(blk, blk.Addr(), 8, false, false, int64(i))
	}
}

// BenchmarkLookupMissFill measures the miss + evicting-fill path on a
// streaming (capacity-exceeding) block sequence.
func BenchmarkLookupMissFill(b *testing.B) {
	c := benchCache()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := mem.BlockAddr(i)
		now := int64(i)
		if !c.Lookup(blk, blk.Addr(), 8, false, false, now).Hit {
			c.Fill(blk, blk.Addr(), 8, false, false, now+10)
		}
	}
}

// BenchmarkMSHRAllocateComplete measures the merge/stall register file
// under a full churn cycle: allocate, complete, expire.
func BenchmarkMSHRAllocateComplete(b *testing.B) {
	m := NewMSHR(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := mem.BlockAddr(i)
		now := int64(i)
		if _, inflight := m.Lookup(blk, now); !inflight {
			start := m.Allocate(blk, now)
			m.Complete(blk, start+40)
		}
	}
}
