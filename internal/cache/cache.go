// Package cache models the set-associative caches of the hierarchy
// (L1D, L2C, LLC, and the paper's SDC reuses the same machinery):
// lookup/fill/invalidate with per-line fill timestamps, MSHRs with
// merge-and-stall semantics, pluggable replacement (LRU, the T-OPT
// transpose-driven policy of Balaji et al.) and the Line Distillation
// organization of Qureshi et al. used as the "Distill Cache" baseline.
//
// Timing follows the repository-wide timestamp-reservation scheme: the
// cache never steps cycles; callers pass the current CPU cycle and get
// back ready-at timestamps.
//
// Concurrency contract (bound–weave engine, internal/sim/boundweave.go):
// a Cache instance is single-goroutine — private caches (L1D, SDC, L2)
// belong to their core's bound-phase goroutine, while the shared LLC is
// mutated only by the serial weave replay (Lookup/Fill/MSHR calls in
// replayLLCRead and friends). Nothing in this package locks; the engine
// provides the isolation.
package cache

import (
	"fmt"

	"graphmem/internal/mem"
	"graphmem/internal/stats"
)

// Config describes one cache structure.
type Config struct {
	// Name appears in stats output ("L1D", "L2C", ...).
	Name string
	// SizeBytes is the total data capacity.
	SizeBytes int
	// Ways is the set associativity.
	Ways int
	// Latency is the lookup (hit) latency in cycles.
	Latency int64
	// MSHRs bounds outstanding misses; 0 means unlimited.
	MSHRs int
	// Policy selects the replacement policy; nil means LRU.
	Policy Policy
	// Distill enables the Line Distillation organization: the last
	// DistillWOCWays ways of each set form the Word-Organized Cache
	// holding only the used words of lines evicted from the rest.
	Distill        bool
	DistillWOCWays int
}

// Sets returns the number of sets implied by the geometry.
func (c Config) Sets() int {
	s := c.SizeBytes / (mem.BlockSize * c.Ways)
	if s <= 0 || s&(s-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a positive power of two (size=%d ways=%d)",
			c.Name, s, c.SizeBytes, c.Ways))
	}
	return s
}

// Line is one cache line's bookkeeping. The simulator is address-only;
// no data is stored.
type Line struct {
	Blk        mem.BlockAddr
	Valid      bool
	Dirty      bool
	Prefetched bool
	// ReadyAt is the fill completion time: a hit on a line still being
	// filled waits until then (MSHR hit-under-fill).
	ReadyAt int64
	// Used is a per-word (4 B) use bitmask for line distillation.
	Used uint16
	// WOC marks a distillation word-organized entry that only holds the
	// words set in Used.
	WOC bool
	// RRPV is the re-reference prediction value maintained by the
	// SRRIP policy (unused under other policies).
	RRPV uint8
	// Ver is the architectural version stamp maintained by the
	// differential checker (internal/check); 0 means unknown. The cache
	// itself never reads it — internal/sim stamps it via SetVer in
	// checked runs only, so unchecked runs pay nothing.
	Ver uint64
	// lru is the recency stamp maintained by the cache.
	lru int64
}

// Recency returns the line's LRU stamp (for invariant checks).
func (ln *Line) Recency() int64 { return ln.lru }

// Cache is one set-associative cache structure.
//
// Lines are stored as one contiguous slab indexed arithmetically by
// (set, way) rather than a slice-of-slices: the per-record set scan is
// the hottest loop in the simulator and the slab keeps every way of a
// set on adjacent cache lines of the host.
type Cache struct {
	cfg      Config
	lines    []Line // nsets x ways slab, set-major
	setMask  uint64
	ways     int
	lruClock int64
	policy   Policy
	mshr     *MSHR
	// Stats counts demand activity (prefetch fills are counted
	// separately by the caller via MarkPrefetchFill).
	Stats stats.CacheStats
}

// New builds a cache from cfg.
func New(cfg Config) *Cache {
	nsets := cfg.Sets()
	c := &Cache{
		cfg:     cfg,
		lines:   make([]Line, nsets*cfg.Ways),
		setMask: uint64(nsets - 1),
		ways:    cfg.Ways,
		policy:  cfg.Policy,
	}
	if c.policy == nil {
		c.policy = LRU{}
	}
	if cfg.Distill && (cfg.DistillWOCWays <= 0 || cfg.DistillWOCWays >= cfg.Ways) {
		panic(fmt.Sprintf("cache %s: bad DistillWOCWays %d for %d ways", cfg.Name, cfg.DistillWOCWays, cfg.Ways))
	}
	if cfg.MSHRs > 0 {
		c.mshr = NewMSHR(cfg.MSHRs)
	}
	return c
}

// SetTap attaches (nil detaches) the flight-recorder hook to the
// cache's MSHR file, tagging events with the cache's serving level.
// A no-op for caches without MSHRs.
func (c *Cache) SetTap(t mem.Tap, level mem.ServedBy) {
	if c.mshr != nil {
		c.mshr.SetTap(t, level)
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Latency returns the lookup latency in cycles.
func (c *Cache) Latency() int64 { return c.cfg.Latency }

// MSHR exposes the miss-status holding registers (nil when unlimited).
func (c *Cache) MSHR() *MSHR { return c.mshr }

func (c *Cache) setIndex(blk mem.BlockAddr) int {
	return int(uint64(blk) & c.setMask)
}

// set returns the ways of set si as a full-capacity slice into the slab.
func (c *Cache) set(si int) []Line {
	return c.lines[si*c.ways : (si+1)*c.ways]
}

// wordMask returns the distillation used-word bits touched by an access
// of size bytes at addr.
func wordMask(addr mem.Addr, size uint8) uint16 {
	first := addr.BlockOffset() / 4
	last := (addr.BlockOffset() + uint64(size) - 1) / 4
	if last > 15 {
		last = 15
	}
	return uint16(1<<(last-first+1)-1) << first
}

// LookupResult describes the outcome of a Lookup.
type LookupResult struct {
	Hit bool
	// ReadyAt is valid on a hit: when the data can be delivered,
	// accounting for the lookup latency and any in-progress fill.
	ReadyAt int64
	// WOCHit marks a distillation hit served from the word-organized
	// portion of the set.
	WOCHit bool
}

// Lookup performs a demand access at CPU cycle now. On a hit it updates
// recency/used-word state and returns the data-ready time. On a miss it
// records the miss; the caller is responsible for fetching the block
// downstream and calling Fill. Prefetch lookups (prefetch=true) count
// into the separate PFHits/PFMisses so demand MPKI stays clean.
func (c *Cache) Lookup(blk mem.BlockAddr, addr mem.Addr, size uint8, write, prefetch bool, now int64) LookupResult {
	set := c.set(c.setIndex(blk))
	t := now + c.cfg.Latency
	for w := range set {
		ln := &set[w]
		if !ln.Valid || ln.Blk != blk {
			continue
		}
		// wordMask is cheap but not free; compute it only for a
		// matching candidate, never on the pure-miss scan.
		wm := wordMask(addr, size)
		if ln.WOC {
			// A word-organized entry only serves the words it kept.
			if ln.Used&wm != wm {
				continue
			}
		}
		c.lruClock++
		ln.lru = c.lruClock
		ln.Used |= wm
		if write {
			ln.Dirty = true
		}
		if prefetch {
			c.Stats.PFHits++
		} else {
			c.Stats.Hits++
		}
		c.policy.OnHit(c, blk, set, w)
		ready := t
		if ln.ReadyAt > ready {
			ready = ln.ReadyAt
		}
		return LookupResult{Hit: true, ReadyAt: ready, WOCHit: ln.WOC}
	}
	if prefetch {
		c.Stats.PFMisses++
	} else {
		c.Stats.Misses++
	}
	return LookupResult{Hit: false, ReadyAt: t}
}

// Probe reports whether blk is present (valid, full line or any WOC
// fragment) without touching recency, stats or used-word state.
func (c *Cache) Probe(blk mem.BlockAddr) bool {
	set := c.set(c.setIndex(blk))
	for w := range set {
		if set[w].Valid && set[w].Blk == blk {
			return true
		}
	}
	return false
}

// ProbeDirty reports presence and dirtiness without state changes.
func (c *Cache) ProbeDirty(blk mem.BlockAddr) (present, dirty bool) {
	set := c.set(c.setIndex(blk))
	for w := range set {
		if set[w].Valid && set[w].Blk == blk {
			return true, set[w].Dirty
		}
	}
	return false, false
}

// Victim describes a line evicted by Fill.
type Victim struct {
	Valid bool
	Blk   mem.BlockAddr
	Dirty bool
	// Used carries the distillation use mask of the evicted line.
	Used uint16
	// Ver carries the evicted line's checker version stamp.
	Ver uint64
}

// Fill inserts blk, returning the evicted victim (Victim.Valid=false if
// an invalid way was used). readyAt is the fill completion time;
// prefetch marks prefetcher-initiated fills; write pre-dirties the line
// (write-allocate stores).
func (c *Cache) Fill(blk mem.BlockAddr, addr mem.Addr, size uint8, write, prefetch bool, readyAt int64) Victim {
	si := c.setIndex(blk)
	set := c.set(si)
	// Refill of a line already present (e.g. prefetch racing a demand
	// fill): refresh timing only.
	for w := range set {
		if set[w].Valid && set[w].Blk == blk && !set[w].WOC {
			if readyAt < set[w].ReadyAt {
				set[w].ReadyAt = readyAt
			}
			if write {
				set[w].Dirty = true
			}
			return Victim{}
		}
	}
	lastLOC := len(set)
	if c.cfg.Distill {
		lastLOC = len(set) - c.cfg.DistillWOCWays
	}
	way := -1
	for w := 0; w < lastLOC; w++ {
		if !set[w].Valid {
			way = w
			break
		}
	}
	var v Victim
	if way < 0 {
		way = c.policy.Victim(c, blk, set[:lastLOC])
		ln := &set[way]
		v = Victim{Valid: true, Blk: ln.Blk, Dirty: ln.Dirty, Used: ln.Used, Ver: ln.Ver}
		ln.Valid = false
		if c.cfg.Distill {
			// Line distillation: retain the victim's used words in the
			// word-organized ways instead of discarding the whole line.
			c.distillInsert(si, v)
			// The WOC now holds any dirty words; don't double-writeback.
		}
		c.Stats.Evictions++
		if v.Dirty {
			c.Stats.Writebacks++
		}
	}
	c.lruClock++
	ln := &set[way]
	*ln = Line{
		Blk:        blk,
		Valid:      true,
		Dirty:      write,
		Prefetched: prefetch,
		ReadyAt:    readyAt,
		Used:       wordMask(addr, size),
		lru:        c.lruClock,
	}
	c.policy.OnFill(c, blk, set[:lastLOC], way)
	return v
}

// distillInsert places an evicted line's used words into the WOC ways of
// set si, evicting the LRU WOC entry.
func (c *Cache) distillInsert(si int, v Victim) {
	if v.Used == 0 {
		return
	}
	set := c.set(si)
	start := len(set) - c.cfg.DistillWOCWays
	way := start
	best := int64(1<<63 - 1)
	for w := start; w < len(set); w++ {
		if !set[w].Valid {
			way = w
			break
		}
		if set[w].lru < best {
			best = set[w].lru
			way = w
		}
	}
	c.lruClock++
	set[way] = Line{
		Blk:   v.Blk,
		Valid: true,
		Dirty: v.Dirty,
		WOC:   true,
		Used:  v.Used,
		Ver:   v.Ver,
		lru:   c.lruClock,
	}
}

// Invalidate removes blk if present and reports whether it was there and
// dirty (the caller must write it back if so).
func (c *Cache) Invalidate(blk mem.BlockAddr) (present, dirty bool) {
	set := c.set(c.setIndex(blk))
	for w := range set {
		if set[w].Valid && set[w].Blk == blk {
			present = true
			dirty = dirty || set[w].Dirty
			set[w].Valid = false
		}
	}
	return present, dirty
}

// MarkPrefetchFill counts a prefetch fill in the stats.
func (c *Cache) MarkPrefetchFill() { c.Stats.Prefetches++ }

// VerOf returns the checker version stamp of blk's copy (0 when absent
// or never stamped). Like Probe it touches no recency or stats state,
// so checked and unchecked runs stay counter-identical.
func (c *Cache) VerOf(blk mem.BlockAddr) uint64 {
	set := c.set(c.setIndex(blk))
	for w := range set {
		if set[w].Valid && set[w].Blk == blk {
			return set[w].Ver
		}
	}
	return 0
}

// SetVer stamps every valid copy of blk with the checker version. The
// stamp is the only state it touches.
func (c *Cache) SetVer(blk mem.BlockAddr, ver uint64) {
	set := c.set(c.setIndex(blk))
	for w := range set {
		if set[w].Valid && set[w].Blk == blk {
			set[w].Ver = ver
		}
	}
}

// Clock returns the cache's recency clock (for invariant checks: every
// line's Recency must be <= Clock, and Clock must never decrease).
func (c *Cache) Clock() int64 { return c.lruClock }

// Occupancy returns the number of valid lines (full and WOC).
func (c *Cache) Occupancy() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].Valid {
			n++
		}
	}
	return n
}

// ForEachValid calls fn for every valid line; used by invariant checks
// in tests.
func (c *Cache) ForEachValid(fn func(ln *Line)) {
	for i := range c.lines {
		if c.lines[i].Valid {
			fn(&c.lines[i])
		}
	}
}

// lruOf returns the recency stamp used by the LRU policy.
func lruOf(ln *Line) int64 { return ln.lru }
