package cache

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"graphmem/internal/mem"
)

// smallCfg is a 4-set, 2-way toy cache with 1-cycle latency.
func smallCfg() Config {
	return Config{Name: "T", SizeBytes: 4 * 2 * mem.BlockSize, Ways: 2, Latency: 1}
}

func addrOf(blk mem.BlockAddr) mem.Addr { return blk.Addr() }

func demand(c *Cache, blk mem.BlockAddr, now int64) LookupResult {
	return c.Lookup(blk, addrOf(blk), 4, false, false, now)
}

func fill(c *Cache, blk mem.BlockAddr, ready int64) Victim {
	return c.Fill(blk, addrOf(blk), 4, false, false, ready)
}

func TestConfigSets(t *testing.T) {
	cfg := Config{Name: "L1D", SizeBytes: 32 << 10, Ways: 8, Latency: 4}
	if got := cfg.Sets(); got != 64 {
		t.Errorf("Sets = %d, want 64", got)
	}
	bad := Config{Name: "X", SizeBytes: 3 * mem.BlockSize, Ways: 1}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-power-of-two sets")
		}
	}()
	bad.Sets()
}

func TestMissThenFillThenHit(t *testing.T) {
	c := New(smallCfg())
	r := demand(c, 100, 0)
	if r.Hit {
		t.Fatal("cold cache should miss")
	}
	if r.ReadyAt != 1 {
		t.Errorf("miss detection time = %d, want 1 (lookup latency)", r.ReadyAt)
	}
	fill(c, 100, 50)
	r = demand(c, 100, 60)
	if !r.Hit || r.ReadyAt != 61 {
		t.Errorf("hit = %v ready = %d, want hit at 61", r.Hit, r.ReadyAt)
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestHitUnderFillWaitsForReadyAt(t *testing.T) {
	c := New(smallCfg())
	demand(c, 100, 0)
	fill(c, 100, 200) // fill completes at 200
	r := demand(c, 100, 50)
	if !r.Hit {
		t.Fatal("in-flight line should hit")
	}
	if r.ReadyAt != 200 {
		t.Errorf("ready = %d, want 200 (fill completion)", r.ReadyAt)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(smallCfg())
	// Blocks 0, 4, 8 map to set 0 in a 4-set cache.
	fill(c, 0, 0)
	fill(c, 4, 1)
	demand(c, 0, 10) // touch 0: 4 becomes LRU
	v := fill(c, 8, 20)
	if !v.Valid || v.Blk != 4 {
		t.Errorf("victim = %+v, want block 4", v)
	}
	if !c.Probe(0) || !c.Probe(8) || c.Probe(4) {
		t.Error("wrong lines resident after eviction")
	}
}

func TestDirtyVictimReported(t *testing.T) {
	c := New(smallCfg())
	c.Fill(0, 0, 4, true, false, 0) // write-allocate: dirty
	fill(c, 4, 1)
	v := fill(c, 8, 2)
	if !v.Valid || v.Blk != 0 || !v.Dirty {
		t.Errorf("victim = %+v, want dirty block 0", v)
	}
	if c.Stats.Writebacks != 1 || c.Stats.Evictions != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestWriteHitSetsDirty(t *testing.T) {
	c := New(smallCfg())
	fill(c, 0, 0)
	c.Lookup(0, addrOf(0), 4, true, false, 10)
	if _, dirty := c.ProbeDirty(0); !dirty {
		t.Error("write hit did not dirty the line")
	}
}

func TestProbeDoesNotTouchState(t *testing.T) {
	c := New(smallCfg())
	fill(c, 0, 0)
	fill(c, 4, 1)
	// Probing 0 must not refresh its recency.
	for i := 0; i < 10; i++ {
		c.Probe(0)
	}
	v := fill(c, 8, 2)
	if v.Blk != 0 {
		t.Errorf("victim = %+v; probes must not update LRU", v)
	}
	if c.Stats.Hits != 0 {
		t.Error("probes must not count as hits")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(smallCfg())
	c.Fill(0, 0, 4, true, false, 0)
	present, dirty := c.Invalidate(0)
	if !present || !dirty {
		t.Errorf("Invalidate = (%v,%v), want dirty present", present, dirty)
	}
	if c.Probe(0) {
		t.Error("line still present after invalidate")
	}
	present, _ = c.Invalidate(0)
	if present {
		t.Error("double invalidate reported presence")
	}
}

func TestRefillDoesNotDuplicate(t *testing.T) {
	c := New(smallCfg())
	fill(c, 0, 100)
	fill(c, 0, 50) // racing refill with earlier ready time
	n := 0
	c.ForEachValid(func(ln *Line) {
		if ln.Blk == 0 {
			n++
		}
	})
	if n != 1 {
		t.Errorf("block 0 present %d times", n)
	}
	r := demand(c, 0, 60)
	if r.ReadyAt != 61 {
		t.Errorf("refill should take earlier ready time; got %d", r.ReadyAt)
	}
}

func TestOccupancyNeverExceedsCapacity(t *testing.T) {
	f := func(blocks []uint16) bool {
		c := New(smallCfg())
		for i, b := range blocks {
			blk := mem.BlockAddr(b)
			if r := demand(c, blk, int64(i)); !r.Hit {
				fill(c, blk, int64(i))
			}
		}
		if c.Occupancy() > 8 {
			return false
		}
		// No duplicate blocks.
		seen := map[mem.BlockAddr]bool{}
		ok := true
		c.ForEachValid(func(ln *Line) {
			if seen[ln.Blk] {
				ok = false
			}
			seen[ln.Blk] = true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestHitsPlusMissesEqualAccesses(t *testing.T) {
	c := New(smallCfg())
	r := rand.New(rand.NewPCG(1, 2))
	n := 1000
	for i := 0; i < n; i++ {
		blk := mem.BlockAddr(r.IntN(32))
		if res := demand(c, blk, int64(i)); !res.Hit {
			fill(c, blk, int64(i))
		}
	}
	if c.Stats.Accesses() != int64(n) {
		t.Errorf("accesses = %d, want %d", c.Stats.Accesses(), n)
	}
}

// --- Distillation ---

func distillCfg() Config {
	// 2 sets, 4 ways, last way is the WOC.
	return Config{Name: "D", SizeBytes: 2 * 4 * mem.BlockSize, Ways: 4,
		Latency: 1, Distill: true, DistillWOCWays: 1}
}

func TestDistillRetainsUsedWords(t *testing.T) {
	c := New(distillCfg())
	// Fill set 0's three LOC ways (blocks 0,2,4 map to set 0 of 2 sets).
	c.Fill(0, 0, 4, false, false, 0) // uses word 0 only
	fill(c, 2, 1)
	fill(c, 4, 2)
	// Next fill evicts block 0 into the WOC.
	fill(c, 6, 3)
	// Word 0 of block 0 should still hit (WOC), other words must miss.
	r := c.Lookup(0, 0, 4, false, false, 10)
	if !r.Hit || !r.WOCHit {
		t.Errorf("WOC word hit failed: %+v", r)
	}
	r = c.Lookup(0, 32, 4, false, false, 11) // word 8 of block 0: not retained
	if r.Hit {
		t.Error("unused word should miss in WOC")
	}
}

func TestDistillWOCEvictsLRU(t *testing.T) {
	c := New(distillCfg())
	fill(c, 0, 0)
	fill(c, 2, 1)
	fill(c, 4, 2)
	fill(c, 6, 3) // evicts 0 into WOC
	fill(c, 8, 4) // evicts 2 into WOC, displacing 0 (only 1 WOC way)
	if c.Probe(0) {
		t.Error("block 0 should have been displaced from the WOC")
	}
	r := c.Lookup(2, addrOf(2), 4, false, false, 20)
	if !r.Hit || !r.WOCHit {
		t.Error("block 2's used word should hit in WOC")
	}
}

func TestDistillDirtyWordsStayDirty(t *testing.T) {
	c := New(distillCfg())
	c.Fill(0, 0, 4, true, false, 0) // dirty
	fill(c, 2, 1)
	fill(c, 4, 2)
	fill(c, 6, 3) // evicts dirty block 0 into WOC
	if _, dirty := c.ProbeDirty(0); !dirty {
		t.Error("dirty bits lost in distillation")
	}
}

func TestDistillBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for WOCWays >= Ways")
		}
	}()
	New(Config{Name: "bad", SizeBytes: 8 * mem.BlockSize, Ways: 2,
		Latency: 1, Distill: true, DistillWOCWays: 2})
}

// --- T-OPT ---

type mapOracle map[mem.BlockAddr]uint8

func (m mapOracle) Rank(blk mem.BlockAddr) uint8 {
	if r, ok := m[blk]; ok {
		return r
	}
	return RankDefault
}

func TestTOPTEvictsFurthestNextUse(t *testing.T) {
	oracle := mapOracle{0: 10, 4: 200, 8: 50}
	cfg := smallCfg()
	cfg.Policy = &TOPT{Oracle: oracle}
	c := New(cfg)
	fill(c, 0, 0)
	fill(c, 4, 1)
	v := fill(c, 8, 2)
	if v.Blk != 4 {
		t.Errorf("T-OPT evicted %d, want 4 (furthest next use)", v.Blk)
	}
}

func TestTOPTTieBreaksLRU(t *testing.T) {
	oracle := mapOracle{} // everything RankDefault
	cfg := smallCfg()
	cfg.Policy = &TOPT{Oracle: oracle}
	c := New(cfg)
	fill(c, 0, 0)
	fill(c, 4, 1)
	demand(c, 0, 5)
	v := fill(c, 8, 10)
	if v.Blk != 4 {
		t.Errorf("tie-break evicted %d, want LRU block 4", v.Blk)
	}
}

func TestWordMask(t *testing.T) {
	if got := wordMask(0, 4); got != 0b1 {
		t.Errorf("wordMask(0,4) = %b", got)
	}
	if got := wordMask(4, 4); got != 0b10 {
		t.Errorf("wordMask(4,4) = %b", got)
	}
	if got := wordMask(0, 8); got != 0b11 {
		t.Errorf("wordMask(0,8) = %b", got)
	}
	if got := wordMask(60, 4); got != 0x8000 {
		t.Errorf("wordMask(60,4) = %#x", got)
	}
	// Unaligned 8-byte access spanning words 1-2.
	if got := wordMask(6, 8); got != 0b1110 {
		t.Errorf("wordMask(6,8) = %b", got)
	}
}

// --- MSHR ---

func TestMSHRMerge(t *testing.T) {
	m := NewMSHR(4)
	start := m.Allocate(100, 0)
	if start != 0 {
		t.Errorf("first allocate stalled to %d", start)
	}
	m.Complete(100, 500)
	ready, inflight := m.Lookup(100, 50)
	if !inflight || ready != 500 {
		t.Errorf("Lookup = (%d,%v)", ready, inflight)
	}
	// After completion time, the entry expires.
	if _, inflight := m.Lookup(100, 600); inflight {
		t.Error("entry should expire after fill time")
	}
}

func TestMSHRStallWhenFull(t *testing.T) {
	m := NewMSHR(2)
	m.Allocate(1, 0)
	m.Complete(1, 100)
	m.Allocate(2, 0)
	m.Complete(2, 200)
	start := m.Allocate(3, 10)
	if start != 100 {
		t.Errorf("full MSHR stalled to %d, want 100 (earliest free)", start)
	}
}

func TestMSHRFreesAfterCompletion(t *testing.T) {
	m := NewMSHR(1)
	m.Allocate(1, 0)
	m.Complete(1, 100)
	// At time 150 the register is free again: no stall.
	if start := m.Allocate(2, 150); start != 150 {
		t.Errorf("allocate after completion stalled to %d", start)
	}
	if m.Outstanding(150) != 1 {
		t.Errorf("outstanding = %d", m.Outstanding(150))
	}
}

func TestMSHRAbandon(t *testing.T) {
	m := NewMSHR(1)
	m.Allocate(1, 0)
	m.Abandon(1)
	if start := m.Allocate(2, 0); start != 0 {
		t.Errorf("abandon did not free the slot: stall to %d", start)
	}
}

func TestMSHRCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for zero capacity")
		}
	}()
	NewMSHR(0)
}

func TestSRRIPInsertionIsEvictable(t *testing.T) {
	cfg := smallCfg()
	cfg.Policy = SRRIP{}
	c := New(cfg)
	// A line re-referenced between streaming fills keeps RRPV 0 and
	// survives; the streamed-in lines (inserted at RRPV 2) evict each
	// other.
	fill(c, 0, 0)
	fill(c, 4, 1)
	for i := int64(2); i < 6; i++ {
		demand(c, 0, i+5)
		fill(c, mem.BlockAddr(i*4), i+10)
	}
	if !c.Probe(0) {
		t.Error("SRRIP evicted the reused line in favour of streaming lines")
	}
}

func TestSRRIPAgingFindsVictim(t *testing.T) {
	cfg := smallCfg()
	cfg.Policy = SRRIP{}
	c := New(cfg)
	fill(c, 0, 0)
	fill(c, 4, 1)
	demand(c, 0, 2)
	demand(c, 4, 3) // both RRPV 0: aging must still find a victim
	v := fill(c, 8, 4)
	if !v.Valid {
		t.Error("no victim found")
	}
}
