package cache

import (
	"math"
	"testing"

	"graphmem/internal/mem"
)

// Differential fuzzing for the set-associative cache and the MSHR file,
// each against a deliberately naive reference model. The fuzz input is
// an op stream; op streams stay within the legal-usage envelope the
// simulator guarantees (monotonic time, Complete only after Allocate).

// refLine is one entry of the reference model: per set, an ordered
// slice with the most recently stamped line last. That ordering is
// exactly the cache's LRU-stamp ordering, independent of way indices.
type refLine struct {
	blk   mem.BlockAddr
	dirty bool
}

type refCache struct {
	sets [][]refLine
	ways int
}

func newRefCache(nsets, ways int) *refCache {
	return &refCache{sets: make([][]refLine, nsets), ways: ways}
}

func (r *refCache) set(blk mem.BlockAddr) int { return int(uint64(blk) % uint64(len(r.sets))) }

func (r *refCache) find(blk mem.BlockAddr) (setIdx, pos int) {
	si := r.set(blk)
	for i, ln := range r.sets[si] {
		if ln.blk == blk {
			return si, i
		}
	}
	return si, -1
}

// lookup mirrors Cache.Lookup: hit moves to MRU and may dirty; miss
// changes nothing.
func (r *refCache) lookup(blk mem.BlockAddr, write bool) bool {
	si, i := r.find(blk)
	if i < 0 {
		return false
	}
	ln := r.sets[si][i]
	ln.dirty = ln.dirty || write
	r.sets[si] = append(append(r.sets[si][:i], r.sets[si][i+1:]...), ln)
	return true
}

// fill mirrors Cache.Fill: a refill only re-dirties; otherwise insert
// at MRU, evicting the LRU line of a full set.
func (r *refCache) fill(blk mem.BlockAddr, write bool) (victim refLine, evicted bool) {
	si, i := r.find(blk)
	if i >= 0 {
		r.sets[si][i].dirty = r.sets[si][i].dirty || write
		return refLine{}, false
	}
	if len(r.sets[si]) >= r.ways {
		victim, evicted = r.sets[si][0], true
		r.sets[si] = r.sets[si][1:]
	}
	r.sets[si] = append(r.sets[si], refLine{blk: blk, dirty: write})
	return victim, evicted
}

func (r *refCache) invalidate(blk mem.BlockAddr) (present, dirty bool) {
	si, i := r.find(blk)
	if i < 0 {
		return false, false
	}
	present, dirty = true, r.sets[si][i].dirty
	r.sets[si] = append(r.sets[si][:i], r.sets[si][i+1:]...)
	return present, dirty
}

func (r *refCache) probe(blk mem.BlockAddr) (present, dirty bool) {
	si, i := r.find(blk)
	if i < 0 {
		return false, false
	}
	return true, r.sets[si][i].dirty
}

func (r *refCache) occupancy() int {
	n := 0
	for _, s := range r.sets {
		n += len(s)
	}
	return n
}

// FuzzCacheVsReference drives a small LRU cache (4 sets x 2 ways, 32
// competing blocks) and the reference model with the same op stream and
// requires identical hit/miss outcomes, victims, dirtiness and
// occupancy at every step.
func FuzzCacheVsReference(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x21, 0x02, 0x42, 0x03, 0x63, 0x04})
	f.Add([]byte("\x02\x01\x02\x09\x02\x11\x02\x19\x00\x01\x04\x09\x03\x01\x02\x01"))
	f.Add([]byte{0x01, 0x05, 0x02, 0x05, 0x04, 0x05, 0x03, 0x05, 0x02, 0x0d, 0x02, 0x15, 0x02, 0x1d, 0x00, 0x05})
	f.Fuzz(func(t *testing.T, data []byte) {
		const nsets, ways, nblocks = 4, 2, 32
		c := New(Config{Name: "F", SizeBytes: nsets * ways * mem.BlockSize, Ways: ways, Latency: 2})
		ref := newRefCache(nsets, ways)
		now := int64(0)
		for i := 0; i+1 < len(data); i += 2 {
			op := data[i] % 5
			blk := mem.BlockAddr(data[i+1] % nblocks)
			addr := blk.Addr()
			now++
			switch op {
			case 0, 1: // lookup read / write
				write := op == 1
				res := c.Lookup(blk, addr, 8, write, false, now)
				if want := ref.lookup(blk, write); res.Hit != want {
					t.Fatalf("op %d: Lookup(%d, write=%v) hit=%v, reference says %v", i, blk, write, res.Hit, want)
				}
				if res.Hit && res.ReadyAt < now+c.Latency() {
					t.Fatalf("op %d: hit ready at %d, before now+latency %d", i, res.ReadyAt, now+c.Latency())
				}
			case 2, 3: // fill clean / write-allocate
				write := op == 3
				v := c.Fill(blk, addr, 8, write, false, now)
				want, evicted := ref.fill(blk, write)
				if v.Valid != evicted {
					t.Fatalf("op %d: Fill(%d) evicted=%v, reference says %v", i, blk, v.Valid, evicted)
				}
				if evicted && (v.Blk != want.blk || v.Dirty != want.dirty) {
					t.Fatalf("op %d: Fill(%d) victim {%d dirty=%v}, reference says {%d dirty=%v}",
						i, blk, v.Blk, v.Dirty, want.blk, want.dirty)
				}
			case 4:
				p, d := c.Invalidate(blk)
				wp, wd := ref.invalidate(blk)
				if p != wp || d != wd {
					t.Fatalf("op %d: Invalidate(%d) = (%v,%v), reference says (%v,%v)", i, blk, p, d, wp, wd)
				}
			}
			if got, want := c.Occupancy(), ref.occupancy(); got != want {
				t.Fatalf("op %d: occupancy %d, reference says %d", i, got, want)
			}
		}
		// Final full-state comparison through the stat-free probes.
		for b := mem.BlockAddr(0); b < nblocks; b++ {
			p, d := c.ProbeDirty(b)
			wp, wd := ref.probe(b)
			if p != wp || d != wd {
				t.Fatalf("final state: block %d = (%v,%v), reference says (%v,%v)", b, p, d, wp, wd)
			}
		}
	})
}

// FuzzMSHR drives an MSHR file and a naive map-based mirror with the
// same legal op stream (monotonic time, Complete only while pending)
// and requires identical allocate-stall times, merge outcomes and
// occupancy. Len must never exceed Capacity.
func FuzzMSHR(f *testing.F) {
	f.Add([]byte{0x01, 0x12, 0x23, 0x01, 0x45, 0x02, 0x13, 0x24})
	f.Add([]byte("\x01\x01\x01\x11\x01\x21\x01\x31\x02\x01\x03\x11"))
	f.Fuzz(func(t *testing.T, data []byte) {
		const capacity = 2
		m := NewMSHR(capacity)
		ref := map[mem.BlockAddr]int64{}
		now, lastReady := int64(0), int64(0)
		for i := 0; i+1 < len(data); i += 2 {
			op := data[i] % 4
			blk := mem.BlockAddr(data[i+1] % 8)
			now += int64(data[i]>>4) + 1
			switch op {
			case 0: // allocate + immediate complete, the simulator's pattern
				// Mirror Allocate: purge expired, then free the earliest
				// slot(s) while full, stalling to their fill times.
				for b, r := range ref {
					if r <= now {
						delete(ref, b)
					}
				}
				start := now
				for len(ref) >= capacity {
					earliest, victim := int64(math.MaxInt64), mem.BlockAddr(0)
					for b, r := range ref {
						if r < earliest {
							earliest, victim = r, b
						}
					}
					delete(ref, victim)
					if earliest > start {
						start = earliest
					}
				}
				got := m.Allocate(blk, now)
				if got != start {
					t.Fatalf("op %d: Allocate(%d, %d) = %d, reference says %d", i, blk, now, got, start)
				}
				// Strictly increasing fill times keep the earliest-victim
				// choice unambiguous (a ready-time tie would let the model
				// and the mirror free different blocks, both legally).
				ready := start + 10 + int64(data[i+1])
				if ready <= lastReady {
					ready = lastReady + 1
				}
				lastReady = ready
				m.Complete(blk, ready)
				ref[blk] = ready
			case 1: // merge lookup
				ready, inflight := m.Lookup(blk, now)
				wantReady, wantIn := ref[blk], false
				if r, ok := ref[blk]; ok && r > now {
					wantIn = true
				} else if ok {
					delete(ref, blk) // expired entries purge on lookup
					wantReady = 0
				}
				if inflight != wantIn || (inflight && ready != wantReady) {
					t.Fatalf("op %d: Lookup(%d, %d) = (%d,%v), reference says (%d,%v)",
						i, blk, now, ready, inflight, wantReady, wantIn)
				}
			case 2:
				m.Abandon(blk)
				delete(ref, blk)
			case 3:
				if m.Pending(blk) != (func() bool { _, ok := ref[blk]; return ok }()) {
					t.Fatalf("op %d: Pending(%d) disagrees with reference", i, blk)
				}
			}
			if m.Len() > capacity {
				t.Fatalf("op %d: MSHR holds %d entries, capacity %d", i, m.Len(), capacity)
			}
			if m.Len() != len(ref) {
				t.Fatalf("op %d: MSHR Len %d, reference says %d", i, m.Len(), len(ref))
			}
		}
	})
}
