package cache

import (
	"encoding/binary"
	"fmt"

	"graphmem/internal/mem"
)

// mshrEntry is one outstanding miss: the block and its fill-ready time.
type mshrEntry struct {
	blk   mem.BlockAddr
	ready int64
}

// MSHR models a cache's Miss Status Holding Registers with the two
// effects that matter for timing: (i) a demand access to a block whose
// miss is already outstanding merges into it and completes when the
// fill does; (ii) when all registers are busy, a new miss stalls until
// the earliest outstanding fill completes.
//
// The register file is a small fixed-capacity array scanned linearly:
// capacities are 10-64 entries (Table I), so a contiguous scan beats a
// map by a wide margin on the per-record hot path and allocates
// nothing after construction. Ready-time ties on eviction are broken
// by insertion order (oldest allocation first), which is deterministic
// run-to-run.
type MSHR struct {
	cap     int
	entries []mshrEntry
	// tap, when non-nil, receives allocation/stall telemetry for the
	// flight recorder; level identifies the owning cache. Both are set
	// by Cache.SetTap for the measurement window only, so the disabled
	// cost is one interface nil-check per Allocate.
	tap   mem.Tap
	level mem.ServedBy
}

// NewMSHR creates an MSHR file with capacity slots.
func NewMSHR(capacity int) *MSHR {
	if capacity <= 0 {
		panic("cache: MSHR capacity must be positive")
	}
	return &MSHR{cap: capacity, entries: make([]mshrEntry, 0, capacity)}
}

// Capacity returns the number of registers.
func (m *MSHR) Capacity() int { return m.cap }

// SetTap attaches (or, with a nil tap, detaches) the flight-recorder
// hook, tagging its events with the owning cache's serving level.
func (m *MSHR) SetTap(t mem.Tap, level mem.ServedBy) {
	m.tap = t
	m.level = level
}

// InFlight counts entries whose fills are still outstanding at time
// now. Unlike Outstanding it never mutates state, so the occupancy
// sampler can call it at any timestamp without perturbing the run.
func (m *MSHR) InFlight(now int64) int {
	n := 0
	for i := range m.entries {
		if m.entries[i].ready > now {
			n++
		}
	}
	return n
}

// Len returns the number of allocated entries, including ones whose
// fills have completed but have not been purged yet. Unlike Outstanding
// it never mutates state, so invariant sweeps can call it freely;
// Allocate guarantees Len never exceeds Capacity.
func (m *MSHR) Len() int { return len(m.entries) }

// find returns the index of blk's entry, -1 when absent.
func (m *MSHR) find(blk mem.BlockAddr) int {
	for i := range m.entries {
		if m.entries[i].blk == blk {
			return i
		}
	}
	return -1
}

// remove drops the entry at index i, preserving the insertion order of
// the rest (the deterministic tie-break order).
func (m *MSHR) remove(i int) {
	m.entries = append(m.entries[:i], m.entries[i+1:]...)
}

// Pending reports whether blk currently occupies a register, without
// the purge side effect of Lookup.
func (m *MSHR) Pending(blk mem.BlockAddr) bool {
	return m.find(blk) >= 0
}

// purge drops entries whose fills completed at or before now.
func (m *MSHR) purge(now int64) {
	out := m.entries[:0]
	for _, e := range m.entries {
		if e.ready > now {
			out = append(out, e)
		}
	}
	m.entries = out
}

// Outstanding returns the number of in-flight misses at time now.
func (m *MSHR) Outstanding(now int64) int {
	m.purge(now)
	return len(m.entries)
}

// Lookup reports whether blk has an outstanding miss at time now and,
// if so, when its fill completes (merge case).
func (m *MSHR) Lookup(blk mem.BlockAddr, now int64) (ready int64, inflight bool) {
	i := m.find(blk)
	if i < 0 {
		return 0, false
	}
	ready = m.entries[i].ready
	if ready <= now {
		m.remove(i)
		return 0, false
	}
	return ready, true
}

// Allocate reserves a register for a miss on blk issued at time now,
// returning the (possibly delayed) time at which the miss can actually
// be sent downstream: if every register is busy the caller stalls until
// the earliest outstanding fill frees one.
func (m *MSHR) Allocate(blk mem.BlockAddr, now int64) int64 {
	m.purge(now)
	start := now
	for len(m.entries) >= m.cap {
		victim, earliest := 0, m.entries[0].ready
		for i := 1; i < len(m.entries); i++ {
			if m.entries[i].ready < earliest {
				earliest = m.entries[i].ready
				victim = i
			}
		}
		m.remove(victim)
		if earliest > start {
			start = earliest
		}
	}
	if m.tap != nil {
		m.tap.MSHRAlloc(m.level, len(m.entries))
		if start > now {
			m.tap.MSHRStall(m.level, start-now)
		}
	}
	// The entry's ready time is set by Complete once the downstream
	// latency is known; reserve with a placeholder in the far future so
	// concurrent allocations see the slot as busy.
	m.entries = append(m.entries, mshrEntry{blk: blk, ready: 1<<63 - 1})
	return start
}

// Complete records the fill time of a previously allocated miss.
func (m *MSHR) Complete(blk mem.BlockAddr, ready int64) {
	if i := m.find(blk); i >= 0 {
		m.entries[i].ready = ready
		return
	}
	m.entries = append(m.entries, mshrEntry{blk: blk, ready: ready})
}

// Abandon releases a reservation without a fill (e.g. the request was
// satisfied by a remote cache transfer handled elsewhere).
func (m *MSHR) Abandon(blk mem.BlockAddr) {
	if i := m.find(blk); i >= 0 {
		m.remove(i)
	}
}

// encodeState appends the register file's contents (entry count, then
// each block and ready time). After a pure functional warm-up the file
// is empty — warming never allocates registers — but the checkpoint
// serializes it anyway so resume identity holds by construction.
func (m *MSHR) encodeState(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.entries)))
	for i := range m.entries {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(m.entries[i].blk))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(m.entries[i].ready))
	}
	return buf
}

// decodeState restores state written by encodeState.
func (m *MSHR) decodeState(data []byte, owner string) ([]byte, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("cache %s: MSHR checkpoint truncated", owner)
	}
	n := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if n > m.cap || len(data) < 16*n {
		return nil, fmt.Errorf("cache %s: MSHR checkpoint truncated or over capacity", owner)
	}
	m.entries = m.entries[:0]
	for i := 0; i < n; i++ {
		m.entries = append(m.entries, mshrEntry{
			blk:   mem.BlockAddr(binary.LittleEndian.Uint64(data)),
			ready: int64(binary.LittleEndian.Uint64(data[8:])),
		})
		data = data[16:]
	}
	return data, nil
}
