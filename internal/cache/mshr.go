package cache

import (
	"graphmem/internal/mem"
)

// MSHR models a cache's Miss Status Holding Registers with the two
// effects that matter for timing: (i) a demand access to a block whose
// miss is already outstanding merges into it and completes when the
// fill does; (ii) when all registers are busy, a new miss stalls until
// the earliest outstanding fill completes.
type MSHR struct {
	cap     int
	entries map[mem.BlockAddr]int64 // block -> fill-ready time
}

// NewMSHR creates an MSHR file with capacity slots.
func NewMSHR(capacity int) *MSHR {
	if capacity <= 0 {
		panic("cache: MSHR capacity must be positive")
	}
	return &MSHR{cap: capacity, entries: make(map[mem.BlockAddr]int64, capacity+1)}
}

// Capacity returns the number of registers.
func (m *MSHR) Capacity() int { return m.cap }

// Len returns the number of allocated entries, including ones whose
// fills have completed but have not been purged yet. Unlike Outstanding
// it never mutates state, so invariant sweeps can call it freely;
// Allocate guarantees Len never exceeds Capacity.
func (m *MSHR) Len() int { return len(m.entries) }

// Pending reports whether blk currently occupies a register, without
// the purge side effect of Lookup.
func (m *MSHR) Pending(blk mem.BlockAddr) bool {
	_, ok := m.entries[blk]
	return ok
}

// purge drops entries whose fills completed at or before now.
func (m *MSHR) purge(now int64) {
	for blk, ready := range m.entries {
		if ready <= now {
			delete(m.entries, blk)
		}
	}
}

// Outstanding returns the number of in-flight misses at time now.
func (m *MSHR) Outstanding(now int64) int {
	m.purge(now)
	return len(m.entries)
}

// Lookup reports whether blk has an outstanding miss at time now and,
// if so, when its fill completes (merge case).
func (m *MSHR) Lookup(blk mem.BlockAddr, now int64) (ready int64, inflight bool) {
	ready, inflight = m.entries[blk]
	if inflight && ready <= now {
		delete(m.entries, blk)
		return 0, false
	}
	return ready, inflight
}

// Allocate reserves a register for a miss on blk issued at time now,
// returning the (possibly delayed) time at which the miss can actually
// be sent downstream: if every register is busy the caller stalls until
// the earliest outstanding fill frees one.
func (m *MSHR) Allocate(blk mem.BlockAddr, now int64) int64 {
	m.purge(now)
	start := now
	for len(m.entries) >= m.cap {
		earliest := int64(1<<63 - 1)
		var victim mem.BlockAddr
		for b, ready := range m.entries {
			if ready < earliest {
				earliest = ready
				victim = b
			}
		}
		delete(m.entries, victim)
		if earliest > start {
			start = earliest
		}
	}
	// The entry's ready time is set by Complete once the downstream
	// latency is known; reserve with a placeholder in the far future so
	// concurrent allocations see the slot as busy.
	m.entries[blk] = 1<<63 - 1
	return start
}

// Complete records the fill time of a previously allocated miss.
func (m *MSHR) Complete(blk mem.BlockAddr, ready int64) {
	m.entries[blk] = ready
}

// Abandon releases a reservation without a fill (e.g. the request was
// satisfied by a remote cache transfer handled elsewhere).
func (m *MSHR) Abandon(blk mem.BlockAddr) {
	delete(m.entries, blk)
}
