package cache

import (
	"graphmem/internal/mem"
)

// Policy decides victims on fills. Implementations must pick among the
// candidate ways passed to Victim (the line-organized portion of the
// set; distillation WOC ways are managed separately).
type Policy interface {
	// Victim returns the way index to evict. All candidate lines are
	// valid when called.
	Victim(c *Cache, blk mem.BlockAddr, set []Line) int
	// OnHit is informed of a demand hit on way w.
	OnHit(c *Cache, blk mem.BlockAddr, set []Line, w int)
	// OnFill is informed after a fill into way w.
	OnFill(c *Cache, blk mem.BlockAddr, set []Line, w int)
}

// LRU is least-recently-used replacement (the Table I default for every
// cache level).
type LRU struct{}

// Victim implements Policy.
func (LRU) Victim(c *Cache, blk mem.BlockAddr, set []Line) int {
	way, best := 0, int64(1<<63-1)
	for w := range set {
		if s := lruOf(&set[w]); s < best {
			best = s
			way = w
		}
	}
	return way
}

// OnHit implements Policy (recency is maintained by the cache itself).
func (LRU) OnHit(*Cache, mem.BlockAddr, []Line, int) {}

// OnFill implements Policy.
func (LRU) OnFill(*Cache, mem.BlockAddr, []Line, int) {}

// NextUseOracle supplies the T-OPT policy with quantized next-reference
// ranks. Implementations derive them from the graph transpose (see
// internal/kernels.TransposeOracle): 0 means "referenced again almost
// immediately", RankMax means "no known future reference".
type NextUseOracle interface {
	// Rank returns the re-reference rank of blk at the current point of
	// the traversal.
	Rank(blk mem.BlockAddr) uint8
}

// RankMax is the largest (furthest-future) T-OPT rank.
const RankMax uint8 = 255

// RankDefault is the rank T-OPT assigns to blocks outside the graph's
// irregular property regions, giving them middle priority as P-OPT does
// for non-matrix data.
const RankDefault uint8 = 128

// TOPT is the Transpose-based Optimal Cache Replacement policy of
// Balaji et al. (HPCA 2021), the paper's main prior-work comparison: on
// eviction it consults a transpose-derived oracle for the next
// reference of each candidate's block and evicts the furthest-future
// one. Blocks without oracle coverage get RankDefault; ties fall back
// to LRU order.
type TOPT struct {
	Oracle NextUseOracle
}

// Victim implements Policy.
func (t *TOPT) Victim(c *Cache, blk mem.BlockAddr, set []Line) int {
	way := 0
	bestRank := -1
	bestLRU := int64(1<<63 - 1)
	for w := range set {
		r := int(t.Oracle.Rank(set[w].Blk))
		s := lruOf(&set[w])
		if r > bestRank || (r == bestRank && s < bestLRU) {
			bestRank = r
			bestLRU = s
			way = w
		}
	}
	return way
}

// OnHit implements Policy.
func (t *TOPT) OnHit(*Cache, mem.BlockAddr, []Line, int) {}

// OnFill implements Policy.
func (t *TOPT) OnFill(*Cache, mem.BlockAddr, []Line, int) {}

// SRRIP is Static Re-Reference Interval Prediction (Jaleel et al.,
// ISCA 2010), the general-purpose replacement family the paper's
// related work cites as struggling with graph workloads: 2-bit RRPVs,
// long-re-reference insertion (RRPV=2), promotion to 0 on hit, victim =
// first line with RRPV=3 (aging everyone until one exists).
type SRRIP struct{}

// rrpvMax is the distant-future value for 2-bit RRPVs.
const rrpvMax = 3

// Victim implements Policy.
func (SRRIP) Victim(c *Cache, blk mem.BlockAddr, set []Line) int {
	for {
		for w := range set {
			if set[w].RRPV >= rrpvMax {
				return w
			}
		}
		for w := range set {
			set[w].RRPV++
		}
	}
}

// OnHit implements Policy: near-immediate re-reference prediction.
func (SRRIP) OnHit(c *Cache, blk mem.BlockAddr, set []Line, w int) {
	set[w].RRPV = 0
}

// OnFill implements Policy: insert with a long re-reference interval.
func (SRRIP) OnFill(c *Cache, blk mem.BlockAddr, set []Line, w int) {
	set[w].RRPV = rrpvMax - 1
}
