// Functional-warming fast paths and the µarch-state codec used by the
// statistical sampling engine (internal/sample, ROADMAP item 2).
//
// The warm methods are deliberate duplicates of Lookup/Fill minus
// everything timing- or statistics-related: they perform exactly the
// tag, recency, used-word, dirty-bit, and replacement-policy
// transitions a detailed access would, but bump no counters, consult no
// MSHRs, and carry no timestamps. Keeping them separate (rather than
// threading a warm flag through the hot path) leaves the detailed path
// branch-for-branch identical to today, which the byte-identity
// contract of sampling-off runs depends on.
package cache

import (
	"encoding/binary"
	"fmt"

	"graphmem/internal/mem"
)

// WarmLookup performs a stat-free, timing-free demand lookup: recency,
// used-word and dirty state advance exactly as in Lookup, but no
// hit/miss counters move. It reports whether the block hit so the
// caller can walk the warm access down the hierarchy on a miss.
func (c *Cache) WarmLookup(blk mem.BlockAddr, addr mem.Addr, size uint8, write bool) bool {
	set := c.set(c.setIndex(blk))
	for w := range set {
		ln := &set[w]
		if !ln.Valid || ln.Blk != blk {
			continue
		}
		wm := wordMask(addr, size)
		if ln.WOC {
			if ln.Used&wm != wm {
				continue
			}
		}
		c.lruClock++
		ln.lru = c.lruClock
		ln.Used |= wm
		if write {
			ln.Dirty = true
		}
		c.policy.OnHit(c, blk, set, w)
		return true
	}
	return false
}

// WarmFill performs a stat-free fill: identical victim selection,
// distillation insert and policy update to Fill, but no eviction or
// writeback counters and a zero fill-completion time (functional
// warming never advances the clock). The victim is returned so the
// caller can propagate warm writebacks and directory transitions.
func (c *Cache) WarmFill(blk mem.BlockAddr, addr mem.Addr, size uint8, write bool) Victim {
	si := c.setIndex(blk)
	set := c.set(si)
	for w := range set {
		if set[w].Valid && set[w].Blk == blk && !set[w].WOC {
			set[w].ReadyAt = 0
			if write {
				set[w].Dirty = true
			}
			return Victim{}
		}
	}
	lastLOC := len(set)
	if c.cfg.Distill {
		lastLOC = len(set) - c.cfg.DistillWOCWays
	}
	way := -1
	for w := 0; w < lastLOC; w++ {
		if !set[w].Valid {
			way = w
			break
		}
	}
	var v Victim
	if way < 0 {
		way = c.policy.Victim(c, blk, set[:lastLOC])
		ln := &set[way]
		v = Victim{Valid: true, Blk: ln.Blk, Dirty: ln.Dirty, Used: ln.Used, Ver: ln.Ver}
		ln.Valid = false
		if c.cfg.Distill {
			c.distillInsert(si, v)
		}
	}
	c.lruClock++
	ln := &set[way]
	*ln = Line{
		Blk:   blk,
		Valid: true,
		Dirty: write,
		Used:  wordMask(addr, size),
		lru:   c.lruClock,
	}
	c.policy.OnFill(c, blk, set[:lastLOC], way)
	return v
}

// lineBytes is the serialized size of one Line: block address, packed
// flags, fill time, used-word mask, RRPV, checker version, LRU stamp.
const lineBytes = 8 + 1 + 8 + 2 + 1 + 8 + 8

// EncodeState appends the cache's complete replaceable state — the LRU
// clock and every line's fields, including ones that are provably zero
// after a pure functional warm-up (ReadyAt, Prefetched) — to buf.
// Serializing everything rather than the warm-reachable subset is what
// makes the checkpoint round-trip byte-identical by construction
// instead of by argument.
func (c *Cache) EncodeState(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.lines)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.lruClock))
	for i := range c.lines {
		ln := &c.lines[i]
		buf = binary.LittleEndian.AppendUint64(buf, uint64(ln.Blk))
		var flags byte
		if ln.Valid {
			flags |= 1
		}
		if ln.Dirty {
			flags |= 2
		}
		if ln.Prefetched {
			flags |= 4
		}
		if ln.WOC {
			flags |= 8
		}
		buf = append(buf, flags)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(ln.ReadyAt))
		buf = binary.LittleEndian.AppendUint16(buf, ln.Used)
		buf = append(buf, ln.RRPV)
		buf = binary.LittleEndian.AppendUint64(buf, ln.Ver)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(ln.lru))
	}
	if c.mshr != nil {
		buf = c.mshr.encodeState(buf)
	}
	return buf
}

// DecodeState restores state written by EncodeState, rejecting a
// geometry mismatch, and returns the remaining bytes.
func (c *Cache) DecodeState(data []byte) ([]byte, error) {
	if len(data) < 4+8 {
		return nil, fmt.Errorf("cache %s: checkpoint truncated", c.cfg.Name)
	}
	n := int(binary.LittleEndian.Uint32(data))
	if n != len(c.lines) {
		return nil, fmt.Errorf("cache %s: checkpoint geometry mismatch: %d lines, have %d", c.cfg.Name, n, len(c.lines))
	}
	c.lruClock = int64(binary.LittleEndian.Uint64(data[4:]))
	data = data[12:]
	if len(data) < n*lineBytes {
		return nil, fmt.Errorf("cache %s: checkpoint truncated", c.cfg.Name)
	}
	for i := range c.lines {
		ln := &c.lines[i]
		ln.Blk = mem.BlockAddr(binary.LittleEndian.Uint64(data))
		flags := data[8]
		ln.Valid = flags&1 != 0
		ln.Dirty = flags&2 != 0
		ln.Prefetched = flags&4 != 0
		ln.WOC = flags&8 != 0
		ln.ReadyAt = int64(binary.LittleEndian.Uint64(data[9:]))
		ln.Used = binary.LittleEndian.Uint16(data[17:])
		ln.RRPV = data[19]
		ln.Ver = binary.LittleEndian.Uint64(data[20:])
		ln.lru = int64(binary.LittleEndian.Uint64(data[28:]))
		data = data[lineBytes:]
	}
	if c.mshr != nil {
		return c.mshr.decodeState(data, c.cfg.Name)
	}
	return data, nil
}
