// Package check is the differential correctness harness for the timing
// model: an architectural oracle that shadows every cache block with a
// version number, plus structural invariant checks over the caches and
// the SDCDir (see invariants.go).
//
// The simulator is address-only — no data values flow through it — so
// the oracle tracks data identity instead of data bytes: every store
// the model absorbs bumps the block's architectural version, every copy
// a cache holds is stamped with the version it was filled with, and
// every load is checked to be served from a copy stamped with the
// current architectural version. A stale-data bug anywhere in the SDC
// bypass, the SDCDir invalidation path or the hierarchy write-back
// chain therefore fails loudly, with core/PC/block provenance, the
// first time the stale copy is consumed.
//
// Version semantics:
//
//   - Versions are 1-based; version 0 is the "unknown" sentinel. A load
//     served at an unknown version is skipped (and counted), never
//     flagged — unknowns only arise on MSHR-merge fill paths where the
//     model itself does not know which fill the data came from.
//   - The shadow bumps only for stores the model actually absorbs
//     somewhere (a cache line dirtied, or DRAM written through). Store
//     misses that merge into an in-flight MSHR fill are dropped by the
//     model and do not bump the shadow, keeping the oracle free of
//     false positives against the model's own semantics.
//   - A separate DRAM version map tracks what main memory holds, so
//     write-backs and DRAM fills round-trip versions exactly.
//
// The Checker mutates nothing in the simulated machine: all its reads
// go through stat-free accessors (cache.VerOf/Probe, coherence.Probe,
// MSHR.Len), so a checked run produces bit-identical counters to an
// unchecked one.
package check

import (
	"fmt"

	"graphmem/internal/mem"
)

// Level selects how much checking a run performs.
type Level int

// Check levels.
const (
	// Off disables all checking: the simulator pays one nil-pointer
	// compare per hook site.
	Off Level = iota
	// OracleOnly runs the architectural load/store oracle.
	OracleOnly
	// Full adds the periodic cache + SDCDir invariant sweeps.
	Full
)

// String implements fmt.Stringer.
func (l Level) String() string {
	switch l {
	case Off:
		return "off"
	case OracleOnly:
		return "oracle"
	case Full:
		return "full"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// ParseLevel parses "off", "oracle" or "full".
func ParseLevel(s string) (Level, error) {
	switch s {
	case "off", "":
		return Off, nil
	case "oracle":
		return OracleOnly, nil
	case "full":
		return Full, nil
	default:
		return Off, fmt.Errorf("check: unknown level %q (off|oracle|full)", s)
	}
}

// Violation is one detected correctness failure.
type Violation struct {
	// Kind classifies the failure ("stale-load", "invariant").
	Kind string
	// Core and PC locate the access that exposed it (-1/0 for
	// invariant sweeps, which are not tied to one access).
	Core int
	PC   uint64
	// Blk is the affected cache block.
	Blk mem.BlockAddr
	// Msg is the human-readable detail.
	Msg string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("%s core=%d pc=%#x blk=%#x: %s", v.Kind, v.Core, v.PC, uint64(v.Blk), v.Msg)
}

// maxDetails bounds how many violations keep full detail; the total
// count keeps running regardless.
const maxDetails = 32

// Checker is the per-run oracle state. It is not safe for concurrent
// use; the simulator is single-threaded per system.
type Checker struct {
	level Level
	// shadow holds the architectural version of every stored-to block;
	// absent means version 1 (never stored).
	shadow map[mem.BlockAddr]uint64
	// dram holds the version main memory has for every written-back
	// block; absent means version 1.
	dram map[mem.BlockAddr]uint64

	// Counters.
	LoadsChecked  int64
	StoresTracked int64
	Unknowns      int64
	Sweeps        int64

	violations int64
	details    []Violation

	// Invariant-sweep scratch state (invariants.go): last observed
	// recency clock per cache, and a reusable per-sweep block set.
	lastClock map[string]int64
	seen      map[mem.BlockAddr]struct{}
}

// New creates a checker for the given level; nil-safe helpers in the
// simulator skip every hook when the level is Off (no Checker exists).
func New(level Level) *Checker {
	return &Checker{
		level:  level,
		shadow: make(map[mem.BlockAddr]uint64),
		dram:   make(map[mem.BlockAddr]uint64),
	}
}

// Level returns the configured check level.
func (k *Checker) Level() Level { return k.level }

// Shadow returns the architectural version of blk (default 1).
func (k *Checker) Shadow(blk mem.BlockAddr) uint64 {
	if v, ok := k.shadow[blk]; ok {
		return v
	}
	return 1
}

// StoreAbsorbed records that the model absorbed a store to blk and
// returns the new architectural version the absorbing copy must be
// stamped with.
func (k *Checker) StoreAbsorbed(blk mem.BlockAddr) uint64 {
	v := k.Shadow(blk) + 1
	k.shadow[blk] = v
	k.StoresTracked++
	return v
}

// DRAMWrite records a write-back of blk at version ver reaching DRAM
// (ver 0 marks DRAM's copy unknown).
func (k *Checker) DRAMWrite(blk mem.BlockAddr, ver uint64) {
	k.dram[blk] = ver
}

// DRAMRead returns the version a DRAM fill of blk delivers (default 1).
func (k *Checker) DRAMRead(blk mem.BlockAddr) uint64 {
	if v, ok := k.dram[blk]; ok {
		return v
	}
	return 1
}

// CheckLoad verifies that a demand load of blk was served from a copy
// at the current architectural version. src names the serving level for
// provenance; ver 0 (unknown) is skipped and counted.
func (k *Checker) CheckLoad(core int, pc uint64, blk mem.BlockAddr, src mem.ServedBy, ver uint64) {
	if ver == 0 {
		k.Unknowns++
		return
	}
	k.LoadsChecked++
	if want := k.Shadow(blk); ver != want {
		k.Violate(Violation{
			Kind: "stale-load", Core: core, PC: pc, Blk: blk,
			Msg: fmt.Sprintf("served v%d from %v, architectural version is v%d", ver, src, want),
		})
	}
}

// Violate records a violation, keeping detail for the first maxDetails.
func (k *Checker) Violate(v Violation) {
	k.violations++
	if len(k.details) < maxDetails {
		k.details = append(k.details, v)
	}
}

// Violations returns the total violation count.
func (k *Checker) Violations() int64 { return k.violations }

// Details returns the retained violation details (capped).
func (k *Checker) Details() []Violation { return k.details }

// Summary is the exportable outcome of a checked run; the zero value
// means checking was off.
type Summary struct {
	// Level is the check level the run used ("off" when unchecked).
	Level string `json:"level,omitempty"`
	// LoadsChecked / StoresTracked / UnknownVersions / Sweeps count
	// oracle activity.
	LoadsChecked    int64 `json:"loads_checked,omitempty"`
	StoresTracked   int64 `json:"stores_tracked,omitempty"`
	UnknownVersions int64 `json:"unknown_versions,omitempty"`
	Sweeps          int64 `json:"invariant_sweeps,omitempty"`
	// Violations is the total count; Details keeps the first few.
	Violations int64       `json:"violations"`
	Details    []Violation `json:"details,omitempty"`
}

// Merge folds another checker's outcome into this one — the bound–weave
// engine shards the shadow oracle per core (each core's disjoint address
// window has a single writer) and merges the shard summaries, in core
// order, into the system checker's. The Level of the receiver wins
// (shards always run at the same level); Details concatenate up to the
// usual maxDetails cap so the merged summary looks like a single run's.
func (s Summary) Merge(o Summary) Summary {
	if s.Level == "" {
		s.Level = o.Level
	}
	s.LoadsChecked += o.LoadsChecked
	s.StoresTracked += o.StoresTracked
	s.UnknownVersions += o.UnknownVersions
	s.Sweeps += o.Sweeps
	s.Violations += o.Violations
	for _, d := range o.Details {
		if len(s.Details) >= maxDetails {
			break
		}
		s.Details = append(s.Details, d)
	}
	return s
}

// Summary exports the checker's outcome.
func (k *Checker) Summary() Summary {
	return Summary{
		Level:           k.level.String(),
		LoadsChecked:    k.LoadsChecked,
		StoresTracked:   k.StoresTracked,
		UnknownVersions: k.Unknowns,
		Sweeps:          k.Sweeps,
		Violations:      k.violations,
		Details:         k.details,
	}
}
