package check

import (
	"strings"
	"testing"

	"graphmem/internal/cache"
	"graphmem/internal/coherence"
	"graphmem/internal/mem"
)

func TestParseLevel(t *testing.T) {
	cases := []struct {
		in   string
		want Level
		err  bool
	}{
		{"off", Off, false},
		{"", Off, false},
		{"oracle", OracleOnly, false},
		{"full", Full, false},
		{"FULL", Off, true},
		{"bogus", Off, true},
	}
	for _, c := range cases {
		got, err := ParseLevel(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v, err=%v", c.in, got, err, c.want, c.err)
		}
	}
	for _, l := range []Level{Off, OracleOnly, Full} {
		back, err := ParseLevel(l.String())
		if err != nil || back != l {
			t.Errorf("round trip %v -> %q -> %v, %v", l, l.String(), back, err)
		}
	}
}

func TestOracleVersionFlow(t *testing.T) {
	k := New(Full)
	blk := mem.BlockAddr(42)

	if v := k.Shadow(blk); v != 1 {
		t.Fatalf("never-stored block at v%d, want v1", v)
	}
	// A load at the default version is clean.
	k.CheckLoad(0, 0x100, blk, mem.ServedDRAM, k.DRAMRead(blk))
	if k.Violations() != 0 {
		t.Fatalf("clean load flagged: %v", k.Details())
	}

	v2 := k.StoreAbsorbed(blk)
	if v2 != 2 || k.Shadow(blk) != 2 {
		t.Fatalf("store bumped to v%d (shadow v%d), want v2", v2, k.Shadow(blk))
	}

	// Serving the old version must be flagged, with provenance intact.
	k.CheckLoad(3, 0xdead, blk, mem.ServedLLC, 1)
	if k.Violations() != 1 {
		t.Fatalf("stale load not flagged")
	}
	d := k.Details()[0]
	if d.Kind != "stale-load" || d.Core != 3 || d.PC != 0xdead || d.Blk != blk {
		t.Fatalf("bad provenance: %+v", d)
	}
	if !strings.Contains(d.String(), "LLC") {
		t.Fatalf("detail lost the serving level: %s", d)
	}

	// Unknown versions are counted, never flagged.
	k.CheckLoad(0, 0, blk, mem.ServedL2, 0)
	if k.Unknowns != 1 || k.Violations() != 1 {
		t.Fatalf("unknown-version load mishandled: unknowns=%d violations=%d", k.Unknowns, k.Violations())
	}

	// DRAM round-trips versions exactly.
	k.DRAMWrite(blk, v2)
	if got := k.DRAMRead(blk); got != v2 {
		t.Fatalf("DRAM read v%d after write-back of v%d", got, v2)
	}
}

func TestDetailCap(t *testing.T) {
	k := New(OracleOnly)
	for i := 0; i < maxDetails*3; i++ {
		k.Violate(Violation{Kind: "stale-load", Blk: mem.BlockAddr(i)})
	}
	if k.Violations() != int64(maxDetails*3) {
		t.Fatalf("count = %d", k.Violations())
	}
	if len(k.Details()) != maxDetails {
		t.Fatalf("details = %d, want capped at %d", len(k.Details()), maxDetails)
	}
	s := k.Summary()
	if s.Violations != int64(maxDetails*3) || len(s.Details) != maxDetails {
		t.Fatalf("summary mismatch: %+v", s)
	}
}

func TestCacheInvariantsCleanAndClockRegression(t *testing.T) {
	k := New(Full)
	c := cache.New(cache.Config{Name: "T", SizeBytes: 4 << 10, Ways: 4, Latency: 1, MSHRs: 4})
	for i := 0; i < 100; i++ {
		blk := mem.BlockAddr(i)
		c.Fill(blk, blk.Addr(), 8, i%3 == 0, false, int64(i))
	}
	k.CheckCache("T", c)
	if k.Violations() != 0 {
		t.Fatalf("healthy cache flagged: %v", k.Details())
	}
	// A rewound clock (impossible in a healthy cache) must be flagged
	// on the next sweep via the remembered high-water mark.
	k.lastClock["T"] = c.Clock() + 1000
	k.CheckCache("T", c)
	if k.Violations() == 0 {
		t.Fatal("clock regression not flagged")
	}
}

func TestSDCDirInvariants(t *testing.T) {
	k := New(Full)
	dir := coherence.New(coherence.Config{EntriesPerCore: 16, Ways: 4, Cores: 2, Latency: 1}, nil)
	sdcCfg := cache.Config{Name: "SDC", SizeBytes: 8 << 10, Ways: 2, Latency: 1}
	sdcs := []*cache.Cache{cache.New(sdcCfg), cache.New(sdcCfg)}

	// Consistent state: both sides agree.
	blk := mem.BlockAddr(7)
	sdcs[0].Fill(blk, blk.Addr(), 8, false, false, 0)
	dir.AddSharer(blk, 0, false)
	k.CheckSDCDir(dir, sdcs, nil)
	if k.Violations() != 0 {
		t.Fatalf("consistent dir flagged: %v", k.Details())
	}

	// Presence bit without a copy.
	ghost := mem.BlockAddr(99)
	dir.AddSharer(ghost, 1, false)
	k.CheckSDCDir(dir, sdcs, nil)
	if k.Violations() == 0 {
		t.Fatal("ghost sharer bit not flagged")
	}
	dir.InvalidateAll(ghost)

	// Copy without a presence bit.
	before := k.Violations()
	orphan := mem.BlockAddr(123)
	sdcs[1].Fill(orphan, orphan.Addr(), 8, false, false, 0)
	k.CheckSDCDir(dir, sdcs, nil)
	if k.Violations() == before {
		t.Fatal("untracked SDC copy not flagged")
	}
	sdcs[1].Invalidate(orphan)

	// A dir-tracked block sitting in the hierarchy breaks exclusivity.
	before = k.Violations()
	k.CheckSDCDir(dir, sdcs, func(b mem.BlockAddr) bool { return b == blk })
	if k.Violations() == before {
		t.Fatal("exclusivity breach not flagged")
	}
}
