package check

import (
	"fmt"
	"math/bits"

	"graphmem/internal/cache"
	"graphmem/internal/coherence"
	"graphmem/internal/mem"
)

// Structural invariant checks, callable after any system tick in
// checked mode (Level Full). All reads go through stat-free accessors
// so sweeps never perturb the machine being checked.

// CheckCache validates one cache structure:
//
//   - at most one full (non-WOC) valid copy of any block (a WOC
//     fragment may legally coexist with a refetched full line under
//     line distillation);
//   - every line's recency stamp is bounded by the cache's clock, and
//     the clock itself never moves backwards between sweeps;
//   - the MSHR never holds more entries than it has registers.
//
// name must be unique per structure instance (it keys the clock
// monotonicity state and labels violations).
func (k *Checker) CheckCache(name string, c *cache.Cache) {
	clock := c.Clock()
	if k.lastClock == nil {
		k.lastClock = make(map[string]int64)
	}
	if prev, ok := k.lastClock[name]; ok && clock < prev {
		k.Violate(Violation{Kind: "invariant", Core: -1,
			Msg: fmt.Sprintf("%s: recency clock moved backwards (%d -> %d)", name, prev, clock)})
	}
	k.lastClock[name] = clock

	if k.seen == nil {
		k.seen = make(map[mem.BlockAddr]struct{})
	} else {
		clear(k.seen)
	}
	c.ForEachValid(func(ln *cache.Line) {
		if ln.Recency() > clock {
			k.Violate(Violation{Kind: "invariant", Core: -1, Blk: ln.Blk,
				Msg: fmt.Sprintf("%s: line recency %d ahead of clock %d", name, ln.Recency(), clock)})
		}
		if ln.WOC {
			return
		}
		if _, dup := k.seen[ln.Blk]; dup {
			k.Violate(Violation{Kind: "invariant", Core: -1, Blk: ln.Blk,
				Msg: fmt.Sprintf("%s: duplicate full copy of block", name)})
		}
		k.seen[ln.Blk] = struct{}{}
	})

	if m := c.MSHR(); m != nil && m.Len() > m.Capacity() {
		k.Violate(Violation{Kind: "invariant", Core: -1,
			Msg: fmt.Sprintf("%s: MSHR holds %d entries, capacity %d", name, m.Len(), m.Capacity())})
	}
}

// CheckSDCDir validates the SDC directory against the actual SDCs
// (Section III-C's "precise information" property) plus the SDC vs
// hierarchy exclusivity the move-semantics transfer paths maintain:
//
//   - presence bits point only at SDCs that really hold the block;
//   - every SDC-resident block is tracked with that core's bit set;
//   - a Modified entry has exactly one sharer (single writer);
//   - a directory-tracked block has no copy in the conventional
//     hierarchy (inHierarchy reports that; nil skips the check).
//
// sdcs is indexed by core id; nil entries mark cores without an SDC.
func (k *Checker) CheckSDCDir(dir *coherence.SDCDir, sdcs []*cache.Cache, inHierarchy func(mem.BlockAddr) bool) {
	dir.ForEach(func(blk mem.BlockAddr, sharers uint64, state coherence.State) {
		for i := range sdcs {
			if sharers&(1<<i) == 0 {
				continue
			}
			if sdcs[i] == nil || !sdcs[i].Probe(blk) {
				k.Violate(Violation{Kind: "invariant", Core: i, Blk: blk,
					Msg: "SDCDir sharer bit set but SDC does not hold the block"})
			}
		}
		if state == coherence.Modified && bits.OnesCount64(sharers) != 1 {
			k.Violate(Violation{Kind: "invariant", Core: -1, Blk: blk,
				Msg: fmt.Sprintf("Modified entry with %d sharers", bits.OnesCount64(sharers))})
		}
		if inHierarchy != nil && inHierarchy(blk) {
			k.Violate(Violation{Kind: "invariant", Core: -1, Blk: blk,
				Msg: "SDCDir-tracked block also present in the conventional hierarchy"})
		}
	})
	for i, sdc := range sdcs {
		if sdc == nil {
			continue
		}
		sdc.ForEachValid(func(ln *cache.Line) {
			if sharers, _, ok := dir.Probe(ln.Blk); !ok || sharers&(1<<i) == 0 {
				k.Violate(Violation{Kind: "invariant", Core: i, Blk: ln.Blk,
					Msg: "SDC holds block the SDCDir does not track for this core"})
			}
		})
	}
}
