// Package coherence implements the directory support the paper adds for
// the Side Data Caches (Section III-C): the SDCDir, a set-associative
// directory extension that precisely tracks which cores' SDCs hold each
// cache block, with MESI-style states. The conventional cache directory
// is modelled in internal/sim as an idealized full-map probe over the
// private caches (zero-space, LLC-latency), which is standard simulator
// practice; the SDCDir by contrast is modelled structurally because its
// limited capacity causes back-invalidations of SDC lines — an effect
// the paper's hardware budget (128 entries per core) makes real.
//
// Concurrency contract (bound–weave engine, internal/sim/boundweave.go):
// the SDCDir is shared-domain state. Under bound–weave it is read and
// mutated only during the serial weave replay (bwEvDirLookup/DirAdd/
// DirRemove/DirInvalAll events, in deterministic (t, core, seq) order);
// bound-phase goroutines never touch it. Capacity evictions observed
// mid-replay are deferred to the end of the weave by the engine so a
// later event in the same quantum cannot resurrect an evicted entry.
package coherence

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"graphmem/internal/mem"
)

// State is a MESI coherence state as tracked by the SDCDir.
type State uint8

// MESI states. The SDC never holds Exclusive silently upgraded lines in
// this model; writes set Modified directly.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Config sizes the SDCDir.
type Config struct {
	// EntriesPerCore is the per-core entry budget (Table I: 128).
	EntriesPerCore int
	// Ways is the associativity (Table I: 8).
	Ways int
	// Cores is the number of cores (one sharer bit each).
	Cores int
	// Latency is the lookup latency in cycles (Table I: 1).
	Latency int64
}

// DefaultConfig returns the Table I SDCDir configuration for n cores.
func DefaultConfig(n int) Config {
	return Config{EntriesPerCore: 128, Ways: 8, Cores: n, Latency: 1}
}

type dirEntry struct {
	blk     mem.BlockAddr
	state   State
	sharers uint64
	valid   bool
	lru     int64
}

// EvictFunc is called when a directory replacement pushes out an entry:
// every SDC in sharers must invalidate blk (writing back if dirty).
type EvictFunc func(blk mem.BlockAddr, sharers uint64)

// SDCDir tracks the contents of all SDCs. Entries live in one
// contiguous set-major slab (like internal/cache) so the per-probe way
// scan stays on adjacent host cache lines.
type SDCDir struct {
	cfg     Config
	entries []dirEntry // nsets x ways slab, set-major
	ways    int
	setMask uint64
	clock   int64
	onEvict EvictFunc
	// Stats.
	Lookups, Hits, Evictions int64
}

// New builds the SDCDir; onEvict must invalidate SDC copies when a
// directory entry is replaced (nil is allowed for tests that do not
// care).
func New(cfg Config, onEvict EvictFunc) *SDCDir {
	total := cfg.EntriesPerCore * cfg.Cores
	if cfg.Ways <= 0 || total%cfg.Ways != 0 {
		panic(fmt.Sprintf("coherence: bad SDCDir geometry %d entries %d ways", total, cfg.Ways))
	}
	nsets := total / cfg.Ways
	if nsets&(nsets-1) != 0 {
		panic("coherence: SDCDir set count must be a power of two")
	}
	if cfg.Cores > 64 {
		panic("coherence: sharer vector limited to 64 cores")
	}
	return &SDCDir{
		cfg:     cfg,
		entries: make([]dirEntry, nsets*cfg.Ways),
		ways:    cfg.Ways,
		setMask: uint64(nsets - 1),
		onEvict: onEvict,
	}
}

// set returns the ways holding blk's set.
func (d *SDCDir) set(blk mem.BlockAddr) []dirEntry {
	si := int(uint64(blk) & d.setMask)
	return d.entries[si*d.ways : (si+1)*d.ways]
}

// Config returns the directory configuration.
func (d *SDCDir) Config() Config { return d.cfg }

// Latency returns the lookup latency in cycles.
func (d *SDCDir) Latency() int64 { return d.cfg.Latency }

func (d *SDCDir) find(blk mem.BlockAddr) *dirEntry {
	set := d.set(blk)
	for w := range set {
		if set[w].valid && set[w].blk == blk {
			return &set[w]
		}
	}
	return nil
}

// Lookup returns the sharer bit vector and state for blk. ok is false
// when no SDC holds the block.
func (d *SDCDir) Lookup(blk mem.BlockAddr) (sharers uint64, state State, ok bool) {
	d.Lookups++
	if e := d.find(blk); e != nil {
		d.clock++
		e.lru = d.clock
		d.Hits++
		return e.sharers, e.state, true
	}
	return 0, Invalid, false
}

// Probe returns the sharer bit vector and state for blk without
// touching recency or the Lookups/Hits stats — the invariant checker's
// window into the directory (Lookup would perturb LRU state and break
// the checked-vs-unchecked counter identity).
func (d *SDCDir) Probe(blk mem.BlockAddr) (sharers uint64, state State, ok bool) {
	if e := d.find(blk); e != nil {
		return e.sharers, e.state, true
	}
	return 0, Invalid, false
}

// AddSharer records that core's SDC now holds blk. exclusiveWrite marks
// a store: the entry goes to Modified with core as the sole sharer (the
// caller must have invalidated other copies). Reads join the sharer set
// (Shared, or Exclusive when alone). A directory replacement may evict
// another entry, triggering onEvict.
func (d *SDCDir) AddSharer(blk mem.BlockAddr, coreID int, exclusiveWrite bool) {
	e := d.find(blk)
	if e == nil {
		e = d.allocate(blk)
	}
	d.clock++
	e.lru = d.clock
	if exclusiveWrite {
		e.sharers = 1 << coreID
		e.state = Modified
		return
	}
	e.sharers |= 1 << coreID
	if e.state == Invalid {
		e.state = Exclusive
	} else if e.state == Exclusive && bits.OnesCount64(e.sharers) > 1 {
		e.state = Shared
	} else if e.state == Modified && bits.OnesCount64(e.sharers) > 1 {
		// A read joined a modified line: it was downgraded by the
		// caller's writeback; track as Shared.
		e.state = Shared
	}
}

func (d *SDCDir) allocate(blk mem.BlockAddr) *dirEntry {
	set := d.set(blk)
	way, best := 0, int64(1<<63-1)
	for w := range set {
		if !set[w].valid {
			way = w
			best = -1
			break
		}
		if set[w].lru < best {
			best = set[w].lru
			way = w
		}
	}
	v := &set[way]
	if v.valid {
		d.Evictions++
		if d.onEvict != nil && v.sharers != 0 {
			d.onEvict(v.blk, v.sharers)
		}
	}
	*v = dirEntry{blk: blk, state: Invalid, valid: true}
	return v
}

// RemoveSharer records that core's SDC no longer holds blk (SDC
// eviction). The entry is freed when the last sharer leaves.
func (d *SDCDir) RemoveSharer(blk mem.BlockAddr, coreID int) {
	e := d.find(blk)
	if e == nil {
		return
	}
	e.sharers &^= 1 << coreID
	if e.sharers == 0 {
		e.valid = false
	}
}

// InvalidateAll removes blk from the directory entirely, returning the
// sharers that held it so the caller can invalidate their SDCs (write
// requests from the cache side use this).
func (d *SDCDir) InvalidateAll(blk mem.BlockAddr) (sharers uint64, state State) {
	e := d.find(blk)
	if e == nil {
		return 0, Invalid
	}
	sharers, state = e.sharers, e.state
	e.valid = false
	return sharers, state
}

// Occupancy returns the number of valid directory entries.
func (d *SDCDir) Occupancy() int {
	n := 0
	for i := range d.entries {
		if d.entries[i].valid {
			n++
		}
	}
	return n
}

// ForEach iterates valid entries; used by invariant tests.
func (d *SDCDir) ForEach(fn func(blk mem.BlockAddr, sharers uint64, state State)) {
	for i := range d.entries {
		if e := &d.entries[i]; e.valid {
			fn(e.blk, e.sharers, e.state)
		}
	}
}

// WarmLookup is Lookup without the Lookups/Hits counters: recency still
// advances on a hit so directory LRU state warms with full fidelity.
func (d *SDCDir) WarmLookup(blk mem.BlockAddr) (sharers uint64, state State, ok bool) {
	if e := d.find(blk); e != nil {
		d.clock++
		e.lru = d.clock
		return e.sharers, e.state, true
	}
	return 0, Invalid, false
}

// WarmAddSharer is AddSharer with a stat-free allocation: capacity
// replacements still fire onEvict (the back-invalidation side effect is
// real state the warm-up must reproduce) but do not count as
// Evictions. RemoveSharer and InvalidateAll touch no statistics and are
// shared between the detailed and warm paths as-is.
func (d *SDCDir) WarmAddSharer(blk mem.BlockAddr, coreID int, exclusiveWrite bool) {
	e := d.find(blk)
	if e == nil {
		e = d.warmAllocate(blk)
	}
	d.clock++
	e.lru = d.clock
	if exclusiveWrite {
		e.sharers = 1 << coreID
		e.state = Modified
		return
	}
	e.sharers |= 1 << coreID
	if e.state == Invalid {
		e.state = Exclusive
	} else if e.state == Exclusive && bits.OnesCount64(e.sharers) > 1 {
		e.state = Shared
	} else if e.state == Modified && bits.OnesCount64(e.sharers) > 1 {
		e.state = Shared
	}
}

func (d *SDCDir) warmAllocate(blk mem.BlockAddr) *dirEntry {
	set := d.set(blk)
	way, best := 0, int64(1<<63-1)
	for w := range set {
		if !set[w].valid {
			way = w
			best = -1
			break
		}
		if set[w].lru < best {
			best = set[w].lru
			way = w
		}
	}
	v := &set[way]
	if v.valid && d.onEvict != nil && v.sharers != 0 {
		d.onEvict(v.blk, v.sharers)
	}
	*v = dirEntry{blk: blk, state: Invalid, valid: true}
	return v
}

// EncodeState appends the directory's clock and every entry to buf.
func (d *SDCDir) EncodeState(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(d.entries)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(d.clock))
	for i := range d.entries {
		e := &d.entries[i]
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.blk))
		buf = append(buf, byte(e.state))
		buf = binary.LittleEndian.AppendUint64(buf, e.sharers)
		if e.valid {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.lru))
	}
	return buf
}

// DecodeState restores state written by EncodeState, rejecting a
// geometry mismatch, and returns the remaining bytes.
func (d *SDCDir) DecodeState(data []byte) ([]byte, error) {
	if len(data) < 4+8 {
		return nil, fmt.Errorf("coherence: SDCDir checkpoint truncated")
	}
	n := int(binary.LittleEndian.Uint32(data))
	if n != len(d.entries) {
		return nil, fmt.Errorf("coherence: SDCDir checkpoint geometry mismatch: %d entries, have %d", n, len(d.entries))
	}
	d.clock = int64(binary.LittleEndian.Uint64(data[4:]))
	data = data[12:]
	const entryBytes = 8 + 1 + 8 + 1 + 8
	if len(data) < n*entryBytes {
		return nil, fmt.Errorf("coherence: SDCDir checkpoint truncated")
	}
	for i := range d.entries {
		e := &d.entries[i]
		e.blk = mem.BlockAddr(binary.LittleEndian.Uint64(data))
		e.state = State(data[8])
		e.sharers = binary.LittleEndian.Uint64(data[9:])
		e.valid = data[17] != 0
		e.lru = int64(binary.LittleEndian.Uint64(data[18:]))
		data = data[entryBytes:]
	}
	return data, nil
}
