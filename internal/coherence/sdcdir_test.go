package coherence

import (
	"math/bits"
	"testing"
	"testing/quick"

	"graphmem/internal/mem"
)

func newDir(cores int) *SDCDir {
	return New(DefaultConfig(cores), nil)
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M"}
	for s, str := range want {
		if s.String() != str {
			t.Errorf("State %d = %q", s, s.String())
		}
	}
}

func TestLookupMissOnEmpty(t *testing.T) {
	d := newDir(4)
	if _, _, ok := d.Lookup(42); ok {
		t.Error("empty directory reported a sharer")
	}
	if d.Lookups != 1 || d.Hits != 0 {
		t.Errorf("stats: lookups=%d hits=%d", d.Lookups, d.Hits)
	}
}

func TestAddSharerReadPath(t *testing.T) {
	d := newDir(4)
	d.AddSharer(42, 2, false)
	sharers, state, ok := d.Lookup(42)
	if !ok || sharers != 1<<2 || state != Exclusive {
		t.Errorf("got sharers=%b state=%v ok=%v", sharers, state, ok)
	}
	// Second reader: Shared.
	d.AddSharer(42, 0, false)
	sharers, state, _ = d.Lookup(42)
	if sharers != 0b101 || state != Shared {
		t.Errorf("after 2nd reader: sharers=%b state=%v", sharers, state)
	}
}

func TestAddSharerWritePath(t *testing.T) {
	d := newDir(4)
	d.AddSharer(42, 0, false)
	d.AddSharer(42, 1, false)
	// Core 3 writes: sole Modified owner.
	d.AddSharer(42, 3, true)
	sharers, state, _ := d.Lookup(42)
	if sharers != 1<<3 || state != Modified {
		t.Errorf("after write: sharers=%b state=%v", sharers, state)
	}
}

func TestRemoveSharerFreesEntry(t *testing.T) {
	d := newDir(4)
	d.AddSharer(7, 0, false)
	d.AddSharer(7, 1, false)
	d.RemoveSharer(7, 0)
	if sharers, _, ok := d.Lookup(7); !ok || sharers != 1<<1 {
		t.Errorf("sharers=%b ok=%v", sharers, ok)
	}
	d.RemoveSharer(7, 1)
	if _, _, ok := d.Lookup(7); ok {
		t.Error("entry should be freed when last sharer leaves")
	}
	// Removing from an absent entry is a no-op.
	d.RemoveSharer(7, 1)
}

func TestInvalidateAll(t *testing.T) {
	d := newDir(4)
	d.AddSharer(9, 0, false)
	d.AddSharer(9, 2, false)
	sharers, state := d.InvalidateAll(9)
	if sharers != 0b101 || state != Shared {
		t.Errorf("InvalidateAll = (%b, %v)", sharers, state)
	}
	if _, _, ok := d.Lookup(9); ok {
		t.Error("entry survived InvalidateAll")
	}
	if s, _ := d.InvalidateAll(9); s != 0 {
		t.Error("second InvalidateAll returned sharers")
	}
}

func TestCapacityEvictionTriggersCallback(t *testing.T) {
	var evicted []mem.BlockAddr
	cfg := Config{EntriesPerCore: 16, Ways: 2, Cores: 1, Latency: 1}
	d := New(cfg, func(blk mem.BlockAddr, sharers uint64) {
		evicted = append(evicted, blk)
		if sharers == 0 {
			t.Error("evict callback with no sharers")
		}
	})
	// 8 sets x 2 ways; blocks i*8 all map to set 0.
	for i := 0; i < 3; i++ {
		d.AddSharer(mem.BlockAddr(i*8), 0, false)
	}
	if len(evicted) != 1 || evicted[0] != 0 {
		t.Errorf("evicted = %v, want [0] (LRU)", evicted)
	}
	if d.Evictions != 1 {
		t.Errorf("Evictions = %d", d.Evictions)
	}
}

func TestEvictionPrefersLRU(t *testing.T) {
	var evicted []mem.BlockAddr
	cfg := Config{EntriesPerCore: 16, Ways: 2, Cores: 1, Latency: 1}
	d := New(cfg, func(blk mem.BlockAddr, _ uint64) { evicted = append(evicted, blk) })
	d.AddSharer(0, 0, false)
	d.AddSharer(8, 0, false)
	d.Lookup(0) // refresh 0
	d.AddSharer(16, 0, false)
	if len(evicted) != 1 || evicted[0] != 8 {
		t.Errorf("evicted = %v, want [8]", evicted)
	}
}

func TestOccupancyAndForEach(t *testing.T) {
	d := newDir(2)
	d.AddSharer(1, 0, false)
	d.AddSharer(2, 1, true)
	if d.Occupancy() != 2 {
		t.Errorf("occupancy = %d", d.Occupancy())
	}
	seen := map[mem.BlockAddr]State{}
	d.ForEach(func(blk mem.BlockAddr, sharers uint64, state State) {
		seen[blk] = state
	})
	if seen[1] != Exclusive || seen[2] != Modified {
		t.Errorf("ForEach states = %v", seen)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, cfg := range []Config{
		{EntriesPerCore: 10, Ways: 4, Cores: 1},   // 10 entries not divisible
		{EntriesPerCore: 24, Ways: 2, Cores: 1},   // 12 sets: not pow2
		{EntriesPerCore: 128, Ways: 8, Cores: 65}, // too many cores
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg, nil)
		}()
	}
}

// Invariant: a Modified entry always has exactly one sharer; sharer
// vectors only use bits < Cores when callers behave.
func TestModifiedSingleSharerInvariant(t *testing.T) {
	type op struct {
		Blk   uint8
		Core  uint8
		Write bool
		Del   bool
	}
	f := func(ops []op) bool {
		d := newDir(4)
		for _, o := range ops {
			blk := mem.BlockAddr(o.Blk)
			coreID := int(o.Core % 4)
			switch {
			case o.Del:
				d.RemoveSharer(blk, coreID)
			default:
				d.AddSharer(blk, coreID, o.Write)
			}
		}
		ok := true
		d.ForEach(func(blk mem.BlockAddr, sharers uint64, state State) {
			if sharers == 0 {
				ok = false
			}
			if state == Modified && bits.OnesCount64(sharers) != 1 {
				ok = false
			}
			if sharers>>4 != 0 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
