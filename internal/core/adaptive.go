package core

import (
	"graphmem/internal/mem"
)

// The paper fixes τ_glob = 8 and notes (Section V-C) that the Expert
// Programmer beats the LP precisely where that constant is inadequate
// (e.g. pr.web). AdaptiveLP is this repository's extension in the
// paper's future-work spirit: it keeps the LP table unchanged but tunes
// τ_glob online from routing outcomes.
//
// Feedback signals, accumulated per epoch:
//   - a *friendly* access that ends up served by DRAM was misrouted —
//     the threshold is too high (the access should have bypassed);
//   - an *averse* access that the rest of the hierarchy could have
//     served (it hit a cache on the coherence probe) was misrouted —
//     the threshold is too low.
//
// At each epoch boundary τ moves one step toward whichever
// misclassification dominates, clamped to [TauMin, TauMax]. The
// hardware cost is two counters and a comparator.
type AdaptiveLP struct {
	*LP
	// Epoch is the number of routed accesses between adjustments.
	Epoch int64
	// TauMin/TauMax clamp the threshold.
	TauMin, TauMax uint64
	// MarginPct is the relative imbalance (in percent of epoch
	// accesses) required before τ moves.
	MarginPct int64

	accesses     int64
	friendlyDRAM int64
	averseCached int64
	// Adjustments counts τ moves, for tests and stats.
	Adjustments int64
}

// NewAdaptiveLP wraps a predictor built from cfg with threshold
// adaptation. cfg.Tau is the starting threshold.
func NewAdaptiveLP(cfg LPConfig) *AdaptiveLP {
	return &AdaptiveLP{
		LP:        NewLP(cfg),
		Epoch:     1 << 15,
		TauMin:    2,
		TauMax:    64,
		MarginPct: 1,
	}
}

// Tau returns the current threshold.
func (a *AdaptiveLP) Tau() uint64 { return a.cfg.Tau }

// Feedback reports where a routed access was ultimately served.
func (a *AdaptiveLP) Feedback(averse bool, served mem.ServedBy) {
	a.accesses++
	if !averse && served == mem.ServedDRAM {
		a.friendlyDRAM++
	}
	if averse && (served == mem.ServedL1D || served == mem.ServedL2 || served == mem.ServedLLC) {
		a.averseCached++
	}
	if a.accesses < a.Epoch {
		return
	}
	margin := a.Epoch * a.MarginPct / 100
	switch {
	case a.friendlyDRAM > a.averseCached+margin && a.cfg.Tau > a.TauMin:
		a.cfg.Tau /= 2
		if a.cfg.Tau < a.TauMin {
			a.cfg.Tau = a.TauMin
		}
		a.Adjustments++
	case a.averseCached > a.friendlyDRAM+margin && a.cfg.Tau < a.TauMax:
		a.cfg.Tau *= 2
		if a.cfg.Tau > a.TauMax {
			a.cfg.Tau = a.TauMax
		}
		a.Adjustments++
	}
	a.accesses = 0
	a.friendlyDRAM = 0
	a.averseCached = 0
}
