package core

import (
	"testing"

	"graphmem/internal/mem"
)

func feed(a *AdaptiveLP, n int64, averse bool, served mem.ServedBy) {
	for i := int64(0); i < n; i++ {
		a.Feedback(averse, served)
	}
}

func TestAdaptiveLoweringTau(t *testing.T) {
	a := NewAdaptiveLP(DefaultLPConfig())
	a.Epoch = 1000
	start := a.Tau()
	// Friendly accesses keep falling through to DRAM: τ must drop.
	feed(a, 1000, false, mem.ServedDRAM)
	if a.Tau() >= start {
		t.Errorf("tau = %d, want below %d", a.Tau(), start)
	}
	if a.Adjustments != 1 {
		t.Errorf("adjustments = %d", a.Adjustments)
	}
}

func TestAdaptiveRaisingTau(t *testing.T) {
	a := NewAdaptiveLP(DefaultLPConfig())
	a.Epoch = 1000
	start := a.Tau()
	// Averse accesses keep being served by caches: τ must rise.
	feed(a, 1000, true, mem.ServedLLC)
	if a.Tau() <= start {
		t.Errorf("tau = %d, want above %d", a.Tau(), start)
	}
}

func TestAdaptiveClamps(t *testing.T) {
	a := NewAdaptiveLP(DefaultLPConfig())
	a.Epoch = 100
	for i := 0; i < 50; i++ {
		feed(a, 100, false, mem.ServedDRAM)
	}
	if a.Tau() < a.TauMin {
		t.Errorf("tau %d fell below min %d", a.Tau(), a.TauMin)
	}
	for i := 0; i < 50; i++ {
		feed(a, 100, true, mem.ServedLLC)
	}
	if a.Tau() > a.TauMax {
		t.Errorf("tau %d exceeded max %d", a.Tau(), a.TauMax)
	}
}

func TestAdaptiveStableWhenBalanced(t *testing.T) {
	a := NewAdaptiveLP(DefaultLPConfig())
	a.Epoch = 1000
	start := a.Tau()
	// Well-routed traffic: friendly hits caches, averse reaches DRAM.
	for i := 0; i < 5; i++ {
		for j := 0; j < 500; j++ {
			a.Feedback(false, mem.ServedL1D)
			a.Feedback(true, mem.ServedDRAM)
		}
	}
	if a.Tau() != start {
		t.Errorf("balanced feedback moved tau %d -> %d", start, a.Tau())
	}
	if a.Adjustments != 0 {
		t.Errorf("adjustments = %d", a.Adjustments)
	}
}

func TestAdaptivePredictionUsesCurrentTau(t *testing.T) {
	a := NewAdaptiveLP(LPConfig{Entries: 32, Ways: 8, Tau: 8})
	pc := uint64(0x400000)
	// Train a PC with s_acc around 16 (above 8, below 32).
	a.PredictAndUpdate(pc, 0)
	for i := 1; i < 20; i++ {
		a.PredictAndUpdate(pc, mem.BlockAddr(i*32))
	}
	if !a.Predict(pc) {
		t.Fatal("entry should be averse at tau=8")
	}
	// Push τ above the accumulator: same entry becomes friendly.
	a.Epoch = 100
	feed(a, 100, true, mem.ServedLLC) // 8 -> 16
	feed(a, 100, true, mem.ServedLLC) // 16 -> 32
	if a.Tau() < 32 {
		t.Fatalf("tau = %d", a.Tau())
	}
	if a.Predict(pc) {
		t.Error("raised tau did not change the routing decision")
	}
}
