package core

import (
	"testing"

	"graphmem/internal/mem"
)

// BenchmarkLPPredictAndUpdate measures the per-access predictor
// operation over a PC mix: a few streaming sites (small strides) and an
// irregular site (large strides), like a traced kernel inner loop.
func BenchmarkLPPredictAndUpdate(b *testing.B) {
	lp := NewLP(DefaultLPConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		site := uint64(i % 4)
		pc := 0x400000 + site*8
		var blk mem.BlockAddr
		if site == 3 {
			blk = mem.BlockAddr((uint64(i) * 2654435761) & 0xFFFFF) // irregular
		} else {
			blk = mem.BlockAddr(uint64(i) / 8) // streaming
		}
		lp.PredictAndUpdate(pc, blk)
	}
}
