package core

import (
	"fmt"

	"graphmem/internal/mem"
)

// Table IV bit widths, assuming 48-bit physical addresses.
const (
	sdcDataBits  = 512 // 64 B line
	sdcTagBits   = 42  // 48-bit PA minus 6 block offset bits
	lpTagBits    = 65  // Table IV's stated LP tag width
	lpAddrBits   = 58  // Table IV's stated LP address field width
	dirTagBits   = 42
	dirStateBits = 6
)

// BudgetEntry is one row of Table IV.
type BudgetEntry struct {
	Name        string
	Entries     int
	BitsPerItem int
	KB          float64
}

// Budget computes the per-core hardware budget of the SDC+LP proposal
// (Table IV) for the given geometries: SDC capacity in bytes, LP entry
// count, SDCDir entry count and the number of cores sharing the
// directory (one sharer bit each).
func Budget(sdcBytes, lpEntries, sdcDirEntries, cores int) []BudgetEntry {
	sdcEntries := sdcBytes / mem.BlockSize
	rows := []BudgetEntry{
		{
			Name:        "SDC",
			Entries:     sdcEntries,
			BitsPerItem: sdcDataBits + sdcTagBits + 1 + 1, // data + tag + valid + dirty
		},
		{
			Name:        "LP",
			Entries:     lpEntries,
			BitsPerItem: lpTagBits + lpAddrBits + SAccBits + 1, // tag + address + stride + valid
		},
		{
			Name:        "SDCDir",
			Entries:     sdcDirEntries,
			BitsPerItem: dirTagBits + dirStateBits + cores, // tag + state + 1 sharer bit per core
		},
	}
	for i := range rows {
		rows[i].KB = float64(rows[i].Entries) * float64(rows[i].BitsPerItem) / 8 / 1024
	}
	return rows
}

// TotalKB sums a budget's storage in KB.
func TotalKB(rows []BudgetEntry) float64 {
	var t float64
	for _, r := range rows {
		t += r.KB
	}
	return t
}

// String renders one row like Table IV.
func (b BudgetEntry) String() string {
	return fmt.Sprintf("%-7s %4d entries x %3d bits = %5.2f KB", b.Name, b.Entries, b.BitsPerItem, b.KB)
}
