package core

import (
	"testing"

	"graphmem/internal/mem"
)

// lpRefEntry mirrors one LP table entry.
type lpRefEntry struct {
	tag  uint64
	addr mem.BlockAddr
	sAcc uint64
}

// FuzzLPVsReference drives the Large Predictor's update path against a
// per-set LRU-list mirror of the Section III-B semantics: classify on
// the entry's current accumulator, then s_acc <- min(s_acc+|stride|,
// 2^14-1) >> 1, with allocation (s_acc = 0, predict friendly) on a
// table miss. Predict must agree with the classification
// PredictAndUpdate makes on the same access, and the accumulator must
// match the mirror after every access.
func FuzzLPVsReference(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x00, 0x00, 0x40, 0x00, 0x00, 0x81, 0x01, 0x00, 0x02, 0x02})
	f.Add([]byte("\x01\x00\x00\x01\x10\x00\x01\x20\x00\x01\x30\x00"))
	f.Add([]byte{0x07, 0xff, 0xff, 0x07, 0x00, 0x00, 0x07, 0xff, 0xff, 0x07, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := LPConfig{Entries: 4, Ways: 2, Tau: 4}
		lp := NewLP(cfg)
		nsets := cfg.Entries / cfg.Ways
		setBits := uint(0)
		for (1 << setBits) < nsets {
			setBits++
		}
		// ref[set] holds entries most recently touched last.
		ref := make([][]lpRefEntry, nsets)

		for i := 0; i+2 < len(data); i += 3 {
			pc := uint64(data[i]%32) * 8 // 8-byte aligned PCs, as pcIndex assumes
			blk := mem.BlockAddr(uint64(data[i+1]) | uint64(data[i+2])<<8)

			p := pc >> 3
			si := int(p & uint64(nsets-1))
			tag := p >> setBits
			set := ref[si]
			pos := -1
			for j := range set {
				if set[j].tag == tag {
					pos = j
					break
				}
			}
			wantAverse := pos >= 0 && set[pos].sAcc >= cfg.Tau

			if got := lp.Predict(pc); got != wantAverse {
				t.Fatalf("op %d: Predict(%#x) = %v, reference says %v", i, pc, got, wantAverse)
			}
			if got := lp.PredictAndUpdate(pc, blk); got != wantAverse {
				t.Fatalf("op %d: PredictAndUpdate(%#x, %d) = %v, reference says %v", i, pc, blk, got, wantAverse)
			}

			if pos >= 0 {
				e := set[pos]
				var s uint64
				if blk >= e.addr {
					s = uint64(blk - e.addr)
				} else {
					s = uint64(e.addr - blk)
				}
				acc := e.sAcc + s
				if acc > sAccMax {
					acc = sAccMax
				}
				e.sAcc = acc >> 1
				e.addr = blk
				ref[si] = append(append(set[:pos], set[pos+1:]...), e)
			} else {
				if len(set) >= cfg.Ways {
					set = set[1:] // LRU eviction
				}
				ref[si] = append(set, lpRefEntry{tag: tag, addr: blk})
			}

			want := ref[si][len(ref[si])-1].sAcc
			got, ok := lp.SAcc(pc)
			if !ok || got != want {
				t.Fatalf("op %d: SAcc(%#x) = (%d,%v), reference says %d", i, pc, got, ok, want)
			}
		}
	})
}
