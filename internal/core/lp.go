// Package core implements the paper's primary contribution: the Large
// Predictor (LP), the PC-indexed stride-accumulation predictor that
// classifies memory accesses as cache-friendly or cache-averse
// (Section III-B), plus the hardware-budget arithmetic of Table IV. The
// Side Data Cache itself reuses the set-associative machinery of
// internal/cache; internal/sim wires LP, SDC and the SDCDir together.
package core

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"graphmem/internal/mem"
)

// SAccBits is the width of the stride-accumulator field (Table IV).
const SAccBits = 14

// sAccMax is the saturation value of the accumulator.
const sAccMax = (1 << SAccBits) - 1

// LPConfig configures the Large Predictor.
type LPConfig struct {
	// Entries is the total prediction-table entry count.
	Entries int
	// Ways is the table's associativity (Entries/Ways sets). Set
	// Ways == Entries for a fully-associative table.
	Ways int
	// Tau is the global threshold τ_glob: an access whose entry's
	// accumulated stride is >= Tau (in cache blocks) is classified
	// cache-averse and routed to the SDC.
	Tau uint64
}

// DefaultLPConfig returns the Table I configuration: 32 entries, 8-way,
// τ_glob = 8.
func DefaultLPConfig() LPConfig {
	return LPConfig{Entries: 32, Ways: 8, Tau: 8}
}

type lpEntry struct {
	tag   uint64
	addr  mem.BlockAddr
	sAcc  uint64
	valid bool
	lru   int64
}

// LP is the Large Predictor: a small PC-indexed set-associative table.
// Each entry tracks the last block address touched by its PC and an
// exponentially-decayed accumulation of the absolute block strides
// between consecutive accesses: s_acc <- (s_acc + |stride|) >> 1.
// An access predicts cache-averse when its entry's s_acc >= τ_glob.
type LP struct {
	cfg     LPConfig
	entries []lpEntry // nsets x ways slab, set-major
	ways    int
	nsets   int
	setBits uint
	clock   int64
	// PredAverse / PredFriendly / TableMisses count prediction
	// outcomes for stats.
	PredAverse, PredFriendly, TableMisses int64
}

// NewLP builds a predictor from cfg.
func NewLP(cfg LPConfig) *LP {
	if cfg.Entries <= 0 || cfg.Ways <= 0 || cfg.Entries%cfg.Ways != 0 {
		panic(fmt.Sprintf("core: bad LP geometry %d entries %d ways", cfg.Entries, cfg.Ways))
	}
	nsets := cfg.Entries / cfg.Ways
	if nsets&(nsets-1) != 0 {
		panic("core: LP set count must be a power of two")
	}
	return &LP{
		cfg:     cfg,
		entries: make([]lpEntry, cfg.Entries),
		ways:    cfg.Ways,
		nsets:   nsets,
		setBits: uint(bits.TrailingZeros(uint(nsets))),
	}
}

// set returns the ways of set si as a slice into the slab.
func (lp *LP) set(si int) []lpEntry {
	return lp.entries[si*lp.ways : (si+1)*lp.ways]
}

// Config returns the predictor's configuration.
func (lp *LP) Config() LPConfig { return lp.cfg }

// pcIndex normalizes an instruction address for indexing. Instruction
// addresses are 8-byte aligned in the synthetic trace, so the paper's
// "PC mod #sets / PC >> log2(#sets)" hash is applied to the aligned PC.
func pcIndex(pc uint64) uint64 { return pc >> 3 }

func (lp *LP) split(pc uint64) (set int, tag uint64) {
	p := pcIndex(pc)
	return int(p & uint64(lp.nsets-1)), p >> lp.setBits
}

// Predict performs a read-only classification of the access (Fig. 4):
// true means cache-averse (route to the SDC), false means cache-friendly
// (route to the L1D path). A prediction-table miss predicts friendly.
func (lp *LP) Predict(pc uint64) bool {
	si, tag := lp.split(pc)
	set := lp.set(si)
	for w := range set {
		if set[w].valid && set[w].tag == tag {
			return set[w].sAcc >= lp.cfg.Tau
		}
	}
	return false
}

// PredictAndUpdate performs the per-access LP operation: classify using
// the entry's current accumulated stride (Fig. 4), then update the entry
// with the new stride observation (Fig. 5), allocating on a table miss
// with LRU replacement (Section III-B3). It returns true when the
// access is classified cache-averse.
func (lp *LP) PredictAndUpdate(pc uint64, blk mem.BlockAddr) bool {
	si, tag := lp.split(pc)
	set := lp.set(si)
	lp.clock++
	for w := range set {
		e := &set[w]
		if !e.valid || e.tag != tag {
			continue
		}
		averse := e.sAcc >= lp.cfg.Tau
		if averse {
			lp.PredAverse++
		} else {
			lp.PredFriendly++
		}
		// Update: s = |v@ - entry.addr|; s_acc = (s_acc + s) >> 1.
		var s uint64
		if blk >= e.addr {
			s = uint64(blk - e.addr)
		} else {
			s = uint64(e.addr - blk)
		}
		acc := e.sAcc + s
		if acc > sAccMax {
			acc = sAccMax
		}
		e.sAcc = acc >> 1
		e.addr = blk
		e.lru = lp.clock
		return averse
	}
	// Table miss: friendly prediction + allocation (tag, addr=v@,
	// s_acc=0, valid=1).
	lp.TableMisses++
	lp.PredFriendly++
	way, best := 0, int64(1<<63-1)
	for w := range set {
		if !set[w].valid {
			way = w
			break
		}
		if set[w].lru < best {
			best = set[w].lru
			way = w
		}
	}
	set[way] = lpEntry{tag: tag, addr: blk, sAcc: 0, valid: true, lru: lp.clock}
	return false
}

// SAcc exposes an entry's accumulator for tests and introspection; ok is
// false when the PC has no entry.
func (lp *LP) SAcc(pc uint64) (uint64, bool) {
	si, tag := lp.split(pc)
	set := lp.set(si)
	for w := range set {
		if e := &set[w]; e.valid && e.tag == tag {
			return e.sAcc, true
		}
	}
	return 0, false
}

// WarmPredictAndUpdate performs the identical classify-then-update
// table transition to PredictAndUpdate but bumps none of the outcome
// counters — the functional-warming fast path (internal/sample), which
// keeps predictor state hot while statistics stay zero.
func (lp *LP) WarmPredictAndUpdate(pc uint64, blk mem.BlockAddr) bool {
	si, tag := lp.split(pc)
	set := lp.set(si)
	lp.clock++
	for w := range set {
		e := &set[w]
		if !e.valid || e.tag != tag {
			continue
		}
		averse := e.sAcc >= lp.cfg.Tau
		var s uint64
		if blk >= e.addr {
			s = uint64(blk - e.addr)
		} else {
			s = uint64(e.addr - blk)
		}
		acc := e.sAcc + s
		if acc > sAccMax {
			acc = sAccMax
		}
		e.sAcc = acc >> 1
		e.addr = blk
		e.lru = lp.clock
		return averse
	}
	way, best := 0, int64(1<<63-1)
	for w := range set {
		if !set[w].valid {
			way = w
			break
		}
		if set[w].lru < best {
			best = set[w].lru
			way = w
		}
	}
	set[way] = lpEntry{tag: tag, addr: blk, sAcc: 0, valid: true, lru: lp.clock}
	return false
}

// EncodeState appends the predictor's clock and table to buf.
func (lp *LP) EncodeState(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(lp.entries)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(lp.clock))
	for i := range lp.entries {
		e := &lp.entries[i]
		buf = binary.LittleEndian.AppendUint64(buf, e.tag)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.addr))
		buf = binary.LittleEndian.AppendUint64(buf, e.sAcc)
		if e.valid {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.lru))
	}
	return buf
}

// DecodeState restores state written by EncodeState, rejecting a
// geometry mismatch, and returns the remaining bytes.
func (lp *LP) DecodeState(data []byte) ([]byte, error) {
	if len(data) < 4+8 {
		return nil, fmt.Errorf("core: LP checkpoint truncated")
	}
	n := int(binary.LittleEndian.Uint32(data))
	if n != len(lp.entries) {
		return nil, fmt.Errorf("core: LP checkpoint geometry mismatch: %d entries, have %d", n, len(lp.entries))
	}
	lp.clock = int64(binary.LittleEndian.Uint64(data[4:]))
	data = data[12:]
	const entryBytes = 8 + 8 + 8 + 1 + 8
	if len(data) < n*entryBytes {
		return nil, fmt.Errorf("core: LP checkpoint truncated")
	}
	for i := range lp.entries {
		e := &lp.entries[i]
		e.tag = binary.LittleEndian.Uint64(data)
		e.addr = mem.BlockAddr(binary.LittleEndian.Uint64(data[8:]))
		e.sAcc = binary.LittleEndian.Uint64(data[16:])
		e.valid = data[24] != 0
		e.lru = int64(binary.LittleEndian.Uint64(data[25:]))
		data = data[entryBytes:]
	}
	return data, nil
}
