package core

import (
	"math"
	"testing"
	"testing/quick"

	"graphmem/internal/mem"
)

// pcAt returns the i-th synthetic instruction address (8-byte spaced,
// like trace.Tracer sites).
func pcAt(i int) uint64 { return 0x400000 + uint64(i)*8 }

func TestLPGeometryValidation(t *testing.T) {
	for _, bad := range []LPConfig{
		{Entries: 0, Ways: 1, Tau: 8},
		{Entries: 32, Ways: 5, Tau: 8},
		{Entries: 24, Ways: 2, Tau: 8}, // 12 sets: not a power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", bad)
				}
			}()
			NewLP(bad)
		}()
	}
	// Fully associative is legal.
	NewLP(LPConfig{Entries: 32, Ways: 32, Tau: 8})
}

func TestColdPredictFriendlyAndAllocates(t *testing.T) {
	lp := NewLP(DefaultLPConfig())
	if lp.Predict(pcAt(0)) {
		t.Error("cold Predict should be friendly")
	}
	if lp.PredictAndUpdate(pcAt(0), 100) {
		t.Error("table miss must route to the L1D path")
	}
	if lp.TableMisses != 1 {
		t.Errorf("TableMisses = %d", lp.TableMisses)
	}
	if acc, ok := lp.SAcc(pcAt(0)); !ok || acc != 0 {
		t.Errorf("allocated entry s_acc = %d, ok=%v", acc, ok)
	}
}

func TestSequentialStreamStaysFriendly(t *testing.T) {
	lp := NewLP(DefaultLPConfig())
	pc := pcAt(1)
	for i := 0; i < 100; i++ {
		if lp.PredictAndUpdate(pc, mem.BlockAddr(i)) {
			t.Fatalf("unit-stride access %d classified averse", i)
		}
	}
	if acc, _ := lp.SAcc(pc); acc > 1 {
		t.Errorf("unit-stride s_acc = %d", acc)
	}
}

func TestIrregularStreamTurnsAverse(t *testing.T) {
	lp := NewLP(DefaultLPConfig())
	pc := pcAt(2)
	lp.PredictAndUpdate(pc, 0)
	averseSeen := false
	for i := 1; i < 20; i++ {
		// Jump thousands of blocks each access, like a gather through
		// NA into a multi-MB property array.
		if lp.PredictAndUpdate(pc, mem.BlockAddr(i*5000)) {
			averseSeen = true
		}
	}
	if !averseSeen {
		t.Fatal("large-stride stream never classified averse")
	}
	if !lp.Predict(pc) {
		t.Error("entry should be averse in steady state")
	}
}

func TestSAccUpdateRule(t *testing.T) {
	lp := NewLP(DefaultLPConfig())
	pc := pcAt(3)
	lp.PredictAndUpdate(pc, 100) // allocate, s_acc=0, addr=100
	lp.PredictAndUpdate(pc, 160) // s=60: s_acc=(0+60)>>1=30
	if acc, _ := lp.SAcc(pc); acc != 30 {
		t.Errorf("s_acc = %d, want 30", acc)
	}
	lp.PredictAndUpdate(pc, 150) // s=10 (absolute): s_acc=(30+10)>>1=20
	if acc, _ := lp.SAcc(pc); acc != 20 {
		t.Errorf("s_acc = %d, want 20", acc)
	}
}

func TestSAccSaturates(t *testing.T) {
	lp := NewLP(DefaultLPConfig())
	pc := pcAt(4)
	lp.PredictAndUpdate(pc, 0)
	lp.PredictAndUpdate(pc, 1<<40) // enormous stride
	acc, _ := lp.SAcc(pc)
	if acc != (1<<SAccBits-1)>>1 {
		t.Errorf("s_acc = %d, want saturation %d", acc, (1<<SAccBits-1)>>1)
	}
}

func TestSAccNeverExceedsFieldWidth(t *testing.T) {
	f := func(strides []uint32) bool {
		lp := NewLP(DefaultLPConfig())
		pc := pcAt(5)
		blk := mem.BlockAddr(0)
		lp.PredictAndUpdate(pc, blk)
		for _, s := range strides {
			blk += mem.BlockAddr(s % (1 << 20))
			lp.PredictAndUpdate(pc, blk)
			if acc, _ := lp.SAcc(pc); acc > 1<<SAccBits-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPredictionPrecedesUpdate(t *testing.T) {
	// The classification must use the accumulator value from before the
	// current stride is folded in (Fig. 4 then Fig. 5).
	lp := NewLP(LPConfig{Entries: 32, Ways: 8, Tau: 8})
	pc := pcAt(6)
	lp.PredictAndUpdate(pc, 0)
	// Huge stride now: but s_acc was 0 at prediction time -> friendly.
	if lp.PredictAndUpdate(pc, 1<<20) {
		t.Error("first large-stride access must still predict friendly")
	}
	// Now s_acc is large: next access is averse regardless of stride.
	if !lp.PredictAndUpdate(pc, 1<<20+1) {
		t.Error("second access should see the accumulated stride")
	}
}

func TestTauZeroRoutesEverythingAverseAfterWarm(t *testing.T) {
	lp := NewLP(LPConfig{Entries: 32, Ways: 8, Tau: 0})
	pc := pcAt(7)
	lp.PredictAndUpdate(pc, 0)
	for i := 1; i < 10; i++ {
		if !lp.PredictAndUpdate(pc, mem.BlockAddr(i)) {
			t.Fatal("τ=0 should classify every table hit as averse")
		}
	}
}

func TestHugeTauNeverAverse(t *testing.T) {
	lp := NewLP(LPConfig{Entries: 32, Ways: 8, Tau: math.MaxUint64})
	pc := pcAt(8)
	blk := mem.BlockAddr(0)
	for i := 0; i < 50; i++ {
		blk += 1 << 19
		if lp.PredictAndUpdate(pc, blk) {
			t.Fatal("τ=max should never classify averse")
		}
	}
}

func TestLRUReplacementAcrossPCs(t *testing.T) {
	// 8 entries, fully associative: the 9th distinct PC evicts the
	// least recently used one.
	lp := NewLP(LPConfig{Entries: 8, Ways: 8, Tau: 8})
	for i := 0; i < 8; i++ {
		lp.PredictAndUpdate(pcAt(i), 0)
	}
	lp.PredictAndUpdate(pcAt(0), 64) // refresh PC 0
	lp.PredictAndUpdate(pcAt(99), 0) // evicts PC 1
	if _, ok := lp.SAcc(pcAt(0)); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := lp.SAcc(pcAt(1)); ok {
		t.Error("LRU entry survived")
	}
	if _, ok := lp.SAcc(pcAt(99)); !ok {
		t.Error("new entry not allocated")
	}
}

func TestSetMappingSpreadsPCs(t *testing.T) {
	// With 4 sets, 8-byte-spaced PCs must not all land in one set.
	lp := NewLP(LPConfig{Entries: 32, Ways: 8, Tau: 8})
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		si, _ := lp.split(pcAt(i))
		seen[si] = true
	}
	if len(seen) < 4 {
		t.Errorf("8 consecutive sites map to only %d sets", len(seen))
	}
}

func TestDistinctPCsHaveIndependentState(t *testing.T) {
	lp := NewLP(DefaultLPConfig())
	reg, irr := pcAt(10), pcAt(11)
	blkR, blkI := mem.BlockAddr(0), mem.BlockAddr(1<<30)
	lp.PredictAndUpdate(reg, blkR)
	lp.PredictAndUpdate(irr, blkI)
	for i := 0; i < 30; i++ {
		blkR++
		blkI += 9999
		lp.PredictAndUpdate(reg, blkR)
		lp.PredictAndUpdate(irr, blkI)
	}
	if lp.Predict(reg) {
		t.Error("regular PC contaminated by irregular PC")
	}
	if !lp.Predict(irr) {
		t.Error("irregular PC not classified averse")
	}
}

func TestBudgetMatchesTableIV(t *testing.T) {
	rows := Budget(8<<10, 32, 128, 1)
	byName := map[string]BudgetEntry{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Table IV: SDC 8.69 KB, LP 0.54 KB, SDCDir 0.77 KB, total 10 KB.
	if got := byName["SDC"]; math.Abs(got.KB-8.69) > 0.01 {
		t.Errorf("SDC = %.3f KB, want 8.69", got.KB)
	}
	if got := byName["LP"]; math.Abs(got.KB-0.54) > 0.01 {
		t.Errorf("LP = %.3f KB, want 0.54", got.KB)
	}
	if got := byName["SDCDir"]; math.Abs(got.KB-0.77) > 0.01 {
		t.Errorf("SDCDir = %.3f KB, want 0.77", got.KB)
	}
	if total := TotalKB(rows); math.Abs(total-10) > 0.1 {
		t.Errorf("total = %.2f KB, want ~10", total)
	}
	if byName["SDC"].Entries != 128 || byName["LP"].Entries != 32 {
		t.Error("entry counts wrong")
	}
}

func TestBudgetString(t *testing.T) {
	rows := Budget(8<<10, 32, 128, 4)
	for _, r := range rows {
		if r.String() == "" {
			t.Error("empty budget row")
		}
	}
}
