// Package cpu models the out-of-order core of Table I: a 4-wide,
// 224-entry-ROB processor with in-order dispatch and retire and
// dependency-aware load issue.
//
// The model is analytical rather than cycle-stepped: for every
// instruction it computes dispatch, issue, completion and retirement
// timestamps from recurrences over small ring buffers, in O(1) per
// instruction. This captures exactly the effects the paper's results
// rest on — ROB-limited memory-level parallelism (a long-latency load
// blocks retirement and eventually dispatch), dependent loads
// serializing on each other, and store latency hiding via the store
// buffer — at simulation speeds high enough to run the full evaluation.
package cpu

import (
	"encoding/binary"
	"fmt"

	"graphmem/internal/mem"
	"graphmem/internal/trace"
)

// Config describes the core.
type Config struct {
	// Width is dispatch/retire width in instructions per cycle.
	Width int
	// ROB is the re-order buffer capacity.
	ROB int
	// ExecLatency is the completion latency of non-memory instructions.
	ExecLatency int64
	// BranchMissPenalty, when positive, injects a pipeline-refill stall
	// of that many cycles on a pseudo-random ~1/32 subset of records,
	// modeling branch mispredictions (graph traversals mispredict on
	// data-dependent branches). Zero — the default, matching Table I,
	// whose analytical model folds branch effects into ExecLatency —
	// changes nothing.
	BranchMissPenalty int64
}

// DefaultConfig returns the Table I core: 4-wide, 224-entry ROB.
func DefaultConfig() Config {
	return Config{Width: 4, ROB: 224, ExecLatency: 1}
}

// MemFunc performs a memory access issued at the given CPU cycle and
// returns its completion time and serving level. It is provided by the
// memory system (internal/sim). hint carries the value peek of the
// record and of its traced producer, for value-aware prefetchers; it is
// zero for stores and unannotated loads.
type MemFunc func(pc uint64, addr mem.Addr, size uint8, write bool, issue int64, hint mem.ValueHint) mem.Response

// Core executes a stream of trace records against a memory system.
type Core struct {
	cfg Config
	mem MemFunc

	// Ring buffers of per-instruction timestamps, indexed by
	// instruction sequence modulo their size.
	dispatch []int64 // dispatch cycle of instruction i
	retire   []int64 // retirement cycle of instruction i
	ringSize int64

	// complete times of recent *records* (memory instructions) for
	// dependency resolution, indexed by record sequence. recPC/recVal/
	// recHasVal shadow the same ring with each record's site PC and
	// annotated value, so a dependent load can hand its producer's
	// (PC, value) pair to the memory system as a prefetcher hint.
	recComplete []int64
	recPC       []uint64
	recVal      []uint64
	recHasVal   []bool
	recRing     int64

	seqInstr int64 // instructions dispatched
	seqRec   int64 // memory records processed

	// Retired counters and latency accumulation.
	Instructions int64
	MemOps       int64
	Loads        int64
	Stores       int64
	LoadLatency  int64
	// BranchMisses counts injected misprediction stalls (zero unless
	// Config.BranchMissPenalty is set; not part of CoreStats — the
	// penalty is a sensitivity knob, not a reported metric).
	BranchMisses int64

	// Tap, when non-nil, receives every demand load's issue-to-ready
	// latency (the flight-recorder hook; see mem.Tap). internal/sim
	// attaches it for the measurement window only; the disabled cost is
	// one interface nil-check per load.
	Tap mem.Tap

	lastRetire int64 // retirement time of the newest instruction

	// stallUntil floors the next dispatch (see Stall): the bound–weave
	// engine pushes it forward at quantum boundaries to charge the
	// latency correction computed by the weave replay.
	stallUntil int64
}

// New builds a core bound to a memory system.
func New(cfg Config, memFn MemFunc) *Core {
	if cfg.Width <= 0 || cfg.ROB <= 0 {
		panic("cpu: invalid core config")
	}
	ring := int64(cfg.ROB + cfg.Width + 1)
	c := &Core{
		cfg:         cfg,
		mem:         memFn,
		dispatch:    make([]int64, ring),
		retire:      make([]int64, ring),
		ringSize:    ring,
		recComplete: make([]int64, 1<<16),
		recPC:       make([]uint64, 1<<16),
		recVal:      make([]uint64, 1<<16),
		recHasVal:   make([]bool, 1<<16),
		recRing:     1 << 16,
	}
	return c
}

// Cycle returns the current cycle: the retirement time of the newest
// retired instruction.
func (c *Core) Cycle() int64 { return c.lastRetire }

// DispatchCycle returns the dispatch time of the newest instruction —
// the clock new memory requests are issued against. Multi-core
// scheduling orders cores by this value so that requests reach shared
// resources (LLC, DRAM banks/bus) in near-timestamp order, which the
// reservation timing model depends on; the retire clock can run far
// ahead of it when long-latency loads stall the ROB.
func (c *Core) DispatchCycle() int64 {
	if c.seqInstr == 0 {
		return 0
	}
	return c.dispatch[(c.seqInstr-1)%c.ringSize]
}

// dispatchTime computes the dispatch cycle of the next instruction:
// width-limited, and blocked until the instruction ROB-positions
// earlier has retired (its slot frees). The two halves of the old
// closure-based step recurrence are split into dispatchTime/commit so
// the memory access between them runs without a closure allocation or
// indirect call on the per-record hot path.
func (c *Core) dispatchTime() int64 {
	i := c.seqInstr
	d := int64(0)
	if i > 0 {
		d = c.dispatch[(i-1)%c.ringSize]
		if i%int64(c.cfg.Width) == 0 {
			d++ // new dispatch group
		}
	}
	if i >= int64(c.cfg.ROB) {
		if r := c.retire[(i-int64(c.cfg.ROB))%c.ringSize]; r > d {
			d = r
		}
	}
	if d < c.stallUntil {
		d = c.stallUntil
	}
	return d
}

// Stall floors every future dispatch at the given cycle — an external
// stall injected between instructions. The bound–weave engine uses it
// at quantum boundaries to apply the weave phase's latency correction
// (actual shared-resource latency minus the bound phase's estimate);
// cycles earlier than the current floor or the dispatch clock are
// no-ops, so the clock never rewinds.
func (c *Core) Stall(cycle int64) {
	if cycle > c.stallUntil {
		c.stallUntil = cycle
	}
}

// commit finishes the instruction recurrence begun by dispatchTime:
// in-order retirement, width-limited per cycle, not before completion
// and not before the previous instruction's retirement.
func (c *Core) commit(d, comp int64) {
	i := c.seqInstr
	r := comp
	if r < d+1 {
		r = d + 1
	}
	if i > 0 {
		if prev := c.retire[(i-1)%c.ringSize]; prev > r {
			r = prev
		}
	}
	if i >= int64(c.cfg.Width) {
		if w := c.retire[(i-int64(c.cfg.Width))%c.ringSize] + 1; w > r {
			r = w
		}
	}

	idx := i % c.ringSize
	c.dispatch[idx] = d
	c.retire[idx] = r
	c.seqInstr++
	c.Instructions++
	c.lastRetire = r
}

// Access consumes one trace record: its non-memory prelude followed by
// the memory instruction itself. It implements the instruction-level
// part of trace.Sink; internal/sim wraps it with window accounting.
func (c *Core) Access(r trace.Record) {
	if c.cfg.BranchMissPenalty > 0 {
		// A deterministic hash of (site PC, record sequence) selects
		// ~1/32 of records as mispredicted branches; the refill stall
		// floors the next dispatch. The stream is a property of the
		// trace, not the timing, so it is identical across -j/-wj.
		h := (r.PC ^ uint64(c.seqRec)*0x9E3779B97F4A7C15) * 0xBF58476D1CE4E5B9
		if h>>59 == 0 {
			c.BranchMisses++
			c.Stall(c.dispatchTime() + c.cfg.BranchMissPenalty)
		}
	}

	// Non-memory prelude: single-cycle ops.
	for k := uint16(0); k < r.NonMem; k++ {
		d := c.dispatchTime()
		c.commit(d, d+c.cfg.ExecLatency)
	}

	recSeq := c.seqRec
	c.seqRec++
	c.MemOps++

	if r.Write {
		c.Stores++
		// Stores complete into the store buffer immediately; the
		// memory system is updated in the background at dispatch time.
		// The differential checker (internal/check) relies on this
		// absorb-at-dispatch ordering: the architectural shadow version
		// of a block is bumped inside c.mem when the store is absorbed
		// by a cache level, so program order between a store and the
		// loads that follow it in the trace is exactly the order of
		// c.mem calls — no separate retirement-time commit exists.
		issued := c.dispatchTime()
		c.commit(issued, issued+1)
		c.mem(r.PC, r.Addr, r.Size, true, issued, mem.ValueHint{})
		idx := recSeq % c.recRing
		c.recComplete[idx] = issued + 1
		c.recHasVal[idx] = false
		return
	}

	c.Loads++
	d := c.dispatchTime()
	issue := d
	hint := mem.ValueHint{Value: r.Value, HasValue: r.HasValue}
	// A load with a traced dependency cannot issue before the
	// producing record completed; if that producer was value-annotated,
	// its (PC, value) pair rides along as a prefetcher hint.
	if r.DepDist > 0 {
		depSeq := recSeq - int64(r.DepDist)
		if depSeq >= 0 && recSeq-depSeq < c.recRing {
			di := depSeq % c.recRing
			if t := c.recComplete[di]; t > issue {
				issue = t
			}
			if c.recHasVal[di] {
				hint.DepPC = c.recPC[di]
				hint.DepValue = c.recVal[di]
				hint.DepHasValue = true
			}
		}
	}
	resp := c.mem(r.PC, r.Addr, r.Size, false, issue, hint)
	c.commit(d, resp.Ready)
	idx := recSeq % c.recRing
	c.recComplete[idx] = resp.Ready
	c.recPC[idx] = r.PC
	c.recVal[idx] = r.Value
	c.recHasVal[idx] = r.HasValue
	c.LoadLatency += resp.Ready - issue
	if c.Tap != nil {
		c.Tap.LoadToUse(resp.Ready - issue)
	}
}

// Drain returns the cycle at which everything dispatched so far has
// retired.
func (c *Core) Drain() int64 { return c.lastRetire }

// WarmRetire consumes one trace record during functional warming
// (internal/sample): the retired-instruction counters advance — the
// sampling window machinery is positioned by Instructions — but the
// pipeline recurrences, ring buffers and clocks do not. Warming spends
// no cycles, so measurement-window cycle time is exactly the sum of the
// detailed samples' contiguous pipeline time.
func (c *Core) WarmRetire(r trace.Record) {
	c.Instructions += int64(r.NonMem) + 1
	c.MemOps++
	if r.Write {
		c.Stores++
	} else {
		c.Loads++
	}
}

// EncodeState appends the retired-instruction counters to buf. They are
// the only core state a functional warm-up moves: WarmRetire touches no
// rings or clocks, so everything else is still at its reset value when
// a checkpoint is captured.
func (c *Core) EncodeState(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.Instructions))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.MemOps))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.Loads))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(c.Stores))
	return buf
}

// DecodeState restores state written by EncodeState and returns the
// remaining bytes.
func (c *Core) DecodeState(data []byte) ([]byte, error) {
	if len(data) < 32 {
		return nil, fmt.Errorf("cpu: checkpoint truncated")
	}
	c.Instructions = int64(binary.LittleEndian.Uint64(data))
	c.MemOps = int64(binary.LittleEndian.Uint64(data[8:]))
	c.Loads = int64(binary.LittleEndian.Uint64(data[16:]))
	c.Stores = int64(binary.LittleEndian.Uint64(data[24:]))
	return data[32:], nil
}
