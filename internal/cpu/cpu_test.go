package cpu

import (
	"testing"

	"graphmem/internal/mem"
	"graphmem/internal/trace"
)

// fixedMem returns a MemFunc with constant latency, recording issue
// times.
func fixedMem(lat int64, issues *[]int64) MemFunc {
	return func(pc uint64, addr mem.Addr, size uint8, write bool, issue int64, hint mem.ValueHint) mem.Response {
		if issues != nil {
			*issues = append(*issues, issue)
		}
		return mem.Response{Ready: issue + lat, Source: mem.ServedL1D}
	}
}

func TestIPCBoundedByWidth(t *testing.T) {
	c := New(DefaultConfig(), fixedMem(4, nil))
	// 10000 non-memory instructions + cheap loads: IPC <= 4.
	for i := 0; i < 1000; i++ {
		c.Access(trace.Record{PC: 1, Addr: mem.Addr(i * 4), Size: 4, NonMem: 9})
	}
	cycles := c.Cycle()
	ipc := float64(c.Instructions) / float64(cycles)
	if ipc > 4.0 {
		t.Errorf("IPC = %.2f exceeds width", ipc)
	}
	if ipc < 3.0 {
		t.Errorf("IPC = %.2f too low for single-cycle instructions", ipc)
	}
}

func TestIndependentLoadsOverlap(t *testing.T) {
	var issues []int64
	c := New(DefaultConfig(), fixedMem(200, &issues))
	for i := 0; i < 8; i++ {
		c.Access(trace.Record{PC: 1, Addr: mem.Addr(i * 64), Size: 4})
	}
	// All 8 independent loads must issue within the first few cycles,
	// not 200 apart.
	for i, is := range issues {
		if is > 10 {
			t.Errorf("load %d issued at %d; independent loads should overlap", i, is)
		}
	}
}

func TestDependentLoadsSerialize(t *testing.T) {
	var issues []int64
	c := New(DefaultConfig(), fixedMem(200, &issues))
	c.Access(trace.Record{PC: 1, Addr: 0, Size: 4})
	c.Access(trace.Record{PC: 2, Addr: 64, Size: 4, DepDist: 1})
	c.Access(trace.Record{PC: 3, Addr: 128, Size: 4, DepDist: 1})
	if issues[1] < issues[0]+200 {
		t.Errorf("dependent load issued at %d, producer completes at %d", issues[1], issues[0]+200)
	}
	if issues[2] < issues[1]+200 {
		t.Errorf("chained load issued at %d", issues[2])
	}
}

func TestROBLimitsMLP(t *testing.T) {
	// With latency 1000 and a 224-entry ROB of loads, loads beyond the
	// window cannot issue until the head retires.
	var issues []int64
	c := New(DefaultConfig(), fixedMem(1000, &issues))
	n := 500
	for i := 0; i < n; i++ {
		c.Access(trace.Record{PC: 1, Addr: mem.Addr(i * 64), Size: 4})
	}
	if issues[0] > 5 {
		t.Fatalf("first load issued at %d", issues[0])
	}
	// Load #300 is past the first ROB window: it must wait for the
	// first batch to retire (~1000 cycles).
	if issues[300] < 900 {
		t.Errorf("load 300 issued at %d; ROB should have stalled it", issues[300])
	}
}

func TestStoresDoNotBlockRetirement(t *testing.T) {
	// Long-latency memory, but stores are buffered: a stream of stores
	// retires at ~width rate.
	c := New(DefaultConfig(), fixedMem(500, nil))
	for i := 0; i < 1000; i++ {
		c.Access(trace.Record{PC: 1, Addr: mem.Addr(i * 64), Size: 4, Write: true, NonMem: 3})
	}
	ipc := float64(c.Instructions) / float64(c.Cycle())
	if ipc < 2.5 {
		t.Errorf("store-stream IPC = %.2f; stores must not stall the pipe", ipc)
	}
	if c.Stores != 1000 {
		t.Errorf("Stores = %d", c.Stores)
	}
}

func TestLoadLatencyAccumulates(t *testing.T) {
	c := New(DefaultConfig(), fixedMem(42, nil))
	for i := 0; i < 10; i++ {
		c.Access(trace.Record{PC: 1, Addr: mem.Addr(i * 64), Size: 4})
	}
	if c.LoadLatency != 420 {
		t.Errorf("LoadLatency = %d, want 420", c.LoadLatency)
	}
	if c.Loads != 10 || c.MemOps != 10 {
		t.Errorf("loads=%d memops=%d", c.Loads, c.MemOps)
	}
}

func TestCyclesMonotone(t *testing.T) {
	c := New(DefaultConfig(), fixedMem(10, nil))
	last := int64(0)
	for i := 0; i < 100; i++ {
		c.Access(trace.Record{PC: 1, Addr: mem.Addr(i * 64), Size: 4, NonMem: 2})
		if c.Cycle() < last {
			t.Fatalf("cycle went backwards: %d -> %d", last, c.Cycle())
		}
		last = c.Cycle()
	}
}

func TestLatencyBoundIPC(t *testing.T) {
	// A fully serialized dependent chain of N loads at latency L takes
	// at least N*L cycles.
	c := New(DefaultConfig(), fixedMem(100, nil))
	n := 50
	for i := 0; i < n; i++ {
		rec := trace.Record{PC: 1, Addr: mem.Addr(i * 64), Size: 4}
		if i > 0 {
			rec.DepDist = 1
		}
		c.Access(rec)
	}
	if c.Cycle() < int64(n-1)*100 {
		t.Errorf("chain of %d dependent 100-cycle loads finished at %d", n, c.Cycle())
	}
}

func TestHigherLatencyLowersIPC(t *testing.T) {
	run := func(lat int64) float64 {
		c := New(DefaultConfig(), fixedMem(lat, nil))
		for i := 0; i < 2000; i++ {
			rec := trace.Record{PC: 1, Addr: mem.Addr(i * 64), Size: 4, NonMem: 3}
			if i%2 == 1 {
				rec.DepDist = 1
			}
			c.Access(rec)
		}
		return float64(c.Instructions) / float64(c.Cycle())
	}
	fast, slow := run(10), run(300)
	if slow >= fast {
		t.Errorf("IPC fast=%.3f slow=%.3f; latency must cost throughput", fast, slow)
	}
}

func TestWiderCoreFaster(t *testing.T) {
	run := func(width int) float64 {
		cfg := DefaultConfig()
		cfg.Width = width
		c := New(cfg, fixedMem(4, nil))
		for i := 0; i < 2000; i++ {
			c.Access(trace.Record{PC: 1, Addr: mem.Addr(i % 64 * 64), Size: 4, NonMem: 7})
		}
		return float64(c.Instructions) / float64(c.Cycle())
	}
	if w1, w4 := run(1), run(4); w4 <= w1 {
		t.Errorf("width-4 IPC %.2f not above width-1 IPC %.2f", w4, w1)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{Width: 0, ROB: 10}, fixedMem(1, nil))
}

func TestStallRaisesDispatchFloor(t *testing.T) {
	// Stall floors *future* dispatches: the next access after Stall(n)
	// must not issue before n.
	var issues []int64
	c := New(DefaultConfig(), fixedMem(4, &issues))
	for i := 0; i < 10; i++ {
		c.Access(trace.Record{PC: 1, Addr: mem.Addr(i * 64), Size: 4, NonMem: 2})
	}
	floor := c.DispatchCycle() + 500
	c.Stall(floor)
	c.Access(trace.Record{PC: 1, Addr: 11 * 64, Size: 4})
	if got := issues[len(issues)-1]; got < floor {
		t.Fatalf("access issued at %d despite Stall(%d)", got, floor)
	}
	if got := c.DispatchCycle(); got < floor {
		t.Fatalf("DispatchCycle = %d below the stall floor %d", got, floor)
	}
	// Stall is monotonic: a lower target must not rewind the clock.
	c.Stall(floor - 400)
	c.Access(trace.Record{PC: 1, Addr: 12 * 64, Size: 4})
	if got := c.DispatchCycle(); got < floor {
		t.Fatalf("a lower Stall target rewound the clock to %d", got)
	}
}

func TestBranchMissPenaltySlowsDispatchBoundStream(t *testing.T) {
	// A dispatch-bound stream (cheap loads, no ROB pressure) cannot
	// absorb refill stalls, so a large penalty must cost cycles and the
	// selection hash must fire on roughly 1/32 of records.
	run := func(penalty int64) (int64, int64) {
		cfg := DefaultConfig()
		cfg.BranchMissPenalty = penalty
		c := New(cfg, fixedMem(2, nil))
		for i := 0; i < 4096; i++ {
			c.Access(trace.Record{PC: uint64(0x400000 + (i%7)*8), Addr: mem.Addr(i * 64), Size: 4, NonMem: 1})
		}
		return c.Cycle(), c.BranchMisses
	}
	base, baseMisses := run(0)
	slow, misses := run(200)
	if baseMisses != 0 {
		t.Fatalf("penalty-0 run counted %d branch misses", baseMisses)
	}
	if misses < 4096/32/4 || misses > 4096/32*4 {
		t.Fatalf("selection hash fired %d times over 4096 records, want ~%d", misses, 4096/32)
	}
	if slow <= base {
		t.Fatalf("penalized run took %d cycles, unpenalized %d", slow, base)
	}
	// Each injected stall can cost at most the penalty.
	if slow > base+misses*200+int64(4096) {
		t.Fatalf("penalized run took %d cycles; base %d + %d misses * 200 cannot explain it", slow, base, misses)
	}
}

func TestBranchMissSelectionIsDeterministic(t *testing.T) {
	run := func() int64 {
		cfg := DefaultConfig()
		cfg.BranchMissPenalty = 14
		c := New(cfg, fixedMem(3, nil))
		for i := 0; i < 2048; i++ {
			c.Access(trace.Record{PC: uint64(0x400000 + (i%5)*8), Addr: mem.Addr(i * 32), Size: 4})
		}
		return c.BranchMisses
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("selection differs across identical runs: %d vs %d", a, b)
	}
}

func TestValueHintReachesMemory(t *testing.T) {
	// An annotated load's own value rides in its hint; the next load's
	// DepDist=1 edge must surface the producer's (PC, value) pair.
	var hints []mem.ValueHint
	c := New(DefaultConfig(), func(pc uint64, addr mem.Addr, size uint8, write bool, issue int64, hint mem.ValueHint) mem.Response {
		hints = append(hints, hint)
		return mem.Response{Ready: issue + 2, Source: mem.ServedL1D}
	})
	c.Access(trace.Record{PC: 0x400010, Addr: 0x1000, Size: 4, Value: 42, HasValue: true})
	c.Access(trace.Record{PC: 0x400020, Addr: 0x2000, Size: 8, DepDist: 1})
	c.Access(trace.Record{PC: 0x400030, Addr: 0x3000, Size: 8, Write: true})
	c.Access(trace.Record{PC: 0x400040, Addr: 0x4000, Size: 8, DepDist: 1})
	if h := hints[0]; !h.HasValue || h.Value != 42 || h.DepHasValue {
		t.Fatalf("annotated load's hint = %+v", h)
	}
	if h := hints[1]; !h.DepHasValue || h.DepPC != 0x400010 || h.DepValue != 42 || h.HasValue {
		t.Fatalf("dependent load's hint = %+v, want producer (pc 0x400010, value 42)", h)
	}
	if h := hints[2]; h != (mem.ValueHint{}) {
		t.Fatalf("store carried a non-zero hint %+v", h)
	}
	// A load depending on the store gets no value: stores clear their
	// ring slot.
	if h := hints[3]; h.DepHasValue {
		t.Fatalf("store-dependent load's hint = %+v, want no producer value", h)
	}
}
