package dram

import (
	"testing"

	"graphmem/internal/mem"
)

// BenchmarkChannelAccessRandom measures the per-request timing path
// under bank-spreading random reads (the graph-workload access shape).
func BenchmarkChannelAccessRandom(b *testing.B) {
	ch := NewChannel(DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	now := int64(0)
	for i := 0; i < b.N; i++ {
		// LCG spreads blocks over banks and rows deterministically.
		blk := mem.BlockAddr((uint64(i)*2654435761 + 12345) & 0xFFFFF)
		done := ch.Access(blk, false, now)
		now = done - ch.MinLatency() // keep pressure without runaway queueing
	}
}

// BenchmarkChannelAccessStream measures the row-hit fast path.
func BenchmarkChannelAccessStream(b *testing.B) {
	ch := NewChannel(DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	now := int64(0)
	for i := 0; i < b.N; i++ {
		done := ch.Access(mem.BlockAddr(i), false, now)
		now = done - ch.MinLatency()
	}
}

// BenchmarkMemoryTotalStats measures the controller-wide stats read the
// epoch sampler performs per sample; it must not scale with geometry.
func BenchmarkMemoryTotalStats(b *testing.B) {
	m := NewMemory(DefaultConfig(), 2)
	for i := 0; i < 1024; i++ {
		m.Access(mem.BlockAddr(i*97), false, int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	var s Stats
	for i := 0; i < b.N; i++ {
		s = m.TotalStats()
	}
	_ = s
}
