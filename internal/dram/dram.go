// Package dram models the main-memory timing of Table I: DDR4 SDRAM at
// 2.933 GT/s (I/O bus at 1466.5 MHz) with tRP = tRCD = tCAS = 24 DRAM
// cycles, an open-page row-buffer policy, and per-bank plus data-bus
// resource reservation.
//
// The model is timestamp-based: given a request's arrival time in CPU
// cycles it returns the completion time, advancing the affected bank's
// and the channel data bus's ready-at timestamps. This captures the
// first-order DRAM behaviour the paper's results depend on — row-buffer
// hits vs misses and bank/bus queueing under the bandwidth demand of
// graph workloads — without a full command scheduler.
//
// Concurrency contract (bound–weave engine, internal/sim/boundweave.go):
// DRAM bank/bus/row state is shared-domain. Under bound–weave, bound
// phases answer DRAM accesses with a deterministic latency estimate and
// log them; only the serial weave replay calls into this package, in
// deterministic (t, core, seq) order, so reservation state stays
// identical at any weave worker count.
package dram

import (
	"encoding/binary"
	"fmt"

	"graphmem/internal/mem"
)

// Config describes one DRAM channel's geometry and timing.
type Config struct {
	// Banks is the number of banks in the channel.
	Banks int
	// RowBytes is the row-buffer size in bytes.
	RowBytes uint64
	// TRP, TRCD, TCAS are the precharge / activate / column timings in
	// DRAM cycles.
	TRP, TRCD, TCAS int64
	// BurstCycles is the data-bus occupancy of one 64 B transfer in
	// DRAM cycles (BL8 on a 64-bit bus = 4 cycles).
	BurstCycles int64
	// CPUFreqMHz and BusFreqMHz set the clock-domain conversion from
	// DRAM cycles to CPU cycles.
	CPUFreqMHz, BusFreqMHz float64
}

// DefaultConfig returns the Table I DRAM configuration.
func DefaultConfig() Config {
	return Config{
		Banks:       16,
		RowBytes:    8192,
		TRP:         24,
		TRCD:        24,
		TCAS:        24,
		BurstCycles: 4,
		CPUFreqMHz:  2166,
		BusFreqMHz:  1466.5,
	}
}

// Stats counts channel activity.
type Stats struct {
	Reads, Writes       int64
	RowHits, RowMisses  int64
	RowConflicts        int64 // misses that also required a precharge
	BusyCycles          int64 // CPU cycles of data-bus occupancy
	TotalServiceLatency int64 // CPU cycles from arrival to completion, reads only
}

type bank struct {
	openRow  int64 // -1 when precharged
	readyAt  int64 // CPU cycle at which the bank can accept a command
	lastUsed int64
}

// Channel is one DRAM channel with private banks and a data bus.
type Channel struct {
	cfg      Config
	ratio    float64 // CPU cycles per DRAM cycle
	banks    []bank
	busFree  int64 // CPU cycle at which the data bus is next free
	rowShift uint  // log2(RowBytes)
	Stats    Stats
	// agg, when non-nil, receives every counter increment so the owning
	// Memory's TotalStats is O(1) instead of a per-call sum over the
	// full channel geometry (the epoch sampler reads it per sample).
	agg *Stats
	// tap, when non-nil, receives every read's service latency and
	// row-buffer outcome (the flight-recorder hook; see mem.Tap).
	// Attached for the measurement window only; the disabled cost is
	// one interface nil-check per read.
	tap mem.Tap
}

// NewChannel builds a channel from cfg.
func NewChannel(cfg Config) *Channel {
	if cfg.Banks <= 0 || cfg.RowBytes == 0 {
		panic("dram: invalid config")
	}
	shift := uint(0)
	for (uint64(1) << shift) < cfg.RowBytes {
		shift++
	}
	if uint64(1)<<shift != cfg.RowBytes {
		panic("dram: RowBytes must be a power of two")
	}
	ch := &Channel{
		cfg:      cfg,
		ratio:    cfg.CPUFreqMHz / cfg.BusFreqMHz,
		banks:    make([]bank, cfg.Banks),
		rowShift: shift,
	}
	for i := range ch.banks {
		ch.banks[i].openRow = -1
	}
	return ch
}

// cpuCycles converts DRAM cycles to CPU cycles, rounding up.
func (c *Channel) cpuCycles(dramCycles int64) int64 {
	v := float64(dramCycles) * c.ratio
	n := int64(v)
	if float64(n) < v {
		n++
	}
	return n
}

// mapAddr splits a block address into (bank, row). Consecutive blocks
// fill a row before moving to the next bank (row:bank:column order), so
// streaming accesses enjoy row-buffer hits while random accesses spread
// over banks.
func (c *Channel) mapAddr(blk mem.BlockAddr) (bankIdx int, row int64) {
	blocksPerRow := c.cfg.RowBytes >> mem.BlockBits
	colStripped := uint64(blk) / blocksPerRow
	bankIdx = int(colStripped % uint64(c.cfg.Banks))
	row = int64(colStripped / uint64(c.cfg.Banks))
	return bankIdx, row
}

// Access serves a 64 B transfer for blk arriving at CPU cycle now and
// returns the completion time.
//
// Writes are absorbed by the controller's write buffer and drained
// eagerly off the critical path: they are counted (and they still make
// the target row the open one, modelling drain-time activations) but
// they do not reserve bank or bus time. Without this, write-back
// requests — which the cache model issues at fill-completion
// timestamps, later than the demand clock — would poison the bank
// ready-times for demand reads issued in between, a known artefact of
// call-order timestamp-reservation models.
func (c *Channel) Access(blk mem.BlockAddr, write bool, now int64) int64 {
	bankIdx, row := c.mapAddr(blk)
	b := &c.banks[bankIdx]

	if write {
		c.Stats.Writes++
		if c.agg != nil {
			c.agg.Writes++
		}
		b.openRow = row
		return now
	}

	start := now
	if b.readyAt > start {
		start = b.readyAt
	}

	var cmdCycles int64
	var hit, conflict bool
	switch {
	case b.openRow == row:
		// Row-buffer hit: column access only.
		cmdCycles = c.cfg.TCAS
		c.Stats.RowHits++
		hit = true
	case b.openRow < 0:
		// Bank precharged: activate + column access.
		cmdCycles = c.cfg.TRCD + c.cfg.TCAS
		c.Stats.RowMisses++
	default:
		// Row conflict: precharge + activate + column access.
		cmdCycles = c.cfg.TRP + c.cfg.TRCD + c.cfg.TCAS
		c.Stats.RowMisses++
		c.Stats.RowConflicts++
		conflict = true
	}
	b.openRow = row

	dataStart := start + c.cpuCycles(cmdCycles)
	if c.busFree > dataStart {
		dataStart = c.busFree
	}
	burst := c.cpuCycles(c.cfg.BurstCycles)
	done := dataStart + burst
	c.busFree = done
	b.readyAt = dataStart // next command can overlap the burst
	b.lastUsed = now
	c.Stats.BusyCycles += burst

	c.Stats.Reads++
	c.Stats.TotalServiceLatency += done - now
	if c.tap != nil {
		c.tap.DRAMRead(done-now, hit, conflict)
	}
	if c.agg != nil {
		if hit {
			c.agg.RowHits++
		} else {
			c.agg.RowMisses++
			if conflict {
				c.agg.RowConflicts++
			}
		}
		c.agg.BusyCycles += burst
		c.agg.Reads++
		c.agg.TotalServiceLatency += done - now
	}
	return done
}

// MinLatency returns the unloaded row-hit latency in CPU cycles, i.e.
// the floor any DRAM access pays.
func (c *Channel) MinLatency() int64 {
	return c.cpuCycles(c.cfg.TCAS) + c.cpuCycles(c.cfg.BurstCycles)
}

// SetTap attaches (nil detaches) the flight-recorder read hook.
func (c *Channel) SetTap(t mem.Tap) { c.tap = t }

// BusyBanks counts banks with a command reservation extending past
// time now — the occupancy sampler's bank-pressure signal. Pure read.
func (c *Channel) BusyBanks(now int64) int {
	n := 0
	for i := range c.banks {
		if c.banks[i].readyAt > now {
			n++
		}
	}
	return n
}

// BusBacklog returns how far the data-bus reservation extends past
// time now, in CPU cycles (0 when the bus is free). Pure read.
func (c *Channel) BusBacklog(now int64) int64 {
	if c.busFree > now {
		return c.busFree - now
	}
	return 0
}

// RowHitRate returns the fraction of accesses that hit an open row.
func (c *Channel) RowHitRate() float64 {
	t := c.Stats.RowHits + c.Stats.RowMisses
	if t == 0 {
		return 0
	}
	return float64(c.Stats.RowHits) / float64(t)
}

// AvgReadLatency returns the mean read service latency in CPU cycles.
func (c *Channel) AvgReadLatency() float64 {
	if c.Stats.Reads == 0 {
		return 0
	}
	return float64(c.Stats.TotalServiceLatency) / float64(c.Stats.Reads)
}

// Memory is the memory controller: one or more channels with block
// addresses interleaved across them.
type Memory struct {
	channels []*Channel
	// total is maintained incrementally by the channels (see
	// Channel.agg) so TotalStats stays O(1) under high-frequency epoch
	// sampling regardless of channel/bank geometry.
	total Stats
}

// NewMemory creates n identically configured channels.
func NewMemory(cfg Config, n int) *Memory {
	if n <= 0 {
		panic("dram: need at least one channel")
	}
	m := &Memory{}
	for i := 0; i < n; i++ {
		ch := NewChannel(cfg)
		ch.agg = &m.total
		m.channels = append(m.channels, ch)
	}
	return m
}

// Access routes blk to its channel and serves it.
func (m *Memory) Access(blk mem.BlockAddr, write bool, now int64) int64 {
	return m.channels[uint64(blk)%uint64(len(m.channels))].Access(blk, write, now)
}

// MinLatency returns the unloaded row-hit latency in CPU cycles.
func (m *Memory) MinLatency() int64 { return m.channels[0].MinLatency() }

// Channels exposes the per-channel state for stats reporting.
func (m *Memory) Channels() []*Channel { return m.channels }

// TotalStats returns the incrementally maintained sum over all
// channels in O(1).
func (m *Memory) TotalStats() Stats { return m.total }

// SetTap attaches (nil detaches) the flight-recorder read hook on
// every channel.
func (m *Memory) SetTap(t mem.Tap) {
	for _, c := range m.channels {
		c.SetTap(t)
	}
}

// BusyBanks counts banks across all channels with a command
// reservation extending past time now. Pure read.
func (m *Memory) BusyBanks(now int64) int {
	n := 0
	for _, c := range m.channels {
		n += c.BusyBanks(now)
	}
	return n
}

// BusBacklog returns the largest per-channel data-bus backlog past
// time now, in CPU cycles. Pure read.
func (m *Memory) BusBacklog(now int64) int64 {
	var worst int64
	for _, c := range m.channels {
		if b := c.BusBacklog(now); b > worst {
			worst = b
		}
	}
	return worst
}

// WarmTouch updates the row-buffer state for blk without timing or
// statistics — the functional-warming fast path of the sampling engine
// (internal/sample). It performs exactly the state transition a real
// access would leave behind (the target row becomes the open one) so a
// detailed sample starting after warming sees the row-buffer locality a
// full detailed run would have produced.
func (c *Channel) WarmTouch(blk mem.BlockAddr) {
	bankIdx, row := c.mapAddr(blk)
	c.banks[bankIdx].openRow = row
}

// EncodeState appends the channel's warm-relevant state — the per-bank
// open rows — to buf. Timing reservations (readyAt, busFree) are
// deliberately excluded: functional warming never advances them, so
// after a warm-up they are exactly zero and need no serialization.
func (c *Channel) EncodeState(buf []byte) []byte {
	for i := range c.banks {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(c.banks[i].openRow))
	}
	return buf
}

// DecodeState restores state written by EncodeState and returns the
// remaining bytes.
func (c *Channel) DecodeState(data []byte) ([]byte, error) {
	need := 8 * len(c.banks)
	if len(data) < need {
		return nil, fmt.Errorf("dram: checkpoint truncated: need %d bytes, have %d", need, len(data))
	}
	for i := range c.banks {
		c.banks[i].openRow = int64(binary.LittleEndian.Uint64(data[8*i:]))
	}
	return data[need:], nil
}

// WarmTouch routes blk to its channel and updates row state only.
func (m *Memory) WarmTouch(blk mem.BlockAddr) {
	m.channels[uint64(blk)%uint64(len(m.channels))].WarmTouch(blk)
}

// EncodeState appends all channels' warm state to buf.
func (m *Memory) EncodeState(buf []byte) []byte {
	for _, c := range m.channels {
		buf = c.EncodeState(buf)
	}
	return buf
}

// DecodeState restores all channels' warm state.
func (m *Memory) DecodeState(data []byte) ([]byte, error) {
	var err error
	for _, c := range m.channels {
		if data, err = c.DecodeState(data); err != nil {
			return nil, err
		}
	}
	return data, nil
}
