package dram

import (
	"testing"
	"testing/quick"

	"graphmem/internal/mem"
)

func TestCPUCycleConversion(t *testing.T) {
	c := NewChannel(DefaultConfig())
	// ratio = 2166/1466.5 ~ 1.477; 24 DRAM cycles -> ceil(35.45) = 36.
	if got := c.cpuCycles(24); got != 36 {
		t.Errorf("cpuCycles(24) = %d, want 36", got)
	}
	if got := c.cpuCycles(0); got != 0 {
		t.Errorf("cpuCycles(0) = %d", got)
	}
}

func TestMinLatency(t *testing.T) {
	c := NewChannel(DefaultConfig())
	// tCAS (36 CPU cy) + burst (ceil(4*1.477)=6).
	if got := c.MinLatency(); got != 42 {
		t.Errorf("MinLatency = %d, want 42", got)
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	c := NewChannel(DefaultConfig())
	t0 := c.Access(0, false, 0)
	// Same row, later arrival: should be a row hit and cheaper.
	t1 := c.Access(1, false, t0)
	hitLat := t1 - t0
	// Far block in the same bank, different row: row conflict.
	blocksPerRow := int64(DefaultConfig().RowBytes >> mem.BlockBits)
	banks := int64(DefaultConfig().Banks)
	far := mem.BlockAddr(blocksPerRow * banks * 1000)
	// Verify it maps to bank 0 like block 0.
	if b, _ := c.mapAddr(far); b != 0 {
		t.Fatalf("test bug: far block maps to bank %d", b)
	}
	t2 := c.Access(far, false, t1)
	missLat := t2 - t1
	if hitLat >= missLat {
		t.Errorf("row hit (%d) not faster than row conflict (%d)", hitLat, missLat)
	}
	if c.Stats.RowHits != 1 || c.Stats.RowMisses != 2 || c.Stats.RowConflicts != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestFirstAccessIsActivateNotConflict(t *testing.T) {
	c := NewChannel(DefaultConfig())
	c.Access(0, false, 0)
	if c.Stats.RowConflicts != 0 {
		t.Error("first access should not be a conflict")
	}
	if c.Stats.RowMisses != 1 {
		t.Errorf("RowMisses = %d", c.Stats.RowMisses)
	}
}

func TestBankQueueing(t *testing.T) {
	c := NewChannel(DefaultConfig())
	blocksPerRow := int64(DefaultConfig().RowBytes >> mem.BlockBits)
	banks := int64(DefaultConfig().Banks)
	// Two back-to-back conflicting requests to the same bank, different
	// rows, both arriving at time 0: the second must queue.
	a := mem.BlockAddr(0)
	b := mem.BlockAddr(blocksPerRow * banks)
	tA := c.Access(a, false, 0)
	tB := c.Access(b, false, 0)
	if tB <= tA {
		t.Errorf("queued conflicting request finished at %d, first at %d", tB, tA)
	}
}

func TestBankParallelism(t *testing.T) {
	c := NewChannel(DefaultConfig())
	blocksPerRow := int64(DefaultConfig().RowBytes >> mem.BlockBits)
	// Same arrival, different banks: completion should be much closer
	// than serial execution because only the burst serializes.
	t0 := c.Access(0, false, 0)
	t1 := c.Access(mem.BlockAddr(blocksPerRow), false, 0) // bank 1
	serial := 2 * t0
	if t1 >= serial {
		t.Errorf("bank-parallel access took %d, serial would be %d", t1, serial)
	}
	burst := c.cpuCycles(DefaultConfig().BurstCycles)
	if t1 != t0+burst {
		t.Errorf("second bank completion %d, want %d (bus-serialized)", t1, t0+burst)
	}
}

func TestDataBusSerializesRowHits(t *testing.T) {
	c := NewChannel(DefaultConfig())
	burst := c.cpuCycles(DefaultConfig().BurstCycles)
	t0 := c.Access(0, false, 0)
	t1 := c.Access(1, false, 0) // row hit, same arrival
	if t1-t0 < burst {
		t.Errorf("bursts overlap: %d then %d", t0, t1)
	}
}

func TestWriteStats(t *testing.T) {
	c := NewChannel(DefaultConfig())
	c.Access(0, true, 0)
	c.Access(1, false, 100)
	if c.Stats.Writes != 1 || c.Stats.Reads != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
	if c.Stats.TotalServiceLatency <= 0 {
		t.Error("read latency not accumulated")
	}
}

func TestRowHitRateAndAvgLatency(t *testing.T) {
	c := NewChannel(DefaultConfig())
	now := int64(0)
	for i := 0; i < 10; i++ {
		now = c.Access(mem.BlockAddr(i), false, now)
	}
	if got := c.RowHitRate(); got != 0.9 {
		t.Errorf("RowHitRate = %g, want 0.9", got)
	}
	if c.AvgReadLatency() <= 0 {
		t.Error("AvgReadLatency should be positive")
	}
}

func TestCompletionMonotoneWithArrival(t *testing.T) {
	// Later arrival never completes earlier, for any address pattern.
	f := func(blocks []uint32) bool {
		c := NewChannel(DefaultConfig())
		var lastDone, now int64
		for _, b := range blocks {
			done := c.Access(mem.BlockAddr(b), false, now)
			if done < now {
				return false
			}
			if done < lastDone {
				// Bus serialization must keep completions ordered for
				// non-decreasing arrivals.
				return false
			}
			lastDone = done
			now += 3
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMemoryChannelInterleave(t *testing.T) {
	m := NewMemory(DefaultConfig(), 2)
	m.Access(0, false, 0) // channel 0
	m.Access(1, false, 0) // channel 1
	m.Access(2, false, 0) // channel 0
	chans := m.Channels()
	if chans[0].Stats.Reads != 2 || chans[1].Stats.Reads != 1 {
		t.Errorf("channel reads: %d, %d", chans[0].Stats.Reads, chans[1].Stats.Reads)
	}
	ts := m.TotalStats()
	if ts.Reads != 3 {
		t.Errorf("TotalStats.Reads = %d", ts.Reads)
	}
}

func TestStreamingEnjoysRowHits(t *testing.T) {
	c := NewChannel(DefaultConfig())
	now := int64(0)
	n := 1000
	for i := 0; i < n; i++ {
		done := c.Access(mem.BlockAddr(i), false, now)
		now = done + 10
	}
	if c.RowHitRate() < 0.95 {
		t.Errorf("streaming row hit rate %.2f too low", c.RowHitRate())
	}
}

func TestRandomPatternMissesRows(t *testing.T) {
	c := NewChannel(DefaultConfig())
	now := int64(0)
	// Jump a prime stride large enough to change rows every access.
	blk := mem.BlockAddr(0)
	for i := 0; i < 1000; i++ {
		blk += 104729 // prime > blocksPerRow*banks
		done := c.Access(blk, false, now)
		now = done + 10
	}
	if c.RowHitRate() > 0.2 {
		t.Errorf("random row hit rate %.2f too high", c.RowHitRate())
	}
}
