package dram

import (
	"testing"

	"graphmem/internal/mem"
)

// FuzzDRAMTiming drives one Table I channel with an arbitrary access
// stream and checks it against an independent row-state mirror plus the
// model's timing contracts:
//
//   - every read completes no earlier than now + MinLatency();
//   - writes are absorbed at now (posted write buffer);
//   - the hit/miss/conflict classification of every read matches a
//     reference that tracks only per-bank open rows (recomputing the
//     address mapping from the config);
//   - counter identities: RowHits+RowMisses == Reads, RowConflicts <=
//     RowMisses, BusyCycles == Reads * burst.
func FuzzDRAMTiming(f *testing.F) {
	f.Add([]byte{0x00, 0x00, 0x00, 0x40, 0x00, 0x02, 0x80, 0x00, 0x04, 0x00, 0x20, 0x07})
	f.Add([]byte("\x00\x00\x00\x01\x00\x00\x02\x00\x01\x03\x00\x00"))
	f.Add([]byte{0xff, 0xff, 0x09, 0x00, 0x00, 0x06, 0xff, 0xff, 0x03})
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := DefaultConfig()
		ch := NewChannel(cfg)
		burst := ch.cpuCycles(cfg.BurstCycles)

		// Reference address mapping and row state, derived from the
		// config alone (row:bank:column order, like mapAddr).
		blocksPerRow := cfg.RowBytes >> mem.BlockBits
		openRow := make([]int64, cfg.Banks)
		for i := range openRow {
			openRow[i] = -1
		}
		var wantHits, wantMisses, wantConflicts int64

		now := int64(0)
		for i := 0; i+2 < len(data); i += 3 {
			blk := mem.BlockAddr(uint64(data[i]) | uint64(data[i+1])<<8)
			write := data[i+2]&1 != 0
			now += int64(data[i+2] >> 1)

			col := uint64(blk) / blocksPerRow
			bankIdx := int(col % uint64(cfg.Banks))
			row := int64(col / uint64(cfg.Banks))

			done := ch.Access(blk, write, now)
			if write {
				if done != now {
					t.Fatalf("op %d: posted write completed at %d, issued at %d", i, done, now)
				}
			} else {
				if done < now+ch.MinLatency() {
					t.Fatalf("op %d: read done at %d, floor is %d", i, done, now+ch.MinLatency())
				}
				switch {
				case openRow[bankIdx] == row:
					wantHits++
				case openRow[bankIdx] < 0:
					wantMisses++
				default:
					wantMisses++
					wantConflicts++
				}
			}
			openRow[bankIdx] = row

			s := ch.Stats
			if s.RowHits != wantHits || s.RowMisses != wantMisses || s.RowConflicts != wantConflicts {
				t.Fatalf("op %d: classification {hits %d misses %d conflicts %d}, reference says {%d %d %d}",
					i, s.RowHits, s.RowMisses, s.RowConflicts, wantHits, wantMisses, wantConflicts)
			}
			if s.RowHits+s.RowMisses != s.Reads {
				t.Fatalf("op %d: RowHits+RowMisses = %d, Reads = %d", i, s.RowHits+s.RowMisses, s.Reads)
			}
			if s.BusyCycles != s.Reads*burst {
				t.Fatalf("op %d: BusyCycles %d, want Reads*burst = %d", i, s.BusyCycles, s.Reads*burst)
			}
		}
	})
}
