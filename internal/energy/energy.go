// Package energy reproduces the power analysis of Section V-E: the
// paper reports CACTI-derived per-access energies for the proposed
// structures (LP reads/writes 0.010/0.015 nJ, SDCDir 0.014/0.019 nJ,
// SDC 0.026/0.034 nJ, LP leakage < 10 mW) and argues the additions are
// negligible against the hierarchy they relieve. This package combines
// those constants with standard per-access energies for the rest of
// the memory system and integrates them over a simulation's event
// counts, yielding a per-run dynamic-energy breakdown.
//
// The non-SDC constants are representative 22 nm values of the kind
// CACTI produces for the Table I geometries; they are inputs to the
// model, not re-derivations (see DESIGN.md's substitution table).
package energy

import (
	"fmt"
	"sort"

	"graphmem/internal/stats"
)

// PerAccess holds one structure's read/write energies in nanojoules.
type PerAccess struct {
	ReadNJ, WriteNJ float64
}

// Model maps structures to per-access energies.
type Model struct {
	L1D    PerAccess
	SDC    PerAccess
	LP     PerAccess
	SDCDir PerAccess
	L2     PerAccess
	LLC    PerAccess
	DRAM   PerAccess
	TLB    PerAccess
}

// Paper22nm returns the model with the Section V-E constants for the
// proposed structures and representative 22 nm CACTI-class values for
// the conventional hierarchy.
func Paper22nm() Model {
	return Model{
		// Conventional hierarchy (representative CACTI 22 nm values
		// for the Table I geometries).
		L1D: PerAccess{ReadNJ: 0.045, WriteNJ: 0.055},
		L2:  PerAccess{ReadNJ: 0.18, WriteNJ: 0.22},
		LLC: PerAccess{ReadNJ: 0.45, WriteNJ: 0.55},
		TLB: PerAccess{ReadNJ: 0.004, WriteNJ: 0.006},
		// DRAM energy per 64 B access (activation+IO amortized).
		DRAM: PerAccess{ReadNJ: 15, WriteNJ: 15},
		// Section V-E constants.
		SDC:    PerAccess{ReadNJ: 0.026, WriteNJ: 0.034},
		LP:     PerAccess{ReadNJ: 0.010, WriteNJ: 0.015},
		SDCDir: PerAccess{ReadNJ: 0.014, WriteNJ: 0.019},
	}
}

// Component is one row of a breakdown.
type Component struct {
	Name string
	// Events is the number of accesses charged.
	Events int64
	// NJ is the total dynamic energy in nanojoules.
	NJ float64
}

// Breakdown is a run's dynamic-energy estimate.
type Breakdown struct {
	Components []Component
	TotalNJ    float64
	// Instructions normalizes the EnergyPerKiloInstr metric.
	Instructions int64
}

// EnergyPerKiloInstrNJ returns nJ per thousand instructions.
func (b *Breakdown) EnergyPerKiloInstrNJ() float64 {
	if b.Instructions == 0 {
		return 0
	}
	return b.TotalNJ * 1000 / float64(b.Instructions)
}

// Of returns a named component's energy (0 if absent).
func (b *Breakdown) Of(name string) float64 {
	for _, c := range b.Components {
		if c.Name == name {
			return c.NJ
		}
	}
	return 0
}

// String renders the breakdown, largest consumers first.
func (b *Breakdown) String() string {
	out := fmt.Sprintf("dynamic energy: %.1f uJ (%.1f nJ/kilo-instr)\n",
		b.TotalNJ/1000, b.EnergyPerKiloInstrNJ())
	comps := append([]Component(nil), b.Components...)
	sort.Slice(comps, func(i, j int) bool { return comps[i].NJ > comps[j].NJ })
	for _, c := range comps {
		pct := 0.0
		if b.TotalNJ > 0 {
			pct = 100 * c.NJ / b.TotalNJ
		}
		out += fmt.Sprintf("  %-7s %12d events %10.1f nJ (%4.1f%%)\n", c.Name, c.Events, c.NJ, pct)
	}
	return out
}

// Integrate charges a measurement window's event counts against the
// model. Lookups are charged as reads; fills/write-backs as writes;
// every demand access also pays an LP read plus an LP write (the
// predictor is consulted and updated per access) when lpActive.
func Integrate(m Model, s *stats.CoreStats, lpActive bool) *Breakdown {
	b := &Breakdown{Instructions: s.Instructions}
	add := func(name string, reads, writes int64, pa PerAccess) {
		nj := float64(reads)*pa.ReadNJ + float64(writes)*pa.WriteNJ
		b.Components = append(b.Components, Component{Name: name, Events: reads + writes, NJ: nj})
		b.TotalNJ += nj
	}
	// Cache lookups (hits+misses) as reads; fills approximated by
	// misses+prefetches, write-backs as writes.
	add("L1D", s.L1D.Accesses(), s.L1D.Misses+s.L1D.Prefetches+s.L1D.Writebacks, m.L1D)
	add("L2C", s.L2.Accesses()+s.L2.PFHits+s.L2.PFMisses, s.L2.Misses+s.L2.Prefetches+s.L2.Writebacks, m.L2)
	add("LLC", s.LLC.Accesses()+s.LLC.PFHits+s.LLC.PFMisses, s.LLC.Misses+s.LLC.Writebacks, m.LLC)
	add("TLB", s.DTLB.Accesses()+s.STLB.Accesses(), s.DTLB.Misses+s.STLB.Misses, m.TLB)
	add("DRAM", s.DRAMReads, s.DRAMWrites, m.DRAM)
	if s.SDC.Accesses() > 0 {
		add("SDC", s.SDC.Accesses(), s.SDC.Misses+s.SDC.Prefetches+s.SDC.Writebacks, m.SDC)
	}
	if lpActive {
		routed := s.LPPredAverse + s.LPPredFriendly + s.LPTableMisses
		add("LP", routed, routed, m.LP)
	}
	if s.SDCDirLookups > 0 {
		add("SDCDir", s.SDCDirLookups, s.SDCDirEvictions, m.SDCDir)
	}
	return b
}
