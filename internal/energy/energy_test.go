package energy

import (
	"math"
	"strings"
	"testing"

	"graphmem/internal/stats"
)

func sampleStats() *stats.CoreStats {
	s := &stats.CoreStats{Instructions: 1_000_000}
	s.L1D = stats.CacheStats{Hits: 300_000, Misses: 50_000, Prefetches: 10_000, Writebacks: 5_000}
	s.L2 = stats.CacheStats{Hits: 20_000, Misses: 30_000, Writebacks: 4_000}
	s.LLC = stats.CacheStats{Hits: 5_000, Misses: 25_000, Writebacks: 3_000}
	s.DTLB = stats.CacheStats{Hits: 340_000, Misses: 10_000}
	s.STLB = stats.CacheStats{Hits: 9_000, Misses: 1_000}
	s.DRAMReads = 30_000
	s.DRAMWrites = 8_000
	return s
}

func TestIntegrateBaseline(t *testing.T) {
	b := Integrate(Paper22nm(), sampleStats(), false)
	if b.TotalNJ <= 0 {
		t.Fatal("no energy accumulated")
	}
	if b.Of("SDC") != 0 || b.Of("LP") != 0 || b.Of("SDCDir") != 0 {
		t.Error("baseline charged for SDC structures")
	}
	// DRAM dominates graph workloads.
	if b.Of("DRAM") < b.Of("L1D") {
		t.Error("DRAM should dominate the breakdown")
	}
	if b.EnergyPerKiloInstrNJ() <= 0 {
		t.Error("per-kilo-instruction energy missing")
	}
}

func TestIntegrateSDCLPChargesProposal(t *testing.T) {
	s := sampleStats()
	s.SDC = stats.CacheStats{Hits: 40_000, Misses: 100_000, Writebacks: 9_000}
	s.LPPredAverse = 140_000
	s.LPPredFriendly = 350_000
	s.LPTableMisses = 1_000
	s.SDCDirLookups = 150_000
	s.SDCDirEvictions = 2_000
	b := Integrate(Paper22nm(), s, true)
	if b.Of("SDC") == 0 || b.Of("LP") == 0 || b.Of("SDCDir") == 0 {
		t.Fatal("proposal structures not charged")
	}
	// Section V-E's point: the additions are tiny vs the hierarchy.
	proposal := b.Of("SDC") + b.Of("LP") + b.Of("SDCDir")
	if proposal > 0.05*b.TotalNJ {
		t.Errorf("proposal energy %.1f nJ is %.1f%% of total; paper argues negligible",
			proposal, 100*proposal/b.TotalNJ)
	}
	// LP energy arithmetic: (reads+writes) * (0.010+0.015) over routed.
	routed := float64(s.LPPredAverse + s.LPPredFriendly + s.LPTableMisses)
	want := routed * (0.010 + 0.015)
	if math.Abs(b.Of("LP")-want) > 1e-6 {
		t.Errorf("LP energy = %f, want %f", b.Of("LP"), want)
	}
}

func TestBreakdownString(t *testing.T) {
	b := Integrate(Paper22nm(), sampleStats(), false)
	out := b.String()
	for _, want := range []string{"dynamic energy", "DRAM", "L1D"} {
		if !strings.Contains(out, want) {
			t.Errorf("breakdown missing %q:\n%s", want, out)
		}
	}
}

func TestZeroStats(t *testing.T) {
	var s stats.CoreStats
	b := Integrate(Paper22nm(), &s, false)
	if b.TotalNJ != 0 || b.EnergyPerKiloInstrNJ() != 0 {
		t.Error("empty stats produced energy")
	}
}
