package graph

import "testing"

// BenchmarkBuildKron measures synthetic graph construction end to end
// (R-MAT edge generation plus the CSR build's per-vertex sort/dedupe);
// the harness re-runs it once per memoized graph.
func BenchmarkBuildKron(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Kron(16, 8, 42)
	}
}

// BenchmarkBuildUrand measures the uniform-random generator (cheaper
// edges, same CSR build).
func BenchmarkBuildUrand(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Urand(1<<16, 8<<16, 42)
	}
}
