package graph

import (
	"math"
	"math/rand/v2"
)

// The paper evaluates six input graphs (Table III): Web, Road, Twitter,
// Kron, Urand and Friendster. Real multi-gigabyte graphs are not
// available offline, so this file provides synthetic generators whose
// degree distribution and vertex-ID locality match each graph's family:
//
//	Web        — power-law, strong ID locality (crawl order clusters links)
//	Road       — near-planar grid, tiny degrees, huge diameter, weighted
//	Twitter    — power-law (preferential attachment), weak locality
//	Kron       — Graph500 Kronecker/R-MAT (a,b,c,d = .57,.19,.19,.05)
//	Urand      — Erdős–Rényi uniform random
//	Friendster — heavy power-law, shuffled IDs (worst locality)
//
// DESIGN.md documents this substitution. Every generator is fully
// deterministic given its seed.

func rng(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// Urand generates an Erdős–Rényi-style uniform random undirected graph
// with n vertices and approximately m undirected edges (2m directed).
func Urand(n int32, m int64, seed uint64) *Graph {
	r := rng(seed)
	edges := make([]Edge, 0, 2*m)
	for i := int64(0); i < m; i++ {
		u := int32(r.Int64N(int64(n)))
		v := int32(r.Int64N(int64(n)))
		if u == v {
			continue
		}
		edges = append(edges, Edge{Src: u, Dst: v}, Edge{Src: v, Dst: u})
	}
	return Build(n, edges, false)
}

// Kron generates a Graph500-style Kronecker (R-MAT) undirected graph
// with 2^scale vertices and approximately edgeFactor*2^scale undirected
// edges, using the canonical initiator (0.57, 0.19, 0.19, 0.05).
func Kron(scale int, edgeFactor int64, seed uint64) *Graph {
	return rmat(scale, edgeFactor, 0.57, 0.19, 0.19, seed, true)
}

// rmat samples edges from an R-MAT distribution over 2^scale vertices.
// If symmetric, each sampled edge is added in both directions.
func rmat(scale int, edgeFactor int64, a, b, c float64, seed uint64, symmetric bool) *Graph {
	n := int32(1) << scale
	m := edgeFactor * int64(n)
	r := rng(seed)
	cap64 := 2 * m
	if !symmetric {
		cap64 = m
	}
	edges := make([]Edge, 0, cap64)
	ab := a + b
	abc := a + b + c
	for i := int64(0); i < m; i++ {
		var u, v int32
		for bit := scale - 1; bit >= 0; bit-- {
			p := r.Float64()
			switch {
			case p < a:
				// top-left: no bits set
			case p < ab:
				v |= 1 << bit
			case p < abc:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		// Permute bits lightly to avoid the degenerate vertex-0 hub
		// dominating ID 0 only; Graph500 applies a random permutation.
		if u == v {
			continue
		}
		edges = append(edges, Edge{Src: u, Dst: v})
		if symmetric {
			edges = append(edges, Edge{Src: v, Dst: u})
		}
	}
	return Build(n, edges, false)
}

// PowerLaw generates a preferential-attachment (Barabási–Albert style)
// undirected graph: each new vertex attaches outDeg edges, each endpoint
// chosen either uniformly (with probability uniform) or proportionally
// to degree by copying the endpoint of a previously generated edge. When
// shuffle is true the vertex IDs are randomly permuted afterwards,
// destroying any ID locality (the Friendster regime); otherwise the
// generation order itself provides mild locality (the Twitter regime).
func PowerLaw(n int32, outDeg int, uniform float64, shuffle bool, seed uint64) *Graph {
	r := rng(seed)
	edges := make([]Edge, 0, 2*int64(n)*int64(outDeg))
	// Seed clique over the first outDeg+1 vertices.
	seedN := int32(outDeg + 1)
	if seedN > n {
		seedN = n
	}
	for u := int32(0); u < seedN; u++ {
		for v := u + 1; v < seedN; v++ {
			edges = append(edges, Edge{Src: u, Dst: v}, Edge{Src: v, Dst: u})
		}
	}
	for u := seedN; u < n; u++ {
		for k := 0; k < outDeg; k++ {
			var v int32
			if r.Float64() < uniform || len(edges) == 0 {
				v = int32(r.Int64N(int64(u)))
			} else {
				// Copy an endpoint of an existing edge: endpoint choice
				// is degree-proportional.
				v = edges[r.Int64N(int64(len(edges)))].Dst
			}
			if v == u {
				continue
			}
			edges = append(edges, Edge{Src: u, Dst: v}, Edge{Src: v, Dst: u})
		}
	}
	if shuffle {
		perm := r.Perm(int(n))
		for i := range edges {
			edges[i].Src = int32(perm[edges[i].Src])
			edges[i].Dst = int32(perm[edges[i].Dst])
		}
	}
	return Build(n, edges, false)
}

// WebLike generates a directed power-law graph with strong vertex-ID
// locality: vertices are grouped into contiguous "hosts" and most links
// stay within a host or point to nearby hosts, mimicking crawl-ordered
// web graphs. Degrees follow a heavy tail via degree-proportional copy.
func WebLike(n int32, avgDeg int, seed uint64) *Graph {
	r := rng(seed)
	hostSize := int32(256)
	edges := make([]Edge, 0, int64(n)*int64(avgDeg))
	for u := int32(0); u < n; u++ {
		deg := 1 + r.IntN(2*avgDeg-1) // mean ~avgDeg
		host := u / hostSize
		for k := 0; k < deg; k++ {
			var v int32
			switch p := r.Float64(); {
			case p < 0.70:
				// Intra-host link: excellent locality.
				v = host*hostSize + int32(r.IntN(int(hostSize)))
			case p < 0.90:
				// Near-host link within a 16-host neighbourhood.
				base := (host - 8) * hostSize
				if base < 0 {
					base = 0
				}
				span := int64(16 * hostSize)
				if int64(base)+span > int64(n) {
					span = int64(n) - int64(base)
				}
				v = base + int32(r.Int64N(span))
			default:
				// Global link, degree-proportional when possible to
				// create hub pages.
				if len(edges) > 0 && r.Float64() < 0.5 {
					v = edges[r.Int64N(int64(len(edges)))].Dst
				} else {
					v = int32(r.Int64N(int64(n)))
				}
			}
			if v >= n {
				v = n - 1
			}
			if v != u {
				edges = append(edges, Edge{Src: u, Dst: v})
			}
		}
	}
	return Build(n, edges, false)
}

// RoadGrid generates a weighted undirected graph shaped like a road
// network: a width×height 4-neighbour lattice with a small fraction of
// diagonal shortcuts removed/added for irregularity. Edge weights are
// uniform in [1, maxW].
func RoadGrid(width, height int32, maxW int32, seed uint64) *Graph {
	r := rng(seed)
	n := width * height
	edges := make([]Edge, 0, int64(n)*4)
	id := func(x, y int32) int32 { return y*width + x }
	addBoth := func(u, v int32) {
		w := 1 + r.Int32N(maxW)
		edges = append(edges, Edge{Src: u, Dst: v, W: w}, Edge{Src: v, Dst: u, W: w})
	}
	for y := int32(0); y < height; y++ {
		for x := int32(0); x < width; x++ {
			u := id(x, y)
			// Drop ~3% of lattice edges to create irregular detours.
			if x+1 < width && r.Float64() > 0.03 {
				addBoth(u, id(x+1, y))
			}
			if y+1 < height && r.Float64() > 0.03 {
				addBoth(u, id(x, y+1))
			}
			// Rare longer-range "highway" edge.
			if r.Float64() < 0.005 {
				dx := int32(r.IntN(16)) - 8
				dy := int32(r.IntN(16)) - 8
				nx, ny := x+dx, y+dy
				if nx >= 0 && nx < width && ny >= 0 && ny < height && id(nx, ny) != u {
					addBoth(u, id(nx, ny))
				}
			}
		}
	}
	return Build(n, edges, true)
}

// AddUnitWeights returns a weighted copy of g with all weights drawn
// uniformly from [1, maxW]; used to run SSSP on unweighted inputs, as
// GAP does.
func AddUnitWeights(g *Graph, maxW int32, seed uint64) *Graph {
	r := rng(seed)
	w := make([]int32, len(g.NA))
	for i := range w {
		w[i] = 1 + r.Int32N(maxW)
	}
	return &Graph{N: g.N, OA: g.OA, NA: g.NA, W: w}
}

// DegreeHistogram returns counts of out-degrees bucketed by power of
// two: bucket i counts vertices with degree in [2^i, 2^(i+1)). Bucket 0
// includes degree 0 and 1.
func DegreeHistogram(g *Graph) []int64 {
	var buckets []int64
	for u := int32(0); u < g.N; u++ {
		d := g.Degree(u)
		b := 0
		if d > 1 {
			b = int(math.Log2(float64(d)))
		}
		for len(buckets) <= b {
			buckets = append(buckets, 0)
		}
		buckets[b]++
	}
	return buckets
}
