// Package graph implements the sparse-graph substrate the workloads run
// on: a CSR/CSC representation (Section II-A of the paper), an edge-list
// builder, transposition, degree statistics, and synthetic generators
// standing in for the six input graphs of Table III.
package graph

import (
	"fmt"
	"slices"
	"sort"
)

// Graph is a directed graph in Compressed Sparse Row form. For a graph
// built from out-edges it encodes outgoing neighbors (the paper's CSR);
// its transpose encodes incoming neighbors (the paper's CSC).
//
// OA is the Offset Array (length N+1) and NA the Neighbors Array
// (length M), matching the paper's terminology. W, when non-nil, holds
// per-edge weights parallel to NA (used by SSSP).
type Graph struct {
	N  int32   // number of vertices
	OA []int64 // row offsets, len N+1
	NA []int32 // column indices, len M
	W  []int32 // optional edge weights, len M or nil

	trans *Graph // memoized transpose (see TransposeCached)
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int32 { return g.N }

// NumEdges returns the directed edge count.
func (g *Graph) NumEdges() int64 { return int64(len(g.NA)) }

// Degree returns the out-degree of vertex u.
func (g *Graph) Degree(u int32) int64 { return g.OA[u+1] - g.OA[u] }

// Neighbors returns the adjacency slice of vertex u.
func (g *Graph) Neighbors(u int32) []int32 { return g.NA[g.OA[u]:g.OA[u+1]] }

// Weights returns the edge-weight slice of vertex u; the graph must be
// weighted.
func (g *Graph) Weights(u int32) []int32 { return g.W[g.OA[u]:g.OA[u+1]] }

// Weighted reports whether the graph carries edge weights.
func (g *Graph) Weighted() bool { return g.W != nil }

// Edge is a directed edge with an optional weight.
type Edge struct {
	Src, Dst int32
	W        int32
}

// Build constructs a CSR graph over n vertices from an edge list,
// sorting adjacency lists and removing duplicate edges and self-loops.
// If weighted is true the first occurrence's weight is kept.
func Build(n int32, edges []Edge, weighted bool) *Graph {
	if n <= 0 {
		panic("graph: Build with non-positive vertex count")
	}
	// Counting sort by source for O(M) bucketing.
	counts := make([]int64, n+1)
	for _, e := range edges {
		if e.Src < 0 || e.Src >= n || e.Dst < 0 || e.Dst >= n {
			panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", e.Src, e.Dst, n))
		}
		if e.Src != e.Dst {
			counts[e.Src+1]++
		}
	}
	for i := int32(0); i < n; i++ {
		counts[i+1] += counts[i]
	}
	na := make([]int32, counts[n])
	var w []int32
	if weighted {
		w = make([]int32, counts[n])
	}
	cursor := make([]int64, n)
	copy(cursor, counts[:n])
	for _, e := range edges {
		if e.Src == e.Dst {
			continue
		}
		p := cursor[e.Src]
		na[p] = e.Dst
		if weighted {
			w[p] = e.W
		}
		cursor[e.Src]++
	}
	// Sort each adjacency list and dedupe in place.
	oa := make([]int64, n+1)
	var out int64
	for u := int32(0); u < n; u++ {
		oa[u] = out
		lo, hi := counts[u], counts[u+1]
		seg := na[lo:hi]
		if weighted {
			ws := w[lo:hi]
			sort.Sort(&edgeSorter{seg, ws})
		} else {
			// Equal int32 keys are indistinguishable, so the unstable
			// pdqsort here yields the same slice as the reflection-based
			// sort.Slice it replaced — at a fraction of the cost (Build
			// re-runs per memoized graph construction). The weighted
			// branch above must keep its exact sort: duplicate edges
			// carry distinct weights and dedupe keeps the first, so the
			// algorithm's tie order is load-bearing there.
			slices.Sort(seg)
		}
		var prev int32 = -1
		for i, v := range seg {
			if v == prev {
				continue
			}
			na[out] = v
			if weighted {
				w[out] = w[lo+int64(i)]
			}
			out++
			prev = v
		}
	}
	oa[n] = out
	g := &Graph{N: n, OA: oa, NA: na[:out]}
	if weighted {
		g.W = w[:out]
	}
	return g
}

type edgeSorter struct {
	na []int32
	w  []int32
}

func (s *edgeSorter) Len() int           { return len(s.na) }
func (s *edgeSorter) Less(i, j int) bool { return s.na[i] < s.na[j] }
func (s *edgeSorter) Swap(i, j int) {
	s.na[i], s.na[j] = s.na[j], s.na[i]
	s.w[i], s.w[j] = s.w[j], s.w[i]
}

// Transpose returns the reverse graph: the CSC view of a CSR graph. The
// paper's pull-style kernels (PR) iterate the CSC; T-OPT derives its
// next-reference information from the transpose.
func (g *Graph) Transpose() *Graph {
	counts := make([]int64, g.N+1)
	for _, v := range g.NA {
		counts[v+1]++
	}
	for i := int32(0); i < g.N; i++ {
		counts[i+1] += counts[i]
	}
	oa := make([]int64, g.N+1)
	copy(oa, counts)
	na := make([]int32, len(g.NA))
	var w []int32
	if g.Weighted() {
		w = make([]int32, len(g.NA))
	}
	cursor := make([]int64, g.N)
	copy(cursor, counts[:g.N])
	for u := int32(0); u < g.N; u++ {
		for i := g.OA[u]; i < g.OA[u+1]; i++ {
			v := g.NA[i]
			p := cursor[v]
			na[p] = u
			if w != nil {
				w[p] = g.W[i]
			}
			cursor[v]++
		}
	}
	// Adjacency lists of the transpose are automatically sorted because
	// we scan sources in increasing order.
	return &Graph{N: g.N, OA: oa, NA: na, W: w}
}

// TransposeCached returns the transpose, memoizing it on the graph so
// repeated kernel preparations on the same input (multi-core mixes)
// don't recompute it. Not safe for concurrent first use; the harness
// prepares all kernel instances before starting simulation goroutines.
func (g *Graph) TransposeCached() *Graph {
	if g.trans == nil {
		g.trans = g.Transpose()
		g.trans.trans = g
	}
	return g.trans
}

// HasEdge reports whether edge (u,v) exists, by binary search.
func (g *Graph) HasEdge(u, v int32) bool {
	adj := g.Neighbors(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// Stats summarizes a graph's shape.
type Stats struct {
	Vertices  int32
	Edges     int64
	MaxDegree int64
	AvgDegree float64
	// Zeros counts vertices with no outgoing edges.
	Zeros int32
}

// ComputeStats scans the graph once and returns its Stats.
func (g *Graph) ComputeStats() Stats {
	s := Stats{Vertices: g.N, Edges: g.NumEdges()}
	for u := int32(0); u < g.N; u++ {
		d := g.Degree(u)
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		if d == 0 {
			s.Zeros++
		}
	}
	if g.N > 0 {
		s.AvgDegree = float64(s.Edges) / float64(g.N)
	}
	return s
}

// Validate checks structural invariants (monotone offsets, in-range and
// sorted adjacency, no self loops) and returns an error describing the
// first violation.
func (g *Graph) Validate() error {
	if int32(len(g.OA)) != g.N+1 {
		return fmt.Errorf("graph: OA length %d != N+1 (%d)", len(g.OA), g.N+1)
	}
	if g.OA[0] != 0 || g.OA[g.N] != int64(len(g.NA)) {
		return fmt.Errorf("graph: OA endpoints [%d,%d] do not span NA (%d)", g.OA[0], g.OA[g.N], len(g.NA))
	}
	if g.W != nil && len(g.W) != len(g.NA) {
		return fmt.Errorf("graph: weight array length %d != NA length %d", len(g.W), len(g.NA))
	}
	for u := int32(0); u < g.N; u++ {
		if g.OA[u] > g.OA[u+1] {
			return fmt.Errorf("graph: OA not monotone at %d", u)
		}
		var prev int32 = -1
		for i := g.OA[u]; i < g.OA[u+1]; i++ {
			v := g.NA[i]
			if v < 0 || v >= g.N {
				return fmt.Errorf("graph: neighbor %d of %d out of range", v, u)
			}
			if v == u {
				return fmt.Errorf("graph: self loop at %d", u)
			}
			if v <= prev {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted", u)
			}
			prev = v
		}
	}
	return nil
}
