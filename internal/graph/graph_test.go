package graph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// tiny builds the example graph used throughout unit tests:
//
//	0 -> 1, 2
//	1 -> 2
//	2 -> 0
//	3 -> 1
func tiny() *Graph {
	return Build(4, []Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2},
		{Src: 1, Dst: 2},
		{Src: 2, Dst: 0},
		{Src: 3, Dst: 1},
	}, false)
}

func TestBuildBasics(t *testing.T) {
	g := tiny()
	if g.NumVertices() != 4 {
		t.Fatalf("N = %d", g.NumVertices())
	}
	if g.NumEdges() != 5 {
		t.Fatalf("M = %d", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	wantAdj := [][]int32{{1, 2}, {2}, {0}, {1}}
	for u, want := range wantAdj {
		got := g.Neighbors(int32(u))
		if len(got) != len(want) {
			t.Fatalf("Neighbors(%d) = %v, want %v", u, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Neighbors(%d) = %v, want %v", u, got, want)
			}
		}
	}
}

func TestBuildDedupesAndDropsSelfLoops(t *testing.T) {
	g := Build(3, []Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 1}, {Src: 0, Dst: 1},
		{Src: 1, Dst: 1}, // self loop
		{Src: 2, Dst: 0}, {Src: 2, Dst: 1}, {Src: 2, Dst: 0},
	}, false)
	if g.NumEdges() != 3 {
		t.Fatalf("M = %d, want 3", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildWeightedKeepsWeights(t *testing.T) {
	g := Build(3, []Edge{
		{Src: 0, Dst: 2, W: 7},
		{Src: 0, Dst: 1, W: 3},
	}, true)
	if !g.Weighted() {
		t.Fatal("graph should be weighted")
	}
	adj, ws := g.Neighbors(0), g.Weights(0)
	if adj[0] != 1 || ws[0] != 3 || adj[1] != 2 || ws[1] != 7 {
		t.Fatalf("adj=%v ws=%v", adj, ws)
	}
}

func TestHasEdge(t *testing.T) {
	g := tiny()
	cases := []struct {
		u, v int32
		want bool
	}{
		{0, 1, true}, {0, 2, true}, {1, 2, true}, {2, 0, true}, {3, 1, true},
		{1, 0, false}, {0, 3, false}, {2, 3, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestTranspose(t *testing.T) {
	g := tiny()
	tr := g.Transpose()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.NumEdges() != g.NumEdges() {
		t.Fatalf("transpose edge count %d != %d", tr.NumEdges(), g.NumEdges())
	}
	for u := int32(0); u < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			if !tr.HasEdge(v, u) {
				t.Errorf("transpose missing edge (%d,%d)", v, u)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		g := Urand(50, 120, seed)
		tt := g.Transpose().Transpose()
		if tt.N != g.N || len(tt.NA) != len(g.NA) {
			return false
		}
		for i := range g.OA {
			if g.OA[i] != tt.OA[i] {
				return false
			}
		}
		for i := range g.NA {
			if g.NA[i] != tt.NA[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestTransposePreservesWeights(t *testing.T) {
	g := RoadGrid(8, 8, 10, 42)
	tr := g.Transpose()
	if !tr.Weighted() {
		t.Fatal("transpose lost weights")
	}
	// Weighted road graphs are symmetric with symmetric weights, so the
	// multiset of (u,v,w) must survive a transpose.
	for u := int32(0); u < g.N; u++ {
		adj, ws := g.Neighbors(u), g.Weights(u)
		for i, v := range adj {
			tadj, tws := tr.Neighbors(v), tr.Weights(v)
			found := false
			for j, x := range tadj {
				if x == u && tws[j] == ws[i] {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("weighted edge (%d,%d,%d) missing from transpose", u, v, ws[i])
			}
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := tiny()
	g.NA[0] = 99
	if g.Validate() == nil {
		t.Error("Validate missed out-of-range neighbor")
	}
	g = tiny()
	g.OA[1] = 5
	if g.Validate() == nil {
		t.Error("Validate missed non-monotone OA")
	}
	g = tiny()
	g.NA[0], g.NA[1] = g.NA[1], g.NA[0]
	if g.Validate() == nil {
		t.Error("Validate missed unsorted adjacency")
	}
}

func TestComputeStats(t *testing.T) {
	g := tiny()
	s := g.ComputeStats()
	if s.Vertices != 4 || s.Edges != 5 || s.MaxDegree != 2 || s.Zeros != 0 {
		t.Errorf("stats = %+v", s)
	}
	if s.AvgDegree != 1.25 {
		t.Errorf("AvgDegree = %g", s.AvgDegree)
	}
}

func TestGeneratorsProduceValidGraphs(t *testing.T) {
	gens := map[string]*Graph{
		"urand":      Urand(1000, 4000, 1),
		"kron":       Kron(10, 8, 2),
		"twitter":    PowerLaw(1000, 8, 0.2, false, 3),
		"friendster": PowerLaw(1000, 8, 0.1, true, 4),
		"web":        WebLike(1024, 8, 5),
		"road":       RoadGrid(32, 32, 255, 6),
	}
	for name, g := range gens {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if g.NumEdges() == 0 {
			t.Errorf("%s: no edges", name)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Kron(10, 8, 99)
	b := Kron(10, 8, 99)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same-seed graphs differ in edge count")
	}
	for i := range a.NA {
		if a.NA[i] != b.NA[i] {
			t.Fatal("same-seed graphs differ in adjacency")
		}
	}
	c := Kron(10, 8, 100)
	same := a.NumEdges() == c.NumEdges()
	if same {
		for i := range a.NA {
			if a.NA[i] != c.NA[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestUndirectedGeneratorsAreSymmetric(t *testing.T) {
	for name, g := range map[string]*Graph{
		"urand": Urand(500, 1500, 7),
		"kron":  Kron(9, 8, 8),
		"road":  RoadGrid(16, 16, 10, 9),
	} {
		for u := int32(0); u < g.N; u++ {
			for _, v := range g.Neighbors(u) {
				if !g.HasEdge(v, u) {
					t.Fatalf("%s: edge (%d,%d) has no reverse", name, u, v)
				}
			}
		}
	}
}

func TestPowerLawIsHeavyTailed(t *testing.T) {
	g := PowerLaw(20000, 8, 0.1, false, 11)
	s := g.ComputeStats()
	// A power-law graph must have a hub far above the average degree.
	if float64(s.MaxDegree) < 15*s.AvgDegree {
		t.Errorf("max degree %d vs avg %.1f: not heavy tailed", s.MaxDegree, s.AvgDegree)
	}
}

func TestUrandIsNotHeavyTailed(t *testing.T) {
	g := Urand(20000, 160000, 12)
	s := g.ComputeStats()
	if float64(s.MaxDegree) > 5*s.AvgDegree {
		t.Errorf("max degree %d vs avg %.1f: urand should be concentrated", s.MaxDegree, s.AvgDegree)
	}
}

func TestWebLikeHasLocality(t *testing.T) {
	g := WebLike(4096, 8, 13)
	var local, total int64
	for u := int32(0); u < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			d := int64(v) - int64(u)
			if d < 0 {
				d = -d
			}
			if d < 4096/8 {
				local++
			}
			total++
		}
	}
	if total == 0 || float64(local)/float64(total) < 0.6 {
		t.Errorf("web-like locality %.2f too low", float64(local)/float64(total))
	}
}

func TestRoadGridShape(t *testing.T) {
	g := RoadGrid(50, 40, 255, 14)
	if g.NumVertices() != 2000 {
		t.Fatalf("N = %d", g.NumVertices())
	}
	s := g.ComputeStats()
	if s.MaxDegree > 12 {
		t.Errorf("road max degree %d too high", s.MaxDegree)
	}
	if s.AvgDegree < 2 || s.AvgDegree > 5 {
		t.Errorf("road avg degree %.2f out of range", s.AvgDegree)
	}
	if !g.Weighted() {
		t.Error("road graph must be weighted")
	}
	for _, w := range g.W {
		if w < 1 || w > 255 {
			t.Fatalf("weight %d out of [1,255]", w)
		}
	}
}

func TestAddUnitWeights(t *testing.T) {
	g := Urand(100, 300, 15)
	wg := AddUnitWeights(g, 64, 16)
	if !wg.Weighted() {
		t.Fatal("AddUnitWeights did not weight the graph")
	}
	if wg.NumEdges() != g.NumEdges() {
		t.Fatal("edge count changed")
	}
	for _, w := range wg.W {
		if w < 1 || w > 64 {
			t.Fatalf("weight %d out of range", w)
		}
	}
}

func TestDegreeHistogram(t *testing.T) {
	g := tiny()
	h := DegreeHistogram(g)
	// Degrees are 2,1,1,1 -> bucket0: 3 (deg 1), bucket1: 1 (deg 2).
	if h[0] != 3 || h[1] != 1 {
		t.Errorf("histogram = %v", h)
	}
	var total int64
	for _, c := range h {
		total += c
	}
	if total != int64(g.N) {
		t.Errorf("histogram total %d != N", total)
	}
}

func TestBuildPropertyRandomEdgeLists(t *testing.T) {
	// Property: Build(validate) on arbitrary random edge lists.
	f := func(seed uint64, nRaw uint8, mRaw uint16) bool {
		n := int32(nRaw%200) + 2
		m := int(mRaw % 2000)
		r := rand.New(rand.NewPCG(seed, 1))
		edges := make([]Edge, m)
		for i := range edges {
			edges[i] = Edge{Src: int32(r.IntN(int(n))), Dst: int32(r.IntN(int(n)))}
		}
		g := Build(n, edges, false)
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
