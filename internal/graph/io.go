package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Graph I/O: the paper evaluates real graphs (Twitter, Friendster, ...)
// that are not redistributable here, but users who have them can load
// edge lists with ReadEdgeList and cache the built CSR with
// WriteBinary/ReadBinary, then run any experiment on them via the
// public API.

var graphMagic = [8]byte{'G', 'M', 'G', 'R', 'P', 'H', '0', '1'}

// WriteBinary serializes the CSR graph in a compact little-endian
// format (magic, N, M, weighted flag, OA, NA, optional W).
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(graphMagic[:]); err != nil {
		return err
	}
	var hdr [17]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(g.N))
	binary.LittleEndian.PutUint64(hdr[4:], uint64(len(g.NA)))
	if g.Weighted() {
		hdr[16] = 1
	}
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	for _, v := range g.OA {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		if _, err := bw.Write(buf[:8]); err != nil {
			return err
		}
	}
	for _, v := range g.NA {
		binary.LittleEndian.PutUint32(buf[:], uint32(v))
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
	}
	if g.Weighted() {
		for _, v := range g.W {
			binary.LittleEndian.PutUint32(buf[:], uint32(v))
			if _, err := bw.Write(buf[:4]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary and validates
// its structure.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	if magic != graphMagic {
		return nil, errors.New("graph: bad magic, not a gmgraph file")
	}
	var hdr [17]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading sizes: %w", err)
	}
	n := int32(binary.LittleEndian.Uint32(hdr[0:]))
	m := int64(binary.LittleEndian.Uint64(hdr[4:]))
	weighted := hdr[16] == 1
	if n < 0 || m < 0 {
		return nil, errors.New("graph: negative sizes")
	}
	g := &Graph{N: n, OA: make([]int64, n+1), NA: make([]int32, m)}
	var buf [8]byte
	for i := range g.OA {
		if _, err := io.ReadFull(br, buf[:8]); err != nil {
			return nil, fmt.Errorf("graph: reading OA: %w", err)
		}
		g.OA[i] = int64(binary.LittleEndian.Uint64(buf[:]))
	}
	for i := range g.NA {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return nil, fmt.Errorf("graph: reading NA: %w", err)
		}
		g.NA[i] = int32(binary.LittleEndian.Uint32(buf[:]))
	}
	if weighted {
		g.W = make([]int32, m)
		for i := range g.W {
			if _, err := io.ReadFull(br, buf[:4]); err != nil {
				return nil, fmt.Errorf("graph: reading W: %w", err)
			}
			g.W[i] = int32(binary.LittleEndian.Uint32(buf[:]))
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: corrupt file: %w", err)
	}
	return g, nil
}

// ReadEdgeList parses a whitespace-separated edge-list text stream
// ("src dst [weight]" per line; '#' and '%' lines are comments), the
// format SNAP and GAP distribute graphs in. Vertex IDs may be sparse;
// they are used as-is up to the maximum seen. If undirected is set,
// each edge is added in both directions.
func ReadEdgeList(r io.Reader, undirected bool) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	var maxID int64
	weighted := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: need at least 2 fields", lineNo)
		}
		src, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad src: %w", lineNo, err)
		}
		dst, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad dst: %w", lineNo, err)
		}
		if src < 0 || dst < 0 {
			return nil, fmt.Errorf("graph: line %d: negative vertex id", lineNo)
		}
		var w int64 = 1
		if len(fields) >= 3 {
			w, err = strconv.ParseInt(fields[2], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %w", lineNo, err)
			}
			weighted = true
		}
		if src > maxID {
			maxID = src
		}
		if dst > maxID {
			maxID = dst
		}
		edges = append(edges, Edge{Src: int32(src), Dst: int32(dst), W: int32(w)})
		if undirected {
			edges = append(edges, Edge{Src: int32(dst), Dst: int32(src), W: int32(w)})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(edges) == 0 {
		return nil, errors.New("graph: empty edge list")
	}
	return Build(int32(maxID)+1, edges, weighted), nil
}
