package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func graphsEqual(a, b *Graph) bool {
	if a.N != b.N || len(a.NA) != len(b.NA) || a.Weighted() != b.Weighted() {
		return false
	}
	for i := range a.OA {
		if a.OA[i] != b.OA[i] {
			return false
		}
	}
	for i := range a.NA {
		if a.NA[i] != b.NA[i] {
			return false
		}
	}
	if a.Weighted() {
		for i := range a.W {
			if a.W[i] != b.W[i] {
				return false
			}
		}
	}
	return true
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, g := range []*Graph{
		tiny(),
		Kron(9, 8, 5),
		RoadGrid(12, 12, 30, 6), // weighted
	} {
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !graphsEqual(g, got) {
			t.Fatal("round trip changed the graph")
		}
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := Urand(200, 700, seed)
		var buf bytes.Buffer
		if g.WriteBinary(&buf) != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		return err == nil && graphsEqual(g, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("hello world, not a graph"))); err == nil {
		t.Error("bad magic accepted")
	}
	// Truncated file.
	var buf bytes.Buffer
	g := tiny()
	g.WriteBinary(&buf)
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated file accepted")
	}
	// Corrupted adjacency (out-of-range neighbor).
	full := append([]byte(nil), buf.Bytes()...)
	full[len(full)-1] = 0x7f
	if _, err := ReadBinary(bytes.NewReader(full)); err == nil {
		t.Error("corrupt adjacency accepted")
	}
}

func TestReadEdgeList(t *testing.T) {
	in := `# comment line
% another comment
0 1
1 2
2 0

3 1
`
	g, err := ReadEdgeList(strings.NewReader(in), false)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 4 || g.NumEdges() != 4 {
		t.Fatalf("N=%d M=%d", g.N, g.NumEdges())
	}
	if g.Weighted() {
		t.Error("unweighted list produced weights")
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(3, 1) {
		t.Error("edges missing")
	}
}

func TestReadEdgeListWeightedUndirected(t *testing.T) {
	in := "0 1 5\n1 2 7\n"
	g, err := ReadEdgeList(strings.NewReader(in), true)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 4 {
		t.Fatalf("M=%d, want 4 (symmetrized)", g.NumEdges())
	}
	if !g.Weighted() {
		t.Fatal("weights dropped")
	}
	adj, ws := g.Neighbors(1), g.Weights(1)
	want := map[int32]int32{0: 5, 2: 7}
	for i, v := range adj {
		if ws[i] != want[v] {
			t.Errorf("weight(1,%d) = %d, want %d", v, ws[i], want[v])
		}
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",              // empty
		"0\n",           // too few fields
		"a b\n",         // non-numeric
		"0 -1\n",        // negative id
		"0 1 notanum\n", // bad weight
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in), false); err == nil {
			t.Errorf("input %q accepted", in)
		}
	}
}
