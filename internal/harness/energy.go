package harness

import (
	"fmt"

	"graphmem/internal/energy"
)

// EnergyResult reproduces the Section V-E power considerations: the
// dynamic-energy breakdown of Baseline vs SDC+LP runs and the share
// consumed by the proposed structures.
type EnergyResult struct {
	Workloads []WorkloadID
	// NJPerKI[cfg][w] is nJ per kilo-instruction; cfg 0 = Baseline,
	// 1 = SDC+LP.
	NJPerKI [2][]float64
	// ProposalSharePct[w] is the percent of SDC+LP energy spent in the
	// SDC + LP + SDCDir structures themselves.
	ProposalSharePct []float64
	// AvgBase, AvgSDC, AvgShare summarize.
	AvgBase, AvgSDC, AvgShare float64
}

// Energy integrates the Paper22nm model over Baseline and SDC+LP runs
// (both enqueued on the worker pool together, integrated in subset
// order).
func (wb *Workbench) Energy(subset []WorkloadID) *EnergyResult {
	if subset == nil {
		subset = AllWorkloads()
	}
	model := energy.Paper22nm()
	res := &EnergyResult{Workloads: subset}
	base := wb.BaseConfig()
	sdclp := wb.Profile.BaseConfig(1).WithSDCLP()
	rs := wb.runAll(append(jobsFor(base, subset), jobsFor(sdclp, subset)...))
	for i := range subset {
		b, s := rs[i], rs[len(subset)+i]
		eb := energy.Integrate(model, &b.Stats, false)
		es := energy.Integrate(model, &s.Stats, true)
		res.NJPerKI[0] = append(res.NJPerKI[0], eb.EnergyPerKiloInstrNJ())
		res.NJPerKI[1] = append(res.NJPerKI[1], es.EnergyPerKiloInstrNJ())
		share := 0.0
		if es.TotalNJ > 0 {
			share = 100 * (es.Of("SDC") + es.Of("LP") + es.Of("SDCDir")) / es.TotalNJ
		}
		res.ProposalSharePct = append(res.ProposalSharePct, share)
	}
	n := float64(len(subset))
	for i := range subset {
		res.AvgBase += res.NJPerKI[0][i] / n
		res.AvgSDC += res.NJPerKI[1][i] / n
		res.AvgShare += res.ProposalSharePct[i] / n
	}
	return res
}

// Table renders the result.
func (r *EnergyResult) Table() *Table {
	t := &Table{ID: "energy", Title: "Dynamic energy (Section V-E model)",
		Header: []string{"Workload", "base nJ/KI", "sdc+lp nJ/KI", "proposal share"}}
	for i, id := range r.Workloads {
		t.AddRow(id.String(),
			fmt.Sprintf("%.0f", r.NJPerKI[0][i]),
			fmt.Sprintf("%.0f", r.NJPerKI[1][i]),
			fmt.Sprintf("%.2f%%", r.ProposalSharePct[i]))
	}
	t.AddRow("average",
		fmt.Sprintf("%.0f", r.AvgBase),
		fmt.Sprintf("%.0f", r.AvgSDC),
		fmt.Sprintf("%.2f%%", r.AvgShare))
	t.Notes = append(t.Notes,
		"per-access energies: LP 0.010/0.015 nJ, SDCDir 0.014/0.019 nJ, SDC 0.026/0.034 nJ (paper Section V-E); hierarchy values are representative 22 nm CACTI-class constants")
	return t
}
