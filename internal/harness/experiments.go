package harness

import (
	"fmt"
	"strings"

	"graphmem/internal/sim"
)

// This file is the by-name experiment front door shared by cmd/gmreport
// and cmd/gmserved: one registry mapping experiment ids to workbench
// methods, plus the flag-shaped helpers (workload subsets, named
// configs) the tools used to duplicate.

// ExperimentIDs lists every experiment 'all' expands to, in report
// order. "latency" (the flight-recorder breakdown) and "prefetch" (the
// prefetcher head-to-head) are opt-in: they re-run workloads under
// non-default machine settings, so 'all' excludes them to keep the
// default sweep identical to earlier releases.
var ExperimentIDs = []string{
	"tab1", "tab2", "tab3", "tab4",
	"fig2", "fig3", "fig7", "fig8", "fig9",
	"fig10", "fig11", "fig12", "tau", "fig13", "fig14", "energy",
}

// Experiment runs one experiment by id (a member of ExperimentIDs,
// "latency", or "prefetch") on the workbench and returns its renderable
// table. A nil subset means all 36 workloads (nil picks the prefetch
// experiment's own default subset).
func (wb *Workbench) Experiment(id string, subset []WorkloadID) (*Table, error) {
	switch id {
	case "tab1":
		return wb.Tab1(), nil
	case "tab2":
		return wb.Tab2(), nil
	case "tab3":
		return wb.Tab3(), nil
	case "tab4":
		return wb.Tab4(1), nil
	case "fig2":
		return wb.Fig2(subset).Table(), nil
	case "fig3":
		id := WorkloadID{Kernel: "cc", Graph: "friendster"}
		if subset != nil {
			id = subset[0]
		}
		return wb.Fig3(id).Table(), nil
	case "fig7":
		return wb.Fig7(subset).Table(), nil
	case "fig8":
		return wb.Fig89(subset).Fig8Table(), nil
	case "fig9":
		return wb.Fig89(subset).Fig9Table(), nil
	case "fig10":
		return wb.Fig10(subset).Table(), nil
	case "fig11":
		return wb.Fig11(subset).Table(), nil
	case "fig12":
		return wb.Fig12(subset).Table(), nil
	case "tau":
		return wb.Tau(subset, nil).Table(), nil
	case "fig13":
		return wb.Fig13(subset).Table(), nil
	case "energy":
		return wb.Energy(subset).Table(), nil
	case "latency":
		return wb.LatencyBreakdown(subset).Table(), nil
	case "prefetch":
		return wb.PrefetchHeadToHead(subset).Table(), nil
	case "fig14":
		var mixes [][]WorkloadID
		if subset != nil {
			mixes = GenerateMixes(subset, wb.Profile.Mixes, 14)
		}
		return wb.Fig14(mixes).Table(), nil
	default:
		return nil, fmt.Errorf("unknown experiment %q", id)
	}
}

// SubsetWorkloads builds the workload filter from comma-separated
// kernel and graph lists ("pr,cc", "kron,urand"). Empty lists match
// everything; both empty returns nil (all 36 workloads). The match pool
// is the graph suite plus the regular (Graph "reg") stand-ins, so
// "triad"/"reg" subsets resolve too.
func SubsetWorkloads(kernelsList, graphsList string) ([]WorkloadID, error) {
	if kernelsList == "" && graphsList == "" {
		return nil, nil
	}
	want := func(list string, v string) bool {
		if list == "" {
			return true
		}
		for _, x := range strings.Split(list, ",") {
			if strings.TrimSpace(x) == v {
				return true
			}
		}
		return false
	}
	var out []WorkloadID
	for _, id := range append(AllWorkloads(), RegularWorkloads()...) {
		if want(kernelsList, id.Kernel) && want(graphsList, id.Graph) {
			out = append(out, id)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("harness: subset filter (%q, %q) matched no workloads", kernelsList, graphsList)
	}
	return out, nil
}

// ConfigByName derives a named machine configuration from the base
// (the -config flag and gmserved's "config" field).
func ConfigByName(base sim.Config, name string) (sim.Config, error) {
	switch strings.ToLower(name) {
	case "baseline", "":
		return base, nil
	case "sdclp", "sdc+lp":
		return base.WithSDCLP(), nil
	case "topt", "t-opt":
		return base.WithTOPT(), nil
	case "popt", "p-opt":
		return base.WithPOPT(), nil
	case "adaptive":
		return base.WithAdaptiveLP(), nil
	case "distill":
		return base.WithDistill(), nil
	case "l1diso", "l1d40kb":
		return base.WithBigL1D(), nil
	case "2xllc":
		return base.With2xLLC(), nil
	case "expert":
		return base.WithExpert(), nil
	case "victim":
		return base.WithVictimCache(8), nil
	case "rrip", "srrip":
		return base.WithRRIP(), nil
	case "bypass":
		return base.WithBypassOnly(), nil
	default:
		return base, fmt.Errorf("unknown config %q (baseline|sdclp|topt|popt|distill|l1diso|2xllc|expert|adaptive|victim|rrip|bypass)", name)
	}
}
