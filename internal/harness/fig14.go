package harness

import (
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"

	"graphmem/internal/sim"
	"graphmem/internal/stats"
)

// mixCores is the thread count of the paper's multi-core mixes.
const mixCores = 4

// Fig14Result is the multi-core evaluation (Fig. 14): per-mix weighted
// speed-ups of each scheme over the Baseline, plus geomeans.
type Fig14Result struct {
	Mixes   [][]WorkloadID
	Schemes []string
	// WS[s][m] is the weighted speed-up of scheme s on mix m,
	// normalized to Baseline (1.0 = parity).
	WS [][]float64
	// GeomeanPct per scheme and the best per-scheme mix.
	GeomeanPct []float64
	MaxPct     []float64
}

// GenerateMixes draws n 4-thread mixes uniformly (with repetition) from
// the workload pool, deterministically from seed, like the paper's 50
// random mixes.
func GenerateMixes(pool []WorkloadID, n int, seed uint64) [][]WorkloadID {
	if pool == nil {
		pool = AllWorkloads()
	}
	r := rand.New(rand.NewPCG(seed, 0x5eed))
	mixes := make([][]WorkloadID, n)
	for i := range mixes {
		mix := make([]WorkloadID, mixCores)
		for j := range mix {
			mix[j] = pool[r.IntN(len(pool))]
		}
		mixes[i] = mix
	}
	return mixes
}

// singleIPC returns the isolated IPC of a workload: it runs alone on
// the Baseline multi-core machine ("IPC in isolation on the same
// system", Section IV-D), memoized and single-flight — concurrent
// requests for the same id share one live run.
func (wb *Workbench) singleIPC(id WorkloadID) float64 {
	key := id.String()
	label := fmt.Sprintf("isolated %-22s", id)
	wb.mu.Lock()
	if v, ok := wb.singles[key]; ok {
		wb.mu.Unlock()
		wb.Reporter.Cached(label, fmt.Sprintf("IPC=%.3f", v))
		return v
	}
	if l, ok := wb.isolated[key]; ok {
		wb.mu.Unlock()
		<-l.done
		wb.Reporter.Cached(label, fmt.Sprintf("IPC=%.3f", l.v))
		return l.v
	}
	l := &ipcLatch{done: make(chan struct{})}
	wb.isolated[key] = l
	wb.mu.Unlock()

	cfg := wb.Profile.BaseConfig(mixCores).
		WithWindows(wb.Profile.MixWarmup, wb.Profile.MixMeasure)
	cfg.CheckLevel = wb.CheckLevel
	cfg, slots := wb.acquireSim(cfg)
	ws := make([]sim.Workload, mixCores)
	ws[0] = wb.Workload(id, 0)
	finish := wb.Reporter.StartRun(label)
	res := sim.RunMultiCore(cfg, ws)
	v := res.PerCore[0].IPC()
	finish(fmt.Sprintf("IPC=%.3f", v))
	wb.releaseN(slots)
	wb.recordCheck(res.Check)

	wb.mu.Lock()
	wb.singles[key] = v
	delete(wb.isolated, key)
	wb.mu.Unlock()
	l.v = v
	close(l.done)
	return v
}

// runMix simulates one mix on one config (inside a worker-pool slot)
// and returns per-thread shared IPCs. Mix runs are not memoized: each
// (config, mix) point is simulated exactly once per Fig14 call.
func (wb *Workbench) runMix(cfg sim.Config, mix []WorkloadID) []float64 {
	cfg = cfg.WithWindows(wb.Profile.MixWarmup, wb.Profile.MixMeasure)
	cfg.CheckLevel = wb.CheckLevel
	cfg, slots := wb.acquireSim(cfg)
	defer wb.releaseN(slots)
	ws := make([]sim.Workload, mixCores)
	names := ""
	for i, id := range mix {
		ws[i] = wb.Workload(id, i)
		if i > 0 {
			names += "+"
		}
		names += id.String()
	}
	finish := wb.Reporter.StartRun(fmt.Sprintf("mix %-14s %s", cfg.Name, names))
	res := sim.RunMultiCore(cfg, ws)
	ipcs := res.IPCs()
	finish(fmt.Sprintf("IPCs=%.3v", ipcs))
	wb.recordCheck(res.Check)
	return ipcs
}

// liveIsolated counts the distinct mix threads whose isolated run will
// actually execute (not yet memoized or in flight); repeats join the
// single-flight latch and self-report as cached.
func (wb *Workbench) liveIsolated(mixes [][]WorkloadID) int {
	seen := make(map[string]bool)
	live := 0
	wb.mu.Lock()
	defer wb.mu.Unlock()
	for _, mix := range mixes {
		for _, id := range mix {
			key := id.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			if _, ok := wb.singles[key]; ok {
				continue
			}
			if _, ok := wb.isolated[key]; ok {
				continue
			}
			live++
		}
	}
	return live
}

// Fig14 runs the multi-core comparison over the profile's mix count
// (or len(mixes) if provided). Isolated runs, baseline mixes and every
// scheme mix are mutually independent, so the full run set is enqueued
// on the worker pool up front; the weighted-speed-up aggregation then
// walks schemes and mixes in the sequential order, so the result is
// identical at any parallelism.
func (wb *Workbench) Fig14(mixes [][]WorkloadID) *Fig14Result {
	if mixes == nil {
		mixes = GenerateMixes(nil, wb.Profile.Mixes, 14)
	}
	base4 := wb.Profile.BaseConfig(mixCores)
	configs := []sim.Config{
		base4.WithBigL1D(),
		base4.WithDistill(),
		base4.WithTOPT(),
		base4.With2xLLC(),
		base4.WithSDCLP(),
	}
	res := &Fig14Result{Mixes: mixes}
	// Plan the live work only: every mix run executes, while isolated
	// runs dedupe through the singles cache.
	wb.Reporter.Plan(len(mixes)*(1+len(configs)) + wb.liveIsolated(mixes))

	singles := make([][]float64, len(mixes))
	baseShared := make([][]float64, len(mixes))
	shared := make([][][]float64, len(configs)) // [scheme][mix][thread]
	for k := range configs {
		shared[k] = make([][]float64, len(mixes))
	}
	var wg sync.WaitGroup
	for m, mix := range mixes {
		singles[m] = make([]float64, mixCores)
		for i, id := range mix {
			wg.Add(1)
			go func() {
				defer wg.Done()
				singles[m][i] = wb.singleIPC(id)
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			baseShared[m] = wb.runMix(base4, mix)
		}()
		for k, cfg := range configs {
			wg.Add(1)
			go func() {
				defer wg.Done()
				shared[k][m] = wb.runMix(cfg, mix)
			}()
		}
	}
	wg.Wait()

	for k, cfg := range configs {
		res.Schemes = append(res.Schemes, cfg.Name)
		ws := make([]float64, len(mixes))
		maxPct := 0.0
		for m := range mixes {
			ws[m] = stats.WeightedSpeedup(shared[k][m], singles[m], baseShared[m])
			if p := (ws[m] - 1) * 100; p > maxPct {
				maxPct = p
			}
			wb.log("mix %02d %-14s weighted speed-up %.3f", m, cfg.Name, ws[m])
		}
		res.WS = append(res.WS, ws)
		res.GeomeanPct = append(res.GeomeanPct, stats.GeoMeanSpeedup(ws))
		res.MaxPct = append(res.MaxPct, maxPct)
	}
	return res
}

// SchemeIndex returns the row of the named scheme, or -1.
func (r *Fig14Result) SchemeIndex(name string) int {
	for i, s := range r.Schemes {
		if s == name {
			return i
		}
	}
	return -1
}

// Table renders the result sorted by SDC+LP's improvement.
func (r *Fig14Result) Table() *Table {
	t := &Table{ID: "fig14", Title: "Multi-core weighted speed-up over Baseline (Fig. 14)"}
	t.Header = append([]string{"Mix"}, r.Schemes...)
	last := len(r.Schemes) - 1
	order := make([]int, len(r.Mixes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return r.WS[last][order[a]] < r.WS[last][order[b]] })
	for _, m := range order {
		mixName := ""
		for j, id := range r.Mixes[m] {
			if j > 0 {
				mixName += "+"
			}
			mixName += id.String()
		}
		row := []any{mixName}
		for s := range r.Schemes {
			row = append(row, pct(r.WS[s][m]))
		}
		t.AddRow(row...)
	}
	geo := []any{"geomean"}
	for s := range r.Schemes {
		geo = append(geo, fmt.Sprintf("%+.1f%%", r.GeomeanPct[s]))
	}
	t.AddRow(geo...)
	t.Notes = append(t.Notes, "paper geomeans: L1D ISO 0.02%, Distill -0.04%, T-OPT 6.4%, 2xLLC 2.4%, SDC+LP 20.2% (max 69.3%)")
	return t
}
