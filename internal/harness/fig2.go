package harness

import "fmt"

// Fig2Result holds the baseline MPKI characterization (Fig. 2): the
// L1D/L2C/LLC demand MPKI of every workload on the Baseline machine.
type Fig2Result struct {
	Workloads    []WorkloadID
	L1D, L2, LLC []float64
	// Avg holds the arithmetic means, as the paper quotes (53.2 / 44.5
	// / 41.8 at paper scale).
	AvgL1D, AvgL2, AvgLLC float64
	// DRAMFraction is the fraction of L1D misses ultimately served by
	// DRAM (the paper's 78.6% finding).
	DRAMFraction float64
}

// Fig2 runs the baseline MPKI characterization over the given
// workloads (nil = all 36). Runs execute across the worker pool; the
// aggregation consumes them in subset order.
func (wb *Workbench) Fig2(subset []WorkloadID) *Fig2Result {
	if subset == nil {
		subset = AllWorkloads()
	}
	res := &Fig2Result{Workloads: subset}
	rs := wb.runAll(jobsFor(wb.BaseConfig(), subset))
	var dramServed, missServed int64
	for _, r := range rs {
		s := &r.Stats
		res.L1D = append(res.L1D, s.L1D.MPKI(s.Instructions))
		res.L2 = append(res.L2, s.L2.MPKI(s.Instructions))
		res.LLC = append(res.LLC, s.LLC.MPKI(s.Instructions))
		dramServed += s.ServedDRAM
		missServed += s.ServedDRAM + s.ServedL2 + s.ServedLLC + s.ServedRemote
	}
	for i := range subset {
		res.AvgL1D += res.L1D[i]
		res.AvgL2 += res.L2[i]
		res.AvgLLC += res.LLC[i]
	}
	n := float64(len(subset))
	res.AvgL1D /= n
	res.AvgL2 /= n
	res.AvgLLC /= n
	if missServed > 0 {
		res.DRAMFraction = float64(dramServed) / float64(missServed)
	}
	return res
}

// Table renders the result.
func (r *Fig2Result) Table() *Table {
	t := &Table{ID: "fig2", Title: "Baseline MPKI per cache level (Fig. 2)",
		Header: []string{"Workload", "L1D", "L2C", "LLC"}}
	for i, id := range r.Workloads {
		t.AddRow(id.String(), fmt.Sprintf("%.1f", r.L1D[i]), fmt.Sprintf("%.1f", r.L2[i]), fmt.Sprintf("%.1f", r.LLC[i]))
	}
	t.AddRow("average", fmt.Sprintf("%.1f", r.AvgL1D), fmt.Sprintf("%.1f", r.AvgL2), fmt.Sprintf("%.1f", r.AvgLLC))
	t.Notes = append(t.Notes,
		fmt.Sprintf("%.1f%% of L1D misses are served by DRAM (paper: 78.6%%)", r.DRAMFraction*100))
	return t
}
