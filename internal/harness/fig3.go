package harness

import (
	"encoding/json"
	"fmt"

	"graphmem/internal/mem"
	"graphmem/internal/sim"
	"graphmem/internal/trace"
)

// Fig3Result is the stride/DRAM-probability characterization of Fig. 3:
// for each stride interval, the probability that an access with that
// stride (vs the previous access by the same PC) was served by DRAM.
type Fig3Result struct {
	Workload WorkloadID
	Labels   []string
	Prob     []float64 // -1 for empty buckets
	Samples  []int64
}

// Fig3 reproduces the characterization on the given workload (the
// paper uses cc.friendster). The profiling run is never memoized in
// process (it carries a custom observer, not a sim.Result), but with a
// result store attached the derived profile is cached on disk under a
// "fig3|"-namespaced key, so warm sweeps skip the run entirely.
func (wb *Workbench) Fig3(id WorkloadID) *Fig3Result {
	cfg := wb.BaseConfig()
	if wb.storeEligible(cfg) {
		skey := wb.fig3StoreKey(id, cfg).StoreKey()
		payload, commit := wb.Store.Acquire(skey)
		if payload != nil {
			if res := storedFig3(payload, id); res != nil {
				_ = commit(nil)
				wb.Reporter.Cached(fmt.Sprintf("profiled %-22s %-14s", id, cfg.Name), "(store)")
				wb.Metrics.RunStoreHit("fig3/" + id.String())
				return res
			}
			// Fall through to the live path with the commit still held:
			// the rerun republishes under the key, healing the entry.
			wb.Store.Reject(skey)
		}
		// Release the claim without publishing if the live run panics.
		committed := false
		defer func() {
			if !committed {
				_ = commit(nil)
			}
		}()
		res := wb.fig3Live(id, cfg)
		committed = true
		data, err := json.Marshal(res)
		if err == nil {
			err = commit(data)
		} else {
			_ = commit(nil)
		}
		if err != nil {
			wb.log("result store write failed for fig3|%s: %v", id, err)
		}
		return res
	}
	return wb.fig3Live(id, cfg)
}

// fig3Live executes the profiling run.
func (wb *Workbench) fig3Live(id WorkloadID, cfg sim.Config) *Fig3Result {
	wb.Reporter.Plan(1)
	w := wb.Workload(id, 0)
	sys := sim.NewSystem(cfg, []sim.Workload{w})
	prof := trace.NewStrideDRAMProfiler()
	sys.Observer = func(coreID int, pc uint64, blk mem.BlockAddr, served mem.ServedBy) {
		prof.Observe(pc, blk, served)
	}
	finish := wb.Reporter.StartRun(fmt.Sprintf("profiled %-22s %-14s", id, cfg.Name))
	r := sys.RunCore0(w)
	finish(fmt.Sprintf("IPC=%.3f", r.IPC()))
	wb.recordCheck(r.Check)
	res := &Fig3Result{Workload: id}
	for b := 0; b < trace.StrideBuckets; b++ {
		res.Labels = append(res.Labels, trace.BucketLabel(b))
		res.Prob = append(res.Prob, prof.DRAMProbability(b))
		res.Samples = append(res.Samples, prof.Samples(b))
	}
	return res
}

// Table renders the result.
func (r *Fig3Result) Table() *Table {
	t := &Table{ID: "fig3", Title: fmt.Sprintf("P(served by DRAM) per stride interval, %s (Fig. 3)", r.Workload),
		Header: []string{"Stride (blocks)", "P(DRAM)", "Samples"}}
	for i, l := range r.Labels {
		p := "-"
		if r.Prob[i] >= 0 {
			p = fmt.Sprintf("%.1f%%", r.Prob[i]*100)
		}
		t.AddRow(l, p, r.Samples[i])
	}
	t.Notes = append(t.Notes, "paper: 11.6% for strides in (1e0,1e1], 97.6% for (1e5,1e6]")
	return t
}
