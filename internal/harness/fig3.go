package harness

import (
	"fmt"

	"graphmem/internal/mem"
	"graphmem/internal/sim"
	"graphmem/internal/trace"
)

// Fig3Result is the stride/DRAM-probability characterization of Fig. 3:
// for each stride interval, the probability that an access with that
// stride (vs the previous access by the same PC) was served by DRAM.
type Fig3Result struct {
	Workload WorkloadID
	Labels   []string
	Prob     []float64 // -1 for empty buckets
	Samples  []int64
}

// Fig3 reproduces the characterization on the given workload (the
// paper uses cc.friendster).
func (wb *Workbench) Fig3(id WorkloadID) *Fig3Result {
	// The profiling run is never memoized (it carries a custom
	// observer), so it always counts as one live planned run.
	wb.Reporter.Plan(1)
	cfg := wb.BaseConfig()
	w := wb.Workload(id, 0)
	sys := sim.NewSystem(cfg, []sim.Workload{w})
	prof := trace.NewStrideDRAMProfiler()
	sys.Observer = func(coreID int, pc uint64, blk mem.BlockAddr, served mem.ServedBy) {
		prof.Observe(pc, blk, served)
	}
	finish := wb.Reporter.StartRun(fmt.Sprintf("profiled %-22s %-14s", id, cfg.Name))
	r := sys.RunCore0(w)
	finish(fmt.Sprintf("IPC=%.3f", r.IPC()))
	wb.recordCheck(r.Check)
	res := &Fig3Result{Workload: id}
	for b := 0; b < trace.StrideBuckets; b++ {
		res.Labels = append(res.Labels, trace.BucketLabel(b))
		res.Prob = append(res.Prob, prof.DRAMProbability(b))
		res.Samples = append(res.Samples, prof.Samples(b))
	}
	return res
}

// Table renders the result.
func (r *Fig3Result) Table() *Table {
	t := &Table{ID: "fig3", Title: fmt.Sprintf("P(served by DRAM) per stride interval, %s (Fig. 3)", r.Workload),
		Header: []string{"Stride (blocks)", "P(DRAM)", "Samples"}}
	for i, l := range r.Labels {
		p := "-"
		if r.Prob[i] >= 0 {
			p = fmt.Sprintf("%.1f%%", r.Prob[i]*100)
		}
		t.AddRow(l, p, r.Samples[i])
	}
	t.Notes = append(t.Notes, "paper: 11.6% for strides in (1e0,1e1], 97.6% for (1e5,1e6]")
	return t
}
