package harness

import (
	"fmt"
	"sort"

	"graphmem/internal/sim"
	"graphmem/internal/stats"
)

// SpeedupResult holds per-workload speed-ups of several schemes over
// the Baseline, plus geometric means — the shape of Figs. 7 and 13.
type SpeedupResult struct {
	ID        string
	Title     string
	Workloads []WorkloadID
	Schemes   []string
	// Speedup[s][w] is scheme s's IPC ratio vs Baseline on workload w.
	Speedup [][]float64
	// GeomeanPct[s] is the percentage geometric-mean improvement.
	GeomeanPct []float64
}

// runSpeedups measures the given configs against the Baseline over the
// workloads. The whole scheme grid is enqueued on the worker pool at
// once and aggregated in scheme-major order, matching the sequential
// schedule byte for byte.
func (wb *Workbench) runSpeedups(id, title string, configs []sim.Config, subset []WorkloadID) *SpeedupResult {
	if subset == nil {
		subset = AllWorkloads()
	}
	res := &SpeedupResult{ID: id, Title: title, Workloads: subset}
	baseIPC := wb.baselineIPCs(subset)
	var jobs []runReq
	for _, cfg := range configs {
		jobs = append(jobs, jobsFor(cfg, subset)...)
	}
	rs := wb.runAll(jobs)
	for k, cfg := range configs {
		res.Schemes = append(res.Schemes, cfg.Name)
		row := make([]float64, len(subset))
		for i := range subset {
			row[i] = rs[k*len(subset)+i].IPC() / baseIPC[i]
		}
		res.Speedup = append(res.Speedup, row)
		res.GeomeanPct = append(res.GeomeanPct, stats.GeoMeanSpeedup(row))
	}
	return res
}

// Fig7 compares the four prior schemes and SDC+LP against the Baseline
// over the workloads (nil = all 36), reproducing Fig. 7.
func (wb *Workbench) Fig7(subset []WorkloadID) *SpeedupResult {
	base := wb.Profile.BaseConfig(1)
	return wb.runSpeedups("fig7", "Single-core speed-up over Baseline (Fig. 7)",
		[]sim.Config{
			base.WithBigL1D(),
			base.WithDistill(),
			base.WithTOPT(),
			base.With2xLLC(),
			base.WithSDCLP(),
		}, subset)
}

// Fig13 compares the Expert Programmer routing against SDC+LP (Fig. 13).
func (wb *Workbench) Fig13(subset []WorkloadID) *SpeedupResult {
	base := wb.Profile.BaseConfig(1)
	return wb.runSpeedups("fig13", "SDC+LP vs Expert Programmer (Fig. 13)",
		[]sim.Config{
			base.WithExpert(),
			base.WithSDCLP(),
		}, subset)
}

// SchemeIndex returns the row index of the named scheme, or -1.
func (r *SpeedupResult) SchemeIndex(name string) int {
	for i, s := range r.Schemes {
		if s == name {
			return i
		}
	}
	return -1
}

// Table renders the result sorted by the last scheme's speed-up, as the
// paper's figures are.
func (r *SpeedupResult) Table() *Table {
	t := &Table{ID: r.ID, Title: r.Title}
	t.Header = append([]string{"Workload"}, r.Schemes...)
	order := make([]int, len(r.Workloads))
	for i := range order {
		order[i] = i
	}
	last := len(r.Schemes) - 1
	sort.Slice(order, func(a, b int) bool {
		return r.Speedup[last][order[a]] < r.Speedup[last][order[b]]
	})
	for _, i := range order {
		row := []any{r.Workloads[i].String()}
		for s := range r.Schemes {
			row = append(row, pct(r.Speedup[s][i]))
		}
		t.AddRow(row...)
	}
	geo := []any{"geomean"}
	for s := range r.Schemes {
		geo = append(geo, fmt.Sprintf("%+.1f%%", r.GeomeanPct[s]))
	}
	t.AddRow(geo...)
	return t
}
