package harness

import (
	"fmt"
	"sort"
)

// Fig89Result compares cache-pressure MPKI between Baseline and SDC+LP:
// Fig. 8 reports L2C and LLC MPKI, Fig. 9 the first-level (L1D and
// L1D+SDC) MPKI.
type Fig89Result struct {
	Workloads []WorkloadID
	// Baseline MPKI.
	BaseL1D, BaseL2, BaseLLC []float64
	// SDC+LP MPKI (L1D and SDC reported separately; Fig. 9 stacks them).
	SdcL1D, SdcSDC, SdcL2, SdcLLC []float64
	// Speed-up used for the paper's sort order.
	Speedup []float64
	// Averages.
	AvgBaseL1D, AvgBaseL2, AvgBaseLLC         float64
	AvgSdcL1D, AvgSdcSDC, AvgSdcL2, AvgSdcLLC float64
}

// Fig89 runs the Baseline-vs-SDC+LP MPKI comparison (Figs. 8 and 9
// share the same runs). Both configurations' runs are enqueued on the
// worker pool together and aggregated in subset order.
func (wb *Workbench) Fig89(subset []WorkloadID) *Fig89Result {
	if subset == nil {
		subset = AllWorkloads()
	}
	res := &Fig89Result{Workloads: subset}
	base := wb.BaseConfig()
	sdclp := wb.Profile.BaseConfig(1).WithSDCLP()
	rs := wb.runAll(append(jobsFor(base, subset), jobsFor(sdclp, subset)...))
	for i := range subset {
		b, s := rs[i], rs[len(subset)+i]
		bi, si := b.Stats.Instructions, s.Stats.Instructions
		res.BaseL1D = append(res.BaseL1D, b.Stats.L1D.MPKI(bi))
		res.BaseL2 = append(res.BaseL2, b.Stats.L2.MPKI(bi))
		res.BaseLLC = append(res.BaseLLC, b.Stats.LLC.MPKI(bi))
		res.SdcL1D = append(res.SdcL1D, s.Stats.L1D.MPKI(si))
		res.SdcSDC = append(res.SdcSDC, s.Stats.SDC.MPKI(si))
		res.SdcL2 = append(res.SdcL2, s.Stats.L2.MPKI(si))
		res.SdcLLC = append(res.SdcLLC, s.Stats.LLC.MPKI(si))
		res.Speedup = append(res.Speedup, s.IPC()/b.IPC())
	}
	n := float64(len(subset))
	for i := range subset {
		res.AvgBaseL1D += res.BaseL1D[i] / n
		res.AvgBaseL2 += res.BaseL2[i] / n
		res.AvgBaseLLC += res.BaseLLC[i] / n
		res.AvgSdcL1D += res.SdcL1D[i] / n
		res.AvgSdcSDC += res.SdcSDC[i] / n
		res.AvgSdcL2 += res.SdcL2[i] / n
		res.AvgSdcLLC += res.SdcLLC[i] / n
	}
	return res
}

func (r *Fig89Result) sorted() []int {
	order := make([]int, len(r.Workloads))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return r.Speedup[order[a]] < r.Speedup[order[b]] })
	return order
}

// Fig8Table renders the L2C/LLC comparison (Fig. 8).
func (r *Fig89Result) Fig8Table() *Table {
	t := &Table{ID: "fig8", Title: "L2C and LLC MPKI, Baseline vs SDC+LP (Fig. 8)",
		Header: []string{"Workload", "base L2C", "base LLC", "sdc+lp L2C", "sdc+lp LLC"}}
	for _, i := range r.sorted() {
		t.AddRow(r.Workloads[i].String(),
			fmt.Sprintf("%.1f", r.BaseL2[i]), fmt.Sprintf("%.1f", r.BaseLLC[i]),
			fmt.Sprintf("%.1f", r.SdcL2[i]), fmt.Sprintf("%.1f", r.SdcLLC[i]))
	}
	t.AddRow("average",
		fmt.Sprintf("%.1f", r.AvgBaseL2), fmt.Sprintf("%.1f", r.AvgBaseLLC),
		fmt.Sprintf("%.1f", r.AvgSdcL2), fmt.Sprintf("%.1f", r.AvgSdcLLC))
	t.Notes = append(t.Notes, "paper averages: L2C 44.5 -> 4.4, LLC 41.8 -> 2.8")
	return t
}

// Fig9Table renders the first-level comparison (Fig. 9).
func (r *Fig89Result) Fig9Table() *Table {
	t := &Table{ID: "fig9", Title: "First-level MPKI, Baseline L1D vs SDC+LP L1D+SDC (Fig. 9)",
		Header: []string{"Workload", "base L1D", "sdc+lp L1D", "sdc+lp SDC", "sdc+lp L1D+SDC"}}
	for _, i := range r.sorted() {
		t.AddRow(r.Workloads[i].String(),
			fmt.Sprintf("%.1f", r.BaseL1D[i]),
			fmt.Sprintf("%.1f", r.SdcL1D[i]),
			fmt.Sprintf("%.1f", r.SdcSDC[i]),
			fmt.Sprintf("%.1f", r.SdcL1D[i]+r.SdcSDC[i]))
	}
	t.AddRow("average",
		fmt.Sprintf("%.1f", r.AvgBaseL1D),
		fmt.Sprintf("%.1f", r.AvgSdcL1D),
		fmt.Sprintf("%.1f", r.AvgSdcSDC),
		fmt.Sprintf("%.1f", r.AvgSdcL1D+r.AvgSdcSDC))
	t.Notes = append(t.Notes, "paper averages: L1D 53.2 -> 7.4, SDC 48.3")
	return t
}
