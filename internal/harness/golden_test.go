package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestTab1GoldenBench pins the rendered Table I report for the bench
// profile byte-for-byte; the CI golden-report gate diffs the gmreport
// output against the same file. Regenerate deliberately with:
//
//	gmreport -exp tab1 -profile bench -q > internal/harness/testdata/tab1_bench.golden
func TestTab1GoldenBench(t *testing.T) {
	var buf bytes.Buffer
	NewWorkbench(Bench()).Tab1().Render(&buf)

	golden := filepath.Join("testdata", "tab1_bench.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("tab1 bench report diverged from %s.\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}
