// Package harness reproduces the paper's evaluation: it owns the
// workload registry (the 6 GAP kernels x 6 input graphs of Tables II
// and III), the scale profiles, and one runnable experiment per table
// and figure of the paper. Each experiment returns both the numeric
// series and a renderable text table; cmd/gmreport and the repository's
// bench_test.go are thin wrappers over this package.
package harness

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"graphmem/internal/check"
	"graphmem/internal/graph"
	"graphmem/internal/kernels"
	"graphmem/internal/mem"
	"graphmem/internal/obs"
	"graphmem/internal/sample"
	"graphmem/internal/sim"
	"graphmem/internal/store"
)

// GraphNames lists the six inputs in Table III order.
var GraphNames = []string{"web", "road", "twitter", "kron", "urand", "friendster"}

// WorkloadID names one kernel x graph combination ("cc.friendster").
type WorkloadID struct {
	Kernel string
	Graph  string
}

// String implements fmt.Stringer.
func (w WorkloadID) String() string { return w.Kernel + "." + w.Graph }

// AllWorkloads returns the 36 combinations in kernel-major Table II/III
// order.
func AllWorkloads() []WorkloadID {
	var out []WorkloadID
	for _, k := range kernels.Names() {
		for _, g := range GraphNames {
			out = append(out, WorkloadID{Kernel: k, Graph: g})
		}
	}
	return out
}

// GraphSpec builds one synthetic input graph.
type GraphSpec struct {
	Name  string
	Build func() *graph.Graph
}

// Profile is a reproduction scale: which machine, which graph sizes,
// which instruction windows, and how many multi-core mixes.
type Profile struct {
	Name string
	// BaseConfig returns the baseline machine for the given core count.
	BaseConfig func(cores int) sim.Config
	// Graphs maps Table III names to builders.
	Graphs map[string]GraphSpec
	// Warmup/Measure are single-core windows; MixWarmup/MixMeasure the
	// per-thread multi-core ones.
	Warmup, Measure       int64
	MixWarmup, MixMeasure int64
	// Mixes is the number of 4-thread mixes for Fig. 14.
	Mixes int
}

func graphSet(vBig, vRoadSide int32, degPL, degWeb int, kronScale int, kronEF int64) map[string]GraphSpec {
	return map[string]GraphSpec{
		"web": {Name: "web", Build: func() *graph.Graph {
			return graph.WebLike(vBig, degWeb, 0x3EB)
		}},
		"road": {Name: "road", Build: func() *graph.Graph {
			return graph.RoadGrid(vRoadSide, vRoadSide, 255, 0x70AD)
		}},
		"twitter": {Name: "twitter", Build: func() *graph.Graph {
			return graph.PowerLaw(vBig, degPL, 0.15, false, 0x7517)
		}},
		"kron": {Name: "kron", Build: func() *graph.Graph {
			return graph.Kron(kronScale, kronEF, 0x6501)
		}},
		"urand": {Name: "urand", Build: func() *graph.Graph {
			return graph.Urand(1<<uint(kronScale), kronEF*int64(1)<<uint(kronScale)/2, 0x0a4d)
		}},
		"friendster": {Name: "friendster", Build: func() *graph.Graph {
			return graph.PowerLaw(vBig+vBig/4, degPL+2, 0.05, true, 0xF12E)
		}},
	}
}

// Bench returns the fast profile: 4-8x shrunk hierarchy, ~0.5M-vertex
// graphs (property arrays ~10x the shrunk LLC), short windows. Used by
// tests and testing.B benchmarks.
func Bench() Profile {
	return Profile{
		Name:       "bench",
		BaseConfig: func(cores int) sim.Config { return sim.TableI(cores).BenchScale() },
		Graphs:     graphSet(450_000, 700, 6, 8, 19, 8),
		// Warm-up covers the sequential initialization phase of the
		// largest bench graphs (e.g. PR's contrib refresh, ~6 instr per
		// vertex) so the measured window is the data-dependent phase
		// the paper's SimPoints capture.
		Warmup: 4_000_000, Measure: 4_000_000,
		MixWarmup: 3_500_000, MixMeasure: 1_500_000,
		Mixes: 8,
	}
}

// Small returns the default profile: the full Table I machine with
// ~2M-vertex graphs (property arrays ~6x the LLC).
func Small() Profile {
	return Profile{
		Name:       "small",
		BaseConfig: sim.TableI,
		Graphs:     graphSet(2_000_000, 1400, 8, 8, 21, 8),
		Warmup:     16_000_000, Measure: 12_000_000,
		MixWarmup: 16_000_000, MixMeasure: 4_000_000,
		Mixes: 50,
	}
}

// Full returns the largest profile this substrate supports: the Table I
// machine with ~4M-vertex graphs (property arrays ~12x the LLC).
func Full() Profile {
	return Profile{
		Name:       "full",
		BaseConfig: sim.TableI,
		Graphs:     graphSet(4_000_000, 2000, 8, 8, 22, 6),
		Warmup:     30_000_000, Measure: 20_000_000,
		MixWarmup: 30_000_000, MixMeasure: 6_000_000,
		Mixes: 50,
	}
}

// ProfileByName resolves "bench", "small" or "full".
func ProfileByName(name string) (Profile, error) {
	switch name {
	case "bench":
		return Bench(), nil
	case "small", "":
		return Small(), nil
	case "full":
		return Full(), nil
	default:
		return Profile{}, fmt.Errorf("harness: unknown profile %q", name)
	}
}

// Workbench caches graphs and simulation results for one profile so
// experiments that share runs (Fig. 7/8/9/13) don't recompute them.
type Workbench struct {
	Profile Profile
	// Progress, when set, receives the reporter's output lines (one per
	// completed run plus narration). Set it before running experiments.
	Progress func(msg string)
	// Reporter tracks sweep progress (runs done/planned, moving-average
	// run time, ETA, in-flight runs). It emits through Progress, so a
	// nil Progress keeps the workbench silent while counts stay
	// accurate. Replace it to capture structured progress directly.
	Reporter *obs.Progress
	// Parallelism bounds how many simulations (and the graph builds
	// they trigger) run concurrently; 0 means all host cores
	// (GOMAXPROCS). Each simulation stays single-threaded and
	// deterministic — only scheduling is concurrent — so experiment
	// output is byte-identical at any setting. Set it before the first
	// run; cmd/gmreport and cmd/gmsim expose it as -j. Peak memory
	// grows with the number of concurrently live graphs: use -j 1 (or
	// DropGraph between experiments) when memory-bound.
	Parallelism int
	// Metrics, when set, receives run lifecycle events (started,
	// finished with IPC and recorder snapshot, cached) for the live
	// -metrics HTTP endpoint. A nil Metrics is a no-op — every call
	// site threads the pointer unconditionally.
	Metrics *obs.Metrics
	// CheckLevel runs every simulation under the differential checker
	// (internal/check) at the given level. Checked runs produce
	// bit-identical counters, so memoized results remain valid for
	// unchecked consumers; violations aggregate across the sweep and
	// are reported by CheckOutcome. Set it before the first run;
	// cmd/gmsim and cmd/gmreport expose it as -check.
	CheckLevel check.Level
	// WeaveJobs, when positive, runs every multi-core simulation (mix
	// and isolated runs) on the bound–weave parallel engine
	// (sim.Config.Quantum = sim.DefaultQuantum) with up to WeaveJobs
	// host goroutines per simulation. Weave workers are real host work
	// and therefore count against the Parallelism budget: a mix run
	// claims min(WeaveJobs, workers) pool slots for its duration.
	// Results are identical at any WeaveJobs >= 1 (the engine's
	// determinism contract); only wall-clock changes. Set it before the
	// first run; cmd/gmsim and cmd/gmreport expose it as -wj.
	WeaveJobs int
	// Sampling, when enabled, runs every eligible single-core simulation
	// under the statistical sampling engine (internal/sample) with this
	// schedule: results carry confidence-interval estimates instead of
	// exact window counters, at a fraction of the detailed-simulation
	// cost. Runs the engine does not support — multi-core, checked,
	// flight-recorded, epoch-sampled or bound–weave — keep full fidelity.
	// Sampled runs memoize under a distinct key (see runKey), so the
	// zero value leaves every key and result byte-identical. Set it
	// before the first run; cmd/gmsim and cmd/gmreport expose it as
	// -sample.
	Sampling sample.Plan
	// Checkpoints, when set alongside Sampling, is the warm-up
	// checkpoint store: sampled runs sharing a (workload,
	// warm-relevant-config) pair replay one functional warm-up and
	// restore the rest from disk. Wall-clock only — restored runs are
	// byte-identical to re-warmed ones — so the store is deliberately
	// excluded from memo keys. Exposed as -ckpt.
	Checkpoints *sample.Store
	// Store, when set, is the disk-backed content-addressed result
	// store: a read-through/write-through tier under the in-memory memo
	// (lookup order: memory → disk → run), keyed by RunKey.StoreKey.
	// Stored results are byte-identical to live runs, so the tier
	// affects wall-clock only; checked runs (CheckLevel != Off) bypass
	// it both ways. Open one with OpenResultStore; cmd/gmreport and
	// cmd/gmsim expose it as -store, and gmserved fronts one as a
	// service.
	Store *store.Store

	mu sync.Mutex
	// batchMu serializes multi-slot pool acquisitions (acquireN) so two
	// weave-parallel runs can never deadlock each other by each holding
	// half the pool while waiting for more.
	batchMu  sync.Mutex
	sem      chan struct{} // worker pool, sized on first acquire
	graphs   map[string]*graph.Graph
	building map[string]*graphLatch // in-flight graph builds
	results  map[string]*sim.Result
	running  map[string]*runLatch // in-flight single-core runs
	singles  map[string]float64   // isolated IPC cache for Fig. 14
	isolated map[string]*ipcLatch // in-flight isolated runs

	checkRuns       int64             // live checked runs aggregated
	checkViolations int64             // total violations across the sweep
	checkDetails    []check.Violation // capped per-run details, concatenated
}

// NewWorkbench creates an empty workbench for the profile.
func NewWorkbench(p Profile) *Workbench {
	wb := &Workbench{
		Profile:  p,
		graphs:   make(map[string]*graph.Graph),
		building: make(map[string]*graphLatch),
		results:  make(map[string]*sim.Result),
		running:  make(map[string]*runLatch),
		singles:  make(map[string]float64),
		isolated: make(map[string]*ipcLatch),
	}
	wb.Reporter = obs.NewProgress(func(msg string) {
		if wb.Progress != nil {
			wb.Progress(msg)
		}
	})
	return wb
}

func (wb *Workbench) log(format string, args ...any) {
	wb.Reporter.Log(fmt.Sprintf(format, args...))
}

// Graph returns (building and caching on first use) the named input.
// Builds are single-flight: concurrent requests for the same graph
// share one build, while different graphs build in parallel.
func (wb *Workbench) Graph(name string) *graph.Graph {
	wb.mu.Lock()
	if g, ok := wb.graphs[name]; ok {
		wb.mu.Unlock()
		return g
	}
	if l, ok := wb.building[name]; ok {
		wb.mu.Unlock()
		<-l.done
		if l.panicked != nil {
			panic(l.panicked)
		}
		return l.g
	}
	spec, ok := wb.Profile.Graphs[name]
	if !ok {
		wb.mu.Unlock()
		panic("harness: unknown graph " + name)
	}
	l := &graphLatch{done: make(chan struct{})}
	wb.building[name] = l
	wb.mu.Unlock()

	defer func() {
		if p := recover(); p != nil {
			// Unregister the failed build and unblock joiners with the
			// panic value; a later call may retry the key.
			wb.mu.Lock()
			delete(wb.building, name)
			wb.mu.Unlock()
			l.panicked = p
			close(l.done)
			panic(p)
		}
	}()

	wb.log("building graph %s (%s profile)", name, wb.Profile.Name)
	g := spec.Build()

	wb.mu.Lock()
	wb.graphs[name] = g
	delete(wb.building, name)
	wb.mu.Unlock()
	l.g = g
	close(l.done)
	return g
}

// DropGraph evicts a cached graph (memory control for big profiles).
func (wb *Workbench) DropGraph(name string) {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	delete(wb.graphs, name)
}

// Workload prepares the kernel instance for id in core slot's address
// window. Instances are cheap relative to simulation and are not
// cached (kernels keep mutable state).
func (wb *Workbench) Workload(id WorkloadID, slot int) sim.Workload {
	if id.Graph == "reg" {
		build, ok := kernels.RegularBuilders()[id.Kernel]
		if !ok {
			panic("harness: unknown regular kernel " + id.Kernel)
		}
		space := mem.NewSpace(slot)
		return sim.Workload{Name: id.String(), Inst: build(nil, space), Space: space}
	}
	build, ok := kernels.Registry()[id.Kernel]
	if !ok {
		panic("harness: unknown kernel " + id.Kernel)
	}
	g := wb.Graph(id.Graph)
	space := mem.NewSpace(slot)
	return sim.Workload{Name: id.String(), Inst: build(g, space), Space: space}
}

// configured applies the profile's windows, the workbench's check
// level, and (where the engine supports it) the workbench's sampling
// plan and checkpoint store to a config.
func (wb *Workbench) configured(cfg sim.Config) sim.Config {
	cfg = cfg.WithWindows(wb.Profile.Warmup, wb.Profile.Measure)
	cfg.CheckLevel = wb.CheckLevel
	if wb.Sampling.Enabled() && cfg.Cores == 1 && cfg.Quantum == 0 &&
		!cfg.FlightRecorder && cfg.EpochInterval == 0 &&
		cfg.CheckLevel == check.Off {
		cfg.Sampling.Plan = wb.Sampling
		cfg.Sampling.Store = wb.Checkpoints
	}
	return cfg
}

// recordCheck folds one run's checker outcome into the sweep aggregate.
func (wb *Workbench) recordCheck(s check.Summary) {
	if wb.CheckLevel == check.Off {
		return
	}
	wb.mu.Lock()
	wb.checkRuns++
	wb.checkViolations += s.Violations
	wb.checkDetails = append(wb.checkDetails, s.Details...)
	wb.mu.Unlock()
}

// CheckOutcome reports the aggregated differential-checker outcome:
// how many live runs were checked, the total violation count, and the
// retained per-violation details (capped per run by internal/check).
func (wb *Workbench) CheckOutcome() (runs, violations int64, details []check.Violation) {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	return wb.checkRuns, wb.checkViolations, append([]check.Violation(nil), wb.checkDetails...)
}

// BaseConfig returns the profile's single-core baseline machine.
func (wb *Workbench) BaseConfig() sim.Config {
	return wb.configured(wb.Profile.BaseConfig(1))
}

// RunSingle simulates workload id on cfg (with profile windows),
// memoizing by (config name, workload). It is safe for concurrent use
// and single-flight: a call for a key already in flight blocks until
// the one live run finishes and shares its result, so experiments
// overlapping on runs never race or compute a point twice. Live runs
// execute inside the workbench's worker pool (see Parallelism).
func (wb *Workbench) RunSingle(cfg sim.Config, id WorkloadID) *sim.Result {
	// Fold the workbench-level knobs in before the key is computed, so
	// the memo key reflects the run that will actually execute (a
	// sampled run and a detailed run of the same config are distinct
	// keys).
	cfg = wb.configured(cfg)
	key := runKey(cfg, id)
	label := fmt.Sprintf("ran %-22s %-14s", id, cfg.Name)
	mlabel := cfg.Name + "/" + id.String()
	wb.mu.Lock()
	if r, ok := wb.results[key]; ok {
		wb.mu.Unlock()
		wb.Reporter.Cached(label, fmt.Sprintf("IPC=%.3f", r.IPC()))
		wb.Metrics.RunCached(mlabel)
		return r
	}
	if l, ok := wb.running[key]; ok {
		wb.mu.Unlock()
		<-l.done
		if l.panicked != nil {
			panic(l.panicked)
		}
		wb.Reporter.Cached(label, fmt.Sprintf("IPC=%.3f", l.res.IPC()))
		wb.Metrics.RunCached(mlabel)
		return l.res
	}
	l := &runLatch{done: make(chan struct{})}
	wb.running[key] = l
	wb.mu.Unlock()

	// Disk tier: with a store attached (and the run unchecked), try the
	// content address before paying for a live run. The store's Acquire
	// holds the key's claim from here to commit, so concurrent processes
	// sharing the directory serialize on the point too. A hit must
	// decode to exactly the run we asked for; anything else is dropped
	// (Reject) and the run proceeds live — the cache can never poison a
	// sweep.
	var storeCommit func([]byte) error
	if wb.storeEligible(cfg) {
		skey := wb.runKeyFor(cfg, id).StoreKey()
		payload, commit := wb.Store.Acquire(skey)
		if payload != nil {
			if res := decodeStored(payload, cfg, id); res != nil {
				_ = commit(nil)
				wb.Reporter.Cached(label, fmt.Sprintf("IPC=%.3f (store)", res.IPC()))
				wb.Metrics.RunStoreHit(mlabel)
				wb.mu.Lock()
				wb.results[key] = res
				delete(wb.running, key)
				wb.mu.Unlock()
				l.res = res
				close(l.done)
				return res
			}
			// Keep the commit: the live rerun below republishes under
			// the key, healing the rejected entry.
			wb.Store.Reject(skey)
			storeCommit = commit
		} else {
			storeCommit = commit
		}
	}

	wb.acquire()
	defer wb.release()
	defer func() {
		if p := recover(); p != nil {
			// A crashed run must not poison the pool: unregister the key
			// so later callers retry, hand joiners the panic value,
			// release the store claim without publishing, and let the
			// deferred release free the worker slot.
			if storeCommit != nil {
				_ = storeCommit(nil)
			}
			wb.mu.Lock()
			delete(wb.running, key)
			wb.mu.Unlock()
			l.panicked = p
			close(l.done)
			panic(p)
		}
	}()
	w := wb.Workload(id, 0)
	finish := wb.Reporter.StartRun(label)
	wb.Metrics.RunStarted(mlabel)
	start := time.Now()
	res := sim.RunSingleCore(cfg, w)
	finish(fmt.Sprintf("IPC=%.3f", res.IPC()))
	wb.Metrics.RunFinished(mlabel, time.Since(start).Seconds(), res.IPC(), res.Recorder)
	wb.recordCheck(res.Check)

	if storeCommit != nil {
		// Write-through is best effort: a failed publish costs the next
		// process a re-run, never correctness.
		data, err := sim.EncodeResult(res)
		if err == nil {
			err = storeCommit(data)
		} else {
			_ = storeCommit(nil)
		}
		if err != nil {
			wb.log("result store write failed for %s: %v", key, err)
		}
		storeCommit = nil
	}

	wb.mu.Lock()
	wb.results[key] = res
	delete(wb.running, key)
	wb.mu.Unlock()
	l.res = res
	close(l.done)
	return res
}

// SortedResultKeys exposes the memoized run keys (for tests).
func (wb *Workbench) SortedResultKeys() []string {
	wb.mu.Lock()
	defer wb.mu.Unlock()
	keys := make([]string, 0, len(wb.results))
	for k := range wb.results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
