package harness

import (
	"strings"
	"testing"
)

// wbShared is a shared bench-profile workbench so expensive graph
// builds and simulation runs are reused across tests in this package.
var wbShared = NewWorkbench(Bench())

// subsetKron is the cheap two-workload subset used by most tests.
func subsetKron() []WorkloadID {
	return []WorkloadID{{Kernel: "pr", Graph: "kron"}, {Kernel: "cc", Graph: "urand"}}
}

func TestAllWorkloads(t *testing.T) {
	ws := AllWorkloads()
	if len(ws) != 36 {
		t.Fatalf("got %d workloads, want 36", len(ws))
	}
	if ws[0].String() != "bc.web" || ws[35].String() != "sssp.friendster" {
		t.Errorf("ordering wrong: %v ... %v", ws[0], ws[35])
	}
	seen := map[string]bool{}
	for _, w := range ws {
		if seen[w.String()] {
			t.Errorf("duplicate workload %v", w)
		}
		seen[w.String()] = true
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"bench", "small", "full"} {
		p, err := ProfileByName(name)
		if err != nil || p.Name != name {
			t.Errorf("ProfileByName(%q) = %v, %v", name, p.Name, err)
		}
	}
	if p, err := ProfileByName(""); err != nil || p.Name != "small" {
		t.Error("empty profile should default to small")
	}
	if _, err := ProfileByName("huge"); err == nil {
		t.Error("unknown profile should error")
	}
}

func TestProfilesHaveAllGraphs(t *testing.T) {
	for _, p := range []Profile{Bench(), Small(), Full()} {
		for _, g := range GraphNames {
			if _, ok := p.Graphs[g]; !ok {
				t.Errorf("profile %s missing graph %s", p.Name, g)
			}
		}
	}
}

func TestTab1RendersConfig(t *testing.T) {
	out := wbShared.Tab1().String()
	for _, want := range []string{"L1-D Cache", "SDC", "LP Predictor", "LLC", "SDCDir", "DRAM"} {
		if !strings.Contains(out, want) {
			t.Errorf("tab1 missing %q:\n%s", want, out)
		}
	}
}

func TestTab2MatchesTableII(t *testing.T) {
	out := wbShared.Tab2().String()
	for _, want := range []string{"Pull-Only", "Push & Pull", "8B + 4B"} {
		if !strings.Contains(out, want) {
			t.Errorf("tab2 missing %q:\n%s", want, out)
		}
	}
}

func TestTab4BudgetTotal(t *testing.T) {
	tbl := wbShared.Tab4(1)
	out := tbl.String()
	if !strings.Contains(out, "SDCDir") || !strings.Contains(out, "Total") {
		t.Fatalf("tab4 malformed:\n%s", out)
	}
	// Bench profile halves the SDC; Table IV values appear at paper
	// scale via the small profile.
	small := NewWorkbench(Small()).Tab4(1).String()
	if !strings.Contains(small, "8.69") || !strings.Contains(small, "0.54") {
		t.Errorf("tab4 at paper scale missing Table IV values:\n%s", small)
	}
}

func TestRunSingleMemoizes(t *testing.T) {
	id := WorkloadID{Kernel: "pr", Graph: "kron"}
	cfg := wbShared.Profile.BaseConfig(1)
	a := wbShared.RunSingle(cfg, id)
	b := wbShared.RunSingle(cfg, id)
	if a != b {
		t.Error("RunSingle did not memoize")
	}
}

func TestFig2Characterization(t *testing.T) {
	res := wbShared.Fig2(subsetKron())
	if len(res.L1D) != 2 {
		t.Fatal("bad shape")
	}
	// Finding 1: graph workloads have high MPKI at all levels.
	if res.AvgL1D < 20 || res.AvgL2 < 10 || res.AvgLLC < 10 {
		t.Errorf("MPKI too low: %.1f / %.1f / %.1f", res.AvgL1D, res.AvgL2, res.AvgLLC)
	}
	// Ladder: L1D >= L2 >= LLC on average.
	if res.AvgL1D < res.AvgL2 || res.AvgL2 < res.AvgLLC {
		t.Errorf("MPKI ladder inverted: %.1f / %.1f / %.1f", res.AvgL1D, res.AvgL2, res.AvgLLC)
	}
	// Finding 2: the bulk of L1D misses are served by DRAM.
	if res.DRAMFraction < 0.4 {
		t.Errorf("DRAM fraction %.2f too low (paper: 0.786)", res.DRAMFraction)
	}
	out := res.Table().String()
	if !strings.Contains(out, "average") {
		t.Error("fig2 table missing average row")
	}
}

func TestFig3StrideDRAMCorrelation(t *testing.T) {
	// Finding 3: large strides imply high DRAM probability. The paper
	// uses cc.friendster; cc.kron exhibits the same behaviour and
	// shares this suite's cached graph.
	res := wbShared.Fig3(WorkloadID{Kernel: "cc", Graph: "kron"})
	// Find the unit-stride bucket probability and the largest-stride
	// populated bucket's probability.
	small := res.Prob[1]
	// Compare against the most DRAM-bound populated larger-stride
	// bucket: our scaled graphs top out near 1e4-block strides, so the
	// paper's 1e5/1e6 buckets are empty here (a pure scale artefact).
	large := -1.0
	for b := 2; b < len(res.Prob); b++ {
		if res.Prob[b] > large && res.Samples[b] > 1000 {
			large = res.Prob[b]
		}
	}
	if small < 0 || large < 0 {
		t.Fatalf("buckets unpopulated: %v %v", res.Prob, res.Samples)
	}
	if large < small+0.2 {
		t.Errorf("P(DRAM): stride-1 %.2f vs large-stride %.2f; want strong separation", small, large)
	}
}

func TestFig7ShapeOnSubset(t *testing.T) {
	res := wbShared.Fig7(subsetKron())
	if len(res.Schemes) != 5 {
		t.Fatalf("schemes = %v", res.Schemes)
	}
	get := func(name string) float64 {
		i := res.SchemeIndex(name)
		if i < 0 {
			t.Fatalf("missing scheme %s", name)
		}
		return res.GeomeanPct[i]
	}
	sdclp := get("SDC+LP")
	if sdclp < 5 {
		t.Errorf("SDC+LP geomean %+.1f%%; want a clear win", sdclp)
	}
	if iso := get("L1D 40KB ISO"); iso > 5 || iso < -5 {
		t.Errorf("L1D ISO geomean %+.1f%%; paper reports ~0", iso)
	}
	if distill := get("Distill"); distill > 5 || distill < -8 {
		t.Errorf("Distill geomean %+.1f%%; paper reports ~0", distill)
	}
	if topt := get("T-OPT"); topt <= 0 || topt >= sdclp {
		t.Errorf("T-OPT geomean %+.1f%% vs SDC+LP %+.1f%%; paper has SDC+LP ahead", topt, sdclp)
	}
	out := res.Table().String()
	if !strings.Contains(out, "geomean") {
		t.Error("fig7 table missing geomean row")
	}
}

func TestFig89PressureDrop(t *testing.T) {
	res := wbShared.Fig89(subsetKron())
	if res.AvgSdcL2 > res.AvgBaseL2/2 {
		t.Errorf("L2 MPKI %.1f -> %.1f: want a collapse (paper 44.5 -> 4.4)", res.AvgBaseL2, res.AvgSdcL2)
	}
	if res.AvgSdcLLC > res.AvgBaseLLC/2 {
		t.Errorf("LLC MPKI %.1f -> %.1f: want a collapse (paper 41.8 -> 2.8)", res.AvgBaseLLC, res.AvgSdcLLC)
	}
	if res.AvgSdcL1D > res.AvgBaseL1D {
		t.Errorf("L1D MPKI grew: %.1f -> %.1f", res.AvgBaseL1D, res.AvgSdcL1D)
	}
	if res.AvgSdcSDC == 0 {
		t.Error("SDC saw no misses; routing inactive?")
	}
	if s := res.Fig8Table().String(); !strings.Contains(s, "average") {
		t.Error("fig8 table malformed")
	}
	if s := res.Fig9Table().String(); !strings.Contains(s, "L1D+SDC") {
		t.Error("fig9 table malformed")
	}
}

func TestTauExtremes(t *testing.T) {
	one := []WorkloadID{{Kernel: "pr", Graph: "kron"}}
	res := wbShared.Tau(one, []uint64{8, 1 << 40})
	if len(res.GraphPct) != 2 {
		t.Fatal("bad shape")
	}
	// τ=8 helps graphs; τ=2^40 routes nothing and must sit near zero.
	if res.GraphPct[0] < 3 {
		t.Errorf("tau=8 graph speed-up %+.1f%%, want positive", res.GraphPct[0])
	}
	if res.GraphPct[1] > 3 || res.GraphPct[1] < -3 {
		t.Errorf("tau=max graph speed-up %+.1f%%, want ~0", res.GraphPct[1])
	}
	// Regular suite must never be hurt meaningfully.
	for i, p := range res.RegularPct {
		if p < -3 {
			t.Errorf("tau=%d hurt regular suite: %+.1f%%", res.Taus[i], p)
		}
	}
}

func TestGenerateMixesDeterministic(t *testing.T) {
	a := GenerateMixes(nil, 5, 7)
	b := GenerateMixes(nil, 5, 7)
	if len(a) != 5 || len(a[0]) != 4 {
		t.Fatalf("mix shape %dx%d", len(a), len(a[0]))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("same seed produced different mixes")
			}
		}
	}
	c := GenerateMixes(nil, 5, 8)
	same := true
	for i := range a {
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical mixes")
	}
}

func TestFig14SingleMix(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-core mix run is slow")
	}
	pool := []WorkloadID{{Kernel: "pr", Graph: "kron"}, {Kernel: "cc", Graph: "urand"}}
	mixes := GenerateMixes(pool, 1, 3)
	res := wbShared.Fig14(mixes)
	if len(res.Schemes) != 5 || len(res.WS[0]) != 1 {
		t.Fatalf("bad shape: %v", res.Schemes)
	}
	i := res.SchemeIndex("SDC+LP")
	if res.WS[i][0] < 1.0 {
		t.Errorf("SDC+LP multi-core weighted speed-up %.3f, want > 1", res.WS[i][0])
	}
	if s := res.Table().String(); !strings.Contains(s, "geomean") {
		t.Error("fig14 table malformed")
	}
}

func TestRegularWorkloadsRun(t *testing.T) {
	cfg := wbShared.Profile.BaseConfig(1)
	for _, id := range RegularWorkloads() {
		r := wbShared.RunSingle(cfg, id)
		if r.Stats.Instructions == 0 {
			t.Errorf("%v measured nothing", id)
		}
		// Streaming kernels whose footprint exceeds the LLC are
		// DRAM-bandwidth-bound; anything above ~0.2 IPC is healthy.
		if r.IPC() < 0.2 {
			t.Errorf("%v IPC %.2f suspiciously low for a regular kernel", id, r.IPC())
		}
	}
}
