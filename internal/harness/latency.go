package harness

import (
	"fmt"

	"graphmem/internal/obs"
	"graphmem/internal/sim"
)

// Latency breakdown ("latency"): the flight recorder's load-to-use
// percentiles and served-by provenance for Baseline and SDC+LP on each
// workload. Flight-recorded runs memoize under their own key (see
// runKey), so this experiment never poisons — and is never served by —
// the unrecorded runs the paper's tables are built from.

// LatencyRow is one (workload, config) recorder outcome.
type LatencyRow struct {
	Workload WorkloadID
	Config   string
	Rec      *obs.RecSummary
}

// LatencyResult holds the latency-breakdown sweep.
type LatencyResult struct {
	ID    string
	Title string
	Rows  []LatencyRow
}

// LatencyBreakdown runs Baseline and SDC+LP with the flight recorder
// over the workloads (nil = all 36) and reports load-to-use latency
// percentiles with DRAM pressure per run.
func (wb *Workbench) LatencyBreakdown(subset []WorkloadID) *LatencyResult {
	if subset == nil {
		subset = AllWorkloads()
	}
	base := wb.Profile.BaseConfig(1)
	configs := []sim.Config{
		base.WithFlightRecorder(0),
		base.WithSDCLP().WithFlightRecorder(0),
	}
	var jobs []runReq
	for _, cfg := range configs {
		jobs = append(jobs, jobsFor(cfg, subset)...)
	}
	rs := wb.runAll(jobs)

	res := &LatencyResult{
		ID:    "latency",
		Title: "Load-to-use latency breakdown (flight recorder)",
	}
	// Workload-major so a workload's Baseline and SDC+LP rows sit
	// side by side.
	for i, id := range subset {
		for k, cfg := range configs {
			res.Rows = append(res.Rows, LatencyRow{
				Workload: id,
				Config:   cfg.Name,
				Rec:      rs[k*len(subset)+i].Recorder,
			})
		}
	}
	return res
}

// Table renders the breakdown.
func (r *LatencyResult) Table() *Table {
	t := &Table{ID: r.ID, Title: r.Title}
	t.Header = []string{
		"Workload", "Config", "Loads",
		"p50", "p90", "p99", "mean", "max",
		"DRAM%", "DRAM p99", "MSHR stall cyc",
	}
	for _, row := range r.Rows {
		rec := row.Rec
		if rec == nil {
			t.AddRow(row.Workload.String(), row.Config, "-", "-", "-", "-", "-", "-", "-", "-", "-")
			continue
		}
		h := rec.LoadToUse
		dramPct := 0.0
		if h.Count > 0 {
			dramPct = 100 * float64(rec.ServedTotal("DRAM")) / float64(h.Count)
		}
		var stallCycles int64
		for _, m := range rec.MSHR {
			stallCycles += m.StallCycles
		}
		t.AddRow(
			row.Workload.String(), row.Config,
			fmt.Sprint(h.Count),
			fmt.Sprint(h.P50), fmt.Sprint(h.P90), fmt.Sprint(h.P99),
			fmt.Sprintf("%.1f", h.Mean), fmt.Sprint(h.Max),
			fmt.Sprintf("%.1f", dramPct),
			fmt.Sprint(rec.DRAM.Latency.P99),
			fmt.Sprint(stallCycles),
		)
	}
	t.Notes = append(t.Notes,
		"latencies in CPU cycles; p50/p90/p99 are log2-bucket upper bounds capped at the observed max")
	return t
}
