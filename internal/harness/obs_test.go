package harness

import (
	"bytes"
	"encoding/csv"
	"os"
	"strings"
	"sync"
	"testing"
)

// TestTab1GoldenBytes pins the text rendering byte-for-byte: wiring the
// progress reporter through the workbench must not perturb table output
// (the tables go to stdout, progress to stderr).
func TestTab1GoldenBytes(t *testing.T) {
	want, err := os.ReadFile("testdata/tab1_bench.golden")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	NewWorkbench(Bench()).Tab1().Render(&buf)
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("tab1 rendering drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestTableRenderCSV(t *testing.T) {
	tab := &Table{ID: "x", Title: "t", Header: []string{"a", "b"}}
	tab.AddRow("r1", 1.5)
	tab.AddRow("has,comma", "q\"uote")
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid CSV: %v", err)
	}
	if len(recs) != 3 || recs[0][0] != "a" || recs[1][1] != "1.50" || recs[2][0] != "has,comma" {
		t.Errorf("bad CSV records: %v", recs)
	}
}

// TestWorkbenchProgressReporting exercises the reporter end-to-end on a
// cheap experiment: planned totals match completed runs, cached rerun
// lines are marked, and the legacy Progress func receives everything.
func TestWorkbenchProgressReporting(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	wbShared.Progress = func(msg string) {
		mu.Lock()
		lines = append(lines, msg)
		mu.Unlock()
	}
	defer func() { wbShared.Progress = nil }()

	// Other tests run unplanned RunSingle calls on the shared workbench,
	// so assert deltas: one Fig2 over two workloads plans and completes
	// exactly two runs.
	done0, total0, _, _ := wbShared.Reporter.Snapshot()
	wbShared.Fig2(subsetKron())
	done, total, _, eta := wbShared.Reporter.Snapshot()
	if done != done0+2 || total != total0+2 {
		t.Errorf("fig2 progress deltas wrong: done %d->%d total %d->%d", done0, done, total0, total)
	}
	if eta != 0 && done >= total {
		t.Errorf("nonzero ETA %v with no runs remaining", eta)
	}

	// Re-running the same experiment is fully memoized: counts advance,
	// lines are flagged cached.
	mu.Lock()
	lines = nil
	mu.Unlock()
	wbShared.Fig2(subsetKron())
	done2, total2, _, _ := wbShared.Reporter.Snapshot()
	if done2 != done+2 || total2 != total+2 {
		t.Errorf("memoized rerun counted wrong: done %d->%d total %d->%d", done, done2, total, total2)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 2 {
		t.Fatalf("got %d progress lines, want 2:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	for _, l := range lines {
		if !strings.Contains(l, "(cached)") || !strings.Contains(l, "IPC=") {
			t.Errorf("cached line malformed: %q", l)
		}
	}
}
