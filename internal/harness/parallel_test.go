package harness

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"

	"graphmem/internal/sim"
)

// fastBench clones the bench profile with tiny instruction windows:
// scheduling behaviour — not simulation fidelity — is what these tests
// exercise, and determinism must hold at any window length.
func fastBench() Profile {
	p := Bench()
	p.Warmup, p.Measure = 300_000, 300_000
	p.MixWarmup, p.MixMeasure = 300_000, 150_000
	return p
}

// runFig3Fig10 renders Fig. 3 + Fig. 10 on a fresh workbench at the
// given parallelism and returns the concatenated table bytes, the
// memo-key inventory, and the final done/total progress counts.
func runFig3Fig10(t *testing.T, parallelism int) (string, []string, int, int) {
	t.Helper()
	wb := NewWorkbench(fastBench())
	wb.Parallelism = parallelism
	var buf bytes.Buffer
	wb.Fig3(WorkloadID{Kernel: "cc", Graph: "kron"}).Table().Render(&buf)
	wb.Fig10(subsetKron()).Table().Render(&buf)
	done, total, _, _ := wb.Reporter.Snapshot()
	return buf.String(), wb.SortedResultKeys(), done, total
}

// TestParallelDeterminism is the tentpole guarantee: the rendered
// experiment output and the set of memoized runs are byte-identical
// whether the scheduler runs one simulation at a time or eight.
func TestParallelDeterminism(t *testing.T) {
	seq, seqKeys, seqDone, seqTotal := runFig3Fig10(t, 1)
	par, parKeys, parDone, parTotal := runFig3Fig10(t, 8)
	if seq != par {
		t.Errorf("rendered tables differ between -j 1 and -j 8:\n--- j1 ---\n%s\n--- j8 ---\n%s", seq, par)
	}
	if !reflect.DeepEqual(seqKeys, parKeys) {
		t.Errorf("memo keys differ:\n j1: %v\n j8: %v", seqKeys, parKeys)
	}
	// Plan accounting must close exactly: every planned run completed
	// and every cache hit self-planned, at either parallelism.
	if seqDone != seqTotal || parDone != parTotal {
		t.Errorf("progress counts did not close: j1 %d/%d, j8 %d/%d",
			seqDone, seqTotal, parDone, parTotal)
	}
	if seqDone != parDone {
		t.Errorf("run counts differ between parallelism levels: %d vs %d", seqDone, parDone)
	}
}

// TestSingleFlightDedup asserts the single-flight guarantee: two
// goroutines requesting the same (config, workload) point produce
// exactly one live simulation (one StartRun) and one stored result;
// the loser joins the winner's run and reports as cached. The counting
// reporter stub distinguishes live lines from cached ones.
func TestSingleFlightDedup(t *testing.T) {
	wb := NewWorkbench(fastBench())
	wb.Parallelism = 4
	var mu sync.Mutex
	var lines []string
	wb.Progress = func(msg string) {
		mu.Lock()
		lines = append(lines, msg)
		mu.Unlock()
	}

	// The regular suite needs no graph build, keeping the race window
	// focused on the run itself.
	id := WorkloadID{Kernel: "triad", Graph: "reg"}
	cfg := wb.Profile.BaseConfig(1)
	var rs [2]*sim.Result
	var wg sync.WaitGroup
	for i := range rs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rs[i] = wb.RunSingle(cfg, id)
		}()
	}
	wg.Wait()

	if rs[0] != rs[1] {
		t.Errorf("concurrent RunSingle returned distinct results: %p vs %p", rs[0], rs[1])
	}
	if keys := wb.SortedResultKeys(); len(keys) != 1 {
		t.Errorf("want exactly one stored result, got %v", keys)
	}
	mu.Lock()
	defer mu.Unlock()
	live, cached := 0, 0
	for _, l := range lines {
		if strings.Contains(l, "(cached)") {
			cached++
		} else {
			live++
		}
	}
	if live != 1 || cached != 1 {
		t.Errorf("want 1 live + 1 cached progress line, got %d live / %d cached:\n%s",
			live, cached, strings.Join(lines, "\n"))
	}
}

// TestBoundWeaveDeterminism extends the tentpole guarantee to the
// bound–weave engine: multi-core runs through the harness produce
// identical numbers at -wj 1 and -wj 8, and the bound–weave memo keys
// exclude the worker count (so the caches stay shared) while encoding
// the quantum (whose value the counters do depend on).
func TestBoundWeaveDeterminism(t *testing.T) {
	mix := []WorkloadID{
		{Kernel: "pr", Graph: "kron"},
		{Kernel: "cc", Graph: "kron"},
		{Kernel: "bfs", Graph: "kron"},
		{Kernel: "pr", Graph: "urand"},
	}
	run := func(wj int) ([]float64, float64) {
		wb := NewWorkbench(fastBench())
		wb.Parallelism = 8
		wb.WeaveJobs = wj
		base4 := wb.Profile.BaseConfig(mixCores).WithSDCLP()
		return wb.runMix(base4, mix), wb.singleIPC(mix[0])
	}
	ipc1, iso1 := run(1)
	ipc8, iso8 := run(8)
	if !reflect.DeepEqual(ipc1, ipc8) {
		t.Errorf("mix IPCs differ between -wj 1 and -wj 8:\n wj1: %v\n wj8: %v", ipc1, ipc8)
	}
	if iso1 != iso8 {
		t.Errorf("isolated IPC differs between -wj 1 and -wj 8: %v vs %v", iso1, iso8)
	}

	// Memo keys: the quantum is encoded, the worker count is not.
	cfg := sim.TableI(4).WithSDCLP().WithBoundWeave(0, 1)
	id := WorkloadID{Kernel: "pr", Graph: "kron"}
	k1 := runKey(cfg, id)
	cfg.WeaveWorkers = 8
	if k8 := runKey(cfg, id); k1 != k8 {
		t.Errorf("memo key depends on WeaveWorkers: %q vs %q", k1, k8)
	}
	if !strings.Contains(k1, "|bw1024") {
		t.Errorf("bound–weave memo key missing quantum marker: %q", k1)
	}
	if legacy := runKey(sim.TableI(4).WithSDCLP(), id); strings.Contains(legacy, "|bw") {
		t.Errorf("legacy memo key carries a bound–weave marker: %q", legacy)
	}
}
