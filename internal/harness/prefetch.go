package harness

import (
	"fmt"

	"graphmem/internal/sim"
)

// Prefetcher head-to-head ("prefetch"): the competitive baseline suite
// of internal/prefetch — conventional stride, indirect-memory (IMP),
// cross-core LLC (pickle) and their combinations — against the paper's
// Baseline and SDC+LP on the irregular kernels. Like "latency", the
// experiment is opt-in ('all' excludes it): it multiplies the workload
// subset by ~10 configurations.

// PrefetchBranchPenalty is the refill depth of the sensitivity row: the
// branch-misprediction penalty injected on ~1/32 of records, probing
// how prefetch timeliness interacts with pipeline restarts.
const PrefetchBranchPenalty = 14

// PrefetchRow is one (config, workload) outcome.
type PrefetchRow struct {
	// Label names the prefetcher configuration (the config Name alone
	// cannot: presets deliberately do not rename the config).
	Label    string
	Workload WorkloadID
	IPC      float64
	L1MPKI   float64 // L1D+SDC demand MPKI
	L2MPKI   float64
	LLCMPKI  float64
	DRAMRd   int64
	DRAMWr   int64
}

// PrefetchResult holds the head-to-head sweep.
type PrefetchResult struct {
	ID    string
	Title string
	Rows  []PrefetchRow
}

// PrefetchHeadToHead sweeps the prefetcher presets (plus SDC+LP, the
// combined SDC+LP+prefetch configuration, and the branch-penalty
// sensitivity row) over the workloads. A nil subset picks the paper's
// irregular quartet {pr,bfs,cc,sssp} x {kron,urand}.
func (wb *Workbench) PrefetchHeadToHead(subset []WorkloadID) *PrefetchResult {
	if subset == nil {
		var err error
		subset, err = SubsetWorkloads("pr,bfs,cc,sssp", "kron,urand")
		if err != nil {
			panic(err) // static kernel/graph lists; cannot fail
		}
	}
	base := wb.Profile.BaseConfig(1)
	type entry struct {
		label string
		cfg   sim.Config
	}
	configs := []entry{
		{"Baseline (nl+spp)", base},
		{"no prefetch", base.WithPrefetchers("none")},
		{"next-line only", base.WithPrefetchers("nextline")},
		{"stride", base.WithPrefetchers("stride")},
		{"imp", base.WithPrefetchers("imp")},
		{"pickle", base.WithPrefetchers("pickle")},
		{"spp+imp", base.WithPrefetchers("spp+imp")},
		{"SDC+LP", base.WithSDCLP()},
		{"SDC+LP spp+imp", base.WithSDCLP().WithPrefetchers("spp+imp")},
		{fmt.Sprintf("Baseline bp%d", PrefetchBranchPenalty), base.WithBranchMissPenalty(PrefetchBranchPenalty)},
	}
	var jobs []runReq
	for _, e := range configs {
		jobs = append(jobs, jobsFor(e.cfg, subset)...)
	}
	rs := wb.runAll(jobs)

	res := &PrefetchResult{
		ID:    "prefetch",
		Title: "Prefetcher head-to-head: competitive baselines vs SDC+LP",
	}
	for k, e := range configs {
		for i, id := range subset {
			st := rs[k*len(subset)+i].Stats
			res.Rows = append(res.Rows, PrefetchRow{
				Label:    e.label,
				Workload: id,
				IPC:      st.IPC(),
				L1MPKI:   st.L1DemandMPKI(),
				L2MPKI:   st.L2.MPKI(st.Instructions),
				LLCMPKI:  st.LLC.MPKI(st.Instructions),
				DRAMRd:   st.DRAMReads,
				DRAMWr:   st.DRAMWrites,
			})
		}
	}
	return res
}

// Table renders the head-to-head figure.
func (r *PrefetchResult) Table() *Table {
	t := &Table{ID: r.ID, Title: r.Title}
	t.Header = []string{"Config", "Workload", "IPC", "L1D MPKI", "L2 MPKI", "LLC MPKI", "DRAM rd", "DRAM wr"}
	for _, row := range r.Rows {
		t.AddRow(row.Label, row.Workload.String(),
			row.IPC, row.L1MPKI, row.L2MPKI, row.LLCMPKI,
			fmt.Sprint(row.DRAMRd), fmt.Sprint(row.DRAMWr))
	}
	t.Notes = append(t.Notes,
		"presets via Config.Prefetchers (none|nextline|spp|stride|imp|pickle|spp+imp); the Baseline default is next-line L1/SDC + SPP L2",
		fmt.Sprintf("bp%d: Config.BranchMissPenalty sensitivity row (~1/32 of records stall %d cycles; default 0)", PrefetchBranchPenalty, PrefetchBranchPenalty),
	)
	return t
}
