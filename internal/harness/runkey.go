package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strconv"

	"graphmem/internal/sim"
)

// RunKey is the canonical identity of one single-core simulation point,
// shared by the in-memory memo, the disk-backed result store, and
// gmserved. It binds three layers:
//
//   - Memo: the historical in-process memoization string (config name,
//     workload, and the engine-mode suffixes — see memoKey). Unchanged
//     from the ad-hoc concatenation it replaces, pinned by test.
//   - Profile + Warmup/Measure: the workload/graph identity. A profile
//     name fixes the graph generators and their seeds/sizes (Table III
//     scaling), and the windows fix which instructions are measured, so
//     together they identify the simulated input exactly. Generator
//     changes must bump sim.StateVersion.
//   - sim.StateVersion enters via StoreKey's preimage (and the file
//     framing), orphaning stored entries whenever simulated counters
//     could change.
type RunKey struct {
	// Memo is the historical in-memory memoization key.
	Memo string
	// Profile names the scale profile ("bench", "small", "full") whose
	// generators built the workload's graph.
	Profile string
	// Warmup and Measure are the single-core instruction windows the
	// run used.
	Warmup, Measure int64
}

// NewRunKey derives the canonical key of a configured run. cfg must
// already be the configured (windows + check level + sampling applied)
// config — Workbench.runKeyFor does this.
func NewRunKey(cfg sim.Config, id WorkloadID, profile string) RunKey {
	return RunKey{
		Memo:    memoKey(cfg, id),
		Profile: profile,
		Warmup:  cfg.Warmup,
		Measure: cfg.Measure,
	}
}

// String renders the full key anatomy (for diagnostics and the README's
// key-anatomy docs): version, profile, windows, memo.
func (k RunKey) String() string {
	return fmt.Sprintf("gmresult|v%d|%s|w%d|m%d|%s",
		sim.StateVersion, k.Profile, k.Warmup, k.Measure, k.Memo)
}

// StoreKey is the content address of the run in the disk store: the
// first 16 bytes of the sha256 over the full anatomy, hex-encoded. The
// hash keeps file names short and uniform while the preimage carries
// every invalidation axis (bumping sim.StateVersion changes every
// address, orphaning old entries for GC to reap).
func (k RunKey) StoreKey() string {
	h := sha256.Sum256([]byte(k.String()))
	return hex.EncodeToString(h[:16])
}

// runKeyFor derives the canonical key of a run as this workbench would
// execute it.
func (wb *Workbench) runKeyFor(cfg sim.Config, id WorkloadID) RunKey {
	return NewRunKey(cfg, id, wb.Profile.Name)
}

// memoKey is the in-memory memoization key of a job. A flight-recorded
// run is a distinct key: its counters are bit-identical to the
// unrecorded run's, but only it carries a Recorder summary, and sharing
// the key either way would hand one caller the wrong shape. A
// bound–weave run is also a distinct key — its counters depend on the
// quantum — but the weave worker count is deliberately excluded:
// results are identical at any WeaveWorkers, so -wj 1 and -wj 8 must
// share memo entries. A sampled run is a distinct key per schedule —
// its counters are estimates whose values depend on the plan — while
// the checkpoint store is excluded like the weave worker count:
// restored and re-warmed runs are byte-identical, so the store affects
// wall-clock only. With sampling disabled the key is byte-identical to
// what it always was.
func memoKey(cfg sim.Config, id WorkloadID) string {
	k := cfg.Name + "|" + id.String()
	if cfg.FlightRecorder {
		k += "|fr"
	}
	if cfg.Quantum > 0 {
		k += "|bw" + strconv.FormatInt(cfg.Quantum, 10)
	}
	if p := cfg.Sampling.Plan; p.Enabled() {
		k += "|sp" + strconv.FormatInt(p.Period, 10) +
			"/" + strconv.FormatInt(p.SampleLen, 10) +
			"/" + strconv.FormatInt(p.Offset, 10) +
			"/" + strconv.FormatInt(p.DetailWarm, 10)
		if cfg.Sampling.MisWarm {
			k += "|mw"
		}
	}
	// Prefetcher preset and branch-miss penalty are swept axes that do
	// not rename the config; they key only when set, so every
	// default-config key (and with it every existing store address)
	// stays byte-identical.
	if cfg.Prefetchers != "" {
		k += "|pf" + cfg.Prefetchers
	}
	if cfg.BranchMissPenalty > 0 {
		k += "|bp" + strconv.FormatInt(cfg.BranchMissPenalty, 10)
	}
	return k
}

// runKey is memoKey's historical name, kept for the scheduler tests
// that pin the memo-key format.
func runKey(cfg sim.Config, id WorkloadID) string { return memoKey(cfg, id) }
