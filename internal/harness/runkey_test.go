package harness

import (
	"strings"
	"testing"

	"graphmem/internal/sample"
	"graphmem/internal/sim"
)

// TestMemoKeysUnchanged pins the historical in-memory memo keys: RunKey
// replaced the scheduler's ad-hoc string concatenation, and any drift
// here silently invalidates memo sharing between experiments (and,
// through StoreKey's preimage, every disk store on earth).
func TestMemoKeysUnchanged(t *testing.T) {
	id := WorkloadID{Kernel: "pr", Graph: "kron"}
	base := sim.TableI(1).WithWindows(4_000_000, 4_000_000)

	fr := base
	fr.FlightRecorder = true
	bw := base.WithBoundWeave(1024, 4)
	sp := base
	sp.Sampling.Plan = sample.Plan{Period: 100, SampleLen: 10, Offset: 5, DetailWarm: 2}
	sp.Sampling.MisWarm = true
	spNoMW := sp
	spNoMW.Sampling.MisWarm = false

	cases := []struct {
		name string
		cfg  sim.Config
		want string
	}{
		{"plain", base, "Baseline|pr.kron"},
		{"named variant", base.WithSDCLP(), "SDC+LP|pr.kron"},
		{"flight recorder", fr, "Baseline|pr.kron|fr"},
		{"bound-weave", bw, "Baseline|pr.kron|bw1024"},
		{"sampled+miswarm", sp, "Baseline|pr.kron|sp100/10/5/2|mw"},
		{"sampled", spNoMW, "Baseline|pr.kron|sp100/10/5/2"},
		// Prefetcher presets and the branch-penalty knob key without
		// renaming the config; the default ("", 0) adds nothing, keeping
		// every pre-existing memo and store address byte-identical.
		{"prefetch preset", base.WithPrefetchers("imp"), "Baseline|pr.kron|pfimp"},
		{"prefetch combined", base.WithSDCLP().WithPrefetchers("spp+imp"), "SDC+LP|pr.kron|pfspp+imp"},
		{"branch penalty", base.WithBranchMissPenalty(14), "Baseline|pr.kron|bp14"},
		{"preset+penalty", base.WithPrefetchers("stride").WithBranchMissPenalty(7), "Baseline|pr.kron|pfstride|bp7"},
		{"default preset is unkeyed", base.WithPrefetchers("").WithBranchMissPenalty(0), "Baseline|pr.kron"},
	}
	for _, tc := range cases {
		if got := memoKey(tc.cfg, id); got != tc.want {
			t.Errorf("%s: memoKey = %q, want %q", tc.name, got, tc.want)
		}
		// runKey is the historical name and must stay an exact alias.
		if got := runKey(tc.cfg, id); got != memoKey(tc.cfg, id) {
			t.Errorf("%s: runKey diverged from memoKey", tc.name)
		}
	}
}

// TestRunKeyAnatomyAndStoreKey pins the full key anatomy and its
// content address. The StoreKey canary is deliberate: changing the
// preimage format (or sim.StateVersion) orphans every existing store,
// which must be a conscious, test-acknowledged decision.
func TestRunKeyAnatomyAndStoreKey(t *testing.T) {
	cfg := sim.TableI(1).WithWindows(4_000_000, 4_000_000)
	id := WorkloadID{Kernel: "pr", Graph: "kron"}
	k := NewRunKey(cfg, id, "bench")

	if k.Memo != "Baseline|pr.kron" || k.Profile != "bench" || k.Warmup != 4_000_000 || k.Measure != 4_000_000 {
		t.Fatalf("RunKey fields: %+v", k)
	}
	wantAnatomy := "gmresult|v1|bench|w4000000|m4000000|Baseline|pr.kron"
	if got := k.String(); got != wantAnatomy {
		t.Errorf("anatomy = %q, want %q", got, wantAnatomy)
	}
	// sha256("gmresult|v1|bench|w4000000|m4000000|Baseline|pr.kron")[:16],
	// valid while sim.StateVersion == 1.
	const canary = "f872be46cb1374490e623fad419ba197"
	if got := k.StoreKey(); got != canary {
		t.Errorf("StoreKey = %q, want %q (preimage or StateVersion changed?)", got, canary)
	}

	// Every axis must move the address.
	perturb := []RunKey{
		{Memo: "SDC+LP|pr.kron", Profile: "bench", Warmup: 4_000_000, Measure: 4_000_000},
		{Memo: "Baseline|pr.kron", Profile: "small", Warmup: 4_000_000, Measure: 4_000_000},
		{Memo: "Baseline|pr.kron", Profile: "bench", Warmup: 8_000_000, Measure: 4_000_000},
		{Memo: "Baseline|pr.kron", Profile: "bench", Warmup: 4_000_000, Measure: 8_000_000},
	}
	for _, p := range perturb {
		if p.StoreKey() == canary {
			t.Errorf("perturbed key %+v collides with the canary", p)
		}
	}
	if !strings.Contains(k.String(), k.Memo) {
		t.Error("anatomy must embed the memo key verbatim")
	}
}

// TestWorkbenchRunKeyMatchesScheduler ensures the workbench derives the
// canonical key from the same configured config the scheduler memoizes
// under — the invariant that makes planJobs' store probe agree with
// RunSingle's lookup.
func TestWorkbenchRunKeyMatchesScheduler(t *testing.T) {
	wb := NewWorkbench(fastBench())
	id := WorkloadID{Kernel: "triad", Graph: "reg"}
	cfg := wb.configured(wb.Profile.BaseConfig(1))
	k := wb.runKeyFor(cfg, id)
	if k.Memo != memoKey(cfg, id) {
		t.Errorf("runKeyFor memo %q != scheduler memo %q", k.Memo, memoKey(cfg, id))
	}
	if k.Profile != "bench" || k.Warmup != wb.Profile.Warmup || k.Measure != wb.Profile.Measure {
		t.Errorf("runKeyFor identity fields: %+v", k)
	}
}
