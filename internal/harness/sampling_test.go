package harness

import (
	"strings"
	"testing"

	"graphmem/internal/sample"
	"graphmem/internal/sim"
)

// samplingPlan is the fast schedule the workbench tests run under:
// ~6 samples inside fastBench's 300k-instruction window.
func samplingPlan() sample.Plan {
	return sample.Plan{Period: 50_000, SampleLen: 2_000, Offset: 10_000, DetailWarm: 2_000}
}

// TestSampledSweepSharesOneWarmup pins the checkpoint store's purpose:
// a sweep of N configs over one workload, identical in everything the
// warm-up depends on (here: varying only the directory latency),
// performs exactly one functional warm-up. The first run misses and
// captures; the other N-1 hit and restore, whatever order the
// scheduler runs them in.
func TestSampledSweepSharesOneWarmup(t *testing.T) {
	wb := NewWorkbench(fastBench())
	wb.Sampling = samplingPlan()
	store, err := sample.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	wb.Checkpoints = store

	id := WorkloadID{Kernel: "triad", Graph: "reg"}
	base := wb.Profile.BaseConfig(1).WithSDCLP()
	cfgs := []sim.Config{
		base.WithDirLatency(28),
		base.WithDirLatency(56),
		base.WithDirLatency(112),
	}
	jobs := make([]runReq, len(cfgs))
	for i, cfg := range cfgs {
		jobs[i] = runReq{cfg: cfg, id: id}
	}
	results := wb.runAll(jobs)

	hits := 0
	for i, r := range results {
		if r == nil || r.Sampling == nil {
			t.Fatalf("config %d: no sampling estimate on result %v", i, r)
		}
		if r.Sampling.Samples == 0 {
			t.Errorf("config %d: estimate covers zero samples", i)
		}
		if r.Sampling.CheckpointHit {
			hits++
		}
	}
	if m, h := store.Misses(), store.Hits(); m != 1 || h != 2 {
		t.Errorf("store saw %d misses / %d hits; want exactly one warm-up (1 miss, 2 hits)", m, h)
	}
	if hits != 2 {
		t.Errorf("%d results marked CheckpointHit; want 2", hits)
	}

	// The three runs memoized under three distinct sampled keys.
	keys := wb.SortedResultKeys()
	if len(keys) != 3 {
		t.Fatalf("memoized %d keys, want 3: %v", len(keys), keys)
	}
	for _, k := range keys {
		if !strings.Contains(k, "|sp50000/2000/10000/2000") {
			t.Errorf("sampled run key %q missing sampling suffix", k)
		}
	}
}

// TestSamplingOffKeysUnchanged pins the byte-identity contract on the
// memoization layer: with the workbench's sampling knobs at their zero
// values, run keys and results carry no sampling trace at all.
func TestSamplingOffKeysUnchanged(t *testing.T) {
	wb := NewWorkbench(fastBench())
	id := WorkloadID{Kernel: "triad", Graph: "reg"}
	res := wb.RunSingle(wb.Profile.BaseConfig(1), id)
	if res.Sampling != nil {
		t.Error("unsampled run carries a sampling estimate")
	}
	keys := wb.SortedResultKeys()
	if len(keys) != 1 || keys[0] != "Baseline (bench-scale)|triad.reg" {
		t.Errorf("memo keys %v; want the historical unsampled key", keys)
	}
}

// TestSampledRunTracksDetailed validates the estimate end to end
// through the workbench: a sampled run's IPC point estimate lands
// within a few percent of the detailed run of the same config.
func TestSampledRunTracksDetailed(t *testing.T) {
	id := WorkloadID{Kernel: "pr", Graph: "kron"}
	cfg := wbShared.Profile.BaseConfig(1)
	full := wbShared.RunSingle(cfg, id)

	wb := NewWorkbench(Bench())
	wb.Sampling = sample.Plan{Period: 65_000, SampleLen: 5_000, Offset: 13_000, DetailWarm: 5_000}
	// Reuse the shared workbench's graph cache to keep the test cheap.
	wb.graphs = wbShared.graphs
	sampled := wb.RunSingle(cfg, id)
	if sampled.Sampling == nil {
		t.Fatal("sampled workbench produced no estimate")
	}
	if re := relErr(sampled.Sampling.IPC.Mean, full.IPC()); re > 0.03 {
		t.Errorf("sampled IPC %.4f vs detailed %.4f: rel error %.1f%% > 3%%",
			sampled.Sampling.IPC.Mean, full.IPC(), 100*re)
	}
}

func relErr(est, ref float64) float64 {
	d := est - ref
	if d < 0 {
		d = -d
	}
	return d / ref
}
