package harness

import (
	"runtime"
	"sync"

	"graphmem/internal/graph"
	"graphmem/internal/sim"
)

// This file is the parallel run scheduler: a bounded worker pool over
// which experiments enqueue their full run set up front, with
// single-flight deduplication on the memo key so two experiments
// requesting the same (config, workload) point share one in-flight run
// instead of racing or double-computing. Individual simulations stay
// single-threaded and deterministic — only the scheduling is
// concurrent — and every aggregation below consumes results in job
// order, so experiment output is byte-identical at any parallelism.

// runReq names one single-core simulation job: a machine configuration
// and a workload, the workbench's memoization unit.
type runReq struct {
	cfg sim.Config
	id  WorkloadID
}

// jobsFor builds one job per workload on a shared config.
func jobsFor(cfg sim.Config, ids []WorkloadID) []runReq {
	jobs := make([]runReq, len(ids))
	for i, id := range ids {
		jobs[i] = runReq{cfg: cfg, id: id}
	}
	return jobs
}

// runLatch is the single-flight handle of an in-flight RunSingle: the
// owner stores the result and closes done; joiners wait and share it.
// If the owning run panics, the owner records the panic value here and
// still closes done, so joiners re-panic instead of deadlocking and
// the key is retried (not poisoned) by later callers.
type runLatch struct {
	done     chan struct{}
	res      *sim.Result
	panicked any
}

// graphLatch is the single-flight handle of an in-flight graph build,
// with the same panic propagation contract as runLatch.
type graphLatch struct {
	done     chan struct{}
	g        *graph.Graph
	panicked any
}

// ipcLatch is the single-flight handle of an in-flight isolated-IPC
// run (Fig. 14's singles cache).
type ipcLatch struct {
	done chan struct{}
	v    float64
}

// workers resolves the worker-pool width: Parallelism if set, else all
// host cores.
func (wb *Workbench) workers() int {
	if wb.Parallelism > 0 {
		return wb.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// acquire claims one worker-pool slot; every simulation (and the graph
// builds it triggers) runs inside a slot, bounding host CPU and the
// peak number of concurrently live graphs. The pool is sized on first
// use — set Parallelism before running experiments.
func (wb *Workbench) acquire() {
	wb.mu.Lock()
	if wb.sem == nil {
		wb.sem = make(chan struct{}, wb.workers())
	}
	sem := wb.sem
	wb.mu.Unlock()
	sem <- struct{}{}
}

// release returns a slot claimed by acquire.
func (wb *Workbench) release() { <-wb.sem }

// acquireN claims up to want worker-pool slots (at least one, at most
// the pool width) and returns the number granted. Weave-parallel
// simulations run their bound phases on that many host goroutines, so
// the claim keeps total host work bounded by -j. Batch acquisitions are
// serialized (batchMu) so two batch claimants can never deadlock by
// each holding a partial claim; single acquires interleave freely. The
// granted count affects wall-clock only — bound–weave results are
// identical at any worker count — so clamping is always safe.
func (wb *Workbench) acquireN(want int) int {
	if want < 1 {
		want = 1
	}
	if w := wb.workers(); want > w {
		want = w
	}
	wb.batchMu.Lock()
	defer wb.batchMu.Unlock()
	for i := 0; i < want; i++ {
		wb.acquire()
	}
	return want
}

// releaseN returns n slots claimed by acquireN.
func (wb *Workbench) releaseN(n int) {
	for i := 0; i < n; i++ {
		wb.release()
	}
}

// acquireSim claims the pool slots for one multi-core simulation and
// returns the (possibly bound–weave-enabled) config plus the slot count
// to release. With WeaveJobs unset it is a plain single-slot acquire;
// with WeaveJobs > 0 the run switches to the bound–weave engine and its
// worker count is the granted claim.
func (wb *Workbench) acquireSim(cfg sim.Config) (sim.Config, int) {
	if wb.WeaveJobs <= 0 {
		wb.acquire()
		return cfg, 1
	}
	slots := wb.acquireN(wb.WeaveJobs)
	return cfg.WithBoundWeave(0, slots), slots
}

// planJobs registers the jobs that will actually execute with the
// progress reporter: memoized, already-in-flight, and disk-store-held
// keys are excluded (they self-report as cached on completion), as are
// duplicates within the job list, so done/total and the ETA stay
// consistent however much of a sweep earlier experiments (or earlier
// processes, via the store) already computed.
func (wb *Workbench) planJobs(jobs []runReq) {
	live := 0
	seen := make(map[string]bool, len(jobs))
	wb.mu.Lock()
	for _, j := range jobs {
		cfg := wb.configured(j.cfg)
		key := memoKey(cfg, j.id)
		if seen[key] {
			continue
		}
		seen[key] = true
		if _, ok := wb.results[key]; ok {
			continue
		}
		if _, ok := wb.running[key]; ok {
			continue
		}
		if wb.storeEligible(cfg) && wb.Store.Contains(NewRunKey(cfg, j.id, wb.Profile.Name).StoreKey()) {
			continue
		}
		live++
	}
	wb.mu.Unlock()
	wb.Reporter.Plan(live)
	wb.Metrics.Plan(live)
}

// runAll plans and executes the jobs across the worker pool and
// returns their results in job order regardless of completion order,
// so callers aggregate exactly as the sequential schedule did.
func (wb *Workbench) runAll(jobs []runReq) []*sim.Result {
	wb.planJobs(jobs)
	out := make([]*sim.Result, len(jobs))
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = wb.RunSingle(j.cfg, j.id)
		}()
	}
	wg.Wait()
	return out
}

// baselineIPCs returns the Baseline IPC of every workload in subset,
// scheduling anything not yet memoized on the worker pool. It is the
// shared first phase of every speed-up experiment (Figs. 7, 10-13 and
// the τ sweep).
func (wb *Workbench) baselineIPCs(subset []WorkloadID) []float64 {
	rs := wb.runAll(jobsFor(wb.BaseConfig(), subset))
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.IPC()
	}
	return out
}
