package harness

import (
	"sync"
	"testing"
	"time"

	"graphmem/internal/graph"
	"graphmem/internal/sim"
)

// TestRunSinglePanicPropagation pins the worker pool's crash contract:
// when a memoized run panics, the owner and every joiner observe the
// panic (no deadlock), the key is unregistered so later callers retry
// instead of joining a dead latch, and the owner's pool slot is
// released so the pool stays usable.
func TestRunSinglePanicPropagation(t *testing.T) {
	wb := NewWorkbench(fastBench())
	// One slot: a leaked slot would hang the follow-up run below.
	wb.Parallelism = 1

	bad := WorkloadID{Kernel: "nope", Graph: "reg"}
	cfg := wb.Profile.BaseConfig(1)

	// Two concurrent requests for the same crashing key: whichever
	// becomes the owner panics inside Workload(); the other either joins
	// the latch or retries after the key is unregistered. Both must
	// observe a panic.
	panics := make([]any, 2)
	var wg sync.WaitGroup
	for i := range panics {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { panics[i] = recover() }()
			wb.RunSingle(cfg, bad)
		}()
	}
	wg.Wait()
	for i, p := range panics {
		if p == nil {
			t.Fatalf("goroutine %d returned without observing the panic", i)
		}
		if s, ok := p.(string); !ok || s != "harness: unknown regular kernel nope" {
			t.Errorf("goroutine %d recovered %v; want the Workload panic value", i, p)
		}
	}

	// The crashed key must not linger as an in-flight latch.
	wb.mu.Lock()
	_, stuck := wb.running[runKey(cfg, bad)]
	wb.mu.Unlock()
	if stuck {
		t.Error("crashed run left its latch registered")
	}

	// A retry of the same key re-executes (and re-panics) rather than
	// joining a poisoned latch.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("retry of the crashed key did not re-execute")
			}
		}()
		wb.RunSingle(cfg, bad)
	}()

	// The single worker slot must have been released: a valid run on the
	// same pool completes. Run it on a watchdog so a leaked slot fails
	// crisply instead of timing out the package.
	done := make(chan *sim.Result, 1)
	go func() { done <- wb.RunSingle(cfg, WorkloadID{Kernel: "triad", Graph: "reg"}) }()
	select {
	case r := <-done:
		if r == nil || r.IPC() <= 0 {
			t.Errorf("follow-up run returned %v; want a live result", r)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("follow-up run hung: crashed run leaked its worker slot")
	}
}

// TestGraphBuildPanicRetries pins the same contract for the graph
// single-flight: a panicking build propagates to its caller, is
// unregistered, and a later request retries the build.
func TestGraphBuildPanicRetries(t *testing.T) {
	p := fastBench()
	want := graph.Kron(8, 4, 1)
	calls := 0
	p.Graphs = map[string]GraphSpec{
		"flaky": {Name: "flaky", Build: func() *graph.Graph {
			calls++
			if calls == 1 {
				panic("flaky build")
			}
			return want
		}},
	}
	wb := NewWorkbench(p)

	func() {
		defer func() {
			if p := recover(); p != "flaky build" {
				t.Fatalf("first Graph call recovered %v; want the build panic", p)
			}
		}()
		wb.Graph("flaky")
	}()

	if g := wb.Graph("flaky"); g != want {
		t.Errorf("retry returned %p; want the rebuilt graph %p", g, want)
	}
	if calls != 2 {
		t.Errorf("build ran %d times; want 2 (panic, then retry)", calls)
	}
}

// TestParallelismExceedsJobCount runs a pool far wider than the job
// list: the excess slots must be harmless — all jobs complete, the
// progress plan closes exactly, and the results are bit-identical to a
// sequential schedule.
func TestParallelismExceedsJobCount(t *testing.T) {
	ids := []WorkloadID{
		{Kernel: "triad", Graph: "reg"},
		{Kernel: "matvec", Graph: "reg"},
		{Kernel: "stencil", Graph: "reg"},
	}
	run := func(parallelism int) (*Workbench, []*sim.Result) {
		wb := NewWorkbench(fastBench())
		wb.Parallelism = parallelism
		return wb, wb.runAll(jobsFor(wb.BaseConfig(), ids))
	}
	wbWide, wide := run(64)
	_, narrow := run(1)

	if len(wide) != len(ids) {
		t.Fatalf("got %d results for %d jobs", len(wide), len(ids))
	}
	for i := range wide {
		if wide[i] == nil || narrow[i] == nil {
			t.Fatalf("job %d returned nil result", i)
		}
		if wide[i].IPC() != narrow[i].IPC() {
			t.Errorf("%s: IPC %v at -j 64 vs %v at -j 1", ids[i], wide[i].IPC(), narrow[i].IPC())
		}
	}
	done, total, _, _ := wbWide.Reporter.Snapshot()
	if done != total || done != len(ids) {
		t.Errorf("progress did not close: %d/%d done, want %d/%d", done, total, len(ids), len(ids))
	}
}
