package harness

import (
	"encoding/json"
	"fmt"

	"graphmem/internal/check"
	"graphmem/internal/sim"
	"graphmem/internal/store"
)

// This file is the workbench's disk tier: the content-addressed result
// store slots under the in-memory memo (lookup order: memory memo →
// disk store → live run) with the store's own single-flight and claim
// discipline layered below the workbench's run latches. Stored results
// are byte-identical to live ones — the determinism contract pinned by
// TestStoreReportsByteIdentical — so the tier affects wall-clock only.

// OpenResultStore opens (creating if needed) a result store rooted at
// dir, framed with the simulator's magic and StateVersion. Assign the
// returned store to Workbench.Store (and gmserved's server) before the
// first run; cmd/gmreport and cmd/gmsim expose it as -store.
func OpenResultStore(dir string) (*store.Store, error) {
	return store.Open(dir, sim.ResultFraming())
}

// storeEligible reports whether the configured run may be served from
// (and written to) the disk store. Checked runs are excluded both ways:
// the differential checker's value is the execution itself, so serving
// a checked run from disk would silently skip the check, and its Result
// carries a Check summary unchecked consumers must not inherit.
func (wb *Workbench) storeEligible(cfg sim.Config) bool {
	return wb.Store != nil && cfg.CheckLevel == check.Off
}

// decodeStored validates a store payload against the run it claims to
// cache. A nil return means the payload is unusable (undecodable or a
// key collision) and the caller must Reject it and run live — the store
// can never poison a sweep.
func decodeStored(payload []byte, cfg sim.Config, id WorkloadID) *sim.Result {
	res, err := sim.DecodeResult(payload)
	if err != nil {
		return nil
	}
	if res.Config != cfg.Name || res.Workload != id.String() {
		return nil
	}
	return res
}

// StoreSummary renders the one-line store outcome the CLI tools print
// to stderr after a sweep (and CI's warm-store job parses).
func StoreSummary(s *store.Store) string {
	entries, bytes, _ := s.Size()
	return fmt.Sprintf("store %s: hits=%d misses=%d evictions=%d entries=%d bytes=%d",
		s.Dir(), s.Hits(), s.Misses(), s.Evictions(), entries, bytes)
}

// fig3StoreKey is the canonical key of a Fig. 3 stride/DRAM profiling
// run: a "fig3|" memo namespace keeps it disjoint from every simulation
// point while sharing the profile/window/StateVersion invalidation
// axes.
func (wb *Workbench) fig3StoreKey(id WorkloadID, cfg sim.Config) RunKey {
	return RunKey{
		Memo:    "fig3|" + id.String(),
		Profile: wb.Profile.Name,
		Warmup:  cfg.Warmup,
		Measure: cfg.Measure,
	}
}

// storedFig3 decodes and validates a cached Fig. 3 profile.
func storedFig3(payload []byte, id WorkloadID) *Fig3Result {
	res := new(Fig3Result)
	if err := json.Unmarshal(payload, res); err != nil {
		return nil
	}
	if res.Workload != id || len(res.Labels) == 0 {
		return nil
	}
	return res
}
