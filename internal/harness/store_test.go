package harness

import (
	"bytes"
	"os"
	"reflect"
	"testing"

	"graphmem/internal/check"
	"graphmem/internal/obs"
	"graphmem/internal/sim"
	"graphmem/internal/store"
)

// renderStoredSweep renders Fig. 3 + Fig. 10 (the parallel-determinism
// suite's sweep) on a fresh workbench backed by st (nil = no disk tier)
// and returns the rendered bytes, the metrics registry, and the final
// progress counts.
func renderStoredSweep(t *testing.T, st *store.Store) (string, *obs.Metrics, int, int) {
	t.Helper()
	wb := NewWorkbench(fastBench())
	wb.Store = st
	wb.Metrics = obs.NewMetrics()
	if st != nil {
		wb.Metrics.AttachStore(st)
	}
	var buf bytes.Buffer
	wb.Fig3(WorkloadID{Kernel: "cc", Graph: "kron"}).Table().Render(&buf)
	wb.Fig10(subsetKron()).Table().Render(&buf)
	done, total, _, _ := wb.Reporter.Snapshot()
	return buf.String(), wb.Metrics, done, total
}

// TestStoreReportsByteIdentical is the tier's acceptance gate: a sweep
// rendered live, through a cold store, and through a warm store is
// byte-identical, and the warm pass executes zero simulations (every
// point — including the Fig. 3 profiling run — is a store hit).
func TestStoreReportsByteIdentical(t *testing.T) {
	live, _, _, _ := renderStoredSweep(t, nil)

	dir := t.TempDir()
	cold, err := OpenResultStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	coldOut, coldM, coldDone, coldTotal := renderStoredSweep(t, cold)
	if coldOut != live {
		t.Errorf("cold-store sweep differs from live:\n--- live ---\n%s\n--- cold ---\n%s", live, coldOut)
	}
	if h, m := cold.Hits(), cold.Misses(); h != 0 || m == 0 {
		t.Errorf("cold pass: hits=%d misses=%d, want 0 hits and every point a miss", h, m)
	}
	_, coldFinished, _, coldStored := coldM.Counts()
	if coldFinished == 0 || coldStored != 0 {
		t.Errorf("cold pass: finished=%d stored=%d, want live runs and no store hits", coldFinished, coldStored)
	}
	entries, _, err := cold.Size()
	if err != nil {
		t.Fatal(err)
	}
	if entries != int(cold.Misses()) {
		t.Errorf("store holds %d entries after %d misses; every miss must publish", entries, cold.Misses())
	}

	// Warm: a fresh workbench and a fresh store handle over the same
	// directory, as a new process would see it.
	warm, err := OpenResultStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	warmOut, warmM, warmDone, warmTotal := renderStoredSweep(t, warm)
	if warmOut != live {
		t.Errorf("warm-store sweep differs from live:\n--- live ---\n%s\n--- warm ---\n%s", live, warmOut)
	}
	if h, m := warm.Hits(), warm.Misses(); m != 0 || h != cold.Misses() {
		t.Errorf("warm pass: hits=%d misses=%d, want every cold miss (%d) served as a hit", h, m, cold.Misses())
	}
	_, warmFinished, _, warmStored := warmM.Counts()
	if warmFinished != 0 {
		t.Errorf("warm pass executed %d live simulations, want 0", warmFinished)
	}
	if warmStored == 0 {
		t.Error("warm pass recorded no store hits in metrics")
	}
	// Progress accounting must close at every tier (store hits self-plan).
	if coldDone != coldTotal || warmDone != warmTotal {
		t.Errorf("progress counts did not close: cold %d/%d, warm %d/%d",
			coldDone, coldTotal, warmDone, warmTotal)
	}
}

// storeRunOnce runs triad.reg on the baseline through a workbench
// backed by a fresh handle over dir, returning the result and the
// number of live simulations it took.
func storeRunOnce(t *testing.T, dir string) (*sim.Result, int64) {
	t.Helper()
	st, err := OpenResultStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	wb := NewWorkbench(fastBench())
	wb.Store = st
	wb.Metrics = obs.NewMetrics()
	res := wb.RunSingle(wb.Profile.BaseConfig(1), WorkloadID{Kernel: "triad", Graph: "reg"})
	_, finished, _, _ := wb.Metrics.Counts()
	return res, finished
}

// TestStoreDamageFallsBackToLive mirrors the checkpoint store's damage
// test at the harness level: corrupted, truncated, and wrong-point
// entries silently fall back to a live run whose result matches the
// original, and the rerun heals the store entry.
func TestStoreDamageFallsBackToLive(t *testing.T) {
	id := WorkloadID{Kernel: "triad", Graph: "reg"}
	damage := map[string]func(t *testing.T, path string, good *sim.Result){
		"corrupt": func(t *testing.T, path string, _ *sim.Result) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)-1] ^= 1
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"truncated": func(t *testing.T, path string, _ *sim.Result) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		},
		// A well-framed payload for the wrong point (hash collision or
		// an operator copying files between stores): decodeStored must
		// reject it by identity, not checksum.
		"wrong point": func(t *testing.T, path string, good *sim.Result) {
			other := *good
			other.Workload = "pr.kron"
			payload, err := sim.EncodeResult(&other)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, sim.ResultFraming().Encode(payload), 0o644); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, mutate := range damage {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			good, finished := storeRunOnce(t, dir)
			if finished != 1 {
				t.Fatalf("seeding pass ran %d simulations, want 1", finished)
			}

			// Locate and damage the entry on disk.
			st, err := OpenResultStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			wb := NewWorkbench(fastBench())
			wb.Store = st
			skey := wb.runKeyFor(wb.configured(wb.Profile.BaseConfig(1)), id).StoreKey()
			if !st.Contains(skey) {
				t.Fatalf("seeded store does not contain %s", skey)
			}
			mutate(t, st.Path(skey), good)

			rerun, finished := storeRunOnce(t, dir)
			if finished != 1 {
				t.Errorf("damaged entry did not fall back to a live run (finished=%d)", finished)
			}
			if !reflect.DeepEqual(good, rerun) {
				t.Errorf("recovered result differs from the original:\n good: %+v\nrerun: %+v", good, rerun)
			}
			// The rerun must have healed the entry: a third pass hits.
			healed, finished := storeRunOnce(t, dir)
			if finished != 0 {
				t.Errorf("healed entry missed (finished=%d)", finished)
			}
			if !reflect.DeepEqual(good, healed) {
				t.Error("healed result differs from the original")
			}
		})
	}
}

// TestStoreConcurrentWorkbenches drives two workbenches (two store
// handles over one directory, as two processes would be) at the same
// point concurrently: the claim protocol lets exactly one simulate and
// the other returns the published result.
func TestStoreConcurrentWorkbenches(t *testing.T) {
	dir := t.TempDir()
	type outcome struct {
		res      *sim.Result
		finished int64
	}
	ch := make(chan outcome, 2)
	for i := 0; i < 2; i++ {
		go func() {
			res, finished := storeRunOnce(t, dir)
			ch <- outcome{res, finished}
		}()
	}
	a, b := <-ch, <-ch
	if a.finished+b.finished != 1 {
		t.Errorf("%d live simulations across two workbenches, want exactly 1 (claim dedup)",
			a.finished+b.finished)
	}
	if !reflect.DeepEqual(a.res, b.res) {
		t.Error("the two workbenches returned different results for one point")
	}
}

// TestCheckedRunsBypassStore pins the eligibility rule: a checked run
// neither reads nor writes the store (the checker's value is the
// execution itself), and its checked result never leaks to disk.
func TestCheckedRunsBypassStore(t *testing.T) {
	st, err := OpenResultStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	wb := NewWorkbench(fastBench())
	wb.Store = st
	wb.CheckLevel = check.Full
	wb.RunSingle(wb.Profile.BaseConfig(1), WorkloadID{Kernel: "triad", Graph: "reg"})
	if h, m := st.Hits(), st.Misses(); h != 0 || m != 0 {
		t.Errorf("checked run touched the store: hits=%d misses=%d", h, m)
	}
	entries, _, err := st.Size()
	if err != nil {
		t.Fatal(err)
	}
	if entries != 0 {
		t.Errorf("checked run published %d store entries, want 0", entries)
	}
}
