package harness

import (
	"fmt"

	"graphmem/internal/stats"
)

// Fig10Result is the SDC size exploration (Fig. 10): per-size SDC MPKI
// and geomean speed-up.
type Fig10Result struct {
	SizesKB    []int
	AvgSDCMPKI []float64
	GeomeanPct []float64
}

// Fig10 sweeps the SDC size over 8/16/32 KiB with the associativity and
// latency pairings of Section V-B1. Baselines come from the shared
// baselineIPCs job API (usually already memoized by an earlier
// experiment); the size grid is enqueued on the worker pool at once.
func (wb *Workbench) Fig10(subset []WorkloadID) *Fig10Result {
	if subset == nil {
		subset = AllWorkloads()
	}
	res := &Fig10Result{SizesKB: []int{8, 16, 32}}
	baseIPC := wb.baselineIPCs(subset)
	var jobs []runReq
	for _, kb := range res.SizesKB {
		jobs = append(jobs, jobsFor(wb.Profile.BaseConfig(1).WithSDCLP().WithSDCSize(kb), subset)...)
	}
	rs := wb.runAll(jobs)
	for k := range res.SizesKB {
		var mpki float64
		ratios := make([]float64, len(subset))
		for i := range subset {
			r := rs[k*len(subset)+i]
			mpki += r.Stats.SDC.MPKI(r.Stats.Instructions)
			ratios[i] = r.IPC() / baseIPC[i]
		}
		res.AvgSDCMPKI = append(res.AvgSDCMPKI, mpki/float64(len(subset)))
		res.GeomeanPct = append(res.GeomeanPct, stats.GeoMeanSpeedup(ratios))
	}
	return res
}

// Table renders both panels of Fig. 10.
func (r *Fig10Result) Table() *Table {
	t := &Table{ID: "fig10", Title: "SDC size exploration (Fig. 10a/10b)",
		Header: []string{"SDC size", "avg SDC MPKI", "geomean speed-up"}}
	for i, kb := range r.SizesKB {
		t.AddRow(fmt.Sprintf("%d KiB", kb),
			fmt.Sprintf("%.1f", r.AvgSDCMPKI[i]),
			fmt.Sprintf("%+.1f%%", r.GeomeanPct[i]))
	}
	t.Notes = append(t.Notes, "paper: MPKI 50.5/49.1/48.0; 8 KiB performs best due to 1-cycle latency")
	return t
}

// SweepResult is a one-dimensional design sweep (Figs. 11, 12): the
// geomean speed-up per swept value.
type SweepResult struct {
	ID         string
	Title      string
	Param      string
	Values     []string
	GeomeanPct []float64
	Note       string
}

// Table renders the sweep.
func (r *SweepResult) Table() *Table {
	t := &Table{ID: r.ID, Title: r.Title, Header: []string{r.Param, "geomean speed-up"}}
	for i, v := range r.Values {
		t.AddRow(v, fmt.Sprintf("%+.1f%%", r.GeomeanPct[i]))
	}
	if r.Note != "" {
		t.Notes = append(t.Notes, r.Note)
	}
	return t
}

// Fig11 sweeps the LP entry count with a fully-associative table
// (8/16/32/64 entries).
func (wb *Workbench) Fig11(subset []WorkloadID) *SweepResult {
	if subset == nil {
		subset = AllWorkloads()
	}
	res := &SweepResult{ID: "fig11", Title: "LP fully-associative entry sweep (Fig. 11)", Param: "entries",
		Note: "paper: 13.7% / 17.9% / 20.7% / 20.7%"}
	entrySweep := []int{8, 16, 32, 64}
	baseIPC := wb.baselineIPCs(subset)
	var jobs []runReq
	for _, entries := range entrySweep {
		jobs = append(jobs, jobsFor(wb.Profile.BaseConfig(1).WithSDCLP().WithLP(entries, entries, 8), subset)...)
	}
	rs := wb.runAll(jobs)
	for k, entries := range entrySweep {
		ratios := make([]float64, len(subset))
		for i := range subset {
			ratios[i] = rs[k*len(subset)+i].IPC() / baseIPC[i]
		}
		res.Values = append(res.Values, fmt.Sprint(entries))
		res.GeomeanPct = append(res.GeomeanPct, stats.GeoMeanSpeedup(ratios))
	}
	return res
}

// Fig12 sweeps the LP associativity with 32 entries (direct-mapped, 2-,
// 8-way, fully associative).
func (wb *Workbench) Fig12(subset []WorkloadID) *SweepResult {
	if subset == nil {
		subset = AllWorkloads()
	}
	res := &SweepResult{ID: "fig12", Title: "LP associativity sweep, 32 entries (Fig. 12)", Param: "ways",
		Note: "paper: 17.0% / 20.3% / 20.7% / 20.7%; 8-way is near-optimal"}
	waySweep := []int{1, 2, 8, 32}
	baseIPC := wb.baselineIPCs(subset)
	var jobs []runReq
	for _, ways := range waySweep {
		jobs = append(jobs, jobsFor(wb.Profile.BaseConfig(1).WithSDCLP().WithLP(32, ways, 8), subset)...)
	}
	rs := wb.runAll(jobs)
	for k, ways := range waySweep {
		ratios := make([]float64, len(subset))
		for i := range subset {
			ratios[i] = rs[k*len(subset)+i].IPC() / baseIPC[i]
		}
		res.Values = append(res.Values, fmt.Sprint(ways))
		res.GeomeanPct = append(res.GeomeanPct, stats.GeoMeanSpeedup(ratios))
	}
	return res
}

// TauResult is the τ_glob sensitivity study of Section V-B3: geomean
// speed-up of the graph suite and of the regular ("SPEC" stand-in)
// suite per threshold.
type TauResult struct {
	Taus       []uint64
	GraphPct   []float64
	RegularPct []float64
}

// RegularWorkloads returns the ids of the regular (SPEC stand-in)
// suite; their Graph field is the pseudo-input "reg".
func RegularWorkloads() []WorkloadID {
	return []WorkloadID{
		{Kernel: "triad", Graph: "reg"},
		{Kernel: "matvec", Graph: "reg"},
		{Kernel: "stencil", Graph: "reg"},
	}
}

// Tau sweeps τ_glob over the graph subset plus the regular suite.
func (wb *Workbench) Tau(subset []WorkloadID, taus []uint64) *TauResult {
	if subset == nil {
		subset = AllWorkloads()
	}
	if taus == nil {
		taus = []uint64{0, 2, 4, 8, 16, 32, 64, 256}
	}
	reg := RegularWorkloads()
	res := &TauResult{Taus: taus}
	// One id list covers both suites so baselines and every τ point
	// flow through the same job API; slices below split the results.
	ids := make([]WorkloadID, 0, len(subset)+len(reg))
	ids = append(append(ids, subset...), reg...)
	baseIPC := wb.baselineIPCs(ids)
	graphBase, regBase := baseIPC[:len(subset)], baseIPC[len(subset):]
	lp := wb.Profile.BaseConfig(1).LP
	var jobs []runReq
	for _, tau := range taus {
		jobs = append(jobs, jobsFor(wb.Profile.BaseConfig(1).WithSDCLP().WithLP(lp.Entries, lp.Ways, tau), ids)...)
	}
	rs := wb.runAll(jobs)
	for k := range taus {
		block := rs[k*len(ids) : (k+1)*len(ids)]
		g := make([]float64, len(subset))
		for i := range subset {
			g[i] = block[i].IPC() / graphBase[i]
		}
		rg := make([]float64, len(reg))
		for i := range reg {
			rg[i] = block[len(subset)+i].IPC() / regBase[i]
		}
		res.GraphPct = append(res.GraphPct, stats.GeoMeanSpeedup(g))
		res.RegularPct = append(res.RegularPct, stats.GeoMeanSpeedup(rg))
	}
	return res
}

// Table renders the sweep.
func (r *TauResult) Table() *Table {
	t := &Table{ID: "tau", Title: "tau_glob sensitivity (Section V-B3)",
		Header: []string{"tau_glob", "graph geomean", "regular geomean"}}
	for i, tau := range r.Taus {
		t.AddRow(fmt.Sprint(tau),
			fmt.Sprintf("%+.1f%%", r.GraphPct[i]),
			fmt.Sprintf("%+.1f%%", r.RegularPct[i]))
	}
	t.Notes = append(t.Notes, "paper: tau=8 gives +20.3% on GAP while keeping SPEC at +0.5%")
	return t
}
