package harness

import (
	"fmt"

	"graphmem/internal/stats"
)

// Fig10Result is the SDC size exploration (Fig. 10): per-size SDC MPKI
// and geomean speed-up.
type Fig10Result struct {
	SizesKB    []int
	AvgSDCMPKI []float64
	GeomeanPct []float64
}

// Fig10 sweeps the SDC size over 8/16/32 KiB with the associativity and
// latency pairings of Section V-B1.
func (wb *Workbench) Fig10(subset []WorkloadID) *Fig10Result {
	if subset == nil {
		subset = AllWorkloads()
	}
	res := &Fig10Result{SizesKB: []int{8, 16, 32}}
	wb.Reporter.Plan(len(subset) * (1 + len(res.SizesKB)))
	base := wb.BaseConfig()
	baseIPC := make([]float64, len(subset))
	for i, w := range subset {
		baseIPC[i] = wb.RunSingle(base, w).IPC()
	}
	for _, kb := range res.SizesKB {
		cfg := wb.Profile.BaseConfig(1).WithSDCLP().WithSDCSize(kb)
		var mpki float64
		ratios := make([]float64, len(subset))
		for i, w := range subset {
			r := wb.RunSingle(cfg, w)
			mpki += r.Stats.SDC.MPKI(r.Stats.Instructions)
			ratios[i] = r.IPC() / baseIPC[i]
		}
		res.AvgSDCMPKI = append(res.AvgSDCMPKI, mpki/float64(len(subset)))
		res.GeomeanPct = append(res.GeomeanPct, stats.GeoMeanSpeedup(ratios))
	}
	return res
}

// Table renders both panels of Fig. 10.
func (r *Fig10Result) Table() *Table {
	t := &Table{ID: "fig10", Title: "SDC size exploration (Fig. 10a/10b)",
		Header: []string{"SDC size", "avg SDC MPKI", "geomean speed-up"}}
	for i, kb := range r.SizesKB {
		t.AddRow(fmt.Sprintf("%d KiB", kb),
			fmt.Sprintf("%.1f", r.AvgSDCMPKI[i]),
			fmt.Sprintf("%+.1f%%", r.GeomeanPct[i]))
	}
	t.Notes = append(t.Notes, "paper: MPKI 50.5/49.1/48.0; 8 KiB performs best due to 1-cycle latency")
	return t
}

// SweepResult is a one-dimensional design sweep (Figs. 11, 12): the
// geomean speed-up per swept value.
type SweepResult struct {
	ID         string
	Title      string
	Param      string
	Values     []string
	GeomeanPct []float64
	Note       string
}

// Table renders the sweep.
func (r *SweepResult) Table() *Table {
	t := &Table{ID: r.ID, Title: r.Title, Header: []string{r.Param, "geomean speed-up"}}
	for i, v := range r.Values {
		t.AddRow(v, fmt.Sprintf("%+.1f%%", r.GeomeanPct[i]))
	}
	if r.Note != "" {
		t.Notes = append(t.Notes, r.Note)
	}
	return t
}

// Fig11 sweeps the LP entry count with a fully-associative table
// (8/16/32/64 entries).
func (wb *Workbench) Fig11(subset []WorkloadID) *SweepResult {
	if subset == nil {
		subset = AllWorkloads()
	}
	res := &SweepResult{ID: "fig11", Title: "LP fully-associative entry sweep (Fig. 11)", Param: "entries",
		Note: "paper: 13.7% / 17.9% / 20.7% / 20.7%"}
	wb.Reporter.Plan(len(subset) * 5)
	base := wb.BaseConfig()
	baseIPC := make([]float64, len(subset))
	for i, w := range subset {
		baseIPC[i] = wb.RunSingle(base, w).IPC()
	}
	for _, entries := range []int{8, 16, 32, 64} {
		cfg := wb.Profile.BaseConfig(1).WithSDCLP().WithLP(entries, entries, 8)
		ratios := make([]float64, len(subset))
		for i, w := range subset {
			ratios[i] = wb.RunSingle(cfg, w).IPC() / baseIPC[i]
		}
		res.Values = append(res.Values, fmt.Sprint(entries))
		res.GeomeanPct = append(res.GeomeanPct, stats.GeoMeanSpeedup(ratios))
	}
	return res
}

// Fig12 sweeps the LP associativity with 32 entries (direct-mapped, 2-,
// 8-way, fully associative).
func (wb *Workbench) Fig12(subset []WorkloadID) *SweepResult {
	if subset == nil {
		subset = AllWorkloads()
	}
	res := &SweepResult{ID: "fig12", Title: "LP associativity sweep, 32 entries (Fig. 12)", Param: "ways",
		Note: "paper: 17.0% / 20.3% / 20.7% / 20.7%; 8-way is near-optimal"}
	wb.Reporter.Plan(len(subset) * 5)
	base := wb.BaseConfig()
	baseIPC := make([]float64, len(subset))
	for i, w := range subset {
		baseIPC[i] = wb.RunSingle(base, w).IPC()
	}
	for _, ways := range []int{1, 2, 8, 32} {
		cfg := wb.Profile.BaseConfig(1).WithSDCLP().WithLP(32, ways, 8)
		ratios := make([]float64, len(subset))
		for i, w := range subset {
			ratios[i] = wb.RunSingle(cfg, w).IPC() / baseIPC[i]
		}
		res.Values = append(res.Values, fmt.Sprint(ways))
		res.GeomeanPct = append(res.GeomeanPct, stats.GeoMeanSpeedup(ratios))
	}
	return res
}

// TauResult is the τ_glob sensitivity study of Section V-B3: geomean
// speed-up of the graph suite and of the regular ("SPEC" stand-in)
// suite per threshold.
type TauResult struct {
	Taus       []uint64
	GraphPct   []float64
	RegularPct []float64
}

// RegularWorkloads returns the ids of the regular (SPEC stand-in)
// suite; their Graph field is the pseudo-input "reg".
func RegularWorkloads() []WorkloadID {
	return []WorkloadID{
		{Kernel: "triad", Graph: "reg"},
		{Kernel: "matvec", Graph: "reg"},
		{Kernel: "stencil", Graph: "reg"},
	}
}

// Tau sweeps τ_glob over the graph subset plus the regular suite.
func (wb *Workbench) Tau(subset []WorkloadID, taus []uint64) *TauResult {
	if subset == nil {
		subset = AllWorkloads()
	}
	if taus == nil {
		taus = []uint64{0, 2, 4, 8, 16, 32, 64, 256}
	}
	reg := RegularWorkloads()
	res := &TauResult{Taus: taus}
	wb.Reporter.Plan((len(subset) + len(reg)) * (1 + len(taus)))
	base := wb.BaseConfig()
	graphBase := make([]float64, len(subset))
	for i, w := range subset {
		graphBase[i] = wb.RunSingle(base, w).IPC()
	}
	regBase := make([]float64, len(reg))
	for i, w := range reg {
		regBase[i] = wb.RunSingle(base, w).IPC()
	}
	lp := wb.Profile.BaseConfig(1).LP
	for _, tau := range taus {
		cfg := wb.Profile.BaseConfig(1).WithSDCLP().WithLP(lp.Entries, lp.Ways, tau)
		g := make([]float64, len(subset))
		for i, w := range subset {
			g[i] = wb.RunSingle(cfg, w).IPC() / graphBase[i]
		}
		rg := make([]float64, len(reg))
		for i, w := range reg {
			rg[i] = wb.RunSingle(cfg, w).IPC() / regBase[i]
		}
		res.GraphPct = append(res.GraphPct, stats.GeoMeanSpeedup(g))
		res.RegularPct = append(res.RegularPct, stats.GeoMeanSpeedup(rg))
	}
	return res
}

// Table renders the sweep.
func (r *TauResult) Table() *Table {
	t := &Table{ID: "tau", Title: "tau_glob sensitivity (Section V-B3)",
		Header: []string{"tau_glob", "graph geomean", "regular geomean"}}
	for i, tau := range r.Taus {
		t.AddRow(fmt.Sprint(tau),
			fmt.Sprintf("%+.1f%%", r.GraphPct[i]),
			fmt.Sprintf("%+.1f%%", r.RegularPct[i]))
	}
	t.Notes = append(t.Notes, "paper: tau=8 gives +20.3% on GAP while keeping SPEC at +0.5%")
	return t
}
