package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a renderable experiment result: the rows/series the paper's
// corresponding table or figure reports.
type Table struct {
	ID     string // experiment id ("fig7", "tab4", ...)
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row, stringifying the cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case fmt.Stringer:
			row[i] = v.String()
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			if i == 0 {
				b.WriteString(c + strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad) + c)
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the table as plain CSV (header row then data rows;
// title and notes are dropped — they live in the run manifest).
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// pct formats a ratio as the percentage improvement the paper quotes.
func pct(ratio float64) string {
	return fmt.Sprintf("%+.1f%%", (ratio-1)*100)
}
