package harness

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestRenderCSVQuotesSpecialCells(t *testing.T) {
	tb := &Table{ID: "t", Title: "quoting", Header: []string{"a", "b"}}
	tb.AddRow("comma, cell", `quote "q" cell`)

	var buf bytes.Buffer
	if err := tb.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.String()
	if !strings.Contains(raw, `"comma, cell"`) {
		t.Errorf("comma cell not quoted: %s", raw)
	}
	if !strings.Contains(raw, `"quote ""q"" cell"`) {
		t.Errorf("quote cell not escaped: %s", raw)
	}

	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("output does not re-parse as CSV: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want header + 1", len(rows))
	}
	if rows[1][0] != "comma, cell" || rows[1][1] != `quote "q" cell` {
		t.Errorf("round trip lost cell content: %v", rows[1])
	}
}

func TestRenderEmptyTable(t *testing.T) {
	tb := &Table{ID: "empty", Title: "no rows", Header: []string{"w", "longer"}}

	var b strings.Builder
	tb.Render(&b)
	out := b.String()
	if !strings.Contains(out, "== empty: no rows ==") {
		t.Errorf("missing title line: %q", out)
	}
	if !strings.Contains(out, "w  longer") {
		t.Errorf("missing header line: %q", out)
	}

	var buf bytes.Buffer
	if err := tb.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Errorf("empty table CSV must be header only, got %d rows", len(rows))
	}
}

func TestLatencyTableRendersNilRecorders(t *testing.T) {
	r := &LatencyResult{ID: "latency", Title: "t"}
	r.Rows = append(r.Rows, LatencyRow{
		Workload: WorkloadID{Kernel: "pr", Graph: "kron"},
		Config:   "Baseline",
		Rec:      nil,
	})
	tb := r.Table()
	if len(tb.Rows) != 1 {
		t.Fatalf("got %d rows", len(tb.Rows))
	}
	if tb.Rows[0][2] != "-" {
		t.Errorf("nil recorder must render placeholders: %v", tb.Rows[0])
	}
	if len(tb.Header) != len(tb.Rows[0]) {
		t.Errorf("row width %d != header width %d", len(tb.Rows[0]), len(tb.Header))
	}
}
