package harness

import (
	"fmt"

	corepkg "graphmem/internal/core"
	"graphmem/internal/kernels"
	"graphmem/internal/mem"
)

// Tab1 renders the system configuration (Table I) of the profile's
// machine.
func (wb *Workbench) Tab1() *Table {
	cfg := wb.Profile.BaseConfig(1)
	t := &Table{ID: "tab1", Title: "System configuration (Table I)", Header: []string{"Component", "Description"}}
	t.AddRow("CPU", fmt.Sprintf("%.3f GHz, %d-wide out-of-order, %d-entry ROB",
		cfg.DRAM.CPUFreqMHz/1000, cfg.CPU.Width, cfg.CPU.ROB))
	t.AddRow("L1-D Cache", fmt.Sprintf("%d KiB, %d-way, %d-cycle latency, %d-entry MSHR, LRU, next-line prefetcher",
		cfg.L1D.SizeBytes>>10, cfg.L1D.Ways, cfg.L1D.Latency, cfg.L1D.MSHRs))
	t.AddRow("SDC", fmt.Sprintf("%d KiB, %d-way, %d-cycle latency, %d-entry MSHR, LRU, next-line prefetcher",
		cfg.SDC.SizeBytes>>10, cfg.SDC.Ways, cfg.SDC.Latency, cfg.SDC.MSHRs))
	t.AddRow("LP Predictor", fmt.Sprintf("%d entries, %d-way, LRU, tau_glob=%d",
		cfg.LP.Entries, cfg.LP.Ways, cfg.LP.Tau))
	t.AddRow("L2 Cache", fmt.Sprintf("%d KiB, %d-way, %d-cycle latency, %d-entry MSHR, LRU, SPP prefetcher",
		cfg.L2.SizeBytes>>10, cfg.L2.Ways, cfg.L2.Latency, cfg.L2.MSHRs))
	t.AddRow("LLC", fmt.Sprintf("%d KiB per core, %d-way, %d-cycle latency, %d-entry MSHR, LRU",
		cfg.LLCPerCoreBytes>>10, cfg.LLCWays, cfg.LLCLatency, cfg.LLCMSHRs))
	t.AddRow("SDCDir", fmt.Sprintf("%d entries per core, %d-way, 1-cycle latency, LRU",
		cfg.SDCDirEntriesPerCore, cfg.SDCDirWays))
	t.AddRow("L1 DTLB", "64-entry, 4-way, 1-cycle latency")
	t.AddRow("L2 TLB", "1536-entry, 12-way, 8-cycle latency")
	t.AddRow("DRAM", fmt.Sprintf("DDR4, data rate %.3f GT/s, I/O bus %.1f MHz, tRP=tRCD=tCAS=%d cycles, %d channel(s)",
		cfg.DRAM.BusFreqMHz*2/1000, cfg.DRAM.BusFreqMHz, cfg.DRAM.TCAS, cfg.DRAMChannels))
	if wb.Profile.Name == "bench" {
		t.Notes = append(t.Notes, "bench profile shrinks L1D/L2/LLC (and halves the SDC) to keep graph:LLC ratios representative at small graph sizes")
	}
	return t
}

// Tab2 renders the graph-kernel characteristics (Table II).
func (wb *Workbench) Tab2() *Table {
	t := &Table{ID: "tab2", Title: "Graph kernels (Table II)",
		Header: []string{"Kernel", "irregData ElemSz", "Execution style", "Use frontier"}}
	g := wb.Graph("road") // cheapest input; Info() is static per kernel
	for _, name := range kernels.Names() {
		inst := kernels.Registry()[name](g, mem.NewSpace(0))
		info := inst.Info()
		frontier := "No"
		if info.UsesFrontier {
			frontier = "Yes"
		}
		t.AddRow(name, info.IrregElemBytes, string(info.Style), frontier)
	}
	return t
}

// Tab3 renders the input-graph inventory (Table III) with this
// profile's synthetic scales.
func (wb *Workbench) Tab3() *Table {
	t := &Table{ID: "tab3", Title: "Input graphs (Table III, synthetic stand-ins)",
		Header: []string{"Graph", "Vertices (M)", "Edges (M)", "MaxDeg", "AvgDeg"}}
	for _, name := range GraphNames {
		g := wb.Graph(name)
		s := g.ComputeStats()
		t.AddRow(name,
			fmt.Sprintf("%.2f", float64(s.Vertices)/1e6),
			fmt.Sprintf("%.2f", float64(s.Edges)/1e6),
			s.MaxDegree,
			fmt.Sprintf("%.1f", s.AvgDegree))
	}
	t.Notes = append(t.Notes,
		"synthetic generators matched by degree distribution and ID locality; see DESIGN.md substitutions")
	return t
}

// Tab4 renders the per-core hardware budget (Table IV).
func (wb *Workbench) Tab4(cores int) *Table {
	cfg := wb.Profile.BaseConfig(cores)
	rows := corepkg.Budget(cfg.SDC.SizeBytes, cfg.LP.Entries, cfg.SDCDirEntriesPerCore, cores)
	t := &Table{ID: "tab4", Title: "Hardware budget per core (Table IV)",
		Header: []string{"Structure", "Entries", "Bits/entry", "Total KB"}}
	for _, r := range rows {
		t.AddRow(r.Name, r.Entries, r.BitsPerItem, fmt.Sprintf("%.2f", r.KB))
	}
	t.AddRow("Total", "", "", fmt.Sprintf("%.2f", corepkg.TotalKB(rows)))
	return t
}
