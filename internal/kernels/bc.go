package kernels

import (
	"graphmem/internal/cache"
	"graphmem/internal/graph"
	"graphmem/internal/mem"
	"graphmem/internal/trace"
)

// BC approximates betweenness centrality with the Brandes algorithm
// from a few sources, like GAP's -i sampling mode: a forward BFS
// accumulates shortest-path counts (sigma, the 8 B irregular element of
// Table II), then a backward pass over the BFS levels accumulates
// dependencies (delta, 4 B).
type BC struct {
	g *graph.Graph

	sigma []int64
	depth []int32
	delta []float64
	bc    []float64

	regOA, regNA, regSigma, regDepth, regDelta, regQueue *mem.Region

	// Sources are the sampled source vertices.
	Sources []int32
}

// NewBC prepares betweenness centrality on g.
func NewBC(g *graph.Graph, space *mem.Space) Instance {
	n := int64(g.N)
	b := &BC{
		g:     g,
		sigma: make([]int64, n),
		depth: make([]int32, n),
		delta: make([]float64, n),
		bc:    make([]float64, n),
	}
	b.regOA = space.Alloc("bc.oa", uint64(n+1)*8, 8, mem.ClassRegular)
	b.regNA = space.Alloc("bc.na", uint64(g.NumEdges())*4, 4, mem.ClassStreaming)
	b.regSigma = space.Alloc("bc.sigma", uint64(n)*8, 8, mem.ClassIrregular)
	b.regDepth = space.Alloc("bc.depth", uint64(n)*4, 4, mem.ClassIrregular)
	b.regDelta = space.Alloc("bc.delta", uint64(n)*4, 4, mem.ClassIrregular)
	b.regQueue = space.Alloc("bc.queue", uint64(n)*4, 4, mem.ClassRegular)
	b.Sources = defaultSources(g, 2)
	return b
}

// Info implements Instance (Table II row for BC: 8B + 4B irregular
// elements).
func (b *BC) Info() Info {
	return Info{Name: "bc", IrregElemBytes: "8B + 4B", Style: PushMostly, UsesFrontier: true}
}

// IrregularRegions implements Instance.
func (b *BC) IrregularRegions() []*mem.Region {
	return []*mem.Region{b.regSigma, b.regDepth, b.regDelta}
}

// Oracle implements Instance: T-OPT covers sigma, the widest irregular
// structure.
func (b *BC) Oracle() cache.NextUseOracle {
	return NewTransposeOracle(b.regSigma, b.g.NA, b.g.N)
}

// Centrality returns the accumulated centrality scores of the last Run.
func (b *BC) Centrality() []float64 { return b.bc }

// Run implements Instance.
func (b *BC) Run(tr *trace.Tracer) {
	g := b.g
	oa := newTraced(tr, b.regOA)
	na := newTraced(tr, b.regNA)
	sigma := newTraced(tr, b.regSigma)
	depth := newTraced(tr, b.regDepth)
	delta := newTraced(tr, b.regDelta)
	queue := newTraced(tr, b.regQueue)

	pcQ := tr.Site("bc.fwd.load_queue")
	pcOA := tr.Site("bc.fwd.load_oa")
	pcNA := tr.Site("bc.fwd.load_na")
	pcDepth := tr.Site("bc.fwd.probe_depth")
	pcDepthSt := tr.Site("bc.fwd.store_depth")
	pcSigmaLd := tr.Site("bc.fwd.load_sigma")
	pcSigmaSt := tr.Site("bc.fwd.store_sigma")
	pcQPush := tr.Site("bc.fwd.push_queue")
	pcBQ := tr.Site("bc.bwd.load_queue")
	pcBOA := tr.Site("bc.bwd.load_oa")
	pcBNA := tr.Site("bc.bwd.load_na")
	pcBDepth := tr.Site("bc.bwd.load_depth")
	pcBSigma := tr.Site("bc.bwd.load_sigma")
	pcBDelta := tr.Site("bc.bwd.load_delta")
	pcBDeltaSt := tr.Site("bc.bwd.store_delta")
	pcBCSt := tr.Site("bc.bwd.store_bc")

	for i := range b.bc {
		b.bc[i] = 0
	}

	var edgesDone uint64
	for _, src := range b.Sources {
		if tr.Done() {
			return
		}
		n := int64(g.N)
		for i := int64(0); i < n; i++ {
			b.sigma[i] = 0
			b.depth[i] = -1
			b.delta[i] = 0
		}
		b.sigma[src] = 1
		b.depth[src] = 0

		// Forward phase: BFS recording sigma and level boundaries.
		order := []int32{src}
		levelEnds := []int{1}
		head := 0
		level := int32(0)
		for head < len(order) && !tr.Done() {
			end := levelEnds[len(levelEnds)-1]
			for ; head < end; head++ {
				if tr.Done() {
					return
				}
				qSeq := queue.load(pcQ, int64(head), trace.NoDep)
				u := order[head]
				oaSeq := oa.load(pcOA, int64(u)+1, qSeq)
				tr.Exec(3)
				lo, hi := g.OA[u], g.OA[u+1]
				for i := lo; i < hi; i++ {
					naSeq := na.load(pcNA, i, oaSeq)
					v := g.NA[i]
					depth.load(pcDepth, int64(v), naSeq)
					tr.Exec(2)
					if b.depth[v] == -1 {
						b.depth[v] = level + 1
						depth.store(pcDepthSt, int64(v), naSeq)
						queue.store(pcQPush, int64(len(order)), trace.NoDep)
						order = append(order, v)
					}
					if b.depth[v] == level+1 {
						sigma.load(pcSigmaLd, int64(v), naSeq)
						b.sigma[v] += b.sigma[u]
						sigma.store(pcSigmaSt, int64(v), naSeq)
						tr.Exec(2)
					}
				}
				edgesDone += uint64(hi - lo)
				tr.Progress(edgesDone)
			}
			if len(order) > end {
				levelEnds = append(levelEnds, len(order))
				level++
			}
		}

		// Backward phase: walk the BFS order in reverse, accumulating
		// dependencies into delta and bc.
		for idx := len(order) - 1; idx >= 0 && !tr.Done(); idx-- {
			qSeq := queue.load(pcBQ, int64(idx), trace.NoDep)
			u := order[idx]
			oaSeq := oa.load(pcBOA, int64(u)+1, qSeq)
			tr.Exec(3)
			lo, hi := g.OA[u], g.OA[u+1]
			for i := lo; i < hi; i++ {
				naSeq := na.load(pcBNA, i, oaSeq)
				v := g.NA[i]
				depth.load(pcBDepth, int64(v), naSeq)
				tr.Exec(2)
				if b.depth[v] == b.depth[u]+1 {
					sigma.load(pcBSigma, int64(v), naSeq)
					delta.load(pcBDelta, int64(v), naSeq)
					contrib := float64(b.sigma[u]) / float64(b.sigma[v]) * (1 + b.delta[v])
					b.delta[u] += contrib
					delta.store(pcBDeltaSt, int64(u), trace.NoDep)
					tr.Exec(4)
				}
			}
			edgesDone += uint64(hi - lo)
			tr.Progress(edgesDone)
			if u != src {
				b.bc[u] += b.delta[u]
				delta.store(pcBCSt, int64(u), trace.NoDep)
				tr.Exec(2)
			}
		}
	}
}
