package kernels

import (
	"graphmem/internal/cache"
	"graphmem/internal/graph"
	"graphmem/internal/mem"
	"graphmem/internal/trace"
)

// BFS is GAP's direction-optimizing breadth-first search: top-down steps
// process the frontier queue and probe parent[NA[i]] (irregular), and
// when the frontier grows past a threshold the kernel switches to
// bottom-up steps that scan all unvisited vertices probing a frontier
// bitmap through the incoming-neighbor stream.
type BFS struct {
	g   *graph.Graph // out edges
	in  *graph.Graph // incoming edges for bottom-up steps
	src int32

	parent []int32
	depth  []int32

	regOA, regNA, regInOA, regInNA    *mem.Region
	regParent, regFrontier, regBitmap *mem.Region

	// Alpha and Beta are GAP's direction-switch parameters.
	Alpha, Beta int64

	// Sources to run (restarting); defaults to a few spread vertices.
	Sources []int32
}

// NewBFS prepares BFS on g.
func NewBFS(g *graph.Graph, space *mem.Space) Instance {
	n := int64(g.N)
	b := &BFS{
		g:      g,
		in:     g.TransposeCached(),
		parent: make([]int32, n),
		depth:  make([]int32, n),
		Alpha:  14,
		Beta:   24,
	}
	b.regOA = space.Alloc("bfs.oa", uint64(n+1)*8, 8, mem.ClassRegular)
	b.regNA = space.Alloc("bfs.na", uint64(g.NumEdges())*4, 4, mem.ClassStreaming)
	b.regInOA = space.Alloc("bfs.in_oa", uint64(n+1)*8, 8, mem.ClassRegular)
	b.regInNA = space.Alloc("bfs.in_na", uint64(b.in.NumEdges())*4, 4, mem.ClassStreaming)
	b.regParent = space.Alloc("bfs.parent", uint64(n)*4, 4, mem.ClassIrregular)
	b.regFrontier = space.Alloc("bfs.frontier", uint64(n)*4, 4, mem.ClassRegular)
	b.regBitmap = space.Alloc("bfs.bitmap", uint64((n+63)/64)*8, 8, mem.ClassIrregular)
	b.Sources = defaultSources(g, 4)
	return b
}

// defaultSources picks k deterministic non-isolated source vertices
// spread over the ID space.
func defaultSources(g *graph.Graph, k int) []int32 {
	var srcs []int32
	step := g.N / int32(k)
	if step == 0 {
		step = 1
	}
	for v := int32(0); v < g.N && len(srcs) < k; v += step {
		u := v
		for u < g.N && g.Degree(u) == 0 {
			u++
		}
		if u < g.N {
			srcs = append(srcs, u)
		}
	}
	if len(srcs) == 0 {
		srcs = []int32{0}
	}
	return srcs
}

// Info implements Instance (Table II row for BFS).
func (b *BFS) Info() Info {
	return Info{Name: "bfs", IrregElemBytes: "4B", Style: PushPull, UsesFrontier: true}
}

// IrregularRegions implements Instance.
func (b *BFS) IrregularRegions() []*mem.Region {
	return []*mem.Region{b.regParent, b.regBitmap}
}

// Oracle implements Instance: T-OPT covers the parent array scheduled
// by the out-neighbor stream.
func (b *BFS) Oracle() cache.NextUseOracle {
	return NewTransposeOracle(b.regParent, b.g.NA, b.g.N)
}

// Parent returns the parent array of the last source processed.
func (b *BFS) Parent() []int32 { return b.parent }

// Depth returns the depth array of the last source processed.
func (b *BFS) Depth() []int32 { return b.depth }

// Run implements Instance.
func (b *BFS) Run(tr *trace.Tracer) {
	oa := newTraced(tr, b.regOA)
	na := newTraced(tr, b.regNA)
	inOA := newTraced(tr, b.regInOA)
	inNA := newTraced(tr, b.regInNA)
	parent := newTraced(tr, b.regParent)
	frontier := newTraced(tr, b.regFrontier)
	bitmap := newTraced(tr, b.regBitmap)

	pcFront := tr.Site("bfs.td.load_frontier")
	pcOA := tr.Site("bfs.td.load_oa")
	pcNA := tr.Site("bfs.td.load_na")
	pcProbe := tr.Site("bfs.td.probe_parent")
	pcClaim := tr.Site("bfs.td.store_parent")
	pcPush := tr.Site("bfs.td.push_frontier")
	pcBuDepth := tr.Site("bfs.bu.load_parent")
	pcBuOA := tr.Site("bfs.bu.load_in_oa")
	pcBuNA := tr.Site("bfs.bu.load_in_na")
	pcBuBit := tr.Site("bfs.bu.probe_bitmap")
	pcBuClaim := tr.Site("bfs.bu.store_parent")
	pcBmStore := tr.Site("bfs.bm.store_bitmap")

	var edgesDone uint64
	for _, src := range b.Sources {
		if tr.Done() {
			return
		}
		b.runOne(tr, src, &edgesDone,
			oa, na, inOA, inNA, parent, frontier, bitmap,
			pcFront, pcOA, pcNA, pcProbe, pcClaim, pcPush,
			pcBuDepth, pcBuOA, pcBuNA, pcBuBit, pcBuClaim, pcBmStore)
	}
}

func (b *BFS) runOne(tr *trace.Tracer, src int32, edgesDone *uint64,
	oa, na, inOA, inNA, parent, frontier, bitmap traced,
	pcFront, pcOA, pcNA, pcProbe, pcClaim, pcPush,
	pcBuDepth, pcBuOA, pcBuNA, pcBuBit, pcBuClaim, pcBmStore uint64) {

	g := b.g
	for i := range b.parent {
		b.parent[i] = -1
		b.depth[i] = -1
	}
	b.parent[src] = src
	b.depth[src] = 0

	cur := []int32{src}
	depth := int32(0)
	for len(cur) > 0 && !tr.Done() {
		depth++
		// Direction heuristic: edges out of the frontier vs remaining.
		var frontEdges int64
		for _, u := range cur {
			frontEdges += g.Degree(u)
		}
		if frontEdges > g.NumEdges()/b.Alpha {
			cur, depth = b.bottomUpSteps(tr, cur, depth, edgesDone,
				inOA, inNA, parent, bitmap, pcBuDepth, pcBuOA, pcBuNA, pcBuBit, pcBuClaim, pcBmStore)
			continue
		}
		var next []int32
		for j, u := range cur {
			if tr.Done() {
				return
			}
			fSeq := frontier.load(pcFront, int64(j), trace.NoDep)
			oaSeq := oa.load(pcOA, int64(u)+1, fSeq)
			tr.Exec(3)
			lo, hi := g.OA[u], g.OA[u+1]
			for i := lo; i < hi; i++ {
				// Value-annotated: IMP learns the parent[NA[i]] probe.
				naSeq := na.loadv(pcNA, i, oaSeq, uint64(g.NA[i]))
				v := g.NA[i]
				parent.load(pcProbe, int64(v), naSeq)
				tr.Exec(2)
				if b.parent[v] == -1 {
					b.parent[v] = u
					b.depth[v] = depth
					parent.store(pcClaim, int64(v), naSeq)
					frontier.store(pcPush, int64(len(next)), trace.NoDep)
					next = append(next, v)
					tr.Exec(2)
				}
			}
			*edgesDone += uint64(hi - lo)
			tr.Progress(*edgesDone)
		}
		cur = next
	}
}

// bottomUpSteps runs bottom-up iterations until the frontier shrinks
// below N/Beta, then converts the bitmap back to a queue.
func (b *BFS) bottomUpSteps(tr *trace.Tracer, cur []int32, depth int32, edgesDone *uint64,
	inOA, inNA, parent, bitmap traced,
	pcBuDepth, pcBuOA, pcBuNA, pcBuBit, pcBuClaim, pcBmStore uint64) ([]int32, int32) {

	g, in := b.g, b.in
	n := int64(g.N)
	front := make([]uint64, (n+63)/64)
	for _, u := range cur {
		front[u>>6] |= 1 << (uint(u) & 63)
		bitmap.store(pcBmStore, int64(u>>6), trace.NoDep)
	}
	frontCount := int64(len(cur))

	for frontCount > 0 && !tr.Done() {
		next := make([]uint64, len(front))
		var nextCount int64
		for v := int64(0); v < n; v++ {
			if tr.Done() {
				return nil, depth
			}
			pSeq := parent.load(pcBuDepth, v, trace.NoDep)
			tr.Exec(2)
			if b.parent[v] != -1 {
				continue
			}
			oaSeq := inOA.load(pcBuOA, v+1, pSeq)
			lo, hi := in.OA[v], in.OA[v+1]
			for i := lo; i < hi; i++ {
				naSeq := inNA.load(pcBuNA, i, oaSeq)
				u := in.NA[i]
				bitmap.load(pcBuBit, int64(u>>6), naSeq)
				tr.Exec(2)
				if front[u>>6]&(1<<(uint(u)&63)) != 0 {
					b.parent[v] = u
					b.depth[v] = depth
					parent.store(pcBuClaim, v, naSeq)
					next[v>>6] |= 1 << (uint(v) & 63)
					bitmap.store(pcBmStore, v>>6, trace.NoDep)
					nextCount++
					tr.Exec(2)
					break
				}
			}
			*edgesDone += uint64(hi - lo)
		}
		tr.Progress(*edgesDone)
		front = next
		frontCount = nextCount
		depth++
		if frontCount < n/b.Beta {
			break
		}
	}
	// Convert bitmap frontier back to a queue for top-down. depth was
	// incremented past the last assigned level; hand back the last
	// assigned one so the caller's loop-top increment lines up.
	var out []int32
	for v := int64(0); v < n; v++ {
		if front[v>>6]&(1<<(uint(v)&63)) != 0 {
			out = append(out, int32(v))
		}
	}
	return out, depth - 1
}
