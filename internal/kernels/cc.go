package kernels

import (
	"graphmem/internal/cache"
	"graphmem/internal/graph"
	"graphmem/internal/mem"
	"graphmem/internal/trace"
)

// CC computes connected components with the Shiloach-Vishkin algorithm
// (the GAP reference the paper cites): alternating hook phases over all
// edges — with the double-indirect comp[comp[v]] accesses that make CC
// one of the most irregular kernels — and pointer-jumping compress
// phases, until a fixed point.
type CC struct {
	g    *graph.Graph
	comp []int32

	regOA, regNA, regComp *mem.Region

	// Iterations records hook+compress rounds of the last Run.
	Iterations int
}

// NewCC prepares connected components on g (treated as undirected; the
// generators emit symmetric graphs for CC inputs, as GAP does).
func NewCC(g *graph.Graph, space *mem.Space) Instance {
	n := int64(g.N)
	c := &CC{g: g, comp: make([]int32, n)}
	c.regOA = space.Alloc("cc.oa", uint64(n+1)*8, 8, mem.ClassRegular)
	c.regNA = space.Alloc("cc.na", uint64(g.NumEdges())*4, 4, mem.ClassStreaming)
	c.regComp = space.Alloc("cc.comp", uint64(n)*4, 4, mem.ClassIrregular)
	return c
}

// Info implements Instance (Table II row for CC).
func (c *CC) Info() Info {
	return Info{Name: "cc", IrregElemBytes: "4B", Style: PushMostly, UsesFrontier: false}
}

// IrregularRegions implements Instance.
func (c *CC) IrregularRegions() []*mem.Region { return []*mem.Region{c.regComp} }

// Oracle implements Instance.
func (c *CC) Oracle() cache.NextUseOracle {
	return NewTransposeOracle(c.regComp, c.g.NA, c.g.N)
}

// Components returns the component label array of the last Run.
func (c *CC) Components() []int32 { return c.comp }

// Run implements Instance.
func (c *CC) Run(tr *trace.Tracer) {
	g := c.g
	n := int64(g.N)
	oa := newTraced(tr, c.regOA)
	na := newTraced(tr, c.regNA)
	comp := newTraced(tr, c.regComp)

	pcOA := tr.Site("cc.hook.load_oa")
	pcNA := tr.Site("cc.hook.load_na")
	pcCompU := tr.Site("cc.hook.load_comp_u")
	pcCompV := tr.Site("cc.hook.load_comp_v")
	pcHookChk := tr.Site("cc.hook.load_comp_comp")
	pcHookSt := tr.Site("cc.hook.store_comp")
	pcJumpLd := tr.Site("cc.compress.load_chain")
	pcJumpSt := tr.Site("cc.compress.store_comp")

	for v := range c.comp {
		c.comp[v] = int32(v)
	}

	c.Iterations = 0
	var edgesDone uint64
	for change := true; change && !tr.Done(); {
		change = false
		c.Iterations++
		// Hook: for every edge (u,v), link the larger label's root to
		// the smaller label.
		for u := int64(0); u < n; u++ {
			if tr.Done() {
				return
			}
			oa.load(pcOA, u+1, trace.NoDep)
			tr.Exec(2)
			lo, hi := g.OA[u], g.OA[u+1]
			cuSeq := comp.load(pcCompU, u, trace.NoDep)
			for i := lo; i < hi; i++ {
				// Value-annotated: IMP learns the comp[NA[i]] gather.
				naSeq := na.loadv(pcNA, i, trace.NoDep, uint64(g.NA[i]))
				v := int64(g.NA[i])
				comp.load(pcCompV, v, naSeq)
				tr.Exec(2)
				cu, cv := c.comp[u], c.comp[v]
				if cu < cv {
					// comp[comp[v]] = comp[u]: double indirection.
					chk := comp.load(pcHookChk, int64(cv), naSeq)
					if c.comp[cv] == cv {
						c.comp[cv] = cu
						comp.store(pcHookSt, int64(cv), chk)
						change = true
					}
					tr.Exec(2)
				} else if cv < cu {
					chk := comp.load(pcHookChk, int64(cu), cuSeq)
					if c.comp[cu] == cu {
						c.comp[cu] = cv
						comp.store(pcHookSt, int64(cu), chk)
						change = true
					}
					tr.Exec(2)
				}
			}
			edgesDone += uint64(hi - lo)
			tr.Progress(edgesDone)
		}
		// Compress: pointer jumping until every vertex points at a root.
		for v := int64(0); v < n; v++ {
			if tr.Done() {
				return
			}
			dep := comp.load(pcJumpLd, v, trace.NoDep)
			for c.comp[v] != c.comp[c.comp[v]] {
				// Chase the chain: each hop depends on the previous.
				dep = comp.load(pcJumpLd, int64(c.comp[v]), dep)
				c.comp[v] = c.comp[c.comp[v]]
				comp.store(pcJumpSt, v, dep)
				tr.Exec(2)
			}
			tr.Exec(1)
		}
	}
}
