// Package kernels implements the six GAP benchmark kernels the paper
// evaluates (Table II) — BFS, PR, CC, BC, TC and SSSP — plus a small
// "regular suite" standing in for SPEC in the τ_glob safety experiment.
//
// Each kernel computes its real result in Go while emitting the memory
// accesses it performs on its simulated data structures through a
// trace.Tracer: synthetic per-site PCs, addresses inside mem.Space
// regions, dependency edges for indirect accesses, and non-memory
// instruction counts modelling the surrounding scalar work. Kernels
// also export the metadata the evaluation needs: which regions an
// expert would classify cache-averse (the Expert Programmer baseline)
// and a transpose-derived next-use oracle (the T-OPT baseline).
package kernels

import (
	"graphmem/internal/cache"
	"graphmem/internal/graph"
	"graphmem/internal/mem"
	"graphmem/internal/trace"
)

// Style is a kernel's execution style (Table II).
type Style string

// Execution styles from Table II.
const (
	PushMostly Style = "Push-Mostly"
	PushPull   Style = "Push & Pull"
	PullOnly   Style = "Pull-Only"
	PushOnly   Style = "Push-Only"
)

// Info is one kernel's Table II row.
type Info struct {
	// Name is the kernel's short name ("bfs", "pr", ...).
	Name string
	// IrregElemBytes describes the element size(s) of the irregularly
	// accessed data ("4B", "8B + 4B").
	IrregElemBytes string
	// Style is the push/pull execution style.
	Style Style
	// UsesFrontier reports whether the kernel maintains a frontier.
	UsesFrontier bool
}

// Instance is a kernel prepared on a concrete graph with its data
// structures allocated in a core's address space, ready to run any
// number of times.
type Instance interface {
	// Info returns the kernel's metadata.
	Info() Info
	// Run executes the kernel, emitting its trace through tr. Run may
	// be invoked repeatedly (multi-core runs restart early finishers);
	// each invocation recomputes from scratch.
	Run(tr *trace.Tracer)
	// IrregularRegions lists the regions an expert programmer would
	// route to the SDC (the Expert Programmer baseline of Section V-C).
	IrregularRegions() []*mem.Region
	// Oracle returns the transpose-derived next-use oracle for the
	// T-OPT baseline, or nil when the kernel has no property array
	// T-OPT covers.
	Oracle() cache.NextUseOracle
}

// Builder constructs an Instance for a kernel on a graph, allocating
// its data structures in space.
type Builder func(g *graph.Graph, space *mem.Space) Instance

// traced wraps a region with load/store emission helpers shared by all
// kernels. Values live in plain Go slices owned by the kernels; traced
// only translates indices to addresses.
type traced struct {
	reg *mem.Region
	tr  *trace.Tracer
}

func newTraced(tr *trace.Tracer, reg *mem.Region) traced {
	return traced{reg: reg, tr: tr}
}

// load emits a read of element i and returns its sequence number.
func (a traced) load(pc uint64, i int64, dep int64) int64 {
	return a.tr.Load(pc, a.reg.ElemAddr(i), int(a.reg.ElemSize), dep)
}

// loadv emits a read of element i annotated with the value the load
// returns (index loads feeding gathers; see trace.Tracer.LoadValue).
func (a traced) loadv(pc uint64, i int64, dep int64, value uint64) int64 {
	return a.tr.LoadValue(pc, a.reg.ElemAddr(i), int(a.reg.ElemSize), dep, value)
}

// store emits a write of element i and returns its sequence number.
func (a traced) store(pc uint64, i int64, dep int64) int64 {
	return a.tr.Store(pc, a.reg.ElemAddr(i), int(a.reg.ElemSize), dep)
}

// TransposeOracle implements cache.NextUseOracle for a per-vertex
// property region whose irregular reference stream is the neighbors
// array scanned in order — exactly the schedule T-OPT (Balaji et al.)
// derives from the graph transpose. For each vertex it holds the sorted
// list of positions (edge indices) at which the vertex's property
// element is referenced; Rank quantizes the distance from the current
// traversal position to the covered block's next reference.
type TransposeOracle struct {
	region *mem.Region
	// posOA/pos is a CSR-like layout: positions of vertex v are
	// pos[posOA[v]:posOA[v+1]], ascending.
	posOA []int64
	pos   []int64
	// ptr[v] indexes the next not-yet-passed position of v; advanced
	// monotonically as progress grows.
	ptr []int64
	// horizon is the sweep length (total positions); the schedule
	// repeats every horizon for iterative kernels.
	horizon int64
	// progress is the current position in the sweep.
	progress int64
	elems    int64
}

// NewTransposeOracle builds the oracle for property region reg
// referenced by the stream na (the neighbors array in traversal order)
// over n vertices.
func NewTransposeOracle(reg *mem.Region, na []int32, n int32) *TransposeOracle {
	counts := make([]int64, n+1)
	for _, v := range na {
		counts[v+1]++
	}
	for i := int32(0); i < n; i++ {
		counts[i+1] += counts[i]
	}
	posOA := make([]int64, n+1)
	copy(posOA, counts)
	pos := make([]int64, len(na))
	cursor := make([]int64, n)
	copy(cursor, counts[:n])
	for i, v := range na {
		pos[cursor[v]] = int64(i)
		cursor[v]++
	}
	return &TransposeOracle{
		region:  reg,
		posOA:   posOA,
		pos:     pos,
		ptr:     append([]int64(nil), posOA[:n]...),
		horizon: int64(len(na)),
		elems:   int64(n),
	}
}

// SetProgress records the traversal position (edges processed since the
// run began); the schedule wraps every horizon.
func (o *TransposeOracle) SetProgress(edges uint64) {
	if o.horizon == 0 {
		return
	}
	p := int64(edges % uint64(o.horizon))
	if p < o.progress {
		// New sweep: rewind the per-vertex pointers.
		copy(o.ptr, o.posOA[:o.elems])
	}
	o.progress = p
}

// nextRef returns the distance (in positions) from progress to vertex
// v's next reference, wrapping to the next sweep; horizon when v is
// never referenced.
func (o *TransposeOracle) nextRef(v int64) int64 {
	lo, hi := o.posOA[v], o.posOA[v+1]
	if lo == hi {
		return o.horizon
	}
	p := o.ptr[v]
	for p < hi && o.pos[p] < o.progress {
		p++
	}
	o.ptr[v] = p
	if p < hi {
		return o.pos[p] - o.progress
	}
	// Wraps to next sweep.
	return o.pos[lo] + o.horizon - o.progress
}

// Rank implements cache.NextUseOracle.
func (o *TransposeOracle) Rank(blk mem.BlockAddr) uint8 {
	addr := blk.Addr()
	if !o.region.Contains(addr) {
		return cache.RankDefault
	}
	first := int64(uint64(addr-o.region.Base) / o.region.ElemSize)
	perBlock := int64(mem.BlockSize / o.region.ElemSize)
	last := first + perBlock - 1
	if last >= o.elems {
		last = o.elems - 1
	}
	best := o.horizon
	for v := first; v <= last; v++ {
		if d := o.nextRef(v); d < best {
			best = d
		}
	}
	// Quantize to 8 bits over one sweep.
	if o.horizon == 0 {
		return cache.RankMax
	}
	r := best * int64(cache.RankMax) / o.horizon
	if r >= int64(cache.RankMax) {
		return cache.RankMax
	}
	return uint8(r)
}

// Registry returns the six GAP kernel builders keyed by name, in the
// paper's Table II order.
func Registry() map[string]Builder {
	return map[string]Builder{
		"bc":   NewBC,
		"bfs":  NewBFS,
		"cc":   NewCC,
		"pr":   NewPR,
		"tc":   NewTC,
		"sssp": NewSSSP,
		"spmv": NewSpMV, // bonus kernel (Section II-A), not part of the 36-workload suite
	}
}

// Names returns kernel names in Table II order.
func Names() []string { return []string{"bc", "bfs", "cc", "pr", "tc", "sssp"} }
