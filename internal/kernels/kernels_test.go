package kernels

import (
	"math"
	"testing"

	"graphmem/internal/graph"
	"graphmem/internal/mem"
	"graphmem/internal/trace"
)

// runFull executes an instance with an unlimited counting sink and
// returns the record count, so results are complete and verifiable.
func runFull(t *testing.T, inst Instance) int64 {
	t.Helper()
	sink := &trace.CountingSink{}
	tr := trace.New(sink)
	inst.Run(tr)
	if sink.Records == 0 {
		t.Fatal("kernel emitted no trace records")
	}
	return sink.Records
}

func testGraph(seed uint64) *graph.Graph {
	return graph.Urand(500, 2000, seed)
}

// --- reference implementations ---

func refBFSDepth(g *graph.Graph, src int32) []int32 {
	depth := make([]int32, g.N)
	for i := range depth {
		depth[i] = -1
	}
	depth[src] = 0
	q := []int32{src}
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		for _, v := range g.Neighbors(u) {
			if depth[v] == -1 {
				depth[v] = depth[u] + 1
				q = append(q, v)
			}
		}
	}
	return depth
}

func refPageRank(g *graph.Graph, damping float64, iters int) []float64 {
	n := int64(g.N)
	scores := make([]float64, n)
	next := make([]float64, n)
	for i := range scores {
		scores[i] = 1 / float64(n)
	}
	base := (1 - damping) / float64(n)
	for it := 0; it < iters; it++ {
		for i := range next {
			next[i] = 0
		}
		for u := int32(0); u < g.N; u++ {
			d := g.Degree(u)
			if d == 0 {
				continue
			}
			share := scores[u] / float64(d)
			for _, v := range g.Neighbors(u) {
				next[v] += share
			}
		}
		for i := range next {
			next[i] = base + damping*next[i]
		}
		scores, next = next, scores
	}
	return scores
}

// refComponents labels components via union-find over undirected edges.
func refComponents(g *graph.Graph) []int32 {
	parent := make([]int32, g.N)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for u := int32(0); u < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			ru, rv := find(u), find(v)
			if ru != rv {
				parent[ru] = rv
			}
		}
	}
	out := make([]int32, g.N)
	for i := range out {
		out[i] = find(int32(i))
	}
	return out
}

func refTriangles(g *graph.Graph) int64 {
	var count int64
	for u := int32(0); u < g.N; u++ {
		for _, v := range g.Neighbors(u) {
			if v <= u {
				continue
			}
			for _, w := range g.Neighbors(v) {
				if w > v && g.HasEdge(u, w) {
					count++
				}
			}
		}
	}
	return count
}

func refDijkstra(g *graph.Graph, src int32) []int64 {
	n := g.N
	dist := make([]int64, n)
	done := make([]bool, n)
	for i := range dist {
		dist[i] = infDist
	}
	dist[src] = 0
	for {
		u, best := int32(-1), infDist
		for v := int32(0); v < n; v++ {
			if !done[v] && dist[v] < best {
				best = dist[v]
				u = v
			}
		}
		if u < 0 {
			break
		}
		done[u] = true
		adj, ws := g.Neighbors(u), g.Weights(u)
		for i, v := range adj {
			if nd := dist[u] + int64(ws[i]); nd < dist[v] {
				dist[v] = nd
			}
		}
	}
	return dist
}

// refBrandes computes exact betweenness from the given sources.
func refBrandes(g *graph.Graph, sources []int32) []float64 {
	n := g.N
	bc := make([]float64, n)
	for _, s := range sources {
		sigma := make([]float64, n)
		depth := make([]int32, n)
		delta := make([]float64, n)
		for i := range depth {
			depth[i] = -1
		}
		sigma[s] = 1
		depth[s] = 0
		var order []int32
		q := []int32{s}
		for len(q) > 0 {
			u := q[0]
			q = q[1:]
			order = append(order, u)
			for _, v := range g.Neighbors(u) {
				if depth[v] == -1 {
					depth[v] = depth[u] + 1
					q = append(q, v)
				}
				if depth[v] == depth[u]+1 {
					sigma[v] += sigma[u]
				}
			}
		}
		for i := len(order) - 1; i >= 0; i-- {
			u := order[i]
			for _, v := range g.Neighbors(u) {
				if depth[v] == depth[u]+1 {
					delta[u] += sigma[u] / sigma[v] * (1 + delta[v])
				}
			}
			if u != s {
				bc[u] += delta[u]
			}
		}
	}
	return bc
}

// --- kernel correctness ---

func TestPRMatchesReference(t *testing.T) {
	g := testGraph(1)
	pr := NewPR(g, mem.NewSpace(0)).(*PR)
	pr.Epsilon = 0 // force fixed iteration count
	pr.MaxIters = 15
	runFull(t, pr)
	if pr.Iterations != 15 {
		t.Fatalf("iterations = %d", pr.Iterations)
	}
	want := refPageRank(g, pr.Damping, 15)
	got := pr.Scores()
	// Dangling-vertex handling differs slightly (we drop their mass);
	// compare with a loose per-element tolerance on ranking mass.
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-6+0.05*want[i] {
			t.Fatalf("score[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestPRSumsToOne(t *testing.T) {
	g := graph.Kron(9, 8, 3)
	pr := NewPR(g, mem.NewSpace(0)).(*PR)
	runFull(t, pr)
	var sum float64
	for _, s := range pr.Scores() {
		sum += s
	}
	// Dangling-vertex mass leaks, so the sum is <= 1 but must be close
	// for graphs with few zero-degree vertices.
	if sum < 0.5 || sum > 1.01 {
		t.Errorf("score mass = %g", sum)
	}
}

func TestBFSDepthsMatchReference(t *testing.T) {
	g := testGraph(2)
	b := NewBFS(g, mem.NewSpace(0)).(*BFS)
	b.Sources = []int32{7}
	runFull(t, b)
	want := refBFSDepth(g, 7)
	got := b.Depth()
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("depth[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestBFSBottomUpPathTaken(t *testing.T) {
	// A dense graph forces the direction switch; depths must still be
	// exact.
	g := graph.Urand(300, 6000, 4)
	b := NewBFS(g, mem.NewSpace(0)).(*BFS)
	b.Sources = []int32{0}
	b.Alpha = 50 // switch aggressively
	runFull(t, b)
	want := refBFSDepth(g, 0)
	for v := range want {
		if b.Depth()[v] != want[v] {
			t.Fatalf("depth[%d] = %d, want %d (bottom-up path)", v, b.Depth()[v], want[v])
		}
	}
}

func TestBFSParentsConsistent(t *testing.T) {
	g := testGraph(5)
	b := NewBFS(g, mem.NewSpace(0)).(*BFS)
	b.Sources = []int32{3}
	runFull(t, b)
	depth := b.Depth()
	parent := b.Parent()
	for v := int32(0); v < g.N; v++ {
		if depth[v] <= 0 {
			continue
		}
		p := parent[v]
		if p < 0 || depth[p] != depth[v]-1 {
			t.Fatalf("parent[%d]=%d at depth %d vs %d", v, p, depth[p], depth[v])
		}
		if !g.HasEdge(p, v) {
			t.Fatalf("parent edge (%d,%d) not in graph", p, v)
		}
	}
}

func TestCCMatchesReference(t *testing.T) {
	// Urand at this density leaves several components; use a sparser
	// graph to get many.
	g := graph.Urand(400, 300, 6)
	c := NewCC(g, mem.NewSpace(0)).(*CC)
	runFull(t, c)
	want := refComponents(g)
	got := c.Components()
	// Same partition: equal labels iff equal reference roots.
	seen := map[int32]int32{}
	for v := range want {
		if (want[v] == want[0]) != (got[v] == got[0]) && v > 0 {
			// cheap spot check below does the real work
			break
		}
	}
	for v := 0; v < len(want); v++ {
		root := want[v]
		if prev, ok := seen[root]; ok {
			if got[v] != prev {
				t.Fatalf("vertices with same ref component differ: got[%d]=%d vs %d", v, got[v], prev)
			}
		} else {
			for r, lbl := range seen {
				if lbl == got[v] && r != root {
					t.Fatalf("distinct ref components share label %d", got[v])
				}
			}
			seen[root] = got[v]
		}
	}
}

func TestTCMatchesReference(t *testing.T) {
	g := graph.Urand(200, 2000, 7)
	tc := NewTC(g, mem.NewSpace(0)).(*TC)
	runFull(t, tc)
	want := refTriangles(g)
	if tc.Count != want {
		t.Fatalf("triangles = %d, want %d", tc.Count, want)
	}
	if want == 0 {
		t.Fatal("test graph has no triangles; pick denser parameters")
	}
}

func TestTCOnKron(t *testing.T) {
	g := graph.Kron(8, 8, 8)
	tc := NewTC(g, mem.NewSpace(0)).(*TC)
	runFull(t, tc)
	if want := refTriangles(g); tc.Count != want {
		t.Fatalf("triangles = %d, want %d", tc.Count, want)
	}
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	g := graph.RoadGrid(20, 20, 50, 9)
	s := NewSSSP(g, mem.NewSpace(0)).(*SSSP)
	s.Sources = []int32{0}
	runFull(t, s)
	want := refDijkstra(s.g, 0)
	got := s.Dist()
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}

func TestSSSPWeightsSynthesizedForUnweighted(t *testing.T) {
	g := graph.Urand(300, 1500, 10)
	s := NewSSSP(g, mem.NewSpace(0)).(*SSSP)
	s.Sources = []int32{1}
	runFull(t, s)
	want := refDijkstra(s.g, 1)
	for v := range want {
		if s.Dist()[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, s.Dist()[v], want[v])
		}
	}
}

func TestBCMatchesReference(t *testing.T) {
	g := graph.Urand(150, 600, 11)
	b := NewBC(g, mem.NewSpace(0)).(*BC)
	b.Sources = []int32{5, 10}
	runFull(t, b)
	want := refBrandes(g, b.Sources)
	got := b.Centrality()
	for v := range want {
		if math.Abs(got[v]-want[v]) > 1e-6*(1+math.Abs(want[v])) {
			t.Fatalf("bc[%d] = %g, want %g", v, got[v], want[v])
		}
	}
}

// --- instrumentation behaviour ---

func TestKernelsStopAtTraceLimit(t *testing.T) {
	g := testGraph(12)
	for name, build := range Registry() {
		inst := build(g, mem.NewSpace(0))
		sink := &trace.CountingSink{Limit: 500}
		tr := trace.New(sink)
		inst.Run(tr)
		if sink.Records != 500 {
			t.Errorf("%s: %d records, want exactly 500", name, sink.Records)
		}
	}
}

func TestKernelsEmitDependencies(t *testing.T) {
	g := testGraph(13)
	for name, build := range Registry() {
		inst := build(g, mem.NewSpace(0))
		sink := &trace.SliceSink{Limit: 20000}
		inst.Run(trace.New(sink))
		deps := 0
		for _, r := range sink.Recs {
			if r.DepDist > 0 {
				deps++
			}
		}
		if deps == 0 {
			t.Errorf("%s emitted no dependency edges", name)
		}
	}
}

func TestKernelsTouchIrregularRegions(t *testing.T) {
	g := testGraph(14)
	for name, build := range Registry() {
		inst := build(g, mem.NewSpace(0))
		irreg := inst.IrregularRegions()
		if len(irreg) == 0 {
			t.Errorf("%s declares no irregular regions", name)
			continue
		}
		sink := &trace.SliceSink{Limit: 50000}
		inst.Run(trace.New(sink))
		touched := 0
		for _, r := range sink.Recs {
			for _, reg := range irreg {
				if reg.Contains(r.Addr) {
					touched++
					break
				}
			}
		}
		if touched == 0 {
			t.Errorf("%s never touched its irregular regions", name)
		}
	}
}

func TestKernelsInfoMatchesTableII(t *testing.T) {
	g := testGraph(15)
	space := mem.NewSpace(0)
	want := map[string]Info{
		"bc":   {Name: "bc", IrregElemBytes: "8B + 4B", Style: PushMostly, UsesFrontier: true},
		"bfs":  {Name: "bfs", IrregElemBytes: "4B", Style: PushPull, UsesFrontier: true},
		"cc":   {Name: "cc", IrregElemBytes: "4B", Style: PushMostly, UsesFrontier: false},
		"pr":   {Name: "pr", IrregElemBytes: "4B", Style: PullOnly, UsesFrontier: false},
		"tc":   {Name: "tc", IrregElemBytes: "4B", Style: PushOnly, UsesFrontier: false},
		"sssp": {Name: "sssp", IrregElemBytes: "4B", Style: PushOnly, UsesFrontier: true},
	}
	for _, name := range Names() {
		got := Registry()[name](g, space).Info()
		if got != want[name] {
			t.Errorf("%s Info = %+v, want %+v", name, got, want[name])
		}
	}
}

func TestKernelsRerunnable(t *testing.T) {
	g := testGraph(16)
	b := NewBFS(g, mem.NewSpace(0)).(*BFS)
	b.Sources = []int32{2}
	runFull(t, b)
	first := append([]int32(nil), b.Depth()...)
	runFull(t, b)
	for v := range first {
		if b.Depth()[v] != first[v] {
			t.Fatal("second Run produced different result")
		}
	}
}

func TestRegistryNamesComplete(t *testing.T) {
	reg := Registry()
	for _, n := range Names() {
		if reg[n] == nil {
			t.Errorf("kernel %q missing from registry", n)
		}
	}
	// The registry also carries the bonus SpMV kernel (Section II-A),
	// which is not part of the paper's 36-workload suite.
	if len(reg) != len(Names())+1 || reg["spmv"] == nil {
		t.Errorf("registry has %d kernels (want 6 GAP + spmv)", len(reg))
	}
}

// --- regular suite ---

func TestRegularSuiteRunsAndIsSequential(t *testing.T) {
	for _, inst := range RegularSuite(mem.NewSpace(0)) {
		sink := &trace.SliceSink{Limit: 50000}
		inst.Run(trace.New(sink))
		if len(sink.Recs) == 0 {
			t.Fatalf("%s: no records", inst.Info().Name)
		}
		// Per-PC block strides must be overwhelmingly small.
		last := map[uint64]mem.BlockAddr{}
		small, total := 0, 0
		for _, r := range sink.Recs {
			blk := r.Addr.Block()
			if prev, ok := last[r.PC]; ok {
				d := int64(blk) - int64(prev)
				if d < 0 {
					d = -d
				}
				if d <= 1 {
					small++
				}
				total++
			}
			last[r.PC] = blk
		}
		if total == 0 || float64(small)/float64(total) < 0.95 {
			t.Errorf("%s: only %d/%d small strides", inst.Info().Name, small, total)
		}
		if len(inst.IrregularRegions()) != 0 {
			t.Errorf("%s declares irregular regions", inst.Info().Name)
		}
	}
}

// --- transpose oracle ---

func TestTransposeOracleRanks(t *testing.T) {
	space := mem.NewSpace(0)
	reg := space.Alloc("prop", 64*16, 4, mem.ClassIrregular)
	// Reference stream: vertex 0 every position, vertex 100 only at the
	// end, vertices 200.. never.
	na := make([]int32, 1000)
	for i := range na {
		na[i] = 0
	}
	na[999] = 100
	o := NewTransposeOracle(reg, na, 256)
	o.SetProgress(0)
	// Vertex 0's block: next use immediate -> rank 0.
	if r := o.Rank(reg.ElemAddr(0).Block()); r != 0 {
		t.Errorf("hot block rank = %d, want 0", r)
	}
	// Vertex 100 shares a block with 96..111 (16 elems/block), all of
	// which are otherwise unused: next use at position 999.
	farBlk := reg.ElemAddr(100).Block()
	if r := o.Rank(farBlk); r < 200 {
		t.Errorf("far block rank = %d, want near max", r)
	}
	// Vertex 200's block: never used -> RankMax.
	if r := o.Rank(reg.ElemAddr(200).Block()); r != 255 {
		t.Errorf("dead block rank = %d, want 255", r)
	}
	// Outside the region: default.
	if r := o.Rank(0); r != 128 {
		t.Errorf("foreign block rank = %d, want 128", r)
	}
}

func TestTransposeOracleProgressAdvances(t *testing.T) {
	space := mem.NewSpace(1)
	reg := space.Alloc("prop", 4096, 4, mem.ClassIrregular)
	na := []int32{5, 9, 5, 9, 5, 9, 5, 9}
	o := NewTransposeOracle(reg, na, 16)
	o.SetProgress(0)
	r0 := o.Rank(reg.ElemAddr(5).Block())
	o.SetProgress(7)
	r7 := o.Rank(reg.ElemAddr(5).Block())
	// At progress 7 the last reference of 5 (pos 6) has passed; next is
	// pos 0 of the next sweep (wrap) -> distance 1.
	if r7 > r0+64 && r0 != 0 {
		t.Errorf("ranks r0=%d r7=%d", r0, r7)
	}
	// Wrap resets pointers without panicking.
	o.SetProgress(20) // 20 % 8 = 4
	_ = o.Rank(reg.ElemAddr(9).Block())
}
