package kernels

import (
	"math"

	"graphmem/internal/cache"
	"graphmem/internal/graph"
	"graphmem/internal/mem"
	"graphmem/internal/trace"
)

// PR is the paper's Algorithm 1: pull-style PageRank over the CSC
// representation. Per iteration it first refreshes outgoing_contrib
// sequentially, then for every vertex gathers contrib[NA[i]] over its
// incoming neighbors — the irregular stream the paper's Fig. 3
// characterizes.
type PR struct {
	csc    *graph.Graph // incoming neighbors (transpose of the input)
	outDeg []int64

	scores  []float64
	contrib []float64

	regOA, regNA, regScores, regContrib, regOutDeg *mem.Region

	// Damping factor, convergence threshold and iteration bound follow
	// the GAP reference implementation.
	Damping  float64
	Epsilon  float64
	MaxIters int

	// Iterations records how many full iterations the last Run
	// completed (possibly cut short by the tracer).
	Iterations int
}

// NewPR prepares PageRank on g (interpreted as the out-edge CSR; the
// CSC is derived by transposition).
func NewPR(g *graph.Graph, space *mem.Space) Instance {
	n := int64(g.N)
	p := &PR{
		csc:      g.TransposeCached(),
		outDeg:   make([]int64, n),
		scores:   make([]float64, n),
		contrib:  make([]float64, n),
		Damping:  0.85,
		Epsilon:  1e-4,
		MaxIters: 20,
	}
	for u := int32(0); u < g.N; u++ {
		p.outDeg[u] = g.Degree(u)
	}
	p.regOA = space.Alloc("pr.oa", uint64(n+1)*8, 8, mem.ClassRegular)
	p.regNA = space.Alloc("pr.na", uint64(p.csc.NumEdges())*4, 4, mem.ClassStreaming)
	p.regScores = space.Alloc("pr.scores", uint64(n)*4, 4, mem.ClassRegular)
	p.regContrib = space.Alloc("pr.contrib", uint64(n)*4, 4, mem.ClassIrregular)
	p.regOutDeg = space.Alloc("pr.outdeg", uint64(n)*4, 4, mem.ClassRegular)
	return p
}

// Info implements Instance (Table II row for PR).
func (p *PR) Info() Info {
	return Info{Name: "pr", IrregElemBytes: "4B", Style: PullOnly, UsesFrontier: false}
}

// IrregularRegions implements Instance: the expert routes the
// outgoing_contrib gathers to the SDC.
func (p *PR) IrregularRegions() []*mem.Region { return []*mem.Region{p.regContrib} }

// Oracle implements Instance: T-OPT covers the contrib array with the
// CSC neighbor stream as the reference schedule.
func (p *PR) Oracle() cache.NextUseOracle {
	return NewTransposeOracle(p.regContrib, p.csc.NA, p.csc.N)
}

// Scores returns the PageRank scores computed by the last Run.
func (p *PR) Scores() []float64 { return p.scores }

// Run implements Instance.
func (p *PR) Run(tr *trace.Tracer) {
	g := p.csc
	n := int64(g.N)
	oa := newTraced(tr, p.regOA)
	na := newTraced(tr, p.regNA)
	scores := newTraced(tr, p.regScores)
	contrib := newTraced(tr, p.regContrib)
	outdeg := newTraced(tr, p.regOutDeg)

	pcContribScore := tr.Site("pr.contrib.load_score")
	pcContribDeg := tr.Site("pr.contrib.load_outdeg")
	pcContribStore := tr.Site("pr.contrib.store")
	pcOA := tr.Site("pr.gather.load_oa")
	pcNA := tr.Site("pr.gather.load_na")
	pcGather := tr.Site("pr.gather.load_contrib")
	pcScoreOld := tr.Site("pr.update.load_score")
	pcScoreNew := tr.Site("pr.update.store_score")

	init := 1 / float64(n)
	for i := range p.scores {
		p.scores[i] = init
	}
	base := (1 - p.Damping) / float64(n)

	p.Iterations = 0
	var edgesDone uint64
	for iter := 0; iter < p.MaxIters && !tr.Done(); iter++ {
		// Phase 1: outgoing_contrib[u] = scores[u] / d+(u), sequential.
		for u := int64(0); u < n && !tr.Done(); u++ {
			scores.load(pcContribScore, u, trace.NoDep)
			outdeg.load(pcContribDeg, u, trace.NoDep)
			d := p.outDeg[u]
			if d == 0 {
				d = 1 // dangling vertices contribute to nobody
			}
			p.contrib[u] = p.scores[u] / float64(d)
			contrib.store(pcContribStore, u, trace.NoDep)
			tr.Exec(3)
		}
		// Phase 2: gather over incoming neighbors.
		errSum := 0.0
		for u := int64(0); u < n; u++ {
			if tr.Done() {
				return
			}
			oa.load(pcOA, u+1, trace.NoDep) // OA[u] carried in a register
			tr.Exec(2)
			sum := 0.0
			lo, hi := g.OA[u], g.OA[u+1]
			for i := lo; i < hi; i++ {
				// Value-annotated: IMP learns the contrib[NA[i]] gather.
				naSeq := na.loadv(pcNA, i, trace.NoDep, uint64(g.NA[i]))
				v := int64(g.NA[i])
				contrib.load(pcGather, v, naSeq)
				sum += p.contrib[v]
				tr.Exec(2)
			}
			edgesDone += uint64(hi - lo)
			tr.Progress(edgesDone)
			scores.load(pcScoreOld, u, trace.NoDep)
			old := p.scores[u]
			p.scores[u] = base + p.Damping*sum
			scores.store(pcScoreNew, u, trace.NoDep)
			errSum += math.Abs(p.scores[u] - old)
			tr.Exec(5)
		}
		p.Iterations++
		if errSum < p.Epsilon {
			break
		}
	}
}
