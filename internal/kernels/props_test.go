package kernels

import (
	"math"
	"testing"
	"testing/quick"

	"graphmem/internal/graph"
	"graphmem/internal/mem"
	"graphmem/internal/trace"
)

// Parameter-invariance properties: algorithmic knobs that trade work
// for locality (δ bucket width, direction-switch thresholds) must never
// change results.

func TestSSSPDeltaInvariance(t *testing.T) {
	g := graph.RoadGrid(15, 15, 40, 21)
	ref := refDijkstra(g, 3)
	for _, delta := range []int64{1, 4, 16, 64, 1 << 20} {
		s := NewSSSP(g, mem.NewSpace(0)).(*SSSP)
		s.Delta = delta
		s.Sources = []int32{3}
		runFull(t, s)
		for v := range ref {
			if s.Dist()[v] != ref[v] {
				t.Fatalf("delta=%d: dist[%d] = %d, want %d", delta, v, s.Dist()[v], ref[v])
			}
		}
	}
}

func TestBFSDirectionSwitchInvariance(t *testing.T) {
	g := graph.Kron(10, 8, 22)
	ref := refBFSDepth(g, 1)
	for _, alpha := range []int64{1, 2, 14, 1 << 30} {
		b := NewBFS(g, mem.NewSpace(0)).(*BFS)
		b.Alpha = alpha
		b.Sources = []int32{1}
		runFull(t, b)
		for v := range ref {
			if b.Depth()[v] != ref[v] {
				t.Fatalf("alpha=%d: depth[%d] = %d, want %d", alpha, v, b.Depth()[v], ref[v])
			}
		}
	}
}

func TestBFSRandomGraphProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.Urand(300, 900, seed)
		b := NewBFS(g, mem.NewSpace(0)).(*BFS)
		b.Sources = []int32{0}
		b.Run(trace.New(&trace.CountingSink{}))
		ref := refBFSDepth(g, 0)
		for v := range ref {
			if b.Depth()[v] != ref[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestCCRandomGraphProperty(t *testing.T) {
	f := func(seed uint64, density uint8) bool {
		m := 100 + int64(density)*4
		g := graph.Urand(250, m, seed)
		c := NewCC(g, mem.NewSpace(0)).(*CC)
		c.Run(trace.New(&trace.CountingSink{}))
		ref := refComponents(g)
		// Partition equivalence.
		m1 := map[int32]int32{}
		m2 := map[int32]int32{}
		for v := int32(0); v < g.N; v++ {
			a, b := ref[v], c.Components()[v]
			if x, ok := m1[a]; ok && x != b {
				return false
			}
			if x, ok := m2[b]; ok && x != a {
				return false
			}
			m1[a], m2[b] = b, a
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestTCOnRoadGraphSparse(t *testing.T) {
	g := graph.RoadGrid(12, 12, 5, 23)
	tc := NewTC(g, mem.NewSpace(0)).(*TC)
	runFull(t, tc)
	if want := refTriangles(g); tc.Count != want {
		t.Fatalf("triangles = %d, want %d", tc.Count, want)
	}
}

func TestBCRepeatedRunsAccumulateFresh(t *testing.T) {
	// Run must recompute from scratch: two Runs give identical scores,
	// not doubled ones.
	g := graph.Urand(120, 500, 24)
	b := NewBC(g, mem.NewSpace(0)).(*BC)
	b.Sources = []int32{2}
	runFull(t, b)
	first := append([]float64(nil), b.Centrality()...)
	runFull(t, b)
	for v := range first {
		if math.Abs(b.Centrality()[v]-first[v]) > 1e-9 {
			t.Fatalf("bc[%d] drifted across runs: %g vs %g", v, b.Centrality()[v], first[v])
		}
	}
}

func TestPRDanglingVertices(t *testing.T) {
	// A graph with sinks (no out-edges) must not produce NaN/Inf.
	g := graph.Build(4, []graph.Edge{
		{Src: 0, Dst: 1}, {Src: 1, Dst: 2}, {Src: 3, Dst: 2},
	}, false)
	pr := NewPR(g, mem.NewSpace(0)).(*PR)
	runFull(t, pr)
	for v, s := range pr.Scores() {
		if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
			t.Fatalf("score[%d] = %g", v, s)
		}
	}
	// Vertex 2 receives from 1 and 3: highest score.
	if pr.Scores()[2] <= pr.Scores()[0] {
		t.Error("sink with two in-edges should outrank a source")
	}
}

func TestSSSPUnreachableVertices(t *testing.T) {
	// Two disconnected cliques: distances across must stay Unreachable.
	var edges []graph.Edge
	for u := int32(0); u < 3; u++ {
		for v := u + 1; v < 3; v++ {
			edges = append(edges, graph.Edge{Src: u, Dst: v, W: 1}, graph.Edge{Src: v, Dst: u, W: 1})
		}
	}
	for u := int32(3); u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			edges = append(edges, graph.Edge{Src: u, Dst: v, W: 1}, graph.Edge{Src: v, Dst: u, W: 1})
		}
	}
	g := graph.Build(6, edges, true)
	s := NewSSSP(g, mem.NewSpace(0)).(*SSSP)
	s.Sources = []int32{0}
	runFull(t, s)
	for v := int32(3); v < 6; v++ {
		if s.Dist()[v] != Unreachable {
			t.Errorf("dist[%d] = %d, want Unreachable", v, s.Dist()[v])
		}
	}
	for v := int32(1); v < 3; v++ {
		if s.Dist()[v] != 1 {
			t.Errorf("dist[%d] = %d, want 1", v, s.Dist()[v])
		}
	}
}

func TestKernelsDeterministicTraces(t *testing.T) {
	// Same kernel, same graph, fresh instances: identical record
	// streams (the multi-core scheduler's restart semantics and the
	// memoized experiment runs both rely on this).
	g := testGraph(25)
	for name, build := range Registry() {
		capture := func() []trace.Record {
			inst := build(g, mem.NewSpace(0))
			sink := &trace.SliceSink{Limit: 5000}
			inst.Run(trace.New(sink))
			return sink.Recs
		}
		a, b := capture(), capture()
		if len(a) != len(b) {
			t.Errorf("%s: trace lengths differ (%d vs %d)", name, len(a), len(b))
			continue
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("%s: record %d differs", name, i)
				break
			}
		}
	}
}

func TestSpMVMatchesDense(t *testing.T) {
	g := graph.RoadGrid(10, 10, 9, 31)
	s := NewSpMV(g, mem.NewSpace(0)).(*SpMV)
	runFull(t, s)
	// Dense reference product.
	for u := int32(0); u < g.N; u++ {
		want := 0.0
		adj, ws := g.Neighbors(u), g.Weights(u)
		for i, v := range adj {
			want += float64(ws[i]) * (1 / float64(v+1))
		}
		if math.Abs(s.Result()[u]-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("y[%d] = %g, want %g", u, s.Result()[u], want)
		}
	}
	if s.Checksum == 0 {
		t.Error("checksum not accumulated")
	}
}

func TestSpMVGathersAreIrregular(t *testing.T) {
	g := graph.Urand(5000, 40000, 32)
	s := NewSpMV(g, mem.NewSpace(0)).(*SpMV)
	sink := &trace.SliceSink{Limit: 100000}
	s.Run(trace.New(sink))
	irreg := s.IrregularRegions()[0]
	var inX, deps int
	for _, r := range sink.Recs {
		if irreg.Contains(r.Addr) {
			inX++
			if r.DepDist > 0 {
				deps++
			}
		}
	}
	if inX == 0 || deps < inX*9/10 {
		t.Errorf("x gathers %d, with deps %d: expected dependent irregular stream", inX, deps)
	}
}
