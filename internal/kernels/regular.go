package kernels

import (
	"graphmem/internal/cache"
	"graphmem/internal/graph"
	"graphmem/internal/mem"
	"graphmem/internal/trace"
)

// The τ_glob experiment (Section V-B3) checks that routing decisions do
// not hurt cache-friendly general-purpose code, using SPEC 2006/2017.
// SPEC is not redistributable, so this file provides a "regular suite"
// of strongly cache-friendly kernels exercising the same access shapes
// SPEC's memory-bound components do: a STREAM-style triad, a blocked
// dense matrix-vector product, and a 1-D stencil. DESIGN.md documents
// the substitution.

// Triad is the STREAM triad a[i] = b[i] + s*c[i]: three perfectly
// sequential streams.
type Triad struct {
	n                int64
	regA, regB, regC *mem.Region
	Reps             int
	// Sum accumulates a checksum so the work is observable.
	Sum float64
}

// NewTriad prepares a triad over n elements per stream.
func NewTriad(n int64, space *mem.Space) *Triad {
	t := &Triad{n: n, Reps: 4}
	t.regA = space.Alloc("triad.a", uint64(n)*8, 8, mem.ClassRegular)
	t.regB = space.Alloc("triad.b", uint64(n)*8, 8, mem.ClassRegular)
	t.regC = space.Alloc("triad.c", uint64(n)*8, 8, mem.ClassRegular)
	return t
}

// Info implements Instance.
func (t *Triad) Info() Info {
	return Info{Name: "triad", IrregElemBytes: "8B", Style: PushOnly, UsesFrontier: false}
}

// IrregularRegions implements Instance: a triad has none.
func (t *Triad) IrregularRegions() []*mem.Region { return nil }

// Oracle implements Instance.
func (t *Triad) Oracle() cache.NextUseOracle { return nil }

// Run implements Instance.
func (t *Triad) Run(tr *trace.Tracer) {
	a := newTraced(tr, t.regA)
	b := newTraced(tr, t.regB)
	c := newTraced(tr, t.regC)
	pcB := tr.Site("triad.load_b")
	pcC := tr.Site("triad.load_c")
	pcA := tr.Site("triad.store_a")
	t.Sum = 0
	for rep := 0; rep < t.Reps && !tr.Done(); rep++ {
		for i := int64(0); i < t.n; i++ {
			if tr.Done() {
				return
			}
			b.load(pcB, i, trace.NoDep)
			c.load(pcC, i, trace.NoDep)
			a.store(pcA, i, trace.NoDep)
			t.Sum += float64(i)
			tr.Exec(3)
		}
	}
}

// MatVec is a blocked dense matrix-vector product y = M*x: the matrix
// streams, x is reused within blocks, y streams.
type MatVec struct {
	rows, cols       int64
	regM, regX, regY *mem.Region
	// Sum accumulates a checksum.
	Sum float64
}

// NewMatVec prepares a rows x cols dense product.
func NewMatVec(rows, cols int64, space *mem.Space) *MatVec {
	m := &MatVec{rows: rows, cols: cols}
	m.regM = space.Alloc("matvec.m", uint64(rows*cols)*8, 8, mem.ClassRegular)
	m.regX = space.Alloc("matvec.x", uint64(cols)*8, 8, mem.ClassRegular)
	m.regY = space.Alloc("matvec.y", uint64(rows)*8, 8, mem.ClassRegular)
	return m
}

// Info implements Instance.
func (m *MatVec) Info() Info {
	return Info{Name: "matvec", IrregElemBytes: "8B", Style: PushOnly, UsesFrontier: false}
}

// IrregularRegions implements Instance.
func (m *MatVec) IrregularRegions() []*mem.Region { return nil }

// Oracle implements Instance.
func (m *MatVec) Oracle() cache.NextUseOracle { return nil }

// Run implements Instance.
func (m *MatVec) Run(tr *trace.Tracer) {
	mm := newTraced(tr, m.regM)
	x := newTraced(tr, m.regX)
	y := newTraced(tr, m.regY)
	pcM := tr.Site("matvec.load_m")
	pcX := tr.Site("matvec.load_x")
	pcY := tr.Site("matvec.store_y")
	const blk = 512
	m.Sum = 0
	for j0 := int64(0); j0 < m.cols && !tr.Done(); j0 += blk {
		j1 := j0 + blk
		if j1 > m.cols {
			j1 = m.cols
		}
		for i := int64(0); i < m.rows; i++ {
			if tr.Done() {
				return
			}
			for j := j0; j < j1; j++ {
				mm.load(pcM, i*m.cols+j, trace.NoDep)
				x.load(pcX, j, trace.NoDep)
				m.Sum += float64(i + j)
				tr.Exec(2)
			}
			y.store(pcY, i, trace.NoDep)
			tr.Exec(2)
		}
	}
}

// Stencil is a 1-D 3-point Jacobi sweep: two sequential streams with
// perfect spatial reuse.
type Stencil struct {
	n             int64
	regIn, regOut *mem.Region
	Reps          int
	// Sum accumulates a checksum.
	Sum float64
}

// NewStencil prepares a stencil over n points.
func NewStencil(n int64, space *mem.Space) *Stencil {
	s := &Stencil{n: n, Reps: 4}
	s.regIn = space.Alloc("stencil.in", uint64(n)*8, 8, mem.ClassRegular)
	s.regOut = space.Alloc("stencil.out", uint64(n)*8, 8, mem.ClassRegular)
	return s
}

// Info implements Instance.
func (s *Stencil) Info() Info {
	return Info{Name: "stencil", IrregElemBytes: "8B", Style: PushOnly, UsesFrontier: false}
}

// IrregularRegions implements Instance.
func (s *Stencil) IrregularRegions() []*mem.Region { return nil }

// Oracle implements Instance.
func (s *Stencil) Oracle() cache.NextUseOracle { return nil }

// Run implements Instance.
func (s *Stencil) Run(tr *trace.Tracer) {
	in := newTraced(tr, s.regIn)
	out := newTraced(tr, s.regOut)
	pcL := tr.Site("stencil.load")
	pcS := tr.Site("stencil.store")
	s.Sum = 0
	for rep := 0; rep < s.Reps && !tr.Done(); rep++ {
		for i := int64(1); i < s.n-1; i++ {
			if tr.Done() {
				return
			}
			// The i-1 and i values are register-carried; only the
			// leading edge of the window is loaded.
			in.load(pcL, i+1, trace.NoDep)
			out.store(pcS, i, trace.NoDep)
			s.Sum += float64(i)
			tr.Exec(4)
		}
	}
}

// RegularSuite builds the three regular kernels sized so their
// footprints, like SPEC's, fit mostly in the LLC.
func RegularSuite(space *mem.Space) []Instance {
	return []Instance{
		NewTriad(1<<15, space),
		NewMatVec(256, 512, space),
		NewStencil(1<<15, space),
	}
}

// RegularBuilders exposes the regular suite through the kernel Builder
// interface (the graph argument is ignored) so the harness can treat
// regular workloads uniformly.
func RegularBuilders() map[string]Builder {
	return map[string]Builder{
		"triad": func(_ *graph.Graph, space *mem.Space) Instance {
			return NewTriad(1<<15, space)
		},
		"matvec": func(_ *graph.Graph, space *mem.Space) Instance {
			return NewMatVec(256, 512, space)
		},
		"stencil": func(_ *graph.Graph, space *mem.Space) Instance {
			return NewStencil(1<<15, space)
		},
	}
}
