package kernels

import (
	"graphmem/internal/cache"
	"graphmem/internal/graph"
	"graphmem/internal/mem"
	"graphmem/internal/trace"
)

// SpMV is the paper's Section II-A motivating example: the sparse
// matrix-vector product y = A·x over the CSR matrix, whose accesses to
// the dense vector x are indexed by the column indices of A — the
// canonical irregular gather. It is not one of the six GAP kernels of
// the evaluation, but it is provided as a seventh workload for
// gmsim/gmtrace and the examples.
type SpMV struct {
	g *graph.Graph // CSR matrix: weights are the non-zero values
	x []float64
	y []float64

	regOA, regNA, regVals, regX, regY *mem.Region

	// Reps is the number of products per Run.
	Reps int
	// Checksum accumulates sum(y) so the work is observable.
	Checksum float64
}

// NewSpMV prepares y = A·x with A given by g (weights become values;
// unweighted graphs get unit-ish synthetic values).
func NewSpMV(g *graph.Graph, space *mem.Space) Instance {
	if !g.Weighted() {
		g = graph.AddUnitWeights(g, 8, 0x59e5)
	}
	n := int64(g.N)
	s := &SpMV{g: g, x: make([]float64, n), y: make([]float64, n), Reps: 4}
	for i := range s.x {
		s.x[i] = 1 / float64(i+1)
	}
	s.regOA = space.Alloc("spmv.oa", uint64(n+1)*8, 8, mem.ClassRegular)
	s.regNA = space.Alloc("spmv.na", uint64(g.NumEdges())*4, 4, mem.ClassStreaming)
	s.regVals = space.Alloc("spmv.vals", uint64(g.NumEdges())*8, 8, mem.ClassStreaming)
	s.regX = space.Alloc("spmv.x", uint64(n)*8, 8, mem.ClassIrregular)
	s.regY = space.Alloc("spmv.y", uint64(n)*8, 8, mem.ClassRegular)
	return s
}

// Info implements Instance.
func (s *SpMV) Info() Info {
	return Info{Name: "spmv", IrregElemBytes: "8B", Style: PullOnly, UsesFrontier: false}
}

// IrregularRegions implements Instance: x is gathered through NA.
func (s *SpMV) IrregularRegions() []*mem.Region { return []*mem.Region{s.regX} }

// Oracle implements Instance.
func (s *SpMV) Oracle() cache.NextUseOracle {
	return NewTransposeOracle(s.regX, s.g.NA, s.g.N)
}

// Result returns y from the last Run.
func (s *SpMV) Result() []float64 { return s.y }

// Run implements Instance.
func (s *SpMV) Run(tr *trace.Tracer) {
	g := s.g
	n := int64(g.N)
	oa := newTraced(tr, s.regOA)
	na := newTraced(tr, s.regNA)
	vals := newTraced(tr, s.regVals)
	x := newTraced(tr, s.regX)
	y := newTraced(tr, s.regY)

	pcOA := tr.Site("spmv.load_oa")
	pcNA := tr.Site("spmv.load_na")
	pcVal := tr.Site("spmv.load_val")
	pcX := tr.Site("spmv.load_x")
	pcY := tr.Site("spmv.store_y")

	s.Checksum = 0
	var edgesDone uint64
	for rep := 0; rep < s.Reps && !tr.Done(); rep++ {
		for u := int64(0); u < n; u++ {
			if tr.Done() {
				return
			}
			oa.load(pcOA, u+1, trace.NoDep)
			tr.Exec(2)
			sum := 0.0
			lo, hi := g.OA[u], g.OA[u+1]
			for i := lo; i < hi; i++ {
				naSeq := na.load(pcNA, i, trace.NoDep)
				vals.load(pcVal, i, trace.NoDep)
				col := int64(g.NA[i])
				x.load(pcX, col, naSeq)
				sum += float64(g.W[i]) * s.x[col]
				tr.Exec(2)
			}
			s.y[u] = sum
			s.Checksum += sum
			y.store(pcY, u, trace.NoDep)
			edgesDone += uint64(hi - lo)
			tr.Progress(edgesDone)
			tr.Exec(2)
		}
	}
}
