package kernels

import (
	"graphmem/internal/cache"
	"graphmem/internal/graph"
	"graphmem/internal/mem"
	"graphmem/internal/trace"
)

// infDist marks unreached vertices.
const infDist = int64(1) << 62

// SSSP computes single-source shortest paths with δ-stepping (Meyer &
// Sanders), as GAP does: vertices are binned into distance buckets of
// width Delta; each bucket is relaxed to a fixed point (light edges
// re-enter the bucket) before moving to the next. The dist[NA[i]]
// relaxations are the irregular stream.
type SSSP struct {
	g    *graph.Graph // must be weighted
	dist []int64

	regOA, regNA, regW, regDist, regBucket *mem.Region

	// Delta is the bucket width; picked relative to the max weight.
	Delta int64
	// Sources to process in one Run.
	Sources []int32
}

// NewSSSP prepares δ-stepping on g; unweighted graphs get synthetic
// weights, mirroring how GAP runs SSSP on unweighted inputs.
func NewSSSP(g *graph.Graph, space *mem.Space) Instance {
	if !g.Weighted() {
		g = graph.AddUnitWeights(g, 64, 0xD2B5)
	}
	n := int64(g.N)
	s := &SSSP{
		g:     g,
		dist:  make([]int64, n),
		Delta: 16,
	}
	s.regOA = space.Alloc("sssp.oa", uint64(n+1)*8, 8, mem.ClassRegular)
	s.regNA = space.Alloc("sssp.na", uint64(g.NumEdges())*4, 4, mem.ClassStreaming)
	s.regW = space.Alloc("sssp.w", uint64(g.NumEdges())*4, 4, mem.ClassStreaming)
	s.regDist = space.Alloc("sssp.dist", uint64(n)*4, 4, mem.ClassIrregular)
	s.regBucket = space.Alloc("sssp.bucket", uint64(n)*4, 4, mem.ClassRegular)
	s.Sources = defaultSources(g, 2)
	return s
}

// Info implements Instance (Table II row for SSSP).
func (s *SSSP) Info() Info {
	return Info{Name: "sssp", IrregElemBytes: "4B", Style: PushOnly, UsesFrontier: true}
}

// IrregularRegions implements Instance.
func (s *SSSP) IrregularRegions() []*mem.Region { return []*mem.Region{s.regDist} }

// Oracle implements Instance.
func (s *SSSP) Oracle() cache.NextUseOracle {
	return NewTransposeOracle(s.regDist, s.g.NA, s.g.N)
}

// Dist returns the distances from the last source processed.
func (s *SSSP) Dist() []int64 { return s.dist }

// Unreachable is the distance reported for unreachable vertices.
const Unreachable = infDist

// Run implements Instance.
func (s *SSSP) Run(tr *trace.Tracer) {
	g := s.g
	oa := newTraced(tr, s.regOA)
	na := newTraced(tr, s.regNA)
	wt := newTraced(tr, s.regW)
	dist := newTraced(tr, s.regDist)
	bucket := newTraced(tr, s.regBucket)

	pcBkt := tr.Site("sssp.load_bucket")
	pcDistU := tr.Site("sssp.load_dist_u")
	pcOA := tr.Site("sssp.load_oa")
	pcNA := tr.Site("sssp.load_na")
	pcW := tr.Site("sssp.load_w")
	pcDistV := tr.Site("sssp.load_dist_v")
	pcRelax := tr.Site("sssp.store_dist")
	pcPush := tr.Site("sssp.push_bucket")

	for _, src := range s.Sources {
		if tr.Done() {
			return
		}
		for i := range s.dist {
			s.dist[i] = infDist
		}
		s.dist[src] = 0

		buckets := map[int64][]int32{0: {src}}
		var edgesDone uint64
		var pushCount int64
		n := int64(g.N)
		for bi := int64(0); !tr.Done(); bi++ {
			frontier, ok := buckets[bi]
			if !ok {
				// Find the next non-empty bucket, or finish.
				next := int64(-1)
				for k := range buckets {
					if k > bi && (next < 0 || k < next) {
						next = k
					}
				}
				if next < 0 {
					break
				}
				bi = next
				frontier = buckets[bi]
			}
			delete(buckets, bi)
			// Relax the bucket to a fixed point: light-edge relaxations
			// may re-insert vertices into the current bucket.
			for len(frontier) > 0 && !tr.Done() {
				var reentry []int32
				for j, u := range frontier {
					if tr.Done() {
						return
					}
					bSeq := bucket.load(pcBkt, int64(j), trace.NoDep)
					duSeq := dist.load(pcDistU, int64(u), bSeq)
					tr.Exec(2)
					du := s.dist[u]
					if du/s.Delta < bi {
						continue // settled in an earlier bucket
					}
					oaSeq := oa.load(pcOA, int64(u)+1, duSeq)
					lo, hi := g.OA[u], g.OA[u+1]
					for i := lo; i < hi; i++ {
						// Value-annotated: IMP learns the dist[NA[i]] relax.
						naSeq := na.loadv(pcNA, i, oaSeq, uint64(g.NA[i]))
						wt.load(pcW, i, trace.NoDep)
						v := g.NA[i]
						w := int64(g.W[i])
						dist.load(pcDistV, int64(v), naSeq)
						tr.Exec(3)
						nd := du + w
						if nd < s.dist[v] {
							s.dist[v] = nd
							dist.store(pcRelax, int64(v), naSeq)
							tb := nd / s.Delta
							bucket.store(pcPush, pushCount%n, trace.NoDep)
							pushCount++
							tr.Exec(2)
							if tb == bi {
								reentry = append(reentry, v)
							} else {
								buckets[tb] = append(buckets[tb], v)
							}
						}
					}
					edgesDone += uint64(hi - lo)
					tr.Progress(edgesDone)
				}
				frontier = reentry
			}
		}
	}
}
