package kernels

import (
	"graphmem/internal/cache"
	"graphmem/internal/graph"
	"graphmem/internal/mem"
	"graphmem/internal/trace"
)

// TC counts triangles by ordered adjacency-list intersection: for every
// edge (u,v) with u < v, the sorted neighbor lists of u and v are
// merge-intersected counting common neighbors w > v, so each triangle
// is counted exactly once. The second list's start position is
// data-dependent (it comes from the NA value just loaded), which makes
// the inner intersection loads the kernel's irregular stream.
type TC struct {
	g *graph.Graph

	regOA, regNA *mem.Region

	// Count is the triangle count from the last Run.
	Count int64
}

// NewTC prepares triangle counting on g (must be symmetric, as GAP
// requires).
func NewTC(g *graph.Graph, space *mem.Space) Instance {
	n := int64(g.N)
	t := &TC{g: g}
	t.regOA = space.Alloc("tc.oa", uint64(n+1)*8, 8, mem.ClassRegular)
	t.regNA = space.Alloc("tc.na", uint64(g.NumEdges())*4, 4, mem.ClassIrregular)
	return t
}

// Info implements Instance (Table II row for TC).
func (t *TC) Info() Info {
	return Info{Name: "tc", IrregElemBytes: "4B", Style: PushOnly, UsesFrontier: false}
}

// IrregularRegions implements Instance: TC's irregular structure is the
// neighbors array itself, gathered at data-dependent offsets during
// intersections.
func (t *TC) IrregularRegions() []*mem.Region { return []*mem.Region{t.regNA} }

// Oracle implements Instance: T-OPT targets per-vertex property arrays;
// TC has none, so the policy degrades to its default ranks.
func (t *TC) Oracle() cache.NextUseOracle { return nil }

// Run implements Instance.
func (t *TC) Run(tr *trace.Tracer) {
	g := t.g
	n := int64(g.N)
	oa := newTraced(tr, t.regOA)
	na := newTraced(tr, t.regNA)

	pcOA := tr.Site("tc.load_oa")
	pcNAOuter := tr.Site("tc.load_na_outer")
	pcOAV := tr.Site("tc.load_oa_v")
	pcNAU := tr.Site("tc.isect.load_na_u")
	pcNAV := tr.Site("tc.isect.load_na_v")

	t.Count = 0
	var edgesDone uint64
	for u := int64(0); u < n; u++ {
		if tr.Done() {
			return
		}
		oa.load(pcOA, u+1, trace.NoDep)
		tr.Exec(2)
		lo, hi := g.OA[u], g.OA[u+1]
		for i := lo; i < hi; i++ {
			naSeq := na.load(pcNAOuter, i, trace.NoDep)
			v := int64(g.NA[i])
			tr.Exec(2)
			if v <= u {
				continue
			}
			// Intersect adj(u) and adj(v), counting members > v. The
			// OA[v] loads depend on the NA value just read.
			oaSeq := oa.load(pcOAV, v+1, naSeq)
			pi, pj := i+1, g.OA[v]
			hj := g.OA[v+1]
			depI, depJ := naSeq, oaSeq
			if pi < hi {
				depI = na.load(pcNAU, pi, depI)
			}
			if pj < hj {
				depJ = na.load(pcNAV, pj, depJ)
			}
			for pi < hi && pj < hj {
				if tr.Done() {
					return
				}
				a := int64(g.NA[pi])
				b := int64(g.NA[pj])
				switch {
				case a < b:
					pi++
					if pi < hi {
						depI = na.load(pcNAU, pi, depI)
					}
				case b < a:
					pj++
					if pj < hj {
						depJ = na.load(pcNAV, pj, depJ)
					}
				default:
					if a > v {
						t.Count++
					}
					pi++
					pj++
					if pi < hi {
						depI = na.load(pcNAU, pi, depI)
					}
					if pj < hj {
						depJ = na.load(pcNAV, pj, depJ)
					}
				}
				tr.Exec(2)
			}
		}
		edgesDone += uint64(hi - lo)
		tr.Progress(edgesDone)
	}
}
