// Package mem provides the shared memory-system plumbing used by every
// component of the simulator: request/response types, block and page
// arithmetic, a synthetic per-core address-space allocator and a registry
// of named data-structure regions.
//
// The simulator is address-driven: no data values flow through it. A
// workload (see internal/kernels) computes its real result natively in Go
// and, while doing so, emits the addresses it touches. Those addresses
// live in a synthetic 48-bit physical address space managed by this
// package.
package mem

import "fmt"

// Fundamental geometry constants shared across the hierarchy.
const (
	// BlockBits is log2 of the cache block size.
	BlockBits = 6
	// BlockSize is the cache block (line) size in bytes.
	BlockSize = 1 << BlockBits
	// PageBits is log2 of the page size.
	PageBits = 12
	// PageSize is the virtual-memory page size in bytes.
	PageSize = 1 << PageBits
	// AddrBits is the number of physical address bits (Table IV assumes
	// 48-bit physical addresses).
	AddrBits = 48
)

// Addr is a byte address in the synthetic physical address space.
type Addr uint64

// Block returns the cache-block number containing a.
func (a Addr) Block() BlockAddr { return BlockAddr(a >> BlockBits) }

// Page returns the page number containing a.
func (a Addr) Page() PageAddr { return PageAddr(a >> PageBits) }

// BlockOffset returns the byte offset of a within its cache block.
func (a Addr) BlockOffset() uint64 { return uint64(a) & (BlockSize - 1) }

// BlockAddr is a cache-block (line) number: Addr >> BlockBits.
type BlockAddr uint64

// Addr returns the byte address of the first byte of the block.
func (b BlockAddr) Addr() Addr { return Addr(b << BlockBits) }

// Page returns the page number containing the block.
func (b BlockAddr) Page() PageAddr { return PageAddr(b >> (PageBits - BlockBits)) }

// PageAddr is a page number: Addr >> PageBits.
type PageAddr uint64

// Addr returns the byte address of the first byte of the page.
func (p PageAddr) Addr() Addr { return Addr(p << PageBits) }

// AccessType distinguishes the kinds of requests seen by the hierarchy.
type AccessType uint8

const (
	// Load is a demand read issued by the core.
	Load AccessType = iota
	// Store is a demand write issued by the core (write-allocate).
	Store
	// Prefetch is a hardware-prefetcher read.
	Prefetch
	// Writeback is a dirty-eviction write toward memory.
	Writeback
	// Translation is a page-table-walker read.
	Translation
)

// String implements fmt.Stringer.
func (t AccessType) String() string {
	switch t {
	case Load:
		return "load"
	case Store:
		return "store"
	case Prefetch:
		return "prefetch"
	case Writeback:
		return "writeback"
	case Translation:
		return "translation"
	default:
		return fmt.Sprintf("AccessType(%d)", uint8(t))
	}
}

// IsWrite reports whether the access modifies the block.
func (t AccessType) IsWrite() bool { return t == Store || t == Writeback }

// Request is a memory request travelling through the hierarchy.
type Request struct {
	// Core is the issuing core's index.
	Core int
	// PC is the (synthetic) program counter of the instruction.
	PC uint64
	// Addr is the byte address accessed.
	Addr Addr
	// Type is the access kind.
	Type AccessType
	// Issue is the global CPU-cycle timestamp at which the request
	// enters the component being asked.
	Issue int64
}

// Block returns the block number of the request's address.
func (r *Request) Block() BlockAddr { return r.Addr.Block() }

// ServedBy identifies the hierarchy level that ultimately supplied the
// data for a request. It is reported back up the ladder so that callers
// (stats, the stride profiler for Fig. 3) can attribute the access.
type ServedBy uint8

// Hierarchy levels a request can be served from.
const (
	ServedNone ServedBy = iota // e.g. store buffered, nothing fetched
	ServedSDC
	ServedL1D
	ServedL2
	ServedLLC
	ServedRemote // another core's cache or SDC via the directory
	ServedDRAM
)

// String implements fmt.Stringer.
func (s ServedBy) String() string {
	switch s {
	case ServedNone:
		return "none"
	case ServedSDC:
		return "SDC"
	case ServedL1D:
		return "L1D"
	case ServedL2:
		return "L2C"
	case ServedLLC:
		return "LLC"
	case ServedRemote:
		return "remote"
	case ServedDRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("ServedBy(%d)", uint8(s))
	}
}

// Response describes the outcome of a request: when the data is ready
// and which level provided it.
type Response struct {
	// Ready is the global CPU-cycle timestamp at which the data is
	// available to the requester.
	Ready int64
	// Source is the level that supplied the data.
	Source ServedBy
}

// Latency returns the request latency in cycles given its issue time.
func (r Response) Latency(issue int64) int64 { return r.Ready - issue }

// ValueHint is the loaded-value peek an indirect-memory prefetcher needs
// to learn base+shift patterns from `prop[col[i]]` index-then-gather
// pairs. The simulator is address-only, so kernels opt in per site: a
// load annotated with its architectural value sets Value/HasValue, and a
// load that depends on an annotated producer carries the producer's PC
// and value in the Dep* fields.
type ValueHint struct {
	// Value is the architectural value the load returns, when the
	// trace site annotates it (index loads into an edge array).
	Value uint64
	// HasValue reports whether Value is meaningful.
	HasValue bool
	// DepPC is the PC of the producing load this access depends on,
	// when that producer was value-annotated.
	DepPC uint64
	// DepValue is the producer's loaded value.
	DepValue uint64
	// DepHasValue reports whether DepPC/DepValue are meaningful.
	DepHasValue bool
}

// AccessInfo describes a demand access as seen by a prefetcher:
// the block plus optional context (PC, hit/miss at the attached level,
// requesting core, and the value peek). Zero-valued context fields mean
// "unknown" — functional warming, for example, has no PC to offer.
type AccessInfo struct {
	// PC is the trace-site program counter, or 0 when unavailable.
	PC uint64
	// Addr is the full byte address of the access.
	Addr Addr
	// Blk is the accessed block.
	Blk BlockAddr
	// Hit says whether the access hit the attached cache.
	Hit bool
	// Core is the requesting core (meaningful for shared-level
	// prefetchers observing multiple cores).
	Core int
	ValueHint
}
