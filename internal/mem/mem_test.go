package mem

import (
	"testing"
	"testing/quick"
)

func TestAddrBlockAndPage(t *testing.T) {
	cases := []struct {
		addr  Addr
		block BlockAddr
		page  PageAddr
		off   uint64
	}{
		{0, 0, 0, 0},
		{63, 0, 0, 63},
		{64, 1, 0, 0},
		{4095, 63, 0, 63},
		{4096, 64, 1, 0},
		{0x1234567, 0x48d15, 0x1234, 0x27},
	}
	for _, c := range cases {
		if got := c.addr.Block(); got != c.block {
			t.Errorf("Addr(%#x).Block() = %#x, want %#x", uint64(c.addr), got, c.block)
		}
		if got := c.addr.Page(); got != c.page {
			t.Errorf("Addr(%#x).Page() = %#x, want %#x", uint64(c.addr), got, c.page)
		}
		if got := c.addr.BlockOffset(); got != c.off {
			t.Errorf("Addr(%#x).BlockOffset() = %d, want %d", uint64(c.addr), got, c.off)
		}
	}
}

func TestBlockAddrRoundTrip(t *testing.T) {
	f := func(raw uint64) bool {
		a := Addr(raw % (1 << AddrBits))
		b := a.Block()
		// The block's base address must contain a and be block-aligned.
		base := b.Addr()
		return base <= a && uint64(a-base) < BlockSize && base.BlockOffset() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBlockPageConsistency(t *testing.T) {
	f := func(raw uint64) bool {
		a := Addr(raw % (1 << AddrBits))
		return a.Block().Page() == a.Page()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccessTypeIsWrite(t *testing.T) {
	if Load.IsWrite() || Prefetch.IsWrite() || Translation.IsWrite() {
		t.Error("read access types report IsWrite")
	}
	if !Store.IsWrite() || !Writeback.IsWrite() {
		t.Error("write access types do not report IsWrite")
	}
}

func TestAccessTypeStrings(t *testing.T) {
	want := map[AccessType]string{
		Load: "load", Store: "store", Prefetch: "prefetch",
		Writeback: "writeback", Translation: "translation",
	}
	for at, s := range want {
		if at.String() != s {
			t.Errorf("AccessType(%d).String() = %q, want %q", at, at.String(), s)
		}
	}
}

func TestServedByStrings(t *testing.T) {
	for _, s := range []ServedBy{ServedNone, ServedSDC, ServedL1D, ServedL2, ServedLLC, ServedRemote, ServedDRAM} {
		if s.String() == "" {
			t.Errorf("ServedBy(%d) has empty string", s)
		}
	}
	if ServedDRAM.String() != "DRAM" {
		t.Errorf("ServedDRAM.String() = %q", ServedDRAM.String())
	}
}

func TestSpaceDisjointWindows(t *testing.T) {
	s0 := NewSpace(0)
	s1 := NewSpace(1)
	r0 := s0.Alloc("a", 1<<20, 4, ClassRegular)
	r1 := s1.Alloc("a", 1<<20, 4, ClassRegular)
	if r0.Base>>CoreSpaceBits != 0 {
		t.Errorf("core 0 region at %#x outside window", uint64(r0.Base))
	}
	if r1.Base>>CoreSpaceBits != 1 {
		t.Errorf("core 1 region at %#x outside window", uint64(r1.Base))
	}
}

func TestSpaceAllocPageAlignedAndDisjoint(t *testing.T) {
	s := NewSpace(0)
	var regs []*Region
	sizes := []uint64{1, 64, 4096, 4097, 1 << 20, 123456}
	for i, sz := range sizes {
		r := s.Alloc("r", sz, 4, ClassIrregular)
		if uint64(r.Base)%PageSize != 0 {
			t.Errorf("region %d base %#x not page aligned", i, uint64(r.Base))
		}
		regs = append(regs, r)
	}
	for i := 0; i < len(regs); i++ {
		for j := i + 1; j < len(regs); j++ {
			a, b := regs[i], regs[j]
			if a.Base < b.Base+Addr(b.Size) && b.Base < a.Base+Addr(a.Size) {
				t.Errorf("regions %d and %d overlap", i, j)
			}
			// Guard page: no two regions may share a page.
			if a.Base.Page() == (b.Base + Addr(b.Size) - 1).Page() {
				t.Errorf("regions %d and %d share a page", i, j)
			}
		}
	}
}

func TestSpaceFind(t *testing.T) {
	s := NewSpace(2)
	a := s.Alloc("oa", 1000, 8, ClassRegular)
	b := s.Alloc("na", 5000, 4, ClassStreaming)
	c := s.Alloc("prop", 400, 4, ClassIrregular)
	for _, r := range []*Region{a, b, c} {
		if got := s.Find(r.Base); got != r {
			t.Errorf("Find(base of %s) = %v", r.Name, got)
		}
		if got := s.Find(r.Base + Addr(r.Size) - 1); got != r {
			t.Errorf("Find(last byte of %s) = %v", r.Name, got)
		}
	}
	if got := s.Find(a.Base + Addr(a.Size)); got != nil {
		t.Errorf("Find(just past region) = %v, want nil", got)
	}
	if got := s.Find(0); got != nil {
		t.Errorf("Find(0) = %v, want nil", got)
	}
}

func TestRegionElemAddr(t *testing.T) {
	s := NewSpace(0)
	r := s.Alloc("prop", 4000, 4, ClassIrregular)
	if got := r.ElemAddr(0); got != r.Base {
		t.Errorf("ElemAddr(0) = %#x, want base", uint64(got))
	}
	if got := r.ElemAddr(10); got != r.Base+40 {
		t.Errorf("ElemAddr(10) = %#x, want base+40", uint64(got))
	}
}

func TestSpaceFootprint(t *testing.T) {
	s := NewSpace(0)
	s.Alloc("a", 100, 4, ClassRegular)
	s.Alloc("b", 200, 4, ClassRegular)
	if got := s.Footprint(); got != 300 {
		t.Errorf("Footprint() = %d, want 300", got)
	}
}

func TestResponseLatency(t *testing.T) {
	r := Response{Ready: 150, Source: ServedDRAM}
	if got := r.Latency(100); got != 50 {
		t.Errorf("Latency = %d, want 50", got)
	}
}
