package mem

import (
	"fmt"
	"sort"
)

// CoreSpaceBits is log2 of the address-space window reserved per core.
// Cores get disjoint 1 TiB windows, which models the multi-programmed
// mixes the paper evaluates (each thread is a separate process with a
// private physical footprint).
const CoreSpaceBits = 40

// RegionClass categorizes a data structure by the access pattern an
// expert would expect from it. It drives the Expert Programmer baseline
// (Section V-C) and the T-OPT replacement policy's notion of "graph
// property data".
type RegionClass uint8

const (
	// ClassRegular marks sequentially or densely accessed structures
	// (offset arrays scanned in order, frontier queues, scalars).
	ClassRegular RegionClass = iota
	// ClassStreaming marks large structures scanned once in order
	// (the neighbors array during a full traversal).
	ClassStreaming
	// ClassIrregular marks structures indexed through the neighbors
	// array (per-vertex property arrays gathered data-dependently).
	// The Expert Programmer baseline routes these to the SDC.
	ClassIrregular
)

// String implements fmt.Stringer.
func (c RegionClass) String() string {
	switch c {
	case ClassRegular:
		return "regular"
	case ClassStreaming:
		return "streaming"
	case ClassIrregular:
		return "irregular"
	default:
		return fmt.Sprintf("RegionClass(%d)", uint8(c))
	}
}

// Region is a named, contiguous allocation in the synthetic address
// space corresponding to one data structure of a workload.
type Region struct {
	Name  string
	Base  Addr
	Size  uint64
	Class RegionClass
	// ElemSize is the element width in bytes (4 for the 4 B property
	// arrays of Table II, 8 for BC's pair data, ...).
	ElemSize uint64
}

// Contains reports whether a falls inside the region.
func (r *Region) Contains(a Addr) bool {
	return a >= r.Base && uint64(a-r.Base) < r.Size
}

// ElemAddr returns the address of element i of the region.
func (r *Region) ElemAddr(i int64) Addr {
	return r.Base + Addr(uint64(i)*r.ElemSize)
}

// Space is a per-core synthetic address-space allocator plus a region
// registry. Allocations are page-aligned and separated by a guard page
// so distinct structures never share a cache block or page.
type Space struct {
	core    int
	next    Addr
	regions []*Region
	sorted  bool
}

// NewSpace creates the allocator for the given core index. Each core's
// space starts at core << CoreSpaceBits (plus one page so that address 0
// is never handed out).
func NewSpace(core int) *Space {
	if core < 0 || core >= 1<<(AddrBits-CoreSpaceBits) {
		panic(fmt.Sprintf("mem: core index %d out of range", core))
	}
	return &Space{
		core: core,
		next: Addr(uint64(core)<<CoreSpaceBits) + PageSize,
	}
}

// Core returns the core index the space belongs to.
func (s *Space) Core() int { return s.core }

// Alloc reserves size bytes for a named structure of the given class and
// element width and returns its region. The base is page-aligned.
func (s *Space) Alloc(name string, size, elemSize uint64, class RegionClass) *Region {
	if size == 0 {
		size = elemSize
	}
	if elemSize == 0 {
		panic("mem: zero element size for region " + name)
	}
	r := &Region{Name: name, Base: s.next, Size: size, Class: class, ElemSize: elemSize}
	// Round the cursor up to the next page and add a guard page.
	end := uint64(s.next) + size
	end = (end + PageSize - 1) &^ uint64(PageSize-1)
	s.next = Addr(end) + PageSize
	s.regions = append(s.regions, r)
	s.sorted = false
	return r
}

// Regions returns all allocated regions in allocation order.
func (s *Space) Regions() []*Region { return s.regions }

// Find returns the region containing a, or nil if a is outside every
// allocation (e.g. the page-table region of the TLB walker).
func (s *Space) Find(a Addr) *Region {
	if !s.sorted {
		sort.Slice(s.regions, func(i, j int) bool { return s.regions[i].Base < s.regions[j].Base })
		s.sorted = true
	}
	i := sort.Search(len(s.regions), func(i int) bool { return s.regions[i].Base > a })
	if i == 0 {
		return nil
	}
	if r := s.regions[i-1]; r.Contains(a) {
		return r
	}
	return nil
}

// Footprint returns the total number of bytes allocated (excluding guard
// pages and alignment padding).
func (s *Space) Footprint() uint64 {
	var total uint64
	for _, r := range s.regions {
		total += r.Size
	}
	return total
}
