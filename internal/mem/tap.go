package mem

// Tap is the flight-recorder hook interface threaded through the
// hierarchy components (internal/cpu, internal/cache, internal/dram).
// Each component holds a Tap field that is nil in normal runs, so the
// disabled cost at every hook site is a single interface nil-check;
// internal/sim attaches the concrete recorder (internal/obs.Recorder)
// for the measurement window only and detaches it at window close,
// which keeps recorder totals exactly equal to the measurement-window
// counter deltas.
//
// The interface lives here — the hierarchy's leaf package — rather
// than in internal/obs because obs sits above the hierarchy in the
// import graph (obs → check → cache); a hook type in obs would close
// an import cycle.
type Tap interface {
	// LoadToUse records one demand load's issue-to-ready latency as
	// observed by the core (internal/cpu).
	LoadToUse(latency int64)
	// MSHRAlloc records an MSHR allocation at the cache identified by
	// level, with the register-file occupancy just before the insert.
	MSHRAlloc(level ServedBy, occupancy int)
	// MSHRStall records a miss that found every register busy and had
	// to wait the given cycles for the earliest outstanding fill.
	MSHRStall(level ServedBy, cycles int64)
	// DRAMRead records one DRAM read's arrival-to-completion latency
	// and its row-buffer outcome (hit, or miss with/without a
	// precharge-forcing conflict).
	DRAMRead(latency int64, rowHit, rowConflict bool)
}

// QuantumTap is the optional extension a Tap may implement to receive
// bound–weave quantum boundaries: the engine calls BeginQuantum on each
// core's attached tap at the start of every bound phase, so recorded
// events carry quantum provenance (obs stamps its occupancy samples
// with the current quantum index). Taps that don't implement it are
// simply not notified; recorder totals still equal measurement-window
// deltas because attachment stays window-scoped either way.
type QuantumTap interface {
	// BeginQuantum marks the start of bound–weave quantum q (0-based,
	// monotonically increasing over a run; -1 is never passed).
	BeginQuantum(q int64)
}
