// Package obs is the observability layer of the simulator: the
// phase-resolved epoch sampler types, structured run manifests, the
// JSONL/CSV exporters that turn sweeps into greppable artifacts, the
// sweep progress/ETA reporter, and the pprof/trace wiring shared by the
// cmd/ tools.
//
// The package deliberately depends only on internal/stats so that
// internal/sim can embed its types in results without an import cycle.
package obs

import "graphmem/internal/stats"

// EpochSample is one epoch of the per-core telemetry time series: the
// counter deltas accumulated between two instruction-count boundaries
// inside the measurement window. Samples are produced by the sim core
// loop when Config.EpochInterval > 0; the final epoch of a window may
// be shorter than the interval (it is closed by the window end), and an
// epoch may exceed the interval by the instruction count of the record
// that crossed the boundary.
type EpochSample struct {
	// Index is the zero-based epoch number within the window.
	Index int `json:"index"`
	// StartInstr/EndInstr are the core's cumulative retired-instruction
	// counts at the epoch boundaries, so EndInstr-StartInstr is the
	// epoch's instruction total and consecutive samples tile the
	// measurement window exactly.
	StartInstr int64 `json:"start_instr"`
	EndInstr   int64 `json:"end_instr"`
	// Stats holds the counter deltas for this epoch only.
	Stats stats.CoreStats `json:"stats"`
}

// Instructions returns the instructions retired in this epoch.
func (e *EpochSample) Instructions() int64 { return e.EndInstr - e.StartInstr }

// EpochMetrics is the derived per-epoch view the exporters emit: the
// phase-resolved curves (IPC, MPKI ladders, LP routing mix, DRAM row
// behaviour) the paper's characterization figures are built from.
type EpochMetrics struct {
	Epoch        int     `json:"epoch"`
	StartInstr   int64   `json:"start_instr"`
	Instructions int64   `json:"instructions"`
	Cycles       int64   `json:"cycles"`
	IPC          float64 `json:"ipc"`
	L1DMPKI      float64 `json:"l1d_mpki"`
	SDCMPKI      float64 `json:"sdc_mpki"`
	L2MPKI       float64 `json:"l2_mpki"`
	LLCMPKI      float64 `json:"llc_mpki"`
	LPAverse     float64 `json:"lp_averse_frac"`
	DRAMRowHit   float64 `json:"dram_row_hit_rate"`
	DRAMFrac     float64 `json:"dram_frac"`
	ServedDRAM   int64   `json:"served_dram"`
	ServedSDC    int64   `json:"served_sdc"`
}

// Metrics derives the exported per-epoch curve point.
func (e *EpochSample) Metrics() EpochMetrics {
	s := &e.Stats
	return EpochMetrics{
		Epoch:        e.Index,
		StartInstr:   e.StartInstr,
		Instructions: e.Instructions(),
		Cycles:       s.Cycles,
		IPC:          s.IPC(),
		L1DMPKI:      s.L1D.MPKI(s.Instructions),
		SDCMPKI:      s.SDC.MPKI(s.Instructions),
		L2MPKI:       s.L2.MPKI(s.Instructions),
		LLCMPKI:      s.LLC.MPKI(s.Instructions),
		LPAverse:     s.LPAverseFraction(),
		DRAMRowHit:   s.DRAMRowHitRate(),
		DRAMFrac:     s.DRAMFraction(),
		ServedDRAM:   s.ServedDRAM,
		ServedSDC:    s.ServedSDC,
	}
}

// SumInstructions returns the total instructions covered by the series;
// it equals the measured window when sampling was active for the whole
// window.
func SumInstructions(epochs []EpochSample) int64 {
	var n int64
	for i := range epochs {
		n += epochs[i].Instructions()
	}
	return n
}
