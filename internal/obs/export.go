package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// epochCSVHeader is the fixed column order of the CSV exporter; kept in
// lockstep with epochCSVRow.
var epochCSVHeader = []string{
	"core", "epoch", "start_instr", "instructions", "cycles", "ipc",
	"l1d_mpki", "sdc_mpki", "l2_mpki", "llc_mpki",
	"lp_averse_frac", "dram_row_hit_rate", "dram_frac",
	"served_dram", "served_sdc",
}

func epochCSVRow(coreID int, m EpochMetrics) []string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	return []string{
		strconv.Itoa(coreID),
		strconv.Itoa(m.Epoch),
		strconv.FormatInt(m.StartInstr, 10),
		strconv.FormatInt(m.Instructions, 10),
		strconv.FormatInt(m.Cycles, 10),
		f(m.IPC),
		f(m.L1DMPKI), f(m.SDCMPKI), f(m.L2MPKI), f(m.LLCMPKI),
		f(m.LPAverse), f(m.DRAMRowHit), f(m.DRAMFrac),
		strconv.FormatInt(m.ServedDRAM, 10),
		strconv.FormatInt(m.ServedSDC, 10),
	}
}

// WriteEpochsCSV writes the derived per-epoch curves of one or more
// cores as CSV with a header row. perCore[i] is core i's series.
func WriteEpochsCSV(w io.Writer, perCore [][]EpochSample) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(epochCSVHeader); err != nil {
		return err
	}
	for coreID, epochs := range perCore {
		for i := range epochs {
			if err := cw.Write(epochCSVRow(coreID, epochs[i].Metrics())); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// epochLine is the JSONL record shape: the derived curve point plus the
// raw counter deltas, one line per (core, epoch).
type epochLine struct {
	Core int `json:"core"`
	EpochMetrics
	Stats any `json:"stats,omitempty"`
}

// WriteEpochsJSONL writes one JSON object per (core, epoch) line.
// When raw is true each line also carries the full counter deltas.
func WriteEpochsJSONL(w io.Writer, perCore [][]EpochSample, raw bool) error {
	enc := json.NewEncoder(w)
	for coreID, epochs := range perCore {
		for i := range epochs {
			line := epochLine{Core: coreID, EpochMetrics: epochs[i].Metrics()}
			if raw {
				line.Stats = &epochs[i].Stats
			}
			if err := enc.Encode(line); err != nil {
				return fmt.Errorf("obs: jsonl encode core %d epoch %d: %w", coreID, i, err)
			}
		}
	}
	return nil
}
