package obs

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"graphmem/internal/mem"
)

// tracedRecorder builds a recorder with a three-sample timeline:
// baseline, one busy interval, one cool-down interval.
func tracedRecorder() *Recorder {
	r := NewRecorder(10)
	r.Sample(0, 0, [NumLevels]int32{}, 0, 0)
	for i := 0; i < 3; i++ {
		r.Load(mem.ServedDRAM, 100)
		r.LoadToUse(100)
	}
	r.LPDecision(true)
	var mshr [NumLevels]int32
	mshr[mem.ServedL1D] = 2
	r.Sample(10, 100, mshr, 4, 9)
	r.Load(mem.ServedDRAM, 100)
	r.Load(mem.ServedDRAM, 100)
	r.Load(mem.ServedL1D, 2)
	r.Sample(20, 200, [NumLevels]int32{}, 0, 0)
	return r
}

func TestWritePerfettoDeltasAndGauges(t *testing.T) {
	var buf bytes.Buffer
	err := WritePerfetto(&buf, []TraceRun{
		{Name: "skipped", Rec: nil},
		{Name: "Baseline/pr.kron", Rec: tracedRecorder().Summary()},
	})
	if err != nil {
		t.Fatal(err)
	}

	var tf traceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", tf.DisplayTimeUnit)
	}

	var names []string
	served := map[string]float64{}
	var sawMSHR, sawDRAMOcc bool
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			names = append(names, ev.Args["name"].(string))
			continue
		}
		if ev.Ph != "C" {
			t.Errorf("unexpected event phase %q", ev.Ph)
			continue
		}
		switch ev.Name {
		case "served (loads/interval)":
			if ev.Ts == 0 {
				t.Error("cumulative track emitted at the baseline sample")
			}
			for lv, v := range ev.Args {
				served[lv] += v.(float64)
			}
		case "mshr in-flight":
			sawMSHR = true
			if ev.Ts == 100 && ev.Args["L1D"].(float64) != 2 {
				t.Errorf("mshr gauge at ts 100 = %v", ev.Args)
			}
		case "dram occupancy":
			sawDRAMOcc = true
			if ev.Ts == 100 {
				if ev.Args["busy_banks"].(float64) != 4 || ev.Args["bus_backlog"].(float64) != 9 {
					t.Errorf("dram gauge at ts 100 = %v", ev.Args)
				}
			}
		}
	}
	// The nil-recorder run is skipped entirely; one process remains.
	if len(names) != 1 || names[0] != "Baseline/pr.kron" {
		t.Errorf("process names = %v", names)
	}
	// Interval deltas sum back to the aggregate counters.
	if served["DRAM"] != 5 || served["L1D"] != 1 {
		t.Errorf("served delta sums = %v, want DRAM 5, L1D 1", served)
	}
	if !sawMSHR || !sawDRAMOcc {
		t.Errorf("gauge tracks missing: mshr=%v dram=%v", sawMSHR, sawDRAMOcc)
	}
}

func TestWritePerfettoEmptyAndFile(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) != 0 {
		t.Errorf("empty trace carries %d events", len(tf.TraceEvents))
	}
	if !strings.Contains(buf.String(), `"traceEvents":[]`) {
		t.Errorf("traceEvents must marshal as an array, got %s", buf.String())
	}

	path := filepath.Join(t.TempDir(), "trace.json")
	runs := []TraceRun{{Name: "r", Rec: tracedRecorder().Summary()}}
	if err := WritePerfettoFile(path, runs); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Error("trace file has no events")
	}
}

func TestWriteEpochsCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEpochsCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("empty series must render the header only, got %d rows", len(rows))
	}
}

func TestManifestFlightRecorderRoundTrip(t *testing.T) {
	r := tracedRecorder()
	m := NewManifest("gmsim-test")
	m.FlightRecorder = r.Summary()

	var buf bytes.Buffer
	if err := m.Finalize(time.Now()).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	rec := back.FlightRecorder
	if rec == nil {
		t.Fatal("round trip dropped the flight_recorder block")
	}
	if rec.ServedTotal("DRAM") != 5 || rec.ServedTotal("L1D") != 1 {
		t.Errorf("served totals lost: %+v", rec.Levels)
	}
	if rec.LoadToUse.Count != r.AllLoads.Count {
		t.Errorf("load-to-use count %d != %d", rec.LoadToUse.Count, r.AllLoads.Count)
	}
	if len(rec.Samples) != 3 {
		t.Errorf("timeline lost: %d samples", len(rec.Samples))
	}
	if rec.LPAverse != 1 {
		t.Errorf("LP counters lost: %d", rec.LPAverse)
	}

	// Runs without a recorder omit the key entirely.
	buf.Reset()
	if err := NewManifest("gmsim-test").Finalize(time.Now()).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "flight_recorder") {
		t.Error("recorder-less manifest must omit flight_recorder")
	}
}
