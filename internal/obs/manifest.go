package obs

import (
	"encoding/json"
	"io"
	"runtime"
	"time"

	"graphmem/internal/check"
	"graphmem/internal/sample"
	"graphmem/internal/stats"
)

// SchemaVersion identifies the manifest layout; bump on breaking
// changes so downstream tooling can dispatch.
const SchemaVersion = 1

// RunConfig is the machine-configuration summary embedded in a
// manifest. It is deliberately a plain struct (not sim.Config) so obs
// stays import-cycle-free; sim.Config.ManifestInfo() produces it.
type RunConfig struct {
	Name          string `json:"name"`
	Cores         int    `json:"cores"`
	Routing       string `json:"routing"`
	L1DBytes      int    `json:"l1d_bytes"`
	SDCBytes      int    `json:"sdc_bytes"`
	L2Bytes       int    `json:"l2_bytes"`
	LLCBytes      int    `json:"llc_bytes"`
	Warmup        int64  `json:"warmup_instr"`
	Measure       int64  `json:"measure_instr"`
	EpochInterval int64  `json:"epoch_interval"`
	// Sampling-engine schedule (internal/sample); all omitted — keeping
	// the manifest bytes identical to today — unless sampling was on.
	SamplePeriod int64 `json:"sample_period,omitempty"`
	SampleLen    int64 `json:"sample_len,omitempty"`
	SampleOffset int64 `json:"sample_offset,omitempty"`
	SampleWarm   int64 `json:"sample_warm,omitempty"`
}

// Derived collects the headline metrics computed from the final
// counters, so artifact consumers never re-derive them inconsistently.
type Derived struct {
	IPC            float64 `json:"ipc"`
	AvgLoadLatency float64 `json:"avg_load_latency"`
	L1DMPKI        float64 `json:"l1d_mpki"`
	SDCMPKI        float64 `json:"sdc_mpki"`
	L2MPKI         float64 `json:"l2_mpki"`
	LLCMPKI        float64 `json:"llc_mpki"`
	L1DemandMPKI   float64 `json:"l1_demand_mpki"`
	LPAverse       float64 `json:"lp_averse_frac"`
	DRAMRowHit     float64 `json:"dram_row_hit_rate"`
	DRAMFrac       float64 `json:"dram_frac"`
	DTLBMissRate   float64 `json:"dtlb_miss_rate"`
	STLBMissRate   float64 `json:"stlb_miss_rate"`
}

// DeriveMetrics computes the Derived block from final window counters.
func DeriveMetrics(s *stats.CoreStats) Derived {
	return Derived{
		IPC:            s.IPC(),
		AvgLoadLatency: s.AvgLoadLatency(),
		L1DMPKI:        s.L1D.MPKI(s.Instructions),
		SDCMPKI:        s.SDC.MPKI(s.Instructions),
		L2MPKI:         s.L2.MPKI(s.Instructions),
		LLCMPKI:        s.LLC.MPKI(s.Instructions),
		L1DemandMPKI:   s.L1DemandMPKI(),
		LPAverse:       s.LPAverseFraction(),
		DRAMRowHit:     s.DRAMRowHitRate(),
		DRAMFrac:       s.DRAMFraction(),
		DTLBMissRate:   s.DTLB.MissRate(),
		STLBMissRate:   s.STLB.MissRate(),
	}
}

// RuntimeInfo captures the Go runtime state of the producing process —
// enough to compare memory footprints and host shapes across sweep
// artifacts.
type RuntimeInfo struct {
	GoVersion       string `json:"go_version"`
	GOOS            string `json:"goos"`
	GOARCH          string `json:"goarch"`
	NumCPU          int    `json:"num_cpu"`
	HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	NumGC           uint32 `json:"num_gc"`
}

// CaptureRuntime snapshots the current process runtime state.
func CaptureRuntime() RuntimeInfo {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return RuntimeInfo{
		GoVersion:       runtime.Version(),
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		NumCPU:          runtime.NumCPU(),
		HeapAllocBytes:  ms.HeapAlloc,
		TotalAllocBytes: ms.TotalAlloc,
		NumGC:           ms.NumGC,
	}
}

// Manifest is the machine-readable record of one run (or one sweep):
// what ran, on what machine configuration, every final counter, the
// derived headline metrics, the epoch time series when sampling was on,
// and enough provenance (tool, wall clock, runtime) to diff artifacts
// across commits.
type Manifest struct {
	SchemaVersion int       `json:"schema_version"`
	Tool          string    `json:"tool"`
	CreatedAt     time.Time `json:"created_at"`
	WallClockSec  float64   `json:"wall_clock_sec"`
	Profile       string    `json:"profile"`
	Workload      string    `json:"workload"`
	Config        RunConfig `json:"config"`
	// Reruns counts kernel restarts needed to fill the windows.
	Reruns int `json:"reruns"`
	// Final holds the measurement-window counter deltas verbatim.
	Final stats.CoreStats `json:"final"`
	// Derived repeats the headline metrics computed from Final.
	Derived Derived `json:"derived"`
	// Epochs is the per-epoch series (omitted when sampling was off).
	Epochs []EpochSample `json:"epochs,omitempty"`
	// Check is the differential-checker outcome (omitted when the run
	// was unchecked).
	Check *check.Summary `json:"check,omitempty"`
	// FlightRecorder is the memory-hierarchy flight-recorder summary
	// (omitted when the recorder was off).
	FlightRecorder *RecSummary `json:"flight_recorder,omitempty"`
	// Sampling is the statistical-sampling estimate with confidence
	// intervals (omitted when the sampler was off; when present, Final
	// holds the sum of the detailed samples' deltas).
	Sampling *sample.Estimate `json:"sampling,omitempty"`
	// Experiments lists the experiment ids covered by a sweep manifest
	// (gmreport -out); empty for single runs.
	Experiments []string    `json:"experiments,omitempty"`
	Runtime     RuntimeInfo `json:"runtime"`
}

// NewManifest starts a manifest for the named tool, stamping schema
// version and creation time.
func NewManifest(tool string) *Manifest {
	return &Manifest{
		SchemaVersion: SchemaVersion,
		Tool:          tool,
		CreatedAt:     time.Now().UTC(),
	}
}

// Finalize stamps the wall clock (from the given start time) and the
// runtime snapshot; call it once, immediately before writing.
func (m *Manifest) Finalize(start time.Time) *Manifest {
	m.WallClockSec = time.Since(start).Seconds()
	m.Runtime = CaptureRuntime()
	return m
}

// WriteJSON writes the manifest as indented JSON.
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}
