package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is the live observability endpoint behind gmsim/gmreport
// -metrics: it tracks sweep progress (planned/done/cached run counts),
// the set of in-flight runs, and the most recent per-run flight-recorder
// snapshots, and serves them over HTTP two ways — Prometheus text
// exposition at /metrics and expvar JSON at /debug/vars. All methods
// are safe for concurrent use; a nil *Metrics is a valid no-op
// receiver, so call sites thread one pointer and never branch.
type Metrics struct {
	mu       sync.Mutex
	started  time.Time
	total    int64 // planned live runs
	done     int64 // finished live runs
	cached   int64 // memo-served runs
	stored   int64 // disk-store-served runs
	store    StoreCounters
	inflight map[string]time.Time
	// runs holds the latest finished-run summaries, keyed by run label.
	runs map[string]runMetrics
}

// StoreCounters is the face of a disk result store the metrics endpoint
// exports: cumulative lookup and eviction counts. *store.Store
// implements it.
type StoreCounters interface {
	Hits() int64
	Misses() int64
	Evictions() int64
}

// runMetrics is one finished run's exported state.
type runMetrics struct {
	seconds float64
	ipc     float64
	rec     *RecSummary
}

// NewMetrics creates an idle metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{
		started:  time.Now(),
		inflight: make(map[string]time.Time),
		runs:     make(map[string]runMetrics),
	}
}

// Plan registers n additional upcoming live runs.
func (m *Metrics) Plan(n int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.total += int64(n)
	m.mu.Unlock()
}

// RunStarted marks the labelled run in flight.
func (m *Metrics) RunStarted(label string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.inflight[label] = time.Now()
	m.mu.Unlock()
}

// RunFinished records a live run's outcome; rec may be nil when the
// flight recorder was off.
func (m *Metrics) RunFinished(label string, seconds, ipc float64, rec *RecSummary) {
	if m == nil {
		return
	}
	m.mu.Lock()
	delete(m.inflight, label)
	m.done++
	m.runs[label] = runMetrics{seconds: seconds, ipc: ipc, rec: rec}
	m.mu.Unlock()
}

// RunCached records a memo-served run.
func (m *Metrics) RunCached(label string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.cached++
	m.mu.Unlock()
}

// RunStoreHit records a run served from the disk result store.
func (m *Metrics) RunStoreHit(label string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.stored++
	m.mu.Unlock()
}

// AttachStore registers the disk result store whose hit/miss/eviction
// counters /metrics exports. A nil receiver or store is a no-op.
func (m *Metrics) AttachStore(s StoreCounters) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.store = s
	m.mu.Unlock()
}

// Counts returns the run-outcome counters (planned and finished live
// runs, memo-served runs, disk-store-served runs) — the handle tests
// use to assert a warm sweep executed zero simulations.
func (m *Metrics) Counts() (planned, finished, cached, stored int64) {
	if m == nil {
		return 0, 0, 0, 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.total, m.done, m.cached, m.stored
}

// promEscape escapes a Prometheus label value.
func promEscape(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4).
func (m *Metrics) WritePrometheus(b *strings.Builder) {
	m.mu.Lock()
	defer m.mu.Unlock()

	counter := func(name, help string, v int64) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("graphmem_runs_planned_total", "Live simulation runs planned for the sweep.", m.total)
	counter("graphmem_runs_finished_total", "Live simulation runs finished.", m.done)
	counter("graphmem_runs_cached_total", "Runs served from the sweep memo cache.", m.cached)
	counter("graphmem_runs_store_total", "Runs served from the disk result store.", m.stored)

	if m.store != nil {
		hits, misses := m.store.Hits(), m.store.Misses()
		counter("graphmem_store_hits_total", "Disk result store lookups served from disk.", hits)
		counter("graphmem_store_misses_total", "Disk result store lookups that ran live.", misses)
		counter("graphmem_store_evictions_total", "Disk result store entries evicted by the size cap or GC.", m.store.Evictions())
		ratio := 0.0
		if hits+misses > 0 {
			ratio = float64(hits) / float64(hits+misses)
		}
		fmt.Fprintf(b, "# HELP graphmem_store_hit_ratio Disk result store hit ratio since start.\n# TYPE graphmem_store_hit_ratio gauge\ngraphmem_store_hit_ratio %g\n", ratio)
	}

	fmt.Fprintf(b, "# HELP graphmem_runs_in_flight Simulation runs currently executing.\n# TYPE graphmem_runs_in_flight gauge\ngraphmem_runs_in_flight %d\n", len(m.inflight))
	fmt.Fprintf(b, "# HELP graphmem_uptime_seconds Seconds since the metrics registry started.\n# TYPE graphmem_uptime_seconds gauge\ngraphmem_uptime_seconds %g\n", time.Since(m.started).Seconds())

	labels := make([]string, 0, len(m.runs))
	for l := range m.runs {
		labels = append(labels, l)
	}
	sort.Strings(labels)

	fmt.Fprintf(b, "# HELP graphmem_run_seconds Wall-clock seconds of the finished run.\n# TYPE graphmem_run_seconds gauge\n")
	for _, l := range labels {
		fmt.Fprintf(b, "graphmem_run_seconds{run=%q} %g\n", promEscape(l), m.runs[l].seconds)
	}
	fmt.Fprintf(b, "# HELP graphmem_run_ipc Measured IPC of the finished run.\n# TYPE graphmem_run_ipc gauge\n")
	for _, l := range labels {
		fmt.Fprintf(b, "graphmem_run_ipc{run=%q} %g\n", promEscape(l), m.runs[l].ipc)
	}

	// Flight-recorder snapshots, when runs carried one.
	fmt.Fprintf(b, "# HELP graphmem_run_served_total Demand loads served, by level.\n# TYPE graphmem_run_served_total counter\n")
	for _, l := range labels {
		rec := m.runs[l].rec
		if rec == nil {
			continue
		}
		for _, lv := range rec.Levels {
			fmt.Fprintf(b, "graphmem_run_served_total{run=%q,level=%q} %d\n",
				promEscape(l), promEscape(lv.Level), lv.Served)
		}
	}
	fmt.Fprintf(b, "# HELP graphmem_run_load_latency_cycles Load-to-use latency percentiles in cycles.\n# TYPE graphmem_run_load_latency_cycles gauge\n")
	for _, l := range labels {
		rec := m.runs[l].rec
		if rec == nil {
			continue
		}
		h := rec.LoadToUse
		for _, q := range []struct {
			tag string
			v   int64
		}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.99", h.P99}} {
			fmt.Fprintf(b, "graphmem_run_load_latency_cycles{run=%q,quantile=%q} %d\n",
				promEscape(l), q.tag, q.v)
		}
	}
}

// snapshot returns the expvar-facing state as a plain map.
func (m *Metrics) snapshot() map[string]any {
	m.mu.Lock()
	defer m.mu.Unlock()
	inflight := make([]string, 0, len(m.inflight))
	for l := range m.inflight {
		inflight = append(inflight, l)
	}
	sort.Strings(inflight)
	out := map[string]any{
		"runs_planned":  m.total,
		"runs_finished": m.done,
		"runs_cached":   m.cached,
		"runs_store":    m.stored,
		"in_flight":     inflight,
	}
	if m.store != nil {
		out["store_hits"] = m.store.Hits()
		out["store_misses"] = m.store.Misses()
		out["store_evictions"] = m.store.Evictions()
	}
	return out
}

// activeMetrics is the registry expvar reads from: expvar.Publish is
// global and forever, so the package publishes one Func once and swaps
// the live *Metrics under it (tests create many registries).
var (
	activeMetrics  atomic.Pointer[Metrics]
	publishMetrics sync.Once
)

// Handler returns the endpoint mux: Prometheus text at /metrics,
// expvar JSON at /debug/vars, and a plain-text index at /.
func (m *Metrics) Handler() http.Handler {
	activeMetrics.Store(m)
	publishMetrics.Do(func() {
		expvar.Publish("graphmem", expvar.Func(func() any {
			if cur := activeMetrics.Load(); cur != nil {
				return cur.snapshot()
			}
			return nil
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		var b strings.Builder
		m.WritePrometheus(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, b.String())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "graphmem metrics endpoint\n\n/metrics      Prometheus text exposition\n/debug/vars   expvar JSON\n")
	})
	return mux
}

// Serve binds addr (":6060", "127.0.0.1:0", ...) and serves the
// endpoint in a background goroutine, returning the bound address. The
// listener lives until the process exits — the endpoint is a window
// into a sweep, not a managed service.
func (m *Metrics) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: metrics listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: m.Handler()}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
