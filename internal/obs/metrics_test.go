package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

func TestMetricsNilReceiverIsNoOp(t *testing.T) {
	var m *Metrics
	m.Plan(3)
	m.RunStarted("x")
	m.RunFinished("x", 1, 1, nil)
	m.RunCached("x")
}

// checkPrometheusText validates the exposition format line by line:
// every non-comment line must be "name[{labels}] value" with a
// parseable float value.
func checkPrometheusText(t *testing.T, text string) {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Errorf("malformed sample line %q", line)
			continue
		}
		if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil {
			t.Errorf("unparseable value in %q: %v", line, err)
		}
		name := line[:i]
		if j := strings.IndexByte(name, '{'); j >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Errorf("unterminated label set in %q", line)
			}
			name = name[:j]
		}
		if !strings.HasPrefix(name, "graphmem_") {
			t.Errorf("unprefixed metric in %q", line)
		}
	}
}

func TestMetricsPrometheusText(t *testing.T) {
	m := NewMetrics()
	m.Plan(2)
	m.RunStarted("Baseline/pr.kron")
	m.RunStarted("SDC+LP/pr.kron")
	rec := &RecSummary{
		LoadToUse: HistSummary{Count: 10, P50: 8, P90: 64, P99: 100},
		Levels:    []LevelSummary{{Level: "DRAM", Served: 5}},
	}
	m.RunFinished("Baseline/pr.kron", 1.5, 0.42, rec)
	m.RunCached("Baseline/cc.urand")

	var b strings.Builder
	m.WritePrometheus(&b)
	text := b.String()
	checkPrometheusText(t, text)

	for _, want := range []string{
		"graphmem_runs_planned_total 2",
		"graphmem_runs_finished_total 1",
		"graphmem_runs_cached_total 1",
		"graphmem_runs_in_flight 1",
		`graphmem_run_seconds{run="Baseline/pr.kron"} 1.5`,
		`graphmem_run_ipc{run="Baseline/pr.kron"} 0.42`,
		`graphmem_run_served_total{run="Baseline/pr.kron",level="DRAM"} 5`,
		`graphmem_run_load_latency_cycles{run="Baseline/pr.kron",quantile="0.99"} 100`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestPromEscape(t *testing.T) {
	if got := promEscape(`a"b\c` + "\n"); got != `a\"b\\c\n` {
		t.Errorf("promEscape = %q", got)
	}
}

func TestMetricsServeEndpoint(t *testing.T) {
	m := NewMetrics()
	m.Plan(1)
	m.RunStarted("Baseline/pr.kron")
	m.RunFinished("Baseline/pr.kron", 0.1, 1.0, nil)

	addr, err := m.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}
	checkPrometheusText(t, string(body))
	if !strings.Contains(string(body), "graphmem_runs_finished_total 1") {
		t.Errorf("/metrics missing finished counter:\n%s", body)
	}

	resp, err = http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	gm, ok := vars["graphmem"].(map[string]any)
	if !ok {
		t.Fatalf("/debug/vars missing graphmem block: %v", vars["graphmem"])
	}
	if gm["runs_finished"].(float64) != 1 {
		t.Errorf("expvar runs_finished = %v", gm["runs_finished"])
	}
}
