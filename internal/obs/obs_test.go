package obs

import (
	"bufio"
	"bytes"
	"encoding/csv"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"graphmem/internal/stats"
)

func sampleSeries() [][]EpochSample {
	mk := func(idx int, start, n int64) EpochSample {
		var s stats.CoreStats
		s.Instructions = n
		s.Cycles = 2 * n
		s.L1D.Misses = 10
		s.SDC.Misses = 4
		s.LPPredAverse, s.LPPredFriendly = 3, 1
		s.DRAMRowHits, s.DRAMRowMisses = 6, 2
		s.ServedDRAM, s.ServedL2 = 5, 5
		return EpochSample{Index: idx, StartInstr: start, EndInstr: start + n, Stats: s}
	}
	return [][]EpochSample{
		{mk(0, 1000, 500), mk(1, 1500, 500), mk(2, 2000, 250)},
		{mk(0, 0, 800)},
	}
}

func TestEpochMetricsDerivation(t *testing.T) {
	e := sampleSeries()[0][0]
	m := e.Metrics()
	if m.Instructions != 500 || m.Epoch != 0 || m.StartInstr != 1000 {
		t.Fatalf("metrics identity fields wrong: %+v", m)
	}
	if m.IPC != 0.5 {
		t.Errorf("IPC = %g, want 0.5", m.IPC)
	}
	if m.L1DMPKI != 20 {
		t.Errorf("L1D MPKI = %g, want 20", m.L1DMPKI)
	}
	if m.LPAverse != 0.75 || m.DRAMRowHit != 0.75 || m.DRAMFrac != 0.5 {
		t.Errorf("derived fractions wrong: %+v", m)
	}
}

func TestSumInstructions(t *testing.T) {
	if got := SumInstructions(sampleSeries()[0]); got != 1250 {
		t.Errorf("SumInstructions = %d, want 1250", got)
	}
	if got := SumInstructions(nil); got != 0 {
		t.Errorf("SumInstructions(nil) = %d", got)
	}
}

func TestWriteEpochsCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEpochsCSV(&buf, sampleSeries()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 { // header + 3 + 1
		t.Fatalf("got %d CSV rows, want 5", len(rows))
	}
	if rows[0][0] != "core" || rows[0][5] != "ipc" {
		t.Errorf("unexpected header %v", rows[0])
	}
	if rows[4][0] != "1" || rows[4][1] != "0" {
		t.Errorf("core-1 row wrong: %v", rows[4])
	}
	for _, row := range rows[1:] {
		if len(row) != len(epochCSVHeader) {
			t.Errorf("row width %d != header width %d", len(row), len(epochCSVHeader))
		}
	}
}

func TestWriteEpochsJSONL(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteEpochsJSONL(&buf, sampleSeries(), true); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		if _, ok := m["ipc"]; !ok {
			t.Errorf("line %d missing ipc: %v", lines, m)
		}
		if _, ok := m["stats"]; !ok {
			t.Errorf("line %d missing raw stats", lines)
		}
		lines++
	}
	if lines != 4 {
		t.Errorf("got %d JSONL lines, want 4", lines)
	}

	buf.Reset()
	if err := WriteEpochsJSONL(&buf, sampleSeries(), false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"stats"`) {
		t.Error("raw=false must omit the stats block")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := NewManifest("gmsim-test")
	m.Profile = "bench"
	m.Workload = "pr.kron"
	m.Config = RunConfig{Name: "SDC+LP", Cores: 1, Routing: "lp", Warmup: 100, Measure: 200, EpochInterval: 50}
	m.Final.Instructions = 200
	m.Final.Cycles = 400
	m.Derived = DeriveMetrics(&m.Final)
	m.Epochs = sampleSeries()[0]
	m.Finalize(time.Now().Add(-2 * time.Second))

	if m.SchemaVersion != SchemaVersion {
		t.Fatalf("schema version %d", m.SchemaVersion)
	}
	if m.WallClockSec < 1.5 {
		t.Errorf("wall clock %.2fs, want ~2s", m.WallClockSec)
	}
	if m.Runtime.GoVersion == "" || m.Runtime.NumCPU <= 0 {
		t.Errorf("runtime info not captured: %+v", m.Runtime)
	}

	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Workload != "pr.kron" || back.Config.Name != "SDC+LP" || len(back.Epochs) != 3 {
		t.Errorf("round-trip lost fields: %+v", back)
	}
	if back.Derived.IPC != 0.5 {
		t.Errorf("derived IPC %g", back.Derived.IPC)
	}
}

func TestProgressCountsAndETA(t *testing.T) {
	var lines []string
	p := NewProgress(func(s string) { lines = append(lines, s) })
	clock := time.Unix(0, 0)
	p.now = func() time.Time { return clock }

	// Plans cover live runs only; the cache hit self-plans (+1/+1).
	p.Plan(3)
	for i := 0; i < 2; i++ {
		finish := p.StartRun("run")
		clock = clock.Add(2 * time.Second)
		finish("IPC=1.0")
	}
	p.Cached("run", "IPC=1.0")

	done, total, avg, eta := p.Snapshot()
	if done != 3 || total != 4 {
		t.Fatalf("done/total = %d/%d, want 3/4", done, total)
	}
	if avg != 2*time.Second {
		t.Errorf("avg = %v, want 2s", avg)
	}
	if eta != 2*time.Second {
		t.Errorf("eta = %v, want 2s (1 remaining x 2s)", eta)
	}
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3: %v", len(lines), lines)
	}
	if !strings.Contains(lines[0], "[  1/3]") || !strings.Contains(lines[0], "2s") {
		t.Errorf("first line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "eta") {
		t.Errorf("second line should carry an ETA: %q", lines[1])
	}
	if !strings.Contains(lines[2], "(cached)") {
		t.Errorf("cached line = %q", lines[2])
	}
}

func TestProgressParallelETAAndInFlight(t *testing.T) {
	var lines []string
	p := NewProgress(func(s string) { lines = append(lines, s) })
	clock := time.Unix(0, 0)
	p.now = func() time.Time { return clock }

	p.Plan(4)
	f1 := p.StartRun("a")
	f2 := p.StartRun("b")
	if got := p.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
	clock = clock.Add(2 * time.Second)
	f1("IPC=1.0")

	// One of two workers finished: 3 runs remain at 2s average across a
	// peak concurrency of 2 -> 3s of wall clock, and 1 run in flight.
	if _, _, _, eta := p.Snapshot(); eta != 3*time.Second {
		t.Errorf("eta = %v, want 3s (3 remaining x 2s / 2 workers)", eta)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "1 in flight") {
		t.Errorf("first line should report the in-flight run: %v", lines)
	}

	f2("IPC=1.0")
	if got := p.InFlight(); got != 0 {
		t.Errorf("InFlight = %d after all finishes, want 0", got)
	}
	if strings.Contains(lines[1], "in flight") {
		t.Errorf("idle reporter should omit the in-flight gauge: %q", lines[1])
	}
	if _, _, _, eta := p.Snapshot(); eta != 2*time.Second {
		t.Errorf("eta = %v, want 2s (2 remaining x 2s / 2 workers)", eta)
	}
}

// TestProgressETAWithUnpublishedPeak pins the ramp-up race fix: a
// finish can observe peak before the concurrent StartRun CAS publishes
// it (in the worst interleaving peak still reads 0), and the ETA must
// then fall back to the live inflight count instead of dividing by 1
// (or 0) and overestimating.
func TestProgressETAWithUnpublishedPeak(t *testing.T) {
	p := NewProgress(nil)
	clock := time.Unix(0, 0)
	p.now = func() time.Time { return clock }

	p.Plan(4)
	finish := p.StartRun("a")
	p.StartRun("b")
	p.StartRun("c")
	p.StartRun("d")
	clock = clock.Add(2 * time.Second)
	finish("IPC=1.0")

	// Emulate the unpublished CAS: 3 runs still in flight, peak not yet
	// visible. 3 remaining x 2s across 3 live workers -> 2s, not 6s.
	p.peak.Store(0)
	if _, _, _, eta := p.Snapshot(); eta != 2*time.Second {
		t.Errorf("eta = %v, want 2s (divide by inflight when peak lags)", eta)
	}
}

func TestProgressNilSinkIsSilent(t *testing.T) {
	p := NewProgress(nil)
	p.Plan(1)
	p.StartRun("x")("")
	p.Log("ignored")
	if done, total, _, _ := p.Snapshot(); done != 1 || total != 1 {
		t.Errorf("nil-sink reporter must still count: %d/%d", done, total)
	}
}

func TestProgressUnplannedTotal(t *testing.T) {
	var lines []string
	p := NewProgress(func(s string) { lines = append(lines, s) })
	p.StartRun("x")("")
	if len(lines) != 1 || !strings.Contains(lines[0], "/?]") {
		t.Errorf("unplanned total should render '?': %v", lines)
	}
}

func TestProfileFlagsStartStop(t *testing.T) {
	dir := t.TempDir()
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p := RegisterProfileFlags(fs)
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	tr := filepath.Join(dir, "trace.out")
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem, "-trace", tr}); err != nil {
		t.Fatal(err)
	}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	// A little work so the profiles are non-trivial.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem, tr} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Errorf("%s not written: %v", path, err)
		} else if fi.Size() == 0 {
			t.Errorf("%s is empty", path)
		}
	}
}

func TestProfileFlagsNoopWhenUnset(t *testing.T) {
	p := &ProfileFlags{}
	stop, err := p.Start()
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}
