package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"graphmem/internal/mem"
)

// Perfetto export: the flight recorder's occupancy timeline rendered as
// Chrome trace-event JSON (the legacy format Perfetto and
// chrome://tracing both load). Each run becomes one trace "process"
// whose counter tracks plot the timeline: served-by provenance and LP
// decisions as per-interval deltas (so the track's sum over the window
// equals the recorder's — and therefore the measurement window's —
// totals), MSHR fill / DRAM bank and bus state as instantaneous gauges.
// Timestamps are CPU cycles interpreted as microseconds, which keeps
// relative spacing faithful; absolute wall time is not modelled.

// TraceRun names one run's recorder summary for export.
type TraceRun struct {
	// Name labels the trace process ("Baseline/pr.kron").
	Name string
	// Rec is the run's flight-recorder summary; runs with a nil Rec or
	// no samples are skipped.
	Rec *RecSummary
}

// traceEvent is one Chrome trace-event object. Ph "M" carries process
// metadata, ph "C" a counter sample.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Pid  int            `json:"pid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the top-level trace-event JSON shape.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// counterDef maps one counter track to the sample fields it plots.
// cumulative series are differenced between consecutive samples.
type counterDef struct {
	track      string
	cumulative bool
	series     func(s *OccSample) map[string]int64
}

// perfettoCounters is the fixed track layout of the export.
var perfettoCounters = []counterDef{
	{track: "served (loads/interval)", cumulative: true, series: func(s *OccSample) map[string]int64 {
		out := make(map[string]int64, NumLevels)
		for lv := range s.Served {
			if s.Served[lv] != 0 {
				out[mem.ServedBy(lv).String()] = s.Served[lv]
			}
		}
		return out
	}},
	{track: "lp decisions/interval", cumulative: true, series: func(s *OccSample) map[string]int64 {
		return map[string]int64{"averse": s.LPAverse, "friendly": s.LPFriendly}
	}},
	{track: "dram rows/interval", cumulative: true, series: func(s *OccSample) map[string]int64 {
		return map[string]int64{"row_hits": s.DRAMRowHits, "row_misses": s.DRAMRowMisses}
	}},
	{track: "mshr in-flight", series: func(s *OccSample) map[string]int64 {
		out := make(map[string]int64, 4)
		for lv := range s.MSHR {
			if s.MSHR[lv] != 0 {
				out[mem.ServedBy(lv).String()] = int64(s.MSHR[lv])
			}
		}
		return out
	}},
	{track: "dram occupancy", series: func(s *OccSample) map[string]int64 {
		return map[string]int64{
			"busy_banks":  int64(s.DRAMBusyBanks),
			"bus_backlog": s.DRAMBusBacklog,
		}
	}},
}

// runEvents renders one run's samples into trace events under pid.
func runEvents(pid int, run TraceRun) []traceEvent {
	evs := []traceEvent{{
		Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": run.Name},
	}}
	samples := run.Rec.Samples
	for _, def := range perfettoCounters {
		for i := range samples {
			cur := def.series(&samples[i])
			args := make(map[string]any, len(cur))
			if def.cumulative {
				if i == 0 {
					continue // the window-start baseline anchors the first delta
				}
				prev := def.series(&samples[i-1])
				for k, v := range cur {
					args[k] = v - prev[k]
				}
			} else {
				for k, v := range cur {
					args[k] = v
				}
			}
			if len(args) == 0 {
				continue
			}
			evs = append(evs, traceEvent{
				Name: def.track, Ph: "C", Ts: samples[i].Cycle, Pid: pid, Args: args,
			})
		}
	}
	return evs
}

// WritePerfetto renders the runs' occupancy timelines as Chrome
// trace-event JSON. Runs without recorder samples are skipped.
func WritePerfetto(w io.Writer, runs []TraceRun) error {
	tf := traceFile{TraceEvents: []traceEvent{}, DisplayTimeUnit: "ms"}
	pid := 0
	for _, run := range runs {
		if run.Rec == nil || len(run.Rec.Samples) == 0 {
			continue
		}
		pid++
		tf.TraceEvents = append(tf.TraceEvents, runEvents(pid, run)...)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&tf)
}

// WritePerfettoFile writes the trace to path.
func WritePerfettoFile(path string, runs []TraceRun) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: create trace: %w", err)
	}
	if err := WritePerfetto(f, runs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
