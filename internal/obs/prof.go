package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// ProfileFlags is the shared profiling flag set of the cmd/ tools:
// -cpuprofile, -memprofile and -trace, so hot-path work is measurable
// with the standard Go toolchain (go tool pprof / go tool trace).
type ProfileFlags struct {
	CPUProfile string
	MemProfile string
	TracePath  string
}

// RegisterProfileFlags registers the three profiling flags on fs
// (flag.CommandLine in the tools) and returns the destination struct.
func RegisterProfileFlags(fs *flag.FlagSet) *ProfileFlags {
	p := &ProfileFlags{}
	fs.StringVar(&p.CPUProfile, "cpuprofile", "", "write a CPU profile to this file")
	fs.StringVar(&p.MemProfile, "memprofile", "", "write a heap profile to this file on exit")
	fs.StringVar(&p.TracePath, "trace", "", "write a Go execution trace to this file")
	return p
}

// Start begins the requested profiling and returns a stop func to defer
// in main; stop ends the CPU profile and execution trace and writes the
// heap profile. With no flags set both Start and stop are no-ops.
func (p *ProfileFlags) Start() (stop func() error, err error) {
	var cpuF, traceF *os.File
	cleanup := func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if traceF != nil {
			trace.Stop()
			traceF.Close()
		}
	}
	if p.CPUProfile != "" {
		cpuF, err = os.Create(p.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("obs: cpuprofile: %w", err)
		}
	}
	if p.TracePath != "" {
		traceF, err = os.Create(p.TracePath)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("obs: trace: %w", err)
		}
		if err := trace.Start(traceF); err != nil {
			traceF.Close()
			traceF = nil
			cleanup()
			return nil, fmt.Errorf("obs: trace: %w", err)
		}
	}
	memPath := p.MemProfile
	return func() error {
		cleanup()
		if memPath == "" {
			return nil
		}
		f, err := os.Create(memPath)
		if err != nil {
			return fmt.Errorf("obs: memprofile: %w", err)
		}
		defer f.Close()
		runtime.GC() // materialize up-to-date heap statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("obs: memprofile: %w", err)
		}
		return nil
	}, nil
}
