package obs

import (
	"fmt"
	"sync"
	"time"
)

// progressWindow is the number of recent live runs the moving-average
// run time is computed over.
const progressWindow = 16

// Progress is the sweep progress reporter: experiments plan their run
// counts up front, every simulation reports start/finish, and each
// finish emits one line with runs completed/total, the moving-average
// run time and the estimated time remaining. Cached (memoized) results
// count toward completion but do not pollute the run-time average.
// All methods are safe for concurrent use.
type Progress struct {
	mu  sync.Mutex
	out func(string)
	now func() time.Time

	total  int
	done   int
	window [progressWindow]time.Duration
	wn, wi int
}

// NewProgress creates a reporter emitting lines to out; a nil out
// discards everything (the -q path) while still tracking counts.
func NewProgress(out func(string)) *Progress {
	return &Progress{out: out, now: time.Now}
}

// Plan registers n additional upcoming runs. Experiments call it before
// their loops so ETAs cover the whole sweep, not just the current loop.
func (p *Progress) Plan(n int) {
	p.mu.Lock()
	p.total += n
	p.mu.Unlock()
}

// Log emits a pass-through narration line (graph building etc.).
func (p *Progress) Log(msg string) {
	p.mu.Lock()
	out := p.out
	p.mu.Unlock()
	if out != nil {
		out(msg)
	}
}

// StartRun marks one run as started and returns its finish func; call
// the returned func with a short result detail ("IPC=0.453") when the
// run completes. The finish func updates the moving average and emits
// the progress line.
func (p *Progress) StartRun(label string) func(detail string) {
	start := p.now()
	return func(detail string) {
		d := p.now().Sub(start)
		p.mu.Lock()
		p.done++
		p.window[p.wi] = d
		p.wi = (p.wi + 1) % progressWindow
		if p.wn < progressWindow {
			p.wn++
		}
		line := p.lineLocked(label, detail, d, false)
		out := p.out
		p.mu.Unlock()
		if out != nil {
			out(line)
		}
	}
}

// Cached marks one run as satisfied from the memo cache: it counts
// toward completion instantly and leaves the run-time average alone.
func (p *Progress) Cached(label, detail string) {
	p.mu.Lock()
	p.done++
	line := p.lineLocked(label, detail, 0, true)
	out := p.out
	p.mu.Unlock()
	if out != nil {
		out(line)
	}
}

// Snapshot returns completed/total counts and the current moving
// average and ETA (both zero until a live run finished or when no runs
// remain).
func (p *Progress) Snapshot() (done, total int, avg, eta time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	done, total = p.done, p.total
	avg = p.avgLocked()
	if remaining := total - done; remaining > 0 {
		eta = avg * time.Duration(remaining)
	}
	return done, total, avg, eta
}

func (p *Progress) avgLocked() time.Duration {
	if p.wn == 0 {
		return 0
	}
	var sum time.Duration
	for i := 0; i < p.wn; i++ {
		sum += p.window[i]
	}
	return sum / time.Duration(p.wn)
}

func (p *Progress) lineLocked(label, detail string, d time.Duration, cached bool) string {
	totalStr := "?"
	if p.total > 0 {
		totalStr = fmt.Sprint(p.total)
	}
	line := fmt.Sprintf("[%3d/%s] %s", p.done, totalStr, label)
	if detail != "" {
		line += " " + detail
	}
	if cached {
		return line + " (cached)"
	}
	line += fmt.Sprintf(" | %s", fmtDuration(d))
	if avg := p.avgLocked(); avg > 0 {
		line += fmt.Sprintf(" | avg %s", fmtDuration(avg))
		if remaining := p.total - p.done; remaining > 0 {
			line += fmt.Sprintf(" | eta %s", fmtDuration(avg*time.Duration(remaining)))
		}
	}
	return line
}

// fmtDuration renders a duration at human sweep granularity.
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return d.Truncate(time.Second).String()
	case d >= time.Second:
		return d.Truncate(100 * time.Millisecond).String()
	default:
		return d.Truncate(time.Millisecond).String()
	}
}
