package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// progressWindow is the number of recent live runs the moving-average
// run time is computed over.
const progressWindow = 16

// Progress is the sweep progress reporter: experiments plan their live
// (not-yet-memoized) run counts up front, every simulation reports
// start/finish, and each finish emits one line with runs
// completed/total, the moving-average run time, the estimated time
// remaining and — under a parallel scheduler — the number of runs
// still in flight.
//
// Accounting protocol: Plan covers only runs that will actually
// execute; a cache hit self-plans by counting toward both done and
// total, so done/total stays consistent however much of a sweep an
// earlier experiment already memoized, and the ETA covers live work
// only. The ETA divides by the observed peak run concurrency, so it is
// wall-clock-correct under a worker pool and degrades to the
// sequential estimate at parallelism 1.
//
// All methods are safe for concurrent use. Lines are emitted while the
// reporter's lock is held so concurrent finishes cannot interleave;
// the out sink must therefore not call back into the reporter.
type Progress struct {
	mu  sync.Mutex
	out func(string)
	now func() time.Time

	// inflight/peak are the current and high-water number of started
	// but unfinished runs (atomic so StartRun stays lock-free).
	inflight atomic.Int32
	peak     atomic.Int32

	total  int
	done   int
	window [progressWindow]time.Duration
	wn, wi int
}

// NewProgress creates a reporter emitting lines to out; a nil out
// discards everything (the -q path) while still tracking counts.
func NewProgress(out func(string)) *Progress {
	return &Progress{out: out, now: time.Now}
}

// Plan registers n additional upcoming live runs. Experiments call it
// before their loops — with runs already memoized excluded — so ETAs
// cover the whole remaining sweep, not just the current loop.
func (p *Progress) Plan(n int) {
	p.mu.Lock()
	p.total += n
	p.mu.Unlock()
}

// Log emits a pass-through narration line (graph building etc.).
func (p *Progress) Log(msg string) {
	p.mu.Lock()
	p.emitLocked(msg)
	p.mu.Unlock()
}

// StartRun marks one run as started and returns its finish func; call
// the returned func with a short result detail ("IPC=0.453") when the
// run completes. The finish func updates the moving average and emits
// the progress line. Runs may start and finish concurrently.
func (p *Progress) StartRun(label string) func(detail string) {
	start := p.now()
	n := p.inflight.Add(1)
	for {
		old := p.peak.Load()
		if n <= old || p.peak.CompareAndSwap(old, n) {
			break
		}
	}
	return func(detail string) {
		d := p.now().Sub(start)
		p.inflight.Add(-1)
		p.mu.Lock()
		p.done++
		p.window[p.wi] = d
		p.wi = (p.wi + 1) % progressWindow
		if p.wn < progressWindow {
			p.wn++
		}
		p.emitLocked(p.lineLocked(label, detail, d, false))
		p.mu.Unlock()
	}
}

// Cached marks one run as satisfied from the memo cache (or joined
// onto an identical in-flight run): it counts toward done and total —
// cache hits are never planned — and leaves the run-time average
// alone.
func (p *Progress) Cached(label, detail string) {
	p.mu.Lock()
	p.done++
	p.total++
	p.emitLocked(p.lineLocked(label, detail, 0, true))
	p.mu.Unlock()
}

// InFlight returns the number of currently started but unfinished runs.
func (p *Progress) InFlight() int { return int(p.inflight.Load()) }

// Snapshot returns completed/total counts and the current moving
// average and ETA (both zero until a live run finished or when no runs
// remain).
func (p *Progress) Snapshot() (done, total int, avg, eta time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.done, p.total, p.avgLocked(), p.etaLocked()
}

func (p *Progress) avgLocked() time.Duration {
	if p.wn == 0 {
		return 0
	}
	var sum time.Duration
	for i := 0; i < p.wn; i++ {
		sum += p.window[i]
	}
	return sum / time.Duration(p.wn)
}

// etaLocked estimates the remaining wall clock: remaining runs times
// the per-run moving average, divided by the observed run concurrency
// (the worker-pool width once the pool has filled). The divisor takes
// the max of peak and the current inflight count: peak is published by
// a CompareAndSwap in StartRun that can still be in flight when the
// first run finishes, so peak alone can lag the ramp-up (or even read
// 0) and overestimate the ETA.
func (p *Progress) etaLocked() time.Duration {
	avg := p.avgLocked()
	remaining := p.total - p.done
	if avg <= 0 || remaining <= 0 {
		return 0
	}
	workers := max(int(p.peak.Load()), int(p.inflight.Load()), 1)
	if eta := avg * time.Duration(remaining) / time.Duration(workers); eta > 0 {
		return eta
	}
	// Clamped: an over-counted sweep (duplicate Cached calls) or a
	// degenerate average must never surface a negative ETA.
	return 0
}

func (p *Progress) emitLocked(line string) {
	if p.out != nil {
		p.out(line)
	}
}

func (p *Progress) lineLocked(label, detail string, d time.Duration, cached bool) string {
	totalStr := "?"
	if p.total > 0 {
		totalStr = fmt.Sprint(p.total)
	}
	line := fmt.Sprintf("[%3d/%s] %s", p.done, totalStr, label)
	if detail != "" {
		line += " " + detail
	}
	if cached {
		return line + " (cached)"
	}
	line += fmt.Sprintf(" | %s", fmtDuration(d))
	if avg := p.avgLocked(); avg > 0 {
		line += fmt.Sprintf(" | avg %s", fmtDuration(avg))
		// The ETA is hidden until two live runs have finished: a
		// single-sample moving average is noise, and flashing a wild
		// first estimate costs more trust than showing nothing.
		if eta := p.etaLocked(); eta > 0 && p.wn >= 2 {
			line += fmt.Sprintf(" | eta %s", fmtDuration(eta))
		}
	}
	if running := p.inflight.Load(); running > 0 {
		line += fmt.Sprintf(" | %d in flight", running)
	}
	return line
}

// fmtDuration renders a duration at human sweep granularity.
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return d.Truncate(time.Second).String()
	case d >= time.Second:
		return d.Truncate(100 * time.Millisecond).String()
	default:
		return d.Truncate(time.Millisecond).String()
	}
}
