package obs

import (
	"strings"
	"testing"
	"time"
)

// TestProgressETASuppressedUntilTwoRuns pins the display rule: a
// single-sample moving average is noise, so the first finish line
// carries the average but no ETA; the second finish shows both.
// Snapshot keeps exposing the raw estimate either way.
func TestProgressETASuppressedUntilTwoRuns(t *testing.T) {
	var lines []string
	p := NewProgress(func(s string) { lines = append(lines, s) })
	clock := time.Unix(0, 0)
	p.now = func() time.Time { return clock }

	p.Plan(3)
	f := p.StartRun("a")
	clock = clock.Add(2 * time.Second)
	f("IPC=1.0")

	if len(lines) != 1 || strings.Contains(lines[0], "eta") {
		t.Errorf("first finish must not show an ETA: %v", lines)
	}
	if !strings.Contains(lines[0], "avg") {
		t.Errorf("first finish should still show the average: %q", lines[0])
	}
	if _, _, _, eta := p.Snapshot(); eta != 4*time.Second {
		t.Errorf("snapshot eta = %v, want 4s (2 remaining x 2s)", eta)
	}

	f = p.StartRun("b")
	clock = clock.Add(2 * time.Second)
	f("IPC=1.0")
	if len(lines) != 2 || !strings.Contains(lines[1], "eta") {
		t.Errorf("second finish should show the ETA: %v", lines)
	}
}

// TestProgressETANeverNegative pins the clamp: an over-counted sweep
// (more finishes than planned) must report a zero ETA, never a
// negative one.
func TestProgressETANeverNegative(t *testing.T) {
	p := NewProgress(nil)
	clock := time.Unix(0, 0)
	p.now = func() time.Time { return clock }

	p.Plan(1)
	for i := 0; i < 2; i++ {
		f := p.StartRun("x")
		clock = clock.Add(time.Second)
		f("")
	}
	if _, _, _, eta := p.Snapshot(); eta != 0 {
		t.Errorf("eta = %v, want 0 when done exceeds total", eta)
	}
}
