package obs

import (
	"math/bits"

	"graphmem/internal/mem"
)

// NumLevels sizes every ServedBy-indexed array in the recorder. It
// matches the serving-level counter array in internal/sim: indices are
// mem.ServedBy values (mem.ServedNone .. mem.ServedDRAM) with one spare
// slot.
const NumLevels = 8

// LatBuckets is the number of fixed log2 latency buckets: bucket i
// holds observations v with bits.Len64(v) == i, i.e. bucket 0 holds
// zero-cycle latencies and bucket i >= 1 holds [2^(i-1), 2^i - 1].
// 48 buckets cover every latency a simulated run can produce.
const LatBuckets = 48

// LatHist is a fixed-bucket log2 histogram of cycle counts. The zero
// value is ready to use; Observe is allocation-free.
type LatHist struct {
	Count   int64             `json:"count"`
	Sum     int64             `json:"sum"`
	Max     int64             `json:"max"`
	Buckets [LatBuckets]int64 `json:"buckets"`
}

// latBucket maps a latency to its bucket index.
func latBucket(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= LatBuckets {
		return LatBuckets - 1
	}
	return b
}

// Observe records one value.
func (h *LatHist) Observe(v int64) {
	h.Count++
	h.Sum += v
	if v > h.Max {
		h.Max = v
	}
	h.Buckets[latBucket(v)]++
}

// Mean returns the arithmetic mean, 0 when empty.
func (h *LatHist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Percentile returns an upper-bound estimate of the q-quantile
// (0 < q <= 1): the upper edge of the log2 bucket containing the
// ceil(q*Count)-th smallest observation, capped at the observed Max.
func (h *LatHist) Percentile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	target := int64(q * float64(h.Count))
	if float64(target) < q*float64(h.Count) {
		target++
	}
	if target < 1 {
		target = 1
	}
	if target > h.Count {
		target = h.Count
	}
	var cum int64
	for i := range h.Buckets {
		cum += h.Buckets[i]
		if cum >= target {
			// The final bucket saturates (it holds everything past the
			// covered range), so its only honest upper edge is the max.
			if i == LatBuckets-1 {
				return h.Max
			}
			upper := int64(0)
			if i > 0 {
				upper = int64(1)<<uint(i) - 1
			}
			if upper > h.Max {
				return h.Max
			}
			return upper
		}
	}
	return h.Max
}

// summary reduces the histogram to its manifest form.
func (h *LatHist) summary() HistSummary {
	s := HistSummary{
		Count: h.Count,
		Mean:  h.Mean(),
		Max:   h.Max,
		P50:   h.Percentile(0.50),
		P90:   h.Percentile(0.90),
		P99:   h.Percentile(0.99),
	}
	// Trim trailing empty buckets so manifests stay compact.
	last := -1
	for i := range h.Buckets {
		if h.Buckets[i] != 0 {
			last = i
		}
	}
	if last >= 0 {
		s.Buckets = append([]int64(nil), h.Buckets[:last+1]...)
	}
	return s
}

// MSHRRec accumulates one cache's MSHR telemetry: allocation count with
// pre-insert occupancy (sum and high-water mark) and full-file stalls.
type MSHRRec struct {
	Allocs      int64 `json:"allocs"`
	OccSum      int64 `json:"occ_sum"`
	OccMax      int   `json:"occ_max"`
	Stalls      int64 `json:"stalls"`
	StallCycles int64 `json:"stall_cycles"`
}

// DRAMRec accumulates DRAM read telemetry: the service-latency
// histogram and the row-buffer outcome counts.
type DRAMRec struct {
	Lat          LatHist `json:"lat"`
	RowHits      int64   `json:"row_hits"`
	RowMisses    int64   `json:"row_misses"`
	RowConflicts int64   `json:"row_conflicts"`
}

// OccSample is one point of the occupancy timeline: instantaneous
// MSHR fill and DRAM bank/bus state at the sample instant, plus the
// cumulative (window-scoped) counters the exporters difference into
// per-interval rates.
type OccSample struct {
	// Instr and Cycle are the core's absolute retired-instruction and
	// cycle clocks at the sample.
	Instr int64 `json:"instr"`
	Cycle int64 `json:"cycle"`
	// MSHR is the in-flight miss count per cache, indexed by the
	// cache's mem.ServedBy value (SDC/L1D/L2/LLC slots are used).
	MSHR [NumLevels]int32 `json:"mshr"`
	// DRAMBusyBanks counts banks with a command outstanding; the
	// backlog is how far the furthest data-bus reservation extends past
	// the sample instant (cycles).
	DRAMBusyBanks  int32 `json:"dram_busy_banks"`
	DRAMBusBacklog int64 `json:"dram_bus_backlog"`
	// Quantum is the 1-based bound–weave quantum index the sample was
	// taken in (0 under the legacy serial engine, omitted from JSON so
	// legacy manifests are unchanged; see mem.QuantumTap).
	Quantum int64 `json:"quantum,omitempty"`
	// Cumulative window counters at the sample.
	Served        [NumLevels]int64 `json:"served"`
	LPAverse      int64            `json:"lp_averse"`
	LPFriendly    int64            `json:"lp_friendly"`
	DRAMRowHits   int64            `json:"dram_row_hits"`
	DRAMRowMisses int64            `json:"dram_row_misses"`
}

// Recorder is the memory-hierarchy flight recorder: per-level latency
// histograms, served-by provenance, LP classification counters, MSHR
// occupancy/stall telemetry, DRAM row-state, and the occupancy
// timeline. It implements mem.Tap; internal/sim attaches it to the
// hierarchy for the measurement window only, so every total equals the
// corresponding measurement-window counter delta. A Recorder serves
// one single-threaded simulation and is not safe for concurrent use.
type Recorder struct {
	// SampleEvery is the occupancy-sampling period in retired
	// instructions (provenance for exporters; sim drives the sampling).
	SampleEvery int64

	Served   [NumLevels]int64
	Lat      [NumLevels]LatHist // load latency by serving level
	AllLoads LatHist            // every demand load, level-blind (cpu tap)

	LPAverse   int64
	LPFriendly int64

	MSHR [NumLevels]MSHRRec // indexed by the cache's ServedBy value
	DRAM DRAMRec

	Samples []OccSample

	// Quanta counts bound–weave quanta observed while attached;
	// curQuantum stamps occupancy samples (see mem.QuantumTap).
	Quanta     int64
	curQuantum int64
}

// NewRecorder creates a recorder that notes the given sampling period.
func NewRecorder(sampleEvery int64) *Recorder {
	return &Recorder{SampleEvery: sampleEvery}
}

// BeginQuantum implements mem.QuantumTap: the bound–weave engine calls
// it at the start of every bound phase the recorder is attached for.
// Samples are stamped with the 1-based index so the legacy engine's
// zero stamp stays distinguishable (and omitted from manifests).
func (r *Recorder) BeginQuantum(q int64) {
	r.Quanta++
	r.curQuantum = q + 1
}

// Load records one demand load with its serving level and latency
// (the provenance hook on internal/sim's access path).
func (r *Recorder) Load(level mem.ServedBy, latency int64) {
	r.Served[level]++
	r.Lat[level].Observe(latency)
}

// LPDecision records one routing classification (averse or friendly).
func (r *Recorder) LPDecision(averse bool) {
	if averse {
		r.LPAverse++
	} else {
		r.LPFriendly++
	}
}

// LoadToUse implements mem.Tap (the cpu-side load-latency hook).
func (r *Recorder) LoadToUse(latency int64) {
	r.AllLoads.Observe(latency)
}

// MSHRAlloc implements mem.Tap.
func (r *Recorder) MSHRAlloc(level mem.ServedBy, occupancy int) {
	m := &r.MSHR[level]
	m.Allocs++
	m.OccSum += int64(occupancy)
	if occupancy > m.OccMax {
		m.OccMax = occupancy
	}
}

// MSHRStall implements mem.Tap.
func (r *Recorder) MSHRStall(level mem.ServedBy, cycles int64) {
	m := &r.MSHR[level]
	m.Stalls++
	m.StallCycles += cycles
}

// DRAMRead implements mem.Tap.
func (r *Recorder) DRAMRead(latency int64, rowHit, rowConflict bool) {
	r.DRAM.Lat.Observe(latency)
	switch {
	case rowHit:
		r.DRAM.RowHits++
	case rowConflict:
		r.DRAM.RowMisses++
		r.DRAM.RowConflicts++
	default:
		r.DRAM.RowMisses++
	}
}

// Sample appends one occupancy-timeline point: the caller supplies the
// instantaneous machine state (clocks, MSHR fills, DRAM bank/bus
// state); the recorder stamps its own cumulative counters.
func (r *Recorder) Sample(instr, cycle int64, mshr [NumLevels]int32, busyBanks int32, busBacklog int64) {
	r.Samples = append(r.Samples, OccSample{
		Instr:          instr,
		Cycle:          cycle,
		MSHR:           mshr,
		DRAMBusyBanks:  busyBanks,
		DRAMBusBacklog: busBacklog,
		Quantum:        r.curQuantum,
		Served:         r.Served,
		LPAverse:       r.LPAverse,
		LPFriendly:     r.LPFriendly,
		DRAMRowHits:    r.DRAM.RowHits,
		DRAMRowMisses:  r.DRAM.RowMisses,
	})
}

// HistSummary is the manifest form of a LatHist: headline percentiles
// plus the raw log2 buckets (trailing zero buckets trimmed).
type HistSummary struct {
	Count   int64   `json:"count"`
	Mean    float64 `json:"mean"`
	Max     int64   `json:"max"`
	P50     int64   `json:"p50"`
	P90     int64   `json:"p90"`
	P99     int64   `json:"p99"`
	Buckets []int64 `json:"log2_buckets,omitempty"`
}

// LevelSummary is one serving level's provenance + latency breakdown.
type LevelSummary struct {
	Level   string      `json:"level"`
	Served  int64       `json:"served"`
	Latency HistSummary `json:"latency"`
}

// MSHRSummary is one cache's MSHR telemetry in manifest form.
type MSHRSummary struct {
	Level        string  `json:"level"`
	Allocs       int64   `json:"allocs"`
	AvgOccupancy float64 `json:"avg_occupancy"`
	MaxOccupancy int     `json:"max_occupancy"`
	Stalls       int64   `json:"stalls"`
	StallCycles  int64   `json:"stall_cycles"`
}

// DRAMSummary is the DRAM telemetry in manifest form.
type DRAMSummary struct {
	Latency      HistSummary `json:"latency"`
	RowHits      int64       `json:"row_hits"`
	RowMisses    int64       `json:"row_misses"`
	RowConflicts int64       `json:"row_conflicts"`
}

// RecSummary is the JSON-marshalable flight-recorder outcome attached
// to run results and manifests ("flight_recorder").
type RecSummary struct {
	SampleEvery int64          `json:"sample_every"`
	LoadToUse   HistSummary    `json:"load_to_use"`
	Levels      []LevelSummary `json:"levels,omitempty"`
	LPAverse    int64          `json:"lp_averse"`
	LPFriendly  int64          `json:"lp_friendly"`
	MSHR        []MSHRSummary  `json:"mshr,omitempty"`
	DRAM        DRAMSummary    `json:"dram"`
	Samples     []OccSample    `json:"samples,omitempty"`
	// Quanta counts the bound–weave quanta the recorder was attached
	// for (0 under the legacy serial engine).
	Quanta int64 `json:"quanta,omitempty"`
}

// ServedTotal returns the served count of the named level ("L1D",
// "SDC", "L2C", "LLC", "remote", "DRAM"), 0 when absent.
func (s *RecSummary) ServedTotal(level string) int64 {
	for i := range s.Levels {
		if s.Levels[i].Level == level {
			return s.Levels[i].Served
		}
	}
	return 0
}

// Summary reduces the recorder to its manifest form. Levels and MSHR
// entries with no activity are omitted.
func (r *Recorder) Summary() *RecSummary {
	s := &RecSummary{
		SampleEvery: r.SampleEvery,
		LoadToUse:   r.AllLoads.summary(),
		LPAverse:    r.LPAverse,
		LPFriendly:  r.LPFriendly,
		Quanta:      r.Quanta,
		DRAM: DRAMSummary{
			Latency:      r.DRAM.Lat.summary(),
			RowHits:      r.DRAM.RowHits,
			RowMisses:    r.DRAM.RowMisses,
			RowConflicts: r.DRAM.RowConflicts,
		},
		Samples: r.Samples,
	}
	for lv := range r.Served {
		if r.Served[lv] == 0 && r.Lat[lv].Count == 0 {
			continue
		}
		s.Levels = append(s.Levels, LevelSummary{
			Level:   mem.ServedBy(lv).String(),
			Served:  r.Served[lv],
			Latency: r.Lat[lv].summary(),
		})
	}
	for lv := range r.MSHR {
		m := &r.MSHR[lv]
		if m.Allocs == 0 && m.Stalls == 0 {
			continue
		}
		avg := 0.0
		if m.Allocs > 0 {
			avg = float64(m.OccSum) / float64(m.Allocs)
		}
		s.MSHR = append(s.MSHR, MSHRSummary{
			Level:        mem.ServedBy(lv).String(),
			Allocs:       m.Allocs,
			AvgOccupancy: avg,
			MaxOccupancy: m.OccMax,
			Stalls:       m.Stalls,
			StallCycles:  m.StallCycles,
		})
	}
	return s
}
