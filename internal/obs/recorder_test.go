package obs

import (
	"testing"

	"graphmem/internal/mem"
)

func TestLatHistBucketsAndPercentiles(t *testing.T) {
	var h LatHist
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	if h.Count != 100 || h.Max != 100 || h.Sum != 5050 {
		t.Fatalf("count/max/sum = %d/%d/%d", h.Count, h.Max, h.Sum)
	}
	if h.Mean() != 50.5 {
		t.Errorf("mean = %g, want 50.5", h.Mean())
	}
	// The 50th smallest value is 50, which lives in bucket 6
	// ([32, 63]); the percentile reports the bucket's upper edge.
	if got := h.Percentile(0.50); got != 63 {
		t.Errorf("p50 = %d, want 63", got)
	}
	// The 99th value (99) lives in bucket 7 ([64, 127]) whose upper
	// edge exceeds the observed max, so the max caps it.
	if got := h.Percentile(0.99); got != 100 {
		t.Errorf("p99 = %d, want 100 (capped at max)", got)
	}
	if got := h.Percentile(1); got != 100 {
		t.Errorf("p100 = %d, want 100", got)
	}
	if got := h.Percentile(0.01); got != 1 {
		t.Errorf("p1 = %d, want 1 (bucket [1,1])", got)
	}
}

func TestLatHistEdgeCases(t *testing.T) {
	var h LatHist
	if h.Percentile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram must report zeros")
	}
	h.Observe(0)
	if h.Buckets[0] != 1 {
		t.Errorf("zero latency must land in bucket 0: %v", h.Buckets[:4])
	}
	// Out-of-range observations saturate into the last bucket.
	h.Observe(1 << 60)
	if h.Buckets[LatBuckets-1] != 1 {
		t.Error("huge latency must saturate into the last bucket")
	}
	if h.Max != 1<<60 {
		t.Errorf("max = %d", h.Max)
	}
	if got := h.Percentile(1); got != 1<<60 {
		t.Errorf("p100 = %d, want the observed max", got)
	}
}

func TestRecorderSummaryOmitsIdleLevels(t *testing.T) {
	r := NewRecorder(100)
	r.Load(mem.ServedL1D, 4)
	r.Load(mem.ServedDRAM, 200)
	r.LoadToUse(4)
	r.LoadToUse(200)
	r.LPDecision(true)
	r.LPDecision(false)
	r.LPDecision(true)
	r.MSHRAlloc(mem.ServedL1D, 3)
	r.MSHRStall(mem.ServedL1D, 7)
	r.DRAMRead(180, true, false)
	r.DRAMRead(220, false, true)

	s := r.Summary()
	if s.SampleEvery != 100 {
		t.Errorf("sample interval %d", s.SampleEvery)
	}
	if len(s.Levels) != 2 {
		t.Fatalf("idle levels must be omitted, got %d entries", len(s.Levels))
	}
	if s.ServedTotal("L1D") != 1 || s.ServedTotal("DRAM") != 1 || s.ServedTotal("LLC") != 0 {
		t.Errorf("served totals wrong: %+v", s.Levels)
	}
	if s.LoadToUse.Count != 2 || s.LoadToUse.Max != 200 {
		t.Errorf("load-to-use summary wrong: %+v", s.LoadToUse)
	}
	if s.LPAverse != 2 || s.LPFriendly != 1 {
		t.Errorf("LP counters %d/%d", s.LPAverse, s.LPFriendly)
	}
	if len(s.MSHR) != 1 {
		t.Fatalf("idle MSHRs must be omitted, got %d entries", len(s.MSHR))
	}
	m := s.MSHR[0]
	if m.Level != "L1D" || m.Allocs != 1 || m.MaxOccupancy != 3 || m.Stalls != 1 || m.StallCycles != 7 {
		t.Errorf("MSHR summary wrong: %+v", m)
	}
	if s.DRAM.RowHits != 1 || s.DRAM.RowMisses != 1 || s.DRAM.RowConflicts != 1 {
		t.Errorf("DRAM row outcomes wrong: %+v", s.DRAM)
	}
	if s.DRAM.Latency.Count != 2 {
		t.Errorf("DRAM latency count %d", s.DRAM.Latency.Count)
	}
}

func TestRecorderSampleStampsCumulativeCounters(t *testing.T) {
	r := NewRecorder(10)
	r.Sample(0, 0, [NumLevels]int32{}, 0, 0)
	r.Load(mem.ServedL2, 12)
	r.LPDecision(true)
	r.DRAMRead(100, true, false)
	var mshr [NumLevels]int32
	mshr[mem.ServedL2] = 5
	r.Sample(10, 40, mshr, 3, 17)

	if len(r.Samples) != 2 {
		t.Fatalf("got %d samples", len(r.Samples))
	}
	if s0 := r.Samples[0]; s0.Served != ([NumLevels]int64{}) || s0.LPAverse != 0 {
		t.Errorf("baseline sample must carry zero counters: %+v", s0)
	}
	s1 := r.Samples[1]
	if s1.Instr != 10 || s1.Cycle != 40 {
		t.Errorf("sample clocks %d/%d", s1.Instr, s1.Cycle)
	}
	if s1.Served[mem.ServedL2] != 1 || s1.LPAverse != 1 || s1.DRAMRowHits != 1 {
		t.Errorf("cumulative counters not stamped: %+v", s1)
	}
	if s1.MSHR[mem.ServedL2] != 5 || s1.DRAMBusyBanks != 3 || s1.DRAMBusBacklog != 17 {
		t.Errorf("instantaneous state not stamped: %+v", s1)
	}
}
