package prefetch

import (
	"testing"

	"graphmem/internal/mem"
)

// pcAt builds the PC-carrying AccessInfo the L2 hook passes to Stride.
func pcAt(pc uint64, blk mem.BlockAddr) mem.AccessInfo {
	return mem.AccessInfo{PC: pc, Addr: blk.Addr(), Blk: blk}
}

// gather builds the value-annotated gather observation IMP learns from:
// an access at gatherPC whose address was produced by the index load at
// depPC loading depValue.
func gather(gatherPC uint64, addr mem.Addr, depPC, depValue uint64) mem.AccessInfo {
	return mem.AccessInfo{
		PC: gatherPC, Addr: addr, Blk: addr.Block(),
		ValueHint: mem.ValueHint{DepPC: depPC, DepValue: depValue, DepHasValue: true},
	}
}

// indexLoad builds the value-annotated index load IMP issues on.
func indexLoad(pc uint64, addr mem.Addr, value uint64) mem.AccessInfo {
	return mem.AccessInfo{
		PC: pc, Addr: addr, Blk: addr.Block(),
		ValueHint: mem.ValueHint{Value: value, HasValue: true},
	}
}

func TestStrideLearnsAndIssues(t *testing.T) {
	s := NewStride()
	const pc = 0x4100
	buf := s.OnAccess(pcAt(pc, 10), nil)
	buf = s.OnAccess(pcAt(pc, 12), buf) // stride 2, conf 1: below threshold
	if len(buf) != 0 {
		t.Fatalf("issued %v before the stride was confirmed", buf)
	}
	buf = s.OnAccess(pcAt(pc, 14), buf) // conf 2: issue degree-many
	want := []mem.BlockAddr{16, 18, 20, 22}
	if len(buf) != len(want) {
		t.Fatalf("got %v, want %v", buf, want)
	}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("got %v, want %v", buf, want)
		}
	}
	if s.Issued != int64(len(want)) {
		t.Fatalf("Issued = %d, want %d", s.Issued, len(want))
	}
}

func TestStrideIgnoresZeroPC(t *testing.T) {
	s := NewStride()
	var buf []mem.BlockAddr
	for blk := mem.BlockAddr(0); blk < 20; blk += 2 {
		buf = s.OnAccess(pcAt(0, blk), buf)
	}
	if len(buf) != 0 {
		t.Fatalf("PC-less accesses issued %v", buf)
	}
}

func TestStrideStopsAtPageBoundary(t *testing.T) {
	s := NewStride()
	const pc = 0x4100
	last := mem.BlockAddr(blocksPerPage - 2)
	var buf []mem.BlockAddr
	for _, blk := range []mem.BlockAddr{last - 4, last - 2, last} {
		buf = s.OnAccess(pcAt(pc, blk), buf[:0])
	}
	// Confirmed stride 2 at the page's penultimate block: every candidate
	// would land in the next page.
	if len(buf) != 0 {
		t.Fatalf("issued %v across a page boundary", buf)
	}
}

func TestStrideSeparateSitesSeparateStrides(t *testing.T) {
	s := NewStride()
	const pcA, pcB = 0x4100, 0x4200 // distinct table slots
	var buf []mem.BlockAddr
	for i := mem.BlockAddr(0); i < 3; i++ {
		buf = s.OnAccess(pcAt(pcA, i*2), buf[:0])
		buf2 := s.OnAccess(pcAt(pcB, 1000+i*3), nil)
		if i == 2 {
			if len(buf) == 0 || buf[0] != 6 {
				t.Fatalf("site A: got %v, want first candidate 6", buf)
			}
			if len(buf2) == 0 || buf2[0] != 1009 {
				t.Fatalf("site B: got %v, want first candidate 1009", buf2)
			}
		}
	}
}

func TestIMPLearnsGatherMapping(t *testing.T) {
	p := NewIMP()
	const (
		gatherPC = 0x5100
		indexPC  = 0x5200
		base     = 0x40000
	)
	// Two consecutive gather observations solve shift (4-byte elements)
	// and base; the third confirms (conf 2 = issue threshold).
	var buf []mem.BlockAddr
	for _, v := range []uint64{5, 9, 13} {
		buf = p.OnAccess(gather(gatherPC, mem.Addr(base+v*4), indexPC, v), buf[:0])
	}
	if len(buf) != 0 {
		t.Fatalf("gather observations issued %v; only index loads should", buf)
	}
	// Index load of value 100: the gather's future address is base+100*4.
	buf = p.OnAccess(indexLoad(indexPC, 0x9000, 100), nil)
	want := mem.Addr(base + 100*4).Block()
	if len(buf) != 1 || buf[0] != want {
		t.Fatalf("got %v, want [%v]", buf, want)
	}
	if p.Issued != 1 {
		t.Fatalf("Issued = %d, want 1", p.Issued)
	}
}

func TestIMPLearns8ByteElements(t *testing.T) {
	p := NewIMP()
	const gatherPC, indexPC, base = 0x5100, 0x5200, 0x80000
	for _, v := range []uint64{3, 10, 4} {
		p.OnAccess(gather(gatherPC, mem.Addr(base+v*8), indexPC, v), nil)
	}
	buf := p.OnAccess(indexLoad(indexPC, 0x9000, 77), nil)
	want := mem.Addr(base + 77*8).Block()
	if len(buf) != 1 || buf[0] != want {
		t.Fatalf("got %v, want [%v]", buf, want)
	}
}

func TestIMPQuietOnUnrelatedIndexSite(t *testing.T) {
	p := NewIMP()
	const gatherPC, indexPC, base = 0x5100, 0x5200, 0x40000
	for _, v := range []uint64{5, 9, 13} {
		p.OnAccess(gather(gatherPC, mem.Addr(base+v*4), indexPC, v), nil)
	}
	if buf := p.OnAccess(indexLoad(0x7777, 0x9000, 100), nil); len(buf) != 0 {
		t.Fatalf("unrelated index site issued %v", buf)
	}
}

func TestIMPQuietOnNonLinearGathers(t *testing.T) {
	p := NewIMP()
	const gatherPC, indexPC = 0x5100, 0x5200
	// Addresses unrelated to the index values: no element-size quotient.
	addrs := []mem.Addr{0x1000, 0x5303, 0x2101, 0x7907}
	for i, v := range []uint64{5, 9, 13, 21} {
		p.OnAccess(gather(gatherPC, addrs[i], indexPC, v), nil)
	}
	if buf := p.OnAccess(indexLoad(indexPC, 0x9000, 100), nil); len(buf) != 0 {
		t.Fatalf("non-linear gather stream issued %v", buf)
	}
}

func TestPickleLearnsPageDeltas(t *testing.T) {
	p := NewPickle()
	var buf []mem.BlockAddr
	// Misses at page offsets 0,2,4,6,8: delta 2 reaches conf 3 at
	// offset 6 and issues from there on.
	for off := mem.BlockAddr(0); off <= 4; off += 2 {
		buf = p.OnAccess(at(off), buf[:0])
		if len(buf) != 0 {
			t.Fatalf("offset %d: issued %v below confidence", off, buf)
		}
	}
	buf = p.OnAccess(at(6), nil)
	if len(buf) != 1 || buf[0] != 8 {
		t.Fatalf("got %v, want [8]", buf)
	}
	buf = p.OnAccess(at(8), nil)
	if len(buf) != 1 || buf[0] != 10 {
		t.Fatalf("got %v, want [10]", buf)
	}
}

func TestPickleCrossCoreSharing(t *testing.T) {
	p := NewPickle()
	// Core 0 trains the page's delta pattern...
	for off := mem.BlockAddr(0); off <= 6; off += 2 {
		p.OnAccess(mem.AccessInfo{Blk: off, Core: 0}, nil)
	}
	// ...and a first-touch miss from core 1 on the same page prefetches.
	buf := p.OnAccess(mem.AccessInfo{Blk: 10, Core: 1}, nil)
	if len(buf) != 1 || buf[0] != 12 {
		t.Fatalf("core 1 got %v, want [12] from core 0's training", buf)
	}
}

func TestPickleStopsAtPageBoundary(t *testing.T) {
	p := NewPickle()
	var buf []mem.BlockAddr
	for off := mem.BlockAddr(blocksPerPage - 10); off < mem.BlockAddr(blocksPerPage); off += 2 {
		buf = p.OnAccess(at(off), buf[:0])
	}
	// The last access sits at the final block: offset+2 leaves the page.
	if len(buf) != 0 {
		t.Fatalf("issued %v across a page boundary", buf)
	}
}

func TestPickleRandomStreamIsQuiet(t *testing.T) {
	p := NewPickle()
	// A pseudo-random miss stream over many pages never confirms a delta
	// three times, so Pickle stays silent ("precise" prefetching).
	x := uint64(0x243F6A8885A308D3)
	var buf []mem.BlockAddr
	for i := 0; i < 4096; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		buf = p.OnAccess(at(mem.BlockAddr(x%(1<<24))), buf)
	}
	if float64(len(buf)) > 40 {
		t.Fatalf("random stream issued %d candidates", len(buf))
	}
}
