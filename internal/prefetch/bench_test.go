package prefetch

import (
	"testing"

	"graphmem/internal/mem"
)

// benchStream synthesizes a deterministic access stream mixing strided
// walks over a few pages with pseudo-random gathers — roughly the shape
// of a graph kernel's L2 miss stream — so the prefetcher benchmarks
// exercise both the learn and the issue paths.
func benchStream(n int) []mem.AccessInfo {
	ais := make([]mem.AccessInfo, n)
	x := uint64(0x9E3779B97F4A7C15)
	for i := range ais {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		var blk mem.BlockAddr
		if i%4 != 3 {
			// Strided walk: a few interleaved streams.
			blk = mem.BlockAddr(uint64(i%4)<<20 + uint64(i/4)*2)
		} else {
			blk = mem.BlockAddr(x % (1 << 24))
		}
		ais[i] = mem.AccessInfo{
			PC:   0x400000 + uint64(i%8)*8,
			Addr: blk.Addr(),
			Blk:  blk,
		}
	}
	return ais
}

// benchIMPStream synthesizes alternating index-load/gather pairs (the
// value-annotated records cc/pr emit), hitting both learn and issue.
func benchIMPStream(n int) []mem.AccessInfo {
	ais := make([]mem.AccessInfo, n)
	const base = 1 << 30
	x := uint64(0x243F6A8885A308D3)
	for i := 0; i < n-1; i += 2 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		v := x % (1 << 20)
		idxAddr := mem.Addr(1<<28 + uint64(i)*4)
		ais[i] = mem.AccessInfo{
			PC: 0x400010, Addr: idxAddr, Blk: idxAddr.Block(),
			ValueHint: mem.ValueHint{Value: v, HasValue: true},
		}
		gAddr := mem.Addr(base + v*8)
		ais[i+1] = mem.AccessInfo{
			PC: 0x400020, Addr: gAddr, Blk: gAddr.Block(),
			ValueHint: mem.ValueHint{DepPC: 0x400010, DepValue: v, DepHasValue: true},
		}
	}
	return ais
}

// benchOnAccess replays a stream through p with the caller-owned
// candidate buffer the hierarchy uses, pinning the zero-alloc contract.
func benchOnAccess(b *testing.B, p Prefetcher, ais []mem.AccessInfo) {
	b.Helper()
	buf := make([]mem.BlockAddr, 0, 64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = p.OnAccess(ais[i%len(ais)], buf[:0])
	}
	_ = buf
}

func BenchmarkSPPOnAccess(b *testing.B) {
	benchOnAccess(b, NewSPP(), benchStream(1<<14))
}

func BenchmarkStrideOnAccess(b *testing.B) {
	benchOnAccess(b, NewStride(), benchStream(1<<14))
}

func BenchmarkIMPOnAccess(b *testing.B) {
	benchOnAccess(b, NewIMP(), benchIMPStream(1<<14))
}

func BenchmarkPickleOnAccess(b *testing.B) {
	benchOnAccess(b, NewPickle(), benchStream(1<<14))
}

func BenchmarkNextLineOnAccess(b *testing.B) {
	benchOnAccess(b, NextLine{}, benchStream(1<<14))
}

// TestOnAccessZeroAllocs pins every prefetcher's hot path at zero
// allocations per access with a reused candidate buffer.
func TestOnAccessZeroAllocs(t *testing.T) {
	stream := benchStream(1 << 12)
	impStream := benchIMPStream(1 << 12)
	cases := []struct {
		name string
		p    Prefetcher
		ais  []mem.AccessInfo
	}{
		{"spp", NewSPP(), stream},
		{"stride", NewStride(), stream},
		{"imp", NewIMP(), impStream},
		{"pickle", NewPickle(), stream},
		{"nextline", NextLine{}, stream},
	}
	for _, tc := range cases {
		buf := make([]mem.BlockAddr, 0, 64)
		i := 0
		avg := testing.AllocsPerRun(len(tc.ais), func() {
			buf = tc.p.OnAccess(tc.ais[i%len(tc.ais)], buf[:0])
			i++
		})
		if avg != 0 {
			t.Errorf("%s: %.2f allocs per OnAccess, want 0", tc.name, avg)
		}
	}
}
