package prefetch

import (
	"encoding/binary"
	"testing"

	"graphmem/internal/mem"
)

// refIMP is the naive reference model of IMP's contract: a 16-entry
// direct-mapped association table, a linear gatherAddr = base +
// (value << shift) mapping solved from consecutive observations, and
// issue at confidence 2. It is written for clarity, not speed; any
// divergence from the table implementation is a bug in one of them.
type refIMP struct {
	ent [impEntries]struct {
		gatherPC, indexPC uint64
		lastAddr, lastVal uint64
		base              uint64
		shift             uint8
		conf              int
		hasPattern, inUse bool
	}
}

func (r *refIMP) onAccess(ai mem.AccessInfo) []mem.BlockAddr {
	if ai.DepHasValue {
		e := &r.ent[(ai.PC>>3)%impEntries]
		if !e.inUse || e.gatherPC != ai.PC {
			*e = struct {
				gatherPC, indexPC uint64
				lastAddr, lastVal uint64
				base              uint64
				shift             uint8
				conf              int
				hasPattern, inUse bool
			}{gatherPC: ai.PC, indexPC: ai.DepPC, lastAddr: uint64(ai.Addr), lastVal: ai.DepValue, inUse: true}
		} else {
			e.indexPC = ai.DepPC
			da := int64(uint64(ai.Addr)) - int64(e.lastAddr)
			dv := int64(ai.DepValue) - int64(e.lastVal)
			if dv != 0 && da%dv == 0 {
				var shift uint8
				found := true
				switch da / dv {
				case 1:
					shift = 0
				case 2:
					shift = 1
				case 4:
					shift = 2
				case 8:
					shift = 3
				default:
					found = false
				}
				if found {
					base := uint64(ai.Addr) - ai.DepValue<<shift
					if e.hasPattern && e.base == base && e.shift == shift {
						if e.conf < impConfMax {
							e.conf++
						}
					} else {
						e.base, e.shift, e.hasPattern, e.conf = base, shift, true, 1
					}
				}
			}
			e.lastAddr, e.lastVal = uint64(ai.Addr), ai.DepValue
		}
	}
	var out []mem.BlockAddr
	if ai.HasValue {
		for i := range r.ent {
			e := &r.ent[i]
			if e.inUse && e.hasPattern && e.conf >= impIssueConf && e.indexPC == ai.PC {
				out = append(out, mem.Addr(e.base+ai.Value<<e.shift).Block())
			}
		}
	}
	return out
}

// FuzzIMP drives IMP with an arbitrary interleaving of value-annotated
// gather observations and index loads over a handful of aliasing sites,
// against the reference model. The candidate list must match exactly at
// every step.
func FuzzIMP(f *testing.F) {
	// A clean 4-byte gather pattern followed by an index load.
	f.Add([]byte{
		0x02, 1, 2, 0x00, 0x00, 0x04, 0x00, 5, 0, 0, 0,
		0x02, 1, 2, 0x10, 0x00, 0x04, 0x00, 9, 0, 0, 0,
		0x02, 1, 2, 0x20, 0x00, 0x04, 0x00, 13, 0, 0, 0,
		0x01, 2, 1, 0x00, 0x90, 0x00, 0x00, 100, 0, 0, 0,
	})
	// Aliasing sites and a non-linear stream.
	f.Add([]byte{
		0x02, 7, 7, 0x34, 0x12, 0x00, 0x00, 3, 0, 0, 0,
		0x03, 23, 7, 0x01, 0x53, 0x00, 0x00, 9, 0, 0, 0,
		0x02, 7, 23, 0x99, 0x21, 0x00, 0x00, 4, 0, 0, 0,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		imp := NewIMP()
		ref := &refIMP{}
		for i := 0; i+11 <= len(data); i += 11 {
			ev := data[i : i+11]
			ai := mem.AccessInfo{
				PC:   0x1000 + uint64(ev[1])*8,
				Addr: mem.Addr(binary.LittleEndian.Uint32(ev[3:7])),
			}
			ai.Blk = ai.Addr.Block()
			val := uint64(binary.LittleEndian.Uint32(ev[7:11]))
			if ev[0]&1 != 0 {
				ai.Value, ai.HasValue = val, true
			}
			if ev[0]&2 != 0 {
				ai.DepPC = 0x1000 + uint64(ev[2])*8
				ai.DepValue, ai.DepHasValue = val^0x55AA, true
			}
			got := imp.OnAccess(ai, nil)
			want := ref.onAccess(ai)
			if len(got) != len(want) {
				t.Fatalf("event %d (%+v): got %v, reference says %v", i/11, ai, got, want)
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("event %d (%+v): got %v, reference says %v", i/11, ai, got, want)
				}
			}
		}
	})
}

// refPickle is the naive reference model of Pickle's contract: a
// 256-slot direct-mapped page table of 4 delta ways, confidence-3
// issue, degree 2, page-bounded.
type refPickle struct {
	slot [pickleEntries]struct {
		page    mem.PageAddr
		lastOff int
		inUse   bool
		deltas  [pickleWays]struct {
			delta int
			conf  int
		}
	}
}

func (r *refPickle) onAccess(blk mem.BlockAddr) []mem.BlockAddr {
	page := blk.Page()
	off := int(uint64(blk) % blocksPerPage)
	e := &r.slot[uint64(page)%pickleEntries]
	if !e.inUse || e.page != page {
		e.page, e.lastOff, e.inUse = page, off, true
		e.deltas = [pickleWays]struct {
			delta int
			conf  int
		}{}
		return nil
	}
	delta := off - e.lastOff
	if delta == 0 {
		return nil
	}
	// Learn: bump a matching way, else replace the first weakest way.
	learned := false
	for i := range e.deltas {
		if e.deltas[i].conf > 0 && e.deltas[i].delta == delta {
			if e.deltas[i].conf < pickleConfMax {
				e.deltas[i].conf++
			}
			learned = true
			break
		}
	}
	if !learned {
		weakest := 0
		for i := 1; i < pickleWays; i++ {
			if e.deltas[i].conf < e.deltas[weakest].conf {
				weakest = i
			}
		}
		e.deltas[weakest].delta, e.deltas[weakest].conf = delta, 1
	}
	e.lastOff = off
	var out []mem.BlockAddr
	for i := range e.deltas {
		if len(out) >= pickleDegree {
			break
		}
		if e.deltas[i].conf < pickleIssueConf {
			continue
		}
		next := off + e.deltas[i].delta
		if next < 0 || next >= int(blocksPerPage) {
			continue
		}
		out = append(out, mem.BlockAddr(uint64(page)*blocksPerPage+uint64(next)))
	}
	return out
}

// FuzzPickle drives Pickle with an arbitrary cross-core LLC miss stream
// against the reference model; the candidate list must match exactly at
// every step (Pickle deliberately ignores the core — the shared table
// is the design — so the reference takes only the block).
func FuzzPickle(f *testing.F) {
	// A steady delta-2 walk that crosses the issue threshold.
	f.Add([]byte{
		0, 0, 0, 0, 0,
		2, 0, 0, 0, 1,
		4, 0, 0, 0, 0,
		6, 0, 0, 0, 2,
		8, 0, 0, 0, 3,
	})
	// Page-aliasing stream (slots collide at page%256).
	f.Add([]byte{
		0x10, 0, 0, 0, 0,
		0x10, 0, 1, 0, 1,
		0x12, 0, 0, 0, 0,
		0x12, 0, 1, 0, 1,
	})
	f.Fuzz(func(t *testing.T, data []byte) {
		pk := NewPickle()
		ref := &refPickle{}
		for i := 0; i+5 <= len(data); i += 5 {
			ev := data[i : i+5]
			blk := mem.BlockAddr(binary.LittleEndian.Uint32(ev[0:4]) % (1 << 20))
			ai := mem.AccessInfo{Blk: blk, Addr: blk.Addr(), Core: int(ev[4] % 4)}
			got := pk.OnAccess(ai, nil)
			want := ref.onAccess(blk)
			if len(got) != len(want) {
				t.Fatalf("event %d (blk %d): got %v, reference says %v", i/5, blk, got, want)
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("event %d (blk %d): got %v, reference says %v", i/5, blk, got, want)
				}
			}
		}
	})
}
