package prefetch

import (
	"graphmem/internal/mem"
)

// IMP parameters: a small association table (indirect patterns per
// kernel number a handful of static pairs), two confirmations of a
// learned base+shift before issuing.
const (
	impEntries   = 16
	impIssueConf = 2
	impConfMax   = 15
)

type impEntry struct {
	// The gather site being learned and the index-load site feeding it.
	gatherPC uint64
	indexPC  uint64
	// Last observed (index value, gather address) pair, for solving the
	// linear mapping from consecutive observations.
	lastAddr  mem.Addr
	lastValue uint64
	// Learned mapping gatherAddr = base + (value << shift).
	base   uint64
	shift  uint8
	conf   uint8
	hasPat bool
	valid  bool
}

// IMP is an IMP/DROPLET-style indirect-memory prefetcher for the
// `prop[col[i]]` idiom of graph kernels. It learns from two streams the
// trace layer exposes: gather accesses carrying their producer's
// (PC, value) pair — consecutive observations solve the element shift
// from the address/value deltas and pin the base — and index loads
// carrying their own loaded value, at which point the learned mapping
// turns the just-loaded index into the gather's future address.
//
// Modeling note: real IMP runs ahead of the index stream by snooping
// index blocks; here the gather prefetch fires at the index load's
// *issue* point instead, which hides the dependent-load serialization
// (the quantity IMP targets) without modeling a separate run-ahead
// stream. See DESIGN.md.
type IMP struct {
	entries [impEntries]impEntry
	// Issued counts candidates generated (for stats/tests).
	Issued int64
}

// NewIMP returns an empty prefetcher.
func NewIMP() *IMP { return &IMP{} }

// Name implements Prefetcher.
func (p *IMP) Name() string { return "imp" }

// OnAccess implements Prefetcher. It observes every demand load; only
// value-annotated records (and their dependents) do any work.
func (p *IMP) OnAccess(ai mem.AccessInfo, buf []mem.BlockAddr) []mem.BlockAddr {
	if ai.DepHasValue {
		p.learn(ai)
	}
	if ai.HasValue {
		buf = p.issue(ai, buf)
	}
	return buf
}

// learn observes a gather access whose address came from a
// value-annotated producer and updates the linear mapping for its site.
func (p *IMP) learn(ai mem.AccessInfo) {
	e := &p.entries[(ai.PC>>3)%impEntries]
	if !e.valid || e.gatherPC != ai.PC {
		*e = impEntry{gatherPC: ai.PC, indexPC: ai.DepPC, lastAddr: ai.Addr, lastValue: ai.DepValue, valid: true}
		return
	}
	e.indexPC = ai.DepPC
	da := int64(ai.Addr) - int64(e.lastAddr)
	dv := int64(ai.DepValue) - int64(e.lastValue)
	if dv != 0 && da%dv == 0 {
		var shift uint8
		ok := true
		switch da / dv {
		case 1:
			shift = 0
		case 2:
			shift = 1
		case 4:
			shift = 2
		case 8:
			shift = 3
		default:
			ok = false // not an element-size scaling
		}
		if ok {
			base := uint64(ai.Addr) - ai.DepValue<<shift
			if e.hasPat && e.base == base && e.shift == shift {
				if e.conf < impConfMax {
					e.conf++
				}
			} else {
				e.base, e.shift, e.hasPat, e.conf = base, shift, true, 1
			}
		}
	}
	e.lastAddr = ai.Addr
	e.lastValue = ai.DepValue
}

// issue fires on an index load: every confident mapping fed by this
// site yields the gather block for the just-loaded value.
func (p *IMP) issue(ai mem.AccessInfo, buf []mem.BlockAddr) []mem.BlockAddr {
	for i := range p.entries {
		e := &p.entries[i]
		if e.valid && e.hasPat && e.conf >= impIssueConf && e.indexPC == ai.PC {
			buf = append(buf, mem.Addr(e.base+ai.Value<<e.shift).Block())
			p.Issued++
		}
	}
	return buf
}
