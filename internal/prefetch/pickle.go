package prefetch

import (
	"graphmem/internal/mem"
)

// Pickle parameters: one shared page-keyed table for all cores, a few
// delta ways per page, and a confidence threshold high enough that only
// repeatedly-seen deltas are fetched into the shared LLC ("precise"
// prefetching — the LLC is contended, so speculative fills are kept
// rare).
const (
	pickleEntries   = 256
	pickleWays      = 4
	pickleConfMax   = 15
	pickleIssueConf = 3
	pickleDegree    = 2
)

type pickleDelta struct {
	delta int16
	conf  uint8
}

type pickleEntry struct {
	page    mem.PageAddr
	lastBlk int16 // block offset within page
	valid   bool
	deltas  [pickleWays]pickleDelta
}

// Pickle is a Pickle-style cross-core LLC prefetcher: it sits at the
// shared LLC and observes demand misses from every core, correlating
// block deltas per page (the miss stream at the LLC has no useful PC —
// it is filtered by two private levels — so pages are the locality
// unit). Deltas confirmed pickleIssueConf times issue up to
// pickleDegree precise prefetches into the shared level, tagged with
// the requesting core by the caller. All cores share the table, which
// is the point: a page's miss pattern learned from one core prefetches
// for the others.
type Pickle struct {
	entries [pickleEntries]pickleEntry
	// Issued counts candidates generated (for stats/tests).
	Issued int64
}

// NewPickle returns an empty prefetcher.
func NewPickle() *Pickle { return &Pickle{} }

// Name implements Prefetcher.
func (p *Pickle) Name() string { return "pickle" }

// OnAccess implements Prefetcher; the caller feeds it LLC demand
// misses from all cores.
func (p *Pickle) OnAccess(ai mem.AccessInfo, buf []mem.BlockAddr) []mem.BlockAddr {
	blk := ai.Blk
	page := blk.Page()
	off := int16(uint64(blk) % blocksPerPage)
	e := &p.entries[uint64(page)%pickleEntries]
	if !e.valid || e.page != page {
		*e = pickleEntry{page: page, lastBlk: off, valid: true}
		return buf
	}
	delta := off - e.lastBlk
	if delta == 0 {
		return buf
	}
	p.learn(e, delta)
	e.lastBlk = off

	// Issue the confident deltas from the current position, page-bounded.
	issued := 0
	for i := range e.deltas {
		d := &e.deltas[i]
		if d.conf < pickleIssueConf {
			continue
		}
		next := off + d.delta
		if next < 0 || next >= int16(blocksPerPage) {
			continue // do not cross pages
		}
		buf = append(buf, mem.BlockAddr(uint64(page)*blocksPerPage+uint64(next)))
		p.Issued++
		if issued++; issued >= pickleDegree {
			break
		}
	}
	return buf
}

// learn bumps the confidence of delta in e, replacing the weakest way
// when it is new.
func (p *Pickle) learn(e *pickleEntry, delta int16) {
	for i := range e.deltas {
		if e.deltas[i].conf > 0 && e.deltas[i].delta == delta {
			if e.deltas[i].conf < pickleConfMax {
				e.deltas[i].conf++
			}
			return
		}
	}
	weakest := 0
	for i := 1; i < pickleWays; i++ {
		if e.deltas[i].conf < e.deltas[weakest].conf {
			weakest = i
		}
	}
	e.deltas[weakest] = pickleDelta{delta: delta, conf: 1}
}
