// Package prefetch implements the hardware prefetchers of Table I: the
// next-line prefetcher attached to the L1D and the SDC, and a
// signature-path prefetcher (SPP, Kim et al., MICRO 2016) attached to
// the L2. Prefetchers are pure candidate generators; the hierarchy
// decides whether a candidate is already resident and performs the
// fill.
package prefetch

import (
	"graphmem/internal/mem"
)

// Prefetcher generates prefetch candidates in response to demand
// accesses. Candidates are appended to buf (reused by the caller to
// avoid allocation in the hot path).
type Prefetcher interface {
	// Name identifies the prefetcher in stats output.
	Name() string
	// OnAccess observes a demand access (ai carries the block plus
	// whatever context the call site has: PC, hit/miss at the attached
	// level, requesting core, value peek) and appends prefetch
	// candidates to buf.
	OnAccess(ai mem.AccessInfo, buf []mem.BlockAddr) []mem.BlockAddr
}

// None is the absent prefetcher.
type None struct{}

// Name implements Prefetcher.
func (None) Name() string { return "none" }

// OnAccess implements Prefetcher.
func (None) OnAccess(_ mem.AccessInfo, buf []mem.BlockAddr) []mem.BlockAddr { return buf }

// NextLine prefetches block N+1 on every demand access to block N, the
// classic L1 next-line prefetcher of Table I.
type NextLine struct{}

// Name implements Prefetcher.
func (NextLine) Name() string { return "next-line" }

// OnAccess implements Prefetcher.
func (NextLine) OnAccess(ai mem.AccessInfo, buf []mem.BlockAddr) []mem.BlockAddr {
	return append(buf, ai.Blk+1)
}

// SPP parameters (compile-time constants matching the MICRO'16 design
// scaled to a small budget).
const (
	sppSigBits    = 12
	sppSigMask    = (1 << sppSigBits) - 1
	sppSigShift   = 3
	sppSTEntries  = 256 // signature table: tracks pages
	sppPTEntries  = 512 // pattern table: signature -> deltas
	sppPTWays     = 4   // deltas tracked per signature
	sppCounterMax = 15  // 4-bit confidence counters
	sppFillConf   = 25  // percent confidence needed to issue
	sppMaxDepth   = 8   // lookahead depth bound
	blocksPerPage = mem.PageSize / mem.BlockSize
)

type sppSTEntry struct {
	page      mem.PageAddr
	lastBlock int16 // block offset within page
	signature uint16
	valid     bool
}

type sppPTDelta struct {
	delta int16
	conf  uint8
}

type sppPTEntry struct {
	total  uint8
	deltas [sppPTWays]sppPTDelta
}

// SPP is a lookahead signature-path prefetcher: per-page delta history
// is compressed into a signature; a pattern table maps signatures to
// likely next deltas with confidence counters; on each access the
// predictor walks the signature path, issuing prefetches while the
// compound confidence stays above a threshold, stopping at page
// boundaries.
type SPP struct {
	st [sppSTEntries]sppSTEntry
	pt [sppPTEntries]sppPTEntry
	// Issued counts candidates generated (for stats/tests).
	Issued int64
}

// NewSPP returns an empty predictor.
func NewSPP() *SPP { return &SPP{} }

// Name implements Prefetcher.
func (s *SPP) Name() string { return "spp" }

func sppUpdateSig(sig uint16, delta int16) uint16 {
	return ((sig << sppSigShift) ^ uint16(delta)&0x3f) & sppSigMask
}

func (s *SPP) ptEntry(sig uint16) *sppPTEntry {
	return &s.pt[sig%sppPTEntries]
}

// learn records that signature sig was followed by delta.
func (s *SPP) learn(sig uint16, delta int16) {
	e := s.ptEntry(sig)
	if e.total >= sppCounterMax {
		// Periodic aging keeps confidences adaptive.
		e.total >>= 1
		for i := range e.deltas {
			e.deltas[i].conf >>= 1
		}
	}
	e.total++
	// Existing delta?
	for i := range e.deltas {
		if e.deltas[i].conf > 0 && e.deltas[i].delta == delta {
			e.deltas[i].conf++
			return
		}
	}
	// Replace the weakest way.
	weakest := 0
	for i := 1; i < sppPTWays; i++ {
		if e.deltas[i].conf < e.deltas[weakest].conf {
			weakest = i
		}
	}
	e.deltas[weakest] = sppPTDelta{delta: delta, conf: 1}
}

// best returns the most confident delta for sig and its confidence in
// percent.
func (s *SPP) best(sig uint16) (delta int16, confPct int, ok bool) {
	e := s.ptEntry(sig)
	if e.total == 0 {
		return 0, 0, false
	}
	bi := -1
	for i := range e.deltas {
		if e.deltas[i].conf > 0 && (bi < 0 || e.deltas[i].conf > e.deltas[bi].conf) {
			bi = i
		}
	}
	if bi < 0 {
		return 0, 0, false
	}
	return e.deltas[bi].delta, int(e.deltas[bi].conf) * 100 / int(e.total), true
}

// OnAccess implements Prefetcher.
func (s *SPP) OnAccess(ai mem.AccessInfo, buf []mem.BlockAddr) []mem.BlockAddr {
	blk := ai.Blk
	page := blk.Page()
	offset := int16(uint64(blk) % blocksPerPage)
	st := &s.st[uint64(page)%sppSTEntries]

	var sig uint16
	if st.valid && st.page == page {
		delta := offset - st.lastBlock
		if delta != 0 {
			s.learn(st.signature, delta)
			sig = sppUpdateSig(st.signature, delta)
		} else {
			sig = st.signature
		}
	} else {
		// New page: start a fresh signature.
		sig = sppUpdateSig(0, offset+1)
	}
	st.valid = true
	st.page = page
	st.lastBlock = offset
	st.signature = sig

	// Lookahead walk.
	conf := 100
	cur := offset
	curSig := sig
	for depth := 0; depth < sppMaxDepth; depth++ {
		delta, c, ok := s.best(curSig)
		if !ok || delta == 0 {
			break
		}
		conf = conf * c / 100
		if conf < sppFillConf {
			break
		}
		next := cur + delta
		if next < 0 || next >= blocksPerPage {
			break // do not cross pages
		}
		cand := mem.BlockAddr(uint64(page)*blocksPerPage + uint64(next))
		buf = append(buf, cand)
		s.Issued++
		cur = next
		curSig = sppUpdateSig(curSig, delta)
	}
	return buf
}
