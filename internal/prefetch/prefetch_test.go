package prefetch

import (
	"math/rand/v2"
	"testing"

	"graphmem/internal/mem"
)

// at builds the minimal AccessInfo most tests need: a bare block access.
func at(blk mem.BlockAddr) mem.AccessInfo { return mem.AccessInfo{Blk: blk} }

func TestNoneGeneratesNothing(t *testing.T) {
	var p None
	if got := p.OnAccess(at(123), nil); len(got) != 0 {
		t.Errorf("None generated %v", got)
	}
	if p.Name() != "none" {
		t.Error("bad name")
	}
}

func TestNextLine(t *testing.T) {
	var p NextLine
	got := p.OnAccess(at(100), nil)
	if len(got) != 1 || got[0] != 101 {
		t.Errorf("NextLine = %v, want [101]", got)
	}
	// Buffer reuse appends.
	buf := make([]mem.BlockAddr, 0, 4)
	buf = p.OnAccess(at(5), buf)
	buf = p.OnAccess(at(9), buf)
	if len(buf) != 2 || buf[0] != 6 || buf[1] != 10 {
		t.Errorf("buf = %v", buf)
	}
}

func TestSPPLearnsUnitStride(t *testing.T) {
	s := NewSPP()
	var buf []mem.BlockAddr
	base := mem.BlockAddr(1 << 20)
	issued := 0
	for i := 0; i < 60; i++ {
		buf = s.OnAccess(at(base+mem.BlockAddr(i)), buf[:0])
		issued += len(buf)
	}
	if issued == 0 {
		t.Fatal("SPP never issued on a unit-stride stream")
	}
	// Continuing the stride, the predictor must predict blk+1 first.
	buf = s.OnAccess(at(base+60), buf[:0])
	if len(buf) == 0 || buf[0] != base+61 {
		t.Errorf("warmed SPP on unit stride gave %v, want first candidate %d", buf, base+61)
	}
}

func TestSPPLearnsStrideOfTwo(t *testing.T) {
	s := NewSPP()
	var buf []mem.BlockAddr
	base := mem.BlockAddr(1 << 21)
	for i := 0; i < 30; i++ {
		buf = s.OnAccess(at(base+mem.BlockAddr(2*i)), buf[:0])
	}
	buf = s.OnAccess(at(base+60), buf[:0])
	if len(buf) == 0 || buf[0] != base+62 {
		t.Errorf("stride-2 prediction = %v, want first %d", buf, base+62)
	}
}

func TestSPPLookaheadDepth(t *testing.T) {
	s := NewSPP()
	var buf []mem.BlockAddr
	base := mem.BlockAddr(1 << 22)
	// Long training on a perfect stream raises confidence, enabling
	// multi-step lookahead.
	for rep := 0; rep < 8; rep++ {
		for i := 0; i < 60; i++ {
			buf = s.OnAccess(at(base+mem.BlockAddr(i)), buf[:0])
		}
	}
	buf = s.OnAccess(at(base+60), buf[:0])
	if len(buf) < 2 {
		t.Errorf("lookahead depth %d, want >= 2 after heavy training", len(buf))
	}
	for i, c := range buf {
		want := base + 61 + mem.BlockAddr(i)
		if c != want {
			t.Errorf("candidate %d = %d, want %d", i, c, want)
		}
	}
}

func TestSPPStopsAtPageBoundary(t *testing.T) {
	s := NewSPP()
	var buf []mem.BlockAddr
	base := mem.BlockAddr(1 << 22)
	for rep := 0; rep < 8; rep++ {
		for i := 0; i < 64; i++ {
			buf = s.OnAccess(at(base+mem.BlockAddr(i)), buf[:0])
		}
	}
	// Access the last block of the page: no candidate may cross.
	last := base + 63
	buf = s.OnAccess(at(last), buf[:0])
	for _, c := range buf {
		if c.Page() != last.Page() {
			t.Errorf("candidate %d crosses page boundary", c)
		}
	}
}

func TestSPPRandomStreamIsQuiet(t *testing.T) {
	s := NewSPP()
	r := rand.New(rand.NewPCG(7, 8))
	var buf []mem.BlockAddr
	issued := 0
	n := 2000
	for i := 0; i < n; i++ {
		blk := mem.BlockAddr(r.Uint64() % (1 << 30))
		buf = s.OnAccess(at(blk), buf[:0])
		issued += len(buf)
	}
	// A random stream must generate far fewer candidates than a
	// sequential one (which generates ~1+ per access).
	if issued > n/2 {
		t.Errorf("SPP issued %d candidates on %d random accesses", issued, n)
	}
}

func TestSPPSeparatePagesSeparateHistory(t *testing.T) {
	s := NewSPP()
	var buf []mem.BlockAddr
	// Distinct pages that do not alias in the 256-entry signature table
	// (pages 1024 and 1025 map to ST indices 0 and 1).
	a := mem.BlockAddr(1024 * 64)
	b := mem.BlockAddr(1025 * 64)
	// Interleave two unit-stride streams on different pages; both must
	// still train (the ST tracks pages independently).
	for i := 0; i < 50; i++ {
		s.OnAccess(at(a+mem.BlockAddr(i)), buf[:0])
		s.OnAccess(at(b+mem.BlockAddr(i)), buf[:0])
	}
	got := s.OnAccess(at(a+50), buf[:0])
	if len(got) == 0 || got[0] != a+51 {
		t.Errorf("interleaved stream A prediction = %v", got)
	}
}
