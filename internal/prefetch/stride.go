package prefetch

import (
	"graphmem/internal/mem"
)

// Stride parameters: a small PC-keyed table, two confirmations before
// issuing, and a modest degree so the strawman is competitive on the
// regular streams without flooding the L2.
const (
	strideEntries   = 64
	strideIssueConf = 2
	strideDegree    = 4
	strideConfMax   = 255
)

type strideEntry struct {
	pc      uint64
	lastBlk mem.BlockAddr
	stride  int64 // in blocks
	conf    uint8
	valid   bool
}

// Stride is the conventional strawman: a PC-keyed stride detector at
// the L2. Each load site gets a table entry tracking its last block and
// block-stride; after strideIssueConf consecutive confirmations the
// next strideDegree blocks along the stride are issued, stopping at the
// page boundary (a physical prefetcher cannot cross pages).
type Stride struct {
	entries [strideEntries]strideEntry
	// Issued counts candidates generated (for stats/tests).
	Issued int64
}

// NewStride returns an empty detector.
func NewStride() *Stride { return &Stride{} }

// Name implements Prefetcher.
func (s *Stride) Name() string { return "stride" }

// OnAccess implements Prefetcher.
func (s *Stride) OnAccess(ai mem.AccessInfo, buf []mem.BlockAddr) []mem.BlockAddr {
	if ai.PC == 0 {
		// No PC to key on (functional warming): nothing to learn.
		return buf
	}
	e := &s.entries[(ai.PC>>3)%strideEntries]
	if !e.valid || e.pc != ai.PC {
		*e = strideEntry{pc: ai.PC, lastBlk: ai.Blk, valid: true}
		return buf
	}
	d := int64(ai.Blk) - int64(e.lastBlk)
	if d == 0 {
		return buf // same block: no new information
	}
	if d == e.stride {
		if e.conf < strideConfMax {
			e.conf++
		}
	} else {
		e.stride = d
		e.conf = 1
	}
	e.lastBlk = ai.Blk
	if e.conf < strideIssueConf {
		return buf
	}
	page := ai.Blk.Page()
	for k := int64(1); k <= strideDegree; k++ {
		cand := mem.BlockAddr(int64(ai.Blk) + k*d)
		if cand.Page() != page {
			break // do not cross pages
		}
		buf = append(buf, cand)
		s.Issued++
	}
	return buf
}
