// Package sample implements the statistical sampling engine of ROADMAP
// item 2: SMARTS-style interleaving of short detailed-simulation
// samples with fast functional warming, plus serializable µarch-state
// checkpoints so a sweep of configs sharing a workload replays one
// warm-up instead of N.
//
// The package is deliberately substrate-free: it knows about schedules
// (Plan), per-sample statistics (Estimate), and checkpoint files
// (Store) — never about caches or cores. internal/sim owns the warm
// fast paths and the state encode/decode of each component; this
// package supplies the arithmetic and the disk format around them.
package sample

import (
	"fmt"
	"strconv"
	"strings"

	"graphmem/internal/stats"
)

// Plan is the deterministic sample schedule inside one measurement
// window: starting Offset instructions after the window opens, every
// Period instructions the simulator switches to detailed mode for
// DetailWarm + SampleLen instructions — the DetailWarm prefix re-warms
// the structures functional warming cannot reproduce (MSHRs,
// prefetchers, pipeline overlap) and its counters are discarded; only
// the trailing SampleLen instructions are measured. The rest of the
// window is functionally warmed. All values are in retired
// instructions. The offset is seedless — a fixed, reproducible phase
// shift rather than a random one — so sampled runs are
// byte-deterministic like everything else in the repository.
type Plan struct {
	Period     int64 `json:"period"`
	SampleLen  int64 `json:"sample_len"`
	Offset     int64 `json:"offset"`
	DetailWarm int64 `json:"detail_warm"`
}

// Enabled reports whether the plan describes an active sampler.
func (p Plan) Enabled() bool { return p.Period > 0 }

// Valid reports whether the plan is self-consistent: a positive period,
// a detailed interval no longer than the period, and an offset inside
// the period.
func (p Plan) Valid() bool {
	return p.Period > 0 && p.SampleLen > 0 && p.DetailWarm >= 0 &&
		p.DetailWarm+p.SampleLen <= p.Period &&
		p.Offset >= 0 && p.Offset < p.Period
}

// NextStart returns the instruction count (relative to the window base)
// at which sample k's detailed interval begins.
func (p Plan) NextStart(k int) int64 {
	return p.Offset + int64(k)*p.Period
}

// DetailFraction returns the fraction of the window simulated in
// detail (including the discarded warm prefixes) — the first-order
// cost model of a sampled run.
func (p Plan) DetailFraction() float64 {
	if !p.Enabled() {
		return 1
	}
	return float64(p.DetailWarm+p.SampleLen) / float64(p.Period)
}

// ParsePlan parses a -sample flag value "period,len,offset[,warm]"
// (e.g. "65000,5000,13000" or "50000,5000,10000,5000"). The warm
// component defaults to len — the validated default of the CI gate's
// plans. An empty string parses to the zero (disabled) plan.
func ParsePlan(s string) (Plan, error) {
	if s == "" {
		return Plan{}, nil
	}
	parts := strings.Split(s, ",")
	if len(parts) < 3 || len(parts) > 4 {
		return Plan{}, fmt.Errorf("sample: -sample wants \"period,len,offset[,warm]\", got %q", s)
	}
	vals := make([]int64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return Plan{}, fmt.Errorf("sample: bad -sample component %q: %v", p, err)
		}
		vals[i] = v
	}
	p := Plan{Period: vals[0], SampleLen: vals[1], Offset: vals[2], DetailWarm: vals[1]}
	if len(vals) == 4 {
		p.DetailWarm = vals[3]
	}
	if !p.Valid() {
		return Plan{}, fmt.Errorf("sample: inconsistent plan %+v (need period > 0, warm+len <= period, 0 <= offset < period)", p)
	}
	return p, nil
}

// Estimate is the sampled run's statistical result: per-metric point
// estimates with CLT confidence intervals over the per-sample values,
// plus enough bookkeeping to audit the run (sample count, detailed
// instruction total, checkpoint outcome).
type Estimate struct {
	// Samples is the number of detailed samples the estimate covers
	// (complete samples plus a possible short trailing one).
	Samples int `json:"samples"`
	// DetailedInstructions is the total instruction count simulated in
	// detail inside the measurement window.
	DetailedInstructions int64 `json:"detailed_instructions"`
	// CheckpointHit marks a run that restored its warm-up state from
	// the checkpoint store instead of re-warming.
	CheckpointHit bool `json:"checkpoint_hit,omitempty"`

	IPC          stats.Interval `json:"ipc"`
	L1DemandMPKI stats.Interval `json:"l1_demand_mpki"`
	L2MPKI       stats.Interval `json:"l2_mpki"`
	LLCMPKI      stats.Interval `json:"llc_mpki"`
}

// NewEstimate computes the per-metric intervals over per-sample counter
// deltas. Each delta is one detailed sample's measurement-window slice.
// Every metric is a ratio (IPC = instructions/cycles, MPKI =
// misses/kilo-instruction), so the point estimates are ratio estimators
// over the pooled samples — the plain mean of per-sample ratios would
// be Jensen-biased for phased workloads like BFS, whose per-sample IPC
// swings by an order of magnitude — with delta-method confidence
// intervals (stats.NewRatioInterval).
func NewEstimate(deltas []stats.CoreStats) Estimate {
	n := len(deltas)
	e := Estimate{Samples: n}
	if n == 0 {
		return e
	}
	instr := make([]float64, n)
	cycles := make([]float64, n)
	l1 := make([]float64, n)
	l2 := make([]float64, n)
	llc := make([]float64, n)
	for i := range deltas {
		d := &deltas[i]
		e.DetailedInstructions += d.Instructions
		instr[i] = float64(d.Instructions)
		cycles[i] = float64(d.Cycles)
		// Per-sample miss counts ×1000, recovered through each metric's
		// own accessor so the estimate can never drift from the
		// full-run definition of the metric.
		l1[i] = d.L1DemandMPKI() * instr[i]
		l2[i] = d.L2.MPKI(d.Instructions) * instr[i]
		llc[i] = d.LLC.MPKI(d.Instructions) * instr[i]
	}
	e.IPC = stats.NewRatioInterval(instr, cycles)
	e.L1DemandMPKI = stats.NewRatioInterval(l1, instr)
	e.L2MPKI = stats.NewRatioInterval(l2, instr)
	e.LLCMPKI = stats.NewRatioInterval(llc, instr)
	return e
}
