package sample

import (
	"errors"
	"os"
	"sync"
	"testing"

	"graphmem/internal/stats"
)

func TestPlanValid(t *testing.T) {
	cases := []struct {
		name string
		p    Plan
		want bool
	}{
		{"zero (disabled)", Plan{}, false},
		{"typical", Plan{Period: 50_000, SampleLen: 5_000, Offset: 10_000, DetailWarm: 5_000}, true},
		{"no warm prefix", Plan{Period: 50_000, SampleLen: 5_000, Offset: 0}, true},
		{"detail fills period", Plan{Period: 10_000, SampleLen: 5_000, DetailWarm: 5_000}, true},
		{"detail exceeds period", Plan{Period: 10_000, SampleLen: 6_000, DetailWarm: 5_000}, false},
		{"zero sample", Plan{Period: 10_000, SampleLen: 0}, false},
		{"negative warm", Plan{Period: 10_000, SampleLen: 1_000, DetailWarm: -1}, false},
		{"offset outside period", Plan{Period: 10_000, SampleLen: 1_000, Offset: 10_000}, false},
		{"negative offset", Plan{Period: 10_000, SampleLen: 1_000, Offset: -1}, false},
	}
	for _, c := range cases {
		if got := c.p.Valid(); got != c.want {
			t.Errorf("%s: Valid() = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestPlanSchedule(t *testing.T) {
	p := Plan{Period: 50_000, SampleLen: 5_000, Offset: 10_000, DetailWarm: 5_000}
	if !p.Enabled() {
		t.Fatal("plan with positive period not enabled")
	}
	if s := p.NextStart(0); s != 10_000 {
		t.Errorf("NextStart(0) = %d, want 10000", s)
	}
	if s := p.NextStart(3); s != 160_000 {
		t.Errorf("NextStart(3) = %d, want 160000", s)
	}
	if f := p.DetailFraction(); f != 0.2 {
		t.Errorf("DetailFraction = %v, want 0.2", f)
	}
	if f := (Plan{}).DetailFraction(); f != 1 {
		t.Errorf("disabled plan DetailFraction = %v, want 1", f)
	}
}

func TestKeyBindsAllComponents(t *testing.T) {
	base := Key("pr.kron", "confA")
	if base != Key("pr.kron", "confA") {
		t.Error("Key is not deterministic")
	}
	if base == Key("cc.kron", "confA") {
		t.Error("Key ignores the workload hash")
	}
	if base == Key("pr.kron", "confB") {
		t.Error("Key ignores the config hash")
	}
	if len(base) != 32 {
		t.Errorf("key %q not 32 hex chars", base)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	payload := []byte("warm state bytes \x00\xff with binary")
	back, err := Decode(Encode(payload))
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(payload) {
		t.Errorf("round trip changed payload: %q -> %q", payload, back)
	}
	if back, err := Decode(Encode(nil)); err != nil || len(back) != 0 {
		t.Errorf("empty payload round trip: %q, %v", back, err)
	}
}

func TestDecodeRejectsVersionMismatch(t *testing.T) {
	framed := Encode([]byte("payload"))
	framed[8] = 0xFF // state version field
	if _, err := Decode(framed); !errors.Is(err, ErrVersionMismatch) {
		t.Errorf("got %v, want ErrVersionMismatch", err)
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	framed := Encode([]byte("a payload long enough to truncate meaningfully"))
	cases := map[string][]byte{
		"empty":         {},
		"short header":  framed[:20],
		"truncated":     framed[:len(framed)-5],
		"bad magic":     append([]byte("NOTCKPT\n"), framed[8:]...),
		"flipped byte":  append(append([]byte{}, framed[:len(framed)-1]...), framed[len(framed)-1]^0x01),
		"trailing junk": append(append([]byte{}, framed...), 0xAB),
	}
	for name, data := range cases {
		if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
}

func TestStoreMissCommitHit(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("w", "c")

	payload, done := st.Acquire(key)
	if payload != nil {
		t.Fatal("fresh store returned a payload")
	}
	if err := done([]byte("state")); err != nil {
		t.Fatal(err)
	}
	payload, done = st.Acquire(key)
	if string(payload) != "state" {
		t.Fatalf("hit returned %q", payload)
	}
	if err := done(nil); err != nil {
		t.Fatal(err)
	}
	if m, h := st.Misses(), st.Hits(); m != 1 || h != 1 {
		t.Errorf("misses %d hits %d, want 1/1", m, h)
	}
}

func TestStoreAbortDoesNotPublish(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("w", "c")
	if payload, done := st.Acquire(key); payload != nil {
		t.Fatal("fresh store returned a payload")
	} else if err := done(nil); err != nil { // abort
		t.Fatal(err)
	}
	if payload, done := st.Acquire(key); payload != nil {
		t.Error("aborted commit still published a checkpoint")
	} else {
		done(nil)
	}
	if m := st.Misses(); m != 2 {
		t.Errorf("misses %d, want 2", m)
	}
}

// TestStoreSingleFlight pins the one-warm-up guarantee under
// concurrency: N goroutines racing on one key produce exactly one miss,
// and every loser observes the winner's payload.
func TestStoreSingleFlight(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("w", "c")
	const n = 8
	var wg sync.WaitGroup
	got := make([][]byte, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload, done := st.Acquire(key)
			if payload == nil {
				done([]byte("winner"))
				return
			}
			got[i] = payload
			done(nil)
		}()
	}
	wg.Wait()
	if m, h := st.Misses(), st.Hits(); m != 1 || h != n-1 {
		t.Errorf("misses %d hits %d, want 1/%d", m, h, n-1)
	}
	for i, p := range got {
		if p != nil && string(p) != "winner" {
			t.Errorf("goroutine %d read %q", i, p)
		}
	}
}

// TestStoreRecoversFromDamagedFile pins the store-level failure policy:
// wrong-version and corrupt files are misses, and the following commit
// replaces them.
func TestStoreRecoversFromDamagedFile(t *testing.T) {
	st, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := Key("w", "c")
	_, done := st.Acquire(key)
	if err := done([]byte("good")); err != nil {
		t.Fatal(err)
	}

	framed := Encode([]byte("good"))
	framed[8] = 0xFE // stale version
	if err := os.WriteFile(st.Path(key), framed, 0o644); err != nil {
		t.Fatal(err)
	}
	payload, done := st.Acquire(key)
	if payload != nil {
		t.Fatal("stale-version file served as a hit")
	}
	if err := done([]byte("rewarmed")); err != nil {
		t.Fatal(err)
	}
	payload, done = st.Acquire(key)
	if string(payload) != "rewarmed" {
		t.Errorf("recovery read %q", payload)
	}
	done(nil)
}

// TestEstimateIsRatioEstimator pins the Jensen-bias fix: with two
// samples of very different per-sample IPC, the estimate must be the
// pooled ratio Σinstr/Σcycles (0.2 here), not the mean of per-sample
// ratios (0.556) — phased workloads like BFS depend on this.
func TestEstimateIsRatioEstimator(t *testing.T) {
	a := stats.CoreStats{Instructions: 1000, Cycles: 1000}
	b := stats.CoreStats{Instructions: 1000, Cycles: 9000}
	e := NewEstimate([]stats.CoreStats{a, b})
	if e.Samples != 2 || e.DetailedInstructions != 2000 {
		t.Fatalf("bookkeeping wrong: %+v", e)
	}
	if e.IPC.Mean < 0.199 || e.IPC.Mean > 0.201 {
		t.Errorf("IPC estimate %v; want the pooled ratio 0.2", e.IPC.Mean)
	}
	if e.IPC.HalfWidth <= 0 {
		t.Error("two differing samples must yield a positive half-width")
	}
	if z := NewEstimate(nil); z.Samples != 0 || z.IPC.Mean != 0 {
		t.Errorf("empty estimate not zero: %+v", z)
	}
}
