package sample

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"graphmem/internal/store"
)

// StateVersion identifies the µarch-state checkpoint payload layout
// produced by internal/sim. It participates in both the file header and
// the checkpoint key, so a simulator whose state format changed never
// deserializes (or even looks up) a stale file.
const StateVersion = 1

// ckptFraming is the checkpoint file identity: the framing (magic +
// version + length + sha256) is the shared internal/store
// implementation, bound to this package's magic and StateVersion.
var ckptFraming = store.Framing{
	Magic:   [8]byte{'G', 'M', 'W', 'C', 'K', 'P', 'T', '\n'},
	Version: StateVersion,
}

// Errors surfaced by checkpoint decoding, aliased to the shared framing
// errors so errors.Is works across both packages. Version mismatches
// and corrupt/truncated files are ordinary cache misses to callers (the
// warm-up is simply replayed), but they are distinguishable for tests
// and diagnostics.
var (
	ErrVersionMismatch = store.ErrVersionMismatch
	ErrCorrupt         = store.ErrCorrupt
)

// Key derives a checkpoint-store key from the three identity components
// the ISSUE pins down: the workload hash, the warm-up-relevant config
// hash, and the simulator state version. Callers hash whatever uniquely
// identifies each component; Key just binds them.
func Key(workloadHash, warmConfigHash string) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("v%d|%s|%s", StateVersion, workloadHash, warmConfigHash)))
	return hex.EncodeToString(h[:16])
}

// Encode frames a checkpoint payload: magic, state version, payload
// length, payload checksum, payload. The checksum makes truncation and
// bit-rot detectable without trusting the payload's internal structure.
func Encode(payload []byte) []byte { return ckptFraming.Encode(payload) }

// Decode validates a framed checkpoint and returns its payload.
func Decode(data []byte) ([]byte, error) { return ckptFraming.Decode(data) }

// Store is the disk-backed checkpoint store: one framed file per key
// under a directory, with per-key single-flight so a sweep of N configs
// sharing a warm-up performs exactly one (the first Acquire for a key
// misses and warms; the others block on the key lock and then hit the
// committed file). Hit/miss counters feed the CI job summary and the
// scheduler tests.
type Store struct {
	dir string

	mu     sync.Mutex
	keys   map[string]*sync.Mutex
	hits   int64
	misses int64
}

// NewStore opens (creating if needed) a checkpoint store rooted at dir.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sample: checkpoint store: %w", err)
	}
	return &Store{dir: dir, keys: make(map[string]*sync.Mutex)}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the file a key maps to.
func (s *Store) Path(key string) string {
	return filepath.Join(s.dir, key+".ckpt")
}

// Hits and Misses report the store's lookup outcome counts.
func (s *Store) Hits() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}

// Misses reports how many Acquire calls found no usable checkpoint.
func (s *Store) Misses() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.misses
}

func (s *Store) keyLock(key string) *sync.Mutex {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.keys[key]
	if !ok {
		l = &sync.Mutex{}
		s.keys[key] = l
	}
	return l
}

// Acquire looks the key up under its single-flight lock. On a hit it
// returns the decoded payload and a release func to call immediately.
// On a miss it returns a nil payload and a commit func: the caller runs
// the warm-up, then calls commit with the encoded payload (nil to abort
// without publishing). The key lock is held from Acquire to
// release/commit, so concurrent runs sharing a warm-up serialize on it
// and every one after the first hits. A stale (wrong-version) or
// corrupt file counts as a miss and is overwritten by the commit.
func (s *Store) Acquire(key string) (payload []byte, done func([]byte) error) {
	l := s.keyLock(key)
	l.Lock()
	if data, err := os.ReadFile(s.Path(key)); err == nil {
		if p, derr := Decode(data); derr == nil {
			s.mu.Lock()
			s.hits++
			s.mu.Unlock()
			return p, func([]byte) error { l.Unlock(); return nil }
		}
	}
	s.mu.Lock()
	s.misses++
	s.mu.Unlock()
	return nil, func(p []byte) error {
		defer l.Unlock()
		if p == nil {
			return nil
		}
		return s.write(key, p)
	}
}

// write commits a payload atomically (the shared tmp + rename helper)
// so a crashed or interrupted run can never leave a half-written
// checkpoint that a later run would trust.
func (s *Store) write(key string, payload []byte) error {
	if err := store.WriteFileAtomic(s.dir, s.Path(key), Encode(payload)); err != nil {
		return fmt.Errorf("sample: checkpoint write: %w", err)
	}
	return nil
}
