package sample

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// StateVersion identifies the µarch-state checkpoint payload layout
// produced by internal/sim. It participates in both the file header and
// the checkpoint key, so a simulator whose state format changed never
// deserializes (or even looks up) a stale file.
const StateVersion = 1

// ckptMagic opens every checkpoint file.
var ckptMagic = [8]byte{'G', 'M', 'W', 'C', 'K', 'P', 'T', '\n'}

// Errors surfaced by checkpoint decoding. Version mismatches and
// corrupt/truncated files are ordinary cache misses to callers (the
// warm-up is simply replayed), but they are distinguishable for tests
// and diagnostics.
var (
	ErrVersionMismatch = errors.New("sample: checkpoint version mismatch")
	ErrCorrupt         = errors.New("sample: checkpoint truncated or corrupt")
)

// Key derives a checkpoint-store key from the three identity components
// the ISSUE pins down: the workload hash, the warm-up-relevant config
// hash, and the simulator state version. Callers hash whatever uniquely
// identifies each component; Key just binds them.
func Key(workloadHash, warmConfigHash string) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("v%d|%s|%s", StateVersion, workloadHash, warmConfigHash)))
	return hex.EncodeToString(h[:16])
}

// Encode frames a checkpoint payload: magic, state version, payload
// length, payload checksum, payload. The checksum makes truncation and
// bit-rot detectable without trusting the payload's internal structure.
func Encode(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+8+4+8+32)
	out = append(out, ckptMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, StateVersion)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	sum := sha256.Sum256(payload)
	out = append(out, sum[:]...)
	out = append(out, payload...)
	return out
}

// Decode validates a framed checkpoint and returns its payload.
func Decode(data []byte) ([]byte, error) {
	const headerLen = 8 + 4 + 8 + 32
	if len(data) < headerLen {
		return nil, ErrCorrupt
	}
	if [8]byte(data[:8]) != ckptMagic {
		return nil, ErrCorrupt
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != StateVersion {
		return nil, fmt.Errorf("%w: file v%d, simulator v%d", ErrVersionMismatch, v, StateVersion)
	}
	n := binary.LittleEndian.Uint64(data[12:20])
	payload := data[headerLen:]
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("%w: payload %d bytes, header says %d", ErrCorrupt, len(payload), n)
	}
	var sum [32]byte
	copy(sum[:], data[20:52])
	if sha256.Sum256(payload) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}

// Store is the disk-backed checkpoint store: one framed file per key
// under a directory, with per-key single-flight so a sweep of N configs
// sharing a warm-up performs exactly one (the first Acquire for a key
// misses and warms; the others block on the key lock and then hit the
// committed file). Hit/miss counters feed the CI job summary and the
// scheduler tests.
type Store struct {
	dir string

	mu     sync.Mutex
	keys   map[string]*sync.Mutex
	hits   int64
	misses int64
}

// NewStore opens (creating if needed) a checkpoint store rooted at dir.
func NewStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sample: checkpoint store: %w", err)
	}
	return &Store{dir: dir, keys: make(map[string]*sync.Mutex)}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the file a key maps to.
func (s *Store) Path(key string) string {
	return filepath.Join(s.dir, key+".ckpt")
}

// Hits and Misses report the store's lookup outcome counts.
func (s *Store) Hits() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}

// Misses reports how many Acquire calls found no usable checkpoint.
func (s *Store) Misses() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.misses
}

func (s *Store) keyLock(key string) *sync.Mutex {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.keys[key]
	if !ok {
		l = &sync.Mutex{}
		s.keys[key] = l
	}
	return l
}

// Acquire looks the key up under its single-flight lock. On a hit it
// returns the decoded payload and a release func to call immediately.
// On a miss it returns a nil payload and a commit func: the caller runs
// the warm-up, then calls commit with the encoded payload (nil to abort
// without publishing). The key lock is held from Acquire to
// release/commit, so concurrent runs sharing a warm-up serialize on it
// and every one after the first hits. A stale (wrong-version) or
// corrupt file counts as a miss and is overwritten by the commit.
func (s *Store) Acquire(key string) (payload []byte, done func([]byte) error) {
	l := s.keyLock(key)
	l.Lock()
	if data, err := os.ReadFile(s.Path(key)); err == nil {
		if p, derr := Decode(data); derr == nil {
			s.mu.Lock()
			s.hits++
			s.mu.Unlock()
			return p, func([]byte) error { l.Unlock(); return nil }
		}
	}
	s.mu.Lock()
	s.misses++
	s.mu.Unlock()
	return nil, func(p []byte) error {
		defer l.Unlock()
		if p == nil {
			return nil
		}
		return s.write(key, p)
	}
}

// write commits a payload atomically (tmp + rename) so a crashed or
// interrupted run can never leave a half-written checkpoint that a
// later run would trust.
func (s *Store) write(key string, payload []byte) error {
	framed := Encode(payload)
	tmp, err := os.CreateTemp(s.dir, key+".tmp*")
	if err != nil {
		return fmt.Errorf("sample: checkpoint write: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(framed); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("sample: checkpoint write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("sample: checkpoint write: %w", err)
	}
	if err := os.Rename(name, s.Path(key)); err != nil {
		os.Remove(name)
		return fmt.Errorf("sample: checkpoint write: %w", err)
	}
	return nil
}
