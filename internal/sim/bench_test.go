package sim

import (
	"testing"

	"graphmem/internal/kernels"
	"graphmem/internal/mem"
	"graphmem/internal/trace"
)

// prRecs caches a captured slice of the pr.kron trace so benchmarks
// replay identical records without re-running the kernel per run.
var prRecs []trace.Record

func prRecords(tb testing.TB, n int64) []trace.Record {
	tb.Helper()
	if int64(len(prRecs)) >= n {
		return prRecs[:n]
	}
	g := testGraphCache(19)
	space := mem.NewSpace(0)
	inst := kernels.Registry()["pr"](g, space)
	sink := &trace.SliceSink{Limit: n}
	inst.Run(trace.New(sink))
	if int64(len(sink.Recs)) < n {
		tb.Fatalf("captured %d records, want %d", len(sink.Recs), n)
	}
	prRecs = sink.Recs
	return prRecs[:n]
}

// steadyCtx builds a single-core system whose windows never close, so
// replaying records exercises the steady-state hot loop (fast-path
// observe, no epoch or measure boundaries).
func steadyCtx(tb testing.TB, cfg Config) *coreCtx {
	tb.Helper()
	cfg = cfg.WithWindows(1<<60, 1<<60)
	ws := make([]Workload, cfg.Cores)
	ws[0] = kronWorkload(tb, "pr", 19)
	return NewSystem(cfg, ws).cores[0]
}

// BenchmarkPRKronStep replays captured pr.kron records through the full
// per-record path — cpu recurrences, TLB, cache ladder, DRAM — of the
// bench-scale baseline machine.
func BenchmarkPRKronStep(b *testing.B) {
	recs := prRecords(b, 1<<18)
	c := steadyCtx(b, TableI(1).BenchScale())
	// Warm structures so the measured loop is steady-state.
	for _, r := range recs[:1<<16] {
		c.observe(r)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.observe(recs[i%len(recs)])
	}
}

// BenchmarkPRKronStepSDCLP is the same replay against the paper's
// SDC+LP machine, covering the LP predictor and SDC/SDCDir paths.
func BenchmarkPRKronStepSDCLP(b *testing.B) {
	recs := prRecords(b, 1<<18)
	c := steadyCtx(b, TableI(1).BenchScale().WithSDCLP())
	for _, r := range recs[:1<<16] {
		c.observe(r)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.observe(recs[i%len(recs)])
	}
}

// TestHotLoopZeroAllocs pins the steady-state record loop at zero
// allocations per record: any regression here shows up long before it
// is visible in wall-clock.
func TestHotLoopZeroAllocs(t *testing.T) {
	recs := prRecords(t, 1<<18)
	for _, cfg := range []Config{TableI(1).BenchScale(), TableI(1).BenchScale().WithSDCLP()} {
		c := steadyCtx(t, cfg)
		for _, r := range recs[:1<<16] {
			c.observe(r)
		}
		i := 1 << 16
		avg := testing.AllocsPerRun(4096, func() {
			c.observe(recs[i%len(recs)])
			i++
		})
		if avg != 0 {
			t.Errorf("%s: steady-state observe allocates %.2f/record, want 0", cfg.Name, avg)
		}
	}
}
