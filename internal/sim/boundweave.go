package sim

import (
	"cmp"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"graphmem/internal/check"
	"graphmem/internal/mem"
	"graphmem/internal/trace"
)

// Bound–weave parallel engine (ZSim / Graphite style, selected by
// Config.Quantum > 0).
//
// Simulation proceeds in global cycle quanta. In the *bound phase* each
// simulated core runs on its own host goroutine until its dispatch
// clock reaches the quantum boundary, touching only private state —
// core, L1D, victim cache, L2, SDC, TLBs, LP — plus *reads* of the
// frozen shared structures (LLC, DRAM state, SDCDir). Every
// shared-domain side effect (LLC lookup/fill/invalidate, DRAM access,
// SDCDir transition) is buffered into the core's ordered event log with
// a deterministic estimated latency. The serial *weave phase* then
// merges all logs in (timestamp, core, seq) order and replays them
// against the real shared structures; the difference between actual and
// estimated latency accumulates as per-core skew, charged to the core
// as a dispatch stall at the quantum boundary.
//
// One deliberate semantic difference from the legacy engine: a core
// stops consuming its trace the moment its measurement window closes,
// rather than replaying on for contention until every core finishes
// (with a quantum longer than the run, a finished core would otherwise
// spin forever inside its bound task). The stop point is a pure
// function of the core's own state, so it cannot affect determinism.
//
// Determinism: the bound phase shares nothing mutable between cores
// (each core's accesses stay inside its disjoint 1 TiB address window,
// so even remote-cache probes are compile-time dead under this engine),
// the weave order is a pure function of the logs, and the worker count
// only changes which host thread runs which independent bound task.
// Reports are therefore byte-identical at any WeaveWorkers setting,
// including the -wj 1 serial reference.
//
// Differential checking: the shadow oracle (internal/check) is sharded
// per core — exact, because each core is the single writer of its
// window. Program-order checks run at bound time against the core's own
// shard; cross-core effects (an LLC replay eviction writing another
// core's dirty block back to DRAM) are applied to the owning shard
// serially during the weave. Structural invariant sweeps run at quantum
// boundaries, where replay has made the shared structures consistent.

// bwLine is one overlay entry: the core's private view of its own
// pending LLC changes this quantum (fills and invalidations the weave
// has not applied yet).
type bwLine struct {
	present bool
	ver     uint64
}

// bwEventKind classifies a logged shared-domain event.
type bwEventKind uint8

const (
	// bwEvLLCRead is a read reaching the LLC (demand or prefetch):
	// predicted hit, predicted miss to DRAM, or an SDC-to-hierarchy
	// transfer (bwFXfer). Replay runs the real lookup / MSHR / fill.
	bwEvLLCRead bwEventKind = iota
	// bwEvLLCBypass is a bypass-path (Selective-Cache ablation) access
	// served at the LLC or DRAM without allocation.
	bwEvLLCBypass
	// bwEvLLCWB is a dirty write-back fill into the LLC.
	bwEvLLCWB
	// bwEvLLCInval purges the LLC copy (SDC write took ownership).
	bwEvLLCInval
	// bwEvDRAMRead / bwEvDRAMWrite access DRAM directly (SDC fast path,
	// bypass path, SDC write-backs).
	bwEvDRAMRead
	bwEvDRAMWrite
	// bwEvDir* replay SDCDir transitions (stats/LRU-bearing lookups,
	// sharer-set changes).
	bwEvDirLookup
	bwEvDirAdd
	bwEvDirRemove
	bwEvDirInvalAll
)

// bwEvent flag bits.
const (
	// bwFXfer marks an LLC read filled by an SDC transfer rather than
	// DRAM.
	bwFXfer uint8 = 1 << iota
	// bwFWrite marks a bypass event as a store.
	bwFWrite
	// bwFPf marks prefetch traffic: replayed for state/stats but its
	// latency never skews the core (prefetches are off the critical
	// path).
	bwFPf
	// bwFExcl marks a directory AddSharer as an exclusive write upgrade.
	bwFExcl
)

// bwEvent is one buffered shared-domain access. The weave replays
// events in (t, core, seq) order: t is the estimated shared-domain
// arrival time, core/seq break ties deterministically (seq is the
// event's position in its core's log, i.e. program order).
type bwEvent struct {
	t    int64
	est  int64 // estimated ready time; skew = actual - est (0: no skew)
	blk  mem.BlockAddr
	addr mem.Addr
	ver  uint64 // version stamp the fill installs (checked runs)
	core int32
	seq  int32
	kind bwEventKind
	flag uint8
	size uint8
}

// bwCore is one core's bound-phase state.
type bwCore struct {
	eng *bwEngine
	id  int32
	// overlay is the core's private view of its own LLC changes this
	// quantum, consulted before the frozen LLC (bwLLCView).
	overlay map[mem.BlockAddr]bwLine
	// log is the quantum's event buffer, in program order.
	log []bwEvent
	// skew accumulates Σ(actual − estimated) latency from the weave.
	// Positive skew stalls the core at the quantum boundary and resets;
	// negative skew persists as credit against future corrections.
	skew int64
	// tClock makes the core's logged timestamps non-decreasing: some
	// events are stamped with completion times (an SDC fill's AddSharer
	// at the fill's ready time) while later program-order events carry
	// earlier issue times; without the clamp the (t, core, seq) weave
	// order could replay them inverted — e.g. a directory InvalidateAll
	// before the AddSharer it must undo, leaving a stale sharer bit.
	// With it, weave order always respects per-core program order.
	tClock int64
}

// logEv appends an event to the core's log, stamping provenance and
// clamping t so the core's event times never run backwards.
func (b *bwCore) logEv(e bwEvent) {
	if e.t < b.tClock {
		e.t = b.tClock
	} else {
		b.tClock = e.t
	}
	e.core = b.id
	e.seq = int32(len(b.log))
	b.log = append(b.log, e)
}

// bwDeferredEvict is an SDCDir capacity eviction raised during replay;
// the SDC invalidations are applied at weave end (the bound phase that
// logged the quantum's events saw the copies as still live, so they
// cannot be yanked mid-replay).
type bwDeferredEvict struct {
	blk     mem.BlockAddr
	sharers uint64
}

// bwEngine drives the quantum loop for one system.
type bwEngine struct {
	sys     *System
	quantum int64
	workers int
	// dramEst is the deterministic DRAM latency estimate used by the
	// bound phase: the unloaded row-hit channel latency. The weave
	// charges the difference to the real bank/bus reservations as skew.
	dramEst int64
	cores   []*bwCore
	// quanta counts completed quanta (the value passed to QuantumTaps).
	quanta int64

	// Scratch reused across quanta.
	events   []bwEvent
	live     []*mcSlot
	panics   []any
	deferred []bwDeferredEvict

	// sweepMark is the total instruction count at the last invariant
	// sweep (engine-driven; per-core observeSlow sweeps are disarmed
	// under this engine).
	sweepMark int64
}

func newBWEngine(sys *System) *bwEngine {
	eng := &bwEngine{
		sys:     sys,
		quantum: sys.cfg.Quantum,
		workers: sys.cfg.WeaveWorkers,
		dramEst: sys.dram.MinLatency(),
	}
	if eng.workers <= 0 {
		eng.workers = runtime.GOMAXPROCS(0)
	}
	for i, c := range sys.cores {
		c.bw = &bwCore{eng: eng, id: int32(i), overlay: make(map[mem.BlockAddr]bwLine)}
		eng.cores = append(eng.cores, c.bw)
		// Sweeps are engine-driven at quantum boundaries (the shared
		// structures are only consistent there); disarm the per-core
		// observeSlow trigger.
		c.nextSweep = noEpoch
		if sys.chk != nil {
			// Shard the oracle: program-order checks go against the
			// core's own shard (exact — single writer per window);
			// sys.chk keeps the structural sweeps and the merge base.
			c.chk = check.New(sys.cfg.CheckLevel)
		}
	}
	return eng
}

// blockOwner returns the core whose address window blk belongs to.
func blockOwner(blk mem.BlockAddr) int {
	return int(uint64(blk) >> (mem.CoreSpaceBits - mem.BlockBits))
}

// shardDRAMWrite records a replay-time DRAM write-back in the owning
// core's oracle shard (cross-core LLC victims land here).
func (eng *bwEngine) shardDRAMWrite(blk mem.BlockAddr, ver uint64) {
	if eng.sys.chk == nil {
		return
	}
	if o := blockOwner(blk); o < len(eng.sys.cores) {
		if k := eng.sys.cores[o].chk; k != nil {
			k.DRAMWrite(blk, ver)
		}
	}
}

// shardDRAMRead reads the architectural DRAM version from the owning
// core's oracle shard (pickle prefetch fills need it for SetVer).
func (eng *bwEngine) shardDRAMRead(blk mem.BlockAddr) uint64 {
	if eng.sys.chk == nil {
		return 0
	}
	if o := blockOwner(blk); o < len(eng.sys.cores) {
		if k := eng.sys.cores[o].chk; k != nil {
			return k.DRAMRead(blk)
		}
	}
	return 0
}

// deferEvict buffers an SDCDir capacity eviction raised during replay.
func (eng *bwEngine) deferEvict(blk mem.BlockAddr, sharers uint64) {
	eng.deferred = append(eng.deferred, bwDeferredEvict{blk: blk, sharers: sharers})
}

// applyDeferredEvicts performs the SDC back-invalidations of directory
// entries evicted during replay. An entry re-added later in the same
// weave keeps its copies: only cores the *final* directory state no
// longer tracks are invalidated, preserving the SDC ⟺ SDCDir invariant
// at the sweep point.
func (eng *bwEngine) applyDeferredEvicts() {
	s := eng.sys
	for _, d := range eng.deferred {
		for i := 0; i < s.cfg.Cores; i++ {
			if d.sharers&(1<<i) == 0 {
				continue
			}
			c := s.cores[i]
			if c.sdc == nil {
				continue
			}
			if cur, _, ok := s.sdcDir.Probe(d.blk); ok && cur&(1<<i) != 0 {
				continue // re-added: still tracked
			}
			var ver uint64
			if c.chk != nil {
				ver = c.sdc.VerOf(d.blk)
			}
			if present, dirty := c.sdc.Invalidate(d.blk); present && dirty {
				s.dram.Access(d.blk, true, c.cpuCore.Cycle())
				if c.chk != nil {
					c.chk.DRAMWrite(d.blk, ver)
				}
			}
		}
	}
	eng.deferred = eng.deferred[:0]
}

// boundOne advances one core's private simulation to the quantum
// boundary (or its stream's end). Runs concurrently with other cores'
// bound tasks: everything it touches is private to the slot except
// read-only probes of the frozen shared structures.
func (eng *bwEngine) boundOne(sl *mcSlot, qEnd int64) {
	c := sl.c
	if qt, ok := c.cpuCore.Tap.(mem.QuantumTap); ok {
		qt.BeginQuantum(eng.quanta)
	}
	for sl.alive && c.cpuCore.DispatchCycle() < qEnd {
		it, ok := sl.stream.next()
		if !ok {
			sl.alive = false
			return
		}
		if it.isProgress {
			if o, okp := c.oracle.(trace.ProgressSink); okp && o != nil {
				o.SetProgress(it.progress)
			}
			continue
		}
		if !c.observe(it.rec) {
			// Window closed: under bound–weave a core stops at its own
			// boundary (the legacy engine replays finished cores for
			// contention; here that would never terminate when the quantum
			// exceeds the run). Purely core-local, hence deterministic.
			return
		}
	}
}

// boundPhase runs every live core's bound task, fanned out over up to
// eng.workers host goroutines. Tasks are independent, so the worker
// count affects scheduling only, never results; workers ≤ 1 (or a
// single live core) degrades to the in-place serial reference.
func (eng *bwEngine) boundPhase(slots []*mcSlot, qEnd int64) {
	live := eng.live[:0]
	for _, sl := range slots {
		if sl.alive && !sl.c.doneMeasure {
			live = append(live, sl)
		}
	}
	eng.live = live

	workers := eng.workers
	if workers > len(live) {
		workers = len(live)
	}
	if workers <= 1 {
		for _, sl := range live {
			eng.boundOne(sl, qEnd)
		}
		return
	}

	if cap(eng.panics) < workers {
		eng.panics = make([]any, workers)
	}
	panics := eng.panics[:workers]
	for i := range panics {
		panics[i] = nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[w] = r
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(live) {
					return
				}
				eng.boundOne(live[i], qEnd)
			}
		}(w)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			// Re-raise on the engine goroutine; RunMultiCoreOn's deferred
			// stopAndDrain keeps producer goroutines from leaking.
			panic(p)
		}
	}
}

// weave merges the quantum's event logs in (t, core, seq) order and
// replays them serially against the real shared structures, then
// settles the quantum: deferred directory evictions, skew stalls,
// overlay/log reset.
func (eng *bwEngine) weave() {
	evs := eng.events[:0]
	for _, b := range eng.cores {
		evs = append(evs, b.log...)
	}
	slices.SortFunc(evs, func(a, b bwEvent) int {
		if c := cmp.Compare(a.t, b.t); c != 0 {
			return c
		}
		if c := cmp.Compare(a.core, b.core); c != 0 {
			return c
		}
		return cmp.Compare(a.seq, b.seq)
	})
	for i := range evs {
		eng.replay(&evs[i])
	}
	eng.events = evs[:0]
	eng.applyDeferredEvicts()
	for _, b := range eng.cores {
		b.log = b.log[:0]
		clear(b.overlay)
		if b.skew > 0 {
			c := eng.sys.cores[b.id]
			c.cpuCore.Stall(c.cpuCore.DispatchCycle() + b.skew)
			b.skew = 0
		}
	}
	eng.quanta++
}

// replay applies one event to the shared structures and accumulates
// latency skew for skew-bearing kinds (est > 0, non-prefetch).
func (eng *bwEngine) replay(e *bwEvent) {
	s := eng.sys
	var actual int64
	switch e.kind {
	case bwEvLLCRead:
		actual = eng.replayLLCRead(e)
	case bwEvLLCBypass:
		actual = eng.replayLLCBypass(e)
	case bwEvLLCWB:
		v := s.llc.Fill(e.blk, e.blk.Addr(), mem.BlockSize, true, false, e.t)
		s.llc.Stats.Writebacks++
		if s.chk != nil {
			s.llc.SetVer(e.blk, e.ver)
		}
		if v.Valid && v.Dirty {
			s.dram.Access(v.Blk, true, e.t)
			eng.shardDRAMWrite(v.Blk, v.Ver)
		}
		return
	case bwEvLLCInval:
		// Dirty data transferred into the logging core's SDC fill; the
		// LLC copy is just dropped (move semantics, no write-back).
		s.llc.Invalidate(e.blk)
		return
	case bwEvDRAMRead:
		actual = s.dram.Access(e.blk, false, e.t)
	case bwEvDRAMWrite:
		// Writes are posted: the bound phase already returned; only the
		// bank/bus reservation is replayed. The oracle's DRAM-version
		// update ran at bound time in the owner's shard.
		s.dram.Access(e.blk, true, e.t)
		return
	case bwEvDirLookup:
		s.sdcDir.Lookup(e.blk)
		return
	case bwEvDirAdd:
		s.sdcDir.AddSharer(e.blk, int(e.core), e.flag&bwFExcl != 0)
		return
	case bwEvDirRemove:
		s.sdcDir.RemoveSharer(e.blk, int(e.core))
		return
	case bwEvDirInvalAll:
		s.sdcDir.InvalidateAll(e.blk)
		return
	}
	if e.est > 0 && e.flag&bwFPf == 0 {
		eng.cores[e.core].skew += actual - e.est
	}
}

// replayLLCRead replays a bound-phase LLC read: the real lookup, MSHR
// merge/allocate, downstream fetch (DRAM, or the SDC-transfer latency
// for bwFXfer) and fill. A predicted hit normally hits here too; if a
// cross-core replay eviction removed the line in the meantime, the read
// refetches from DRAM with the logged version — functionally sound
// (each window has a single writer, so any installed copy is
// architecturally current) and deterministic.
func (eng *bwEngine) replayLLCRead(e *bwEvent) int64 {
	s := eng.sys
	pf := e.flag&bwFPf != 0
	res := s.llc.Lookup(e.blk, e.addr, e.size, false, pf, e.t)
	if res.Hit {
		return res.ReadyAt
	}
	t := res.ReadyAt
	if m := s.llc.MSHR(); m != nil {
		if ready, inflight := m.Lookup(e.blk, t); inflight {
			s.llc.Stats.MergedMSHR++
			return max64(ready, t)
		}
		t = m.Allocate(e.blk, t)
	}
	var ready int64
	if e.flag&bwFXfer != 0 {
		ready = t + s.sdcDir.Latency() + s.cfg.DirLatency/8
	} else {
		ready = s.dram.Access(e.blk, false, t)
	}
	v := s.llc.Fill(e.blk, e.addr, e.size, false, false, ready)
	if s.chk != nil {
		s.llc.SetVer(e.blk, e.ver)
	}
	if v.Valid && v.Dirty {
		s.dram.Access(v.Blk, true, ready)
		eng.shardDRAMWrite(v.Blk, v.Ver)
	}
	if m := s.llc.MSHR(); m != nil {
		m.Complete(e.blk, ready)
	}

	// Cross-core LLC prefetcher (the "pickle" preset): under
	// bound–weave it observes demand misses here, during the serial
	// (t,core,seq)-ordered replay, so training and issue order — and
	// with them the LLC contents — are independent of -wj.
	if s.llcpf != nil && e.flag&(bwFPf|bwFXfer) == 0 {
		s.llcPfBuf = s.llcpf.OnAccess(mem.AccessInfo{Blk: e.blk, Addr: e.addr, Core: int(e.core)}, s.llcPfBuf[:0])
		for _, cand := range s.llcPfBuf {
			eng.llcPrefetch(cand, t)
		}
	}
	return ready
}

// llcPrefetch fetches a pickle candidate into the shared LLC during the
// serial weave replay, mirroring the legacy engine's llcPrefetch with
// the oracle traffic routed to the owning core's shard.
func (eng *bwEngine) llcPrefetch(blk mem.BlockAddr, t int64) {
	s := eng.sys
	if s.cores[0].anyCacheHolds(blk) {
		return
	}
	if s.sdcDir != nil {
		if sharers, _, ok := s.sdcDir.Lookup(blk); ok && sharers != 0 {
			return
		}
	}
	if m := s.llc.MSHR(); m != nil {
		if _, inflight := m.Lookup(blk, t); inflight {
			return
		}
		if m.Outstanding(t) >= m.Capacity() {
			return
		}
		m.Allocate(blk, t)
	}
	ready := s.dram.Access(blk, false, t)
	v := s.llc.Fill(blk, blk.Addr(), mem.BlockSize, false, true, ready)
	s.llc.MarkPrefetchFill()
	if s.chk != nil {
		s.llc.SetVer(blk, eng.shardDRAMRead(blk))
	}
	if v.Valid && v.Dirty {
		s.dram.Access(v.Blk, true, ready)
		eng.shardDRAMWrite(v.Blk, v.Ver)
	}
	if m := s.llc.MSHR(); m != nil {
		m.Complete(blk, ready)
	}
}

// replayLLCBypass replays a bypass-path access: a real lookup against
// the LLC (no allocation on miss), falling back to DRAM exactly like
// the legacy path when the bound phase's view hit was falsified by a
// cross-core eviction.
func (eng *bwEngine) replayLLCBypass(e *bwEvent) int64 {
	s := eng.sys
	write := e.flag&bwFWrite != 0
	res := s.llc.Lookup(e.blk, e.addr, e.size, write, false, e.t)
	if res.Hit {
		if write && s.chk != nil {
			s.llc.SetVer(e.blk, e.ver)
		}
		return res.ReadyAt
	}
	done := s.dram.Access(e.blk, write, e.t)
	if write {
		// The store's version now lands in DRAM instead of the LLC line.
		eng.shardDRAMWrite(e.blk, e.ver)
		done = e.t + 1
	}
	return done
}

// sweepIfDue runs a structural invariant sweep when enough instructions
// retired since the last one. Called between quanta, where the weave
// has made the shared structures consistent with the private ones.
func (eng *bwEngine) sweepIfDue(final bool) {
	if eng.sys.chk == nil || eng.sys.chk.Level() != check.Full {
		return
	}
	var total int64
	for _, c := range eng.sys.cores {
		total += c.cpuCore.Instructions
	}
	if final || total-eng.sweepMark >= checkSweepEvery {
		eng.sweepMark = total
		eng.sys.CheckInvariants()
	}
}

// runBoundWeave is the bound–weave replacement for the legacy serial
// scheduler loop in RunMultiCoreOn (which owns slot startup and the
// deferred drain).
func runBoundWeave(sys *System, ws []Workload, slots []*mcSlot) *MultiResult {
	eng := newBWEngine(sys)
	sys.bw = eng
	defer func() {
		sys.bw = nil
		for _, c := range sys.cores {
			c.bw = nil
		}
	}()

	remaining := 0
	for _, sl := range slots {
		if sl.alive {
			remaining++
		}
	}

	qEnd := eng.quantum
	for remaining > 0 {
		eng.boundPhase(slots, qEnd)
		eng.weave()
		eng.sweepIfDue(false)

		remaining = 0
		minClock := int64(noEpoch)
		for _, sl := range slots {
			if sl.alive && !sl.c.doneMeasure {
				if cc := sl.c.cpuCore.DispatchCycle(); cc < minClock {
					minClock = cc
				}
				remaining++
			} else if !sl.alive && !sl.c.doneMeasure {
				// Stream ended mid-window: close the core out (idempotent).
				sl.c.finish()
			}
		}

		// Advance the boundary. When every live core is already past
		// several quanta (e.g. a long skew stall), skip ahead to the
		// first boundary beyond the slowest live core — deterministic,
		// since it depends only on simulated clocks.
		next := qEnd + eng.quantum
		if minClock != noEpoch {
			if q := (minClock/eng.quantum + 1) * eng.quantum; q > next {
				next = q
			}
		}
		qEnd = next
	}

	stopAndDrain(slots)
	raiseKernelPanics(slots)

	res := collectMulti(sys, ws, slots)
	eng.sweepIfDue(true) // final structural sweep at a consistent point
	if sys.chk != nil {
		sum := sys.chk.Summary()
		for _, c := range sys.cores {
			if c.chk != nil && c.chk != sys.chk {
				sum = sum.Merge(c.chk.Summary())
			}
		}
		res.Check = sum
	}
	return res
}

// --- bound-phase shared-domain shims (called from system.go when
// c.bw != nil) ---

// bwLLCView returns the core's current view of its own block in the
// LLC: the quantum's private overlay first, then the frozen LLC. Only
// the owning core ever asks about a block, so the view is never stale
// in a way that matters: cross-core replay evictions can falsify a
// predicted hit, which replayLLCRead repairs.
func (c *coreCtx) bwLLCView(blk mem.BlockAddr) (present bool, ver uint64) {
	if ln, ok := c.bw.overlay[blk]; ok {
		return ln.present, ln.ver
	}
	s := c.sys
	if s.llc.Probe(blk) {
		return true, s.llc.VerOf(blk)
	}
	return false, 0
}

// bwOverlaySet records a pending LLC view change.
func (c *coreCtx) bwOverlaySet(blk mem.BlockAddr, present bool, ver uint64) {
	c.bw.overlay[blk] = bwLine{present: present, ver: ver}
}

// llcHolds reports whether the LLC (through the bound-phase view when
// active) holds blk.
func (c *coreCtx) llcHolds(blk mem.BlockAddr) bool {
	if c.bw != nil {
		p, _ := c.bwLLCView(blk)
		return p
	}
	p, _ := c.sys.llc.ProbeDirty(blk)
	return p
}

// llcVer returns the (view-aware) LLC version stamp of blk.
func (c *coreCtx) llcVer(blk mem.BlockAddr) uint64 {
	if c.bw != nil {
		if p, v := c.bwLLCView(blk); p {
			return v
		}
		return 0
	}
	return c.sys.llc.VerOf(blk)
}

// bwDRAMRead logs a direct DRAM read and returns its estimated
// completion; the weave replays it against the real bank/bus
// reservations and charges the difference as skew (unless pf).
func (c *coreCtx) bwDRAMRead(blk mem.BlockAddr, t int64, pf bool) int64 {
	est := t + c.bw.eng.dramEst
	var f uint8
	if pf {
		f = bwFPf
	}
	c.bw.logEv(bwEvent{kind: bwEvDRAMRead, t: t, est: est, blk: blk, flag: f})
	return est
}

// bwDRAMWrite logs a posted DRAM write. The oracle's DRAM version map
// is updated immediately in the core's own shard (program order);
// replay only reserves bank/bus time.
func (c *coreCtx) bwDRAMWrite(blk mem.BlockAddr, t int64, ver uint64) {
	c.bw.logEv(bwEvent{kind: bwEvDRAMWrite, t: t, blk: blk, ver: ver})
	if c.chk != nil {
		c.chk.DRAMWrite(blk, ver)
	}
}

// bwDirLookup logs a stats/LRU-bearing SDCDir lookup. The bound phase
// answers the actual sharer question from its own SDC: under disjoint
// per-core windows this core is the only possible sharer of its
// blocks, so SDC presence ⟺ directory presence (the invariant sweeps
// verify exactly that).
func (c *coreCtx) bwDirLookup(blk mem.BlockAddr, t int64) {
	c.bw.logEv(bwEvent{kind: bwEvDirLookup, t: t, blk: blk})
}

// bwDirAddSharer logs an AddSharer transition (exclusive on writes).
func (c *coreCtx) bwDirAddSharer(blk mem.BlockAddr, t int64, excl bool) {
	var f uint8
	if excl {
		f = bwFExcl
	}
	c.bw.logEv(bwEvent{kind: bwEvDirAdd, t: t, blk: blk, flag: f})
}

// bwDirRemoveSharer logs a RemoveSharer transition (SDC eviction).
func (c *coreCtx) bwDirRemoveSharer(blk mem.BlockAddr, t int64) {
	c.bw.logEv(bwEvent{kind: bwEvDirRemove, t: t, blk: blk})
}

// bwDirInvalidateAll logs an InvalidateAll (hierarchy took ownership).
func (c *coreCtx) bwDirInvalidateAll(blk mem.BlockAddr, t int64) {
	c.bw.logEv(bwEvent{kind: bwEvDirInvalAll, t: t, blk: blk})
}

// bwLLCInvalidate logs an LLC purge and hides the copy from the view.
func (c *coreCtx) bwLLCInvalidate(blk mem.BlockAddr, t int64) {
	c.bw.logEv(bwEvent{kind: bwEvLLCInval, t: t, blk: blk})
	c.bwOverlaySet(blk, false, 0)
}

// bwAnyCacheHolds is the bound-phase anyCacheHolds: the LLC through the
// view, plus this core's private caches. Remote privates need no probe
// — they can never hold this core's blocks.
func (c *coreCtx) bwAnyCacheHolds(blk mem.BlockAddr) bool {
	if c.llcHolds(blk) {
		return true
	}
	if c.l1d.Probe(blk) || c.l2.Probe(blk) {
		return true
	}
	return c.victim != nil && c.victim.Probe(blk)
}

// bwLLCAccess is the bound-phase llcAccess: it serves against the view
// with deterministic estimated latencies and logs the real work for the
// weave.
func (c *coreCtx) bwLLCAccess(blk mem.BlockAddr, addr mem.Addr, size uint8, pf bool, issue int64) mem.Response {
	s := c.sys
	var f uint8
	if pf {
		f = bwFPf
	}

	if present, hver := c.bwLLCView(blk); present {
		est := issue + s.llc.Latency()
		c.bw.logEv(bwEvent{kind: bwEvLLCRead, t: issue, est: est, blk: blk, addr: addr, size: size, ver: hver, flag: f})
		if c.chk != nil {
			c.verScratch = hver
		}
		return mem.Response{Ready: est, Source: mem.ServedLLC}
	}

	t := issue + s.llc.Latency() // miss still pays the lookup

	// SDC-to-hierarchy transfer: under disjoint windows our own SDC is
	// the only possible sharer, so the directory question is answered by
	// a private probe; the directory's own transitions replay in order.
	if s.sdcDir != nil && c.sdc != nil && c.sdc.Probe(blk) {
		c.bwDirLookup(blk, t)
		var ver uint64
		if c.chk != nil {
			ver = c.sdc.VerOf(blk)
		}
		if present, dirty := c.sdc.Invalidate(blk); present && dirty {
			c.bwDRAMWrite(blk, t, ver)
		}
		c.bwDirInvalidateAll(blk, t)
		ready := t + s.sdcDir.Latency() + s.cfg.DirLatency/8
		c.bw.logEv(bwEvent{kind: bwEvLLCRead, t: t, est: ready, blk: blk, addr: addr, size: size, ver: ver, flag: f | bwFXfer})
		c.bwOverlaySet(blk, true, ver)
		if c.chk != nil {
			c.verScratch = ver
		}
		return mem.Response{Ready: ready, Source: mem.ServedSDC}
	}

	// Miss to DRAM. Remote private caches can never hold our blocks, so
	// the legacy remote-probe loop is dead under this engine.
	est := t + c.bw.eng.dramEst
	var ver uint64
	if c.chk != nil {
		ver = c.chk.DRAMRead(blk)
		c.verScratch = ver
	}
	c.bw.logEv(bwEvent{kind: bwEvLLCRead, t: t, est: est, blk: blk, addr: addr, size: size, ver: ver, flag: f})
	c.bwOverlaySet(blk, true, ver)
	return mem.Response{Ready: est, Source: mem.ServedDRAM}
}

// bwBypassShared is the bound-phase tail of bypassAccess after the
// private L1D/L2 probes missed: LLC through the view, else DRAM, no
// allocation anywhere.
func (c *coreCtx) bwBypassShared(blk mem.BlockAddr, addr mem.Addr, size uint8, write bool, t int64) mem.Response {
	s := c.sys
	if present, hver := c.bwLLCView(blk); present {
		at := t + c.l2.Latency()
		est := at + s.llc.Latency()
		var f uint8
		var ver uint64
		skewEst := est
		if write {
			// Stores absorb at dispatch; their latency never reaches the
			// core, so the event carries no skew reference.
			f, skewEst = bwFWrite, 0
			if c.chk != nil {
				ver = c.chk.StoreAbsorbed(blk)
				c.bwOverlaySet(blk, true, ver)
			}
		} else if c.chk != nil {
			c.chk.CheckLoad(c.id, c.curPC, blk, mem.ServedLLC, hver)
		}
		c.bw.logEv(bwEvent{kind: bwEvLLCBypass, t: at, est: skewEst, blk: blk, addr: addr, size: size, ver: ver, flag: f})
		return mem.Response{Ready: est, Source: mem.ServedLLC}
	}
	if write {
		var ver uint64
		if c.chk != nil {
			ver = c.chk.StoreAbsorbed(blk)
		}
		c.bwDRAMWrite(blk, t, ver)
		return mem.Response{Ready: t + 1, Source: mem.ServedDRAM}
	}
	est := c.bwDRAMRead(blk, t, false)
	if c.chk != nil {
		c.chk.CheckLoad(c.id, c.curPC, blk, mem.ServedDRAM, c.chk.DRAMRead(blk))
	}
	return mem.Response{Ready: est, Source: mem.ServedDRAM}
}
