package sim

import (
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"graphmem/internal/cache"
	"graphmem/internal/check"
	"graphmem/internal/kernels"
	"graphmem/internal/mem"
	"graphmem/internal/trace"
)

// bwWorkloads builds a fresh workload set (kernel instances are
// stateful, so every run gets its own) with the named kernels in the
// first len(names) slots; empty names are idle slots.
func bwWorkloads(t testing.TB, cores, scale int, names []string) []Workload {
	t.Helper()
	ws := make([]Workload, cores)
	for i, k := range names {
		if k == "" {
			continue
		}
		ws[i] = kronWorkloadSlot(t, k, scale, i)
	}
	return ws
}

// TestBoundWeaveDeterministicAcrossWorkers is the engine's hard
// contract: byte-identical results at any host worker count, including
// the -wj 1 serial reference. Run under -race this also shakes out
// bound-phase sharing bugs.
func TestBoundWeaveDeterministicAcrossWorkers(t *testing.T) {
	cfg := TableI(4).BenchScale().WithWindows(20_000, 120_000).WithSDCLP().WithBoundWeave(0, 1)
	names := []string{"pr", "cc", "bfs", "tc"}
	ref := RunMultiCore(cfg, bwWorkloads(t, 4, 16, names))
	for _, wj := range []int{2, 8} {
		cfg2 := cfg
		cfg2.WeaveWorkers = wj
		got := RunMultiCore(cfg2, bwWorkloads(t, 4, 16, names))
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("WeaveWorkers=%d result differs from the serial reference:\nref: %+v\ngot: %+v",
				wj, ref.PerCore, got.PerCore)
		}
	}
	for i, s := range ref.PerCore {
		if s.Instructions < cfg.Measure {
			t.Fatalf("core %d measured only %d instructions", i, s.Instructions)
		}
	}
}

// TestBoundWeaveQuantumOne drives the degenerate 1-cycle quantum: the
// weave runs after nearly every record, so any bound/weave boundary bug
// shows up immediately, and the parallel run must still match the
// serial reference exactly.
func TestBoundWeaveQuantumOne(t *testing.T) {
	cfg := TableI(2).BenchScale().WithWindows(2_000, 10_000).WithSDCLP().WithBoundWeave(1, 1)
	names := []string{"pr", "cc"}
	ref := RunMultiCore(cfg, bwWorkloads(t, 2, 16, names))
	par := RunMultiCore(cfg.WithBoundWeave(1, 4), bwWorkloads(t, 2, 16, names))
	if !reflect.DeepEqual(ref, par) {
		t.Fatalf("quantum=1 parallel run differs from serial reference:\nref: %+v\ngot: %+v",
			ref.PerCore, par.PerCore)
	}
	for i, s := range ref.PerCore {
		if s.Instructions < cfg.Measure {
			t.Fatalf("core %d measured only %d instructions", i, s.Instructions)
		}
	}
}

// TestBoundWeaveQuantumLargerThanWindow uses a quantum far beyond the
// whole run: the first bound phase must carry every core to its window
// close (not spin forever waiting for a boundary no core reaches).
func TestBoundWeaveQuantumLargerThanWindow(t *testing.T) {
	cfg := TableI(2).BenchScale().WithWindows(10_000, 60_000).WithSDCLP().WithBoundWeave(1<<40, 2)
	res := RunMultiCore(cfg, bwWorkloads(t, 2, 16, []string{"pr", "cc"}))
	for i, s := range res.PerCore {
		if s.Instructions < cfg.Measure {
			t.Fatalf("core %d measured only %d instructions", i, s.Instructions)
		}
	}
}

// TestBoundWeaveQuantumBoundaries sweeps awkward quantum sizes —
// including ones that never divide the run evenly — and expects filled
// windows and sane IPC from each.
func TestBoundWeaveQuantumBoundaries(t *testing.T) {
	for _, q := range []int64{1, 3, 777, DefaultQuantum} {
		cfg := TableI(1).BenchScale().WithWindows(5_000, 25_000).WithSDCLP().WithBoundWeave(q, 2)
		res := RunMultiCore(cfg, bwWorkloads(t, 1, 16, []string{"pr"}))
		s := res.PerCore[0]
		if s.Instructions < cfg.Measure {
			t.Fatalf("quantum=%d: measured only %d instructions", q, s.Instructions)
		}
		if s.IPC() <= 0 || s.IPC() > 4 {
			t.Fatalf("quantum=%d: IPC = %g", q, s.IPC())
		}
	}
}

// TestBoundWeave64CoreSmoke runs the engine at the paper's upper SDC+LP
// scale: 64 simulated cores, every slot active.
func TestBoundWeave64CoreSmoke(t *testing.T) {
	const cores = 64
	cfg := TableI(cores).BenchScale().WithWindows(1_000, 5_000).WithSDCLP().WithBoundWeave(0, 4)
	names := make([]string, cores)
	rot := []string{"pr", "cc", "bfs", "tc"}
	for i := range names {
		names[i] = rot[i%len(rot)]
	}
	res := RunMultiCore(cfg, bwWorkloads(t, cores, 12, names))
	for i, s := range res.PerCore {
		if s.Instructions < cfg.Measure {
			t.Fatalf("core %d measured only %d instructions", i, s.Instructions)
		}
	}
}

// TestBoundWeave128CoreSmoke runs 128 simulated cores on the baseline
// machine (the SDCDir's sharer bitmap caps SDC configurations at 64).
func TestBoundWeave128CoreSmoke(t *testing.T) {
	const cores = 128
	cfg := TableI(cores).BenchScale().WithWindows(1_000, 5_000).WithBoundWeave(0, 4)
	names := make([]string, cores)
	rot := []string{"pr", "cc", "bfs", "tc"}
	for i := range names {
		names[i] = rot[i%len(rot)]
	}
	res := RunMultiCore(cfg, bwWorkloads(t, cores, 12, names))
	for i, s := range res.PerCore {
		if s.Instructions < cfg.Measure {
			t.Fatalf("core %d measured only %d instructions", i, s.Instructions)
		}
	}
}

// TestBoundWeaveIdleSlots mirrors the legacy idle-slot behaviour.
func TestBoundWeaveIdleSlots(t *testing.T) {
	cfg := TableI(2).BenchScale().WithWindows(10_000, 60_000).WithBoundWeave(0, 2)
	res := RunMultiCore(cfg, bwWorkloads(t, 2, 16, []string{"tc"}))
	if res.PerCore[0].Instructions == 0 {
		t.Fatal("active core measured nothing")
	}
	if res.PerCore[1].Instructions != 0 {
		t.Error("idle core measured instructions")
	}
}

// TestBoundWeaveCheckFullClean runs the full differential harness (PR
// 3's shadow oracle + invariant sweeps) on the parallel engine: the
// sharded oracle must see traffic, sweep, and find nothing.
func TestBoundWeaveCheckFullClean(t *testing.T) {
	cfg := TableI(2).BenchScale().WithWindows(50_000, 250_000).
		WithSDCLP().WithCheck(check.Full).WithBoundWeave(0, 4)
	res := RunMultiCore(cfg, bwWorkloads(t, 2, 18, []string{"pr", "cc"}))
	if res.Check.Violations != 0 {
		t.Fatalf("bound–weave full-check run found %d violations; first: %v",
			res.Check.Violations, res.Check.Details)
	}
	if res.Check.LoadsChecked == 0 || res.Check.StoresTracked == 0 {
		t.Fatalf("oracle saw no traffic: %+v", res.Check)
	}
	if res.Check.Sweeps == 0 {
		t.Fatal("full-check run performed no invariant sweeps")
	}
}

// TestBoundWeaveCheckCatchesBrokenInval proves the sharded oracle is
// still a real oracle under the parallel engine: the fault-injection
// hook must produce violations, exactly as on the serial engine.
func TestBoundWeaveCheckCatchesBrokenInval(t *testing.T) {
	cfg := TableI(1).BenchScale().WithWindows(200_000, 1_000_000).
		WithSDCLP().WithCheck(check.Full).WithBoundWeave(0, 2)
	cfg.BreakSDCDirInval = true
	res := RunMultiCore(cfg, bwWorkloads(t, 1, 19, []string{"cc"}))
	if res.Check.Violations == 0 {
		t.Fatal("fault-injected bound–weave run reported zero violations; the oracle is blind")
	}
	if len(res.Check.Details) == 0 {
		t.Fatal("violations counted but no details retained")
	}
}

// TestBoundWeaveRecorderQuanta checks flight-recorder integration: the
// recorder counts quanta while attached, stamps occupancy samples with
// quantum provenance, and the legacy engine stays at zero.
func TestBoundWeaveRecorderQuanta(t *testing.T) {
	cfg := TableI(1).BenchScale().WithWindows(10_000, 60_000).WithFlightRecorder(0)
	legacy := RunMultiCore(cfg, bwWorkloads(t, 1, 16, []string{"pr"}))
	if legacy.Recorders[0] == nil {
		t.Fatal("legacy run produced no recorder summary")
	}
	if q := legacy.Recorders[0].Quanta; q != 0 {
		t.Fatalf("legacy engine counted %d quanta, want 0", q)
	}

	bw := RunMultiCore(cfg.WithBoundWeave(0, 2), bwWorkloads(t, 1, 16, []string{"pr"}))
	rec := bw.Recorders[0]
	if rec == nil {
		t.Fatal("bound–weave run produced no recorder summary")
	}
	if rec.Quanta == 0 {
		t.Fatal("recorder saw no quantum boundaries under bound–weave")
	}
	stamped := 0
	for _, s := range rec.Samples {
		if s.Quantum > 0 {
			stamped++
		}
	}
	if stamped == 0 {
		t.Fatal("no occupancy sample carries a quantum stamp")
	}
}

// panicKernel is a fake kernels.Instance that emits a few records and
// then panics inside its producer goroutine — the failure mode the
// panic-capture path and the goroutine-leak contract guard against.
type panicKernel struct {
	reg   *mem.Region
	after int
}

func newPanicKernel(space *mem.Space, after int) *panicKernel {
	return &panicKernel{reg: space.Alloc("panic.buf", 1<<20, 8, mem.ClassRegular), after: after}
}

func (k *panicKernel) Info() kernels.Info              { return kernels.Info{Name: "panic"} }
func (k *panicKernel) IrregularRegions() []*mem.Region { return nil }
func (k *panicKernel) Oracle() cache.NextUseOracle     { return nil }

func (k *panicKernel) Run(tr *trace.Tracer) {
	pc := tr.Site("panic.loop")
	for i := 0; ; i++ {
		if i >= k.after {
			panic("injected kernel failure")
		}
		tr.Exec(4)
		tr.Load(pc, k.reg.Base+mem.Addr(uint64(i)*8%k.reg.Size), 8, trace.NoDep)
	}
}

// waitGoroutines waits for the goroutine count to settle back to the
// baseline (producers unwind asynchronously after stopAndDrain).
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("%d goroutines still live (baseline %d):\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestKernelPanicSurfacesAndLeaksNothing injects a panicking kernel
// into both engines: the panic must surface to the caller as a regular
// panic, and no producer goroutine may survive the run.
func TestKernelPanicSurfacesAndLeaksNothing(t *testing.T) {
	for _, mode := range []string{"legacy", "boundweave"} {
		t.Run(mode, func(t *testing.T) {
			baseline := runtime.NumGoroutine()
			cfg := TableI(2).BenchScale().WithWindows(100_000, 500_000)
			if mode == "boundweave" {
				cfg = cfg.WithBoundWeave(0, 2)
			}
			space0 := mem.NewSpace(0)
			ws := []Workload{
				{Name: "panic", Inst: newPanicKernel(space0, 10_000), Space: space0},
				kronWorkloadSlot(t, "cc", 16, 1),
			}
			panicked := func() (p any) {
				defer func() { p = recover() }()
				RunMultiCore(cfg, ws)
				return nil
			}()
			if panicked == nil {
				t.Fatal("kernel panic did not surface to the caller")
			}
			waitGoroutines(t, baseline)
		})
	}
}

// TestEarlyStopLeavesNoProducerGoroutines covers the normal early-stop
// path: windows fill while kernels are still producing; stopAndDrain
// must unwind every producer.
func TestEarlyStopLeavesNoProducerGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	cfg := TableI(2).BenchScale().WithWindows(5_000, 25_000)
	res := RunMultiCore(cfg, bwWorkloads(t, 2, 16, []string{"pr", "cc"}))
	if res.PerCore[0].Instructions < cfg.Measure {
		t.Fatal("windows did not fill")
	}
	waitGoroutines(t, baseline)
}

// TestProducerChunkRecycling verifies the free-list actually recycles
// chunk buffers: with a rendezvous-sized stream channel the producer
// must reuse a returned array instead of allocating fresh ones.
func TestProducerChunkRecycling(t *testing.T) {
	stop := &atomic.Bool{}
	free := make(chan []mcItem, 4)
	prod := &mcProducer{ch: make(chan []mcItem, 1), free: free, buf: make([]mcItem, 0, mcChunk), stop: stop}
	done := make(chan struct{})
	const chunks = 4
	go func() {
		defer close(done)
		for i := 0; i < chunks*mcChunk; i++ {
			prod.Access(trace.Record{})
		}
		prod.flushAndClose()
	}()
	seen := map[*mcItem]bool{}
	reused := false
	total := 0
	for chunk := range prod.ch {
		total += len(chunk)
		p := &chunk[0]
		if seen[p] {
			reused = true
		}
		seen[p] = true
		select {
		case free <- chunk[:0]:
		default:
		}
	}
	<-done
	if total != chunks*mcChunk {
		t.Fatalf("received %d items, want %d", total, chunks*mcChunk)
	}
	if !reused {
		t.Error("producer never reused a recycled chunk buffer")
	}
}

// TestLegacyHeapSchedulerDeterministic pins the heap-based scheduler's
// determinism: the same mix run twice must be identical (the heap's
// (clock, core) ordering replicates the old linear scan exactly; the
// golden-report CI gates additionally pin it to the historical bytes).
func TestLegacyHeapSchedulerDeterministic(t *testing.T) {
	cfg := TableI(4).BenchScale().WithWindows(10_000, 60_000).WithSDCLP()
	names := []string{"pr", "cc", "bfs", "tc"}
	a := RunMultiCore(cfg, bwWorkloads(t, 4, 16, names))
	b := RunMultiCore(cfg, bwWorkloads(t, 4, 16, names))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("legacy scheduler is nondeterministic:\nfirst:  %+v\nsecond: %+v",
			a.PerCore, b.PerCore)
	}
}
