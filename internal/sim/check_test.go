package sim

import (
	"reflect"
	"testing"

	"graphmem/internal/check"
	"graphmem/internal/kernels"
	"graphmem/internal/mem"
)

// kronWorkloadSlot prepares a kernel in the given core slot's address
// window (multi-core checked runs).
func kronWorkloadSlot(t testing.TB, kernel string, scale, slot int) Workload {
	t.Helper()
	g := testGraphCache(scale)
	space := mem.NewSpace(slot)
	inst := kernels.Registry()[kernel](g, space)
	return Workload{Name: kernel + ".kron", Inst: inst, Space: space}
}

// checkedCfg shrinks the windows so full-check runs stay fast while
// still exercising every serve path many thousands of times.
func checkedCfg() Config {
	return TableI(1).BenchScale().WithWindows(200_000, 1_000_000)
}

func TestCheckedRunBaselineClean(t *testing.T) {
	res := RunSingleCore(checkedCfg().WithCheck(check.Full), kronWorkload(t, "pr", 19))
	if res.Check.Violations != 0 {
		t.Fatalf("baseline full-check run found %d violations; first: %v",
			res.Check.Violations, res.Check.Details)
	}
	if res.Check.LoadsChecked == 0 || res.Check.StoresTracked == 0 {
		t.Fatalf("oracle saw no traffic: %+v", res.Check)
	}
	if res.Check.Sweeps == 0 {
		t.Fatal("full-check run performed no invariant sweeps")
	}
}

func TestCheckedRunSDCLPClean(t *testing.T) {
	for _, kernel := range []string{"pr", "cc"} {
		res := RunSingleCore(checkedCfg().WithSDCLP().WithCheck(check.Full), kronWorkload(t, kernel, 19))
		if res.Check.Violations != 0 {
			t.Fatalf("%s: SDC+LP full-check run found %d violations; first: %v",
				kernel, res.Check.Violations, res.Check.Details)
		}
		if res.Check.LoadsChecked == 0 {
			t.Fatalf("%s: oracle saw no loads", kernel)
		}
	}
}

func TestCheckedRunVictimCacheClean(t *testing.T) {
	res := RunSingleCore(checkedCfg().WithVictimCache(64).WithCheck(check.Full), kronWorkload(t, "pr", 19))
	if res.Check.Violations != 0 {
		t.Fatalf("victim-cache full-check run found %d violations; first: %v",
			res.Check.Violations, res.Check.Details)
	}
}

func TestCheckedMultiCoreClean(t *testing.T) {
	cfg := TableI(2).BenchScale().WithWindows(100_000, 400_000).WithSDCLP().WithCheck(check.Full)
	ws := []Workload{kronWorkload(t, "pr", 18), kronWorkloadSlot(t, "cc", 18, 1)}
	res := RunMultiCore(cfg, ws)
	if res.Check.Violations != 0 {
		t.Fatalf("multi-core full-check run found %d violations; first: %v",
			res.Check.Violations, res.Check.Details)
	}
	if res.Check.LoadsChecked == 0 {
		t.Fatal("oracle saw no loads")
	}
}

// TestCheckOffIsBitIdentical pins the harness's zero-perturbation
// property: a checked run must produce exactly the counters of an
// unchecked one, because the checker only reads through stat-free
// accessors.
func TestCheckOffIsBitIdentical(t *testing.T) {
	cfg := checkedCfg().WithSDCLP()
	off := RunSingleCore(cfg, kronWorkload(t, "pr", 19))
	full := RunSingleCore(cfg.WithCheck(check.Full), kronWorkload(t, "pr", 19))
	if !reflect.DeepEqual(off.Stats, full.Stats) {
		t.Fatalf("checked run perturbed the measured counters:\noff:  %+v\nfull: %+v",
			off.Stats, full.Stats)
	}
}

// TestBrokenSDCDirInvalCaught proves the oracle catches the bug class
// it exists for: with the fault-injection hook set, the L1 pull path
// leaves a stale untracked SDC copy behind, and a full run must flag
// it. cc (label propagation) loads and stores the same label array
// within one pass, so averse reads re-touch freshly stored blocks.
func TestBrokenSDCDirInvalCaught(t *testing.T) {
	cfg := checkedCfg().WithSDCLP().WithCheck(check.Full)
	cfg.BreakSDCDirInval = true
	res := RunSingleCore(cfg, kronWorkload(t, "cc", 19))
	if res.Check.Violations == 0 {
		t.Fatal("fault-injected run reported zero violations; the oracle is blind")
	}
	if len(res.Check.Details) == 0 {
		t.Fatal("violations counted but no details retained")
	}
}

// TestBrokenSDCDirInvalCaughtDirect drives the minimal failing
// sequence by hand: averse read fills the SDC, a friendly store pulls
// the block into the L1 (leaving, under the fault, a stale untracked
// SDC copy), and the next averse read consumes the stale copy. Both
// the load oracle and the structural sweep must flag it.
func TestBrokenSDCDirInvalCaughtDirect(t *testing.T) {
	cfg := TableI(1).WithSDCLP().WithCheck(check.Full)
	cfg.BreakSDCDirInval = true
	sys := NewSystem(cfg, make([]Workload, 1))
	c := sys.cores[0]
	addr := mem.Addr(0x10000)
	blk := addr.Block()

	c.sdcAccess(blk, addr, 8, false, 0)    // averse read: SDC owns v1
	c.l1Access(blk, addr, 8, true, 1000)   // friendly store: pulled to L1 at v2, stale SDC copy left
	c.sdcAccess(blk, addr, 8, false, 2000) // averse read: served from the stale copy
	loadViolations := sys.Checker().Violations()
	if loadViolations == 0 {
		t.Fatal("stale SDC serve not flagged by the load oracle")
	}
	sys.CheckInvariants()
	if sys.Checker().Violations() == loadViolations {
		t.Fatal("untracked SDC copy not flagged by the structural sweep")
	}
}

// TestL1PullLeavesNoStaleCopy is the mirror image: without the fault,
// the same sequence must be perfectly clean.
func TestL1PullLeavesNoStaleCopy(t *testing.T) {
	cfg := TableI(1).WithSDCLP().WithCheck(check.Full)
	sys := NewSystem(cfg, make([]Workload, 1))
	c := sys.cores[0]
	addr := mem.Addr(0x10000)
	blk := addr.Block()

	c.sdcAccess(blk, addr, 8, false, 0)
	c.l1Access(blk, addr, 8, true, 1000)
	c.sdcAccess(blk, addr, 8, false, 2000)
	sys.CheckInvariants()
	if n := sys.Checker().Violations(); n != 0 {
		t.Fatalf("clean sequence produced %d violations: %v", n, sys.Checker().Details())
	}
}
