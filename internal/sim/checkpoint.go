// Warm-up checkpointing for the statistical sampling engine: the
// machine state functional warming builds — cache/TLB/LP/SDCDir tags
// and recency, MSHR occupancy (always empty after a warm-up), DRAM open
// rows, and the four architectural CPU counters — serializes into one
// payload that internal/sample's store wraps in a versioned, checksummed
// file. A sweep of N configs sharing a workload and warm-relevant
// configuration then replays one warm-up instead of N: the other N-1
// runs drain the record stream (counting instructions only) to the
// recorded position and decode the captured state, which is
// byte-identical to having warmed in place.
package sim

import (
	"fmt"

	"graphmem/internal/sample"
)

// encodeWarmState serializes core 0's warm state plus the shared LLC,
// SDC directory and DRAM row state. The CPU counters come first: the
// leading uint64 is the instruction position the drain on a checkpoint
// hit runs to, read back without decoding the rest.
func (s *System) encodeWarmState() []byte {
	c := s.cores[0]
	buf := make([]byte, 0, 1<<16)
	buf = c.cpuCore.EncodeState(buf)
	buf = c.l1d.EncodeState(buf)
	if c.victim != nil {
		buf = c.victim.EncodeState(buf)
	}
	buf = c.l2.EncodeState(buf)
	if c.sdc != nil {
		buf = c.sdc.EncodeState(buf)
	}
	buf = c.tlbs.EncodeState(buf)
	if c.lp != nil {
		buf = c.lp.EncodeState(buf)
	}
	buf = s.llc.EncodeState(buf)
	if s.sdcDir != nil {
		buf = s.sdcDir.EncodeState(buf)
	}
	buf = s.dram.EncodeState(buf)
	return buf
}

// decodeWarmState restores the state encodeWarmState captured. The
// structure set and geometries must match the encoder's — the store key
// covers every field that shapes the payload, so a mismatch here means
// a key collision or a corrupted store entry.
func (s *System) decodeWarmState(data []byte) error {
	c := s.cores[0]
	var err error
	if data, err = c.cpuCore.DecodeState(data); err != nil {
		return err
	}
	if data, err = c.l1d.DecodeState(data); err != nil {
		return err
	}
	if c.victim != nil {
		if data, err = c.victim.DecodeState(data); err != nil {
			return err
		}
	}
	if data, err = c.l2.DecodeState(data); err != nil {
		return err
	}
	if c.sdc != nil {
		if data, err = c.sdc.DecodeState(data); err != nil {
			return err
		}
	}
	if data, err = c.tlbs.DecodeState(data); err != nil {
		return err
	}
	if c.lp != nil {
		if data, err = c.lp.DecodeState(data); err != nil {
			return err
		}
	}
	if data, err = s.llc.DecodeState(data); err != nil {
		return err
	}
	if s.sdcDir != nil {
		if data, err = s.sdcDir.DecodeState(data); err != nil {
			return err
		}
	}
	if data, err = s.dram.DecodeState(data); err != nil {
		return err
	}
	if len(data) != 0 {
		return fmt.Errorf("sim: checkpoint payload has %d trailing bytes", len(data))
	}
	return nil
}

// resumeFromCheckpoint ends the drain: the record stream now sits
// exactly where the captured warm-up ended, so restoring the payload
// reproduces the uninterrupted run's state byte for byte. The window
// then opens the same way a fresh warm-up's would.
func (c *coreCtx) resumeFromCheckpoint() {
	if err := c.sys.decodeWarmState(c.ckptPayload); err != nil {
		// The store verified the file checksum, so reaching here means a
		// key collision: a payload captured under a different machine
		// shape. warmKey is wrong, not the data.
		panic(fmt.Sprintf("sim: checkpoint state mismatch: %v", err))
	}
	c.ckptPayload = nil
	c.warmMode = warmFunctional
	c.sys.warming = true
	c.beginMeasureSampled()
	c.rearm()
}

// warmKey derives the checkpoint-store key for this config + workload.
// Only warm-relevant configuration enters the hash: structure
// geometries, replacement and routing selections, the warm-up length,
// and the fault hook — everything that shapes the warm state or the
// payload layout. Latencies, MSHR capacities, measurement and sampling
// schedules, and the config's display name deliberately do not, so a
// sweep varying only those shares one warm-up.
func warmKey(cfg Config, workload string) string {
	conf := fmt.Sprintf(
		"cores%d|route%d|l1d%d/%d,m%v|vc%d|l2%d/%d,m%v,dist%v/%d|llc%d/%d,m%v,topt%v,rrip%v,popt%v|sdc%d/%d,m%v|lp%d/%d/%d,ad%v|dir%d/%d|dram%+v,ch%d|pf%v|warm%d|mis%v",
		cfg.Cores, cfg.Routing,
		cfg.L1D.SizeBytes, cfg.L1D.Ways, cfg.L1D.MSHRs > 0,
		cfg.VictimEntries,
		cfg.L2.SizeBytes, cfg.L2.Ways, cfg.L2.MSHRs > 0, cfg.L2Distill, cfg.L2DistillWays,
		cfg.LLCPerCoreBytes, cfg.LLCWays, cfg.LLCMSHRs > 0, cfg.LLCTOPT, cfg.LLCRRIP, cfg.LLCPOPT,
		cfg.SDC.SizeBytes, cfg.SDC.Ways, cfg.SDC.MSHRs > 0,
		cfg.LP.Entries, cfg.LP.Ways, cfg.LP.Tau, cfg.LPAdaptive,
		cfg.SDCDirEntriesPerCore, cfg.SDCDirWays,
		cfg.DRAM, cfg.DRAMChannels,
		cfg.NoPrefetch, cfg.Warmup, cfg.Sampling.MisWarm,
	)
	// The prefetcher preset shapes the warm state (which prefetchers
	// filled what); it extends the key only when non-default so every
	// existing checkpoint address survives. BranchMissPenalty is
	// timing-only and deliberately absent: all penalty sweeps share one
	// warm-up.
	if cfg.Prefetchers != "" {
		conf += "|pfset" + cfg.Prefetchers
	}
	return sample.Key(workload, conf)
}
