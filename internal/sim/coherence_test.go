package sim

import (
	"math/rand/v2"
	"testing"

	"graphmem/internal/cache"
	"graphmem/internal/mem"
)

// cohSystem builds a 2-core SDC+LP machine with no workloads, for
// driving the memory paths directly.
func cohSystem(t *testing.T) *System {
	t.Helper()
	cfg := TableI(2).BenchScale().WithSDCLP()
	return NewSystem(cfg, make([]Workload, 2))
}

// sdcRead/sdcWrite push an access down the SDC path of core i.
func sdcRead(s *System, coreID int, blk mem.BlockAddr, now int64) mem.Response {
	c := s.cores[coreID]
	return c.sdcAccess(blk, blk.Addr(), 4, false, now)
}

func sdcWrite(s *System, coreID int, blk mem.BlockAddr, now int64) mem.Response {
	c := s.cores[coreID]
	return c.sdcAccess(blk, blk.Addr(), 4, true, now)
}

func TestSDCReadFillsAndTracks(t *testing.T) {
	s := cohSystem(t)
	resp := sdcRead(s, 0, 100, 0)
	if resp.Source != mem.ServedDRAM {
		t.Errorf("cold SDC read served by %v", resp.Source)
	}
	if !s.cores[0].sdc.Probe(100) {
		t.Error("block not filled into SDC")
	}
	sharers, _, ok := s.sdcDir.Lookup(100)
	if !ok || sharers != 1 {
		t.Errorf("SDCDir sharers = %b, ok=%v", sharers, ok)
	}
	// Second read hits locally.
	resp = sdcRead(s, 0, 100, 1000)
	if resp.Source != mem.ServedSDC {
		t.Errorf("warm SDC read served by %v", resp.Source)
	}
}

func TestCrossSDCReadSharing(t *testing.T) {
	s := cohSystem(t)
	sdcRead(s, 0, 100, 0)
	resp := sdcRead(s, 1, 100, 1000)
	if resp.Source != mem.ServedRemote {
		t.Errorf("remote SDC copy served by %v, want remote transfer", resp.Source)
	}
	sharers, state, _ := s.sdcDir.Lookup(100)
	if sharers != 0b11 {
		t.Errorf("sharers = %b, want both cores", sharers)
	}
	_ = state
	if !s.cores[1].sdc.Probe(100) {
		t.Error("reader's SDC not filled")
	}
}

func TestSDCWriteInvalidatesRemoteCopies(t *testing.T) {
	s := cohSystem(t)
	sdcRead(s, 0, 100, 0)
	sdcRead(s, 1, 100, 1000)
	// Core 1 writes: core 0's copy must die; core 1 owns Modified.
	sdcWrite(s, 1, 100, 2000)
	if s.cores[0].sdc.Probe(100) {
		t.Error("writer did not invalidate the remote SDC copy")
	}
	sharers, state, ok := s.sdcDir.Lookup(100)
	if !ok || sharers != 0b10 {
		t.Errorf("sharers = %b after write", sharers)
	}
	if state.String() != "M" {
		t.Errorf("state = %v, want Modified", state)
	}
}

func TestDirtySDCDataReachesDRAMOnRemoteWrite(t *testing.T) {
	s := cohSystem(t)
	sdcWrite(s, 0, 100, 0) // dirty in SDC0
	before := s.dram.TotalStats().Writes
	sdcWrite(s, 1, 100, 1000) // invalidates dirty copy -> DRAM write-back
	if got := s.dram.TotalStats().Writes - before; got == 0 {
		t.Error("dirty remote copy was not written back")
	}
}

func TestL1PathPullsBlockOutOfOwnSDC(t *testing.T) {
	s := cohSystem(t)
	sdcWrite(s, 0, 100, 0) // dirty in SDC
	c := s.cores[0]
	resp := c.l1Access(100, mem.Addr(100<<6), 4, false, 1000)
	if resp.Source != mem.ServedSDC {
		t.Errorf("friendly access to SDC-resident block served by %v", resp.Source)
	}
	if c.sdc.Probe(100) {
		t.Error("block still in SDC after transfer to L1")
	}
	if !c.l1d.Probe(100) {
		t.Error("block not in L1D after transfer")
	}
	if _, dirty := c.l1d.ProbeDirty(100); !dirty {
		t.Error("dirtiness lost moving SDC -> L1D")
	}
	if sharers, _, ok := s.sdcDir.Lookup(100); ok && sharers != 0 {
		t.Errorf("SDCDir still tracks %b after transfer", sharers)
	}
}

func TestLLCMissPullsBlockOutOfRemoteSDC(t *testing.T) {
	s := cohSystem(t)
	sdcWrite(s, 1, 100, 0) // dirty in core 1's SDC
	before := s.dram.TotalStats().Writes
	// Core 0 demands the block through the conventional path; the LLC
	// miss must find it via the SDCDir and invalidate it.
	c := s.cores[0]
	resp := c.l1Access(100, mem.Addr(100<<6), 4, false, 1000)
	if resp.Source == mem.ServedDRAM {
		t.Error("LLC miss went to DRAM despite a valid SDC copy")
	}
	if s.cores[1].sdc.Probe(100) {
		t.Error("remote SDC copy survived hierarchy demand")
	}
	if s.dram.TotalStats().Writes == before {
		t.Error("dirty SDC copy not written back on hierarchy demand")
	}
}

func TestSDCVictimWritebackAndDirCleanup(t *testing.T) {
	s := cohSystem(t)
	c := s.cores[0]
	// Fill one SDC set past capacity with dirty lines. Bench SDC is
	// 4 KiB 2-way = 32 sets; blocks k*32 share set 0.
	sets := int64(c.sdc.Config().Sets())
	before := s.dram.TotalStats().Writes
	for k := int64(0); k < 4; k++ {
		sdcWrite(s, 0, mem.BlockAddr(k*sets), int64(k)*1000)
	}
	if got := s.dram.TotalStats().Writes - before; got < 2 {
		t.Errorf("expected dirty victims written back, got %d writes", got)
	}
	// Evicted blocks must not linger in the SDCDir as sharers.
	if sharers, _, ok := s.sdcDir.Lookup(0); ok && sharers != 0 {
		t.Error("evicted block still tracked in SDCDir")
	}
}

// TestSDCDirPrecisionInvariant checks Section III-C's "precise
// information" property: any block present in an SDC is tracked by the
// SDCDir with that core's sharer bit set.
func TestSDCDirPrecisionInvariant(t *testing.T) {
	s := cohSystem(t)
	r := rand.New(rand.NewPCG(1, 2))
	now := int64(0)
	for op := 0; op < 5000; op++ {
		coreID := r.IntN(2)
		blk := mem.BlockAddr(r.IntN(256))
		now += 10
		switch r.IntN(4) {
		case 0:
			sdcWrite(s, coreID, blk, now)
		case 1, 2:
			sdcRead(s, coreID, blk, now)
		default:
			c := s.cores[coreID]
			c.l1Access(blk, blk.Addr(), 4, r.IntN(2) == 0, now)
		}
	}
	for i, c := range s.cores {
		var violations int
		c.sdc.ForEachValid(func(ln *cache.Line) {
			sharers, _, ok := s.sdcDir.Lookup(ln.Blk)
			if !ok || sharers&(1<<i) == 0 {
				violations++
			}
		})
		if violations > 0 {
			t.Errorf("core %d: %d SDC lines untracked by SDCDir", i, violations)
		}
	}
}
