// Package sim assembles the full simulated machine of Table I — cores,
// TLBs, L1D/L2/LLC caches with their prefetchers, the SDC + LP + SDCDir
// proposal, an idealized full-map cache directory, and DDR4 DRAM — and
// runs workloads through it in single-core and multi-core modes.
package sim

import (
	"fmt"

	"graphmem/internal/cache"
	"graphmem/internal/check"
	"graphmem/internal/coherence"
	corepkg "graphmem/internal/core"
	"graphmem/internal/cpu"
	"graphmem/internal/dram"
	"graphmem/internal/obs"
	"graphmem/internal/sample"
)

// RoutingMode selects how memory accesses are routed to the SDC.
type RoutingMode int

// Routing modes.
const (
	// RouteNone disables the SDC entirely (Baseline and prior-work
	// configurations).
	RouteNone RoutingMode = iota
	// RouteLP consults the Large Predictor per access (the proposal).
	RouteLP
	// RouteExpert uses the kernel's per-data-structure annotations
	// (the Expert Programmer baseline of Section V-C).
	RouteExpert
	// RouteBypass classifies with the LP but, instead of an SDC,
	// cache-averse accesses simply bypass the L2 and LLC on their way
	// to DRAM and are not cached anywhere above DRAM — the Selective
	// Cache idea (Gonzalez et al.) the paper's Related Work contrasts
	// against. Isolates the SDC's contribution from pure bypassing.
	RouteBypass
)

// String implements fmt.Stringer.
func (m RoutingMode) String() string {
	switch m {
	case RouteNone:
		return "none"
	case RouteLP:
		return "lp"
	case RouteExpert:
		return "expert"
	case RouteBypass:
		return "bypass"
	default:
		return fmt.Sprintf("RoutingMode(%d)", int(m))
	}
}

// Config is a full system configuration.
type Config struct {
	// Name labels the configuration in reports ("Baseline", "SDC+LP"...).
	Name string
	// Cores is the number of cores.
	Cores int

	CPU cpu.Config

	// L1D, L2 are per-core private caches; LLC is shared and sized at
	// LLCPerCoreBytes * Cores.
	L1D, L2         cache.Config
	LLCPerCoreBytes int
	LLCWays         int
	LLCLatency      int64
	LLCMSHRs        int

	// LLCTOPT selects the transpose-driven T-OPT replacement at the
	// LLC (needs workload oracles).
	LLCTOPT bool
	// LLCRRIP selects SRRIP replacement at the LLC (related-work
	// comparison; the paper cites RRIP-family policies as struggling
	// with graph workloads).
	LLCRRIP bool
	// LLCPOPT degrades T-OPT to its practical variant (P-OPT, Balaji
	// et al.): one LLC way per set is given up to the cached
	// re-reference matrix and the oracle's ranks are quantized to
	// coarse epochs.
	LLCPOPT bool
	// L2Distill turns the L2 into a Line Distillation cache.
	L2Distill     bool
	L2DistillWays int

	// Routing selects the SDC routing mode; SDC/LP/SDCDir are only
	// used when Routing != RouteNone.
	Routing              RoutingMode
	SDC                  cache.Config
	LP                   corepkg.LPConfig
	SDCDirEntriesPerCore int
	SDCDirWays           int

	// DirLatency is the cache-directory round latency charged to
	// coherence checks (the directory is co-located with the LLC).
	DirLatency int64

	// NoPrefetch disables every hardware prefetcher (ablation).
	NoPrefetch bool

	// Prefetchers selects a named prefetcher preset for the competitive
	// baseline suite: "" (the default, Table I's next-line + SPP),
	// "none", "nextline", "spp" (the default wiring, spelled out),
	// "stride" (PC-keyed stride detector at the L2), "imp"
	// (indirect-memory prefetcher on the demand-load stream), "pickle"
	// (cross-core LLC prefetcher) or "spp+imp". NoPrefetch wins when
	// both are set. Unknown names panic in NewSystem.
	Prefetchers string

	// BranchMissPenalty, when positive, injects pipeline-refill stalls
	// of that many cycles on a pseudo-random ~1/32 of trace records,
	// modeling branch mispredictions on data-dependent graph branches
	// (sensitivity knob; see cpu.Config.BranchMissPenalty). Zero — the
	// default, matching Table I — changes nothing.
	BranchMissPenalty int64

	// VictimEntries, when positive, attaches a fully-associative
	// victim cache (Jouppi) of that many lines beside the L1D — the
	// conflict-miss-oriented related-work design of Section VI.
	VictimEntries int

	// LPAdaptive replaces the fixed τ_glob with the online-adaptive
	// threshold extension (see core.AdaptiveLP).
	LPAdaptive bool

	DRAM         dram.Config
	DRAMChannels int

	// Warmup and Measure are the per-core instruction windows.
	Warmup, Measure int64

	// EpochInterval, when positive, snapshots the full per-core counter
	// set every EpochInterval retired instructions inside the
	// measurement window, yielding the per-epoch telemetry series in
	// Result.Epochs / MultiResult.Epochs. Zero (the default) disables
	// sampling at no cost to the core loop.
	EpochInterval int64

	// FlightRecorder enables the memory-hierarchy flight recorder
	// (internal/obs.Recorder): per-level load-to-use latency histograms,
	// served-by provenance, MSHR/DRAM occupancy samples and LP decision
	// counts, gathered over the measurement window only. Off (the
	// default) costs one nil compare per hook site and keeps the run
	// bit-identical to an unrecorded one.
	FlightRecorder bool
	// FRInterval is the flight recorder's occupancy-sampling interval in
	// retired instructions. Zero picks Measure/256 (min 1).
	FRInterval int64

	// CheckLevel enables the differential correctness harness
	// (internal/check): check.OracleOnly shadows every block with an
	// architectural version and validates every demand load;
	// check.Full adds periodic cache + SDCDir invariant sweeps. Off
	// (the default) costs one nil compare per hook site and keeps the
	// run bit-identical to an unchecked one.
	CheckLevel check.Level

	// BreakSDCDirInval is a fault-injection hook for testing the
	// checker itself: when set, the L1 demand path that pulls a block
	// out of the local SDC "forgets" to invalidate the SDC copy while
	// still dropping the directory entry — the canonical stale-data
	// bug class the oracle exists to catch. Never set outside tests.
	BreakSDCDirInval bool

	// Sampling, when its Period is positive, selects the statistical
	// sampling engine (internal/sample): the warm-up and the inter-sample
	// gaps run under functional warming (tags/recency/row state updated,
	// no timing or statistics), with short detailed samples every Period
	// instructions feeding per-metric confidence intervals. Requires the
	// single-core runner with checking, epochs, the flight recorder and
	// bound–weave all off; the zero value (the default) keeps every run
	// byte-identical to an unsampled one.
	Sampling SamplingConfig

	// Quantum, when positive, selects the bound–weave multi-core engine
	// (internal/sim/boundweave.go): cores run in parallel for Quantum
	// dispatch cycles against a frozen view of the shared LLC/DRAM/
	// SDCDir, logging shared-domain events, which a serial weave phase
	// then replays in deterministic (timestamp, core, seq) order. Zero
	// (the default) keeps the legacy serial interleaving engine, whose
	// report bytes are pinned by the golden-report CI gates. Results
	// under bound–weave are identical at any WeaveWorkers count.
	Quantum int64
	// WeaveWorkers bounds the host goroutines driving bound phases
	// (0 = GOMAXPROCS). It affects wall-clock only, never results, and
	// is deliberately excluded from harness memoization keys.
	WeaveWorkers int
}

// SamplingConfig drives the statistical sampling engine. The embedded
// sample.Plan carries the schedule (Period, SampleLen, seedless
// Offset); the extra fields bind the run to a checkpoint store and the
// fault-injection hook.
type SamplingConfig struct {
	sample.Plan

	// Store, when non-nil, is the warm-up checkpoint store: the runner
	// keys it by (workload, warm-relevant config, state version) and
	// either restores the warm-up state from it or captures one at the
	// warm-up end, so a sweep of configs sharing a workload performs one
	// warm-up instead of N. Wall-clock only; counters are unaffected
	// (resume is byte-identical to an uninterrupted warm-up).
	Store *sample.Store

	// MisWarm is a fault-injection hook for testing the sampled-vs-full
	// error gate: functional warming still counts instructions but skips
	// every structure touch, so samples run against cold caches and the
	// estimates drift far past the gate's tolerance. Never set outside
	// tests and the CI gate's self-check.
	MisWarm bool
}

// WithSampling returns a copy running the statistical sampler with a
// measured detailed sample of length instructions every period
// instructions, phase-shifted by offset, each preceded by a discarded
// detailed-warm prefix of the same length (override with
// WithSampleWarm). The Name is unchanged: sampling estimates the same
// configuration, it does not define a new one.
func (c Config) WithSampling(period, length, offset int64) Config {
	c.Sampling.Period = period
	c.Sampling.SampleLen = length
	c.Sampling.Offset = offset
	c.Sampling.DetailWarm = length
	return c
}

// WithSampleWarm returns a copy with the per-sample detailed-warm
// prefix set to n instructions (0 measures from the first detailed
// instruction, maximizing speed at the cost of cold-structure bias).
func (c Config) WithSampleWarm(n int64) Config {
	c.Sampling.DetailWarm = n
	return c
}

// WithCheckpointStore returns a copy using st for warm-up checkpoints
// (only meaningful together with WithSampling).
func (c Config) WithCheckpointStore(st *sample.Store) Config {
	c.Sampling.Store = st
	return c
}

// DefaultQuantum is the bound–weave cycle quantum WithBoundWeave picks
// when given 0 (~1k cycles, the ZSim ballpark: long enough to amortize
// the weave barrier, short enough to keep cross-core timing skew small).
const DefaultQuantum = 1024

// WithBoundWeave returns a copy running the bound–weave parallel
// engine with the given cycle quantum (0 picks DefaultQuantum) and
// host worker count (0 = GOMAXPROCS). The Name is unchanged: counters
// depend on the quantum but not on the worker count.
func (c Config) WithBoundWeave(quantum int64, workers int) Config {
	if quantum <= 0 {
		quantum = DefaultQuantum
	}
	c.Quantum = quantum
	c.WeaveWorkers = workers
	return c
}

// TableI returns the paper's baseline configuration (Table I) for the
// given core count, with the default simulation windows.
func TableI(cores int) Config {
	return Config{
		Name:  "Baseline",
		Cores: cores,
		CPU:   cpu.DefaultConfig(),
		L1D: cache.Config{
			Name: "L1D", SizeBytes: 32 << 10, Ways: 8, Latency: 4, MSHRs: 10,
		},
		L2: cache.Config{
			Name: "L2C", SizeBytes: 1 << 20, Ways: 16, Latency: 10, MSHRs: 16,
		},
		LLCPerCoreBytes: 1408 << 10, // 1.375 MiB
		LLCWays:         11,
		LLCLatency:      56,
		LLCMSHRs:        64,
		SDC: cache.Config{
			Name: "SDC", SizeBytes: 8 << 10, Ways: 2, Latency: 1, MSHRs: 10,
		},
		LP:                   corepkg.DefaultLPConfig(),
		SDCDirEntriesPerCore: 128,
		SDCDirWays:           8,
		DirLatency:           56,
		DRAM:                 dram.DefaultConfig(),
		DRAMChannels:         cores, // Table I provisions DRAM per core
		Warmup:               200_000,
		Measure:              1_000_000,
	}
}

// WithWindows returns a copy with the given warm-up and measurement
// windows (instructions per core).
func (c Config) WithWindows(warmup, measure int64) Config {
	c.Warmup, c.Measure = warmup, measure
	return c
}

// WithEpochInterval returns a copy with epoch telemetry sampling every
// n retired instructions (0 disables).
func (c Config) WithEpochInterval(n int64) Config {
	c.EpochInterval = n
	return c
}

// WithCheck returns a copy running under the given differential-check
// level (see internal/check).
func (c Config) WithCheck(l check.Level) Config {
	c.CheckLevel = l
	return c
}

// WithFlightRecorder returns a copy with the memory-hierarchy flight
// recorder enabled, sampling occupancy every interval retired
// instructions (0 picks Measure/256).
func (c Config) WithFlightRecorder(interval int64) Config {
	c.FlightRecorder = true
	c.FRInterval = interval
	return c
}

// frInterval resolves the effective flight-recorder sampling interval.
func (c Config) frInterval() int64 {
	if c.FRInterval > 0 {
		return c.FRInterval
	}
	if iv := c.Measure / 256; iv > 0 {
		return iv
	}
	return 1
}

// ManifestInfo summarizes the configuration for an obs run manifest.
func (c Config) ManifestInfo() obs.RunConfig {
	return obs.RunConfig{
		Name:          c.Name,
		Cores:         c.Cores,
		Routing:       c.Routing.String(),
		L1DBytes:      c.L1D.SizeBytes,
		SDCBytes:      c.SDC.SizeBytes,
		L2Bytes:       c.L2.SizeBytes,
		LLCBytes:      c.LLCPerCoreBytes * c.Cores,
		Warmup:        c.Warmup,
		Measure:       c.Measure,
		EpochInterval: c.EpochInterval,
		SamplePeriod:  c.Sampling.Period,
		SampleLen:     c.Sampling.SampleLen,
		SampleOffset:  c.Sampling.Offset,
		SampleWarm:    c.Sampling.DetailWarm,
	}
}

// WithSDCLP returns the SDC+LP proposal configuration.
func (c Config) WithSDCLP() Config {
	c.Name = "SDC+LP"
	c.Routing = RouteLP
	return c
}

// WithAdaptiveLP returns the SDC+LP configuration with the adaptive
// τ_glob extension enabled (this repository's future-work feature; the
// paper uses a fixed τ_glob = 8).
func (c Config) WithAdaptiveLP() Config {
	c.Name = "SDC+LP adaptive-tau"
	c.Routing = RouteLP
	c.LPAdaptive = true
	return c
}

// WithBypassOnly returns the Selective-Cache-style ablation: LP-driven
// L2/LLC bypass with no SDC to catch short-term reuse.
func (c Config) WithBypassOnly() Config {
	c.Name = "LP bypass (no SDC)"
	c.Routing = RouteBypass
	return c
}

// WithExpert returns the Expert Programmer configuration: the SDC fed
// by per-data-structure annotations instead of the LP.
func (c Config) WithExpert() Config {
	c.Name = "Expert"
	c.Routing = RouteExpert
	return c
}

// WithTOPT returns the T-OPT comparison configuration.
func (c Config) WithTOPT() Config {
	c.Name = "T-OPT"
	c.LLCTOPT = true
	return c
}

// WithRRIP returns the SRRIP-LLC comparison configuration.
func (c Config) WithRRIP() Config {
	c.Name = "SRRIP"
	c.LLCRRIP = true
	return c
}

// WithPOPT returns the P-OPT configuration: the practical
// implementation of T-OPT (Balaji et al.), which stores a quantized
// re-reference matrix through the LLC instead of consulting an ideal
// oracle. Modelled as T-OPT with one LLC way sacrificed to the cached
// matrix and epoch-coarsened ranks.
func (c Config) WithPOPT() Config {
	c.Name = "P-OPT"
	c.LLCTOPT = true
	c.LLCPOPT = true
	return c
}

// WithDistill returns the Distill Cache comparison configuration: a
// quarter of the L2's ways become the word-organized cache.
func (c Config) WithDistill() Config {
	c.Name = "Distill"
	c.L2Distill = true
	c.L2DistillWays = c.L2.Ways / 4
	return c
}

// WithBigL1D returns the "L1D 40KB ISO" configuration: the SDC storage
// budget folded into the L1D as extra ways (40 KiB 10-way at Table I
// scale). The set count stays fixed so the geometry remains valid at
// any profile scale.
func (c Config) WithBigL1D() Config {
	c.Name = "L1D 40KB ISO"
	sets := c.L1D.Sets()
	c.L1D.SizeBytes += c.SDC.SizeBytes
	if c.L1D.SizeBytes%(sets*64) != 0 {
		panic("sim: L1D ISO size not way-aligned")
	}
	c.L1D.Ways = c.L1D.SizeBytes / (sets * 64)
	return c
}

// With2xLLC returns the doubled-LLC comparison configuration.
func (c Config) With2xLLC() Config {
	c.Name = "2xLLC"
	c.LLCPerCoreBytes *= 2
	return c
}

// WithSDCSize reconfigures the SDC size per the Section V-B1 design
// space exploration: 8 KiB (2-way, 1 cycle), 16 KiB (4-way, 3 cycles)
// or 32 KiB (8-way, 4 cycles).
func (c Config) WithSDCSize(kb int) Config {
	switch kb {
	case 8:
		c.SDC.SizeBytes, c.SDC.Ways, c.SDC.Latency = 8<<10, 2, 1
	case 16:
		c.SDC.SizeBytes, c.SDC.Ways, c.SDC.Latency = 16<<10, 4, 3
	case 32:
		c.SDC.SizeBytes, c.SDC.Ways, c.SDC.Latency = 32<<10, 8, 4
	default:
		panic(fmt.Sprintf("sim: unsupported SDC size %d KB", kb))
	}
	c.Name = fmt.Sprintf("SDC+LP %dKB", kb)
	return c
}

// WithLP overrides the LP geometry (Sections V-B2/V-B3).
func (c Config) WithLP(entries, ways int, tau uint64) Config {
	c.LP = corepkg.LPConfig{Entries: entries, Ways: ways, Tau: tau}
	c.Name = fmt.Sprintf("SDC+LP lp(%d,%dw,τ%d)", entries, ways, tau)
	return c
}

// WithVictimCache returns the victim-cache comparison configuration:
// a small fully-associative buffer catching L1D eviction victims
// (Jouppi 1990), which relies on conflict locality the paper argues
// graph gathers lack.
func (c Config) WithVictimCache(entries int) Config {
	c.Name = fmt.Sprintf("VictimCache-%d", entries)
	c.VictimEntries = entries
	return c
}

// WithoutPrefetchers disables the next-line and SPP prefetchers — the
// ablation isolating how much of each scheme's benefit depends on
// prefetching.
func (c Config) WithoutPrefetchers() Config {
	c.Name += " noPF"
	c.NoPrefetch = true
	return c
}

// ValidPrefetchers reports whether preset names a known prefetcher
// preset ("" — the default wiring — counts). NewSystem panics on
// anything else; CLI flag parsing uses this to fail politely first.
func ValidPrefetchers(preset string) bool {
	switch preset {
	case "", "none", "nextline", "spp", "stride", "imp", "pickle", "spp+imp":
		return true
	}
	return false
}

// WithPrefetchers returns a copy running the named prefetcher preset
// (see Config.Prefetchers). The Name is unchanged — presets are a swept
// axis, keyed in memo/store keys by a |pf<preset> segment instead.
func (c Config) WithPrefetchers(preset string) Config {
	c.Prefetchers = preset
	return c
}

// WithBranchMissPenalty returns a copy injecting branch-misprediction
// stalls of the given refill depth. The Name is unchanged — the penalty
// is a swept sensitivity axis, keyed by a |bp<n> memo segment.
func (c Config) WithBranchMissPenalty(cycles int64) Config {
	c.BranchMissPenalty = cycles
	return c
}

// WithDirLatency overrides the coherence-directory round latency — the
// ablation for the SDC miss path's "lightweight coherence message"
// cost (Section III-D).
func (c Config) WithDirLatency(cycles int64) Config {
	c.Name += fmt.Sprintf(" dir%d", cycles)
	c.DirLatency = cycles
	return c
}

// BenchScale shrinks the main cache hierarchy by 4x (keeping the
// geometry ratios of Table I) so that proportionally smaller
// bench-profile graphs still exceed the LLC. The SDC and LP keep their
// paper sizes: the SDC's effectiveness depends on holding the hottest
// hub vertices, a working set that shrinks far more slowly than the
// graph itself.
func (c Config) BenchScale() Config {
	c.Name += " (bench-scale)"
	c.L1D.SizeBytes /= 4   // 8 KiB
	c.L2.SizeBytes /= 8    // 128 KiB
	c.LLCPerCoreBytes /= 8 // 176 KiB/core
	// The SDC keeps its full 8 KiB: its job is short-term reuse
	// capture, which does not shrink with the graph.
	return c
}

// Variants returns the seven evaluated configurations derived from c as
// the baseline, in the paper's presentation order.
func Variants(base Config) []Config {
	return []Config{
		base,
		base.WithBigL1D(),
		base.WithDistill(),
		base.WithTOPT(),
		base.With2xLLC(),
		base.WithExpert(),
		base.WithSDCLP(),
	}
}

// sdcDirConfig materializes the coherence directory configuration.
func (c Config) sdcDirConfig() coherence.Config {
	return coherence.Config{
		EntriesPerCore: c.SDCDirEntriesPerCore,
		Ways:           c.SDCDirWays,
		Cores:          c.Cores,
		Latency:        1,
	}
}

// llcConfig materializes the shared LLC configuration.
func (c Config) llcConfig() cache.Config {
	return cache.Config{
		Name:      "LLC",
		SizeBytes: c.LLCPerCoreBytes * c.Cores,
		Ways:      c.LLCWays,
		Latency:   c.LLCLatency,
		MSHRs:     c.LLCMSHRs * c.Cores,
	}
}
