package sim

import (
	"testing"

	"graphmem/internal/kernels"
	"graphmem/internal/mem"
	"graphmem/internal/obs"
)

// epochCfg is a short-window machine for sampler tests.
func epochCfg() Config {
	return TableI(1).BenchScale().WithWindows(50_000, 400_000)
}

func TestEpochSamplesTileMeasureWindow(t *testing.T) {
	cfg := epochCfg().WithEpochInterval(50_000)
	res := RunSingleCore(cfg, kronWorkload(t, "pr", 16))
	if len(res.Epochs) < 2 {
		t.Fatalf("got %d epoch samples, want >= 2", len(res.Epochs))
	}
	if got := obs.SumInstructions(res.Epochs); got != res.Stats.Instructions {
		t.Errorf("epoch instructions sum %d != measured window %d", got, res.Stats.Instructions)
	}
	// Samples are contiguous, ordered and indexed sequentially.
	for i := range res.Epochs {
		e := &res.Epochs[i]
		if e.Index != i {
			t.Errorf("epoch %d has index %d", i, e.Index)
		}
		if e.EndInstr <= e.StartInstr {
			t.Errorf("epoch %d empty or reversed: [%d, %d]", i, e.StartInstr, e.EndInstr)
		}
		if i > 0 && e.StartInstr != res.Epochs[i-1].EndInstr {
			t.Errorf("epoch %d starts at %d, previous ended at %d",
				i, e.StartInstr, res.Epochs[i-1].EndInstr)
		}
		if e.Stats.Instructions != e.Instructions() {
			t.Errorf("epoch %d delta instructions %d != boundary span %d",
				i, e.Stats.Instructions, e.Instructions())
		}
	}
	// All full epochs cover at least the interval; cycles accumulate too.
	for i := range res.Epochs[:len(res.Epochs)-1] {
		if got := res.Epochs[i].Instructions(); got < cfg.EpochInterval {
			t.Errorf("epoch %d spans %d instructions, want >= interval %d", i, got, cfg.EpochInterval)
		}
		if res.Epochs[i].Stats.Cycles <= 0 {
			t.Errorf("epoch %d has no cycles", i)
		}
	}
	// The epoch deltas sum back to the window counters.
	var sum obs.EpochSample
	for i := range res.Epochs {
		sum.Stats.Add(&res.Epochs[i].Stats)
	}
	if sum.Stats != res.Stats {
		t.Errorf("summed epoch deltas differ from window stats:\n sum %+v\n win %+v", sum.Stats, res.Stats)
	}
}

func TestEpochSamplingDoesNotPerturbResults(t *testing.T) {
	off := RunSingleCore(epochCfg(), kronWorkload(t, "bfs", 16))
	on := RunSingleCore(epochCfg().WithEpochInterval(25_000), kronWorkload(t, "bfs", 16))
	if off.Stats != on.Stats {
		t.Errorf("epoch sampling changed simulation results:\n off %+v\n on  %+v", off.Stats, on.Stats)
	}
	if len(off.Epochs) != 0 {
		t.Errorf("sampling off must yield no epochs, got %d", len(off.Epochs))
	}
	if len(on.Epochs) < 2 {
		t.Errorf("sampling on yielded %d epochs", len(on.Epochs))
	}
}

func TestEpochSamplingShortTrace(t *testing.T) {
	// A trace that ends before the windows fill still yields a
	// consistent (single-epoch-or-more) series via finish().
	cfg := TableI(1).BenchScale().WithWindows(10_000_000, 10_000_000).WithEpochInterval(100_000)
	res := RunSingleCore(cfg, kronWorkload(t, "tc", 14))
	if res.Stats.Instructions == 0 {
		t.Skip("kernel emitted nothing")
	}
	if got := obs.SumInstructions(res.Epochs); got != res.Stats.Instructions {
		t.Errorf("short-trace epochs sum %d != measured %d", got, res.Stats.Instructions)
	}
}

func TestMultiCoreEpochSeries(t *testing.T) {
	cfg := TableI(2).BenchScale().WithWindows(20_000, 120_000).WithEpochInterval(30_000)
	mkW := func(slot int, kernel string) Workload {
		g := testGraphCache(16)
		space := mem.NewSpace(slot)
		return Workload{Name: kernel, Inst: kernels.Registry()[kernel](g, space), Space: space}
	}
	res := RunMultiCore(cfg, []Workload{mkW(0, "pr"), {}})
	if len(res.Epochs) != 2 {
		t.Fatalf("epoch series count %d, want one per core", len(res.Epochs))
	}
	if len(res.Epochs[0]) < 2 {
		t.Errorf("active core has %d epochs", len(res.Epochs[0]))
	}
	if got := obs.SumInstructions(res.Epochs[0]); got != res.PerCore[0].Instructions {
		t.Errorf("core 0 epochs sum %d != measured %d", got, res.PerCore[0].Instructions)
	}
	if len(res.Epochs[1]) != 0 {
		t.Errorf("idle core has %d epochs, want 0", len(res.Epochs[1]))
	}
}
