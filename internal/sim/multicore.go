package sim

import (
	"sync/atomic"

	"graphmem/internal/check"
	"graphmem/internal/obs"
	"graphmem/internal/stats"
	"graphmem/internal/trace"
)

// Multi-core simulation runs each workload's kernel in a producer
// goroutine that streams trace items over a bounded channel; a single
// consumer (the scheduler) interleaves the streams by always advancing
// the core with the smallest local clock, which keeps the shared
// LLC/DRAM/directory timestamps near-monotonic. Cores that complete
// their measurement window keep executing — and keep contending — until
// every core has finished, exactly like ChampSim's multi-programmed
// replay; the weighted-speed-up metric of Section IV-D is then computed
// by the harness from per-thread shared and isolated IPCs.

const mcChunk = 4096

// mcItem is one element of a producer stream: either a trace record or
// a progress marker for the T-OPT oracle.
type mcItem struct {
	rec        trace.Record
	progress   uint64
	isProgress bool
}

// mcProducer is the trace.Sink running inside a kernel goroutine.
type mcProducer struct {
	ch   chan []mcItem
	buf  []mcItem
	stop *atomic.Bool
}

// Access implements trace.Sink (called from the kernel goroutine).
func (p *mcProducer) Access(r trace.Record) bool {
	p.buf = append(p.buf, mcItem{rec: r})
	if len(p.buf) >= mcChunk {
		p.ch <- p.buf
		p.buf = make([]mcItem, 0, mcChunk)
	}
	return !p.stop.Load()
}

// SetProgress implements trace.ProgressSink.
func (p *mcProducer) SetProgress(edges uint64) {
	p.buf = append(p.buf, mcItem{progress: edges, isProgress: true})
}

// flushAndClose drains the final partial chunk.
func (p *mcProducer) flushAndClose() {
	if len(p.buf) > 0 {
		p.ch <- p.buf
		p.buf = nil
	}
	close(p.ch)
}

// mcStream is the consumer-side iterator over one core's items.
type mcStream struct {
	ch     chan []mcItem
	cur    []mcItem
	pos    int
	closed bool
}

// next returns the next item, blocking on the producer; ok=false when
// the stream ended.
func (s *mcStream) next() (mcItem, bool) {
	for {
		if s.pos < len(s.cur) {
			it := s.cur[s.pos]
			s.pos++
			return it, true
		}
		if s.closed {
			return mcItem{}, false
		}
		chunk, ok := <-s.ch
		if !ok {
			s.closed = true
			return mcItem{}, false
		}
		s.cur, s.pos = chunk, 0
	}
}

// drain discards everything left in the stream (after global stop).
func (s *mcStream) drain() {
	for range s.ch {
	}
	s.closed = true
}

// MultiResult is the outcome of a multi-core run.
type MultiResult struct {
	Config string
	// PerCore holds each core's measurement-window stats; idle slots
	// have zero Instructions.
	PerCore []stats.CoreStats
	// Names are the per-slot workload names.
	Names []string
	// Epochs holds each core's epoch telemetry series (nil slices
	// unless the config's EpochInterval was positive).
	Epochs [][]obs.EpochSample
	// Check is the system-wide differential-checker outcome (zero value
	// unless the config's CheckLevel was set).
	Check check.Summary
	// Recorders holds each core's flight-recorder summary, indexed like
	// PerCore (nil entries unless the config's FlightRecorder was set
	// and the slot ran a workload). On multi-core
	// machines the private L1D/SDC/L2 telemetry is per core; shared
	// LLC/DRAM taps stay detached since their events are not
	// attributable to one core.
	Recorders []*obs.RecSummary
}

// IPCs returns the per-core measured IPCs.
func (m *MultiResult) IPCs() []float64 {
	out := make([]float64, len(m.PerCore))
	for i := range m.PerCore {
		out[i] = m.PerCore[i].IPC()
	}
	return out
}

// RunMultiCore simulates the given workloads sharing one machine. Nil
// instances mark idle cores (used for isolation runs).
func RunMultiCore(cfg Config, ws []Workload) *MultiResult {
	return RunMultiCoreOn(NewSystem(cfg, ws), ws)
}

// RunMultiCoreOn runs the mix on a pre-built system (which must have
// been constructed with the same workloads), so callers can inspect
// machine state afterwards.
func RunMultiCoreOn(sys *System, ws []Workload) *MultiResult {
	type slot struct {
		c      *coreCtx
		stream *mcStream
		prod   *mcProducer
		stop   *atomic.Bool
		alive  bool
	}
	var slots []*slot
	for i, c := range sys.cores {
		if ws[i].Inst == nil {
			slots = append(slots, &slot{c: c})
			continue
		}
		stop := &atomic.Bool{}
		prod := &mcProducer{ch: make(chan []mcItem, 4), buf: make([]mcItem, 0, mcChunk), stop: stop}
		sl := &slot{
			c:      c,
			stream: &mcStream{ch: prod.ch},
			prod:   prod,
			stop:   stop,
			alive:  true,
		}
		slots = append(slots, sl)
		inst := ws[i].Inst
		go func() {
			defer prod.flushAndClose()
			// Restart the kernel until the consumer calls a stop; a
			// kernel that emits nothing ends the stream.
			for !stop.Load() {
				tr := trace.New(prod)
				before := tr.Seq()
				inst.Run(tr)
				if tr.Seq() == before {
					return
				}
			}
		}()
	}

	active := 0
	for _, sl := range slots {
		if sl.alive {
			active++
		}
	}

	// Scheduler: repeatedly advance the live core with the smallest
	// dispatch clock, so memory requests hit the shared LLC/DRAM
	// reservations in near-timestamp order (see cpu.DispatchCycle).
	remaining := active
	for remaining > 0 {
		var pick *slot
		for _, sl := range slots {
			if !sl.alive {
				continue
			}
			if pick == nil || sl.c.cpuCore.DispatchCycle() < pick.c.cpuCore.DispatchCycle() {
				pick = sl
			}
		}
		if pick == nil {
			break
		}
		it, ok := pick.stream.next()
		if !ok {
			// Stream ended (kernel emitted nothing on restart).
			pick.alive = false
			if !pick.c.doneMeasure {
				pick.c.finish()
				remaining--
			}
			continue
		}
		if it.isProgress {
			if o, okp := pick.c.oracle.(trace.ProgressSink); okp && o != nil {
				o.SetProgress(it.progress)
			}
			continue
		}
		wasDone := pick.c.doneMeasure
		pick.c.observe(it.rec)
		if !wasDone && pick.c.doneMeasure {
			remaining--
		}
	}

	// Global stop: signal producers and drain.
	for _, sl := range slots {
		if sl.stop != nil {
			sl.stop.Store(true)
		}
	}
	for _, sl := range slots {
		if sl.stream != nil {
			sl.stream.drain()
		}
	}

	res := &MultiResult{Config: sys.cfg.Name}
	for i, sl := range slots {
		sl.c.finish()
		res.PerCore = append(res.PerCore, sl.c.measured)
		res.Names = append(res.Names, ws[i].Name)
		res.Epochs = append(res.Epochs, sl.c.epochs)
		if sl.c.recorder != nil {
			res.Recorders = append(res.Recorders, sl.c.recorder.Summary())
		} else {
			res.Recorders = append(res.Recorders, nil)
		}
	}
	sys.CheckInvariants() // final structural sweep (no-op unless check.Full)
	if sys.chk != nil {
		res.Check = sys.chk.Summary()
	}
	return res
}
