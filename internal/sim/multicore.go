package sim

import (
	"fmt"
	"sync/atomic"

	"graphmem/internal/check"
	"graphmem/internal/obs"
	"graphmem/internal/stats"
	"graphmem/internal/trace"
)

// Multi-core simulation runs each workload's kernel in a producer
// goroutine that streams trace items over a bounded channel. Two
// consumer engines exist:
//
//   - the legacy serial engine (Config.Quantum == 0, the default): a
//     single scheduler interleaves the streams by always advancing the
//     core with the smallest local clock, which keeps the shared
//     LLC/DRAM/directory timestamps near-monotonic;
//   - the bound–weave parallel engine (Config.Quantum > 0): cores run
//     concurrently for a cycle quantum against a frozen view of the
//     shared state and a serial weave replays their shared-domain
//     events in deterministic order (see boundweave.go).
//
// Cores that complete their measurement window keep executing — and
// keep contending — until every core has finished, exactly like
// ChampSim's multi-programmed replay; the weighted-speed-up metric of
// Section IV-D is then computed by the harness from per-thread shared
// and isolated IPCs.

const mcChunk = 4096

// mcItem is one element of a producer stream: either a trace record or
// a progress marker for the T-OPT oracle.
type mcItem struct {
	rec        trace.Record
	progress   uint64
	isProgress bool
}

// mcProducer is the trace.Sink running inside a kernel goroutine.
// Chunk buffers are recycled through the free channel: the consumer
// returns exhausted chunks and the producer reuses them instead of
// allocating a fresh []mcItem per chunk.
type mcProducer struct {
	ch   chan []mcItem
	free chan []mcItem
	buf  []mcItem
	stop *atomic.Bool
}

// Access implements trace.Sink (called from the kernel goroutine).
func (p *mcProducer) Access(r trace.Record) bool {
	p.buf = append(p.buf, mcItem{rec: r})
	if len(p.buf) >= mcChunk {
		p.ch <- p.buf
		select {
		case b := <-p.free:
			p.buf = b
		default:
			p.buf = make([]mcItem, 0, mcChunk)
		}
	}
	return !p.stop.Load()
}

// SetProgress implements trace.ProgressSink.
func (p *mcProducer) SetProgress(edges uint64) {
	p.buf = append(p.buf, mcItem{progress: edges, isProgress: true})
}

// flushAndClose drains the final partial chunk.
func (p *mcProducer) flushAndClose() {
	if len(p.buf) > 0 {
		p.ch <- p.buf
		p.buf = nil
	}
	close(p.ch)
}

// mcStream is the consumer-side iterator over one core's items.
type mcStream struct {
	ch     chan []mcItem
	free   chan []mcItem
	cur    []mcItem
	pos    int
	closed bool
}

// next returns the next item, blocking on the producer; ok=false when
// the stream ended. Exhausted chunks are recycled to the producer.
func (s *mcStream) next() (mcItem, bool) {
	for {
		if s.pos < len(s.cur) {
			it := s.cur[s.pos]
			s.pos++
			return it, true
		}
		if s.cur != nil {
			select {
			case s.free <- s.cur[:0]:
			default:
			}
			s.cur = nil
		}
		if s.closed {
			return mcItem{}, false
		}
		chunk, ok := <-s.ch
		if !ok {
			s.closed = true
			return mcItem{}, false
		}
		s.cur, s.pos = chunk, 0
	}
}

// drain discards everything left in the stream (after global stop).
func (s *mcStream) drain() {
	for range s.ch {
	}
	s.closed = true
	s.cur, s.pos = nil, 0
}

// mcSlot is one core's consumer-side state, shared by both engines.
// Idle slots (no workload) have a nil prod.
type mcSlot struct {
	c      *coreCtx
	stream *mcStream
	prod   *mcProducer
	stop   *atomic.Bool
	alive  bool
	// panicked holds a kernel goroutine's recovered panic value. The
	// producer stores it before flushAndClose runs (its deferral order
	// guarantees that), so the channel close that ends the stream is a
	// happens-before edge and the consumer reads it race-free.
	panicked any
}

// startSlots builds the per-core slots and launches one producer
// goroutine per active workload. A kernel panic is captured on the
// slot and the stream still closes, so the scheduler never blocks on
// a dead producer; raiseKernelPanics rethrows it after drain.
func startSlots(sys *System, ws []Workload) []*mcSlot {
	var slots []*mcSlot
	for i, c := range sys.cores {
		if ws[i].Inst == nil {
			slots = append(slots, &mcSlot{c: c})
			continue
		}
		stop := &atomic.Bool{}
		free := make(chan []mcItem, 4)
		prod := &mcProducer{ch: make(chan []mcItem, 4), free: free, buf: make([]mcItem, 0, mcChunk), stop: stop}
		sl := &mcSlot{
			c:      c,
			stream: &mcStream{ch: prod.ch, free: free},
			prod:   prod,
			stop:   stop,
			alive:  true,
		}
		slots = append(slots, sl)
		inst := ws[i].Inst
		go func() {
			defer prod.flushAndClose()
			defer func() {
				if r := recover(); r != nil {
					sl.panicked = r
				}
			}()
			// Restart the kernel until the consumer calls a stop; a
			// kernel that emits nothing ends the stream.
			for !stop.Load() {
				tr := trace.New(prod)
				before := tr.Seq()
				inst.Run(tr)
				if tr.Seq() == before {
					return
				}
			}
		}()
	}
	return slots
}

// stopAndDrain signals every producer to stop and drains the streams so
// no producer goroutine stays blocked on a full channel. It is
// idempotent (draining a closed, empty channel is a no-op), and both
// engines also run it via defer so consumer-side panics cannot leak
// producer goroutines.
func stopAndDrain(slots []*mcSlot) {
	for _, sl := range slots {
		if sl.stop != nil {
			sl.stop.Store(true)
		}
	}
	for _, sl := range slots {
		if sl.stream != nil {
			sl.stream.drain()
		}
	}
}

// raiseKernelPanics rethrows the first captured kernel-goroutine panic,
// after every producer has been stopped and drained. Before the
// capture existed a kernel panic killed the whole process; now it
// surfaces as a regular panic in the calling goroutine (which the
// harness's single-flight latches already propagate).
func raiseKernelPanics(slots []*mcSlot) {
	for _, sl := range slots {
		if sl.panicked != nil {
			panic(fmt.Sprintf("sim: kernel goroutine for core %d panicked: %v", sl.c.id, sl.panicked))
		}
	}
}

// collectMulti assembles the result after every core finished.
func collectMulti(sys *System, ws []Workload, slots []*mcSlot) *MultiResult {
	res := &MultiResult{Config: sys.cfg.Name}
	for i, sl := range slots {
		sl.c.finish()
		res.PerCore = append(res.PerCore, sl.c.measured)
		res.Names = append(res.Names, ws[i].Name)
		res.Epochs = append(res.Epochs, sl.c.epochs)
		if sl.c.recorder != nil {
			res.Recorders = append(res.Recorders, sl.c.recorder.Summary())
		} else {
			res.Recorders = append(res.Recorders, nil)
		}
	}
	return res
}

// mcHeap is a binary min-heap of live slots keyed on
// (DispatchCycle, core id) — the exact selection rule of the old
// O(cores) linear scan, which picked the first slot with the strictly
// smallest clock (i.e. ties break toward the lower core id).
type mcHeap struct {
	sl []*mcSlot
}

func (h *mcHeap) less(a, b *mcSlot) bool {
	ca, cb := a.c.cpuCore.DispatchCycle(), b.c.cpuCore.DispatchCycle()
	if ca != cb {
		return ca < cb
	}
	return a.c.id < b.c.id
}

func (h *mcHeap) push(sl *mcSlot) {
	h.sl = append(h.sl, sl)
	i := len(h.sl) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.sl[i], h.sl[p]) {
			break
		}
		h.sl[i], h.sl[p] = h.sl[p], h.sl[i]
		i = p
	}
}

// siftDown restores the heap property after the root's key grew (the
// only mutation the scheduler performs: advancing the minimum core).
func (h *mcHeap) siftDown() {
	i, n := 0, len(h.sl)
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && h.less(h.sl[l], h.sl[min]) {
			min = l
		}
		if r < n && h.less(h.sl[r], h.sl[min]) {
			min = r
		}
		if min == i {
			return
		}
		h.sl[i], h.sl[min] = h.sl[min], h.sl[i]
		i = min
	}
}

// popMin removes the root (a slot whose stream ended).
func (h *mcHeap) popMin() {
	n := len(h.sl) - 1
	h.sl[0] = h.sl[n]
	h.sl[n] = nil
	h.sl = h.sl[:n]
	if n > 0 {
		h.siftDown()
	}
}

// MultiResult is the outcome of a multi-core run.
type MultiResult struct {
	Config string
	// PerCore holds each core's measurement-window stats; idle slots
	// have zero Instructions.
	PerCore []stats.CoreStats
	// Names are the per-slot workload names.
	Names []string
	// Epochs holds each core's epoch telemetry series (nil slices
	// unless the config's EpochInterval was positive).
	Epochs [][]obs.EpochSample
	// Check is the system-wide differential-checker outcome (zero value
	// unless the config's CheckLevel was set).
	Check check.Summary
	// Recorders holds each core's flight-recorder summary, indexed like
	// PerCore (nil entries unless the config's FlightRecorder was set
	// and the slot ran a workload). On multi-core
	// machines the private L1D/SDC/L2 telemetry is per core; shared
	// LLC/DRAM taps stay detached since their events are not
	// attributable to one core.
	Recorders []*obs.RecSummary
}

// IPCs returns the per-core measured IPCs.
func (m *MultiResult) IPCs() []float64 {
	out := make([]float64, len(m.PerCore))
	for i := range m.PerCore {
		out[i] = m.PerCore[i].IPC()
	}
	return out
}

// RunMultiCore simulates the given workloads sharing one machine. Nil
// instances mark idle cores (used for isolation runs).
func RunMultiCore(cfg Config, ws []Workload) *MultiResult {
	return RunMultiCoreOn(NewSystem(cfg, ws), ws)
}

// RunMultiCoreOn runs the mix on a pre-built system (which must have
// been constructed with the same workloads), so callers can inspect
// machine state afterwards. Config.Quantum selects the engine: the
// legacy serial interleaver (0) or the bound–weave parallel engine
// (boundweave.go). The Fig. 3 Observer hook sees loads synchronously
// and is only supported by the serial engine.
func RunMultiCoreOn(sys *System, ws []Workload) *MultiResult {
	slots := startSlots(sys, ws)
	// A consumer-side panic must not leave producers blocked on their
	// channels; the explicit stopAndDrain on the normal path makes this
	// deferred one a no-op.
	defer stopAndDrain(slots)

	if sys.cfg.Quantum > 0 && sys.Observer == nil {
		return runBoundWeave(sys, ws, slots)
	}

	active := 0
	h := &mcHeap{}
	for _, sl := range slots {
		if sl.alive {
			active++
			h.push(sl)
		}
	}

	// Scheduler: repeatedly advance the live core with the smallest
	// dispatch clock, so memory requests hit the shared LLC/DRAM
	// reservations in near-timestamp order (see cpu.DispatchCycle).
	remaining := active
	for remaining > 0 && len(h.sl) > 0 {
		pick := h.sl[0]
		it, ok := pick.stream.next()
		if !ok {
			// Stream ended (kernel emitted nothing on restart).
			pick.alive = false
			h.popMin()
			if !pick.c.doneMeasure {
				pick.c.finish()
				remaining--
			}
			continue
		}
		if it.isProgress {
			// The clock is unchanged, so the root key is unchanged too.
			if o, okp := pick.c.oracle.(trace.ProgressSink); okp && o != nil {
				o.SetProgress(it.progress)
			}
			continue
		}
		wasDone := pick.c.doneMeasure
		pick.c.observe(it.rec)
		if !wasDone && pick.c.doneMeasure {
			remaining--
		}
		h.siftDown() // the root's clock advanced
	}

	stopAndDrain(slots)
	raiseKernelPanics(slots)

	res := collectMulti(sys, ws, slots)
	sys.CheckInvariants() // final structural sweep (no-op unless check.Full)
	if sys.chk != nil {
		res.Check = sys.chk.Summary()
	}
	return res
}
