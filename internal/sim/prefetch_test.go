package sim

import (
	"reflect"
	"testing"

	"graphmem/internal/check"
	"graphmem/internal/prefetch"
)

// TestPrefetchOffIsBitIdentical pins the preset plumbing's
// zero-perturbation contract: Prefetchers "none" wires exactly what
// NoPrefetch wires, so the two runs must produce bit-identical
// counters.
func TestPrefetchOffIsBitIdentical(t *testing.T) {
	cfg := TableI(1).BenchScale().WithWindows(100_000, 500_000)
	off := RunSingleCore(cfg.WithoutPrefetchers(), kronWorkload(t, "pr", 19))
	preset := RunSingleCore(cfg.WithPrefetchers("none"), kronWorkload(t, "pr", 19))
	if !reflect.DeepEqual(off.Stats, preset.Stats) {
		t.Fatalf("Prefetchers \"none\" differs from NoPrefetch:\nnoPF:   %+v\npreset: %+v",
			off.Stats, preset.Stats)
	}
}

// TestPrefetchDefaultPresetIsBitIdentical pins that spelling out the
// default wiring ("spp") changes nothing against the empty preset.
func TestPrefetchDefaultPresetIsBitIdentical(t *testing.T) {
	cfg := TableI(1).BenchScale().WithWindows(100_000, 500_000)
	def := RunSingleCore(cfg, kronWorkload(t, "pr", 19))
	spelled := RunSingleCore(cfg.WithPrefetchers("spp"), kronWorkload(t, "pr", 19))
	if !reflect.DeepEqual(def.Stats, spelled.Stats) {
		t.Fatalf("preset \"spp\" differs from the default wiring:\ndefault: %+v\nspp:     %+v",
			def.Stats, spelled.Stats)
	}
}

// TestPrefetchPresetsCheckedClean runs every non-default preset under
// the full differential checker: prefetch fills must never corrupt the
// simulated memory image, whatever the candidate source. cc gathers
// from its first record, so the indirect prefetchers actually fire
// inside the window.
func TestPrefetchPresetsCheckedClean(t *testing.T) {
	cfg := TableI(1).BenchScale().WithWindows(100_000, 500_000).WithCheck(check.Full)
	for _, preset := range []string{"none", "nextline", "stride", "imp", "pickle", "spp+imp"} {
		res := RunSingleCore(cfg.WithPrefetchers(preset), kronWorkload(t, "cc", 19))
		if res.Check.Violations != 0 {
			t.Fatalf("preset %q: full-check run found %d violations; first: %v",
				preset, res.Check.Violations, res.Check.Details)
		}
		if res.Stats.Instructions < cfg.Measure {
			t.Fatalf("preset %q measured only %d instructions", preset, res.Stats.Instructions)
		}
	}
}

// TestIMPIssuesOnGatherKernel separates imp from the plain next-line
// machine it extends: on cc — whose index loads are value-annotated and
// whose comp[NA[i]] gathers start at the first record — the indirect
// prefetcher must generate candidates and move the counters.
func TestIMPIssuesOnGatherKernel(t *testing.T) {
	cfg := TableI(1).BenchScale().WithWindows(100_000, 500_000).WithPrefetchers("imp")
	w := kronWorkload(t, "cc", 19)
	ws := make([]Workload, cfg.Cores)
	ws[0] = w
	sys := NewSystem(cfg, ws)
	res := sys.RunCore0(w)
	imp := sys.cores[0].imppf.(*prefetch.IMP)
	if imp.Issued == 0 {
		t.Fatal("the indirect prefetcher generated no candidates on cc's gather stream")
	}
	nl := RunSingleCore(cfg.WithPrefetchers("nextline"), kronWorkload(t, "cc", 19))
	if reflect.DeepEqual(nl.Stats, res.Stats) {
		t.Fatal("imp run is bit-identical to nextline: the candidates changed nothing")
	}
}

// TestBranchMissPenaltyInjectsStalls pins the sensitivity knob's sim
// plumbing: Config.BranchMissPenalty must reach the core (misses are
// counted) and perturb the run. The cycle delta's sign is not asserted
// — refill stalls are often absorbed by ROB-full dispatch, and the
// shifted issue times feed back into DRAM row timing either way; the
// direction is a workload property the prefetch figure reports, not a
// contract. Zero-penalty bit-identity is pinned by the golden tables.
func TestBranchMissPenaltyInjectsStalls(t *testing.T) {
	base := RunSingleCore(TableI(1).BenchScale().WithWindows(100_000, 500_000), kronWorkload(t, "cc", 19))
	cfg := TableI(1).BenchScale().WithWindows(100_000, 500_000).WithBranchMissPenalty(14)
	w := kronWorkload(t, "cc", 19)
	ws := make([]Workload, cfg.Cores)
	ws[0] = w
	sys := NewSystem(cfg, ws)
	res := sys.RunCore0(w)
	if got := sys.cores[0].cpuCore.BranchMisses; got == 0 {
		t.Fatal("bp14 run injected no misprediction stalls")
	}
	if res.Stats.Cycles == base.Stats.Cycles {
		t.Fatal("bp14 run's cycle count is identical to the base run's: the stalls changed nothing")
	}
}

// TestPickleBoundWeaveDeterministic extends the engine's determinism
// contract to the cross-core LLC prefetcher: Pickle observes the
// replayed (t,core,seq)-ordered miss stream, so a multi-core pickle run
// must stay byte-identical at any host worker count.
func TestPickleBoundWeaveDeterministic(t *testing.T) {
	cfg := TableI(4).BenchScale().WithWindows(20_000, 120_000).WithPrefetchers("pickle").WithBoundWeave(0, 1)
	names := []string{"pr", "cc", "bfs", "sssp"}
	ref := RunMultiCore(cfg, bwWorkloads(t, 4, 16, names))
	for _, wj := range []int{2, 8} {
		cfg2 := cfg
		cfg2.WeaveWorkers = wj
		got := RunMultiCore(cfg2, bwWorkloads(t, 4, 16, names))
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("pickle WeaveWorkers=%d result differs from the serial reference:\nref: %+v\ngot: %+v",
				wj, ref.PerCore, got.PerCore)
		}
	}
}

// TestPickleBoundWeaveCheckedClean runs the pickle preset on the
// bound–weave engine under the full checker: prefetch fills issued from
// the replay path must keep the version oracle clean.
func TestPickleBoundWeaveCheckedClean(t *testing.T) {
	cfg := TableI(2).BenchScale().WithWindows(20_000, 100_000).WithPrefetchers("pickle").
		WithBoundWeave(0, 2).WithCheck(check.Full)
	res := RunMultiCore(cfg, bwWorkloads(t, 2, 16, []string{"pr", "cc"}))
	if res.Check.Violations != 0 {
		t.Fatalf("pickle bound–weave full-check run found %d violations; first: %v",
			res.Check.Violations, res.Check.Details)
	}
}

// TestUnknownPresetPanics pins the config contract: misspelled presets
// fail loudly at construction, not silently as the default wiring.
func TestUnknownPresetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSystem accepted an unknown prefetcher preset")
		}
	}()
	RunSingleCore(TableI(1).BenchScale().WithWindows(1000, 1000).WithPrefetchers("bogus"),
		kronWorkload(t, "pr", 16))
}

func TestValidPrefetchers(t *testing.T) {
	for _, ok := range []string{"", "none", "nextline", "spp", "stride", "imp", "pickle", "spp+imp"} {
		if !ValidPrefetchers(ok) {
			t.Errorf("ValidPrefetchers(%q) = false", ok)
		}
	}
	for _, bad := range []string{"bogus", "SPP", "spp+pickle", "next-line"} {
		if ValidPrefetchers(bad) {
			t.Errorf("ValidPrefetchers(%q) = true", bad)
		}
	}
}
