package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"graphmem/internal/mem"
	"graphmem/internal/obs"
)

// frCfg is a short-window machine with the flight recorder enabled at
// the default (measure/256) sampling interval.
func frCfg() Config {
	return epochCfg().WithFlightRecorder(0)
}

func TestFlightRecorderDoesNotPerturbResults(t *testing.T) {
	off := RunSingleCore(epochCfg(), kronWorkload(t, "pr", 16))
	on := RunSingleCore(frCfg(), kronWorkload(t, "pr", 16))
	if off.Stats != on.Stats {
		t.Errorf("flight recorder changed simulation results:\n off %+v\n on  %+v", off.Stats, on.Stats)
	}
	if off.Recorder != nil {
		t.Error("recorder off must not attach a summary")
	}
	if on.Recorder == nil {
		t.Fatal("recorder on must attach a summary")
	}
}

// TestRecorderTotalsMatchWindowCounters pins the window-gating
// contract: the recorder attaches at the measurement-window open and
// detaches at the close, so every aggregate it holds equals the
// corresponding measurement-window counter delta exactly.
func TestRecorderTotalsMatchWindowCounters(t *testing.T) {
	res := RunSingleCore(epochCfg().WithSDCLP().WithFlightRecorder(0), kronWorkload(t, "pr", 16))
	rec := res.Recorder
	if rec == nil {
		t.Fatal("no recorder summary")
	}
	s := &res.Stats

	for _, c := range []struct {
		level string
		want  int64
	}{
		{"SDC", s.ServedSDC}, {"L1D", s.ServedL1D}, {"L2C", s.ServedL2},
		{"LLC", s.ServedLLC}, {"remote", s.ServedRemote}, {"DRAM", s.ServedDRAM},
	} {
		if got := rec.ServedTotal(c.level); got != c.want {
			t.Errorf("recorder served[%s] = %d, window delta = %d", c.level, got, c.want)
		}
	}
	if rec.LoadToUse.Count != s.Loads {
		t.Errorf("load-to-use count %d != window loads %d", rec.LoadToUse.Count, s.Loads)
	}
	if rec.LPAverse != s.LPPredAverse || rec.LPFriendly != s.LPPredFriendly {
		t.Errorf("LP decisions %d/%d != window %d/%d",
			rec.LPAverse, rec.LPFriendly, s.LPPredAverse, s.LPPredFriendly)
	}
	if got := rec.DRAM.RowHits + rec.DRAM.RowMisses; got != rec.DRAM.Latency.Count {
		t.Errorf("DRAM row outcomes %d != DRAM read latencies %d", got, rec.DRAM.Latency.Count)
	}
	if rec.DRAM.Latency.Count != s.DRAMReads {
		t.Errorf("recorded DRAM reads %d != window DRAM reads %d", rec.DRAM.Latency.Count, s.DRAMReads)
	}
	if len(rec.MSHR) == 0 {
		t.Error("no MSHR telemetry recorded")
	}

	// The timeline: a window-open baseline plus at least one in-window
	// sample, monotone in both clocks and cumulative counters, closing
	// on the full window totals.
	if len(rec.Samples) < 2 {
		t.Fatalf("got %d timeline samples, want >= 2", len(rec.Samples))
	}
	for i := 1; i < len(rec.Samples); i++ {
		prev, cur := &rec.Samples[i-1], &rec.Samples[i]
		if cur.Instr < prev.Instr || cur.Cycle < prev.Cycle {
			t.Errorf("sample %d clocks regress: %d/%d after %d/%d",
				i, cur.Instr, cur.Cycle, prev.Instr, prev.Cycle)
		}
		for lv := range cur.Served {
			if cur.Served[lv] < prev.Served[lv] {
				t.Errorf("sample %d served[%d] regresses", i, lv)
			}
		}
	}
	last := &rec.Samples[len(rec.Samples)-1]
	if last.Served[mem.ServedDRAM] != s.ServedDRAM || last.Served[mem.ServedL1D] != s.ServedL1D {
		t.Errorf("final sample served %v != window deltas (DRAM %d, L1D %d)",
			last.Served, s.ServedDRAM, s.ServedL1D)
	}
	if last.LPAverse != s.LPPredAverse {
		t.Errorf("final sample LP averse %d != window %d", last.LPAverse, s.LPPredAverse)
	}
}

// TestPerfettoExportMatchesRecorderTotals is the trace-export
// acceptance check: the per-interval served deltas in the Chrome
// trace-event JSON sum back to the recorder's aggregate counters.
func TestPerfettoExportMatchesRecorderTotals(t *testing.T) {
	res := RunSingleCore(frCfg(), kronWorkload(t, "pr", 16))
	var buf bytes.Buffer
	err := obs.WritePerfetto(&buf, []obs.TraceRun{{Name: "Baseline/pr.kron", Rec: res.Recorder}})
	if err != nil {
		t.Fatal(err)
	}

	var tf struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	named := false
	sums := map[string]int64{}
	for _, ev := range tf.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "process_name":
			named = true
			if ev.Args["name"] != "Baseline/pr.kron" {
				t.Errorf("process name = %v", ev.Args["name"])
			}
		case ev.Ph == "C" && ev.Name == "served (loads/interval)":
			for lv, v := range ev.Args {
				sums[lv] += int64(v.(float64))
			}
		}
	}
	if !named {
		t.Error("trace missing the process_name metadata event")
	}
	for _, lv := range res.Recorder.Levels {
		if sums[lv.Level] != lv.Served {
			t.Errorf("trace served[%s] deltas sum to %d, recorder total %d",
				lv.Level, sums[lv.Level], lv.Served)
		}
	}
	for lv, sum := range sums {
		if res.Recorder.ServedTotal(lv) != sum {
			t.Errorf("trace emits level %s (%d) absent from the summary", lv, sum)
		}
	}
}

func TestFlightRecorderMemoizesSeparately(t *testing.T) {
	// The config carries the recorder flag, so identical runs with and
	// without it must not be interchangeable result shapes.
	plain := RunSingleCore(epochCfg(), kronWorkload(t, "cc", 14))
	recd := RunSingleCore(frCfg().WithWindows(50_000, 400_000), kronWorkload(t, "cc", 14))
	if plain.Recorder != nil {
		t.Error("plain run grew a recorder summary")
	}
	if recd.Recorder == nil {
		t.Error("recorded run lost its recorder summary")
	}
}
