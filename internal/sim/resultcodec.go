// Result serialization for the disk-backed result store: a Result
// travels as canonical JSON inside internal/store's framed files. JSON
// round-trips every Result field exactly — all fields are exported
// int64/float64/bool/string compositions, and encoding/json preserves
// float64 bit patterns through its shortest-representation formatting —
// so a decoded Result renders byte-identically to the live run it
// caches (the determinism contract the harness tests pin).
package sim

import (
	"encoding/json"
	"fmt"

	"graphmem/internal/store"
)

// StateVersion identifies the simulator behaviour the result store
// caches. Bump it whenever any change alters simulated counters or the
// Result layout — timing model fixes, replacement-policy changes, graph
// generator tweaks, new Result fields — and every previously stored
// entry becomes unreadable (ErrVersionMismatch) instead of silently
// stale. It is deliberately distinct from sample.StateVersion, which
// versions the warm-up checkpoint payload only.
const StateVersion = 1

// resultMagic opens every stored result file; distinct from the
// checkpoint magic so the two stores can never deserialize each other's
// files even if keys collide.
var resultMagic = [8]byte{'G', 'M', 'R', 'E', 'S', 'L', 'T', '\n'}

// ResultFraming returns the framing (magic + StateVersion) binding
// stored result files to this simulator version.
func ResultFraming() store.Framing {
	return store.Framing{Magic: resultMagic, Version: StateVersion}
}

// EncodeResult serializes a Result for the store.
func EncodeResult(r *Result) ([]byte, error) {
	data, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("sim: encode result: %w", err)
	}
	return data, nil
}

// DecodeResult deserializes a stored Result payload.
func DecodeResult(data []byte) (*Result, error) {
	r := new(Result)
	if err := json.Unmarshal(data, r); err != nil {
		return nil, fmt.Errorf("sim: decode result: %w", err)
	}
	return r, nil
}
