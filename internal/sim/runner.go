package sim

import (
	"fmt"
	"math"

	"graphmem/internal/check"
	"graphmem/internal/mem"
	"graphmem/internal/obs"
	"graphmem/internal/stats"
	"graphmem/internal/trace"
)

// snapshotCounters captures the running totals of every counter that
// feeds the measurement-window delta.
func (c *coreCtx) snapshotCounters() stats.CoreStats {
	var s stats.CoreStats
	s.Cycles = c.cpuCore.Cycle()
	s.Instructions = c.cpuCore.Instructions
	s.MemOps = c.cpuCore.MemOps
	s.Loads = c.cpuCore.Loads
	s.Stores = c.cpuCore.Stores
	s.TotalLoadLatency = c.cpuCore.LoadLatency
	s.L1D = c.l1d.Stats
	s.L2 = c.l2.Stats
	s.LLC = c.sys.llc.Stats
	if c.sdc != nil {
		s.SDC = c.sdc.Stats
	}
	s.DTLB = c.tlbs.DTLB.Stats
	s.STLB = c.tlbs.STLB.Stats
	if c.lp != nil {
		s.LPPredAverse = c.lp.PredAverse
		s.LPPredFriendly = c.lp.PredFriendly
		s.LPTableMisses = c.lp.TableMisses
	}
	if c.sys.sdcDir != nil {
		s.SDCDirLookups = c.sys.sdcDir.Lookups
		s.SDCDirEvictions = c.sys.sdcDir.Evictions
	}
	d := c.sys.dram.TotalStats()
	s.DRAMReads = d.Reads
	s.DRAMWrites = d.Writes
	s.DRAMRowHits = d.RowHits
	s.DRAMRowMisses = d.RowMisses
	s.ServedSDC = c.served[mem.ServedSDC]
	s.ServedL1D = c.served[mem.ServedL1D]
	s.ServedL2 = c.served[mem.ServedL2]
	s.ServedLLC = c.served[mem.ServedLLC]
	s.ServedRemote = c.served[mem.ServedRemote]
	s.ServedDRAM = c.served[mem.ServedDRAM]
	return s
}

// noEpoch disables the epoch boundary check: the hot loop's only cost
// when sampling is off is one always-false int64 comparison.
const noEpoch = math.MaxInt64

// observe processes one record through the core and advances the
// window state machine. It returns false once the measure window is
// complete.
//
// The fast path is a single comparison: nextEvent is the earliest of
// every armed boundary (invariant sweep, warm-up end, epoch sample,
// measure-window end), recomputed by rearm whenever any of them moves.
// Records between boundaries pay one compare and one branch.
func (c *coreCtx) observe(r trace.Record) bool {
	c.cpuCore.Access(r)
	if c.cpuCore.Instructions < c.nextEvent {
		return !c.doneMeasure
	}
	return c.observeSlow()
}

// observeSlow handles a record that reached a boundary: it runs the
// full check cascade and re-arms nextEvent.
func (c *coreCtx) observeSlow() bool {
	if c.cpuCore.Instructions >= c.nextSweep {
		c.nextSweep = c.cpuCore.Instructions + checkSweepEvery
		c.sys.CheckInvariants()
	}
	cfg := c.sys.cfg
	if !c.inMeasure {
		if c.cpuCore.Instructions >= cfg.Warmup {
			c.beginMeasure()
		}
		c.rearm()
		return true
	}
	if c.cpuCore.Instructions >= c.nextEpoch {
		c.sampleEpoch()
	}
	if !c.doneMeasure && c.cpuCore.Instructions >= c.baseCounters.Instructions+cfg.Measure {
		end := c.snapshotCounters()
		c.measured = stats.Delta(end, c.baseCounters)
		c.closeEpochs(end)
		c.doneMeasure = true
	}
	c.rearm()
	return !c.doneMeasure
}

// rearm recomputes nextEvent as the minimum pending boundary for the
// current window state.
func (c *coreCtx) rearm() {
	ne := c.nextSweep
	cfg := c.sys.cfg
	if !c.inMeasure {
		if cfg.Warmup < ne {
			ne = cfg.Warmup
		}
	} else if !c.doneMeasure {
		if c.nextEpoch < ne {
			ne = c.nextEpoch
		}
		if end := c.baseCounters.Instructions + cfg.Measure; end < ne {
			ne = end
		}
	}
	c.nextEvent = ne
}

// beginMeasure opens the measurement window at the current counters and
// arms the epoch sampler.
func (c *coreCtx) beginMeasure() {
	c.baseCounters = c.snapshotCounters()
	c.inMeasure = true
	c.epochBase = c.baseCounters
	c.nextEpoch = noEpoch
	if iv := c.sys.cfg.EpochInterval; iv > 0 {
		c.nextEpoch = c.baseCounters.Instructions + iv
	}
}

// sampleEpoch closes the running epoch at the current counters,
// appending its delta to the series. An epoch may overshoot the
// configured interval by the instruction count of the record that
// crossed the boundary; the next boundary is re-anchored at the actual
// sample point so consecutive samples always tile the window.
func (c *coreCtx) sampleEpoch() {
	snap := c.snapshotCounters()
	c.epochs = append(c.epochs, obs.EpochSample{
		Index:      len(c.epochs),
		StartInstr: c.epochBase.Instructions,
		EndInstr:   snap.Instructions,
		Stats:      stats.Delta(snap, c.epochBase),
	})
	c.epochBase = snap
	c.nextEpoch = snap.Instructions + c.sys.cfg.EpochInterval
}

// closeEpochs flushes the final (possibly short) epoch at the window
// end — the same snapshot the measured window is computed from, so the
// per-epoch instruction counts sum exactly to the window — and disarms
// the sampler (cores keep executing for contention after their window
// closes in multi-core runs).
func (c *coreCtx) closeEpochs(end stats.CoreStats) {
	c.nextEpoch = noEpoch
	if c.sys.cfg.EpochInterval <= 0 {
		return
	}
	if end.Instructions > c.epochBase.Instructions {
		c.epochs = append(c.epochs, obs.EpochSample{
			Index:      len(c.epochs),
			StartInstr: c.epochBase.Instructions,
			EndInstr:   end.Instructions,
			Stats:      stats.Delta(end, c.epochBase),
		})
	}
	c.epochBase = end
}

// finish closes out a core whose trace ended before the windows filled:
// whatever ran after warm-up is measured.
func (c *coreCtx) finish() {
	if c.doneMeasure {
		return
	}
	if !c.inMeasure {
		// The whole (short) run becomes the measurement.
		c.baseCounters = stats.CoreStats{}
		c.epochBase = stats.CoreStats{}
		c.inMeasure = true
	}
	end := c.snapshotCounters()
	c.measured = stats.Delta(end, c.baseCounters)
	c.closeEpochs(end)
	c.doneMeasure = true
	c.rearm()
}

// singleSink adapts a coreCtx to trace.Sink for single-core runs.
type singleSink struct {
	c *coreCtx
}

// Access implements trace.Sink.
func (s *singleSink) Access(r trace.Record) bool { return s.c.observe(r) }

// SetProgress implements trace.ProgressSink, feeding the T-OPT oracle.
func (s *singleSink) SetProgress(edges uint64) {
	if o, ok := s.c.oracle.(trace.ProgressSink); ok && o != nil {
		o.SetProgress(edges)
	}
}

// Result is the outcome of a single-core run.
type Result struct {
	Config   string
	Workload string
	Stats    stats.CoreStats
	// Reruns counts how many times the kernel restarted to fill the
	// instruction windows.
	Reruns int
	// Epochs is the per-epoch telemetry series (nil unless the config's
	// EpochInterval was positive). Consecutive samples tile the
	// measurement window: their instruction counts sum to
	// Stats.Instructions.
	Epochs []obs.EpochSample
	// Check is the differential-checker outcome (zero value unless the
	// config's CheckLevel was set).
	Check check.Summary
}

// IPC is the measured instructions per cycle.
func (r *Result) IPC() float64 { return r.Stats.IPC() }

// String summarizes the run.
func (r *Result) String() string {
	return fmt.Sprintf("%s/%s: %s", r.Config, r.Workload, r.Stats.String())
}

// RunSingleCore simulates workload w alone on a machine configured by
// cfg (which must have Cores == 1 for a private machine, or more for
// an "isolation on the shared machine" run with idle cores).
func RunSingleCore(cfg Config, w Workload) *Result {
	ws := make([]Workload, cfg.Cores)
	ws[0] = w
	sys := NewSystem(cfg, ws)
	return sys.RunCore0(w)
}

// RunCore0 drives workload w on core 0 until its windows fill.
func (s *System) RunCore0(w Workload) *Result {
	c := s.cores[0]
	sink := &singleSink{c: c}
	reruns := 0
	for !c.doneMeasure {
		tr := trace.New(sink)
		before := c.cpuCore.Instructions
		w.Inst.Run(tr)
		if c.cpuCore.Instructions == before {
			break // kernel emitted nothing; windows cannot fill
		}
		if !c.doneMeasure {
			reruns++
		}
	}
	c.finish()
	s.CheckInvariants() // final structural sweep (no-op unless check.Full)
	res := &Result{
		Config:   s.cfg.Name,
		Workload: w.Name,
		Stats:    c.measured,
		Reruns:   reruns,
		Epochs:   c.epochs,
	}
	if s.chk != nil {
		res.Check = s.chk.Summary()
	}
	return res
}
