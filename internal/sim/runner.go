package sim

import (
	"fmt"

	"graphmem/internal/mem"
	"graphmem/internal/stats"
	"graphmem/internal/trace"
)

// snapshotCounters captures the running totals of every counter that
// feeds the measurement-window delta.
func (c *coreCtx) snapshotCounters() stats.CoreStats {
	var s stats.CoreStats
	s.Cycles = c.cpuCore.Cycle()
	s.Instructions = c.cpuCore.Instructions
	s.MemOps = c.cpuCore.MemOps
	s.Loads = c.cpuCore.Loads
	s.Stores = c.cpuCore.Stores
	s.TotalLoadLatency = c.cpuCore.LoadLatency
	s.L1D = c.l1d.Stats
	s.L2 = c.l2.Stats
	s.LLC = c.sys.llc.Stats
	if c.sdc != nil {
		s.SDC = c.sdc.Stats
	}
	s.DTLB = c.tlbs.DTLB.Stats
	s.STLB = c.tlbs.STLB.Stats
	if c.lp != nil {
		s.LPPredAverse = c.lp.PredAverse
		s.LPPredFriendly = c.lp.PredFriendly
		s.LPTableMisses = c.lp.TableMisses
	}
	if c.sys.sdcDir != nil {
		s.SDCDirLookups = c.sys.sdcDir.Lookups
		s.SDCDirEvictions = c.sys.sdcDir.Evictions
	}
	d := c.sys.dram.TotalStats()
	s.DRAMReads = d.Reads
	s.DRAMWrites = d.Writes
	s.DRAMRowHits = d.RowHits
	s.DRAMRowMisses = d.RowMisses
	s.ServedSDC = c.served[mem.ServedSDC]
	s.ServedL1D = c.served[mem.ServedL1D]
	s.ServedL2 = c.served[mem.ServedL2]
	s.ServedLLC = c.served[mem.ServedLLC]
	s.ServedRemote = c.served[mem.ServedRemote]
	s.ServedDRAM = c.served[mem.ServedDRAM]
	return s
}

func subCache(a, b stats.CacheStats) stats.CacheStats {
	return stats.CacheStats{
		Hits:       a.Hits - b.Hits,
		Misses:     a.Misses - b.Misses,
		Prefetches: a.Prefetches - b.Prefetches,
		Writebacks: a.Writebacks - b.Writebacks,
		Evictions:  a.Evictions - b.Evictions,
		MergedMSHR: a.MergedMSHR - b.MergedMSHR,
	}
}

// delta computes end-minus-start across every counter.
func delta(end, start stats.CoreStats) stats.CoreStats {
	d := stats.CoreStats{
		Cycles:           end.Cycles - start.Cycles,
		Instructions:     end.Instructions - start.Instructions,
		MemOps:           end.MemOps - start.MemOps,
		Loads:            end.Loads - start.Loads,
		Stores:           end.Stores - start.Stores,
		TotalLoadLatency: end.TotalLoadLatency - start.TotalLoadLatency,
		L1D:              subCache(end.L1D, start.L1D),
		SDC:              subCache(end.SDC, start.SDC),
		L2:               subCache(end.L2, start.L2),
		LLC:              subCache(end.LLC, start.LLC),
		DTLB:             subCache(end.DTLB, start.DTLB),
		STLB:             subCache(end.STLB, start.STLB),
		ServedL1D:        end.ServedL1D - start.ServedL1D,
		ServedSDC:        end.ServedSDC - start.ServedSDC,
		ServedL2:         end.ServedL2 - start.ServedL2,
		ServedLLC:        end.ServedLLC - start.ServedLLC,
		ServedRemote:     end.ServedRemote - start.ServedRemote,
		ServedDRAM:       end.ServedDRAM - start.ServedDRAM,
		LPPredAverse:     end.LPPredAverse - start.LPPredAverse,
		LPPredFriendly:   end.LPPredFriendly - start.LPPredFriendly,
		LPTableMisses:    end.LPTableMisses - start.LPTableMisses,
		SDCDirLookups:    end.SDCDirLookups - start.SDCDirLookups,
		SDCDirEvictions:  end.SDCDirEvictions - start.SDCDirEvictions,
		DRAMReads:        end.DRAMReads - start.DRAMReads,
		DRAMWrites:       end.DRAMWrites - start.DRAMWrites,
		DRAMRowHits:      end.DRAMRowHits - start.DRAMRowHits,
		DRAMRowMisses:    end.DRAMRowMisses - start.DRAMRowMisses,
	}
	return d
}

// observe processes one record through the core and advances the
// window state machine. It returns false once the measure window is
// complete.
func (c *coreCtx) observe(r trace.Record) bool {
	c.cpuCore.Access(r)
	cfg := c.sys.cfg
	if !c.inMeasure {
		if c.cpuCore.Instructions >= cfg.Warmup {
			c.baseCounters = c.snapshotCounters()
			c.inMeasure = true
		}
		return true
	}
	if !c.doneMeasure && c.cpuCore.Instructions >= c.baseCounters.Instructions+cfg.Measure {
		c.measured = delta(c.snapshotCounters(), c.baseCounters)
		c.doneMeasure = true
	}
	return !c.doneMeasure
}

// finish closes out a core whose trace ended before the windows filled:
// whatever ran after warm-up is measured.
func (c *coreCtx) finish() {
	if c.doneMeasure {
		return
	}
	if !c.inMeasure {
		// The whole (short) run becomes the measurement.
		c.baseCounters = stats.CoreStats{}
		c.inMeasure = true
	}
	c.measured = delta(c.snapshotCounters(), c.baseCounters)
	c.doneMeasure = true
}

// singleSink adapts a coreCtx to trace.Sink for single-core runs.
type singleSink struct {
	c *coreCtx
}

// Access implements trace.Sink.
func (s *singleSink) Access(r trace.Record) bool { return s.c.observe(r) }

// SetProgress implements trace.ProgressSink, feeding the T-OPT oracle.
func (s *singleSink) SetProgress(edges uint64) {
	if o, ok := s.c.oracle.(trace.ProgressSink); ok && o != nil {
		o.SetProgress(edges)
	}
}

// Result is the outcome of a single-core run.
type Result struct {
	Config   string
	Workload string
	Stats    stats.CoreStats
	// Reruns counts how many times the kernel restarted to fill the
	// instruction windows.
	Reruns int
}

// IPC is the measured instructions per cycle.
func (r *Result) IPC() float64 { return r.Stats.IPC() }

// String summarizes the run.
func (r *Result) String() string {
	return fmt.Sprintf("%s/%s: %s", r.Config, r.Workload, r.Stats.String())
}

// RunSingleCore simulates workload w alone on a machine configured by
// cfg (which must have Cores == 1 for a private machine, or more for
// an "isolation on the shared machine" run with idle cores).
func RunSingleCore(cfg Config, w Workload) *Result {
	ws := make([]Workload, cfg.Cores)
	ws[0] = w
	sys := NewSystem(cfg, ws)
	return sys.RunCore0(w)
}

// RunCore0 drives workload w on core 0 until its windows fill.
func (s *System) RunCore0(w Workload) *Result {
	c := s.cores[0]
	sink := &singleSink{c: c}
	reruns := 0
	for !c.doneMeasure {
		tr := trace.New(sink)
		before := c.cpuCore.Instructions
		w.Inst.Run(tr)
		if c.cpuCore.Instructions == before {
			break // kernel emitted nothing; windows cannot fill
		}
		if !c.doneMeasure {
			reruns++
		}
	}
	c.finish()
	return &Result{
		Config:   s.cfg.Name,
		Workload: w.Name,
		Stats:    c.measured,
		Reruns:   reruns,
	}
}
