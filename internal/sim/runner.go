package sim

import (
	"encoding/binary"
	"fmt"
	"math"

	"graphmem/internal/check"
	"graphmem/internal/mem"
	"graphmem/internal/obs"
	"graphmem/internal/sample"
	"graphmem/internal/stats"
	"graphmem/internal/trace"
)

// snapshotCounters captures the running totals of every counter that
// feeds the measurement-window delta.
func (c *coreCtx) snapshotCounters() stats.CoreStats {
	var s stats.CoreStats
	s.Cycles = c.cpuCore.Cycle()
	s.Instructions = c.cpuCore.Instructions
	s.MemOps = c.cpuCore.MemOps
	s.Loads = c.cpuCore.Loads
	s.Stores = c.cpuCore.Stores
	s.TotalLoadLatency = c.cpuCore.LoadLatency
	s.L1D = c.l1d.Stats
	s.L2 = c.l2.Stats
	s.LLC = c.sys.llc.Stats
	if c.sdc != nil {
		s.SDC = c.sdc.Stats
	}
	s.DTLB = c.tlbs.DTLB.Stats
	s.STLB = c.tlbs.STLB.Stats
	if c.lp != nil {
		s.LPPredAverse = c.lp.PredAverse
		s.LPPredFriendly = c.lp.PredFriendly
		s.LPTableMisses = c.lp.TableMisses
	}
	if c.sys.sdcDir != nil {
		s.SDCDirLookups = c.sys.sdcDir.Lookups
		s.SDCDirEvictions = c.sys.sdcDir.Evictions
	}
	d := c.sys.dram.TotalStats()
	s.DRAMReads = d.Reads
	s.DRAMWrites = d.Writes
	s.DRAMRowHits = d.RowHits
	s.DRAMRowMisses = d.RowMisses
	s.ServedSDC = c.served[mem.ServedSDC]
	s.ServedL1D = c.served[mem.ServedL1D]
	s.ServedL2 = c.served[mem.ServedL2]
	s.ServedLLC = c.served[mem.ServedLLC]
	s.ServedRemote = c.served[mem.ServedRemote]
	s.ServedDRAM = c.served[mem.ServedDRAM]
	return s
}

// noEpoch disables the epoch boundary check: the hot loop's only cost
// when sampling is off is one always-false int64 comparison.
const noEpoch = math.MaxInt64

// observe processes one record through the core and advances the
// window state machine. It returns false once the measure window is
// complete.
//
// The fast path is a single comparison: nextEvent is the earliest of
// every armed boundary (invariant sweep, warm-up end, epoch sample,
// measure-window end), recomputed by rearm whenever any of them moves.
// Records between boundaries pay one compare and one branch.
func (c *coreCtx) observe(r trace.Record) bool {
	if c.warmMode != warmOff {
		return c.warmObserve(r)
	}
	c.cpuCore.Access(r)
	if c.cpuCore.Instructions < c.nextEvent {
		return !c.doneMeasure
	}
	return c.observeSlow()
}

// observeSlow handles a record that reached a boundary: it runs the
// full check cascade and re-arms nextEvent.
func (c *coreCtx) observeSlow() bool {
	if c.cpuCore.Instructions >= c.nextSweep {
		c.nextSweep = c.cpuCore.Instructions + checkSweepEvery
		c.sys.CheckInvariants()
	}
	cfg := c.sys.cfg
	if !c.inMeasure {
		if c.cpuCore.Instructions >= cfg.Warmup {
			c.beginMeasure()
		}
		c.rearm()
		return true
	}
	if c.cpuCore.Instructions >= c.nextEpoch {
		c.sampleEpoch()
	}
	if c.cpuCore.Instructions >= c.nextFR {
		c.sampleFR()
	}
	if c.cpuCore.Instructions >= c.nextSampleStart {
		c.beginSample()
	}
	if c.cpuCore.Instructions >= c.nextSampleMeas {
		c.beginSampleMeasure()
	}
	if c.cpuCore.Instructions >= c.nextSampleEnd {
		c.endSample()
	}
	if !c.doneMeasure && c.cpuCore.Instructions >= c.baseCounters.Instructions+cfg.Measure {
		if cfg.Sampling.Enabled() {
			c.measuredFromSamples()
		} else {
			end := c.snapshotCounters()
			c.measured = stats.Delta(end, c.baseCounters)
			c.closeEpochs(end)
			c.closeFR()
			c.doneMeasure = true
		}
	}
	c.rearm()
	return !c.doneMeasure
}

// rearm recomputes nextEvent as the minimum pending boundary for the
// current window state.
func (c *coreCtx) rearm() {
	ne := c.nextSweep
	cfg := c.sys.cfg
	if !c.inMeasure {
		if cfg.Warmup < ne {
			ne = cfg.Warmup
		}
	} else if !c.doneMeasure {
		if c.nextEpoch < ne {
			ne = c.nextEpoch
		}
		if c.nextFR < ne {
			ne = c.nextFR
		}
		if c.nextSampleStart < ne {
			ne = c.nextSampleStart
		}
		if c.nextSampleMeas < ne {
			ne = c.nextSampleMeas
		}
		if c.nextSampleEnd < ne {
			ne = c.nextSampleEnd
		}
		if end := c.baseCounters.Instructions + cfg.Measure; end < ne {
			ne = end
		}
	}
	c.nextEvent = ne
}

// beginMeasure opens the measurement window at the current counters and
// arms the epoch sampler.
func (c *coreCtx) beginMeasure() {
	if c.sys.cfg.Sampling.Enabled() {
		c.beginMeasureSampled()
		return
	}
	c.baseCounters = c.snapshotCounters()
	c.inMeasure = true
	c.epochBase = c.baseCounters
	c.nextEpoch = noEpoch
	if iv := c.sys.cfg.EpochInterval; iv > 0 {
		c.nextEpoch = c.baseCounters.Instructions + iv
	}
	c.attachFR()
}

// attachFR opens the flight-recorder window: the recorder becomes the
// live tap on the core and every cache level. It runs at the same
// point the measurement baseline is snapshotted (beginMeasure), and
// closeFR detaches at the window-close snapshot, so the recorder's
// totals are exactly the measurement-window counter deltas. Shared
// LLC/DRAM taps attach only on a one-core machine, where their events
// are attributable to this core — and never under bound–weave, where
// shared-domain events fire at weave replay time, outside any single
// core's window.
func (c *coreCtx) attachFR() {
	if c.recorder == nil {
		return
	}
	r := c.recorder
	c.fr = r
	c.cpuCore.Tap = r
	c.l1d.SetTap(r, mem.ServedL1D)
	c.l2.SetTap(r, mem.ServedL2)
	if c.sdc != nil {
		c.sdc.SetTap(r, mem.ServedSDC)
	}
	if c.sys.cfg.Cores == 1 && c.sys.bw == nil {
		c.sys.llc.SetTap(r, mem.ServedLLC)
		c.sys.dram.SetTap(r)
	}
	c.sampleFR() // baseline timeline point at the window start
}

// sampleFR appends one occupancy-timeline point and re-arms the next
// sample boundary. All reads are pure: MSHR fills via InFlight, DRAM
// bank/bus state via BusyBanks/BusBacklog, evaluated at the dispatch
// clock (the clock new requests are issued against).
func (c *coreCtx) sampleFR() {
	now := c.cpuCore.DispatchCycle()
	var mshr [obs.NumLevels]int32
	if m := c.l1d.MSHR(); m != nil {
		mshr[mem.ServedL1D] = int32(m.InFlight(now))
	}
	if m := c.l2.MSHR(); m != nil {
		mshr[mem.ServedL2] = int32(m.InFlight(now))
	}
	if c.sdc != nil {
		if m := c.sdc.MSHR(); m != nil {
			mshr[mem.ServedSDC] = int32(m.InFlight(now))
		}
	}
	if m := c.sys.llc.MSHR(); m != nil {
		mshr[mem.ServedLLC] = int32(m.InFlight(now))
	}
	c.recorder.Sample(c.cpuCore.Instructions, c.cpuCore.Cycle(), mshr,
		int32(c.sys.dram.BusyBanks(now)), c.sys.dram.BusBacklog(now))
	c.nextFR = c.cpuCore.Instructions + c.frInterval
}

// closeFR takes the final timeline point at the window close and
// detaches every tap, so post-window activity (multi-core contention
// execution) is not recorded.
func (c *coreCtx) closeFR() {
	if c.fr == nil {
		return
	}
	c.sampleFR()
	c.fr = nil
	c.cpuCore.Tap = nil
	c.l1d.SetTap(nil, mem.ServedNone)
	c.l2.SetTap(nil, mem.ServedNone)
	if c.sdc != nil {
		c.sdc.SetTap(nil, mem.ServedNone)
	}
	if c.sys.cfg.Cores == 1 && c.sys.bw == nil {
		c.sys.llc.SetTap(nil, mem.ServedNone)
		c.sys.dram.SetTap(nil)
	}
	c.nextFR = noEpoch
}

// sampleEpoch closes the running epoch at the current counters,
// appending its delta to the series. An epoch may overshoot the
// configured interval by the instruction count of the record that
// crossed the boundary; the next boundary is re-anchored at the actual
// sample point so consecutive samples always tile the window.
func (c *coreCtx) sampleEpoch() {
	snap := c.snapshotCounters()
	c.epochs = append(c.epochs, obs.EpochSample{
		Index:      len(c.epochs),
		StartInstr: c.epochBase.Instructions,
		EndInstr:   snap.Instructions,
		Stats:      stats.Delta(snap, c.epochBase),
	})
	c.epochBase = snap
	c.nextEpoch = snap.Instructions + c.sys.cfg.EpochInterval
}

// closeEpochs flushes the final (possibly short) epoch at the window
// end — the same snapshot the measured window is computed from, so the
// per-epoch instruction counts sum exactly to the window — and disarms
// the sampler (cores keep executing for contention after their window
// closes in multi-core runs).
func (c *coreCtx) closeEpochs(end stats.CoreStats) {
	c.nextEpoch = noEpoch
	if c.sys.cfg.EpochInterval <= 0 {
		return
	}
	if end.Instructions > c.epochBase.Instructions {
		c.epochs = append(c.epochs, obs.EpochSample{
			Index:      len(c.epochs),
			StartInstr: c.epochBase.Instructions,
			EndInstr:   end.Instructions,
			Stats:      stats.Delta(end, c.epochBase),
		})
	}
	c.epochBase = end
}

// finish closes out a core whose trace ended before the windows filled:
// whatever ran after warm-up is measured.
func (c *coreCtx) finish() {
	if c.doneMeasure {
		return
	}
	if c.sys.cfg.Sampling.Enabled() {
		// A sampled trace ended early: whatever samples completed (plus a
		// possibly open one) are the estimate. A run too short to reach
		// its warm-up end has no samples and measures zero, which the
		// estimate's Samples==0 makes explicit.
		if c.inMeasure {
			c.measuredFromSamples()
		} else {
			c.doneMeasure = true
			c.warmMode = warmOff
			c.sys.warming = false
		}
		c.rearm()
		return
	}
	if !c.inMeasure {
		// The whole (short) run becomes the measurement.
		c.baseCounters = stats.CoreStats{}
		c.epochBase = stats.CoreStats{}
		c.inMeasure = true
	}
	end := c.snapshotCounters()
	c.measured = stats.Delta(end, c.baseCounters)
	c.closeEpochs(end)
	c.closeFR()
	c.doneMeasure = true
	c.rearm()
}

// singleSink adapts a coreCtx to trace.Sink for single-core runs.
type singleSink struct {
	c *coreCtx
}

// Access implements trace.Sink.
func (s *singleSink) Access(r trace.Record) bool { return s.c.observe(r) }

// SetProgress implements trace.ProgressSink, feeding the T-OPT oracle.
func (s *singleSink) SetProgress(edges uint64) {
	if o, ok := s.c.oracle.(trace.ProgressSink); ok && o != nil {
		o.SetProgress(edges)
	}
}

// Result is the outcome of a single-core run.
type Result struct {
	Config   string
	Workload string
	Stats    stats.CoreStats
	// Reruns counts how many times the kernel restarted to fill the
	// instruction windows.
	Reruns int
	// Epochs is the per-epoch telemetry series (nil unless the config's
	// EpochInterval was positive). Consecutive samples tile the
	// measurement window: their instruction counts sum to
	// Stats.Instructions.
	Epochs []obs.EpochSample
	// Check is the differential-checker outcome (zero value unless the
	// config's CheckLevel was set).
	Check check.Summary
	// Recorder is the flight-recorder summary (nil unless the config's
	// FlightRecorder was set). Its served totals equal the corresponding
	// Stats.ServedX counters exactly.
	Recorder *obs.RecSummary
	// Sampling is the statistical estimate with confidence intervals
	// (nil unless the config's Sampling was enabled). When present,
	// Stats holds the sum of the detailed samples' counter deltas.
	Sampling *sample.Estimate
}

// IPC is the measured instructions per cycle.
func (r *Result) IPC() float64 { return r.Stats.IPC() }

// String summarizes the run.
func (r *Result) String() string {
	return fmt.Sprintf("%s/%s: %s", r.Config, r.Workload, r.Stats.String())
}

// RunSingleCore simulates workload w alone on a machine configured by
// cfg (which must have Cores == 1 for a private machine, or more for
// an "isolation on the shared machine" run with idle cores).
func RunSingleCore(cfg Config, w Workload) *Result {
	ws := make([]Workload, cfg.Cores)
	ws[0] = w
	sys := NewSystem(cfg, ws)
	return sys.RunCore0(w)
}

// RunCore0 drives workload w on core 0 until its windows fill.
func (s *System) RunCore0(w Workload) *Result {
	c := s.cores[0]
	if st := s.cfg.Sampling.Store; st != nil && s.cfg.Sampling.Enabled() {
		key := warmKey(s.cfg, w.Name)
		payload, done := st.Acquire(key)
		if payload != nil {
			// Checkpoint hit: skip the warm-up by draining the record
			// stream (counting only) to the recorded position, then
			// restoring the captured state. The payload leads with the
			// CPU instruction counter, which is that position.
			c.warmMode = warmDrain
			c.drainTo = int64(binary.LittleEndian.Uint64(payload))
			c.ckptPayload = payload
			c.ckptHit = true
			s.warming = false // nothing is touched while draining
			_ = done(nil)
		} else {
			c.ckptCommit = done
		}
	}
	sink := &singleSink{c: c}
	reruns := 0
	for !c.doneMeasure {
		tr := trace.New(sink)
		before := c.cpuCore.Instructions + c.drainCount
		w.Inst.Run(tr)
		if c.cpuCore.Instructions+c.drainCount == before {
			break // kernel emitted nothing; windows cannot fill
		}
		if !c.doneMeasure {
			reruns++
		}
	}
	c.finish()
	if c.ckptCommit != nil {
		// The trace ended before the warm-up did: release the store's
		// key lock without publishing.
		_ = c.ckptCommit(nil)
		c.ckptCommit = nil
	}
	s.CheckInvariants() // final structural sweep (no-op unless check.Full)
	res := &Result{
		Config:   s.cfg.Name,
		Workload: w.Name,
		Stats:    c.measured,
		Reruns:   reruns,
		Epochs:   c.epochs,
	}
	if s.chk != nil {
		res.Check = s.chk.Summary()
	}
	if c.recorder != nil {
		res.Recorder = c.recorder.Summary()
	}
	if s.cfg.Sampling.Enabled() {
		est := sample.NewEstimate(c.sampleDeltas)
		est.CheckpointHit = c.ckptHit
		res.Sampling = &est
	}
	return res
}
