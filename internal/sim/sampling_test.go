package sim

import (
	"encoding/json"
	"os"
	"reflect"
	"strings"
	"testing"

	"graphmem/internal/sample"
)

// sampledCfg is the schedule the sampling tests run under: the checked
// bench-scale machine with ~20 samples in a 1M-instruction window.
func sampledCfg() Config {
	return TableI(1).BenchScale().WithWindows(200_000, 1_000_000).
		WithSampling(50_000, 5_000, 10_000)
}

// TestSamplingOffIsBitIdentical pins the zero-cost contract: with the
// sampling config at its zero value, results are deterministic, carry
// no estimate, and the run manifest serializes without any sampling
// field — byte-identical to what the simulator produced before the
// sampler existed. (The harness golden tests pin the report bytes
// themselves; this covers the result and manifest shapes.)
func TestSamplingOffIsBitIdentical(t *testing.T) {
	cfg := TableI(1).BenchScale().WithWindows(200_000, 1_000_000)
	a := RunSingleCore(cfg, kronWorkload(t, "pr", 19))
	b := RunSingleCore(cfg, kronWorkload(t, "pr", 19))
	if !reflect.DeepEqual(a, b) {
		t.Error("unsampled runs of the same config are not bit-identical")
	}
	if a.Sampling != nil {
		t.Error("unsampled run carries a sampling estimate")
	}
	blob, err := json.Marshal(cfg.ManifestInfo())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(blob), "sample") {
		t.Errorf("unsampled manifest config leaks sampling fields: %s", blob)
	}
}

// TestCheckpointRoundTrip pins the warm-up checkpoint's byte-identity
// contract: a run that restores its warm-up from the store produces
// exactly the counters and estimate of the run that captured it — and
// of a run that never touched a store at all.
func TestCheckpointRoundTrip(t *testing.T) {
	cfg := sampledCfg()
	plain := RunSingleCore(cfg, kronWorkload(t, "pr", 19))

	st, err := sample.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	stored := cfg.WithCheckpointStore(st)
	miss := RunSingleCore(stored, kronWorkload(t, "pr", 19))
	hit := RunSingleCore(stored, kronWorkload(t, "pr", 19))
	if m, h := st.Misses(), st.Hits(); m != 1 || h != 1 {
		t.Fatalf("store saw %d misses / %d hits; want 1 / 1", m, h)
	}
	if miss.Sampling == nil || miss.Sampling.CheckpointHit {
		t.Error("capturing run should report a checkpoint miss")
	}
	if hit.Sampling == nil || !hit.Sampling.CheckpointHit {
		t.Error("restored run should report a checkpoint hit")
	}

	if !reflect.DeepEqual(plain.Stats, miss.Stats) {
		t.Error("capturing run's counters differ from the store-free run's")
	}
	if !reflect.DeepEqual(miss.Stats, hit.Stats) {
		t.Error("restored run's counters differ from the capturing run's")
	}
	// The estimates are identical except for the hit marker itself.
	h := *hit.Sampling
	h.CheckpointHit = false
	if !reflect.DeepEqual(*miss.Sampling, h) {
		t.Errorf("restored estimate diverged:\n miss %+v\n hit  %+v", *miss.Sampling, *hit.Sampling)
	}
}

// TestCheckpointRejectsDamagedFiles pins the store's failure mode end
// to end: a truncated checkpoint and a stale-version checkpoint are
// both ordinary misses — the run silently re-warms, overwrites the bad
// file, and still produces bit-identical counters.
func TestCheckpointRejectsDamagedFiles(t *testing.T) {
	cfg := sampledCfg()
	st, err := sample.NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	stored := cfg.WithCheckpointStore(st)
	first := RunSingleCore(stored, kronWorkload(t, "pr", 19))

	// Find the committed file and damage it two ways.
	entries, err := os.ReadDir(st.Dir())
	if err != nil || len(entries) != 1 {
		t.Fatalf("store dir: %v entries, err %v", len(entries), err)
	}
	path := st.Dir() + "/" + entries[0].Name()
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for name, bad := range map[string][]byte{
		"truncated":     good[:len(good)/2],
		"stale-version": append(append([]byte{}, good[:8]...), append([]byte{0xFF, 0xFF, 0xFF, 0xFF}, good[12:]...)...),
	} {
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		missesBefore := st.Misses()
		res := RunSingleCore(stored, kronWorkload(t, "pr", 19))
		if st.Misses() != missesBefore+1 {
			t.Errorf("%s checkpoint was not treated as a miss", name)
		}
		if res.Sampling.CheckpointHit {
			t.Errorf("%s checkpoint produced a hit", name)
		}
		if !reflect.DeepEqual(first.Stats, res.Stats) {
			t.Errorf("%s recovery produced different counters", name)
		}
	}
	// The re-warm rewrote a good file: the next run hits again.
	res := RunSingleCore(stored, kronWorkload(t, "pr", 19))
	if !res.Sampling.CheckpointHit {
		t.Error("store did not recover a usable checkpoint after damage")
	}
}

// TestMisWarmTripsErrorGate is the CI gate's self-check: a sampler
// whose functional warming is deliberately broken (MisWarm counts
// instructions but touches nothing, so samples run against cold
// structures) must drift far outside the 3% tolerance the sampled-sim
// gate enforces — proving the gate can actually catch a mis-warmed
// sampler, not just bless a correct one.
func TestMisWarmTripsErrorGate(t *testing.T) {
	// cc is the matrix cell most sensitive to warming: with MisWarm its
	// IPC and L1 MPKI both drift >4% (pr, whose working set thrashes the
	// caches regardless, hides cold-start on the L1 — its drift shows up
	// at the L2/LLC instead).
	base := TableI(1).BenchScale().WithWindows(200_000, 1_000_000)
	full := RunSingleCore(base, kronWorkload(t, "cc", 19))

	bad := sampledCfg()
	bad.Sampling.MisWarm = true
	res := RunSingleCore(bad, kronWorkload(t, "cc", 19))
	if res.Sampling == nil {
		t.Fatal("mis-warmed run produced no estimate")
	}
	ipcErr := relErrOf(res.Sampling.IPC.Mean, full.Stats.IPC())
	mpkiErr := relErrOf(res.Sampling.L1DemandMPKI.Mean, full.Stats.L1DemandMPKI())
	if ipcErr <= 0.03 && mpkiErr <= 0.03 {
		t.Errorf("mis-warmed sampler stayed inside the gate: IPC err %.1f%%, L1 MPKI err %.1f%%",
			100*ipcErr, 100*mpkiErr)
	}
}

// TestSampledEstimateWithinTolerance validates the estimator at test
// scale: one cell of the CI gate's matrix (pr/kron on the baseline),
// sampled with the gate's pr plan, lands within tolerance of the full
// detailed run. The full config×workload matrix is validated against
// committed references by cmd/gmsample (the sampled-sim CI job).
func TestSampledEstimateWithinTolerance(t *testing.T) {
	base := TableI(1).BenchScale().WithWindows(200_000, 2_000_000)
	full := RunSingleCore(base, kronWorkload(t, "pr", 19))

	sampled := RunSingleCore(base.WithSampling(65_000, 5_000, 13_000), kronWorkload(t, "pr", 19))
	e := sampled.Sampling
	if e == nil || e.Samples < 10 {
		t.Fatalf("estimate too thin: %+v", e)
	}
	if re := relErrOf(e.IPC.Mean, full.Stats.IPC()); re > 0.03 {
		t.Errorf("IPC: sampled %.4f vs full %.4f (err %.1f%%)", e.IPC.Mean, full.Stats.IPC(), 100*re)
	}
	if re := relErrOf(e.L1DemandMPKI.Mean, full.Stats.L1DemandMPKI()); re > 0.03 {
		t.Errorf("L1 MPKI: sampled %.2f vs full %.2f (err %.1f%%)",
			e.L1DemandMPKI.Mean, full.Stats.L1DemandMPKI(), 100*re)
	}
	if frac := sampled.Config; frac == "" {
		t.Error("result lost its config name")
	}
	if e.DetailedInstructions >= full.Stats.Instructions/2 {
		t.Errorf("sampling simulated %d of %d instructions in detail; expected a large reduction",
			e.DetailedInstructions, full.Stats.Instructions)
	}
}

func relErrOf(est, ref float64) float64 {
	d := est - ref
	if d < 0 {
		d = -d
	}
	if ref == 0 {
		return d
	}
	if ref < 0 {
		ref = -ref
	}
	return d / ref
}
