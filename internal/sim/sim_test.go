package sim

import (
	"testing"

	"graphmem/internal/graph"
	"graphmem/internal/kernels"
	"graphmem/internal/mem"
)

// benchCfg is the 4x-shrunk Table I machine used by fast tests: LLC
// 352 KiB/core, so a ~512 KiB property array spills to DRAM like the
// paper's multi-MB arrays do against 1.375 MiB.
func benchCfg() Config {
	return TableI(1).BenchScale().WithWindows(1_000_000, 4_000_000)
}

// kronWorkload prepares a kernel on a Kron graph whose property arrays
// exceed the bench-scale LLC.
func kronWorkload(t testing.TB, kernel string, scale int) Workload {
	t.Helper()
	g := testGraphCache(scale)
	space := mem.NewSpace(0)
	inst := kernels.Registry()[kernel](g, space)
	return Workload{Name: kernel + ".kron", Inst: inst, Space: space}
}

var graphCache = map[int]*graph.Graph{}

func testGraphCache(scale int) *graph.Graph {
	if g, ok := graphCache[scale]; ok {
		return g
	}
	g := graph.Kron(scale, 8, 42)
	graphCache[scale] = g
	return g
}

func TestBaselineRunSanity(t *testing.T) {
	cfg := benchCfg()
	res := RunSingleCore(cfg, kronWorkload(t, "pr", 19))
	s := &res.Stats
	if s.Instructions < cfg.Measure {
		t.Fatalf("measured %d instructions, want >= %d", s.Instructions, cfg.Measure)
	}
	if s.Cycles <= 0 || s.IPC() <= 0 || s.IPC() > 4 {
		t.Fatalf("IPC = %g (cycles %d)", s.IPC(), s.Cycles)
	}
	// Ladder sanity: L2 demand accesses stem from L1D misses (plus
	// walker and writeback traffic); LLC accesses from L2 misses.
	if s.L1D.Accesses() == 0 || s.L2.Accesses() == 0 || s.LLC.Accesses() == 0 {
		t.Fatal("cache levels saw no traffic")
	}
	if s.SDC.Accesses() != 0 {
		t.Error("baseline must not touch an SDC")
	}
	if s.ServedDRAM == 0 {
		t.Error("an LLC-exceeding workload must hit DRAM")
	}
	if s.DTLB.Accesses() == 0 {
		t.Error("TLB saw no traffic")
	}
}

func TestGraphWorkloadIsMemoryBound(t *testing.T) {
	// Finding 1: high MPKI at every level for an LLC-exceeding graph
	// workload on the baseline.
	res := RunSingleCore(benchCfg(), kronWorkload(t, "pr", 19))
	s := &res.Stats
	l1 := s.L1D.MPKI(s.Instructions)
	l2 := s.L2.MPKI(s.Instructions)
	llc := s.LLC.MPKI(s.Instructions)
	if l1 < 10 {
		t.Errorf("L1D MPKI = %.1f, want graph-workload levels (>10)", l1)
	}
	if l2 < 5 || llc < 5 {
		t.Errorf("L2/LLC MPKI = %.1f/%.1f, want substantial", l2, llc)
	}
	// Finding 2: most L1D misses reach DRAM.
	frac := float64(s.ServedDRAM) / float64(s.ServedDRAM+s.ServedL2+s.ServedLLC+s.ServedRemote+1)
	if frac < 0.4 {
		t.Errorf("only %.0f%% of L1D misses served by DRAM; paper reports ~78%%", frac*100)
	}
}

func TestSDCLPBeatsBaselineOnIrregular(t *testing.T) {
	w := kronWorkload(t, "pr", 19)
	base := RunSingleCore(benchCfg(), w)
	sdclp := RunSingleCore(benchCfg().WithSDCLP(), kronWorkload(t, "pr", 19))
	if sdclp.IPC() <= base.IPC() {
		t.Errorf("SDC+LP IPC %.3f not above baseline %.3f", sdclp.IPC(), base.IPC())
	}
	// The headline mechanism: L2/LLC pressure collapses (Fig. 8).
	bs, ss := &base.Stats, &sdclp.Stats
	if ss.L2.MPKI(ss.Instructions) > bs.L2.MPKI(bs.Instructions)/2 {
		t.Errorf("L2 MPKI %.1f -> %.1f: expected a large drop",
			bs.L2.MPKI(bs.Instructions), ss.L2.MPKI(ss.Instructions))
	}
	if ss.SDC.Accesses() == 0 {
		t.Error("SDC saw no traffic under LP routing")
	}
	if ss.LPPredAverse == 0 {
		t.Error("LP never classified an access as averse")
	}
	_ = w
}

func TestLPPredictorRoutesGathersNotStreams(t *testing.T) {
	res := RunSingleCore(benchCfg().WithSDCLP(), kronWorkload(t, "pr", 19))
	s := &res.Stats
	// PR's gather is roughly one load in three; the averse fraction
	// must be substantial but not dominant.
	frac := float64(s.LPPredAverse) / float64(s.LPPredAverse+s.LPPredFriendly)
	if frac < 0.05 || frac > 0.8 {
		t.Errorf("averse fraction = %.2f; LP should single out the gathers", frac)
	}
}

func TestExpertRoutesOnlyIrregularRegions(t *testing.T) {
	res := RunSingleCore(benchCfg().WithExpert(), kronWorkload(t, "pr", 19))
	if res.Stats.SDC.Accesses() == 0 {
		t.Fatal("expert routing never used the SDC")
	}
	if res.IPC() <= 0 {
		t.Fatal("bad IPC")
	}
}

func TestTOPTImprovesOverBaseline(t *testing.T) {
	base := RunSingleCore(benchCfg(), kronWorkload(t, "pr", 19))
	topt := RunSingleCore(benchCfg().WithTOPT(), kronWorkload(t, "pr", 19))
	// T-OPT should reduce LLC misses on the property array.
	bm := base.Stats.LLC.MPKI(base.Stats.Instructions)
	tm := topt.Stats.LLC.MPKI(topt.Stats.Instructions)
	if tm >= bm {
		t.Errorf("T-OPT LLC MPKI %.1f not below baseline %.1f", tm, bm)
	}
}

func TestRegularWorkloadUnaffectedBySDCLP(t *testing.T) {
	// τ_glob safety: a sequential workload must not regress under LP
	// routing (Section V-B3).
	mk := func() Workload {
		space := mem.NewSpace(0)
		return Workload{Name: "triad", Inst: kernels.NewTriad(1<<16, space), Space: space}
	}
	cfg := benchCfg().WithWindows(50_000, 400_000)
	base := RunSingleCore(cfg, mk())
	sdclp := RunSingleCore(cfg.WithSDCLP(), mk())
	ratio := sdclp.IPC() / base.IPC()
	if ratio < 0.97 {
		t.Errorf("SDC+LP hurt a regular workload: ratio %.3f", ratio)
	}
	if sdclp.Stats.LPPredAverse > sdclp.Stats.LPPredFriendly/10 {
		t.Errorf("LP routed %d of %d regular accesses to the SDC",
			sdclp.Stats.LPPredAverse, sdclp.Stats.LPPredAverse+sdclp.Stats.LPPredFriendly)
	}
}

func TestVariantsAreComplete(t *testing.T) {
	vs := Variants(TableI(1))
	names := map[string]bool{}
	for _, v := range vs {
		names[v.Name] = true
	}
	for _, want := range []string{"Baseline", "L1D 40KB ISO", "Distill", "T-OPT", "2xLLC", "Expert", "SDC+LP"} {
		if !names[want] {
			t.Errorf("variant %q missing", want)
		}
	}
}

func TestConfigGeometriesConstructible(t *testing.T) {
	// Every variant at both scales must build a System without panics.
	for _, cores := range []int{1, 4} {
		for _, base := range []Config{TableI(cores), TableI(cores).BenchScale()} {
			for _, v := range Variants(base) {
				ws := make([]Workload, cores)
				func() {
					defer func() {
						if r := recover(); r != nil {
							t.Errorf("%s (cores=%d): %v", v.Name, cores, r)
						}
					}()
					NewSystem(v, ws)
				}()
			}
		}
	}
	// SDC size and LP sweeps too.
	for _, kb := range []int{8, 16, 32} {
		NewSystem(TableI(1).WithSDCLP().WithSDCSize(kb), make([]Workload, 1))
	}
	for _, e := range []int{8, 16, 32, 64} {
		NewSystem(TableI(1).WithSDCLP().WithLP(e, e, 8), make([]Workload, 1))
	}
}

func TestRerunFillsWindows(t *testing.T) {
	// A tiny kernel run must restart until the windows fill.
	g := graph.Urand(2000, 8000, 5)
	space := mem.NewSpace(0)
	w := Workload{Name: "bfs.tiny", Inst: kernels.NewBFS(g, space), Space: space}
	cfg := benchCfg().WithWindows(30_000, 200_000)
	res := RunSingleCore(cfg, w)
	if res.Stats.Instructions < cfg.Measure {
		t.Fatalf("windows not filled: %d instructions", res.Stats.Instructions)
	}
	if res.Reruns == 0 {
		t.Error("expected kernel restarts for a tiny graph")
	}
}

func TestObserverSeesMeasureWindowLoads(t *testing.T) {
	cfg := benchCfg()
	ws := []Workload{kronWorkload(t, "cc", 19)}
	sys := NewSystem(cfg, ws)
	var seen int64
	var dram int64
	sys.Observer = func(coreID int, pc uint64, blk mem.BlockAddr, served mem.ServedBy) {
		seen++
		if served == mem.ServedDRAM {
			dram++
		}
	}
	res := sys.RunCore0(ws[0])
	if seen == 0 {
		t.Fatal("observer never fired")
	}
	if dram == 0 {
		t.Error("observer saw no DRAM-served loads")
	}
	if res.Stats.Instructions == 0 {
		t.Fatal("no measurement")
	}
}

func TestMultiCoreSharedSlowerThanAlone(t *testing.T) {
	cfg := TableI(2).BenchScale().WithWindows(20_000, 120_000)
	mkW := func(slot int, kernel string) Workload {
		g := testGraphCache(16)
		space := mem.NewSpace(slot)
		return Workload{Name: kernel, Inst: kernels.Registry()[kernel](g, space), Space: space}
	}
	shared := RunMultiCore(cfg, []Workload{mkW(0, "pr"), mkW(1, "cc")})
	if len(shared.PerCore) != 2 {
		t.Fatal("bad result shape")
	}
	for i, s := range shared.PerCore {
		if s.Instructions < cfg.Measure {
			t.Fatalf("core %d measured only %d instructions", i, s.Instructions)
		}
	}
	// Isolation runs on the same 2-core machine.
	aloneP := RunMultiCore(cfg, []Workload{mkW(0, "pr"), {}})
	aloneC := RunMultiCore(cfg, []Workload{{}, mkW(1, "cc")})
	ipcP, ipcC := aloneP.PerCore[0].IPC(), aloneC.PerCore[1].IPC()
	if shared.PerCore[0].IPC() > ipcP*1.02 || shared.PerCore[1].IPC() > ipcC*1.02 {
		t.Errorf("shared IPCs (%.3f, %.3f) exceed isolated (%.3f, %.3f)",
			shared.PerCore[0].IPC(), shared.PerCore[1].IPC(), ipcP, ipcC)
	}
}

func TestMultiCoreIdleSlots(t *testing.T) {
	cfg := TableI(2).BenchScale().WithWindows(10_000, 60_000)
	g := testGraphCache(16)
	space := mem.NewSpace(0)
	w := Workload{Name: "tc", Inst: kernels.NewTC(g, space), Space: space}
	res := RunMultiCore(cfg, []Workload{w, {}})
	if res.PerCore[0].Instructions == 0 {
		t.Fatal("active core measured nothing")
	}
	if res.PerCore[1].Instructions != 0 {
		t.Error("idle core measured instructions")
	}
}

func TestAddressSpacesDisjointAcrossSlots(t *testing.T) {
	// Two slots' regions never overlap, the property the paper's VIPT
	// no-flush argument rests on.
	s0, s1 := mem.NewSpace(0), mem.NewSpace(1)
	g := graph.Urand(1000, 4000, 1)
	kernels.NewPR(g, s0)
	kernels.NewPR(g, s1)
	for _, r0 := range s0.Regions() {
		for _, r1 := range s1.Regions() {
			if r0.Base < r1.Base+mem.Addr(r1.Size) && r1.Base < r0.Base+mem.Addr(r0.Size) {
				t.Fatalf("regions overlap: %s vs %s", r0.Name, r1.Name)
			}
		}
	}
}

func TestAdaptiveTauRecoversFromBadThreshold(t *testing.T) {
	// Extension check: starting from a badly high τ, the adaptive LP
	// should recover most of the gap to the well-tuned fixed τ=8.
	w := func() Workload { return kronWorkload(t, "pr", 19) }
	cfg := benchCfg()
	good := RunSingleCore(cfg.WithSDCLP(), w())
	lp := cfg.LP
	badCfg := cfg.WithSDCLP().WithLP(lp.Entries, lp.Ways, 64)
	bad := RunSingleCore(badCfg, w())
	adaptCfg := cfg.WithAdaptiveLP()
	adaptCfg.LP.Tau = 64 // same bad starting point
	adapt := RunSingleCore(adaptCfg, w())
	if adapt.IPC() <= bad.IPC() {
		t.Errorf("adaptive τ (%.3f IPC) not above fixed bad τ (%.3f)", adapt.IPC(), bad.IPC())
	}
	// It should close at least a third of the gap to the tuned τ.
	if gap := good.IPC() - bad.IPC(); gap > 0 && adapt.IPC()-bad.IPC() < gap/3 {
		t.Errorf("adaptive recovered only %.3f of a %.3f IPC gap", adapt.IPC()-bad.IPC(), gap)
	}
}

func TestPOPTBetweenBaselineAndTOPT(t *testing.T) {
	// P-OPT is the practical (weaker) T-OPT: it must improve on the
	// baseline but not beat the idealized policy by any margin.
	w := func() Workload { return kronWorkload(t, "pr", 19) }
	base := RunSingleCore(benchCfg(), w())
	topt := RunSingleCore(benchCfg().WithTOPT(), w())
	popt := RunSingleCore(benchCfg().WithPOPT(), w())
	if popt.IPC() <= base.IPC() {
		t.Errorf("P-OPT IPC %.3f not above baseline %.3f", popt.IPC(), base.IPC())
	}
	if popt.IPC() > topt.IPC()*1.02 {
		t.Errorf("P-OPT IPC %.3f above idealized T-OPT %.3f", popt.IPC(), topt.IPC())
	}
}

func TestBypassOnlyAblation(t *testing.T) {
	// Pure L2/LLC bypass (no SDC) should beat the baseline on an
	// irregular workload, but the SDC's reuse capture should put SDC+LP
	// ahead of bypass-only — the ablation isolating the SDC's value.
	w := func() Workload { return kronWorkload(t, "pr", 19) }
	base := RunSingleCore(benchCfg(), w())
	bypass := RunSingleCore(benchCfg().WithBypassOnly(), w())
	sdclp := RunSingleCore(benchCfg().WithSDCLP(), w())
	if bypass.IPC() <= base.IPC() {
		t.Errorf("bypass-only IPC %.3f not above baseline %.3f", bypass.IPC(), base.IPC())
	}
	if sdclp.IPC() <= bypass.IPC() {
		t.Errorf("SDC+LP IPC %.3f not above bypass-only %.3f; SDC adds no value?", sdclp.IPC(), bypass.IPC())
	}
	if bypass.Stats.SDC.Accesses() != 0 {
		t.Error("bypass mode touched an SDC")
	}
}

func TestSRRIPLLCRuns(t *testing.T) {
	// The RRIP-family comparison: must run, and per the paper's cited
	// finding, not dramatically improve graph workloads over LRU.
	base := RunSingleCore(benchCfg(), kronWorkload(t, "pr", 19))
	rrip := RunSingleCore(benchCfg().WithRRIP(), kronWorkload(t, "pr", 19))
	ratio := rrip.IPC() / base.IPC()
	if ratio < 0.85 || ratio > 1.3 {
		t.Errorf("SRRIP/LRU IPC ratio %.2f outside the modest band literature reports", ratio)
	}
}
