package sim

import (
	"fmt"

	"graphmem/internal/cache"
	"graphmem/internal/check"
	"graphmem/internal/coherence"
	corepkg "graphmem/internal/core"
	"graphmem/internal/cpu"
	"graphmem/internal/dram"
	"graphmem/internal/kernels"
	"graphmem/internal/mem"
	"graphmem/internal/obs"
	"graphmem/internal/prefetch"
	"graphmem/internal/stats"
	"graphmem/internal/tlb"
)

// ptOffset places the synthetic page-table region far inside each
// core's address window, beyond any workload allocation.
const ptOffset = mem.Addr(1) << 39

// Workload binds a prepared kernel instance to the core slot whose
// address window its regions live in.
type Workload struct {
	// Name labels the workload ("pr.kron", ...).
	Name string
	// Inst is the kernel instance, prepared with mem.NewSpace(slot).
	Inst kernels.Instance
	// Space is the address space the instance was prepared in.
	Space *mem.Space
}

// Observer receives every demand load with its serving level, during
// the measurement window only (the Fig. 3 characterization hook).
type Observer func(coreID int, pc uint64, blk mem.BlockAddr, served mem.ServedBy)

// System is one simulated machine instance running one or more
// workloads.
type System struct {
	cfg    Config
	llc    *cache.Cache
	sdcDir *coherence.SDCDir
	dram   *dram.Memory
	cores  []*coreCtx
	chk    *check.Checker // nil unless cfg.CheckLevel != check.Off

	// bw is the bound–weave engine while one is running this system
	// (Config.Quantum > 0); nil under the legacy serial engines. Shared-
	// domain paths consult it to defer their side effects to the weave.
	bw *bwEngine

	// llcpf is the shared cross-core LLC prefetcher (the "pickle"
	// preset), nil otherwise. It observes demand misses from every core
	// at the LLC. Both engines touch it only from serial code — the
	// legacy multi-core engine interleaves cores on one goroutine, and
	// the bound–weave engine trains/issues during the serial weave
	// replay — so one shared scratch buffer is safe.
	llcpf    prefetch.Prefetcher
	llcPfBuf []mem.BlockAddr

	// warming is true while the sampling engine is functionally warming
	// (never set for unsampled runs): shared-state callbacks that issue
	// timed DRAM traffic (onSDCDirEvict) switch to warm row touches.
	warming bool

	// Observer, when set, sees demand loads in the measure window.
	Observer Observer
}

// Checker returns the differential checker, or nil when checking is
// off.
func (s *System) Checker() *check.Checker { return s.chk }

type coreCtx struct {
	id  int
	sys *System
	w   Workload

	cpuCore *cpu.Core
	l1d     *cache.Cache
	victim  *cache.Cache
	l2      *cache.Cache
	sdc     *cache.Cache
	lp      *corepkg.LP
	alp     *corepkg.AdaptiveLP
	tlbs    *tlb.Hierarchy
	l1pf    prefetch.Prefetcher
	sdcpf   prefetch.Prefetcher
	l2pf    prefetch.Prefetcher
	imppf   prefetch.Prefetcher // indirect-memory prefetcher, nil unless preset enables it
	oracle  cache.NextUseOracle
	irreg   []*mem.Region
	noSPP   bool

	pfBuf []mem.BlockAddr
	// sppBuf holds l2Access's SPP candidates across the recursive
	// prefetch walk (which reuses pfBuf), so the demand path allocates
	// nothing per record. l2Access never nests inside itself with
	// pf=false, so one buffer per core suffices.
	sppBuf []mem.BlockAddr

	// Window accounting.
	inMeasure    bool
	doneMeasure  bool
	baseCounters stats.CoreStats // snapshot at warm-up end

	// Epoch sampler state (armed by beginMeasure when the config's
	// EpochInterval is positive; nextEpoch is noEpoch otherwise, so
	// the hot loop pays a single comparison).
	nextEpoch int64
	epochBase stats.CoreStats   // snapshot at the current epoch start
	epochs    []obs.EpochSample // completed epoch deltas

	// Flight-recorder state (nil / disarmed unless cfg.FlightRecorder).
	// recorder owns the run's data; fr aliases it only while the
	// measurement window is open — beginMeasure attaches it (and the
	// cpu/cache/dram taps), the window-close snapshot detaches — so the
	// recorder's totals are exactly the measurement-window deltas.
	// nextFR is the next occupancy-sample boundary (noEpoch when
	// disarmed, folding into the observe fast path's one comparison).
	recorder   *obs.Recorder
	fr         *obs.Recorder
	nextFR     int64
	frInterval int64

	// Final measure-window stats (valid once doneMeasure).
	measured stats.CoreStats

	// Serving-level counters (running totals; snapshot like the rest).
	served [8]int64

	// Differential-checker state (nil / unused when checking is off;
	// every hook site is gated on chk != nil so the Off cost is one
	// pointer compare). curPC carries the access PC into the routing
	// paths, whose signatures the direct-call unit tests pin down;
	// verScratch carries the version a hierarchy serve delivered back
	// up from l2Access/llcAccess (0 = unknown, e.g. MSHR merges).
	chk        *check.Checker
	curPC      uint64
	verScratch uint64
	// nextSweep triggers the periodic invariant sweep (check.Full),
	// armed like nextEpoch so the hot loop pays one comparison.
	nextSweep int64
	// nextEvent is the earliest of every armed boundary above (sweep,
	// warm-up end, epoch, measure end); observe's fast path compares
	// the instruction count against it once per record. Zero initially
	// so the first record takes the slow path and arms it.
	nextEvent int64

	// bw is the core's bound–weave state while that engine runs (see
	// boundweave.go); nil under the legacy serial engines. Every
	// shared-domain routing path branches on it to buffer its effects
	// into the quantum event log instead of mutating shared state.
	bw *bwCore

	// Statistical-sampling state (warm.go / checkpoint.go). warmMode is
	// warmOff for unsampled runs, making observe's extra cost one byte
	// compare per record; under sampling it cycles functional-warm ↔ off
	// at sample boundaries, or starts in warmDrain when a warm-up
	// checkpoint was found. nextSampleStart/nextSampleEnd fold into the
	// nextEvent boundary minimum like every other window boundary.
	warmMode        uint8
	warmWalkFn      tlb.WarmWalkFunc
	nextSampleStart int64
	nextSampleMeas  int64
	nextSampleEnd   int64
	sampleK         int
	sampleBase      stats.CoreStats
	sampleDeltas    []stats.CoreStats
	// Checkpoint bookkeeping: drainTo is the instruction position the
	// restored warm-up ended at (drainCount tracks progress toward it);
	// ckptPayload holds the decoded state until the drain arrives;
	// ckptCommit publishes a freshly captured warm-up on a store miss.
	drainTo     int64
	drainCount  int64
	ckptPayload []byte
	ckptCommit  func([]byte) error
	ckptHit     bool
}

// warmMode values.
const (
	warmOff        = iota // detailed simulation (the only mode when sampling is off)
	warmFunctional        // functional warming: tags/recency/row state, no timing or stats
	warmDrain             // checkpoint resume: count instructions only, touch nothing
)

// checkSweepEvery is the retired-instruction period of the structural
// invariant sweep in check.Full runs.
const checkSweepEvery = 4096

// oracleMux dispatches T-OPT rank queries to the owning core's
// workload oracle based on the address window.
type oracleMux struct {
	oracles []cache.NextUseOracle
}

// poptOracle coarsens ranks to 32 epochs, modelling P-OPT's quantized
// re-reference matrix.
type poptOracle struct {
	inner cache.NextUseOracle
}

// Rank implements cache.NextUseOracle.
func (p poptOracle) Rank(blk mem.BlockAddr) uint8 {
	r := p.inner.Rank(blk)
	if r == cache.RankMax {
		return r
	}
	return r &^ 7
}

// Rank implements cache.NextUseOracle.
func (m *oracleMux) Rank(blk mem.BlockAddr) uint8 {
	coreID := int(uint64(blk) >> (mem.CoreSpaceBits - mem.BlockBits))
	if coreID < len(m.oracles) && m.oracles[coreID] != nil {
		return m.oracles[coreID].Rank(blk)
	}
	return cache.RankDefault
}

// NewSystem builds a machine from cfg with one workload per core slot.
// Slots may hold a zero Workload (idle core).
func NewSystem(cfg Config, ws []Workload) *System {
	if len(ws) != cfg.Cores {
		panic("sim: workload count must equal core count")
	}
	if cfg.Sampling.Enabled() {
		// The sampler owns the window state machine and the byte-identity
		// contract of the other observation subsystems; it composes with
		// none of them. Misconfigurations panic here, at machine build
		// time, rather than producing silently wrong estimates.
		if !cfg.Sampling.Valid() {
			panic(fmt.Sprintf("sim: invalid sampling plan %+v", cfg.Sampling.Plan))
		}
		if cfg.Cores != 1 {
			panic("sim: sampling requires a single-core machine")
		}
		if cfg.CheckLevel != check.Off || cfg.EpochInterval > 0 || cfg.FlightRecorder || cfg.Quantum > 0 {
			panic("sim: sampling composes with none of check/epochs/flight-recorder/bound-weave")
		}
	}
	s := &System{cfg: cfg, dram: dram.NewMemory(cfg.DRAM, cfg.DRAMChannels)}
	if cfg.CheckLevel != check.Off {
		s.chk = check.New(cfg.CheckLevel)
	}

	llcCfg := cfg.llcConfig()
	if cfg.LLCRRIP {
		llcCfg.Policy = cache.SRRIP{}
	}
	mux := &oracleMux{oracles: make([]cache.NextUseOracle, cfg.Cores)}
	if cfg.LLCTOPT {
		var oracle cache.NextUseOracle = mux
		if cfg.LLCPOPT {
			// P-OPT: the re-reference matrix occupies one LLC way per
			// set and is itself epoch-quantized.
			llcCfg.SizeBytes = llcCfg.SizeBytes / llcCfg.Ways * (llcCfg.Ways - 1)
			llcCfg.Ways--
			oracle = poptOracle{inner: mux}
		}
		llcCfg.Policy = &cache.TOPT{Oracle: oracle}
	}
	s.llc = cache.New(llcCfg)

	if cfg.Routing == RouteLP || cfg.Routing == RouteExpert {
		s.sdcDir = coherence.New(cfg.sdcDirConfig(), s.onSDCDirEvict)
	}

	for i := 0; i < cfg.Cores; i++ {
		c := &coreCtx{id: i, sys: s, w: ws[i], nextEpoch: noEpoch, chk: s.chk, nextSweep: noEpoch, nextFR: noEpoch,
			nextSampleStart: noEpoch, nextSampleMeas: noEpoch, nextSampleEnd: noEpoch}
		if cfg.Sampling.Enabled() {
			// The warm-up itself runs under functional warming; detailed
			// simulation only happens inside samples.
			c.warmMode = warmFunctional
			s.warming = true
		}
		if cfg.CheckLevel == check.Full {
			c.nextSweep = checkSweepEvery
		}
		if cfg.FlightRecorder {
			c.frInterval = cfg.frInterval()
			c.recorder = obs.NewRecorder(c.frInterval)
		}
		l1Cfg := cfg.L1D
		c.l1d = cache.New(l1Cfg)
		if cfg.VictimEntries > 0 {
			c.victim = cache.New(cache.Config{
				Name:      "VC",
				SizeBytes: cfg.VictimEntries * mem.BlockSize,
				Ways:      cfg.VictimEntries, // fully associative
				Latency:   1,
			})
		}
		l2Cfg := cfg.L2
		if cfg.L2Distill {
			l2Cfg.Distill = true
			l2Cfg.DistillWOCWays = cfg.L2DistillWays
		}
		c.l2 = cache.New(l2Cfg)
		if cfg.Routing == RouteLP || cfg.Routing == RouteExpert {
			c.sdc = cache.New(cfg.SDC)
			c.sdcpf = prefetch.NextLine{}
		}
		if cfg.Routing == RouteLP || cfg.Routing == RouteBypass {
			if cfg.LPAdaptive {
				c.alp = corepkg.NewAdaptiveLP(cfg.LP)
				c.lp = c.alp.LP
			} else {
				c.lp = corepkg.NewLP(cfg.LP)
			}
		}
		// Prefetcher wiring: the default is Table I's (next-line at the
		// L1D/SDC, SPP at the L2); cfg.Prefetchers swaps in one of the
		// competitive baseline presets, and cfg.NoPrefetch (the
		// historical knob) still forces everything off.
		c.l1pf = prefetch.NextLine{}
		c.l2pf = prefetch.NewSPP()
		switch cfg.Prefetchers {
		case "", "spp":
			// Default Table I wiring.
		case "none":
			c.l1pf = prefetch.None{}
			c.sdcpf = prefetch.None{}
			c.noSPP = true
		case "nextline":
			c.noSPP = true
		case "stride":
			c.l2pf = prefetch.NewStride()
		case "imp":
			c.noSPP = true
			c.imppf = prefetch.NewIMP()
		case "pickle":
			c.noSPP = true
			if s.llcpf == nil {
				s.llcpf = prefetch.NewPickle()
			}
		case "spp+imp":
			c.imppf = prefetch.NewIMP()
		default:
			panic(fmt.Sprintf("sim: unknown prefetcher preset %q", cfg.Prefetchers))
		}
		if cfg.NoPrefetch {
			c.l1pf = prefetch.None{}
			c.sdcpf = prefetch.None{}
			c.noSPP = true
			c.imppf = nil
			s.llcpf = nil
		}
		ptBase := mem.Addr(uint64(i)<<mem.CoreSpaceBits) + ptOffset
		cc := c
		c.tlbs = tlb.DefaultHierarchy(ptBase, func(addr mem.Addr, now int64) int64 {
			return cc.walkRead(addr, now)
		})
		if cfg.Sampling.Enabled() {
			// Warm page walks touch the leaf PTE block through the warm L2
			// path, mirroring walkRead; the closure is built once so the
			// warm loop allocates nothing per record.
			c.warmWalkFn = func(addr mem.Addr) {
				cc.warmL2(addr.Block(), addr, 8)
			}
		}
		cpuCfg := cfg.CPU
		if cfg.BranchMissPenalty > 0 {
			cpuCfg.BranchMissPenalty = cfg.BranchMissPenalty
		}
		c.cpuCore = cpu.New(cpuCfg, func(pc uint64, addr mem.Addr, size uint8, write bool, issue int64, hint mem.ValueHint) mem.Response {
			return cc.access(pc, addr, size, write, issue, hint)
		})
		if ws[i].Inst != nil {
			c.irreg = ws[i].Inst.IrregularRegions()
			if cfg.LLCTOPT {
				c.oracle = ws[i].Inst.Oracle()
				mux.oracles[i] = c.oracle
			}
		}
		s.cores = append(s.cores, c)
	}
	return s
}

// onSDCDirEvict implements the SDCDir replacement semantics of Section
// III-C: every SDC holding the block invalidates it, writing back to
// DRAM if dirty. The write-back is charged to the DRAM state at the
// current approximate time (the owning core's clock).
func (s *System) onSDCDirEvict(blk mem.BlockAddr, sharers uint64) {
	if s.warming {
		// Functional warming: the back-invalidation is real state the
		// warm-up must reproduce, but the write-back becomes a timeless
		// row touch instead of a timed DRAM access.
		for i := 0; i < s.cfg.Cores; i++ {
			if sharers&(1<<i) == 0 || s.cores[i].sdc == nil {
				continue
			}
			if present, dirty := s.cores[i].sdc.Invalidate(blk); present && dirty {
				s.dram.WarmTouch(blk)
			}
		}
		return
	}
	if s.bw != nil {
		// Replay-time capacity eviction: the bound phase that logged
		// this quantum saw the SDC copies as live, so the invalidations
		// are deferred to the weave's end (boundweave.go).
		s.bw.deferEvict(blk, sharers)
		return
	}
	for i := 0; i < s.cfg.Cores; i++ {
		if sharers&(1<<i) == 0 {
			continue
		}
		c := s.cores[i]
		if c.sdc == nil {
			continue
		}
		var ver uint64
		if s.chk != nil {
			ver = c.sdc.VerOf(blk)
		}
		if present, dirty := c.sdc.Invalidate(blk); present && dirty {
			s.dram.Access(blk, true, c.cpuCore.Cycle())
			if s.chk != nil {
				s.chk.DRAMWrite(blk, ver)
			}
		}
	}
}

// isIrregular applies the Expert Programmer classification.
func (c *coreCtx) isIrregular(addr mem.Addr) bool {
	for _, r := range c.irreg {
		if r.Contains(addr) {
			return true
		}
	}
	return false
}

// access is the core-side entry point for every demand memory access.
func (c *coreCtx) access(pc uint64, addr mem.Addr, size uint8, write bool, issue int64, hint mem.ValueHint) mem.Response {
	blk := addr.Block()
	// Stash the PC for oracle provenance and for PC-keyed prefetchers;
	// the routing paths keep their test-pinned signatures.
	c.curPC = pc

	// The indirect-memory prefetcher observes every demand load —
	// including L1 hits, since the index stream it trains on is usually
	// cache-resident — and issues its gather prefetches at the index
	// load's issue point, through the L1 prefetch path. Issuing here
	// (rather than after the dependent gather misses) is what hides the
	// dependent-load serialization IMP targets.
	if c.imppf != nil && !write {
		c.pfBuf = c.imppf.OnAccess(mem.AccessInfo{PC: pc, Addr: addr, Blk: blk, Core: c.id, ValueHint: hint}, c.pfBuf[:0])
		for _, cand := range c.pfBuf {
			c.l1Prefetch(cand, issue)
		}
	}

	// Address translation proceeds in parallel with the (VIPT) L1D/SDC
	// lookup; only its excess latency delays the response.
	transReady := c.tlbs.Translate(addr.Page(), issue)

	averse := false
	switch c.sys.cfg.Routing {
	case RouteLP, RouteBypass:
		averse = c.lp.PredictAndUpdate(pc, blk)
	case RouteExpert:
		averse = c.isIrregular(addr)
	}
	if c.fr != nil && c.sys.cfg.Routing != RouteNone {
		c.fr.LPDecision(averse)
	}

	var resp mem.Response
	switch {
	case averse && c.sys.cfg.Routing == RouteBypass:
		resp = c.bypassAccess(blk, addr, size, write, issue)
	case averse:
		resp = c.sdcAccess(blk, addr, size, write, issue)
	default:
		resp = c.l1Access(blk, addr, size, write, issue)
	}
	if transReady > resp.Ready {
		resp.Ready = transReady
	}

	if !write {
		c.served[resp.Source]++
		if c.fr != nil {
			c.fr.Load(resp.Source, resp.Ready-issue)
		}
		if c.alp != nil {
			c.alp.Feedback(averse, resp.Source)
		}
		if c.inMeasure && c.sys.Observer != nil {
			c.sys.Observer(c.id, pc, blk, resp.Source)
		}
	}
	return resp
}

// walkRead serves a page-walker leaf-PTE read: it enters the hierarchy
// at the L2, as hardware walkers do.
func (c *coreCtx) walkRead(addr mem.Addr, now int64) int64 {
	resp := c.l2Access(addr.Block(), addr, 8, false, false, now)
	return resp.Ready
}

// bypassAccess is the Selective-Cache-style ablation path: a
// cache-averse access checks the L1D (it is adjacent and VIPT), then
// goes straight to DRAM without allocating anywhere — L2/LLC bypass
// with no SDC. Cached copies in the local hierarchy still serve the
// access for correctness.
func (c *coreCtx) bypassAccess(blk mem.BlockAddr, addr mem.Addr, size uint8, write bool, issue int64) mem.Response {
	s := c.sys
	res := c.l1d.Lookup(blk, addr, size, write, false, issue)
	if res.Hit {
		c.checkCacheHit(c.l1d, blk, mem.ServedL1D, write)
		return mem.Response{Ready: res.ReadyAt, Source: mem.ServedL1D}
	}
	t := res.ReadyAt
	if present, _ := c.l2.ProbeDirty(blk); present {
		r := c.l2.Lookup(blk, addr, size, write, false, t)
		c.checkCacheHit(c.l2, blk, mem.ServedL2, write)
		return mem.Response{Ready: r.ReadyAt, Source: mem.ServedL2}
	}
	if c.bw != nil {
		return c.bwBypassShared(blk, addr, size, write, t)
	}
	if present, _ := s.llc.ProbeDirty(blk); present {
		r := s.llc.Lookup(blk, addr, size, write, false, t+c.l2.Latency())
		c.checkCacheHit(s.llc, blk, mem.ServedLLC, write)
		return mem.Response{Ready: r.ReadyAt, Source: mem.ServedLLC}
	}
	done := s.dram.Access(blk, write, t)
	if write {
		done = t + 1 // write-through to DRAM, off the critical path
	}
	if c.chk != nil {
		if write {
			c.chk.DRAMWrite(blk, c.chk.StoreAbsorbed(blk))
		} else {
			c.chk.CheckLoad(c.id, c.curPC, blk, mem.ServedDRAM, c.chk.DRAMRead(blk))
		}
	}
	return mem.Response{Ready: done, Source: mem.ServedDRAM}
}

// checkCacheHit applies the oracle to a demand hit in a cache: a load
// must have been served at the architectural version, a store dirties
// the line and bumps the version in place.
func (c *coreCtx) checkCacheHit(ch *cache.Cache, blk mem.BlockAddr, src mem.ServedBy, write bool) {
	if c.chk == nil {
		return
	}
	if write {
		ch.SetVer(blk, c.chk.StoreAbsorbed(blk))
		return
	}
	c.chk.CheckLoad(c.id, c.curPC, blk, src, ch.VerOf(blk))
}

// --- SDC path (Section III-D) ---

func (c *coreCtx) sdcAccess(blk mem.BlockAddr, addr mem.Addr, size uint8, write bool, issue int64) mem.Response {
	s := c.sys
	res := c.sdc.Lookup(blk, addr, size, write, false, issue)
	if res.Hit {
		if write {
			if c.bw != nil {
				// Disjoint per-core windows: no other SDC can share the
				// line, so the upgrade is just the directory round.
				c.bwDirLookup(blk, res.ReadyAt)
				c.bwDirAddSharer(blk, res.ReadyAt, true)
			} else {
				// A write upgrade: any other SDC sharing the line must
				// invalidate its copy before we own it Modified.
				if sharers, _, ok := s.sdcDir.Lookup(blk); ok {
					for i := range s.cores {
						if i == c.id || sharers&(1<<i) == 0 || s.cores[i].sdc == nil {
							continue
						}
						s.cores[i].sdc.Invalidate(blk)
					}
				}
				s.sdcDir.AddSharer(blk, c.id, true)
			}
		}
		c.checkCacheHit(c.sdc, blk, mem.ServedSDC, write)
		return mem.Response{Ready: res.ReadyAt, Source: mem.ServedSDC}
	}

	// Miss: merge into an outstanding fill if one exists.
	t := res.ReadyAt // lookup latency charged
	if m := c.sdc.MSHR(); m != nil {
		if ready, inflight := m.Lookup(blk, t); inflight {
			c.sdc.Stats.MergedMSHR++
			if c.chk != nil && !write {
				// Merged into an in-flight fill: served version unknown.
				c.chk.CheckLoad(c.id, c.curPC, blk, mem.ServedSDC, 0)
			}
			return mem.Response{Ready: max64(ready, t), Source: mem.ServedSDC}
		}
		t = m.Allocate(blk, t)
	}

	// Coherence: the SDCDir and the cache directory are checked while
	// the DRAM access is launched speculatively (the "fast path to
	// DRAM" of Section III-A); whichever source holds the valid copy
	// serves. The local L1D/L2 are probed en route (they sit between
	// the SDC and the directory), so locally-resident blocks serve at
	// their own latency rather than a full directory round.
	dirDone := t + s.cfg.DirLatency

	// (a) Our own or a remote SDC holds it. Under the bound–weave
	// engine our own SDC just missed and no remote SDC can hold our
	// blocks (disjoint windows), so only the directory round's
	// stats/LRU are logged; the branch itself is dead.
	if c.bw != nil {
		c.bwDirLookup(blk, t)
	} else if sharers, _, ok := s.sdcDir.Lookup(blk); ok && sharers != 0 {
		ready := c.serveFromSDCs(blk, addr, size, write, sharers, dirDone)
		if m := c.sdc.MSHR(); m != nil {
			m.Complete(blk, ready)
		}
		src := mem.ServedRemote
		if sharers == 1<<c.id {
			src = mem.ServedSDC
		}
		return mem.Response{Ready: ready, Source: src}
	}

	// (b) A private cache or the LLC holds it.
	if ready, found, src := c.serveFromHierarchy(blk, addr, size, write, dirDone); found {
		if m := c.sdc.MSHR(); m != nil {
			m.Complete(blk, ready)
		}
		return mem.Response{Ready: ready, Source: src}
	}

	// (c) DRAM, bypassing L2 and LLC. The row access was launched in
	// parallel with the directory check.
	var dramDone int64
	if c.bw != nil {
		dramDone = c.bwDRAMRead(blk, t, false)
	} else {
		dramDone = s.dram.Access(blk, false, t)
	}
	ready := max64(dramDone, dirDone)
	var ver uint64
	if c.chk != nil {
		ver = c.chk.DRAMRead(blk)
		if write {
			ver = c.chk.StoreAbsorbed(blk)
		} else {
			c.chk.CheckLoad(c.id, c.curPC, blk, mem.ServedDRAM, ver)
		}
	}
	c.fillSDC(blk, addr, size, write, ready, ver)
	if m := c.sdc.MSHR(); m != nil {
		m.Complete(blk, ready)
	}

	// Next-line prefetch into the SDC (Table I), only for blocks nobody
	// else holds, to keep coherence simple. Prefetches launch at the
	// demand's issue point, not its completion, so they never reserve
	// bank/bus time in the future of younger demand requests.
	c.pfBuf = c.sdcpf.OnAccess(mem.AccessInfo{PC: c.curPC, Addr: addr, Blk: blk, Core: c.id}, c.pfBuf[:0])
	for _, cand := range c.pfBuf {
		c.sdcPrefetch(cand, t)
	}

	return mem.Response{Ready: ready, Source: mem.ServedDRAM}
}

// serveFromSDCs handles an SDC miss that hits in the SDCDir: the block
// lives in one or more SDCs (possibly our own — e.g. a WOC-less alias —
// but normally a remote core's).
func (c *coreCtx) serveFromSDCs(blk mem.BlockAddr, addr mem.Addr, size uint8, write bool, sharers uint64, t int64) int64 {
	s := c.sys
	ready := t
	if write {
		// Invalidate every copy; dirty data goes back to DRAM, then we
		// own the line Modified.
		for i := range s.cores {
			if sharers&(1<<i) == 0 || s.cores[i].sdc == nil {
				continue
			}
			var ver uint64
			if c.chk != nil {
				ver = s.cores[i].sdc.VerOf(blk)
			}
			if present, dirty := s.cores[i].sdc.Invalidate(blk); present && dirty {
				s.dram.Access(blk, true, t)
				if c.chk != nil {
					c.chk.DRAMWrite(blk, ver)
				}
			}
		}
		s.sdcDir.InvalidateAll(blk)
		var fillVer uint64
		if c.chk != nil {
			fillVer = c.chk.StoreAbsorbed(blk)
		}
		c.fillSDC(blk, addr, size, true, ready, fillVer)
		return ready
	}
	// Read: a cache-to-cache transfer; join the sharers.
	remote := sharers&^(1<<c.id) != 0
	if remote {
		ready += s.cfg.DirLatency / 2 // transfer hop
	}
	var ver uint64
	if c.chk != nil {
		for i := range s.cores {
			if sharers&(1<<i) == 0 || s.cores[i].sdc == nil {
				continue
			}
			if v := s.cores[i].sdc.VerOf(blk); v != 0 {
				ver = v
				break
			}
		}
		src := mem.ServedSDC
		if remote {
			src = mem.ServedRemote
		}
		c.chk.CheckLoad(c.id, c.curPC, blk, src, ver)
	}
	c.fillSDC(blk, addr, size, false, ready, ver)
	return ready
}

// serveFromHierarchy probes the caller's and remote cores' private
// caches plus the shared LLC (the idealized full-map directory) for an
// SDC miss. A read is served in place — the copy stays where it is and
// the SDC is NOT filled, so the hierarchy remains the sole owner and no
// copy can go stale behind the SDC's back. A write takes exclusive
// ownership with move semantics: every hierarchy copy is purged and the
// dirty data transfers into the SDC fill (no DRAM write-back needed —
// the SDC copy becomes the owner).
func (c *coreCtx) serveFromHierarchy(blk mem.BlockAddr, addr mem.Addr, size uint8, write bool, t int64) (ready int64, found bool, src mem.ServedBy) {
	s := c.sys
	// Locate the closest (topmost) copy for latency, provenance and
	// the served version: the requester's own private stack is probed
	// top-down on the way to the directory and serves at its own
	// latency (negative lat relative to the directory round).
	var lat int64
	src = mem.ServedNone
	if p, _ := c.l1d.ProbeDirty(blk); p {
		lat, src = c.l1d.Latency()-s.cfg.DirLatency, mem.ServedL1D
	} else if c.victim != nil && c.victim.Probe(blk) {
		lat, src = c.victim.Latency()+c.l1d.Latency()-s.cfg.DirLatency, mem.ServedL1D
	} else if p, _ := c.l2.ProbeDirty(blk); p {
		lat, src = c.l2.Latency()-s.cfg.DirLatency, mem.ServedL2
	} else if c.llcHolds(blk) {
		lat, src = 0, mem.ServedLLC
	} else if c.bw == nil {
		// Remote privates can never hold this core's blocks under the
		// bound–weave engine (disjoint windows), so the probe loop only
		// runs under the legacy engines.
		for i := range s.cores {
			if i == c.id {
				continue
			}
			rc := s.cores[i]
			if rc.l1d.Probe(blk) || (rc.victim != nil && rc.victim.Probe(blk)) || rc.l2.Probe(blk) {
				lat, src = s.cfg.DirLatency/2, mem.ServedRemote
				break
			}
		}
	}
	if src == mem.ServedNone {
		return 0, false, mem.ServedNone
	}
	ready = t + lat

	// The topmost copy in the owning stack carries the newest version.
	var ver uint64
	if c.chk != nil {
		ver = c.hierarchyVer(blk)
	}

	if !write {
		if c.chk != nil {
			c.chk.CheckLoad(c.id, c.curPC, blk, src, ver)
		}
		return ready, true, src
	}

	// Write: purge every copy. Dirty data is not written back — it
	// transfers into the (dirty) SDC fill, which supersedes it.
	purge := func(ch *cache.Cache) {
		if ch != nil {
			ch.Invalidate(blk)
		}
	}
	if c.bw != nil {
		// The LLC purge replays in the weave; only our own private
		// copies exist otherwise.
		c.bwLLCInvalidate(blk, ready)
		purge(c.l1d)
		purge(c.victim)
		purge(c.l2)
	} else {
		purge(s.llc)
		for _, rc := range s.cores {
			purge(rc.l1d)
			purge(rc.victim)
			purge(rc.l2)
		}
	}

	if c.chk != nil {
		ver = c.chk.StoreAbsorbed(blk)
	}
	c.fillSDC(blk, addr, size, true, ready, ver)
	return ready, true, src
}

// hierarchyVer returns the version of the topmost hierarchy copy of
// blk (own stack top-down, then the LLC, then remote stacks), 0 if
// unknown everywhere.
func (c *coreCtx) hierarchyVer(blk mem.BlockAddr) uint64 {
	s := c.sys
	for _, ch := range []*cache.Cache{c.l1d, c.victim, c.l2} {
		if ch == nil {
			continue
		}
		if v := ch.VerOf(blk); v != 0 {
			return v
		}
	}
	if v := c.llcVer(blk); v != 0 {
		return v
	}
	if c.bw != nil {
		return 0 // remote privates never hold this core's blocks
	}
	for i := range s.cores {
		if i == c.id {
			continue
		}
		rc := s.cores[i]
		for _, ch := range []*cache.Cache{rc.l1d, rc.victim, rc.l2} {
			if ch == nil {
				continue
			}
			if v := ch.VerOf(blk); v != 0 {
				return v
			}
		}
	}
	return 0
}

// fillSDC inserts a block into the SDC, handling victim write-back and
// SDCDir bookkeeping. dirty marks the filled copy modified (a store,
// or a dirty transfer from the hierarchy), which also makes the SDCDir
// entry Modified with this core as sole owner. ver is the
// architectural version stamp (0 when checking is off or unknown).
func (c *coreCtx) fillSDC(blk mem.BlockAddr, addr mem.Addr, size uint8, dirty bool, ready int64, ver uint64) {
	s := c.sys
	v := c.sdc.Fill(blk, addr, size, dirty, false, ready)
	if c.chk != nil {
		c.sdc.SetVer(blk, ver)
	}
	if c.bw != nil {
		if v.Valid {
			c.bwDirRemoveSharer(v.Blk, ready)
			if v.Dirty {
				c.bwDRAMWrite(v.Blk, ready, v.Ver)
			}
		}
		c.bwDirAddSharer(blk, ready, dirty)
		return
	}
	if v.Valid {
		s.sdcDir.RemoveSharer(v.Blk, c.id)
		if v.Dirty {
			s.dram.Access(v.Blk, true, ready)
			if c.chk != nil {
				c.chk.DRAMWrite(v.Blk, v.Ver)
			}
		}
	}
	s.sdcDir.AddSharer(blk, c.id, dirty)
}

// sdcPrefetch fetches a next-line candidate into the SDC from DRAM.
func (c *coreCtx) sdcPrefetch(blk mem.BlockAddr, now int64) {
	s := c.sys
	if c.sdc.Probe(blk) {
		return
	}
	if m := c.sdc.MSHR(); m != nil {
		if _, inflight := m.Lookup(blk, now); inflight {
			return
		}
		if m.Outstanding(now) >= m.Capacity() {
			return // never stall for a prefetch
		}
		m.Allocate(blk, now)
		defer m.Complete(blk, now)
	}
	// Skip candidates other agents hold; a real design would take the
	// coherent path, but dropping the prefetch is always safe.
	if c.bw != nil {
		// Our SDC (the only possible sharer of our blocks) missed the
		// probe above, so the directory round is stats/LRU only.
		c.bwDirLookup(blk, now)
		if c.bwAnyCacheHolds(blk) {
			return
		}
	} else {
		if _, _, held := s.sdcDir.Lookup(blk); held {
			return
		}
		if c.anyCacheHolds(blk) {
			return
		}
	}
	var done int64
	if c.bw != nil {
		done = c.bwDRAMRead(blk, now, true)
	} else {
		done = s.dram.Access(blk, false, now)
	}
	var ver uint64
	if c.chk != nil {
		ver = c.chk.DRAMRead(blk)
	}
	c.fillSDC(blk, blk.Addr(), mem.BlockSize, false, done, ver)
	c.sdc.MarkPrefetchFill()
	if m := c.sdc.MSHR(); m != nil {
		m.Complete(blk, done)
	}
}

func (c *coreCtx) anyCacheHolds(blk mem.BlockAddr) bool {
	s := c.sys
	if s.llc.Probe(blk) {
		return true
	}
	for _, rc := range s.cores {
		if rc.l1d.Probe(blk) || rc.l2.Probe(blk) {
			return true
		}
		if rc.victim != nil && rc.victim.Probe(blk) {
			return true
		}
	}
	return false
}

// --- conventional hierarchy path ---

func (c *coreCtx) l1Access(blk mem.BlockAddr, addr mem.Addr, size uint8, write bool, issue int64) mem.Response {
	s := c.sys
	res := c.l1d.Lookup(blk, addr, size, write, false, issue)
	if res.Hit {
		c.checkCacheHit(c.l1d, blk, mem.ServedL1D, write)
		return mem.Response{Ready: res.ReadyAt, Source: mem.ServedL1D}
	}
	t := res.ReadyAt

	// Victim cache: L1D conflict victims are one cycle away and swap
	// back in on a hit (Jouppi).
	if c.victim != nil {
		if vres := c.victim.Lookup(blk, addr, size, write, false, t); vres.Hit {
			var ver uint64
			if c.chk != nil {
				ver = c.victim.VerOf(blk)
				if write {
					ver = c.chk.StoreAbsorbed(blk)
				} else {
					c.chk.CheckLoad(c.id, c.curPC, blk, mem.ServedL1D, ver)
				}
			}
			_, dirty := c.victim.Invalidate(blk)
			c.fillL1(blk, addr, size, write || dirty, vres.ReadyAt, ver)
			return mem.Response{Ready: vres.ReadyAt, Source: mem.ServedL1D}
		}
	}

	// The SDC may hold the block (friendly access to data previously
	// classified averse): the SDCDir transfers it over. The whole SDC
	// domain gives the block up — every sharer's copy is invalidated
	// and the directory entry dropped — so no SDC copy can linger
	// untracked and go stale once the hierarchy owns the line.
	if s.sdcDir != nil {
		var sharers uint64
		if c.bw != nil {
			// Bound phase: the directory question for our own block is
			// answered by our own SDC (the only possible sharer); the
			// stats/LRU-bearing lookup replays in the weave.
			c.bwDirLookup(blk, t)
			if c.sdc != nil && c.sdc.Probe(blk) {
				sharers = 1 << c.id
			}
		} else if sh, _, ok := s.sdcDir.Lookup(blk); ok {
			sharers = sh
		}
		if sharers&(1<<c.id) != 0 {
			ready := t + s.sdcDir.Latency() + c.sdc.Latency()
			var ver uint64
			if c.chk != nil {
				ver = c.sdc.VerOf(blk)
			}
			anyDirty := false
			for i := range s.cores {
				if sharers&(1<<i) == 0 || s.cores[i].sdc == nil {
					continue
				}
				if i == c.id && s.cfg.BreakSDCDirInval {
					// Fault injection (tests only): "forget" to
					// invalidate our own SDC copy while the directory
					// entry is still dropped below — the classic
					// untracked-stale-copy bug the oracle must catch.
					continue
				}
				if _, dirty := s.cores[i].sdc.Invalidate(blk); dirty {
					anyDirty = true
				}
			}
			if c.bw != nil {
				c.bwDirInvalidateAll(blk, t)
			} else {
				s.sdcDir.InvalidateAll(blk)
			}
			if c.chk != nil {
				if write {
					ver = c.chk.StoreAbsorbed(blk)
				} else {
					c.chk.CheckLoad(c.id, c.curPC, blk, mem.ServedSDC, ver)
				}
			}
			c.fillL1(blk, addr, size, write || anyDirty, ready, ver)
			return mem.Response{Ready: ready, Source: mem.ServedSDC}
		}
	}

	if m := c.l1d.MSHR(); m != nil {
		if ready, inflight := m.Lookup(blk, t); inflight {
			c.l1d.Stats.MergedMSHR++
			if c.chk != nil && !write {
				// Merged into an in-flight fill: served version unknown.
				c.chk.CheckLoad(c.id, c.curPC, blk, mem.ServedL2, 0)
			}
			return mem.Response{Ready: max64(ready, t), Source: mem.ServedL2}
		}
		t = m.Allocate(blk, t)
	}

	resp := c.l2Access(blk, addr, size, write, false, t)
	var ver uint64
	if c.chk != nil {
		ver = c.verScratch
		if write {
			ver = c.chk.StoreAbsorbed(blk)
		} else {
			c.chk.CheckLoad(c.id, c.curPC, blk, resp.Source, c.verScratch)
		}
	}
	c.fillL1(blk, addr, size, write, resp.Ready, ver)
	if m := c.l1d.MSHR(); m != nil {
		m.Complete(blk, resp.Ready)
	}

	// Next-line prefetcher (Table I: attached to the L1D), degree 1,
	// triggered on demand misses; the prefetch walks the hierarchy
	// without stalling the core.
	c.pfBuf = c.l1pf.OnAccess(mem.AccessInfo{PC: c.curPC, Addr: addr, Blk: blk, Core: c.id}, c.pfBuf[:0])
	for _, cand := range c.pfBuf {
		c.l1Prefetch(cand, t)
	}
	return resp
}

// fillL1 inserts into the L1D, cascading victims into the victim cache
// (when configured) and dirty data down the hierarchy. ver is the
// version stamp of the filled copy (0 when checking is off).
func (c *coreCtx) fillL1(blk mem.BlockAddr, addr mem.Addr, size uint8, write bool, ready int64, ver uint64) {
	v := c.l1d.Fill(blk, addr, size, write, false, ready)
	if c.chk != nil {
		c.l1d.SetVer(blk, ver)
	}
	if !v.Valid {
		return
	}
	if c.victim != nil {
		vv := c.victim.Fill(v.Blk, v.Blk.Addr(), mem.BlockSize, v.Dirty, false, ready)
		if c.chk != nil {
			c.victim.SetVer(v.Blk, v.Ver)
		}
		if vv.Valid && vv.Dirty {
			c.writebackToL2(vv.Blk, ready, vv.Ver)
		}
		return
	}
	if v.Dirty {
		c.writebackToL2(v.Blk, ready, v.Ver)
	}
}

// writebackToL2 installs a dirty L1 victim in the L2 (allocate-on-
// write-back), cascading further victims. ver travels with the data.
func (c *coreCtx) writebackToL2(blk mem.BlockAddr, now int64, ver uint64) {
	v := c.l2.Fill(blk, blk.Addr(), mem.BlockSize, true, false, now)
	c.l2.Stats.Writebacks++
	if c.chk != nil {
		c.l2.SetVer(blk, ver)
	}
	if v.Valid && v.Dirty {
		c.writebackToLLC(v.Blk, now, v.Ver)
	}
}

func (c *coreCtx) writebackToLLC(blk mem.BlockAddr, now int64, ver uint64) {
	if c.bw != nil {
		c.bw.logEv(bwEvent{kind: bwEvLLCWB, t: now, blk: blk, ver: ver})
		c.bwOverlaySet(blk, true, ver)
		return
	}
	s := c.sys
	v := s.llc.Fill(blk, blk.Addr(), mem.BlockSize, true, false, now)
	s.llc.Stats.Writebacks++
	if c.chk != nil {
		s.llc.SetVer(blk, ver)
	}
	if v.Valid && v.Dirty {
		s.dram.Access(v.Blk, true, now)
		if c.chk != nil {
			c.chk.DRAMWrite(v.Blk, v.Ver)
		}
	}
}

func (c *coreCtx) l2Access(blk mem.BlockAddr, addr mem.Addr, size uint8, write, pf bool, issue int64) mem.Response {
	res := c.l2.Lookup(blk, addr, size, false, pf, issue)

	// SPP trains on every L2 demand access and issues lookahead
	// prefetches into the L2 (prefetch traffic does not re-train it).
	cands := c.sppBuf[:0]
	if !pf && !c.noSPP {
		c.pfBuf = c.l2pf.OnAccess(mem.AccessInfo{PC: c.curPC, Addr: addr, Blk: blk, Hit: res.Hit, Core: c.id}, c.pfBuf[:0])
		cands = append(cands, c.pfBuf...)
	}
	c.sppBuf = cands

	var resp mem.Response
	if res.Hit {
		if c.chk != nil {
			c.verScratch = c.l2.VerOf(blk)
		}
		resp = mem.Response{Ready: res.ReadyAt, Source: mem.ServedL2}
	} else {
		t := res.ReadyAt
		if m := c.l2.MSHR(); m != nil {
			if ready, inflight := m.Lookup(blk, t); inflight {
				c.l2.Stats.MergedMSHR++
				c.verScratch = 0 // merged: delivered version unknown
				resp = mem.Response{Ready: max64(ready, t), Source: mem.ServedLLC}
				return resp
			}
			t = m.Allocate(blk, t)
		}
		resp = c.llcAccess(blk, addr, size, write, pf, t)
		v := c.l2.Fill(blk, addr, size, false, false, resp.Ready)
		if c.chk != nil {
			// llcAccess left the delivered version in verScratch.
			c.l2.SetVer(blk, c.verScratch)
		}
		if v.Valid && v.Dirty {
			c.writebackToLLC(v.Blk, resp.Ready, v.Ver)
		}
		if m := c.l2.MSHR(); m != nil {
			m.Complete(blk, resp.Ready)
		}
	}

	// Prefetches launch at the demand's L2-lookup point, never at its
	// completion time (see sdcAccess for why). They recurse into
	// llcAccess and clobber verScratch with their own blocks' versions,
	// so the demand's delivered version is restored for the caller.
	dv := c.verScratch
	for _, cand := range cands {
		c.l2Prefetch(cand, res.ReadyAt)
	}
	c.verScratch = dv
	return resp
}

// l2Prefetch fetches an SPP candidate into the L2 via the LLC path.
func (c *coreCtx) l2Prefetch(blk mem.BlockAddr, now int64) {
	if c.l2.Probe(blk) {
		return
	}
	if m := c.l2.MSHR(); m != nil {
		if _, inflight := m.Lookup(blk, now); inflight {
			return
		}
		if m.Outstanding(now) >= m.Capacity() {
			return
		}
		m.Allocate(blk, now)
	}
	resp := c.llcAccess(blk, blk.Addr(), mem.BlockSize, false, true, now)
	v := c.l2.Fill(blk, blk.Addr(), mem.BlockSize, false, true, resp.Ready)
	c.l2.MarkPrefetchFill()
	if c.chk != nil {
		c.l2.SetVer(blk, c.verScratch)
	}
	if v.Valid && v.Dirty {
		c.writebackToLLC(v.Blk, resp.Ready, v.Ver)
	}
	if m := c.l2.MSHR(); m != nil {
		m.Complete(blk, resp.Ready)
	}
}

// l1Prefetch fetches a next-line candidate into the L1D via L2.
func (c *coreCtx) l1Prefetch(blk mem.BlockAddr, now int64) {
	// Skip when the L1D or the victim cache already holds the block: a
	// prefetch fill above a newer (possibly dirty) victim-cache copy
	// would resurrect a stale version ahead of it in lookup order.
	if c.l1d.Probe(blk) || (c.victim != nil && c.victim.Probe(blk)) {
		return
	}
	if m := c.l1d.MSHR(); m != nil {
		if _, inflight := m.Lookup(blk, now); inflight {
			return
		}
		if m.Outstanding(now) >= m.Capacity() {
			return
		}
		m.Allocate(blk, now)
	}
	resp := c.l2Access(blk, blk.Addr(), mem.BlockSize, false, true, now)
	v := c.l1d.Fill(blk, blk.Addr(), mem.BlockSize, false, true, resp.Ready)
	c.l1d.MarkPrefetchFill()
	if c.chk != nil {
		c.l1d.SetVer(blk, c.verScratch)
	}
	if v.Valid && v.Dirty {
		c.writebackToL2(v.Blk, resp.Ready, v.Ver)
	}
	if m := c.l1d.MSHR(); m != nil {
		m.Complete(blk, resp.Ready)
	}
}

func (c *coreCtx) llcAccess(blk mem.BlockAddr, addr mem.Addr, size uint8, write, pf bool, issue int64) mem.Response {
	if c.bw != nil {
		return c.bwLLCAccess(blk, addr, size, pf, issue)
	}
	s := c.sys
	res := s.llc.Lookup(blk, addr, size, false, pf, issue)
	if res.Hit {
		if c.chk != nil {
			c.verScratch = s.llc.VerOf(blk)
		}
		return mem.Response{Ready: res.ReadyAt, Source: mem.ServedLLC}
	}
	t := res.ReadyAt
	if m := s.llc.MSHR(); m != nil {
		if ready, inflight := m.Lookup(blk, t); inflight {
			s.llc.Stats.MergedMSHR++
			c.verScratch = 0 // merged: delivered version unknown
			return mem.Response{Ready: max64(ready, t), Source: mem.ServedDRAM}
		}
		t = m.Allocate(blk, t)
	}

	// Directory: a remote private cache or any SDC may hold the block.
	ready := int64(0)
	src := mem.ServedDRAM
	var ver uint64
	if s.sdcDir != nil {
		if sharers, _, ok := s.sdcDir.Lookup(blk); ok && sharers != 0 {
			// Transfer from an SDC; invalidate the copies so the
			// hierarchy becomes the owner.
			for i := range s.cores {
				if sharers&(1<<i) == 0 || s.cores[i].sdc == nil {
					continue
				}
				if c.chk != nil && ver == 0 {
					ver = s.cores[i].sdc.VerOf(blk)
				}
				if present, dirty := s.cores[i].sdc.Invalidate(blk); present && dirty {
					s.dram.Access(blk, true, t)
					if c.chk != nil {
						c.chk.DRAMWrite(blk, ver)
					}
				}
			}
			s.sdcDir.InvalidateAll(blk)
			ready = t + s.sdcDir.Latency() + s.cfg.DirLatency/8
			src = mem.ServedSDC
		}
	}
	if src == mem.ServedDRAM {
		for i := range s.cores {
			rc := s.cores[i]
			if rc.id == c.id {
				continue
			}
			if rc.l1d.Probe(blk) || (rc.victim != nil && rc.victim.Probe(blk)) || rc.l2.Probe(blk) {
				if c.chk != nil {
					// Topmost remote copy carries the newest version.
					for _, ch := range []*cache.Cache{rc.l1d, rc.victim, rc.l2} {
						if ch == nil {
							continue
						}
						if v := ch.VerOf(blk); v != 0 {
							ver = v
							break
						}
					}
				}
				ready = t + s.cfg.DirLatency/2
				src = mem.ServedRemote
				break
			}
		}
	}
	if src == mem.ServedDRAM {
		ready = s.dram.Access(blk, false, t)
		if c.chk != nil {
			ver = c.chk.DRAMRead(blk)
		}
	}

	v := s.llc.Fill(blk, addr, size, false, false, ready)
	if c.chk != nil {
		s.llc.SetVer(blk, ver)
		c.verScratch = ver
	}
	if v.Valid && v.Dirty {
		s.dram.Access(v.Blk, true, ready)
		if c.chk != nil {
			c.chk.DRAMWrite(v.Blk, v.Ver)
		}
	}
	if m := s.llc.MSHR(); m != nil {
		m.Complete(blk, ready)
	}

	// Cross-core LLC prefetcher (the "pickle" preset): it observes the
	// demand-miss stream of every core right here and issues precise
	// prefetches into the shared level. Its fills recurse into
	// chk.DRAMRead and clobber verScratch, so the demand's delivered
	// version is restored for the caller.
	if s.llcpf != nil && !pf {
		s.llcPfBuf = s.llcpf.OnAccess(mem.AccessInfo{PC: c.curPC, Addr: addr, Blk: blk, Core: c.id}, s.llcPfBuf[:0])
		dv := c.verScratch
		for _, cand := range s.llcPfBuf {
			c.llcPrefetch(cand, t)
		}
		c.verScratch = dv
	}
	return mem.Response{Ready: ready, Source: src}
}

// llcPrefetch fetches a cross-core candidate into the shared LLC. The
// block must be absent from the whole hierarchy (a shared-level fill
// above a private dirty copy would shadow it in lookup order) and from
// every SDC (the SDCDir owns those blocks).
func (c *coreCtx) llcPrefetch(blk mem.BlockAddr, now int64) {
	s := c.sys
	if c.anyCacheHolds(blk) {
		return
	}
	if s.sdcDir != nil {
		if sharers, _, ok := s.sdcDir.Lookup(blk); ok && sharers != 0 {
			return
		}
	}
	if m := s.llc.MSHR(); m != nil {
		if _, inflight := m.Lookup(blk, now); inflight {
			return
		}
		if m.Outstanding(now) >= m.Capacity() {
			return
		}
		m.Allocate(blk, now)
	}
	ready := s.dram.Access(blk, false, now)
	v := s.llc.Fill(blk, blk.Addr(), mem.BlockSize, false, true, ready)
	s.llc.MarkPrefetchFill()
	if c.chk != nil {
		s.llc.SetVer(blk, c.chk.DRAMRead(blk))
	}
	if v.Valid && v.Dirty {
		s.dram.Access(v.Blk, true, ready)
		if c.chk != nil {
			c.chk.DRAMWrite(v.Blk, v.Ver)
		}
	}
	if m := s.llc.MSHR(); m != nil {
		m.Complete(blk, ready)
	}
}

// CheckInvariants runs one structural invariant sweep over every cache
// and the SDCDir (see internal/check/invariants.go). It is a no-op
// unless the run is at check.Full; the runner calls it every
// checkSweepEvery retired instructions and once more at the end.
func (s *System) CheckInvariants() {
	k := s.chk
	if k == nil || k.Level() != check.Full {
		return
	}
	k.Sweeps++
	k.CheckCache("LLC", s.llc)
	sdcs := make([]*cache.Cache, len(s.cores))
	for _, c := range s.cores {
		k.CheckCache(fmt.Sprintf("core%d/L1D", c.id), c.l1d)
		if c.victim != nil {
			k.CheckCache(fmt.Sprintf("core%d/VC", c.id), c.victim)
		}
		k.CheckCache(fmt.Sprintf("core%d/L2", c.id), c.l2)
		if c.sdc != nil {
			k.CheckCache(fmt.Sprintf("core%d/SDC", c.id), c.sdc)
		}
		sdcs[c.id] = c.sdc
	}
	if s.sdcDir != nil {
		k.CheckSDCDir(s.sdcDir, sdcs, func(blk mem.BlockAddr) bool {
			return s.cores[0].anyCacheHolds(blk)
		})
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
