package sim

import (
	"testing"

	"graphmem/internal/mem"
)

// victimSystem builds a single-core machine with an 8-entry victim
// cache and no workload, for direct path driving.
func victimSystem() *System {
	cfg := TableI(1).BenchScale().WithVictimCache(8)
	return NewSystem(cfg, make([]Workload, 1))
}

func TestVictimCacheCatchesConflictEvictions(t *testing.T) {
	s := victimSystem()
	c := s.cores[0]
	sets := int64(c.l1d.Config().Sets())
	ways := int64(c.l1d.Config().Ways)
	now := int64(0)
	// Overflow L1D set 0 by one line: blocks k*sets all map to set 0.
	for k := int64(0); k <= ways; k++ {
		resp := c.l1Access(mem.BlockAddr(k*sets), mem.Addr(k*sets<<6), 4, false, now)
		now = resp.Ready + 10
	}
	// Block 0 was evicted into the victim cache; re-access must be an
	// L1-adjacent hit, not a hierarchy walk.
	resp := c.l1Access(0, 0, 4, false, now)
	if resp.Source != mem.ServedL1D {
		t.Fatalf("victim-resident block served by %v", resp.Source)
	}
	if resp.Ready-now > 10 {
		t.Errorf("victim hit took %d cycles", resp.Ready-now)
	}
	if !c.l1d.Probe(0) {
		t.Error("victim hit did not swap the block back into L1D")
	}
}

func TestVictimCacheDirtyWritebackPreserved(t *testing.T) {
	s := victimSystem()
	c := s.cores[0]
	sets := int64(c.l1d.Config().Sets())
	ways := int64(c.l1d.Config().Ways)
	now := int64(0)
	// Dirty block 0, then push it through the L1D and the 8-entry
	// victim cache; its dirtiness must reach the L2.
	c.l1Access(0, 0, 4, true, now)
	for k := int64(1); k <= ways+9; k++ {
		resp := c.l1Access(mem.BlockAddr(k*sets), mem.Addr(k*sets<<6), 4, false, now)
		now = resp.Ready + 10
	}
	if c.victim.Probe(0) || c.l1d.Probe(0) {
		t.Fatal("test bug: block 0 still in L1D/VC")
	}
	if present, dirty := c.l2.ProbeDirty(0); !present || !dirty {
		t.Errorf("dirty victim lost: present=%v dirty=%v", present, dirty)
	}
}

func TestVictimCacheConfigName(t *testing.T) {
	cfg := TableI(1).WithVictimCache(8)
	if cfg.Name != "VictimCache-8" || cfg.VictimEntries != 8 {
		t.Errorf("config = %q / %d", cfg.Name, cfg.VictimEntries)
	}
}
