// Functional warming for the statistical sampling engine
// (internal/sample): the warm-up window and the gaps between detailed
// samples replay the record stream through stat-free, timing-free
// mirrors of the routing paths in system.go. Tags, recency, dirty
// bits, predictor and directory state and DRAM open rows evolve exactly
// as a detailed run's would at the structural level; MSHRs,
// prefetchers, latencies and every Stats counter stay untouched, which
// is what keeps per-sample counter deltas clean and the warm-up
// checkpoint payload small.
//
// The mirrors assume the single-core machine the sampler is restricted
// to (NewSystem panics otherwise): no remote SDCs or private caches
// exist, so the remote-probe arms of the detailed paths are dead and
// deliberately not mirrored.
package sim

import (
	"graphmem/internal/mem"
	"graphmem/internal/stats"
	"graphmem/internal/trace"
)

// warmObserve consumes one record while warmMode != warmOff. In
// warmDrain (checkpoint resume) it only counts instructions until the
// recorded warm-up end, then restores the checkpointed state; in
// warmFunctional it retires the record into the counters and warm-
// touches the hierarchy, sharing observeSlow's boundary cascade with
// the detailed path.
func (c *coreCtx) warmObserve(r trace.Record) bool {
	if c.warmMode == warmDrain {
		c.drainCount += int64(r.NonMem) + 1
		if c.drainCount >= c.drainTo {
			c.resumeFromCheckpoint()
		}
		return true
	}
	c.cpuCore.WarmRetire(r)
	if !c.sys.cfg.Sampling.MisWarm {
		c.warmTouch(r)
	}
	if c.cpuCore.Instructions < c.nextEvent {
		return !c.doneMeasure
	}
	return c.observeSlow()
}

// warmTouch mirrors coreCtx.access: translation, LP/expert routing, and
// the chosen data path, all through the warm methods.
func (c *coreCtx) warmTouch(r trace.Record) {
	blk := r.Addr.Block()
	c.tlbs.WarmTranslate(r.Addr.Page(), c.warmWalkFn)

	averse := false
	switch c.sys.cfg.Routing {
	case RouteLP, RouteBypass:
		averse = c.lp.WarmPredictAndUpdate(r.PC, blk)
	case RouteExpert:
		averse = c.isIrregular(r.Addr)
	}
	switch {
	case averse && c.sys.cfg.Routing == RouteBypass:
		c.warmBypass(blk, r.Addr, r.Size, r.Write)
	case averse:
		c.warmSDC(blk, r.Addr, r.Size, r.Write)
	default:
		c.warmL1(blk, r.Addr, r.Size, r.Write)
	}
}

// warmBypass mirrors bypassAccess: serve from whatever level holds the
// block, else touch the DRAM row; nothing allocates.
func (c *coreCtx) warmBypass(blk mem.BlockAddr, addr mem.Addr, size uint8, write bool) {
	if c.l1d.WarmLookup(blk, addr, size, write) {
		return
	}
	if c.l2.WarmLookup(blk, addr, size, write) {
		return
	}
	if c.sys.llc.WarmLookup(blk, addr, size, write) {
		return
	}
	c.sys.dram.WarmTouch(blk)
}

// warmSDC mirrors sdcAccess minus MSHRs and the next-line prefetch.
func (c *coreCtx) warmSDC(blk mem.BlockAddr, addr mem.Addr, size uint8, write bool) {
	s := c.sys
	if c.sdc.WarmLookup(blk, addr, size, write) {
		if write {
			s.sdcDir.WarmAddSharer(blk, c.id, true)
		}
		return
	}
	// Miss. The directory may still track a copy (e.g. a WOC alias that
	// could not serve this word mask).
	if sharers, _, ok := s.sdcDir.WarmLookup(blk); ok && sharers != 0 {
		if write {
			if present, dirty := c.sdc.Invalidate(blk); present && dirty {
				s.dram.WarmTouch(blk)
			}
			s.sdcDir.InvalidateAll(blk)
		}
		c.warmFillSDC(blk, addr, size, write)
		return
	}
	// The hierarchy may hold it: reads are served in place (the detailed
	// path's pure probes change no state, so there is nothing to mirror);
	// writes purge every copy and take SDC ownership.
	if held := c.l1d.Probe(blk) ||
		(c.victim != nil && c.victim.Probe(blk)) ||
		c.l2.Probe(blk) || s.llc.Probe(blk); held {
		if write {
			s.llc.Invalidate(blk)
			c.l1d.Invalidate(blk)
			if c.victim != nil {
				c.victim.Invalidate(blk)
			}
			c.l2.Invalidate(blk)
			c.warmFillSDC(blk, addr, size, true)
		}
		return
	}
	// DRAM, bypassing L2 and LLC.
	s.dram.WarmTouch(blk)
	c.warmFillSDC(blk, addr, size, write)
	// Next-line prefetch into the SDC, exactly when the detailed path
	// issues one (a miss served from DRAM). Skipping prefetchers during
	// warming would leave the SDC tags systematically short of the
	// next-line content every sample starts from.
	c.pfBuf = c.sdcpf.OnAccess(mem.AccessInfo{Blk: blk, Addr: addr, Core: c.id}, c.pfBuf[:0])
	for _, cand := range c.pfBuf {
		c.warmSDCPrefetch(cand)
	}
}

// warmSDCPrefetch mirrors sdcPrefetch's fill conditions without MSHR
// occupancy checks (MSHRs are idle while warming).
func (c *coreCtx) warmSDCPrefetch(blk mem.BlockAddr) {
	s := c.sys
	if c.sdc.Probe(blk) {
		return
	}
	if _, _, held := s.sdcDir.WarmLookup(blk); held {
		return
	}
	if c.anyCacheHolds(blk) {
		return
	}
	s.dram.WarmTouch(blk)
	c.warmFillSDC(blk, blk.Addr(), mem.BlockSize, false)
}

// warmFillSDC mirrors fillSDC: insert, handle the victim's directory
// exit and dirty row touch, record the sharer.
func (c *coreCtx) warmFillSDC(blk mem.BlockAddr, addr mem.Addr, size uint8, dirty bool) {
	s := c.sys
	v := c.sdc.WarmFill(blk, addr, size, dirty)
	if v.Valid {
		s.sdcDir.RemoveSharer(v.Blk, c.id)
		if v.Dirty {
			s.dram.WarmTouch(v.Blk)
		}
	}
	s.sdcDir.WarmAddSharer(blk, c.id, dirty)
}

// warmL1 mirrors l1Access minus MSHRs and prefetchers.
func (c *coreCtx) warmL1(blk mem.BlockAddr, addr mem.Addr, size uint8, write bool) {
	s := c.sys
	if c.l1d.WarmLookup(blk, addr, size, write) {
		return
	}
	if c.victim != nil {
		if present, dirty := c.victim.ProbeDirty(blk); present {
			c.victim.Invalidate(blk)
			c.warmFillL1(blk, addr, size, write || dirty)
			return
		}
	}
	// SDC transfer: the whole SDC domain gives the block up.
	if s.sdcDir != nil {
		if sharers, _, ok := s.sdcDir.WarmLookup(blk); ok && sharers&(1<<c.id) != 0 {
			_, dirty := c.sdc.Invalidate(blk)
			s.sdcDir.InvalidateAll(blk)
			c.warmFillL1(blk, addr, size, write || dirty)
			return
		}
	}
	c.warmL2(blk, addr, size)
	c.warmFillL1(blk, addr, size, write)
	// Next-line prefetcher on the demand miss, as in l1Access.
	c.pfBuf = c.l1pf.OnAccess(mem.AccessInfo{Blk: blk, Addr: addr, Core: c.id}, c.pfBuf[:0])
	for _, cand := range c.pfBuf {
		c.warmL1Prefetch(cand)
	}
}

// warmL1Prefetch mirrors l1Prefetch minus MSHR occupancy checks.
func (c *coreCtx) warmL1Prefetch(blk mem.BlockAddr) {
	if c.l1d.Probe(blk) || (c.victim != nil && c.victim.Probe(blk)) {
		return
	}
	c.warmL2(blk, blk.Addr(), mem.BlockSize)
	c.warmFillL1(blk, blk.Addr(), mem.BlockSize, false)
}

// warmFillL1 mirrors fillL1's victim cascade.
func (c *coreCtx) warmFillL1(blk mem.BlockAddr, addr mem.Addr, size uint8, write bool) {
	v := c.l1d.WarmFill(blk, addr, size, write)
	if !v.Valid {
		return
	}
	if c.victim != nil {
		vv := c.victim.WarmFill(v.Blk, v.Blk.Addr(), mem.BlockSize, v.Dirty)
		if vv.Valid && vv.Dirty {
			c.warmWritebackL2(vv.Blk)
		}
		return
	}
	if v.Dirty {
		c.warmWritebackL2(v.Blk)
	}
}

// warmWritebackL2 mirrors writebackToL2 (allocate-on-write-back).
func (c *coreCtx) warmWritebackL2(blk mem.BlockAddr) {
	v := c.l2.WarmFill(blk, blk.Addr(), mem.BlockSize, true)
	if v.Valid && v.Dirty {
		c.warmWritebackLLC(v.Blk)
	}
}

// warmWritebackLLC mirrors writebackToLLC.
func (c *coreCtx) warmWritebackLLC(blk mem.BlockAddr) {
	v := c.sys.llc.WarmFill(blk, blk.Addr(), mem.BlockSize, true)
	if v.Valid && v.Dirty {
		c.sys.dram.WarmTouch(v.Blk)
	}
}

// warmL2 mirrors l2Access's demand path (L2 lookups never carry the
// write bit — stores dirty the L1 and arrive here as write-backs).
func (c *coreCtx) warmL2(blk mem.BlockAddr, addr mem.Addr, size uint8) {
	if c.l2.WarmLookup(blk, addr, size, false) {
		return
	}
	c.warmLLC(blk, addr, size)
	v := c.l2.WarmFill(blk, addr, size, false)
	if v.Valid && v.Dirty {
		c.warmWritebackLLC(v.Blk)
	}
}

// warmLLC mirrors llcAccess: an SDC sharer surrenders the block, then
// the fill happens from wherever the data came.
func (c *coreCtx) warmLLC(blk mem.BlockAddr, addr mem.Addr, size uint8) {
	s := c.sys
	if s.llc.WarmLookup(blk, addr, size, false) {
		return
	}
	fromSDC := false
	if s.sdcDir != nil {
		if sharers, _, ok := s.sdcDir.WarmLookup(blk); ok && sharers != 0 {
			if c.sdc != nil {
				if present, dirty := c.sdc.Invalidate(blk); present && dirty {
					s.dram.WarmTouch(blk)
				}
			}
			s.sdcDir.InvalidateAll(blk)
			fromSDC = true
		}
	}
	if !fromSDC {
		s.dram.WarmTouch(blk)
	}
	v := s.llc.WarmFill(blk, addr, size, false)
	if v.Valid && v.Dirty {
		s.dram.WarmTouch(v.Blk)
	}
}

// beginSample hands the record stream back to the detailed path. With a
// DetailWarm prefix the measured slice starts later (beginSampleMeasure)
// so MSHR/prefetcher/pipeline transients drain into discarded counters
// first; without one, measurement starts immediately.
func (c *coreCtx) beginSample() {
	c.warmMode = warmOff
	c.sys.warming = false
	c.nextSampleStart = noEpoch
	plan := c.sys.cfg.Sampling.Plan
	c.nextSampleEnd = c.cpuCore.Instructions + plan.DetailWarm + plan.SampleLen
	if plan.DetailWarm > 0 {
		c.nextSampleMeas = c.cpuCore.Instructions + plan.DetailWarm
		return
	}
	c.beginSampleMeasure()
}

// beginSampleMeasure snapshots the per-sample baseline at the end of
// the sample's detailed-warm prefix.
func (c *coreCtx) beginSampleMeasure() {
	c.sampleBase = c.snapshotCounters()
	c.nextSampleMeas = noEpoch
}

// endSample closes the running sample, appends its counter delta to the
// series, and schedules the next sample from the window base so the
// schedule never drifts with boundary overshoot.
func (c *coreCtx) endSample() {
	snap := c.snapshotCounters()
	c.sampleDeltas = append(c.sampleDeltas, stats.Delta(snap, c.sampleBase))
	c.warmMode = warmFunctional
	c.sys.warming = true
	c.nextSampleEnd = noEpoch
	c.sampleK++
	c.nextSampleStart = c.baseCounters.Instructions + c.sys.cfg.Sampling.NextStart(c.sampleK)
}

// beginMeasureSampled is beginMeasure's sampling variant: publish the
// warm-up checkpoint if this run warmed from scratch on a store miss,
// open the window, and arm the first sample.
func (c *coreCtx) beginMeasureSampled() {
	if c.ckptCommit != nil {
		// Errors publishing a checkpoint never fail the run: the store is
		// a wall-clock cache, not a correctness dependency.
		_ = c.ckptCommit(c.sys.encodeWarmState())
		c.ckptCommit = nil
	}
	c.baseCounters = c.snapshotCounters()
	c.inMeasure = true
	c.nextSampleStart = c.baseCounters.Instructions + c.sys.cfg.Sampling.NextStart(0)
	if c.cpuCore.Instructions >= c.nextSampleStart {
		c.beginSample()
	}
}

// measuredFromSamples closes the window in sampling mode: any open
// sample contributes its (possibly short) delta, and the window total
// is the sum over samples — warm periods spend no cycles and move no
// counters, so the sum is exactly the detailed portion of the window.
func (c *coreCtx) measuredFromSamples() {
	if c.nextSampleMeas != noEpoch {
		// The window closed inside a sample's discarded warm prefix:
		// nothing of this sample was measured.
		c.nextSampleMeas = noEpoch
		c.nextSampleEnd = noEpoch
	} else if c.nextSampleEnd != noEpoch {
		c.endSample()
	}
	c.warmMode = warmOff
	c.sys.warming = false
	c.nextSampleStart = noEpoch
	var m stats.CoreStats
	for i := range c.sampleDeltas {
		m.Add(&c.sampleDeltas[i])
	}
	c.measured = m
	c.doneMeasure = true
}
