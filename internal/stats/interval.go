package stats

import "math"

// Interval is a point estimate with a CLT confidence interval, produced
// by the statistical sampling engine (internal/sample): Mean is the
// sample mean of a per-sample metric (IPC, MPKI, ...), HalfWidth the
// half-width of the confidence interval Mean ± HalfWidth, and N the
// number of detailed samples it was computed over.
type Interval struct {
	Mean      float64 `json:"mean"`
	HalfWidth float64 `json:"half_width"`
	N         int     `json:"n"`
}

// IntervalZ is the critical value used for interval half-widths: 2.576
// gives a 99% normal-approximation interval, wide enough that the CI
// sampled-vs-full gate does not trip on per-sample variance alone.
const IntervalZ = 2.576

// NewInterval computes the CLT interval over per-sample metric values:
// mean ± IntervalZ * s/sqrt(n), with s the sample standard deviation.
// Fewer than two samples yield a zero half-width (no variance
// information), matching the degenerate-but-deterministic behaviour the
// sampler needs for very short windows.
func NewInterval(samples []float64) Interval {
	n := len(samples)
	if n == 0 {
		return Interval{}
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	mean := sum / float64(n)
	if n < 2 {
		return Interval{Mean: mean, N: n}
	}
	var ss float64
	for _, v := range samples {
		d := v - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	return Interval{
		Mean:      mean,
		HalfWidth: IntervalZ * sd / math.Sqrt(float64(n)),
		N:         n,
	}
}

// NewRatioInterval computes the ratio-estimator interval for a metric
// of the form sum(num)/sum(den) over per-sample numerator/denominator
// pairs — the right estimator for rates like IPC (instructions/cycles)
// and MPKI (misses/instructions), where the plain mean of per-sample
// ratios is Jensen-biased whenever the metric varies across program
// phases. The half-width comes from the delta-method (Taylor
// linearization) variance of the ratio estimator:
//
//	Var(R) ≈ Σ(num_i − R·den_i)² / (n·(n−1)·mean(den)²)
func NewRatioInterval(num, den []float64) Interval {
	n := len(num)
	if n == 0 || n != len(den) {
		return Interval{}
	}
	var sn, sd float64
	for i := range num {
		sn += num[i]
		sd += den[i]
	}
	if sd == 0 {
		return Interval{N: n}
	}
	r := sn / sd
	if n < 2 {
		return Interval{Mean: r, N: n}
	}
	var ss float64
	for i := range num {
		e := num[i] - r*den[i]
		ss += e * e
	}
	meanDen := sd / float64(n)
	se := math.Sqrt(ss/float64(n-1)) / (meanDen * math.Sqrt(float64(n)))
	return Interval{Mean: r, HalfWidth: IntervalZ * se, N: n}
}

// Contains reports whether v lies inside the interval.
func (iv Interval) Contains(v float64) bool {
	return math.Abs(v-iv.Mean) <= iv.HalfWidth
}

// RelErr returns the relative error of the interval's point estimate
// against a reference value (0 when the reference is 0 and the estimate
// matches it exactly; +Inf when only the reference is 0).
func RelErr(est, ref float64) float64 {
	if ref == 0 {
		if est == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(est-ref) / math.Abs(ref)
}
