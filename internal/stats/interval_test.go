package stats

import (
	"math"
	"testing"
)

func TestNewIntervalBasics(t *testing.T) {
	if iv := NewInterval(nil); iv != (Interval{}) {
		t.Errorf("empty input: %+v", iv)
	}
	if iv := NewInterval([]float64{2.5}); iv.Mean != 2.5 || iv.HalfWidth != 0 || iv.N != 1 {
		t.Errorf("single sample: %+v", iv)
	}
	iv := NewInterval([]float64{1, 2, 3, 4, 5})
	if iv.Mean != 3 || iv.N != 5 {
		t.Errorf("mean/N wrong: %+v", iv)
	}
	// s = sqrt(2.5), half-width = 2.576 * s / sqrt(5).
	want := IntervalZ * math.Sqrt(2.5) / math.Sqrt(5)
	if math.Abs(iv.HalfWidth-want) > 1e-12 {
		t.Errorf("half-width %v, want %v", iv.HalfWidth, want)
	}
	if !iv.Contains(3.5) || iv.Contains(10) {
		t.Errorf("Contains wrong for %+v", iv)
	}
}

func TestNewRatioInterval(t *testing.T) {
	if iv := NewRatioInterval(nil, nil); iv != (Interval{}) {
		t.Errorf("empty input: %+v", iv)
	}
	if iv := NewRatioInterval([]float64{1, 2}, []float64{1}); iv != (Interval{}) {
		t.Errorf("length mismatch: %+v", iv)
	}
	if iv := NewRatioInterval([]float64{1, 2}, []float64{0, 0}); iv.Mean != 0 || iv.N != 2 {
		t.Errorf("zero denominator: %+v", iv)
	}
	// Pooled ratio, not mean of ratios: (10+30)/(10+10) = 2, while the
	// per-sample ratios average to (1+3)/2 = 2 here but differ below.
	iv := NewRatioInterval([]float64{10, 30}, []float64{10, 10})
	if iv.Mean != 2 {
		t.Errorf("ratio %v, want 2", iv.Mean)
	}
	// Jensen-bias case: ratios 1.0 and 1/9; pooled = 2000/10000 = 0.2.
	iv = NewRatioInterval([]float64{1000, 1000}, []float64{1000, 9000})
	if math.Abs(iv.Mean-0.2) > 1e-12 {
		t.Errorf("pooled ratio %v, want 0.2", iv.Mean)
	}
	if iv.HalfWidth <= 0 {
		t.Error("differing samples must yield a positive half-width")
	}
	// Identical samples: exact estimate, zero half-width.
	iv = NewRatioInterval([]float64{5, 5, 5}, []float64{10, 10, 10})
	if iv.Mean != 0.5 || iv.HalfWidth != 0 {
		t.Errorf("identical samples: %+v", iv)
	}
}

func TestRelErr(t *testing.T) {
	if e := RelErr(1.03, 1.0); math.Abs(e-0.03) > 1e-12 {
		t.Errorf("RelErr(1.03, 1) = %v", e)
	}
	if e := RelErr(0.97, -1.0); math.Abs(e-1.97) > 1e-12 {
		t.Errorf("RelErr(0.97, -1) = %v", e)
	}
	if e := RelErr(0, 0); e != 0 {
		t.Errorf("RelErr(0, 0) = %v", e)
	}
	if e := RelErr(1, 0); !math.IsInf(e, 1) {
		t.Errorf("RelErr(1, 0) = %v", e)
	}
}
