// Package stats collects the counters and aggregate metrics the
// evaluation reports: per-cache hit/miss ladders, MPKI, IPC, geometric
// means and the weighted speed-up metric used for multi-core mixes.
package stats

import (
	"fmt"
	"math"
)

// CacheStats counts the accesses observed by one cache structure during
// the measurement window.
type CacheStats struct {
	Hits       int64
	Misses     int64
	Prefetches int64 // prefetch fills issued by this level's prefetcher
	PFHits     int64 // prefetch lookups that found the block resident
	PFMisses   int64 // prefetch lookups that missed (kept out of MPKI)
	Writebacks int64 // dirty evictions sent downstream
	Evictions  int64 // total evictions of valid lines
	MergedMSHR int64 // demand requests merged into an in-flight miss
}

// Accesses returns demand accesses (hits + misses).
func (c *CacheStats) Accesses() int64 { return c.Hits + c.Misses }

// MissRate returns misses / accesses, or 0 for an idle cache.
func (c *CacheStats) MissRate() float64 {
	a := c.Accesses()
	if a == 0 {
		return 0
	}
	return float64(c.Misses) / float64(a)
}

// MPKI returns misses per kilo-instruction for the given retired
// instruction count.
func (c *CacheStats) MPKI(instructions int64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(c.Misses) * 1000 / float64(instructions)
}

// Add accumulates other into c.
func (c *CacheStats) Add(other *CacheStats) {
	c.Hits += other.Hits
	c.Misses += other.Misses
	c.Prefetches += other.Prefetches
	c.PFHits += other.PFHits
	c.PFMisses += other.PFMisses
	c.Writebacks += other.Writebacks
	c.Evictions += other.Evictions
	c.MergedMSHR += other.MergedMSHR
}

// Sub subtracts other from c — the inverse of Add, used to turn two
// running-total snapshots into a window delta. Every counter must
// appear in both Add and Sub; TestCacheStatsAddSubRoundTrip enforces
// this by reflection.
func (c *CacheStats) Sub(other *CacheStats) {
	c.Hits -= other.Hits
	c.Misses -= other.Misses
	c.Prefetches -= other.Prefetches
	c.PFHits -= other.PFHits
	c.PFMisses -= other.PFMisses
	c.Writebacks -= other.Writebacks
	c.Evictions -= other.Evictions
	c.MergedMSHR -= other.MergedMSHR
}

// CoreStats aggregates one core's execution over the measurement window.
type CoreStats struct {
	Cycles       int64
	Instructions int64 // retired instructions (memory + non-memory)
	MemOps       int64 // retired memory instructions
	Loads        int64
	Stores       int64

	L1D  CacheStats
	SDC  CacheStats
	L2   CacheStats
	LLC  CacheStats
	DTLB CacheStats
	STLB CacheStats

	// ServedBy histograms where demand loads were ultimately served.
	ServedL1D    int64
	ServedSDC    int64
	ServedL2     int64
	ServedLLC    int64
	ServedRemote int64
	ServedDRAM   int64

	// LP predictor outcome counters.
	LPPredAverse   int64 // accesses routed to the SDC
	LPPredFriendly int64 // accesses routed to the L1D path
	LPTableMisses  int64

	// Directory / coherence traffic.
	DirLookups      int64
	DirInvals       int64
	SDCDirLookups   int64
	SDCDirEvictions int64

	// DRAM behaviour attributable to this core.
	DRAMReads     int64
	DRAMWrites    int64
	DRAMRowHits   int64
	DRAMRowMisses int64

	// TotalLoadLatency accumulates the latency of every retired demand
	// load, for average-load-latency reporting.
	TotalLoadLatency int64
}

// Add accumulates other into s, counter by counter.
func (s *CoreStats) Add(other *CoreStats) {
	s.Cycles += other.Cycles
	s.Instructions += other.Instructions
	s.MemOps += other.MemOps
	s.Loads += other.Loads
	s.Stores += other.Stores
	s.L1D.Add(&other.L1D)
	s.SDC.Add(&other.SDC)
	s.L2.Add(&other.L2)
	s.LLC.Add(&other.LLC)
	s.DTLB.Add(&other.DTLB)
	s.STLB.Add(&other.STLB)
	s.ServedL1D += other.ServedL1D
	s.ServedSDC += other.ServedSDC
	s.ServedL2 += other.ServedL2
	s.ServedLLC += other.ServedLLC
	s.ServedRemote += other.ServedRemote
	s.ServedDRAM += other.ServedDRAM
	s.LPPredAverse += other.LPPredAverse
	s.LPPredFriendly += other.LPPredFriendly
	s.LPTableMisses += other.LPTableMisses
	s.DirLookups += other.DirLookups
	s.DirInvals += other.DirInvals
	s.SDCDirLookups += other.SDCDirLookups
	s.SDCDirEvictions += other.SDCDirEvictions
	s.DRAMReads += other.DRAMReads
	s.DRAMWrites += other.DRAMWrites
	s.DRAMRowHits += other.DRAMRowHits
	s.DRAMRowMisses += other.DRAMRowMisses
	s.TotalLoadLatency += other.TotalLoadLatency
}

// Sub subtracts other from s — the inverse of Add, used by the window
// and epoch delta machinery in internal/sim. Every counter must appear
// in both Add and Sub; TestCoreStatsAddSubRoundTrip enforces this by
// reflection.
func (s *CoreStats) Sub(other *CoreStats) {
	s.Cycles -= other.Cycles
	s.Instructions -= other.Instructions
	s.MemOps -= other.MemOps
	s.Loads -= other.Loads
	s.Stores -= other.Stores
	s.L1D.Sub(&other.L1D)
	s.SDC.Sub(&other.SDC)
	s.L2.Sub(&other.L2)
	s.LLC.Sub(&other.LLC)
	s.DTLB.Sub(&other.DTLB)
	s.STLB.Sub(&other.STLB)
	s.ServedL1D -= other.ServedL1D
	s.ServedSDC -= other.ServedSDC
	s.ServedL2 -= other.ServedL2
	s.ServedLLC -= other.ServedLLC
	s.ServedRemote -= other.ServedRemote
	s.ServedDRAM -= other.ServedDRAM
	s.LPPredAverse -= other.LPPredAverse
	s.LPPredFriendly -= other.LPPredFriendly
	s.LPTableMisses -= other.LPTableMisses
	s.DirLookups -= other.DirLookups
	s.DirInvals -= other.DirInvals
	s.SDCDirLookups -= other.SDCDirLookups
	s.SDCDirEvictions -= other.SDCDirEvictions
	s.DRAMReads -= other.DRAMReads
	s.DRAMWrites -= other.DRAMWrites
	s.DRAMRowHits -= other.DRAMRowHits
	s.DRAMRowMisses -= other.DRAMRowMisses
	s.TotalLoadLatency -= other.TotalLoadLatency
}

// Delta returns end minus start across every counter.
func Delta(end, start CoreStats) CoreStats {
	end.Sub(&start)
	return end
}

// IPC returns retired instructions per cycle.
func (s *CoreStats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// AvgLoadLatency returns the mean retired-load latency in cycles.
func (s *CoreStats) AvgLoadLatency() float64 {
	if s.Loads == 0 {
		return 0
	}
	return float64(s.TotalLoadLatency) / float64(s.Loads)
}

// L1DemandMPKI returns the combined L1D+SDC MPKI (Fig. 9 reports the
// accumulated first-level MPKI for the SDC+LP design).
func (s *CoreStats) L1DemandMPKI() float64 {
	return s.L1D.MPKI(s.Instructions) + s.SDC.MPKI(s.Instructions)
}

// DRAMRowHitRate returns the fraction of DRAM accesses that hit an open
// row, or 0 for an idle DRAM.
func (s *CoreStats) DRAMRowHitRate() float64 {
	total := s.DRAMRowHits + s.DRAMRowMisses
	if total == 0 {
		return 0
	}
	return float64(s.DRAMRowHits) / float64(total)
}

// LPAverseFraction returns the fraction of LP-classified accesses that
// were predicted cache-averse, or 0 when the LP saw no traffic.
func (s *CoreStats) LPAverseFraction() float64 {
	total := s.LPPredAverse + s.LPPredFriendly
	if total == 0 {
		return 0
	}
	return float64(s.LPPredAverse) / float64(total)
}

// DRAMFraction returns the fraction of off-L1 demand loads ultimately
// served by DRAM (the Fig. 2 "78.6%" style metric).
func (s *CoreStats) DRAMFraction() float64 {
	total := s.ServedDRAM + s.ServedL2 + s.ServedLLC + s.ServedRemote
	if total == 0 {
		return 0
	}
	return float64(s.ServedDRAM) / float64(total)
}

// String summarizes the core stats on one line.
func (s *CoreStats) String() string {
	return fmt.Sprintf("cycles=%d instr=%d IPC=%.3f L1D-MPKI=%.1f SDC-MPKI=%.1f L2-MPKI=%.1f LLC-MPKI=%.1f",
		s.Cycles, s.Instructions, s.IPC(),
		s.L1D.MPKI(s.Instructions), s.SDC.MPKI(s.Instructions),
		s.L2.MPKI(s.Instructions), s.LLC.MPKI(s.Instructions))
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// it returns 0 for an empty slice.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %g", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// GeoMeanSpeedup converts a slice of speed-up ratios (1.0 = parity) into
// the percentage improvement the paper quotes (e.g. 1.203 -> 20.3).
func GeoMeanSpeedup(ratios []float64) float64 {
	return (GeoMean(ratios) - 1) * 100
}

// WeightedSpeedup implements the multi-core metric of Section IV-D: the
// sum over threads of IPC_shared/IPC_single, normalized by the same sum
// for the baseline design.
func WeightedSpeedup(ipcShared, ipcSingle, baseShared []float64) float64 {
	if len(ipcShared) != len(ipcSingle) || len(ipcShared) != len(baseShared) {
		panic("stats: WeightedSpeedup slice length mismatch")
	}
	var ws, base float64
	for i := range ipcShared {
		if ipcSingle[i] <= 0 {
			panic("stats: non-positive single-thread IPC")
		}
		ws += ipcShared[i] / ipcSingle[i]
		base += baseShared[i] / ipcSingle[i]
	}
	if base == 0 {
		return 0
	}
	return ws / base
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation. xs must be sorted ascending and non-empty.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
