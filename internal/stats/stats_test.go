package stats

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestCacheStatsBasics(t *testing.T) {
	c := CacheStats{Hits: 900, Misses: 100}
	if c.Accesses() != 1000 {
		t.Errorf("Accesses = %d", c.Accesses())
	}
	if !almostEqual(c.MissRate(), 0.1) {
		t.Errorf("MissRate = %g", c.MissRate())
	}
	if !almostEqual(c.MPKI(10000), 10) {
		t.Errorf("MPKI = %g", c.MPKI(10000))
	}
	var empty CacheStats
	if empty.MissRate() != 0 || empty.MPKI(0) != 0 {
		t.Error("empty cache stats should be all-zero rates")
	}
}

func TestCacheStatsAdd(t *testing.T) {
	a := CacheStats{Hits: 1, Misses: 2, Prefetches: 3, Writebacks: 4, Evictions: 5, MergedMSHR: 6}
	b := a
	a.Add(&b)
	if a.Hits != 2 || a.Misses != 4 || a.Prefetches != 6 || a.Writebacks != 8 || a.Evictions != 10 || a.MergedMSHR != 12 {
		t.Errorf("Add gave %+v", a)
	}
}

// fillDistinct sets every int64 field of v (recursing into embedded
// structs) to a distinct non-zero value, returning the next seed. It is
// the reflection net that catches counters added to the structs but
// forgotten in Add or Sub.
func fillDistinct(v reflect.Value, seed int64) int64 {
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Int64:
			f.SetInt(seed)
			seed += 7
		case reflect.Struct:
			seed = fillDistinct(f, seed)
		default:
			panic("stats: unexpected field kind " + f.Kind().String())
		}
	}
	return seed
}

// assertAllChanged fails for any int64 field equal between a and b —
// i.e. any counter Add did not touch.
func assertAllChanged(t *testing.T, path string, a, b reflect.Value) {
	t.Helper()
	for i := 0; i < a.NumField(); i++ {
		name := path + a.Type().Field(i).Name
		fa, fb := a.Field(i), b.Field(i)
		switch fa.Kind() {
		case reflect.Int64:
			if fa.Int() == fb.Int() {
				t.Errorf("field %s unchanged by Add — counter missing from Add?", name)
			}
		case reflect.Struct:
			assertAllChanged(t, name+".", fa, fb)
		}
	}
}

func TestCacheStatsAddSubRoundTrip(t *testing.T) {
	var a, b CacheStats
	fillDistinct(reflect.ValueOf(&a).Elem(), 1)
	fillDistinct(reflect.ValueOf(&b).Elem(), 1000)
	orig := a
	a.Add(&b)
	assertAllChanged(t, "CacheStats.", reflect.ValueOf(a), reflect.ValueOf(orig))
	a.Sub(&b)
	if a != orig {
		t.Errorf("Add then Sub did not round-trip: got %+v want %+v", a, orig)
	}
}

func TestCoreStatsAddSubRoundTrip(t *testing.T) {
	var a, b CoreStats
	fillDistinct(reflect.ValueOf(&a).Elem(), 1)
	fillDistinct(reflect.ValueOf(&b).Elem(), 100000)
	orig := a
	a.Add(&b)
	assertAllChanged(t, "CoreStats.", reflect.ValueOf(a), reflect.ValueOf(orig))
	a.Sub(&b)
	if a != orig {
		t.Errorf("Add then Sub did not round-trip:\n got %+v\nwant %+v", a, orig)
	}
}

func TestDelta(t *testing.T) {
	var start, incr CoreStats
	fillDistinct(reflect.ValueOf(&start).Elem(), 3)
	fillDistinct(reflect.ValueOf(&incr).Elem(), 50000)
	end := start
	end.Add(&incr)
	if got := Delta(end, start); got != incr {
		t.Errorf("Delta(end, start) = %+v, want %+v", got, incr)
	}
}

func TestCoreStatsIPC(t *testing.T) {
	s := CoreStats{Cycles: 1000, Instructions: 500}
	if !almostEqual(s.IPC(), 0.5) {
		t.Errorf("IPC = %g", s.IPC())
	}
	var zero CoreStats
	if zero.IPC() != 0 {
		t.Error("zero-cycle IPC should be 0")
	}
}

func TestCoreStatsAvgLoadLatency(t *testing.T) {
	s := CoreStats{Loads: 4, TotalLoadLatency: 100}
	if !almostEqual(s.AvgLoadLatency(), 25) {
		t.Errorf("AvgLoadLatency = %g", s.AvgLoadLatency())
	}
}

func TestL1DemandMPKI(t *testing.T) {
	s := CoreStats{Instructions: 1000}
	s.L1D.Misses = 5
	s.SDC.Misses = 7
	if !almostEqual(s.L1DemandMPKI(), 12) {
		t.Errorf("L1DemandMPKI = %g", s.L1DemandMPKI())
	}
}

func TestGeoMean(t *testing.T) {
	if !almostEqual(GeoMean([]float64{2, 8}), 4) {
		t.Errorf("GeoMean(2,8) = %g", GeoMean([]float64{2, 8}))
	}
	if !almostEqual(GeoMean([]float64{5}), 5) {
		t.Errorf("GeoMean(5) = %g", GeoMean([]float64{5}))
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) should be 0")
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive input")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestGeoMeanSpeedup(t *testing.T) {
	got := GeoMeanSpeedup([]float64{1.2, 1.2})
	if !almostEqual(got, 20) {
		t.Errorf("GeoMeanSpeedup = %g, want 20", got)
	}
}

func TestGeoMeanProperties(t *testing.T) {
	// Geomean lies between min and max and is scale-equivariant.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		mn, mx := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r)/100 + 0.01
			mn = math.Min(mn, xs[i])
			mx = math.Max(mx, xs[i])
		}
		g := GeoMean(xs)
		if g < mn-1e-9 || g > mx+1e-9 {
			return false
		}
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * 3
		}
		return almostEqual(GeoMean(scaled), 3*g)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightedSpeedup(t *testing.T) {
	// Two threads, both twice as fast as baseline in the shared run.
	shared := []float64{2, 2}
	single := []float64{2, 4}
	base := []float64{1, 1}
	got := WeightedSpeedup(shared, single, base)
	// ws = 2/2 + 2/4 = 1.5 ; base = 1/2 + 1/4 = 0.75 ; ratio 2.
	if !almostEqual(got, 2) {
		t.Errorf("WeightedSpeedup = %g, want 2", got)
	}
}

func TestWeightedSpeedupIdentity(t *testing.T) {
	// A design identical to baseline has weighted speed-up 1 regardless
	// of per-thread IPCs.
	f := func(a, b uint8) bool {
		sh := []float64{float64(a)/10 + 0.1, float64(b)/10 + 0.1}
		single := []float64{1, 2}
		return almostEqual(WeightedSpeedup(sh, single, sh), 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightedSpeedupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	WeightedSpeedup([]float64{1}, []float64{1, 2}, []float64{1, 2})
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if !almostEqual(Percentile(xs, 0), 1) || !almostEqual(Percentile(xs, 100), 5) {
		t.Error("extreme percentiles wrong")
	}
	if !almostEqual(Percentile(xs, 50), 3) {
		t.Errorf("median = %g", Percentile(xs, 50))
	}
	if !almostEqual(Percentile(xs, 25), 2) {
		t.Errorf("p25 = %g", Percentile(xs, 25))
	}
}

func TestPercentileSingleElement(t *testing.T) {
	xs := []float64{42}
	for _, p := range []float64{0, 25, 50, 99.9, 100} {
		if got := Percentile(xs, p); got != 42 {
			t.Errorf("Percentile([42], %g) = %g, want 42", p, got)
		}
	}
}

func TestPercentileOutOfRangeClamps(t *testing.T) {
	xs := []float64{1, 2, 3}
	if got := Percentile(xs, -5); got != 1 {
		t.Errorf("Percentile(p<0) = %g, want first element", got)
	}
	if got := Percentile(xs, 250); got != 3 {
		t.Errorf("Percentile(p>100) = %g, want last element", got)
	}
}

func TestPercentileInterpolationBoundaries(t *testing.T) {
	xs := []float64{10, 20}
	// Halfway between the only two elements.
	if got := Percentile(xs, 50); !almostEqual(got, 15) {
		t.Errorf("Percentile([10 20], 50) = %g, want 15", got)
	}
	// Just below 100: interpolates inside the last interval.
	if got := Percentile(xs, 99); !almostEqual(got, 19.9) {
		t.Errorf("Percentile([10 20], 99) = %g, want 19.9", got)
	}
	// Interpolation in the last interval of a longer slice.
	ys := []float64{0, 0, 0, 0, 100}
	if got := Percentile(ys, 90); !almostEqual(got, 60) {
		t.Errorf("Percentile(ys, 90) = %g, want 60", got)
	}
}

func TestPercentileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for empty slice")
		}
	}()
	Percentile(nil, 50)
}

func TestGeoMeanSpeedupEdgeCases(t *testing.T) {
	// Parity in, zero improvement out.
	if got := GeoMeanSpeedup([]float64{1, 1, 1}); !almostEqual(got, 0) {
		t.Errorf("GeoMeanSpeedup(parity) = %g, want 0", got)
	}
	// Slowdowns come out negative.
	if got := GeoMeanSpeedup([]float64{0.5}); !almostEqual(got, -50) {
		t.Errorf("GeoMeanSpeedup(0.5) = %g, want -50", got)
	}
	// Single ratio passes through.
	if got := GeoMeanSpeedup([]float64{1.203}); !almostEqual(got, 20.3) {
		t.Errorf("GeoMeanSpeedup(1.203) = %g, want 20.3", got)
	}
	// A speed-up and its reciprocal cancel exactly.
	if got := GeoMeanSpeedup([]float64{2, 0.5}); !almostEqual(got, 0) {
		t.Errorf("GeoMeanSpeedup(2, 1/2) = %g, want 0", got)
	}
}

func TestDerivedMetricHelpers(t *testing.T) {
	var s CoreStats
	if s.DRAMRowHitRate() != 0 || s.LPAverseFraction() != 0 || s.DRAMFraction() != 0 {
		t.Error("idle CoreStats should report zero derived rates")
	}
	s.DRAMRowHits, s.DRAMRowMisses = 3, 1
	if !almostEqual(s.DRAMRowHitRate(), 0.75) {
		t.Errorf("DRAMRowHitRate = %g", s.DRAMRowHitRate())
	}
	s.LPPredAverse, s.LPPredFriendly = 9, 1
	if !almostEqual(s.LPAverseFraction(), 0.9) {
		t.Errorf("LPAverseFraction = %g", s.LPAverseFraction())
	}
	s.ServedDRAM, s.ServedL2, s.ServedLLC, s.ServedRemote = 6, 2, 1, 1
	if !almostEqual(s.DRAMFraction(), 0.6) {
		t.Errorf("DRAMFraction = %g", s.DRAMFraction())
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		sort.Float64s(xs)
		p := float64(pRaw % 101)
		q := math.Min(p+10, 100)
		return Percentile(xs, p) <= Percentile(xs, q)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
