package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9*(1+math.Abs(a)+math.Abs(b))
}

func TestCacheStatsBasics(t *testing.T) {
	c := CacheStats{Hits: 900, Misses: 100}
	if c.Accesses() != 1000 {
		t.Errorf("Accesses = %d", c.Accesses())
	}
	if !almostEqual(c.MissRate(), 0.1) {
		t.Errorf("MissRate = %g", c.MissRate())
	}
	if !almostEqual(c.MPKI(10000), 10) {
		t.Errorf("MPKI = %g", c.MPKI(10000))
	}
	var empty CacheStats
	if empty.MissRate() != 0 || empty.MPKI(0) != 0 {
		t.Error("empty cache stats should be all-zero rates")
	}
}

func TestCacheStatsAdd(t *testing.T) {
	a := CacheStats{Hits: 1, Misses: 2, Prefetches: 3, Writebacks: 4, Evictions: 5, MergedMSHR: 6}
	b := a
	a.Add(&b)
	if a.Hits != 2 || a.Misses != 4 || a.Prefetches != 6 || a.Writebacks != 8 || a.Evictions != 10 || a.MergedMSHR != 12 {
		t.Errorf("Add gave %+v", a)
	}
}

func TestCoreStatsIPC(t *testing.T) {
	s := CoreStats{Cycles: 1000, Instructions: 500}
	if !almostEqual(s.IPC(), 0.5) {
		t.Errorf("IPC = %g", s.IPC())
	}
	var zero CoreStats
	if zero.IPC() != 0 {
		t.Error("zero-cycle IPC should be 0")
	}
}

func TestCoreStatsAvgLoadLatency(t *testing.T) {
	s := CoreStats{Loads: 4, TotalLoadLatency: 100}
	if !almostEqual(s.AvgLoadLatency(), 25) {
		t.Errorf("AvgLoadLatency = %g", s.AvgLoadLatency())
	}
}

func TestL1DemandMPKI(t *testing.T) {
	s := CoreStats{Instructions: 1000}
	s.L1D.Misses = 5
	s.SDC.Misses = 7
	if !almostEqual(s.L1DemandMPKI(), 12) {
		t.Errorf("L1DemandMPKI = %g", s.L1DemandMPKI())
	}
}

func TestGeoMean(t *testing.T) {
	if !almostEqual(GeoMean([]float64{2, 8}), 4) {
		t.Errorf("GeoMean(2,8) = %g", GeoMean([]float64{2, 8}))
	}
	if !almostEqual(GeoMean([]float64{5}), 5) {
		t.Errorf("GeoMean(5) = %g", GeoMean([]float64{5}))
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) should be 0")
	}
}

func TestGeoMeanPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive input")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestGeoMeanSpeedup(t *testing.T) {
	got := GeoMeanSpeedup([]float64{1.2, 1.2})
	if !almostEqual(got, 20) {
		t.Errorf("GeoMeanSpeedup = %g, want 20", got)
	}
}

func TestGeoMeanProperties(t *testing.T) {
	// Geomean lies between min and max and is scale-equivariant.
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		mn, mx := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r)/100 + 0.01
			mn = math.Min(mn, xs[i])
			mx = math.Max(mx, xs[i])
		}
		g := GeoMean(xs)
		if g < mn-1e-9 || g > mx+1e-9 {
			return false
		}
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * 3
		}
		return almostEqual(GeoMean(scaled), 3*g)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightedSpeedup(t *testing.T) {
	// Two threads, both twice as fast as baseline in the shared run.
	shared := []float64{2, 2}
	single := []float64{2, 4}
	base := []float64{1, 1}
	got := WeightedSpeedup(shared, single, base)
	// ws = 2/2 + 2/4 = 1.5 ; base = 1/2 + 1/4 = 0.75 ; ratio 2.
	if !almostEqual(got, 2) {
		t.Errorf("WeightedSpeedup = %g, want 2", got)
	}
}

func TestWeightedSpeedupIdentity(t *testing.T) {
	// A design identical to baseline has weighted speed-up 1 regardless
	// of per-thread IPCs.
	f := func(a, b uint8) bool {
		sh := []float64{float64(a)/10 + 0.1, float64(b)/10 + 0.1}
		single := []float64{1, 2}
		return almostEqual(WeightedSpeedup(sh, single, sh), 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightedSpeedupPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	WeightedSpeedup([]float64{1}, []float64{1, 2}, []float64{1, 2})
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if !almostEqual(Percentile(xs, 0), 1) || !almostEqual(Percentile(xs, 100), 5) {
		t.Error("extreme percentiles wrong")
	}
	if !almostEqual(Percentile(xs, 50), 3) {
		t.Errorf("median = %g", Percentile(xs, 50))
	}
	if !almostEqual(Percentile(xs, 25), 2) {
		t.Errorf("p25 = %g", Percentile(xs, 25))
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(raw []uint16, pRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
		}
		sort.Float64s(xs)
		p := float64(pRaw % 101)
		q := math.Min(p+10, 100)
		return Percentile(xs, p) <= Percentile(xs, q)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
