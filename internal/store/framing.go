// Package store provides the on-disk persistence primitives shared by
// every durable cache in the repository: a versioned, checksummed file
// framing (magic + version + length + sha256 + payload) and a
// content-addressed blob store with per-key single-flight, best-effort
// cross-process claim files, atomic publication, and LRU size capping.
//
// The framing was born as internal/sample's checkpoint file format and
// is hoisted here so the warm-up checkpoint store and the simulation
// result store share one implementation; each client binds its own
// magic and version through a Framing value, so the two stores can
// never deserialize each other's files.
package store

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Errors surfaced by framed-payload decoding. Version mismatches and
// corrupt/truncated files are ordinary cache misses to callers (the
// cached computation is simply redone), but they are distinguishable
// for tests and diagnostics.
var (
	ErrVersionMismatch = errors.New("store: framed payload version mismatch")
	ErrCorrupt         = errors.New("store: framed payload truncated or corrupt")
)

// Framing binds a client's file identity: the magic that opens every
// file and the payload-layout version. Bumping the version orphans
// every previously written file — Decode rejects them with
// ErrVersionMismatch — which is how stores invalidate incrementally
// when the payload producer changes behaviour.
type Framing struct {
	Magic   [8]byte
	Version uint32
}

// headerLen is the framed prefix: magic, version, payload length,
// payload sha256.
const headerLen = 8 + 4 + 8 + 32

// Encode frames a payload: magic, version, payload length, payload
// checksum, payload. The checksum makes truncation and bit-rot
// detectable without trusting the payload's internal structure.
func (f Framing) Encode(payload []byte) []byte {
	out := make([]byte, 0, len(payload)+headerLen)
	out = append(out, f.Magic[:]...)
	out = binary.LittleEndian.AppendUint32(out, f.Version)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	sum := sha256.Sum256(payload)
	out = append(out, sum[:]...)
	out = append(out, payload...)
	return out
}

// Decode validates a framed file and returns its payload.
func (f Framing) Decode(data []byte) ([]byte, error) {
	if len(data) < headerLen {
		return nil, ErrCorrupt
	}
	if [8]byte(data[:8]) != f.Magic {
		return nil, ErrCorrupt
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != f.Version {
		return nil, fmt.Errorf("%w: file v%d, want v%d", ErrVersionMismatch, v, f.Version)
	}
	n := binary.LittleEndian.Uint64(data[12:20])
	payload := data[headerLen:]
	if uint64(len(payload)) != n {
		return nil, fmt.Errorf("%w: payload %d bytes, header says %d", ErrCorrupt, len(payload), n)
	}
	var sum [32]byte
	copy(sum[:], data[20:52])
	if sha256.Sum256(payload) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}

// WriteFileAtomic publishes data at path via a temporary file in dir
// plus a rename, so a crashed or interrupted writer can never leave a
// half-written file that a later reader would trust. dir must be on the
// same filesystem as path (use the file's own directory).
func WriteFileAtomic(dir, path string, data []byte) error {
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: atomic write: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("store: atomic write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("store: atomic write: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("store: atomic write: %w", err)
	}
	return nil
}
