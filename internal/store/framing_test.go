package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

var testFraming = Framing{
	Magic:   [8]byte{'G', 'M', 'T', 'E', 'S', 'T', '!', '\n'},
	Version: 3,
}

func TestFramingRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xAB}, 1<<16)} {
		framed := testFraming.Encode(payload)
		got, err := testFraming.Decode(framed)
		if err != nil {
			t.Fatalf("Decode(%d-byte payload): %v", len(payload), err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("round trip of %d-byte payload: got %d bytes", len(payload), len(got))
		}
	}
}

func TestFramingRejectsDamage(t *testing.T) {
	framed := testFraming.Encode([]byte("the payload"))

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrCorrupt},
		{"short header", framed[:headerLen-1], ErrCorrupt},
		{"truncated payload", framed[:len(framed)-3], ErrCorrupt},
		{"wrong magic", append([]byte{'X'}, framed[1:]...), ErrCorrupt},
		{"flipped payload bit", flipBit(framed, headerLen+2), ErrCorrupt},
		{"flipped checksum bit", flipBit(framed, 20), ErrCorrupt},
	}
	for _, tc := range cases {
		if _, err := testFraming.Decode(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}

	stale := Framing{Magic: testFraming.Magic, Version: testFraming.Version + 1}.Encode([]byte("the payload"))
	if _, err := testFraming.Decode(stale); !errors.Is(err, ErrVersionMismatch) {
		t.Errorf("stale version: got %v, want ErrVersionMismatch", err)
	}
}

func flipBit(data []byte, i int) []byte {
	out := append([]byte(nil), data...)
	out[i] ^= 1
	return out
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := WriteFileAtomic(dir, path, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(dir, path, []byte("second")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "second" {
		t.Fatalf("got %q, want %q", got, "second")
	}
	// No abandoned temp files after successful publishes.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("directory has %d entries, want just the published file", len(ents))
	}
}
