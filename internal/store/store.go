package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Store is a disk-backed, content-addressed blob store: one framed file
// per key under a directory. Keys are caller-derived content addresses
// (hashes over everything that identifies the payload), so the store
// itself never interprets payloads beyond the framing checksum.
//
// Concurrency discipline, mirroring the warm-up checkpoint store it
// generalizes:
//
//   - Per-key single-flight across goroutines: Acquire holds a per-key
//     mutex from lookup to commit, so two goroutines computing the same
//     key serialize and the second one hits the first one's file.
//   - Best-effort cross-process claim files: the first process to miss
//     on a key creates <key>.claim (O_EXCL); a second process that
//     loses the claim polls briefly for the winner's published result
//     before falling back to computing it itself. Claims are advisory
//     only — correctness never depends on them, because payloads are
//     deterministic and publication is atomic (tmp + rename).
//
// A corrupt, truncated or stale-version file is an ordinary miss and is
// overwritten by the next commit; the cache can never be poisoned.
type Store struct {
	dir     string
	framing Framing

	// ClaimWait bounds how long a process that lost the cross-process
	// claim race polls for the winner's result before computing the key
	// itself. 0 disables waiting (pure duplicate-work tolerance).
	ClaimWait time.Duration
	// ClaimTTL is the age beyond which a claim file is considered
	// abandoned (crashed owner) and is removed by the next Acquire.
	ClaimTTL time.Duration

	mu        sync.Mutex
	keys      map[string]*sync.Mutex
	maxBytes  int64
	hits      int64
	misses    int64
	evictions int64
}

// Open opens (creating if needed) a store rooted at dir whose files are
// framed with f.
func Open(dir string, f Framing) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	return &Store{
		dir:       dir,
		framing:   f,
		ClaimWait: 2 * time.Minute,
		ClaimTTL:  10 * time.Minute,
		keys:      make(map[string]*sync.Mutex),
	}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the file a key maps to.
func (s *Store) Path(key string) string { return filepath.Join(s.dir, key+".res") }

// claimPath returns the advisory claim file of a key.
func (s *Store) claimPath(key string) string { return filepath.Join(s.dir, key+".claim") }

// SetMaxBytes caps the total size of stored entries; every commit that
// pushes the store over the cap evicts least-recently-used entries
// (file mtime order; Acquire hits refresh it) until it fits. 0 removes
// the cap.
func (s *Store) SetMaxBytes(n int64) {
	s.mu.Lock()
	s.maxBytes = n
	s.mu.Unlock()
}

// Hits reports how many Acquire calls returned a stored payload.
func (s *Store) Hits() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hits
}

// Misses reports how many Acquire calls found no usable entry.
func (s *Store) Misses() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.misses
}

// Evictions reports how many entries the size cap (or an explicit GC)
// removed.
func (s *Store) Evictions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evictions
}

// Contains reports whether a published entry exists for the key. It is
// a cheap stat — no decode, no counters — for planners that want to
// predict Acquire's outcome (e.g. progress accounting).
func (s *Store) Contains(key string) bool {
	_, err := os.Stat(s.Path(key))
	return err == nil
}

func (s *Store) keyLock(key string) *sync.Mutex {
	s.mu.Lock()
	defer s.mu.Unlock()
	l, ok := s.keys[key]
	if !ok {
		l = &sync.Mutex{}
		s.keys[key] = l
	}
	return l
}

// read attempts to load and validate the key's file.
func (s *Store) read(key string) ([]byte, bool) {
	data, err := os.ReadFile(s.Path(key))
	if err != nil {
		return nil, false
	}
	p, err := s.framing.Decode(data)
	if err != nil {
		return nil, false
	}
	// Refresh the LRU clock so hot entries survive the size cap.
	now := time.Now()
	_ = os.Chtimes(s.Path(key), now, now)
	return p, true
}

// Acquire looks the key up under its in-process single-flight lock. On
// a hit it returns the decoded payload; on a miss it returns nil. In
// both cases the caller MUST call the returned commit exactly once:
// commit(nil) releases the key (and any claim) without publishing,
// commit(p) frames and atomically publishes p (overwriting whatever is
// there). The key lock is held from Acquire to commit.
//
// On a miss, Acquire also races for the cross-process claim file. If
// another process holds a fresh claim, Acquire polls up to ClaimWait
// for that process to publish; a publication observed while polling is
// returned as a hit. An abandoned claim (older than ClaimTTL) is
// removed. All of this is best effort: the worst outcome of any claim
// race is duplicated computation, never a wrong or missing result.
func (s *Store) Acquire(key string) (payload []byte, commit func([]byte) error) {
	l := s.keyLock(key)
	l.Lock()
	if p, ok := s.read(key); ok {
		s.mu.Lock()
		s.hits++
		s.mu.Unlock()
		return p, func(p2 []byte) error {
			defer l.Unlock()
			if p2 == nil {
				return nil
			}
			return s.put(key, p2)
		}
	}

	claimed := s.tryClaim(key)
	if !claimed {
		if p, ok := s.awaitClaimed(key); ok {
			s.mu.Lock()
			s.hits++
			s.mu.Unlock()
			return p, func(p2 []byte) error {
				defer l.Unlock()
				if p2 == nil {
					return nil
				}
				return s.put(key, p2)
			}
		}
	}

	s.mu.Lock()
	s.misses++
	s.mu.Unlock()
	return nil, func(p []byte) error {
		defer l.Unlock()
		if claimed {
			defer os.Remove(s.claimPath(key))
		}
		if p == nil {
			return nil
		}
		return s.put(key, p)
	}
}

// tryClaim attempts to create the key's claim file, reaping an
// abandoned one first. It reports whether this process now owns the
// claim.
func (s *Store) tryClaim(key string) bool {
	cp := s.claimPath(key)
	if fi, err := os.Stat(cp); err == nil && s.ClaimTTL > 0 && time.Since(fi.ModTime()) > s.ClaimTTL {
		_ = os.Remove(cp)
	}
	f, err := os.OpenFile(cp, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return false
	}
	fmt.Fprintf(f, "%d\n", os.Getpid())
	f.Close()
	return true
}

// awaitClaimed polls for another process's publication while its claim
// stays fresh, up to ClaimWait.
func (s *Store) awaitClaimed(key string) ([]byte, bool) {
	const pollEvery = 50 * time.Millisecond
	deadline := time.Now().Add(s.ClaimWait)
	for s.ClaimWait > 0 {
		if p, ok := s.read(key); ok {
			return p, true
		}
		fi, err := os.Stat(s.claimPath(key))
		if err != nil || time.Now().After(deadline) ||
			(s.ClaimTTL > 0 && time.Since(fi.ModTime()) > s.ClaimTTL) {
			break
		}
		time.Sleep(pollEvery)
	}
	// One last read: the claim may have been released after a publish
	// between our read and stat.
	if p, ok := s.read(key); ok {
		return p, true
	}
	return nil, false
}

// Reject removes a published entry that an outer validation layer
// refused (e.g. a framed payload that decodes to the wrong result —
// a key collision). The Acquire that surfaced it counted a hit; Reject
// reclassifies it as a miss so hit-rate accounting matches what callers
// actually got.
func (s *Store) Reject(key string) {
	_ = os.Remove(s.Path(key))
	s.mu.Lock()
	s.hits--
	s.misses++
	s.mu.Unlock()
}

// put frames and atomically publishes a payload, then enforces the size
// cap if one is set.
func (s *Store) put(key string, payload []byte) error {
	if err := WriteFileAtomic(s.dir, s.Path(key), s.framing.Encode(payload)); err != nil {
		return err
	}
	s.mu.Lock()
	limit := s.maxBytes
	s.mu.Unlock()
	if limit > 0 {
		_, _, err := s.GC(limit)
		return err
	}
	return nil
}

// GC shrinks the store to at most maxBytes by removing
// least-recently-used entries (file mtime order — Acquire hits refresh
// their entry), returning how many entries were removed and how many
// bytes were freed. Claim files and foreign files are left alone.
func (s *Store) GC(maxBytes int64) (removed int, freed int64, err error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, 0, fmt.Errorf("store: gc: %w", err)
	}
	type entry struct {
		path  string
		size  int64
		mtime time.Time
	}
	var files []entry
	var total int64
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".res" {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, entry{path: filepath.Join(s.dir, e.Name()), size: fi.Size(), mtime: fi.ModTime()})
		total += fi.Size()
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mtime.Equal(files[j].mtime) {
			return files[i].mtime.Before(files[j].mtime)
		}
		return files[i].path < files[j].path
	})
	for _, f := range files {
		if total <= maxBytes {
			break
		}
		if err := os.Remove(f.path); err != nil {
			continue
		}
		total -= f.size
		freed += f.size
		removed++
	}
	if removed > 0 {
		s.mu.Lock()
		s.evictions += int64(removed)
		s.mu.Unlock()
	}
	return removed, freed, nil
}

// Size returns the entry count and total byte size of published
// entries.
func (s *Store) Size() (entries int, bytes int64, err error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, 0, fmt.Errorf("store: size: %w", err)
	}
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".res" {
			continue
		}
		if fi, err := e.Info(); err == nil {
			entries++
			bytes += fi.Size()
		}
	}
	return entries, bytes, nil
}

// ParseSize parses a human byte-size flag value: a plain integer byte
// count, optionally suffixed with K, M or G (binary multiples, case
// insensitive).
func ParseSize(s string) (int64, error) {
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	switch s[len(s)-1] {
	case 'k', 'K':
		mult, s = 1<<10, s[:len(s)-1]
	case 'm', 'M':
		mult, s = 1<<20, s[:len(s)-1]
	case 'g', 'G':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("store: bad size %q (want bytes with optional K/M/G suffix)", s)
	}
	return n * mult, nil
}
