package store

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"
)

func openTest(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, testFraming)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestStoreMissThenHit(t *testing.T) {
	s := openTest(t, t.TempDir())
	payload, commit := s.Acquire("k1")
	if payload != nil {
		t.Fatal("fresh store returned a payload")
	}
	if err := commit([]byte("result-1")); err != nil {
		t.Fatal(err)
	}
	got, commit2 := s.Acquire("k1")
	if !bytes.Equal(got, []byte("result-1")) {
		t.Fatalf("hit returned %q", got)
	}
	if err := commit2(nil); err != nil {
		t.Fatal(err)
	}
	if h, m := s.Hits(), s.Misses(); h != 1 || m != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", h, m)
	}
	if !s.Contains("k1") || s.Contains("k2") {
		t.Fatal("Contains disagrees with the published set")
	}
}

func TestStoreAbortedCommitPublishesNothing(t *testing.T) {
	s := openTest(t, t.TempDir())
	if payload, commit := s.Acquire("k"); payload != nil {
		t.Fatal("fresh store returned a payload")
	} else if err := commit(nil); err != nil {
		t.Fatal(err)
	}
	if s.Contains("k") {
		t.Fatal("aborted commit published an entry")
	}
	// The claim must have been released: a second miss can claim again.
	if _, err := os.Stat(s.claimPath("k")); !os.IsNotExist(err) {
		t.Fatalf("claim file survived the aborted commit: %v", err)
	}
}

// TestStoreRejectsDamagedFiles mirrors the checkpoint store's damage
// test: corrupted, truncated, and stale-version entries all read as
// misses (never an error, never a poisoned payload) and are overwritten
// by the next commit.
func TestStoreRejectsDamagedFiles(t *testing.T) {
	damage := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"corrupt payload", func(d []byte) []byte { return flipBit(d, len(d)-1) }},
		{"truncated", func(d []byte) []byte { return d[:len(d)/2] }},
		{"stale version", func(d []byte) []byte {
			stale := Framing{Magic: testFraming.Magic, Version: testFraming.Version + 1}
			return stale.Encode([]byte("payload"))
		}},
		{"empty file", func(d []byte) []byte { return nil }},
	}
	for _, tc := range damage {
		t.Run(tc.name, func(t *testing.T) {
			s := openTest(t, t.TempDir())
			_, commit := s.Acquire("k")
			if err := commit([]byte("payload")); err != nil {
				t.Fatal(err)
			}
			good, err := os.ReadFile(s.Path("k"))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(s.Path("k"), tc.mut(good), 0o644); err != nil {
				t.Fatal(err)
			}
			payload, commit := s.Acquire("k")
			if payload != nil {
				t.Fatalf("damaged entry surfaced a payload: %q", payload)
			}
			if err := commit([]byte("recomputed")); err != nil {
				t.Fatal(err)
			}
			got, commit3 := s.Acquire("k")
			if !bytes.Equal(got, []byte("recomputed")) {
				t.Fatalf("recovery commit not readable: %q", got)
			}
			commit3(nil)
		})
	}
}

// TestStoreConcurrentSameKeyWriters drives many goroutines at one key:
// exactly one computes (single-flight), the rest hit its committed
// payload, and the store never surfaces a partial or mixed file.
func TestStoreConcurrentSameKeyWriters(t *testing.T) {
	s := openTest(t, t.TempDir())
	const n = 16
	var computes int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload, commit := s.Acquire("shared")
			if payload == nil {
				mu.Lock()
				computes++
				mu.Unlock()
				if err := commit([]byte("the one true payload")); err != nil {
					t.Error(err)
				}
				return
			}
			if !bytes.Equal(payload, []byte("the one true payload")) {
				t.Errorf("joiner read %q", payload)
			}
			commit(nil)
		}()
	}
	wg.Wait()
	if computes != 1 {
		t.Fatalf("%d goroutines computed the key, want exactly 1", computes)
	}
	if h, m := s.Hits(), s.Misses(); h != n-1 || m != 1 {
		t.Fatalf("hits=%d misses=%d, want %d/1", h, m, n-1)
	}
}

// TestStoreCrossProcessClaim simulates two processes (two Store handles
// on one directory): the loser of the claim race waits for the winner's
// publication and returns it as a hit.
func TestStoreCrossProcessClaim(t *testing.T) {
	dir := t.TempDir()
	winner := openTest(t, dir)
	loser := openTest(t, dir)
	loser.ClaimWait = 5 * time.Second

	p, commitW := winner.Acquire("k")
	if p != nil {
		t.Fatal("winner hit on an empty store")
	}
	done := make(chan []byte, 1)
	go func() {
		payload, commit := loser.Acquire("k")
		commit(nil)
		done <- payload
	}()
	// Give the loser time to lose the claim race and start polling,
	// then publish.
	time.Sleep(100 * time.Millisecond)
	if err := commitW([]byte("winner's result")); err != nil {
		t.Fatal(err)
	}
	select {
	case payload := <-done:
		if !bytes.Equal(payload, []byte("winner's result")) {
			t.Fatalf("loser got %q (nil means it gave up and would recompute)", payload)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("loser never returned")
	}
}

// TestStoreClaimZeroWaitFallsBackToCompute pins the degraded mode: with
// ClaimWait 0 a lost claim means compute-it-yourself, duplicating work
// but never blocking or failing.
func TestStoreClaimZeroWaitFallsBackToCompute(t *testing.T) {
	dir := t.TempDir()
	winner := openTest(t, dir)
	loser := openTest(t, dir)
	loser.ClaimWait = 0

	_, commitW := winner.Acquire("k")
	payload, commitL := loser.Acquire("k")
	if payload != nil {
		t.Fatal("loser hit before anything was published")
	}
	if err := commitL([]byte("loser's result")); err != nil {
		t.Fatal(err)
	}
	commitW(nil)
	got, c := loser.Acquire("k")
	c(nil)
	if !bytes.Equal(got, []byte("loser's result")) {
		t.Fatalf("published entry is %q", got)
	}
}

func TestStoreReject(t *testing.T) {
	s := openTest(t, t.TempDir())
	_, commit := s.Acquire("k")
	commit([]byte("colliding payload"))
	p, c := s.Acquire("k")
	if p == nil {
		t.Fatal("expected a hit")
	}
	s.Reject("k")
	c(nil)
	if s.Contains("k") {
		t.Fatal("rejected entry still published")
	}
	if h, m := s.Hits(), s.Misses(); h != 0 || m != 2 {
		t.Fatalf("hits=%d misses=%d after Reject, want 0/2", h, m)
	}
}

func TestStoreGCAndSizeCap(t *testing.T) {
	s := openTest(t, t.TempDir())
	var size int64
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("k%d", i)
		_, commit := s.Acquire(key)
		if err := commit(bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
		if fi, err := os.Stat(s.Path(key)); err == nil && size == 0 {
			size = fi.Size()
		}
		// Space mtimes out so LRU order is deterministic even on
		// coarse-grained filesystems.
		old := time.Now().Add(time.Duration(i-10) * time.Second)
		if err := os.Chtimes(s.Path(key), old, old); err != nil {
			t.Fatal(err)
		}
	}
	// Touch k0 (the oldest) via a hit: it must survive the GC that
	// evicts by recency.
	_, c := s.Acquire("k0")
	c(nil)

	removed, freed, err := s.GC(3 * size)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 3 || freed != 3*size {
		t.Fatalf("GC removed %d entries (%d bytes), want 3 (%d)", removed, freed, 3*size)
	}
	if !s.Contains("k0") {
		t.Fatal("LRU-refreshed entry was evicted")
	}
	for _, key := range []string{"k1", "k2", "k3"} {
		if s.Contains(key) {
			t.Fatalf("%s survived GC, expected eviction (oldest-first)", key)
		}
	}
	if s.Evictions() != 3 {
		t.Fatalf("evictions=%d, want 3", s.Evictions())
	}

	// The write-path cap: committing with a cap set evicts to fit.
	s.SetMaxBytes(2 * size)
	_, commit := s.Acquire("fresh")
	if err := commit(bytes.Repeat([]byte{9}, 100)); err != nil {
		t.Fatal(err)
	}
	entries, total, err := s.Size()
	if err != nil {
		t.Fatal(err)
	}
	if total > 2*size || entries != 2 {
		t.Fatalf("after capped commit: %d entries, %d bytes (cap %d)", entries, total, 2*size)
	}
	if !s.Contains("fresh") {
		t.Fatal("the just-committed entry must survive its own cap enforcement")
	}
}

func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"", 0, true},
		{"0", 0, true},
		{"1234", 1234, true},
		{"4K", 4096, true},
		{"4k", 4096, true},
		{"2M", 2 << 20, true},
		{"3G", 3 << 30, true},
		{"-1", 0, false},
		{"12Q", 0, false},
		{"M", 0, false},
	}
	for _, tc := range cases {
		got, err := ParseSize(tc.in)
		if tc.ok != (err == nil) || got != tc.want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}
