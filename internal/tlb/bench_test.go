package tlb

import (
	"testing"

	"graphmem/internal/mem"
)

// BenchmarkTranslate measures the full translation path — DTLB, STLB,
// and the occasional page walk — over a page stream with graph-workload
// locality (hot region plus random far pages).
func BenchmarkTranslate(b *testing.B) {
	h := DefaultHierarchy(mem.Addr(1)<<40, func(addr mem.Addr, now int64) int64 {
		return now + 100
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var page mem.PageAddr
		if i%8 != 0 {
			page = mem.PageAddr(i % 32) // hot: DTLB-resident
		} else {
			page = mem.PageAddr((uint64(i)*2654435761)%(1<<20) + 64)
		}
		h.Translate(page, int64(i))
	}
}

// BenchmarkTLBLookupHit measures the bare set scan on a resident page.
func BenchmarkTLBLookupHit(b *testing.B) {
	t := New(Config{Name: "DTLB", Entries: 64, Ways: 4, Latency: 1})
	for p := 0; p < 32; p++ {
		t.Fill(mem.PageAddr(p))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Lookup(mem.PageAddr(i % 32))
	}
}
