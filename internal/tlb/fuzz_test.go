package tlb

import (
	"testing"

	"graphmem/internal/mem"
)

// FuzzTLBVsReference drives a small TLB with the fill-on-miss usage
// pattern Translate follows, against a per-set LRU list reference.
// Hit/miss outcomes and the Hits/Misses/Evictions counters must match
// at every step.
func FuzzTLBVsReference(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0, 1, 2, 3, 4, 8, 12, 0})
	f.Add([]byte("\x00\x04\x08\x0c\x00\x04\x08\x0c\x01\x05\x09\x0d"))
	f.Fuzz(func(t *testing.T, data []byte) {
		const nsets, ways, npages = 4, 2, 16
		tl := New(Config{Name: "F", Entries: nsets * ways, Ways: ways, Latency: 1})
		// ref[set] holds resident pages, most recently used last.
		ref := make([][]mem.PageAddr, nsets)
		var wantHits, wantMisses, wantEvictions int64
		for i, b := range data {
			page := mem.PageAddr(b % npages)
			si := int(uint64(page) % nsets)
			set := ref[si]
			pos := -1
			for j, p := range set {
				if p == page {
					pos = j
					break
				}
			}
			hit := tl.Lookup(page)
			if hit != (pos >= 0) {
				t.Fatalf("op %d: Lookup(%d) = %v, reference says %v", i, page, hit, pos >= 0)
			}
			if hit {
				wantHits++
				ref[si] = append(append(set[:pos], set[pos+1:]...), page)
			} else {
				wantMisses++
				tl.Fill(page) // Translate's fill-on-miss pattern
				if len(set) >= ways {
					wantEvictions++
					set = set[1:]
				}
				ref[si] = append(set, page)
			}
			s := tl.Stats
			if s.Hits != wantHits || s.Misses != wantMisses || s.Evictions != wantEvictions {
				t.Fatalf("op %d: stats {hits %d misses %d evictions %d}, reference says {%d %d %d}",
					i, s.Hits, s.Misses, s.Evictions, wantHits, wantMisses, wantEvictions)
			}
		}
	})
}
