// Package tlb models the translation path of Table I: a 64-entry 4-way
// L1 DTLB (1-cycle), a 1536-entry 12-way L2 TLB (8-cycle), and a page
// walker. The walker models page-walk-cache hits for the upper levels of
// the radix tree (a fixed overhead) plus a real memory access for the
// leaf PTE, issued into the cache hierarchy through a callback.
//
// Translation proceeds in parallel with the L1D/SDC lookup (both the
// L1D and the SDC are VIPT, Section III-E), so only TLB misses add
// latency to a memory access: the simulator takes the max of the data
// path and translation path ready times.
package tlb

import (
	"encoding/binary"
	"fmt"

	"graphmem/internal/mem"
	"graphmem/internal/stats"
)

// Config describes one TLB level.
type Config struct {
	Name    string
	Entries int
	Ways    int
	Latency int64
}

type entry struct {
	page  mem.PageAddr
	valid bool
	lru   int64
}

// TLB is a set-associative translation buffer with LRU replacement.
// Entries live in one contiguous set-major slab (like internal/cache)
// so the per-access way scan stays on adjacent host cache lines.
type TLB struct {
	cfg     Config
	entries []entry // nsets x ways slab, set-major
	ways    int
	setMask uint64
	clock   int64
	Stats   stats.CacheStats
}

// New builds a TLB from cfg.
func New(cfg Config) *TLB {
	nsets := cfg.Entries / cfg.Ways
	if nsets <= 0 || nsets&(nsets-1) != 0 {
		panic("tlb: set count must be a positive power of two")
	}
	return &TLB{
		cfg:     cfg,
		entries: make([]entry, nsets*cfg.Ways),
		ways:    cfg.Ways,
		setMask: uint64(nsets - 1),
	}
}

// set returns the ways holding page's set.
func (t *TLB) set(page mem.PageAddr) []entry {
	si := int(uint64(page) & t.setMask)
	return t.entries[si*t.ways : (si+1)*t.ways]
}

// Latency returns the lookup latency in cycles.
func (t *TLB) Latency() int64 { return t.cfg.Latency }

// Lookup probes for page's translation, updating recency and stats.
func (t *TLB) Lookup(page mem.PageAddr) bool {
	set := t.set(page)
	for w := range set {
		if set[w].valid && set[w].page == page {
			t.clock++
			set[w].lru = t.clock
			t.Stats.Hits++
			return true
		}
	}
	t.Stats.Misses++
	return false
}

// Fill inserts page's translation, evicting LRU.
func (t *TLB) Fill(page mem.PageAddr) {
	set := t.set(page)
	way, best := 0, int64(1<<63-1)
	for w := range set {
		if !set[w].valid {
			way = w
			break
		}
		if set[w].lru < best {
			best = set[w].lru
			way = w
		}
	}
	t.clock++
	if set[way].valid {
		t.Stats.Evictions++
	}
	set[way] = entry{page: page, valid: true, lru: t.clock}
}

// WalkFunc issues the leaf-PTE read at addr into the memory hierarchy at
// CPU cycle now and returns its completion time.
type WalkFunc func(addr mem.Addr, now int64) int64

// Hierarchy is the two-level TLB plus walker for one core.
type Hierarchy struct {
	DTLB *TLB
	STLB *TLB
	// PTBase is the synthetic page-table region base; leaf PTEs live at
	// PTBase + page*8 so walker traffic has realistic locality (512
	// translations per PTE cache line... per page of PTEs).
	PTBase mem.Addr
	// WalkOverhead models page-walk-cache hits for the upper radix
	// levels, in cycles.
	WalkOverhead int64
	// Walk performs the leaf PTE memory access.
	Walk WalkFunc
	// Walks counts completed page walks.
	Walks int64
}

// DefaultHierarchy builds the Table I translation path for one core.
func DefaultHierarchy(ptBase mem.Addr, walk WalkFunc) *Hierarchy {
	return &Hierarchy{
		DTLB:         New(Config{Name: "DTLB", Entries: 64, Ways: 4, Latency: 1}),
		STLB:         New(Config{Name: "STLB", Entries: 1536, Ways: 12, Latency: 8}),
		PTBase:       ptBase,
		WalkOverhead: 4,
		Walk:         walk,
	}
}

// Translate returns the cycle at which the translation of page is
// available, starting the lookup at now, and fills the TLBs on the way
// back.
func (h *Hierarchy) Translate(page mem.PageAddr, now int64) int64 {
	t := now + h.DTLB.Latency()
	if h.DTLB.Lookup(page) {
		return t
	}
	t += h.STLB.Latency()
	if h.STLB.Lookup(page) {
		h.DTLB.Fill(page)
		return t
	}
	// Page walk: fixed upper-level overhead plus a leaf PTE access.
	h.Walks++
	t += h.WalkOverhead
	pteAddr := h.PTBase + mem.Addr(uint64(page)*8)
	t = h.Walk(pteAddr, t)
	h.STLB.Fill(page)
	h.DTLB.Fill(page)
	return t
}

// WarmLookup probes for page's translation updating recency only — the
// functional-warming fast path (internal/sample). No stats counters
// move, so a warm-up leaves the TLB tags hot and the counters zero.
func (t *TLB) WarmLookup(page mem.PageAddr) bool {
	set := t.set(page)
	for w := range set {
		if set[w].valid && set[w].page == page {
			t.clock++
			set[w].lru = t.clock
			return true
		}
	}
	return false
}

// WarmFill inserts page's translation with the same LRU victim choice
// as Fill but without the eviction counter.
func (t *TLB) WarmFill(page mem.PageAddr) {
	set := t.set(page)
	way, best := 0, int64(1<<63-1)
	for w := range set {
		if !set[w].valid {
			way = w
			break
		}
		if set[w].lru < best {
			best = set[w].lru
			way = w
		}
	}
	t.clock++
	set[way] = entry{page: page, valid: true, lru: t.clock}
}

// EncodeState appends the TLB's LRU clock and every entry to buf.
func (t *TLB) EncodeState(buf []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(t.entries)))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(t.clock))
	for i := range t.entries {
		e := &t.entries[i]
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.page))
		if e.valid {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.lru))
	}
	return buf
}

// DecodeState restores state written by EncodeState, rejecting a
// geometry mismatch, and returns the remaining bytes.
func (t *TLB) DecodeState(data []byte) ([]byte, error) {
	if len(data) < 4+8 {
		return nil, fmt.Errorf("tlb %s: checkpoint truncated", t.cfg.Name)
	}
	n := int(binary.LittleEndian.Uint32(data))
	if n != len(t.entries) {
		return nil, fmt.Errorf("tlb %s: checkpoint geometry mismatch: %d entries, have %d", t.cfg.Name, n, len(t.entries))
	}
	t.clock = int64(binary.LittleEndian.Uint64(data[4:]))
	data = data[12:]
	const entryBytes = 8 + 1 + 8
	if len(data) < n*entryBytes {
		return nil, fmt.Errorf("tlb %s: checkpoint truncated", t.cfg.Name)
	}
	for i := range t.entries {
		e := &t.entries[i]
		e.page = mem.PageAddr(binary.LittleEndian.Uint64(data))
		e.valid = data[8] != 0
		e.lru = int64(binary.LittleEndian.Uint64(data[9:]))
		data = data[entryBytes:]
	}
	return data, nil
}

// WarmWalkFunc warm-touches the leaf PTE's block in the hierarchy
// without timing (the warm counterpart of WalkFunc).
type WarmWalkFunc func(addr mem.Addr)

// WarmTranslate walks page through the TLB hierarchy updating tags and
// recency only: no latencies, no stats, no Walks count. warmWalk, when
// non-nil, receives the leaf PTE address on a full miss so the page
// table's footprint warms the data caches exactly as a detailed walk
// would.
func (h *Hierarchy) WarmTranslate(page mem.PageAddr, warmWalk WarmWalkFunc) {
	if h.DTLB.WarmLookup(page) {
		return
	}
	if h.STLB.WarmLookup(page) {
		h.DTLB.WarmFill(page)
		return
	}
	if warmWalk != nil {
		warmWalk(h.PTBase + mem.Addr(uint64(page)*8))
	}
	h.STLB.WarmFill(page)
	h.DTLB.WarmFill(page)
}

// EncodeState appends both TLB levels' state to buf. The walk counter
// is excluded: it is a statistic, and functional warming keeps all
// statistics at zero.
func (h *Hierarchy) EncodeState(buf []byte) []byte {
	buf = h.DTLB.EncodeState(buf)
	return h.STLB.EncodeState(buf)
}

// DecodeState restores both TLB levels' state.
func (h *Hierarchy) DecodeState(data []byte) ([]byte, error) {
	data, err := h.DTLB.DecodeState(data)
	if err != nil {
		return nil, err
	}
	return h.STLB.DecodeState(data)
}
