package tlb

import (
	"testing"
	"testing/quick"

	"graphmem/internal/mem"
)

func small() *TLB {
	return New(Config{Name: "T", Entries: 8, Ways: 2, Latency: 1})
}

func TestLookupMissThenHit(t *testing.T) {
	tl := small()
	if tl.Lookup(5) {
		t.Fatal("cold TLB hit")
	}
	tl.Fill(5)
	if !tl.Lookup(5) {
		t.Fatal("filled page missed")
	}
	if tl.Stats.Hits != 1 || tl.Stats.Misses != 1 {
		t.Errorf("stats = %+v", tl.Stats)
	}
}

func TestLRUEvictionWithinSet(t *testing.T) {
	tl := small() // 4 sets, 2 ways
	// Pages 0, 4, 8 share set 0.
	tl.Fill(0)
	tl.Fill(4)
	tl.Lookup(0) // refresh 0
	tl.Fill(8)   // evicts 4
	if !tl.Lookup(0) || tl.Lookup(4) || !tl.Lookup(8) {
		t.Error("LRU eviction picked the wrong victim")
	}
	if tl.Stats.Evictions != 1 {
		t.Errorf("evictions = %d", tl.Stats.Evictions)
	}
}

func TestCapacityBound(t *testing.T) {
	f := func(pages []uint16) bool {
		tl := small()
		resident := 0
		for _, p := range pages {
			if !tl.Lookup(mem.PageAddr(p)) {
				tl.Fill(mem.PageAddr(p))
			}
		}
		// Count hits on a second pass without filling: at most Entries
		// distinct pages can hit.
		seen := map[mem.PageAddr]bool{}
		for _, p := range pages {
			pg := mem.PageAddr(p)
			if !seen[pg] && tl.Lookup(pg) {
				resident++
			}
			seen[pg] = true
		}
		return resident <= 8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{Name: "bad", Entries: 12, Ways: 4, Latency: 1})
}

func TestHierarchyDTLBHitFast(t *testing.T) {
	walks := 0
	h := DefaultHierarchy(0x7000000, func(addr mem.Addr, now int64) int64 {
		walks++
		return now + 100
	})
	// First access walks.
	t0 := h.Translate(42, 0)
	if walks != 1 {
		t.Fatalf("walks = %d", walks)
	}
	// DTLB latency 1 + STLB 8 + overhead 4 + walk 100 = 113.
	if t0 != 113 {
		t.Errorf("walk translate ready at %d, want 113", t0)
	}
	// Second access hits the DTLB: 1 cycle.
	t1 := h.Translate(42, 200)
	if t1 != 201 || walks != 1 {
		t.Errorf("DTLB hit ready at %d (walks %d)", t1, walks)
	}
}

func TestHierarchySTLBBackstop(t *testing.T) {
	h := DefaultHierarchy(0x7000000, func(addr mem.Addr, now int64) int64 { return now + 100 })
	// Fill more pages than the DTLB holds (64) but fewer than the STLB
	// (1536): re-touching them must hit the STLB, not walk again.
	for p := 0; p < 128; p++ {
		h.Translate(mem.PageAddr(p), int64(p*1000))
	}
	walksBefore := h.Walks
	ready := h.Translate(0, 1_000_000)
	if h.Walks != walksBefore {
		t.Error("STLB-resident page triggered a walk")
	}
	if got := ready - 1_000_000; got != 9 {
		t.Errorf("STLB hit latency = %d, want 9 (1+8)", got)
	}
}

func TestWalkerAddressesAreDistinctPerPage(t *testing.T) {
	var addrs []mem.Addr
	h := DefaultHierarchy(0x7000000, func(addr mem.Addr, now int64) int64 {
		addrs = append(addrs, addr)
		return now + 10
	})
	h.Translate(1, 0)
	h.Translate(2, 0)
	if len(addrs) != 2 || addrs[0] == addrs[1] {
		t.Errorf("walker addresses = %v", addrs)
	}
	if addrs[0] != 0x7000000+8 || addrs[1] != 0x7000000+16 {
		t.Errorf("PTE addresses = %v", addrs)
	}
}

func TestAdjacentPagesSharePTELine(t *testing.T) {
	// 8 consecutive pages' PTEs fall in one cache block: the walker
	// address stream must reflect that locality.
	var addrs []mem.Addr
	h := DefaultHierarchy(0, func(addr mem.Addr, now int64) int64 {
		addrs = append(addrs, addr)
		return now + 10
	})
	for p := 0; p < 8; p++ {
		h.Translate(mem.PageAddr(p), 0)
	}
	first := addrs[0].Block()
	for _, a := range addrs {
		if a.Block() != first {
			t.Errorf("PTE for %v in different block", a)
		}
	}
}
