package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"graphmem/internal/mem"
)

// Binary trace file format (cmd/gmtrace): a magic header followed by
// fixed-size little-endian records. The format exists so traces can be
// captured once and inspected or replayed offline.

var fileMagic = [8]byte{'G', 'M', 'T', 'R', 'C', '0', '0', '1'}

const recordBytes = 8 + 8 + 1 + 1 + 2 + 4 // PC, Addr, Size, Write, NonMem, DepDist

// Writer is a Sink that streams records to an io.Writer in the binary
// trace format. Close (or Flush) must be called to drain buffers.
type Writer struct {
	w     *bufio.Writer
	limit int64
	n     int64
	err   error
}

// NewWriter writes a trace header to w and returns the streaming sink.
// limit, when positive, stops the trace after that many records.
func NewWriter(w io.Writer, limit int64) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw, limit: limit}, nil
}

// Access implements Sink.
func (t *Writer) Access(r Record) bool {
	if t.err != nil {
		return false
	}
	var buf [recordBytes]byte
	binary.LittleEndian.PutUint64(buf[0:], r.PC)
	binary.LittleEndian.PutUint64(buf[8:], uint64(r.Addr))
	buf[16] = r.Size
	if r.Write {
		buf[17] = 1
	}
	binary.LittleEndian.PutUint16(buf[18:], r.NonMem)
	binary.LittleEndian.PutUint32(buf[20:], uint32(r.DepDist))
	if _, err := t.w.Write(buf[:]); err != nil {
		t.err = err
		return false
	}
	t.n++
	return t.limit <= 0 || t.n < t.limit
}

// Count returns the number of records written so far.
func (t *Writer) Count() int64 { return t.n }

// Flush drains buffered records and returns the first write error.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Reader iterates a binary trace previously produced by Writer.
type Reader struct {
	r *bufio.Reader
}

// NewReader validates the header of r and returns the record iterator.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if magic != fileMagic {
		return nil, errors.New("trace: bad magic, not a gmtrace file")
	}
	return &Reader{r: br}, nil
}

// Next returns the next record, or io.EOF at end of trace.
func (t *Reader) Next() (Record, error) {
	var buf [recordBytes]byte
	if _, err := io.ReadFull(t.r, buf[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Record{}, fmt.Errorf("trace: truncated record: %w", err)
		}
		return Record{}, err
	}
	return Record{
		PC:      binary.LittleEndian.Uint64(buf[0:]),
		Addr:    mem.Addr(binary.LittleEndian.Uint64(buf[8:])),
		Size:    buf[16],
		Write:   buf[17] != 0,
		NonMem:  binary.LittleEndian.Uint16(buf[18:]),
		DepDist: int32(binary.LittleEndian.Uint32(buf[20:])),
	}, nil
}

// ReadAll drains the reader into a slice.
func (t *Reader) ReadAll() ([]Record, error) {
	var recs []Record
	for {
		r, err := t.Next()
		if errors.Is(err, io.EOF) {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, r)
	}
}

// Replay feeds every record of a captured trace into a sink, stopping
// early if the sink asks to. It returns the number of records delivered.
func Replay(recs []Record, sink Sink) int64 {
	var n int64
	for _, r := range recs {
		n++
		if !sink.Access(r) {
			break
		}
	}
	return n
}
