package trace

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"graphmem/internal/mem"
)

// Corrupt-input coverage for the binary trace reader. Each failure mode
// here is also a seed in testdata/fuzz/FuzzTraceReader, so a behavior
// change shows up in both the unit run and the fuzz corpus.

// validTrace serializes the given records through Writer.
func validTrace(t *testing.T, recs []Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	for _, r := range recs {
		w.Access(r)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	return buf.Bytes()
}

func TestReaderEmptyInput(t *testing.T) {
	_, err := NewReader(bytes.NewReader(nil))
	if err == nil || !strings.Contains(err.Error(), "reading header") {
		t.Fatalf("empty input: got %v, want header error", err)
	}
}

func TestReaderTruncatedHeader(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("GMTR")))
	if err == nil || !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated header: got %v, want ErrUnexpectedEOF", err)
	}
}

func TestReaderBadMagic(t *testing.T) {
	_, err := NewReader(bytes.NewReader([]byte("NOTATRCE-and-some-payload")))
	if err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("bad magic: got %v, want bad-magic error", err)
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	full := validTrace(t, []Record{
		{PC: 0x400100, Addr: 0x7fff0000, Size: 8},
		{PC: 0x400108, Addr: 0x7fff0040, Size: 4, Write: true, NonMem: 3, DepDist: 2},
	})
	// Chop the second record mid-way: the first must still decode, the
	// second must fail with the truncation error, never a short record.
	for cut := 1; cut < recordBytes; cut++ {
		r, err := NewReader(bytes.NewReader(full[:len(full)-cut]))
		if err != nil {
			t.Fatalf("cut=%d: header rejected: %v", cut, err)
		}
		if _, err := r.Next(); err != nil {
			t.Fatalf("cut=%d: first record lost: %v", cut, err)
		}
		_, err = r.Next()
		if err == nil || !strings.Contains(err.Error(), "truncated record") {
			t.Fatalf("cut=%d: got %v, want truncated-record error", cut, err)
		}
	}
}

func TestReaderHeaderOnly(t *testing.T) {
	r, err := NewReader(bytes.NewReader(validTrace(t, nil)))
	if err != nil {
		t.Fatalf("header-only trace rejected: %v", err)
	}
	recs, err := r.ReadAll()
	if err != nil || len(recs) != 0 {
		t.Fatalf("header-only trace: %d records, err %v", len(recs), err)
	}
}

func TestReaderRoundTrip(t *testing.T) {
	want := []Record{
		{PC: 1, Addr: mem.Addr(0xdeadbeef), Size: 8, Write: true, NonMem: 65535, DepDist: -1},
		{PC: 1 << 63, Addr: 0, Size: 0, DepDist: 1 << 30},
	}
	r, err := NewReader(bytes.NewReader(validTrace(t, want)))
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}
