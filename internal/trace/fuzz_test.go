package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzTraceReader throws arbitrary bytes at the binary trace parser.
// The parser must never panic, and any input it fully accepts must
// round-trip semantically: re-serializing the decoded records and
// decoding again yields the same records. (Byte-level identity does
// not hold — the Write flag byte accepts any nonzero value but is
// canonicalized to 1 on output.)
func FuzzTraceReader(f *testing.F) {
	// Seeds mirror the corrupt-input unit tests plus a healthy trace.
	f.Add([]byte{})
	f.Add([]byte("GMTR"))
	f.Add([]byte("NOTATRCE-and-some-payload"))
	f.Add(fileMagic[:])
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	w.Access(Record{PC: 0x400100, Addr: 0x7fff0000, Size: 8})
	w.Access(Record{PC: 0x400108, Addr: 0x7fff0040, Size: 4, Write: true, NonMem: 3, DepDist: 2})
	w.Flush()
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:len(buf.Bytes())-5]) // truncated record

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var recs []Record
		for {
			rec, err := r.Next()
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				return // truncated tail: nothing further to verify
			}
			recs = append(recs, rec)
		}
		// Cleanly parsed: the byte length must account for every record,
		// and encode→decode must reproduce the records exactly.
		if want := 8 + recordBytes*len(recs); want != len(data) {
			t.Fatalf("parsed %d records from %d bytes, want %d bytes", len(recs), len(data), want)
		}
		var out bytes.Buffer
		w, err := NewWriter(&out, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range recs {
			w.Access(rec)
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		r2, err := NewReader(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-reading own output: %v", err)
		}
		got, err := r2.ReadAll()
		if err != nil {
			t.Fatalf("re-decoding own output: %v", err)
		}
		if len(got) != len(recs) {
			t.Fatalf("round trip: %d records became %d", len(recs), len(got))
		}
		for i := range recs {
			if got[i] != recs[i] {
				t.Fatalf("record %d diverged: %+v -> %+v", i, recs[i], got[i])
			}
		}
	})
}
