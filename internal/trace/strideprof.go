package trace

import (
	"fmt"

	"graphmem/internal/mem"
)

// StrideBuckets is the number of stride intervals used by the DRAM
// probability characterization (Fig. 3): {0}, {1}, (1,10], (10,1e2],
// (1e2,1e3], (1e3,1e4], (1e4,1e5], (1e5,1e6], >1e6 — strides measured in
// cache blocks between consecutive accesses by the same PC, matching the
// LP's definition.
const StrideBuckets = 9

// BucketLabel returns the human-readable label of stride bucket i.
func BucketLabel(i int) string {
	switch i {
	case 0:
		return "0"
	case 1:
		return "1"
	case 2:
		return "(1,1e1]"
	case 8:
		return ">1e6"
	default:
		return fmt.Sprintf("(1e%d,1e%d]", i-2, i-1)
	}
}

// BucketOf classifies an absolute block stride into its Fig. 3 bucket.
func BucketOf(stride uint64) int {
	switch {
	case stride == 0:
		return 0
	case stride == 1:
		return 1
	}
	b := 2
	limit := uint64(10)
	for stride > limit && b < StrideBuckets-1 {
		b++
		limit *= 10
	}
	return b
}

// StrideDRAMProfiler reproduces the Fig. 3 characterization: for each
// demand access it computes the block stride against the previous access
// from the same PC and records whether the simulator served the access
// from DRAM. The simulator feeds it through its access-observer hook.
type StrideDRAMProfiler struct {
	last     map[uint64]mem.BlockAddr
	total    [StrideBuckets]int64
	fromDRAM [StrideBuckets]int64
}

// NewStrideDRAMProfiler returns an empty profiler.
func NewStrideDRAMProfiler() *StrideDRAMProfiler {
	return &StrideDRAMProfiler{last: make(map[uint64]mem.BlockAddr)}
}

// Observe records one demand access and where it was served from.
// Accesses with no prior same-PC access are ignored (no stride exists).
func (p *StrideDRAMProfiler) Observe(pc uint64, blk mem.BlockAddr, served mem.ServedBy) {
	prev, ok := p.last[pc]
	p.last[pc] = blk
	if !ok {
		return
	}
	var stride uint64
	if blk >= prev {
		stride = uint64(blk - prev)
	} else {
		stride = uint64(prev - blk)
	}
	b := BucketOf(stride)
	p.total[b]++
	if served == mem.ServedDRAM {
		p.fromDRAM[b]++
	}
}

// Samples returns the number of accesses recorded in bucket i.
func (p *StrideDRAMProfiler) Samples(i int) int64 { return p.total[i] }

// DRAMProbability returns the fraction of bucket i's accesses that were
// served by DRAM, or -1 when the bucket is empty.
func (p *StrideDRAMProfiler) DRAMProbability(i int) float64 {
	if p.total[i] == 0 {
		return -1
	}
	return float64(p.fromDRAM[i]) / float64(p.total[i])
}
