package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"graphmem/internal/mem"
)

func TestTracerSitesAndNames(t *testing.T) {
	tr := New(&SliceSink{})
	a := tr.Site("load_oa")
	b := tr.Site("load_na")
	if a == b {
		t.Fatal("two sites share a PC")
	}
	if tr.SiteName(a) != "load_oa" || tr.SiteName(b) != "load_na" {
		t.Errorf("site names: %q %q", tr.SiteName(a), tr.SiteName(b))
	}
	if got := tr.SiteName(0xdead); got != "pc_0xdead" {
		t.Errorf("unknown PC name = %q", got)
	}
}

func TestTracerEmitsRecords(t *testing.T) {
	sink := &SliceSink{}
	tr := New(sink)
	pc := tr.Site("s")
	tr.Exec(3)
	s0 := tr.Load(pc, 0x1000, 4, NoDep)
	tr.Exec(2)
	s1 := tr.Load(pc, 0x2000, 4, s0)
	tr.Store(pc, 0x3000, 8, s1)
	if len(sink.Recs) != 3 {
		t.Fatalf("got %d records", len(sink.Recs))
	}
	r0, r1, r2 := sink.Recs[0], sink.Recs[1], sink.Recs[2]
	if r0.NonMem != 3 || r0.Write || r0.Size != 4 || r0.DepDist != 0 {
		t.Errorf("r0 = %+v", r0)
	}
	if r1.NonMem != 2 || r1.DepDist != 1 {
		t.Errorf("r1 = %+v", r1)
	}
	if !r2.Write || r2.Size != 8 || r2.DepDist != 1 {
		t.Errorf("r2 = %+v", r2)
	}
	if s0 != 0 || s1 != 1 {
		t.Errorf("sequence numbers %d %d", s0, s1)
	}
}

func TestTracerPauseSuppressesEmission(t *testing.T) {
	sink := &SliceSink{}
	tr := New(sink)
	pc := tr.Site("s")
	tr.Pause()
	tr.Exec(10)
	tr.Load(pc, 0x1000, 4, NoDep)
	tr.Resume()
	tr.Load(pc, 0x2000, 4, NoDep)
	if len(sink.Recs) != 1 {
		t.Fatalf("got %d records, want 1", len(sink.Recs))
	}
	if sink.Recs[0].NonMem != 0 {
		t.Errorf("paused Exec leaked into NonMem: %d", sink.Recs[0].NonMem)
	}
}

func TestTracerStopsWhenSinkDone(t *testing.T) {
	sink := &SliceSink{Limit: 2}
	tr := New(sink)
	pc := tr.Site("s")
	for i := 0; i < 10 && !tr.Done(); i++ {
		tr.Load(pc, mem.Addr(i*64), 4, NoDep)
	}
	if len(sink.Recs) != 2 {
		t.Errorf("got %d records, want 2", len(sink.Recs))
	}
	if !tr.Done() {
		t.Error("tracer not done after sink limit")
	}
}

func TestTracerDependencyPanicsOnFuture(t *testing.T) {
	tr := New(&SliceSink{})
	pc := tr.Site("s")
	defer func() {
		if recover() == nil {
			t.Error("expected panic on future dependency")
		}
	}()
	tr.Load(pc, 0x1000, 4, 5)
}

func TestTracerNonMemSaturates(t *testing.T) {
	sink := &SliceSink{}
	tr := New(sink)
	pc := tr.Site("s")
	tr.Exec(100000)
	tr.Load(pc, 0x1000, 4, NoDep)
	if sink.Recs[0].NonMem != 0xffff {
		t.Errorf("NonMem = %d, want saturation at 65535", sink.Recs[0].NonMem)
	}
}

func TestCountingSink(t *testing.T) {
	c := &CountingSink{Limit: 3}
	tr := New(c)
	pc := tr.Site("s")
	tr.Exec(4)
	tr.Load(pc, 0x0, 4, NoDep)
	tr.Store(pc, 0x40, 4, NoDep)
	tr.Load(pc, 0x80, 4, NoDep)
	if !tr.Done() {
		t.Error("tracer should be done at limit")
	}
	if c.Records != 3 || c.Loads != 2 || c.Stores != 1 {
		t.Errorf("counts: %+v", c)
	}
	if c.Instructions != 4+3 {
		t.Errorf("Instructions = %d, want 7", c.Instructions)
	}
}

func TestMultiSinkStopsWhenAnyStops(t *testing.T) {
	a := &CountingSink{}
	b := &CountingSink{Limit: 2}
	m := &MultiSink{Sinks: []Sink{a, b}}
	if !m.Access(Record{}) {
		t.Error("first access should continue")
	}
	// b hits its limit at 2 records: second access must stop.
	if m.Access(Record{}) {
		t.Error("second access should stop")
	}
	if a.Records != 2 {
		t.Error("multi sink should still deliver to all sinks")
	}
}

type progRecorder struct {
	CountingSink
	got []uint64
}

func (p *progRecorder) SetProgress(e uint64) { p.got = append(p.got, e) }

func TestProgressForwarding(t *testing.T) {
	p := &progRecorder{}
	tr := New(p)
	tr.Progress(10)
	tr.Progress(20)
	if len(p.got) != 2 || p.got[0] != 10 || p.got[1] != 20 {
		t.Errorf("progress = %v", p.got)
	}
	// MultiSink forwards too.
	p2 := &progRecorder{}
	tr2 := New(&MultiSink{Sinks: []Sink{&CountingSink{}, p2}})
	tr2.Progress(7)
	if len(p2.got) != 1 || p2.got[0] != 7 {
		t.Errorf("multisink progress = %v", p2.got)
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		stride uint64
		want   int
	}{
		{0, 0}, {1, 1}, {2, 2}, {10, 2}, {11, 3}, {100, 3}, {101, 4},
		{1000, 4}, {1001, 5}, {10000, 5}, {100000, 6}, {1000000, 7},
		{1000001, 8}, {1 << 40, 8},
	}
	for _, c := range cases {
		if got := BucketOf(c.stride); got != c.want {
			t.Errorf("BucketOf(%d) = %d, want %d", c.stride, got, c.want)
		}
	}
}

func TestBucketLabels(t *testing.T) {
	want := []string{"0", "1", "(1,1e1]", "(1e1,1e2]", "(1e2,1e3]", "(1e3,1e4]", "(1e4,1e5]", "(1e5,1e6]", ">1e6"}
	for i := 0; i < StrideBuckets; i++ {
		if BucketLabel(i) != want[i] {
			t.Errorf("BucketLabel(%d) = %q, want %q", i, BucketLabel(i), want[i])
		}
	}
}

func TestBucketOfMonotone(t *testing.T) {
	f := func(a, b uint64) bool {
		if a > b {
			a, b = b, a
		}
		return BucketOf(a) <= BucketOf(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStrideDRAMProfiler(t *testing.T) {
	p := NewStrideDRAMProfiler()
	// First access per PC establishes history only.
	p.Observe(1, 100, mem.ServedDRAM)
	if p.Samples(0) != 0 {
		t.Error("first access should not be bucketed")
	}
	p.Observe(1, 101, mem.ServedL1D)     // stride 1, cache
	p.Observe(1, 102, mem.ServedDRAM)    // stride 1, DRAM
	p.Observe(1, 100002, mem.ServedDRAM) // stride 99900 -> bucket (1e4,1e5]
	if p.Samples(1) != 2 {
		t.Errorf("bucket1 samples = %d", p.Samples(1))
	}
	if got := p.DRAMProbability(1); got != 0.5 {
		t.Errorf("bucket1 P(DRAM) = %g", got)
	}
	if p.Samples(6) != 1 || p.DRAMProbability(6) != 1 {
		t.Errorf("large-stride bucket: n=%d p=%g", p.Samples(6), p.DRAMProbability(6))
	}
	if p.DRAMProbability(8) != -1 {
		t.Error("empty bucket should report -1")
	}
	// Strides are per-PC: a different PC has independent history.
	p.Observe(2, 5000, mem.ServedDRAM)
	if p.Samples(8) != 0 {
		t.Error("first access of new PC was bucketed")
	}
}

func TestFileRoundTrip(t *testing.T) {
	recs := []Record{
		{PC: 0x400000, Addr: 0x1234, Size: 4, Write: false, NonMem: 7, DepDist: 0},
		{PC: 0x400008, Addr: 0xffffffffff, Size: 8, Write: true, NonMem: 0, DepDist: 3},
		{PC: 0x400010, Addr: 0, Size: 1, Write: false, NonMem: 65535, DepDist: 1 << 30},
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if !w.Access(r) {
			t.Fatal("writer stopped early")
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 3 {
		t.Errorf("Count = %d", w.Count())
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records", len(got))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Errorf("record %d: got %+v want %+v", i, got[i], recs[i])
		}
	}
}

func TestWriterLimit(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Access(Record{}) {
		t.Error("record 1 should continue")
	}
	if w.Access(Record{}) {
		t.Error("record 2 should hit the limit")
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("not a trace file..."))); err == nil {
		t.Error("expected error for bad magic")
	}
	if _, err := NewReader(bytes.NewReader(nil)); err == nil {
		t.Error("expected error for empty input")
	}
}

func TestReaderDetectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0)
	w.Access(Record{PC: 1})
	w.Flush()
	trunc := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("expected truncation error")
	}
}

func TestReplay(t *testing.T) {
	recs := []Record{{PC: 1}, {PC: 2}, {PC: 3}}
	c := &CountingSink{Limit: 2}
	if n := Replay(recs, c); n != 2 {
		t.Errorf("Replay delivered %d, want 2", n)
	}
}

func TestFileRoundTripProperty(t *testing.T) {
	f := func(pc, addr uint64, size uint8, write bool, nonmem uint16, dep uint32) bool {
		rec := Record{
			PC: pc, Addr: mem.Addr(addr % (1 << 48)), Size: size,
			Write: write, NonMem: nonmem, DepDist: int32(dep >> 1),
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, 0)
		if err != nil {
			return false
		}
		w.Access(rec)
		if w.Flush() != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		got, err := r.Next()
		return err == nil && got == rec
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
