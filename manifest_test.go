// Acceptance test for the telemetry pipeline: the library-level
// equivalent of
//
//	gmsim -kernel pr -graph kron -config sdclp -profile bench \
//	      -json -epoch 100000 -warmup 1000000 -measure 1000000
//
// must emit a valid manifest whose epoch samples tile the measurement
// window exactly.
package graphmem_test

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"graphmem"
)

func TestRunManifestAcceptance(t *testing.T) {
	profile := graphmem.BenchProfile()
	profile.Warmup, profile.Measure = 1_000_000, 1_000_000
	wb := graphmem.NewWorkbench(profile)
	cfg := profile.BaseConfig(1).WithSDCLP().WithEpochInterval(100_000)
	id := graphmem.WorkloadID{Kernel: "pr", Graph: "kron"}

	start := time.Now()
	res := wb.RunSingle(cfg, id)

	m := graphmem.NewManifest("gmsim")
	m.Profile = profile.Name
	m.Workload = id.String()
	m.Config = cfg.WithWindows(profile.Warmup, profile.Measure).ManifestInfo()
	m.Reruns = res.Reruns
	m.Final = res.Stats
	m.Derived = graphmem.DeriveMetrics(&res.Stats)
	m.Epochs = res.Epochs
	var buf bytes.Buffer
	if err := m.Finalize(start).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	// The manifest must survive a JSON round-trip intact.
	var back graphmem.Manifest
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if back.SchemaVersion != 1 || back.Tool != "gmsim" || back.Workload != "pr.kron" {
		t.Errorf("manifest provenance wrong: schema=%d tool=%q workload=%q",
			back.SchemaVersion, back.Tool, back.Workload)
	}
	if back.Config.Name != cfg.Name || back.Config.EpochInterval != 100_000 {
		t.Errorf("manifest config wrong: %+v", back.Config)
	}
	if back.Final.Instructions != res.Stats.Instructions || back.Derived.IPC <= 0 {
		t.Errorf("manifest counters wrong: final instr %d (want %d), ipc %.3f",
			back.Final.Instructions, res.Stats.Instructions, back.Derived.IPC)
	}
	if back.Runtime.GoVersion == "" || back.WallClockSec <= 0 {
		t.Errorf("manifest runtime block missing: %+v wall=%.3f", back.Runtime, back.WallClockSec)
	}

	// The acceptance criterion: >= 2 epoch samples whose summed
	// instruction counts equal the measured window.
	if len(back.Epochs) < 2 {
		t.Fatalf("got %d epoch samples, want >= 2", len(back.Epochs))
	}
	var sum int64
	for _, e := range back.Epochs {
		sum += e.EndInstr - e.StartInstr
	}
	if sum != back.Final.Instructions {
		t.Errorf("epoch samples sum to %d instructions, window measured %d", sum, back.Final.Instructions)
	}

	// The epoch series must also round-trip through the exporters.
	var csvBuf, jsonlBuf bytes.Buffer
	if err := graphmem.WriteEpochsCSV(&csvBuf, [][]graphmem.EpochSample{back.Epochs}); err != nil {
		t.Fatal(err)
	}
	if err := graphmem.WriteEpochsJSONL(&jsonlBuf, [][]graphmem.EpochSample{back.Epochs}, true); err != nil {
		t.Fatal(err)
	}
	if csvBuf.Len() == 0 || bytes.Count(jsonlBuf.Bytes(), []byte("\n")) != len(back.Epochs) {
		t.Errorf("exporters produced %d CSV bytes, %d JSONL lines (want %d lines)",
			csvBuf.Len(), bytes.Count(jsonlBuf.Bytes(), []byte("\n")), len(back.Epochs))
	}
}
